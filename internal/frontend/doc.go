// Package frontend is the accuracy-aware frontend of the fan-out
// runtime: the pipeline stage between arriving requests and component
// mailboxes that closes the paper's accuracy/load feedback loop.
//
// A request passes three cooperating pieces:
//
//   - Admission: pluggable policies that reject or
//     downgrade requests before they consume any component capacity,
//     so overload surfaces at the door instead of as mailbox overflow
//     deep in the fan-out.
//   - Router: shard-replica routing policies over an R-replica
//     component map, so a hot subset can be served by any of its
//     replicas instead of only its home component.
//   - DegradationController: an EWMA load estimator that maps observed
//     load to a synopsis.Ladder level per request, honoring per-request
//     SLO classes — saturation coarsens synopses instead of growing
//     queues until requests time out.
//
// Every policy is clock-agnostic (time is a float64 millisecond
// offset) and reads load through the Load snapshot, so the same policy
// values drive both the live goroutine runtime (internal/service via
// Frontend) and the discrete-event simulator (internal/cluster), which
// evaluates them at scales the live runtime can't reach.
package frontend
