package frontend

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accuracytrader/internal/rescache"
	"accuracytrader/internal/service"
)

// cachedFrontend builds a one-component cluster behind a frontend with
// a result cache, counting handler invocations. Every payload is its
// own cache key (payloads are small ints).
func cachedFrontend(t *testing.T, opts Options, handler service.Handler) (*Frontend, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	counted := func(ctx context.Context, payload interface{}) (interface{}, error) {
		calls.Add(1)
		return handler(ctx, payload)
	}
	cl, err := service.New([]service.Handler{counted}, service.WaitAll,
		service.Options{Deadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if opts.Cache == nil {
		cache, err := rescache.New(rescache.Config{Capacity: 64})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cache.Close)
		opts.Cache = cache
	}
	if opts.CacheKey == nil {
		opts.CacheKey = func(payload interface{}) (uint64, bool) {
			k, ok := payload.(int)
			return uint64(k), ok
		}
	}
	if opts.Controller == nil {
		// The cache requires a controller for its accuracy tags; a
		// single level at 0.9 keeps the mechanics-focused tests simple.
		ctrl, err := NewController(ControllerConfig{Levels: 1, LevelAccuracy: []float64{0.9}})
		if err != nil {
			t.Fatal(err)
		}
		opts.Controller = ctrl
	}
	f, err := New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f, &calls
}

func TestCacheHitBypassesAdmission(t *testing.T) {
	// A one-token bucket: without the cache the second call would be
	// rejected; a cache hit must not consume admission state at all.
	f, calls := cachedFrontend(t, Options{
		Admission: []AdmissionPolicy{NewTokenBucket(0, 1)},
	}, func(ctx context.Context, p interface{}) (interface{}, error) { return "v", nil })

	res, err := f.Call(context.Background(), 7, BestEffortSLO())
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Fatal("first call cannot be a cache hit")
	}
	for i := 0; i < 3; i++ {
		res, err = f.Call(context.Background(), 7, BestEffortSLO())
		if err != nil {
			t.Fatalf("cache hit went through the drained token bucket: %v", err)
		}
		if !res.FromCache || res.Sub[0].Value != "v" {
			t.Fatalf("hit result = %+v", res)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times", calls.Load())
	}
	// A different key is a real miss and hits the empty bucket.
	if _, err := f.Call(context.Background(), 8, BestEffortSLO()); err == nil {
		t.Fatal("distinct-key miss skipped admission")
	}
	st := f.Stats()
	if st.CacheHits != 3 || st.Admitted != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheHonorsBoundedFloorAndEpoch(t *testing.T) {
	ctrl, err := NewController(ControllerConfig{Levels: 2, LevelAccuracy: []float64{0.6, 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	f, calls := cachedFrontend(t, Options{Controller: ctrl},
		func(ctx context.Context, p interface{}) (interface{}, error) { return "v", nil })

	// Idle: computed at the finest level, recorded accuracy 0.95.
	if _, err := f.Call(context.Background(), 1, BoundedSLO(0.9)); err != nil {
		t.Fatal(err)
	}
	res, err := f.Call(context.Background(), 1, BoundedSLO(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache || res.EstimatedAccuracy != 0.95 {
		t.Fatalf("bounded hit = %+v", res)
	}
	// A floor above the recorded accuracy must recompute — a hit would
	// violate the Bounded contract.
	res, err = f.Call(context.Background(), 1, BoundedSLO(0.99))
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Fatal("served below the Bounded floor")
	}
	// Exact requests only match exact entries; 0.95 is not enough.
	res, err = f.Call(context.Background(), 1, ExactSLO())
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Fatal("inexact entry served an Exact request")
	}
	// The Exact computation stored accuracy 1: now Exact hits.
	res, err = f.Call(context.Background(), 1, ExactSLO())
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache || res.EstimatedAccuracy != 1 {
		t.Fatalf("exact hit = %+v", res)
	}
	// A synopsis update bumps the epoch: the entry is stale.
	before := calls.Load()
	f.Cache().BumpEpoch()
	res, err = f.Call(context.Background(), 1, BoundedSLO(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache || calls.Load() != before+1 {
		t.Fatal("stale entry served after epoch bump")
	}
}

func TestCacheCoalescesThroughFrontend(t *testing.T) {
	release := make(chan struct{})
	f, calls := cachedFrontend(t, Options{},
		func(ctx context.Context, p interface{}) (interface{}, error) {
			<-release
			return "v", nil
		})
	const waiters = 12
	var wg sync.WaitGroup
	var hits atomic.Int64
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := f.Call(context.Background(), 3, BestEffortSLO())
			if err != nil {
				t.Error(err)
				return
			}
			if res.FromCache {
				hits.Add(1)
			}
		}()
	}
	// Let the winner reach the handler and the waiters pile onto the
	// flight, then release.
	deadline := time.Now().Add(2 * time.Second)
	for f.Stats().Admitted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("%d computations for %d concurrent identical requests", calls.Load(), waiters)
	}
	if hits.Load() != waiters-1 {
		t.Fatalf("%d waiters shared the computation, want %d", hits.Load(), waiters-1)
	}
}

func TestCacheSkipsIncompleteResults(t *testing.T) {
	// A fan-out that errored must not be cached: its accuracy tag would
	// lie about what the entry holds.
	var fail atomic.Bool
	fail.Store(true)
	f, calls := cachedFrontend(t, Options{},
		func(ctx context.Context, p interface{}) (interface{}, error) {
			if fail.Load() {
				return nil, context.DeadlineExceeded
			}
			return "v", nil
		})
	if _, err := f.Call(context.Background(), 4, BestEffortSLO()); err != nil {
		t.Fatal(err) // sub-errors surface in Sub, not as a Call error
	}
	fail.Store(false)
	res, err := f.Call(context.Background(), 4, BestEffortSLO())
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Fatal("failed fan-out was served from cache")
	}
	if calls.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2", calls.Load())
	}
	// The clean result was stored: third call hits.
	res, err = f.Call(context.Background(), 4, BestEffortSLO())
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache {
		t.Fatal("clean result not cached")
	}
}

func TestCacheRefreshUpgradesThroughAdmission(t *testing.T) {
	ctrl, err := NewController(ControllerConfig{Levels: 2, LevelAccuracy: []float64{0.6, 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := rescache.New(rescache.Config{Capacity: 64, RefreshBelow: 1, RefreshInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cache.Close)
	var exactCalls atomic.Int64
	f, _ := cachedFrontend(t, Options{Controller: ctrl, Cache: cache, CacheRefresh: true},
		func(ctx context.Context, p interface{}) (interface{}, error) {
			if slo, ok := SLOFrom(ctx); ok && slo.Kind == Exact {
				exactCalls.Add(1)
				return "exact", nil
			}
			return "approx", nil
		})
	if _, err := f.Call(context.Background(), 5, BestEffortSLO()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		res, err := f.Call(context.Background(), 5, BestEffortSLO())
		if err != nil {
			t.Fatal(err)
		}
		if res.FromCache && res.EstimatedAccuracy == 1 {
			if res.Sub[0].Value != "exact" {
				t.Fatalf("refreshed entry holds %v", res.Sub[0].Value)
			}
			if exactCalls.Load() == 0 {
				t.Fatal("refresh did not go through the Exact path")
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("entry never refreshed to exact")
}
