package frontend

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"accuracytrader/internal/service"
)

// ErrRejected is returned by Frontend.Call for requests shed by an
// admission policy.
var ErrRejected = errors.New("frontend: admission rejected request")

// Backend is the fan-out runtime a Frontend drives. It is the
// clock-agnostic seam that lets one policy set (admission, routing,
// degradation) govern every runtime: the in-process goroutine cluster
// (service.Cluster), the networked aggregator (netsvc.Aggregator), and
// — mirrored structurally — the discrete-event simulator. The load
// probes (QueueDepth, Inflight, EstimatedP95) feed the Load snapshot;
// SetRouter receives the frontend's replica-routing policy; Call fans
// one request out and gathers sub-results.
type Backend interface {
	// Components returns the fan-out width.
	Components() int
	// QueueCap is the per-component queue bound QueueDepth is measured
	// against (mailbox length in process, outstanding-request window
	// over the network).
	QueueCap() int
	// QueueDepth returns the outstanding sub-operations on component c.
	QueueDepth(c int) int
	// Inflight returns the number of Calls currently executing.
	Inflight() int
	// EstimatedP95 is the streaming tail sub-operation latency estimate.
	EstimatedP95() time.Duration
	// Deadline is the backend's configured call deadline.
	Deadline() time.Duration
	// SetRouter injects the routing policy used to place sub-operations.
	SetRouter(service.RouteFunc)
	// Call fans the payload out and gathers one SubResult per subset.
	Call(ctx context.Context, payload interface{}) ([]service.SubResult, error)
}

// Options configures a Frontend.
type Options struct {
	// Admission policies, evaluated together; the most severe verdict
	// wins (see Chain). Empty admits everything.
	Admission []AdmissionPolicy
	// Router places sub-operations on replicas (default least-loaded).
	Router Router
	// Replicas is the replica factor of the component map (default 2).
	Replicas int
	// Controller maps load to ladder levels. Nil disables degradation:
	// no level is attached to requests (LevelFrom reports ok=false, so
	// handlers use their finest synopsis) and Result.Level is -1,
	// matching the simulator's nil-controller behaviour.
	Controller *Controller
}

// Stats counts frontend outcomes.
type Stats struct {
	Admitted int64
	Degraded int64 // admitted with a downgraded SLO
	Rejected int64
}

// Result is one answered request.
type Result struct {
	// Sub holds the per-subset replies, in subset order.
	Sub []service.SubResult
	// SLO is the effective class after any admission downgrade.
	SLO SLO
	// Level is the ladder level the request was served from (coarse 0
	// … fine Levels-1), or -1 when no degradation controller is set.
	Level int
	// EstimatedAccuracy is the controller's accuracy estimate for
	// Level.
	EstimatedAccuracy float64
	// Degraded reports that admission downgraded the request's class.
	Degraded bool
}

// Frontend is the admission → routing → degradation pipeline in front
// of a fan-out Backend (a live service.Cluster or a networked
// netsvc.Aggregator). New injects its router into the backend; Call
// performs admission and level selection, then fans out.
type Frontend struct {
	cl    Backend
	opts  Options
	rmap  ReplicaMap
	start time.Time

	admitted atomic.Int64
	degraded atomic.Int64
	rejected atomic.Int64
	// inflightNow reserves a request's in-flight slot at admission
	// time: the cluster's own counter only rises once Call reaches it,
	// which would let a concurrent burst race past MaxInflight.
	inflightNow atomic.Int64
}

// New wraps a backend. The backend's router is replaced with the
// frontend's replica-routing policy (backends fall back to home
// placement for anything the router leaves out of range).
func New(cl Backend, opts Options) (*Frontend, error) {
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Router == nil {
		opts.Router = NewLeastLoaded()
	}
	f := &Frontend{
		cl:    cl,
		opts:  opts,
		rmap:  NewReplicaMap(cl.Components(), opts.Replicas),
		start: time.Now(),
	}
	cl.SetRouter(func(subset, n int, queueDepth func(int) int) int {
		return f.opts.Router.Pick(subset, f.rmap.Replicas(subset), queueDepth)
	})
	return f, nil
}

// Snapshot reads the backend's live load signals.
func (f *Frontend) Snapshot() Load {
	n := f.cl.Components()
	cap := f.cl.QueueCap()
	sum, max := 0.0, 0.0
	for c := 0; c < n; c++ {
		frac := float64(f.cl.QueueDepth(c)) / float64(cap)
		sum += frac
		if frac > max {
			max = frac
		}
	}
	lat := 0.0
	if d := f.cl.Deadline(); d > 0 {
		lat = float64(f.cl.EstimatedP95()) / float64(d)
	}
	return Load{
		Inflight:     f.cl.Inflight(),
		QueueFrac:    sum / float64(n),
		MaxQueueFrac: max,
		LatencyFrac:  lat,
	}
}

// Call runs one request through the pipeline: observe load, admit (or
// reject/downgrade), select the ladder level for the request's SLO,
// and fan out through the cluster with the level attached to the
// context (handlers read it via LevelFrom).
func (f *Frontend) Call(ctx context.Context, payload interface{}, slo SLO) (*Result, error) {
	// Reserve before deciding: concurrent callers serialize through
	// the counter, so each sees every earlier reservation and a burst
	// admits at most MaxInflight requests (the slot is released when
	// this function returns — immediately for rejected requests).
	reserved := f.inflightNow.Add(1)
	defer f.inflightNow.Add(-1)
	load := f.Snapshot()
	load.Inflight = int(reserved - 1)
	if f.opts.Controller != nil {
		f.opts.Controller.Observe(load)
	}
	nowMs := float64(time.Since(f.start)) / float64(time.Millisecond)
	degraded := false
	switch Chain(nowMs, load, f.opts.Admission) {
	case Reject:
		f.rejected.Add(1)
		return nil, ErrRejected
	case Degrade:
		// Only Bounded requests actually lose their class: Exact keeps
		// its guarantee, BestEffort has nothing left to give up.
		if slo.Kind == Bounded {
			slo = BestEffortSLO()
			degraded = true
			f.degraded.Add(1)
		}
	}
	f.admitted.Add(1)
	level, estAcc := -1, 1.0
	callCtx := WithSLO(ctx, slo)
	if f.opts.Controller != nil {
		level = f.opts.Controller.LevelFor(slo)
		estAcc = f.opts.Controller.LevelAccuracy(level)
		callCtx = WithLevel(callCtx, level)
	}
	sub, err := f.cl.Call(callCtx, payload)
	if err != nil {
		return nil, err
	}
	return &Result{
		Sub:               sub,
		SLO:               slo,
		Level:             level,
		EstimatedAccuracy: estAcc,
		Degraded:          degraded,
	}, nil
}

// Stats returns the admission counters.
func (f *Frontend) Stats() Stats {
	return Stats{
		Admitted: f.admitted.Load(),
		Degraded: f.degraded.Load(),
		Rejected: f.rejected.Load(),
	}
}

// Controller exposes the degradation controller (for reporting); nil
// when the frontend runs without degradation.
func (f *Frontend) Controller() *Controller { return f.opts.Controller }

// levelKey is the context key carrying the selected ladder level to
// handlers.
type levelKey struct{}

// WithLevel attaches a ladder level to the context.
func WithLevel(ctx context.Context, level int) context.Context {
	return context.WithValue(ctx, levelKey{}, level)
}

// LevelFrom extracts the ladder level a handler should serve from.
// ok is false when the request did not pass through a Frontend; such
// handlers should use their finest synopsis.
func LevelFrom(ctx context.Context) (level int, ok bool) {
	level, ok = ctx.Value(levelKey{}).(int)
	return level, ok
}

// sloKey is the context key carrying the request's effective SLO.
type sloKey struct{}

// WithSLO attaches the effective SLO class to the context.
func WithSLO(ctx context.Context, slo SLO) context.Context {
	return context.WithValue(ctx, sloKey{}, slo)
}

// SLOFrom extracts the request's effective SLO inside a handler —
// in particular, handlers that can process exactly should bypass
// their synopsis entirely for Exact-class requests, matching the
// simulator's semantics (exactness is a guarantee paid in latency).
// ok is false when the request did not pass through a Frontend.
func SLOFrom(ctx context.Context) (slo SLO, ok bool) {
	slo, ok = ctx.Value(sloKey{}).(SLO)
	return slo, ok
}
