package frontend

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"accuracytrader/internal/audit"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/rescache"
	"accuracytrader/internal/service"
)

// ErrRejected is returned by Frontend.Call for requests shed by an
// admission policy.
var ErrRejected = errors.New("frontend: admission rejected request")

// Backend is the fan-out runtime a Frontend drives. It is the
// clock-agnostic seam that lets one policy set (admission, routing,
// degradation) govern every runtime: the in-process goroutine cluster
// (service.Cluster), the networked aggregator (netsvc.Aggregator), and
// — mirrored structurally — the discrete-event simulator. The load
// probes (QueueDepth, Inflight, EstimatedP95) feed the Load snapshot;
// SetRouter receives the frontend's replica-routing policy; Call fans
// one request out and gathers sub-results.
type Backend interface {
	// Components returns the fan-out width.
	Components() int
	// QueueCap is the per-component queue bound QueueDepth is measured
	// against (mailbox length in process, outstanding-request window
	// over the network).
	QueueCap() int
	// QueueDepth returns the outstanding sub-operations on component c.
	QueueDepth(c int) int
	// Inflight returns the number of Calls currently executing.
	Inflight() int
	// EstimatedP95 is the streaming tail sub-operation latency estimate.
	EstimatedP95() time.Duration
	// Deadline is the backend's configured call deadline.
	Deadline() time.Duration
	// SetRouter injects the routing policy used to place sub-operations.
	SetRouter(service.RouteFunc)
	// Call fans the payload out and gathers one SubResult per subset.
	Call(ctx context.Context, payload interface{}) ([]service.SubResult, error)
}

// Options configures a Frontend.
type Options struct {
	// Admission policies, evaluated together; the most severe verdict
	// wins (see Chain). Empty admits everything.
	Admission []AdmissionPolicy
	// Router places sub-operations on replicas (default least-loaded).
	Router Router
	// Replicas is the replica factor of the component map (default 2).
	Replicas int
	// Controller maps load to ladder levels. Nil disables degradation:
	// no level is attached to requests (LevelFrom reports ok=false, so
	// handlers use their finest synopsis) and Result.Level is -1,
	// matching the simulator's nil-controller behaviour.
	Controller *Controller
	// Cache, when non-nil, serves repeated requests from the
	// accuracy-aware result cache *ahead of admission* — a hit consumes
	// no token, no in-flight slot and no backend work. Entries are
	// tagged with the accuracy they were computed at; a hit is served
	// only when that accuracy clears the request's floor (Exact: 1,
	// Bounded: MinAccuracy, BestEffort: the cache's load-loosened base
	// floor) and the entry's data epoch is current. Concurrent
	// identical misses coalesce onto one backend computation.
	// Requires CacheKey and Controller (the accuracy tags come from the
	// controller's calibrated level estimates).
	Cache *rescache.Cache
	// CacheKey derives the canonical cache key of a payload; ok = false
	// marks the request uncacheable (it bypasses the cache entirely).
	// Use rescache.Key over wire.AppendCanonicalKey for wire payloads.
	CacheKey func(payload interface{}) (key uint64, ok bool)
	// CacheRefresh installs the cache's background refresh-to-exact
	// worker: hits on entries below the cache's refresh target enqueue
	// the key, and a low-priority worker recomputes the answer at
	// Exact class through this frontend — admission included, so
	// refreshes lose to foreground traffic under overload — and
	// upgrades the entry to accuracy 1.
	CacheRefresh bool
	// Metrics is the observability registry the frontend's counters live
	// in (frontend_admitted_total, frontend_degraded_total,
	// frontend_rejected_total, frontend_cache_hits_total). Nil uses a
	// private registry; Stats() is unaffected either way.
	Metrics *obs.Registry
	// SLO, when non-nil, receives one attainment record per finished
	// Call: the request's class, whether its context deadline had
	// already passed when the answer landed, and whether the answer was
	// degraded (downgraded class or incomplete fan-out). The tenant
	// dimension comes from obs.WithTenant on the request context.
	SLO *obs.SLOTracker
	// Audit, when non-nil together with AuditSample, offers answered
	// approximate-class fresh fan-outs to the ground-truth auditor.
	// The hash-based sampling decision runs on the request's trace ID;
	// non-sampled requests pay two nil checks and no allocation.
	Audit *audit.Auditor
	// AuditSample captures one answered request in auditable shape
	// (workload name, estimates, claimed bounds, replay payload). It
	// runs only for sampled requests; returning nil skips the sample.
	// The frontend fills TraceID, Class, Level, MinAccuracy,
	// ClaimedAccuracy and Tenant afterwards.
	AuditSample func(payload interface{}, res *Result) *audit.Sample
}

// Stats counts frontend outcomes.
type Stats struct {
	Admitted int64
	Degraded int64 // admitted with a downgraded SLO
	Rejected int64
	// CacheHits counts requests served from the result cache (including
	// coalesced waiters that shared another request's computation);
	// cache-served requests appear in no other counter — they bypass
	// admission entirely.
	CacheHits int64
}

// Result is one answered request.
type Result struct {
	// Sub holds the per-subset replies, in subset order.
	Sub []service.SubResult
	// SLO is the effective class after any admission downgrade.
	SLO SLO
	// Level is the ladder level the request was served from (coarse 0
	// … fine Levels-1), or -1 when no degradation controller is set.
	Level int
	// EstimatedAccuracy is the controller's accuracy estimate for
	// Level (for cache-served results: the accuracy recorded on the
	// entry, 1 for exact answers).
	EstimatedAccuracy float64
	// Degraded reports that admission downgraded the request's class.
	Degraded bool
	// FromCache reports that the result was served from the result
	// cache (or shared from a coalesced concurrent computation) instead
	// of a fresh fan-out.
	FromCache bool
}

// Frontend is the admission → routing → degradation pipeline in front
// of a fan-out Backend (a live service.Cluster or a networked
// netsvc.Aggregator). New injects its router into the backend; Call
// performs admission and level selection, then fans out.
type Frontend struct {
	cl    Backend
	opts  Options
	rmap  ReplicaMap
	start time.Time

	admitted  *obs.Counter
	degraded  *obs.Counter
	rejected  *obs.Counter
	cacheHits *obs.Counter
	// inflightNow reserves a request's in-flight slot at admission
	// time: the cluster's own counter only rises once Call reaches it,
	// which would let a concurrent burst race past MaxInflight.
	inflightNow atomic.Int64
}

// New wraps a backend. The backend's router is replaced with the
// frontend's replica-routing policy (backends fall back to home
// placement for anything the router leaves out of range).
func New(cl Backend, opts Options) (*Frontend, error) {
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Router == nil {
		opts.Router = NewLeastLoaded()
	}
	if opts.Cache != nil && opts.CacheKey == nil {
		return nil, fmt.Errorf("frontend: Options.Cache requires Options.CacheKey")
	}
	if opts.Cache != nil && opts.Controller == nil {
		// Without a controller there is no calibrated accuracy estimate
		// to tag entries with — callMiss would claim accuracy 1 for
		// approximate answers and Exact/Bounded floors would admit them,
		// silently voiding the cache's core contract.
		return nil, fmt.Errorf("frontend: Options.Cache requires Options.Controller (entries are tagged with its calibrated level accuracy)")
	}
	if opts.CacheRefresh && opts.Cache == nil {
		return nil, fmt.Errorf("frontend: Options.CacheRefresh requires Options.Cache")
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	f := &Frontend{
		cl:        cl,
		opts:      opts,
		rmap:      NewReplicaMap(cl.Components(), opts.Replicas),
		start:     time.Now(),
		admitted:  reg.Counter("frontend_admitted_total"),
		degraded:  reg.Counter("frontend_degraded_total"),
		rejected:  reg.Counter("frontend_rejected_total"),
		cacheHits: reg.Counter("frontend_cache_hits_total"),
	}
	reg.GaugeFunc("frontend_inflight", func() float64 { return float64(f.inflightNow.Load()) })
	cl.SetRouter(func(subset, n int, queueDepth func(int) int) int {
		return f.opts.Router.Pick(subset, f.rmap.Replicas(subset), queueDepth)
	})
	if opts.CacheRefresh {
		var gate func() bool
		if opts.Controller != nil {
			// Low priority: don't even attempt an exact recomputation
			// while the smoothed load says the service is busy; the
			// admission chain still has the final say below the gate.
			ctrl := opts.Controller
			gate = func() bool { return ctrl.Load() < RefreshLoadCeiling }
		}
		opts.Cache.SetRefresh(f.refreshToExact, gate)
	}
	return f, nil
}

// RefreshLoadCeiling gates the background refresh-to-exact worker in
// both runtimes: above this smoothed controller load, refreshes are
// deferred entirely (netsvc.FrontServer.EnableCache uses the same
// value, so tuning it here tunes both).
const RefreshLoadCeiling = 0.7

// refreshToExact is the cache's refresh function: recompute one cached
// answer at Exact class through the full frontend pipeline. Going
// through admission is what makes the worker genuinely low-priority —
// under overload the refresh is shed like any other request and the
// entry keeps its coarse answer until load drops.
func (f *Frontend) refreshToExact(_ uint64, payload interface{}) (interface{}, float64, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*f.cl.Deadline())
	defer cancel()
	// Internal traffic: a background refresh must not count against
	// client SLO windows (observe skips internal contexts).
	ctx = obs.WithInternal(ctx)
	res, err := f.callMiss(ctx, payload, ExactSLO())
	if err != nil || !service.Complete(res.Sub) {
		return nil, 0, false
	}
	return storableResult(res, 1), 1, true
}

// storableResult trims a fresh result down to what a cache entry may
// replay: values and the serving metadata, no per-execution transport
// facts.
func storableResult(res *Result, acc float64) *Result {
	return &Result{
		Sub:               service.Snapshot(res.Sub),
		SLO:               res.SLO,
		Level:             res.Level,
		EstimatedAccuracy: acc,
	}
}

// Snapshot reads the backend's live load signals.
func (f *Frontend) Snapshot() Load {
	n := f.cl.Components()
	cap := f.cl.QueueCap()
	sum, max := 0.0, 0.0
	for c := 0; c < n; c++ {
		frac := float64(f.cl.QueueDepth(c)) / float64(cap)
		sum += frac
		if frac > max {
			max = frac
		}
	}
	lat := 0.0
	if d := f.cl.Deadline(); d > 0 {
		lat = float64(f.cl.EstimatedP95()) / float64(d)
	}
	return Load{
		Inflight:     f.cl.Inflight(),
		QueueFrac:    sum / float64(n),
		MaxQueueFrac: max,
		LatencyFrac:  lat,
	}
}

// Call runs one request through the pipeline. With a result cache
// configured, the cache is consulted first — ahead of admission, so a
// hit consumes no token and no in-flight slot — and concurrent
// identical misses coalesce onto one computation. The miss path (and
// the cacheless path): observe load, admit (or reject/downgrade),
// select the ladder level for the request's SLO, and fan out through
// the cluster with the level attached to the context (handlers read it
// via LevelFrom).
func (f *Frontend) Call(ctx context.Context, payload interface{}, slo SLO) (*Result, error) {
	res, err := f.call(ctx, payload, slo)
	if f.opts.SLO != nil || f.opts.Audit != nil {
		f.observe(ctx, payload, slo, res, err)
	}
	return res, err
}

func (f *Frontend) call(ctx context.Context, payload interface{}, slo SLO) (*Result, error) {
	if f.opts.Cache != nil {
		if key, ok := f.opts.CacheKey(payload); ok {
			return f.callCached(ctx, key, payload, slo)
		}
	}
	return f.callMiss(ctx, payload, slo)
}

// observe feeds a finished Call into the SLO tracker and (for sampled
// approximate-class fresh fan-outs) the ground-truth auditor. Rejected
// requests count toward the class totals — shedding a Bounded request
// is an SLO-relevant outcome — but only answered requests can miss a
// deadline or degrade.
func (f *Frontend) observe(ctx context.Context, payload interface{}, slo SLO, res *Result, err error) {
	if obs.IsInternal(ctx) {
		// Internal traffic (audit replays, cache refreshes, re-warms) is
		// measurement and maintenance, not service: recording it would
		// dilute client attainment windows and skew audit sampling.
		return
	}
	tenant := obs.TenantFrom(ctx)
	if f.opts.SLO != nil {
		var flags obs.SLOFlags
		if dl, ok := ctx.Deadline(); ok && time.Now().After(dl) {
			flags |= obs.SLODeadlineMiss
		}
		if res != nil && (res.Degraded || !service.Complete(res.Sub)) {
			flags |= obs.SLODegraded
		}
		f.opts.SLO.Record(uint8(slo.Kind), tenant, flags)
	}
	if f.opts.Audit == nil || f.opts.AuditSample == nil ||
		err != nil || res == nil || res.FromCache ||
		slo.Kind == Exact || !service.Complete(res.Sub) {
		return
	}
	tr := obs.TraceFrom(ctx)
	if !f.opts.Audit.ShouldSample(tr.ID()) {
		return
	}
	smp := f.opts.AuditSample(payload, res)
	if smp == nil {
		return
	}
	smp.TraceID = tr.ID()
	smp.Class = uint8(slo.Kind)
	smp.Level = int16(res.Level)
	smp.MinAccuracy = slo.MinAccuracy
	smp.ClaimedAccuracy = res.EstimatedAccuracy
	smp.Tenant = tenant
	f.opts.Audit.Submit(smp)
}

// cacheFloor maps an SLO to the accuracy floor a cached entry must
// clear to serve it. Exact and Bounded floors are hard; the BestEffort
// floor is the cache's load-loosened base.
func (f *Frontend) cacheFloor(slo SLO) float64 {
	switch slo.Kind {
	case Exact:
		return 1
	case Bounded:
		return slo.MinAccuracy
	default:
		return f.opts.Cache.BestEffortFloor()
	}
}

// errPartialResult marks a computed result that must not be shared
// with coalesced waiters or stored: a fan-out with errors or skips
// does not back its accuracy tag. The reply itself still travels back
// to its own caller alongside it.
var errPartialResult = errors.New("frontend: partial result not cacheable")

// callCached serves one cacheable request: lookup, coalesce, or
// compute-and-store.
func (f *Frontend) callCached(ctx context.Context, key uint64, payload interface{}, slo SLO) (*Result, error) {
	if f.opts.Controller != nil {
		// Keep the cache's BestEffort slack tracking the degradation
		// controller's smoothed load.
		f.opts.Cache.SetLoad(f.opts.Controller.Load())
	}
	tr := obs.TraceFrom(ctx)
	var cacheT0 time.Time
	if tr != nil {
		cacheT0 = time.Now()
	}
	v, acc, outcome, err := f.opts.Cache.DoWith(ctx, key, f.cacheFloor(slo),
		func() (interface{}, float64, error) {
			// Capture the epoch before computing: if a synopsis update
			// bumps it mid-flight, the entry is born stale rather than
			// serving pre-update data as current.
			epoch := f.opts.Cache.Epoch()
			res, err := f.callMiss(ctx, payload, slo)
			if err != nil {
				return nil, 0, err
			}
			acc := res.EstimatedAccuracy
			if !service.Complete(res.Sub) {
				return res, acc, errPartialResult
			}
			f.opts.Cache.StoreAt(key, payload, storableResult(res, acc), acc, epoch)
			return res, acc, nil
		})
	if errors.Is(err, errPartialResult) {
		// This caller's own partial computation: answer it (the errors
		// live in Sub), just never share or store it.
		tr.SetCacheOutcome(obs.CacheMiss)
		return v.(*Result), nil
	}
	if err != nil {
		return nil, err
	}
	res := v.(*Result)
	if outcome == rescache.OutcomeMiss {
		// This caller's own computation: the cost lives in callMiss's
		// spans, so no cache span — it would double-count the fan-out.
		tr.SetCacheOutcome(obs.CacheMiss)
		return res, nil
	}
	// Cache hit or coalesced share: the stored/shared result is
	// immutable, so hand out a copy stamped with this request's class.
	f.cacheHits.Inc()
	if tr != nil {
		out := int64(obs.CacheHit)
		if outcome == rescache.OutcomeCoalesced {
			out = obs.CacheCoalesced
		}
		tr.SetCacheOutcome(uint8(out))
		tr.Add(obs.SpanCache, -1, cacheT0, time.Since(cacheT0), out)
	}
	out := *res
	out.SLO = slo
	out.EstimatedAccuracy = acc
	out.Degraded = false
	out.FromCache = true
	return &out, nil
}

// callMiss is the uncached pipeline: admission, level selection, fan
// out.
func (f *Frontend) callMiss(ctx context.Context, payload interface{}, slo SLO) (*Result, error) {
	// Reserve before deciding: concurrent callers serialize through
	// the counter, so each sees every earlier reservation and a burst
	// admits at most MaxInflight requests (the slot is released when
	// this function returns — immediately for rejected requests).
	reserved := f.inflightNow.Add(1)
	defer f.inflightNow.Add(-1)
	tr := obs.TraceFrom(ctx)
	var admitT0 time.Time
	if tr != nil {
		admitT0 = time.Now()
	}
	load := f.Snapshot()
	load.Inflight = int(reserved - 1)
	if f.opts.Controller != nil {
		f.opts.Controller.Observe(load)
	}
	nowMs := float64(time.Since(f.start)) / float64(time.Millisecond)
	degraded := false
	switch Chain(nowMs, load, f.opts.Admission) {
	case Reject:
		f.rejected.Inc()
		if tr != nil {
			tr.SetDecision(obs.VerdictRejected, uint8(slo.Kind), -1)
			tr.Add(obs.SpanAdmission, -1, admitT0, time.Since(admitT0), obs.VerdictRejected)
		}
		return nil, ErrRejected
	case Degrade:
		// Only Bounded requests actually lose their class: Exact keeps
		// its guarantee, BestEffort has nothing left to give up.
		if slo.Kind == Bounded {
			slo = BestEffortSLO()
			degraded = true
			f.degraded.Inc()
		}
	}
	f.admitted.Inc()
	level, estAcc := -1, 1.0
	callCtx := WithSLO(ctx, slo)
	if f.opts.Controller != nil {
		level = f.opts.Controller.LevelFor(slo)
		estAcc = f.opts.Controller.LevelAccuracy(level)
		callCtx = WithLevel(callCtx, level)
		if slo.Kind == Exact {
			// Exact-class handlers bypass their synopsis entirely; the
			// delivered accuracy is 1 regardless of the level estimate.
			estAcc = 1
		}
	}
	if tr != nil {
		verdict := uint8(obs.VerdictAdmitted)
		if degraded {
			verdict = obs.VerdictDegraded
		}
		tr.SetDecision(verdict, uint8(slo.Kind), int16(level))
		tr.Add(obs.SpanAdmission, -1, admitT0, time.Since(admitT0), int64(verdict))
	}
	sub, err := f.cl.Call(callCtx, payload)
	if err != nil {
		return nil, err
	}
	return &Result{
		Sub:               sub,
		SLO:               slo,
		Level:             level,
		EstimatedAccuracy: estAcc,
		Degraded:          degraded,
	}, nil
}

// Stats returns the admission counters. The counters live in the
// Options.Metrics registry (or a private one), so the same numbers are
// one Prometheus scrape away; this snapshot API is unchanged.
func (f *Frontend) Stats() Stats {
	return Stats{
		Admitted:  f.admitted.Value(),
		Degraded:  f.degraded.Value(),
		Rejected:  f.rejected.Value(),
		CacheHits: f.cacheHits.Value(),
	}
}

// Cache exposes the configured result cache (nil when the frontend
// runs without one) — integrators bump its epoch after synopsis
// updates.
func (f *Frontend) Cache() *rescache.Cache { return f.opts.Cache }

// Controller exposes the degradation controller (for reporting); nil
// when the frontend runs without degradation.
func (f *Frontend) Controller() *Controller { return f.opts.Controller }

// levelKey is the context key carrying the selected ladder level to
// handlers.
type levelKey struct{}

// WithLevel attaches a ladder level to the context.
func WithLevel(ctx context.Context, level int) context.Context {
	return context.WithValue(ctx, levelKey{}, level)
}

// LevelFrom extracts the ladder level a handler should serve from.
// ok is false when the request did not pass through a Frontend; such
// handlers should use their finest synopsis.
func LevelFrom(ctx context.Context) (level int, ok bool) {
	level, ok = ctx.Value(levelKey{}).(int)
	return level, ok
}

// sloKey is the context key carrying the request's effective SLO.
type sloKey struct{}

// WithSLO attaches the effective SLO class to the context.
func WithSLO(ctx context.Context, slo SLO) context.Context {
	return context.WithValue(ctx, sloKey{}, slo)
}

// SLOFrom extracts the request's effective SLO inside a handler —
// in particular, handlers that can process exactly should bypass
// their synopsis entirely for Exact-class requests, matching the
// simulator's semantics (exactness is a guarantee paid in latency).
// ok is false when the request did not pass through a Frontend.
func SLOFrom(ctx context.Context) (slo SLO, ok bool) {
	slo, ok = ctx.Value(sloKey{}).(SLO)
	return slo, ok
}
