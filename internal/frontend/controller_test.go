package frontend

import (
	"math"
	"testing"
)

func mustController(t *testing.T, cfg ControllerConfig) *Controller {
	t.Helper()
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(ControllerConfig{Levels: 0}); err == nil {
		t.Fatal("zero levels accepted")
	}
	if _, err := NewController(ControllerConfig{Levels: 3, LevelAccuracy: []float64{1}}); err == nil {
		t.Fatal("mismatched accuracy slice accepted")
	}
	// Default accuracy ramp ends at 1 (finest level is exact-ish).
	c := mustController(t, ControllerConfig{Levels: 4})
	if a := c.LevelAccuracy(3); a != 1 {
		t.Fatalf("finest default accuracy = %v", a)
	}
	if a, b := c.LevelAccuracy(0), c.LevelAccuracy(3); a >= b {
		t.Fatalf("accuracy ramp not increasing: %v >= %v", a, b)
	}
	// Out-of-range level lookups clamp.
	if c.LevelAccuracy(-1) != c.LevelAccuracy(0) || c.LevelAccuracy(99) != c.LevelAccuracy(3) {
		t.Fatal("LevelAccuracy does not clamp")
	}
}

func TestControllerEWMAConvergence(t *testing.T) {
	c := mustController(t, ControllerConfig{Levels: 4, Alpha: 0.5, InflightSaturation: 10})
	if c.Load() != 0 {
		t.Fatalf("idle load = %v", c.Load())
	}
	// Sustained saturation converges toward 1.
	for i := 0; i < 50; i++ {
		c.Observe(Load{MaxQueueFrac: 1})
	}
	if l := c.Load(); math.Abs(l-1) > 1e-6 {
		t.Fatalf("saturated load = %v", l)
	}
	// A single calm sample only halves the estimate (alpha 0.5) — the
	// EWMA smooths out transients.
	c.Observe(Load{})
	if l := c.Load(); math.Abs(l-0.5) > 1e-6 {
		t.Fatalf("after one calm sample load = %v", l)
	}
	// Sustained calm decays back toward 0.
	for i := 0; i < 60; i++ {
		c.Observe(Load{})
	}
	if l := c.Load(); l > 1e-6 {
		t.Fatalf("calm load = %v", l)
	}
}

func TestControllerRawLoadTakesBottleneck(t *testing.T) {
	c := mustController(t, ControllerConfig{Levels: 2, Alpha: 1, InflightSaturation: 10})
	// Inflight is the bottleneck here.
	c.Observe(Load{Inflight: 5, MaxQueueFrac: 0.1, LatencyFrac: 0.2})
	if l := c.Load(); math.Abs(l-0.5) > 1e-6 {
		t.Fatalf("load = %v, want 0.5 (inflight 5/10)", l)
	}
	// Latency above the deadline clamps to 1.
	c.Observe(Load{LatencyFrac: 3})
	if l := c.Load(); math.Abs(l-1) > 1e-6 {
		t.Fatalf("load = %v, want clamped 1", l)
	}
}

func TestLevelForMapsLoadAndSLO(t *testing.T) {
	c := mustController(t, ControllerConfig{
		Levels:        4,
		LevelAccuracy: []float64{0.6, 0.8, 0.95, 1},
		Alpha:         1,
	})
	// Idle: everyone gets the finest level.
	for _, slo := range []SLO{ExactSLO(), BoundedSLO(0.9), BestEffortSLO()} {
		if lv := c.LevelFor(slo); lv != 3 {
			t.Fatalf("idle %v level = %d", slo, lv)
		}
	}
	// Saturated: best effort drops to the coarsest, bounded only to its
	// accuracy floor (0.95 ≥ 0.9 → level 2), exact stays finest.
	c.Observe(Load{MaxQueueFrac: 1})
	if lv := c.LevelFor(BestEffortSLO()); lv != 0 {
		t.Fatalf("saturated best-effort level = %d", lv)
	}
	if lv := c.LevelFor(BoundedSLO(0.9)); lv != 2 {
		t.Fatalf("saturated bounded level = %d", lv)
	}
	if lv := c.LevelFor(ExactSLO()); lv != 3 {
		t.Fatalf("saturated exact level = %d", lv)
	}
	// An unsatisfiable accuracy floor falls back to the finest level.
	if lv := c.LevelFor(BoundedSLO(1.5)); lv != 3 {
		t.Fatalf("impossible bound level = %d", lv)
	}
	// Mid load picks an intermediate level for best effort.
	c.Observe(Load{MaxQueueFrac: 0.5})
	if lv := c.LevelFor(BestEffortSLO()); lv <= 0 || lv >= 3 {
		t.Fatalf("mid-load level = %d", lv)
	}
}
