package frontend

import "testing"

func TestReplicaMap(t *testing.T) {
	m := NewReplicaMap(5, 3)
	if m.Components() != 5 || m.Factor() != 3 {
		t.Fatalf("n=%d r=%d", m.Components(), m.Factor())
	}
	got := m.Replicas(4) // wraps around
	want := []int{4, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Replicas(4) = %v", got)
		}
	}
	// Factor clamps to [1, n].
	if NewReplicaMap(3, 10).Factor() != 3 {
		t.Fatal("factor not clamped to n")
	}
	if NewReplicaMap(3, 0).Factor() != 1 {
		t.Fatal("factor not clamped to 1")
	}
	// Out-of-range subsets wrap instead of panicking.
	if r := m.Replicas(9); r[0] != 4 {
		t.Fatalf("Replicas(9) = %v", r)
	}
	if r := m.Replicas(-1); r[0] != 4 {
		t.Fatalf("Replicas(-1) = %v", r)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	r := NewRoundRobin()
	replicas := []int{3, 4, 5}
	depth := func(int) int { return 0 }
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, r.Pick(7, replicas, depth))
	}
	want := []int{3, 4, 5, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v", got)
		}
	}
	// Subsets rotate independently.
	if c := r.Pick(8, replicas, depth); c != 3 {
		t.Fatalf("fresh subset started at %d", c)
	}
}

func TestLeastLoadedPicksShallowest(t *testing.T) {
	r := NewLeastLoaded()
	depths := map[int]int{0: 5, 1: 2, 2: 9}
	depth := func(c int) int { return depths[c] }
	if c := r.Pick(0, []int{0, 1, 2}, depth); c != 1 {
		t.Fatalf("picked %d", c)
	}
	// Ties break toward the home component (first replica).
	depths[1] = 5
	depths[2] = 5
	if c := r.Pick(0, []int{0, 1, 2}, depth); c != 0 {
		t.Fatalf("tie broke to %d", c)
	}
	if c := r.Pick(3, nil, depth); c != 3 {
		t.Fatalf("empty replicas = %d", c)
	}
}

func TestPowerOfTwoPrefersLessLoaded(t *testing.T) {
	r := NewPowerOfTwo(1)
	// Component 2 is drastically deeper; over many picks it must lose
	// every comparison it takes part in, so its share stays well below
	// uniform (1/3).
	depth := func(c int) int {
		if c == 2 {
			return 100
		}
		return 0
	}
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		counts[r.Pick(0, []int{0, 1, 2}, depth)]++
	}
	if counts[2] != 0 {
		t.Fatalf("deep component won %d comparisons", counts[2])
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("healthy components unused: %v", counts)
	}
	// Single replica short-circuits without sampling.
	if c := r.Pick(5, []int{9}, depth); c != 9 {
		t.Fatalf("single replica = %d", c)
	}
}
