package frontend

import "sync"

// Load is a point-in-time snapshot of cluster pressure, the input to
// admission decisions and the degradation controller.
type Load struct {
	// Inflight is the number of admitted requests not yet answered.
	Inflight int
	// QueueFrac is the mean component mailbox occupancy in [0,1].
	QueueFrac float64
	// MaxQueueFrac is the hottest component's mailbox occupancy in
	// [0,1] — the signal that matters for tail latency.
	MaxQueueFrac float64
	// LatencyFrac is the estimated tail sub-operation latency divided
	// by the service deadline; values above 1 mean the tail already
	// blows the deadline.
	LatencyFrac float64
}

// Decision is an admission policy's verdict on one request.
type Decision int

// Admission verdicts, in increasing severity. When several policies
// are chained, the most severe verdict wins.
const (
	// Admit lets the request through unchanged.
	Admit Decision = iota
	// Degrade admits the request but downgrades a Bounded SLO class to
	// BestEffort (Exact requests keep their guarantee — for them
	// rejection is the only shedding mechanism — and BestEffort has
	// nothing left to give up).
	Degrade
	// Reject sheds the request before it reaches any mailbox.
	Reject
)

// String returns the verdict name.
func (d Decision) String() string {
	switch d {
	case Admit:
		return "admit"
	case Degrade:
		return "degrade"
	default:
		return "reject"
	}
}

// AdmissionPolicy decides whether one arriving request enters the
// fan-out. nowMs is a monotonic millisecond clock (wall time in the
// live runtime, virtual time in the simulator). Implementations must
// be safe for concurrent use.
type AdmissionPolicy interface {
	Admit(nowMs float64, l Load) Decision
}

// TokenBucket is a rate-limiting admission policy: requests consume
// one token each, tokens refill continuously at a fixed rate up to a
// burst capacity, and an empty bucket rejects.
type TokenBucket struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	tokens  float64
	lastMs  float64
	started bool
}

// NewTokenBucket returns a bucket admitting ratePerSec requests/second
// with bursts up to burst. The bucket starts full.
func NewTokenBucket(ratePerSec, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: ratePerSec, burst: burst, tokens: burst}
}

// Admit consumes a token if one is available.
func (b *TokenBucket) Admit(nowMs float64, _ Load) Decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.started {
		b.started = true
		b.lastMs = nowMs
	}
	if nowMs > b.lastMs {
		b.tokens += (nowMs - b.lastMs) / 1000 * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.lastMs = nowMs
	}
	if b.tokens < 1 {
		return Reject
	}
	b.tokens--
	return Admit
}

// Refund returns the token consumed by an Admit whose request was
// rejected elsewhere in the chain.
func (b *TokenBucket) Refund() {
	b.mu.Lock()
	if b.tokens++; b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// MaxInflight rejects once the number of in-flight requests reaches a
// limit — the classic concurrency cap.
type MaxInflight struct {
	limit int
}

// NewMaxInflight returns a policy admitting at most limit concurrent
// requests.
func NewMaxInflight(limit int) *MaxInflight {
	if limit < 1 {
		limit = 1
	}
	return &MaxInflight{limit: limit}
}

// Admit rejects when the in-flight count has reached the limit.
func (m *MaxInflight) Admit(_ float64, l Load) Decision {
	if l.Inflight >= m.limit {
		return Reject
	}
	return Admit
}

// QueueWatermark acts on the hottest component's mailbox occupancy:
// above the degrade watermark requests are downgraded to BestEffort,
// above the reject watermark they are shed. This is the policy that
// turns "mailboxes filling up" into graceful degradation instead of
// ErrQueueFull deep in the fan-out.
type QueueWatermark struct {
	degradeAt float64
	rejectAt  float64
}

// NewQueueWatermark returns a watermark policy. Watermarks are
// occupancy fractions in [0,1]; degradeAt should be below rejectAt
// (values are clamped into order).
func NewQueueWatermark(degradeAt, rejectAt float64) *QueueWatermark {
	if rejectAt <= 0 {
		rejectAt = 1
	}
	if degradeAt > rejectAt {
		degradeAt = rejectAt
	}
	return &QueueWatermark{degradeAt: degradeAt, rejectAt: rejectAt}
}

// Admit compares the hottest mailbox against the watermarks.
func (q *QueueWatermark) Admit(_ float64, l Load) Decision {
	switch {
	case l.MaxQueueFrac >= q.rejectAt:
		return Reject
	case l.MaxQueueFrac >= q.degradeAt:
		return Degrade
	default:
		return Admit
	}
}

// Refunder is implemented by consuming policies (the token bucket)
// whose Admit verdict charges state that should be returned when the
// chain's final verdict rejects the request anyway.
type Refunder interface {
	Refund()
}

// Chain evaluates every policy and returns the most severe verdict, so
// a rate limit, a concurrency cap, and a queue watermark compose. When
// the final verdict is Reject, policies that admitted are refunded —
// a request shed by the concurrency cap must not also drain the token
// bucket.
func Chain(nowMs float64, l Load, policies []AdmissionPolicy) Decision {
	verdict := Admit
	var charged []AdmissionPolicy
	for _, p := range policies {
		d := p.Admit(nowMs, l)
		if d > verdict {
			verdict = d
		}
		if d == Admit {
			if _, ok := p.(Refunder); ok {
				charged = append(charged, p)
			}
		}
	}
	if verdict == Reject {
		for _, p := range charged {
			p.(Refunder).Refund()
		}
	}
	return verdict
}
