package frontend

import "testing"

func TestTokenBucketRefills(t *testing.T) {
	b := NewTokenBucket(100, 2) // 100/s, burst 2, starts full
	if d := b.Admit(0, Load{}); d != Admit {
		t.Fatalf("first = %v", d)
	}
	if d := b.Admit(0, Load{}); d != Admit {
		t.Fatalf("second (burst) = %v", d)
	}
	if d := b.Admit(0, Load{}); d != Reject {
		t.Fatalf("empty bucket = %v", d)
	}
	// 10ms at 100/s refills exactly one token.
	if d := b.Admit(10, Load{}); d != Admit {
		t.Fatalf("after refill = %v", d)
	}
	if d := b.Admit(10, Load{}); d != Reject {
		t.Fatalf("refill over-credited: %v", d)
	}
	// A long idle period caps at the burst, not unbounded credit.
	if d := b.Admit(100_000, Load{}); d != Admit {
		t.Fatal("idle bucket rejected")
	}
	if d := b.Admit(100_000, Load{}); d != Admit {
		t.Fatal("burst capacity lost")
	}
	if d := b.Admit(100_000, Load{}); d != Reject {
		t.Fatal("burst cap not enforced after idle")
	}
	// A clock that does not advance must not mint tokens.
	b2 := NewTokenBucket(1000, 1)
	b2.Admit(5, Load{})
	if d := b2.Admit(5, Load{}); d != Reject {
		t.Fatalf("same-instant refill: %v", d)
	}
}

func TestMaxInflight(t *testing.T) {
	m := NewMaxInflight(3)
	if d := m.Admit(0, Load{Inflight: 2}); d != Admit {
		t.Fatalf("below limit = %v", d)
	}
	if d := m.Admit(0, Load{Inflight: 3}); d != Reject {
		t.Fatalf("at limit = %v", d)
	}
	if d := m.Admit(0, Load{Inflight: 10}); d != Reject {
		t.Fatalf("above limit = %v", d)
	}
	// A non-positive limit clamps to 1 instead of rejecting everything.
	if d := NewMaxInflight(0).Admit(0, Load{Inflight: 0}); d != Admit {
		t.Fatalf("clamped limit = %v", d)
	}
}

func TestQueueWatermark(t *testing.T) {
	q := NewQueueWatermark(0.5, 0.9)
	if d := q.Admit(0, Load{MaxQueueFrac: 0.2}); d != Admit {
		t.Fatalf("calm = %v", d)
	}
	if d := q.Admit(0, Load{MaxQueueFrac: 0.5}); d != Degrade {
		t.Fatalf("at degrade mark = %v", d)
	}
	if d := q.Admit(0, Load{MaxQueueFrac: 0.95}); d != Reject {
		t.Fatalf("above reject mark = %v", d)
	}
	// Inverted watermarks are clamped into order.
	inv := NewQueueWatermark(0.9, 0.5)
	if d := inv.Admit(0, Load{MaxQueueFrac: 0.7}); d != Reject {
		t.Fatalf("inverted marks = %v", d)
	}
}

func TestChainRefundsTokenOnReject(t *testing.T) {
	// A request shed by the concurrency cap must not also drain the
	// token bucket: a zero-rate bucket with one token survives any
	// number of capped-out arrivals and still admits once the cap
	// clears.
	bucket := NewTokenBucket(0, 1)
	policies := []AdmissionPolicy{bucket, NewMaxInflight(1)}
	full := Load{Inflight: 5}
	for i := 0; i < 10; i++ {
		if d := Chain(0, full, policies); d != Reject {
			t.Fatalf("capped arrival %d = %v", i, d)
		}
	}
	if d := Chain(0, Load{}, policies); d != Admit {
		t.Fatal("token drained by rejected arrivals")
	}
	// The refund never over-credits past the burst.
	for i := 0; i < 5; i++ {
		Chain(0, full, policies)
	}
	if d := Chain(0, Load{}, policies); d != Reject {
		t.Fatal("refund minted tokens beyond the burst")
	}
}

func TestChainMostSevereWins(t *testing.T) {
	l := Load{Inflight: 10, MaxQueueFrac: 0.6}
	policies := []AdmissionPolicy{
		NewQueueWatermark(0.5, 0.99), // degrade
		NewMaxInflight(100),          // admit
	}
	if d := Chain(0, l, policies); d != Degrade {
		t.Fatalf("chain = %v", d)
	}
	policies = append(policies, NewMaxInflight(5)) // reject
	if d := Chain(0, l, policies); d != Reject {
		t.Fatalf("chain with reject = %v", d)
	}
	if d := Chain(0, l, nil); d != Admit {
		t.Fatalf("empty chain = %v", d)
	}
}
