package frontend

import (
	"fmt"
	"sync"
)

// SLOKind classifies a request's accuracy/latency contract.
type SLOKind int

// The request classes, BlinkDB-style: Exact requests never degrade,
// Bounded requests accept any synopsis level whose estimated accuracy
// stays above a floor, BestEffort requests take whatever the current
// load dictates.
const (
	Exact SLOKind = iota
	Bounded
	BestEffort
)

// String returns the class name.
func (k SLOKind) String() string {
	switch k {
	case Exact:
		return "Exact"
	case Bounded:
		return "Bounded"
	default:
		return "BestEffort"
	}
}

// SLO is a per-request service-level objective.
type SLO struct {
	Kind SLOKind
	// MinAccuracy is the accuracy floor in [0,1] for Bounded requests;
	// ignored for the other kinds.
	MinAccuracy float64
}

// ExactSLO requires the finest processing regardless of load.
func ExactSLO() SLO { return SLO{Kind: Exact} }

// BoundedSLO accepts degradation down to an estimated accuracy floor.
func BoundedSLO(minAccuracy float64) SLO {
	return SLO{Kind: Bounded, MinAccuracy: minAccuracy}
}

// BestEffortSLO accepts whatever level the current load dictates.
func BestEffortSLO() SLO { return SLO{Kind: BestEffort} }

// String renders the SLO for reports.
func (s SLO) String() string {
	if s.Kind == Bounded {
		return fmt.Sprintf("Bounded{%.2f}", s.MinAccuracy)
	}
	return s.Kind.String()
}

// ControllerConfig parametrizes the degradation controller.
type ControllerConfig struct {
	// Levels is the number of ladder levels, coarse (0) to fine
	// (Levels-1), matching synopsis.Ladder's cut order. Required ≥ 1.
	Levels int
	// LevelAccuracy estimates the delivered accuracy of each level in
	// [0,1], coarse to fine. Defaults to a linear ramp ending at 1 —
	// replace it with measured per-level accuracy when available.
	LevelAccuracy []float64
	// Alpha is the EWMA weight of the newest load sample (default 0.3).
	Alpha float64
	// InflightSaturation is the in-flight request count treated as
	// load 1 (default 64).
	InflightSaturation int
}

// Controller is the degradation controller: it smooths Load snapshots
// into a scalar load estimate and maps (load, SLO) to the ladder level
// a request should be served from. Safe for concurrent use.
type Controller struct {
	mu   sync.Mutex
	cfg  ControllerConfig
	load float64
}

// NewController validates the config and returns an idle controller.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("frontend: controller needs >= 1 level, got %d", cfg.Levels)
	}
	if cfg.LevelAccuracy == nil {
		cfg.LevelAccuracy = make([]float64, cfg.Levels)
		for i := range cfg.LevelAccuracy {
			cfg.LevelAccuracy[i] = float64(i+1) / float64(cfg.Levels)
		}
	}
	if len(cfg.LevelAccuracy) != cfg.Levels {
		return nil, fmt.Errorf("frontend: %d accuracy estimates for %d levels", len(cfg.LevelAccuracy), cfg.Levels)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.3
	}
	if cfg.InflightSaturation < 1 {
		cfg.InflightSaturation = 64
	}
	return &Controller{cfg: cfg}, nil
}

// rawLoad collapses a snapshot to a scalar in [0,1]: the most
// saturated of the three pressure signals (queue depth, concurrency,
// tail latency) — whichever resource is the bottleneck drives
// degradation.
func (c *Controller) rawLoad(l Load) float64 {
	load := l.MaxQueueFrac
	if f := float64(l.Inflight) / float64(c.cfg.InflightSaturation); f > load {
		load = f
	}
	if l.LatencyFrac > load {
		load = l.LatencyFrac
	}
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	return load
}

// Observe folds one snapshot into the EWMA estimate and returns the
// smoothed load.
func (c *Controller) Observe(l Load) float64 {
	raw := c.rawLoad(l)
	c.mu.Lock()
	c.load = c.cfg.Alpha*raw + (1-c.cfg.Alpha)*c.load
	load := c.load
	c.mu.Unlock()
	return load
}

// Load returns the current smoothed load estimate in [0,1].
func (c *Controller) Load() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.load
}

// Levels returns the configured ladder depth.
func (c *Controller) Levels() int { return c.cfg.Levels }

// LevelAccuracy returns the estimated delivered accuracy of a level
// (clamped into range).
func (c *Controller) LevelAccuracy(level int) float64 {
	if level < 0 {
		level = 0
	}
	if level >= c.cfg.Levels {
		level = c.cfg.Levels - 1
	}
	return c.cfg.LevelAccuracy[level]
}

// LevelFor maps the current load and a request's SLO to the ladder
// level to serve it from, mirroring synopsis.Ladder.Select's load→cut
// mapping: load 0 picks the finest level, load 1 the coarsest. Exact
// requests always get the finest level; Bounded requests never go
// coarser than the finest level whose estimated accuracy still meets
// their floor.
func (c *Controller) LevelFor(slo SLO) int {
	levels := c.cfg.Levels
	finest := levels - 1
	if slo.Kind == Exact {
		return finest
	}
	idx := int((1 - c.Load()) * float64(levels))
	if idx > finest {
		idx = finest
	}
	if idx < 0 {
		idx = 0
	}
	if slo.Kind == Bounded {
		floor := finest
		for i := 0; i < levels; i++ {
			if c.cfg.LevelAccuracy[i] >= slo.MinAccuracy {
				floor = i
				break
			}
		}
		if idx < floor {
			idx = floor
		}
	}
	return idx
}
