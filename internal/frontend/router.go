package frontend

import (
	"sync"

	"accuracytrader/internal/stats"
)

// ReplicaMap places R replicas of each data subset on consecutive
// components: subset s can be served by components s, s+1, …, s+R-1
// (mod n). R=1 degenerates to the fixed home-component placement; R=n
// makes every component a candidate for every subset.
type ReplicaMap struct {
	n        int
	replicas [][]int
}

// NewReplicaMap builds the map for n components with replica factor r
// (clamped to [1, n]).
func NewReplicaMap(n, r int) ReplicaMap {
	if n < 1 {
		n = 1
	}
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	m := ReplicaMap{n: n, replicas: make([][]int, n)}
	for s := 0; s < n; s++ {
		row := make([]int, r)
		for k := 0; k < r; k++ {
			row[k] = (s + k) % n
		}
		m.replicas[s] = row
	}
	return m
}

// Components returns the component count n.
func (m ReplicaMap) Components() int { return m.n }

// Factor returns the replica factor R.
func (m ReplicaMap) Factor() int {
	if m.n == 0 {
		return 0
	}
	return len(m.replicas[0])
}

// Replicas returns the components that can serve the subset. The
// returned slice is shared; callers must not modify it.
func (m ReplicaMap) Replicas(subset int) []int {
	if m.n == 0 {
		return nil
	}
	subset %= m.n
	if subset < 0 {
		subset += m.n
	}
	return m.replicas[subset]
}

// Router picks the component that serves one sub-operation from the
// subset's replica set. queueDepth is a live probe of a component's
// outstanding work. Implementations must be safe for concurrent use.
type Router interface {
	Pick(subset int, replicas []int, queueDepth func(comp int) int) int
}

// RoundRobin cycles each subset through its replicas independently,
// spreading load without looking at it.
type RoundRobin struct {
	mu   sync.Mutex
	next map[int]int
}

// NewRoundRobin returns a round-robin router.
func NewRoundRobin() *RoundRobin {
	return &RoundRobin{next: make(map[int]int)}
}

// Pick returns the subset's next replica in rotation.
func (r *RoundRobin) Pick(subset int, replicas []int, _ func(int) int) int {
	if len(replicas) == 0 {
		return subset
	}
	r.mu.Lock()
	i := r.next[subset]
	r.next[subset] = (i + 1) % len(replicas)
	r.mu.Unlock()
	return replicas[i%len(replicas)]
}

// LeastLoaded sends the sub-operation to the replica with the
// shallowest queue (ties break toward the home component, which comes
// first in the replica set).
type LeastLoaded struct{}

// NewLeastLoaded returns a least-loaded router.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Pick probes every replica and returns the least loaded.
func (*LeastLoaded) Pick(subset int, replicas []int, queueDepth func(int) int) int {
	if len(replicas) == 0 {
		return subset
	}
	best := replicas[0]
	bestDepth := queueDepth(best)
	for _, c := range replicas[1:] {
		if d := queueDepth(c); d < bestDepth {
			best, bestDepth = c, d
		}
	}
	return best
}

// PowerOfTwo samples two distinct random replicas and picks the less
// loaded — near-least-loaded balance at two probes per decision, and
// no herding onto a single momentarily-idle component.
type PowerOfTwo struct {
	mu  sync.Mutex
	rng *stats.RNG
}

// NewPowerOfTwo returns a power-of-two-choices router seeded for
// reproducible runs.
func NewPowerOfTwo(seed uint64) *PowerOfTwo {
	return &PowerOfTwo{rng: stats.NewRNG(seed)}
}

// Pick compares two random replicas.
func (p *PowerOfTwo) Pick(subset int, replicas []int, queueDepth func(int) int) int {
	switch len(replicas) {
	case 0:
		return subset
	case 1:
		return replicas[0]
	}
	p.mu.Lock()
	i := p.rng.Intn(len(replicas))
	j := p.rng.Intn(len(replicas) - 1)
	p.mu.Unlock()
	if j >= i {
		j++
	}
	a, b := replicas[i], replicas[j]
	if queueDepth(b) < queueDepth(a) {
		return b
	}
	return a
}
