package frontend

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accuracytrader/internal/service"
)

// levelRecorder builds handlers that record the ladder level each
// sub-operation saw.
func levelRecorder(levels *atomic.Int64, noLevel *atomic.Int64) service.Handler {
	return func(ctx context.Context, _ interface{}) (interface{}, error) {
		if lv, ok := LevelFrom(ctx); ok {
			levels.Store(int64(lv))
		} else {
			noLevel.Add(1)
		}
		return nil, nil
	}
}

func TestFrontendCallSelectsLevel(t *testing.T) {
	var seen, missing atomic.Int64
	cl, err := service.New([]service.Handler{
		levelRecorder(&seen, &missing),
		levelRecorder(&seen, &missing),
	}, service.WaitAll, service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctrl, err := NewController(ControllerConfig{Levels: 3, LevelAccuracy: []float64{0.5, 0.9, 1}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(cl, Options{Controller: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Call(context.Background(), nil, BestEffortSLO())
	if err != nil {
		t.Fatal(err)
	}
	// Idle cluster: finest level, accuracy estimate 1, level visible to
	// handlers via the context.
	if res.Level != 2 || res.EstimatedAccuracy != 1 {
		t.Fatalf("result = %+v", res)
	}
	// The effective SLO rides along for handlers that honor exactness.
	if slo, ok := SLOFrom(WithSLO(context.Background(), ExactSLO())); !ok || slo.Kind != Exact {
		t.Fatalf("SLOFrom = %v, %v", slo, ok)
	}
	if _, ok := SLOFrom(context.Background()); ok {
		t.Fatal("SLOFrom on a bare context")
	}
	if seen.Load() != 2 || missing.Load() != 0 {
		t.Fatalf("handler saw level %d (missing %d)", seen.Load(), missing.Load())
	}
	if len(res.Sub) != 2 {
		t.Fatalf("sub results = %d", len(res.Sub))
	}
	if st := f.Stats(); st.Admitted != 1 || st.Rejected != 0 || st.Degraded != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFrontendRejects(t *testing.T) {
	cl, err := service.New([]service.Handler{
		func(context.Context, interface{}) (interface{}, error) { return nil, nil },
	}, service.WaitAll, service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f, err := New(cl, Options{
		// A drained zero-rate bucket rejects everything after the first
		// request.
		Admission: []AdmissionPolicy{NewTokenBucket(0, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Call(context.Background(), nil, BestEffortSLO()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Call(context.Background(), nil, BestEffortSLO()); !errors.Is(err, ErrRejected) {
		t.Fatalf("expected ErrRejected, got %v", err)
	}
	if st := f.Stats(); st.Admitted != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// alwaysDegrade forces the Degrade verdict.
type alwaysDegrade struct{}

func (alwaysDegrade) Admit(float64, Load) Decision { return Degrade }

func TestFrontendDegradeDemotesClassButNotExact(t *testing.T) {
	var lastKind atomic.Int64
	cl, err := service.New([]service.Handler{
		func(ctx context.Context, _ interface{}) (interface{}, error) {
			if slo, ok := SLOFrom(ctx); ok {
				lastKind.Store(int64(slo.Kind))
			}
			return nil, nil
		},
	}, service.WaitAll, service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctrl, err := NewController(ControllerConfig{Levels: 2, LevelAccuracy: []float64{0.5, 1}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(cl, Options{
		Admission:  []AdmissionPolicy{alwaysDegrade{}},
		Controller: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Call(context.Background(), nil, BoundedSLO(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.SLO.Kind != BestEffort {
		t.Fatalf("bounded request not demoted: %+v", res)
	}
	// Exact keeps its guarantee under Degrade.
	res, err = f.Call(context.Background(), nil, ExactSLO())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.SLO.Kind != Exact || res.Level != 1 {
		t.Fatalf("exact request demoted: %+v", res)
	}
	// The handler saw the effective class, so it can bypass its
	// synopsis for Exact requests.
	if SLOKind(lastKind.Load()) != Exact {
		t.Fatalf("handler saw class %v", SLOKind(lastKind.Load()))
	}
	// BestEffort has no class to lose: a Degrade verdict must not
	// count it as downgraded.
	res, err = f.Call(context.Background(), nil, BestEffortSLO())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("best-effort request marked degraded: %+v", res)
	}
	if st := f.Stats(); st.Degraded != 1 || st.Admitted != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFrontendNilControllerLeavesLevelUnset(t *testing.T) {
	// Without a degradation controller no level is attached: handlers
	// see LevelFrom ok=false (and fall back to their finest synopsis),
	// matching the simulator's nil-controller Level of -1.
	var seen, missing atomic.Int64
	cl, err := service.New([]service.Handler{levelRecorder(&seen, &missing)},
		service.WaitAll, service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f, err := New(cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Call(context.Background(), nil, BestEffortSLO())
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != -1 || res.EstimatedAccuracy != 1 {
		t.Fatalf("nil-controller result = %+v", res)
	}
	if missing.Load() != 1 {
		t.Fatalf("handler saw a level anyway (missing=%d)", missing.Load())
	}
	if f.Controller() != nil {
		t.Fatal("Controller() not nil")
	}
}

func TestFrontendBurstRespectsMaxInflight(t *testing.T) {
	// 100 concurrent calls against a 4-request cap: admission reserves
	// the in-flight slot before deciding, so even a perfectly
	// simultaneous burst admits exactly 4 (the cluster's own inflight
	// counter lags behind and must not be what the cap reads).
	release := make(chan struct{})
	blocking := func(ctx context.Context, _ interface{}) (interface{}, error) {
		<-release
		return nil, nil
	}
	cl, err := service.New([]service.Handler{blocking}, service.WaitAll,
		service.Options{QueueLen: 256, Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(cl, Options{
		Admission: []AdmissionPolicy{NewMaxInflight(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Call(context.Background(), nil, BestEffortSLO())
		}()
	}
	// Admitted calls block in the handler until released; wait for
	// every decision to land, then let them drain.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := f.Stats()
		if st.Admitted+st.Rejected == 100 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	st := f.Stats()
	if st.Admitted != 4 || st.Rejected != 96 {
		t.Fatalf("burst admitted %d / rejected %d, want 4 / 96", st.Admitted, st.Rejected)
	}
	cl.Close()
}

func TestFrontendRoutesAroundHotComponent(t *testing.T) {
	// Component 0's worker is wedged on a slow job; with a 2-replica
	// map and least-loaded routing, subset 0's sub-operations go to
	// component 1 once component 0's mailbox backs up, so calls stay
	// fast.
	block := make(chan struct{})
	var wedged atomic.Bool
	h0 := func(ctx context.Context, _ interface{}) (interface{}, error) {
		if wedged.CompareAndSwap(false, true) {
			<-block
		}
		return "zero", nil
	}
	h1 := func(ctx context.Context, _ interface{}) (interface{}, error) { return "one", nil }
	cl, err := service.New([]service.Handler{h0, h1}, service.WaitAll,
		service.Options{Deadline: 5 * time.Second, QueueLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Unblock the wedged handler before Close waits for in-flight calls.
	defer cl.Close()
	defer close(block)
	f, err := New(cl, Options{Replicas: 2, Router: NewLeastLoaded()})
	if err != nil {
		t.Fatal(err)
	}
	// First call wedges component 0's worker (its subset-0 job blocks),
	// so run it in the background and give the worker time to pick the
	// job up.
	go f.Call(context.Background(), nil, BestEffortSLO())
	deadline := time.Now().Add(2 * time.Second)
	for !wedged.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Subsequent calls must route subset 0 to component 1 (depth 0)
	// and return promptly despite the wedged worker.
	start := time.Now()
	res, err := f.Call(context.Background(), nil, BestEffortSLO())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("call stuck behind wedged component: %v", elapsed)
	}
	if res.Sub[0].Value != "zero" || res.Sub[1].Value != "one" {
		t.Fatalf("routed results: %+v", res.Sub)
	}
}

func TestSnapshotReflectsQueues(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, _ interface{}) (interface{}, error) {
		<-release
		return nil, nil
	}
	cl, err := service.New([]service.Handler{blocking, blocking}, service.WaitAll,
		service.Options{QueueLen: 4, Deadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(cl, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l := f.Snapshot(); l.MaxQueueFrac != 0 || l.Inflight != 0 {
		t.Fatalf("idle snapshot = %+v", l)
	}
	// Three calls: each wedges both workers' current job and then queues.
	done := make(chan struct{}, 3)
	for i := 0; i < 3; i++ {
		go func() {
			f.Call(context.Background(), nil, BestEffortSLO())
			done <- struct{}{}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		l := f.Snapshot()
		if l.Inflight == 3 && l.MaxQueueFrac >= 0.5 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	l := f.Snapshot()
	if l.Inflight != 3 {
		t.Fatalf("inflight = %d", l.Inflight)
	}
	// Workers hold one job each; two more wait per mailbox → 2/4.
	if l.MaxQueueFrac < 0.5 || l.QueueFrac <= 0 {
		t.Fatalf("queue snapshot = %+v", l)
	}
	close(release)
	for i := 0; i < 3; i++ {
		<-done
	}
	cl.Close()
}
