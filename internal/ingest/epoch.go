package ingest

import "sync/atomic"

// versioned pairs one immutable snapshot with its epoch number.
type versioned[T any] struct {
	snap  *T
	epoch uint64
}

// Epochs publishes immutable snapshots behind a single atomic pointer:
// readers acquire the current (snapshot, epoch) pair with one load and
// no allocation, writers swap in a fresh pair. Superseded snapshots are
// not recycled — the garbage collector keeps an epoch alive for as long
// as any in-flight query still holds it, which is what lets queries
// finish on their pinned epoch with no reference counting at all.
//
// Publish must be called from a single writer (the owning live store
// serializes it under its mutex); Acquire and Epoch are safe from any
// goroutine.
type Epochs[T any] struct {
	cur atomic.Pointer[versioned[T]]
}

// Publish installs snap as the current snapshot and returns its epoch
// (monotonically increasing from 1).
func (e *Epochs[T]) Publish(snap *T) uint64 {
	ep := uint64(1)
	if v := e.cur.Load(); v != nil {
		ep = v.epoch + 1
	}
	e.cur.Store(&versioned[T]{snap: snap, epoch: ep})
	return ep
}

// Acquire returns the current snapshot and its epoch (nil, 0 before the
// first Publish). The snapshot is immutable: it remains valid — and
// keeps answering with its epoch's data — however many swaps happen
// after.
func (e *Epochs[T]) Acquire() (*T, uint64) {
	v := e.cur.Load()
	if v == nil {
		return nil, 0
	}
	return v.snap, v.epoch
}

// Epoch returns the current epoch (0 before the first Publish).
func (e *Epochs[T]) Epoch() uint64 {
	v := e.cur.Load()
	if v == nil {
		return 0
	}
	return v.epoch
}
