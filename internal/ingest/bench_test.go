package ingest

import (
	"testing"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/stats"
)

// liveAggForBench builds a live shard with a compacted base plus a
// published (unmerged) delta — the steady-state shape of the read path.
func liveAggForBench(tb testing.TB) *AggLive {
	tb.Helper()
	rng := stats.NewRNG(0xbe7c4)
	l := NewAggLive(8, agg.Config{Rates: []float64{0.05, 0.2}, MinSample: 2, Seed: 1})
	keys := make([]int32, 4096)
	vals := make([]float64, len(keys))
	for i := range keys {
		keys[i] = int32(rng.Intn(8))
		vals[i] = rng.Float64()
	}
	if _, err := l.Append(keys, vals); err != nil {
		tb.Fatal(err)
	}
	if _, _, _, err := l.Compact(); err != nil {
		tb.Fatal(err)
	}
	if _, err := l.Append(keys[:256], vals[:256]); err != nil {
		tb.Fatal(err)
	}
	l.PublishDelta()
	return l
}

// BenchmarkAggSnapshotQueryLevel measures the live-snapshot read path:
// acquire the epoch, answer from the base ladder, fold the delta. The
// CI alloc guard pins this at 0 allocs/op.
func BenchmarkAggSnapshotQueryLevel(b *testing.B) {
	l := liveAggForBench(b)
	q := agg.Query{Op: agg.Sum, Lo: 0.2, Hi: 0.9}
	res := agg.NewResult(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, _ := l.Snapshot()
		res = snap.QueryLevel(res, q, 1)
	}
}

// TestAggSnapshotQueryZeroAlloc asserts the live read path allocates
// nothing once the engine pools are warm — appends and epoch swaps must
// never put allocation back on the query path.
func TestAggSnapshotQueryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse")
	}
	l := liveAggForBench(t)
	q := agg.Query{Op: agg.Sum, Lo: 0.2, Hi: 0.9}
	res := agg.NewResult(8)
	// AllocsPerRun's warm-up invocation primes the engine pool.
	if n := testing.AllocsPerRun(100, func() {
		snap, _ := l.Snapshot()
		res = snap.QueryLevel(res, q, 1)
	}); n != 0 {
		t.Fatalf("live-snapshot query allocates %v per op, want 0", n)
	}
}
