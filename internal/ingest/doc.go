// Package ingest is the online update path of the reproduction: it
// layers append-friendly delta segments (new fact rows, ratings and
// documents) over the frozen per-workload synopsis bases and publishes
// epoch-swapped read-mostly snapshots behind a single atomic pointer,
// so the pooled zero-alloc query engines stay lock-free on the hot
// path while a periodic merge worker compacts deltas into a new base.
// For the aggregation ladder the compaction step performs per-stratum
// reservoir maintenance — strata stay ordered by a deterministic
// sampling priority, so every ladder level's prefix remains a uniform
// bottom-k sample whose rate (and therefore its CLT bounds) stays
// statistically honest as strata grow.
package ingest
