//go:build race

package ingest

// raceEnabled reports that the race detector is active; it randomizes
// sync.Pool reuse, so allocation-count assertions are skipped.
const raceEnabled = true
