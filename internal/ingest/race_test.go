package ingest

import (
	"math"
	"sync"
	"testing"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/cf"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/svd"
	"accuracytrader/internal/synopsis"
)

// TestAggLiveConcurrent hammers a live aggregation shard with
// concurrent appenders, a fast merge worker (publishing and
// compacting), and lock-free queriers, under the race detector.
// Two linearizability properties are pinned:
//
//   - no torn snapshots: the exact full-range COUNT over any acquired
//     snapshot equals that snapshot's row count — a batch is visible
//     in full or not at all, never partially;
//   - epoch pinning: a query that re-runs on a snapshot it acquired
//     before any number of swaps gets bit-identical answers.
func TestAggLiveConcurrent(t *testing.T) {
	const (
		appenders = 4
		batches   = 50
		queriers  = 4
	)
	cfg := agg.Config{Rates: []float64{0.1, 0.3}, MinSample: 2, Seed: 42}
	l := NewAggLive(5, cfg)
	w := NewWorker(l, WorkerOptions{Interval: time.Millisecond, CompactEvery: 4, Name: "agg"})

	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(id) + 1)
			for b := 0; b < batches; b++ {
				n := 1 + rng.Intn(20)
				keys := make([]int32, n)
				vals := make([]float64, n)
				for i := range keys {
					keys[i] = int32(rng.Intn(5))
					vals[i] = rng.Float64()
				}
				if _, err := l.Append(keys, vals); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}

	full := agg.Query{Op: agg.Count, Lo: math.Inf(-1), Hi: math.Inf(1)}
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for qi := 0; qi < queriers; qi++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			res := agg.NewResult(5)
			again := agg.NewResult(5)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, ep := l.Snapshot()
				res = snap.Exact(res, full)
				total := 0.0
				for _, c := range res.Cnt {
					total += c
				}
				if total != float64(snap.Rows()) {
					t.Errorf("epoch %d: exact count %v over %d visible rows (torn snapshot)", ep, total, snap.Rows())
					return
				}
				// Let swaps happen, then re-query the pinned snapshot.
				time.Sleep(2 * time.Millisecond)
				again = snap.Exact(again, full)
				for k := range res.Cnt {
					if res.Cnt[k] != again.Cnt[k] || res.Sum[k] != again.Sum[k] {
						t.Errorf("epoch %d key %d: pinned snapshot drifted", ep, k)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	qwg.Wait()
	w.Close()

	// After the worker's final drain, everything appended is visible.
	snap, _ := l.Snapshot()
	if want := appenders * batches; snap.Rows() == 0 || l.Stats().StagedRows != 0 {
		t.Fatalf("drain left %d staged rows (%d batches appended)", l.Stats().StagedRows, want)
	}
	st := w.Stats()
	if st.Publishes+st.Compactions == 0 {
		t.Fatal("worker never swapped an epoch")
	}
}

// TestCFAndSearchLiveConcurrent runs the same torn-snapshot and
// epoch-pinning checks over the CF and search shards: an acquired
// snapshot answers identically no matter how many swaps happen
// underneath it.
func TestCFAndSearchLiveConcurrent(t *testing.T) {
	cfg := synopsis.Config{SVD: svd.Config{Dims: 3, Epochs: 10, Seed: 11}, CompressionRatio: 10}
	rng := stats.NewRNG(7)

	cl := NewCFLive(20, cfg)
	cw := NewWorker(cl, WorkerOptions{Interval: time.Millisecond, CompactEvery: 8, Name: "cf"})
	sl := NewSearchLive(cfg)
	sw := NewWorker(sl, WorkerOptions{Interval: time.Millisecond, CompactEvery: 8, Name: "search"})

	req := cf.NewRequest([]cf.Rating{{Item: 1, Score: 4}, {Item: 3, Score: 2}, {Item: 8, Score: 5}}, []int32{0, 5, 12})
	vocab := []string{"alpha", "beta", "gamma", "delta", "omega"}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		arng := stats.NewRNG(99)
		for b := 0; b < 80; b++ {
			n := 3 + arng.Intn(8)
			rs := make([]cf.Rating, n)
			perm := arng.Perm(20)
			for i := range rs {
				rs[i] = cf.Rating{Item: int32(perm[i]), Score: 1 + 4*arng.Float64()}
			}
			if _, err := cl.Append(rs); err != nil {
				t.Error(err)
				return
			}
			doc := ""
			for i := 0; i < 4+arng.Intn(6); i++ {
				if i > 0 {
					doc += " "
				}
				doc += vocab[arng.Intn(len(vocab))]
			}
			sl.Append(doc)
		}
	}()

	res := cf.NewResult(3)
	again := cf.NewResult(3)
	for i := 0; i < 40; i++ {
		csnap, cep := cl.Snapshot()
		res = csnap.Exact(res, req)
		ssnap, sep := sl.Snapshot()
		q := ssnap.ParseQuery("alpha omega")
		hits := ssnap.ExactTopK(nil, q, 5)
		time.Sleep(time.Duration(1+rng.Intn(3)) * time.Millisecond)
		again = csnap.Exact(again, req)
		for k := range res.Num {
			if res.Num[k] != again.Num[k] || res.Den[k] != again.Den[k] {
				t.Fatalf("cf epoch %d target %d: pinned snapshot drifted", cep, k)
			}
		}
		hits2 := ssnap.ExactTopK(nil, q, 5)
		if len(hits) != len(hits2) {
			t.Fatalf("search epoch %d: pinned snapshot drifted (%d vs %d hits)", sep, len(hits), len(hits2))
		}
		for j := range hits {
			if hits[j] != hits2[j] {
				t.Fatalf("search epoch %d hit %d: pinned snapshot drifted", sep, j)
			}
		}
	}

	wg.Wait()
	cw.Close()
	sw.Close()
	if cl.Stats().StagedUsers != 0 || sl.Stats().StagedDocs != 0 {
		t.Fatalf("drain left %d users / %d docs staged", cl.Stats().StagedUsers, sl.Stats().StagedDocs)
	}
}
