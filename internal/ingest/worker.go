package ingest

import (
	"sync"
	"time"

	"accuracytrader/internal/obs"
)

// Store is the worker-facing surface every live shard implements:
// publish staged appends as a visible delta, compact everything into a
// new base, and report the current epoch.
type Store interface {
	// PublishDelta makes staged appends visible; returns the epoch, the
	// newly visible item count (0 for a no-op that kept the epoch), and
	// the freshness lag of the oldest item that became visible.
	PublishDelta() (epoch uint64, published int, lag time.Duration)
	// Compact folds everything into a new base and publishes it;
	// returns the epoch, the items folded (0 for a no-op), and the lag.
	Compact() (epoch uint64, folded int, lag time.Duration, err error)
	// Epoch returns the current snapshot epoch.
	Epoch() uint64
}

// WorkerOptions configures a merge worker.
type WorkerOptions struct {
	// Interval is the publish cadence (default 5ms): how long an append
	// can stay invisible, i.e. the freshness-lag budget.
	Interval time.Duration
	// CompactEvery compacts instead of publishing every Nth tick
	// (default 0: never auto-compact; the owner calls Compact itself).
	CompactEvery int
	// OnSwap, when set, runs after every tick that swapped the epoch —
	// the result cache's invalidation hook (epoch bump + re-warm).
	OnSwap func(epoch uint64)
	// Name labels this store's metrics (e.g. "agg").
	Name string
	// Metrics, when set, publishes ingest counters and gauges:
	// ingest_publishes_total, ingest_compactions_total,
	// ingest_published_total (items), ingest_compact_errors_total,
	// ingest_epoch and ingest_freshness_lag_ms, all labelled
	// {store=Name}.
	Metrics *obs.Registry
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Millisecond
	}
	if o.Name == "" {
		o.Name = "store"
	}
	return o
}

// WorkerStats is a snapshot of one worker's activity.
type WorkerStats struct {
	Publishes   uint64        // epoch swaps that exposed a new delta
	Compactions uint64        // epoch swaps that rebuilt the base
	Published   uint64        // items made visible across all swaps
	MaxLag      time.Duration // worst freshness lag observed at a swap
	CompactErrs uint64        // failed compactions (base kept serving)
}

// Worker is the periodic merge worker of one live shard: every tick it
// publishes the staged delta (or, on the compaction cadence, folds
// everything into a new base), fires the swap hook, and feeds the obs
// plane. A failed compaction is counted and the previous base keeps
// serving — ingest degrades to a growing delta, never to an outage.
type Worker struct {
	store Store
	opts  WorkerOptions

	mu    sync.Mutex
	stats WorkerStats

	quit chan struct{}
	done chan struct{}

	mPublishes   *obs.Counter
	mCompactions *obs.Counter
	mPublished   *obs.Counter
	mCompactErrs *obs.Counter
	gLag         *obs.Gauge
}

// NewWorker starts a merge worker over a live shard.
func NewWorker(s Store, opts WorkerOptions) *Worker {
	opts = opts.withDefaults()
	w := &Worker{store: s, opts: opts, quit: make(chan struct{}), done: make(chan struct{})}
	if m := opts.Metrics; m != nil {
		// obs.Labels escapes the operator-supplied store name, so a
		// quote or newline in it cannot corrupt the exposition.
		label := obs.Labels("store", opts.Name)
		w.mPublishes = m.Counter("ingest_publishes_total" + label)
		w.mCompactions = m.Counter("ingest_compactions_total" + label)
		w.mPublished = m.Counter("ingest_published_total" + label)
		w.mCompactErrs = m.Counter("ingest_compact_errors_total" + label)
		w.gLag = m.Gauge("ingest_freshness_lag_ms" + label)
		m.GaugeFunc("ingest_epoch"+label, func() float64 { return float64(s.Epoch()) })
	}
	go w.loop()
	return w
}

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Close stops the worker after the in-progress tick, publishing any
// still-staged delta first so nothing accepted is lost to invisibility.
func (w *Worker) Close() {
	close(w.quit)
	<-w.done
}

func (w *Worker) loop() {
	defer close(w.done)
	tick := time.NewTicker(w.opts.Interval)
	defer tick.Stop()
	n := 0
	for {
		select {
		case <-w.quit:
			w.tick(false) // final drain
			return
		case <-tick.C:
		}
		n++
		compact := w.opts.CompactEvery > 0 && n%w.opts.CompactEvery == 0
		w.tick(compact)
	}
}

// tick runs one publish-or-compact step and fires the swap hook when
// the epoch moved.
func (w *Worker) tick(compact bool) {
	var epoch uint64
	var moved int
	var lag time.Duration
	if compact {
		ep, folded, l, err := w.store.Compact()
		if err != nil {
			w.mu.Lock()
			w.stats.CompactErrs++
			w.mu.Unlock()
			if w.mCompactErrs != nil {
				w.mCompactErrs.Inc()
			}
			return
		}
		epoch, moved, lag = ep, folded, l
		if moved > 0 {
			w.mu.Lock()
			w.stats.Compactions++
			w.mu.Unlock()
			if w.mCompactions != nil {
				w.mCompactions.Inc()
			}
		}
	} else {
		epoch, moved, lag = w.store.PublishDelta()
		if moved > 0 {
			w.mu.Lock()
			w.stats.Publishes++
			w.mu.Unlock()
			if w.mPublishes != nil {
				w.mPublishes.Inc()
			}
		}
	}
	if moved == 0 {
		return
	}
	w.mu.Lock()
	w.stats.Published += uint64(moved)
	if lag > w.stats.MaxLag {
		w.stats.MaxLag = lag
	}
	w.mu.Unlock()
	if w.mPublished != nil {
		w.mPublished.Add(int64(moved))
	}
	if w.gLag != nil {
		w.gLag.Set(float64(lag) / float64(time.Millisecond))
	}
	if w.opts.OnSwap != nil {
		w.opts.OnSwap(epoch)
	}
}
