package ingest

import (
	"sync"
	"time"

	"accuracytrader/internal/synopsis"
	"accuracytrader/internal/textindex"
)

// SearchSnapshot is one epoch of a live search shard: a frozen base
// component plus the documents appended since the last compaction,
// analyzed against the base vocabulary and scored exactly.
type SearchSnapshot struct {
	comp      *textindex.Component
	deltaTV   [][]textindex.TermFreq
	deltaLen  []int
	baseSlots int // delta doc j serves as doc id baseSlots+j
}

// Base returns the frozen base component, nil before the first
// compaction.
func (s *SearchSnapshot) Base() *textindex.Component { return s.comp }

// Docs returns the documents visible at this epoch (base + delta).
func (s *SearchSnapshot) Docs() int {
	n := len(s.deltaTV)
	if s.comp != nil {
		n += s.comp.Ix.NumDocs()
	}
	return n
}

// DeltaDocs returns the documents not yet folded into the base.
func (s *SearchSnapshot) DeltaDocs() int { return len(s.deltaTV) }

// ParseQuery analyzes query text against the base vocabulary (empty
// before the first compaction).
func (s *SearchSnapshot) ParseQuery(text string) textindex.Query {
	if s.comp == nil {
		return textindex.Query{}
	}
	return s.comp.Ix.ParseQuery(text)
}

// FoldDelta scores every delta document against the query at the base
// epoch's idf weights and appends the matches to hits. Delta doc j
// reports id baseSlots+j — the id it receives when the next compaction
// re-adds documents in append order, so ids are stable across epochs.
func (s *SearchSnapshot) FoldDelta(hits []textindex.Hit, q textindex.Query) []textindex.Hit {
	if s.comp == nil {
		return hits
	}
	for j := range s.deltaTV {
		if sc := s.comp.Ix.ScoreTermVec(q, s.deltaTV[j], s.deltaLen[j]); sc > 0 {
			hits = append(hits, textindex.Hit{Doc: s.baseSlots + j, Score: sc})
		}
	}
	return hits
}

// ExactTopK returns the top-k hits over every visible document: the
// base index's exact search merged with the exactly scored delta,
// re-ranked. At merged epochs (empty delta) this is bit-identical to
// searching a from-scratch rebuild over the same documents.
func (s *SearchSnapshot) ExactTopK(dst []textindex.Hit, q textindex.Query, k int) []textindex.Hit {
	if s.comp == nil {
		return dst[:0]
	}
	dst = s.comp.Ix.SearchInto(dst, q, k)
	if len(s.deltaTV) == 0 {
		return dst
	}
	dst = s.FoldDelta(dst, q)
	textindex.SortHits(dst)
	if len(dst) > k {
		dst = dst[:k]
	}
	return dst
}

// SearchStats counts a live search shard's ingest activity.
type SearchStats struct {
	Appends     uint64
	Publishes   uint64
	Compactions uint64
	Docs        int
	BaseDocs    int
	StagedDocs  int
}

// SearchLive is the online update path for one search shard. Appended
// documents stage invisibly; PublishDelta analyzes them against the
// current base vocabulary (out-of-vocabulary tokens wait for the next
// compaction) and makes them visible as an exactly scored delta;
// Compact rebuilds the index and synopsis over every document. As with
// CF, the base is rebuilt rather than merged — the inverted index and
// the synopsis's SVD/R-tree state mutate too deeply to share across
// epochs — and the rebuild re-adds documents in append order, so doc
// ids are stable and a compacted snapshot is bit-identical to a frozen
// build over the same documents.
type SearchLive struct {
	cfg synopsis.Config

	mu        sync.Mutex
	texts     []string
	based     int
	published int
	base      *textindex.Component
	deltaTV   [][]textindex.TermFreq // analysis of texts[based:published]
	deltaLen  []int
	oldest    time.Time
	stats     SearchStats

	snaps Epochs[SearchSnapshot]
}

// NewSearchLive returns an empty live search shard with an initial
// empty snapshot published (epoch 1).
func NewSearchLive(cfg synopsis.Config) *SearchLive {
	l := &SearchLive{cfg: cfg}
	l.snaps.Publish(&SearchSnapshot{})
	return l
}

// Snapshot acquires the current snapshot and its epoch.
func (l *SearchLive) Snapshot() (*SearchSnapshot, uint64) { return l.snaps.Acquire() }

// Epoch returns the current epoch.
func (l *SearchLive) Epoch() uint64 { return l.snaps.Epoch() }

// Stats returns a snapshot of the ingest counters.
func (l *SearchLive) Stats() SearchStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Docs = len(l.texts)
	st.BaseDocs = l.based
	st.StagedDocs = len(l.texts) - l.published
	return st
}

// Append stages one document and returns its id in append order.
func (l *SearchLive) Append(text string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.texts) == l.published {
		l.oldest = time.Now()
	}
	id := len(l.texts)
	l.texts = append(l.texts, text)
	l.stats.Appends++
	return id
}

// publishLocked analyzes staged documents against the current base and
// swaps in a snapshot exposing docs [0, n). Caller holds l.mu.
func (l *SearchLive) publishLocked(n int) (uint64, int, time.Duration) {
	var lag time.Duration
	if n > l.published && !l.oldest.IsZero() {
		lag = time.Since(l.oldest)
		l.oldest = time.Time{}
	}
	moved := n - l.published
	for d := l.published; d < n; d++ {
		var tv []textindex.TermFreq
		var dl int
		if l.base != nil {
			tv, dl = l.base.Ix.AnalyzeDelta(l.texts[d])
		}
		l.deltaTV = append(l.deltaTV, tv)
		l.deltaLen = append(l.deltaLen, dl)
	}
	baseSlots := 0
	if l.base != nil {
		baseSlots = l.base.Ix.NumSlots()
	}
	snap := &SearchSnapshot{
		comp:      l.base,
		deltaTV:   l.deltaTV[: n-l.based : n-l.based],
		deltaLen:  l.deltaLen[: n-l.based : n-l.based],
		baseSlots: baseSlots,
	}
	l.published = n
	l.stats.Publishes++
	return l.snaps.Publish(snap), moved, lag
}

// PublishDelta makes every staged document visible; see
// AggLive.PublishDelta for the contract.
func (l *SearchLive) PublishDelta() (uint64, int, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.texts); n > l.published {
		return l.publishLocked(n)
	}
	return l.snaps.Epoch(), 0, 0
}

// Compact rebuilds the index and synopsis over every appended document
// and publishes the new base with an empty delta.
func (l *SearchLive) Compact() (uint64, int, time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.texts)
	if n == l.based {
		return l.snaps.Epoch(), 0, 0, nil
	}
	ix := textindex.NewIndex()
	for _, text := range l.texts[:n] {
		ix.Add(text)
	}
	comp, err := textindex.BuildComponent(ix, l.cfg)
	if err != nil {
		return l.snaps.Epoch(), 0, 0, err
	}
	folded := n - l.based
	l.base = comp
	l.based = n
	l.deltaTV = nil
	l.deltaLen = nil
	var lag time.Duration
	if n > l.published && !l.oldest.IsZero() {
		lag = time.Since(l.oldest)
		l.oldest = time.Time{}
	}
	l.published = n
	l.stats.Compactions++
	l.stats.Publishes++
	snap := &SearchSnapshot{comp: comp, baseSlots: comp.Ix.NumSlots()}
	return l.snaps.Publish(snap), folded, lag, nil
}

// BuildSearchSnapshot is the frozen-rebuild reference for the property
// harness: the compacted snapshot a live shard converges to after
// appending exactly these documents and compacting.
func BuildSearchSnapshot(cfg synopsis.Config, texts []string) (*SearchSnapshot, error) {
	l := NewSearchLive(cfg)
	for _, t := range texts {
		l.Append(t)
	}
	if _, _, _, err := l.Compact(); err != nil {
		return nil, err
	}
	snap, _ := l.Snapshot()
	return snap, nil
}
