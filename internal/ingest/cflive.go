package ingest

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"accuracytrader/internal/cf"
	"accuracytrader/internal/synopsis"
)

// deltaScorerPool recycles the exact-kernel scorers FoldDelta uses so
// the delta path allocates nothing once warm.
var deltaScorerPool = sync.Pool{New: func() any { return new(cf.DeltaScorer) }}

// CFSnapshot is one epoch of a live CF shard: a frozen base component
// plus the users appended since the last compaction, scored exactly.
type CFSnapshot struct {
	comp       *cf.Component
	deltaUsers [][]cf.Rating
	deltaMeans []float64
	nItems     int
}

// Base returns the frozen base component, nil before the first
// compaction.
func (s *CFSnapshot) Base() *cf.Component { return s.comp }

// Users returns the users visible at this epoch (base + delta).
func (s *CFSnapshot) Users() int {
	n := len(s.deltaUsers)
	if s.comp != nil {
		n += s.comp.M.NumUsers()
	}
	return n
}

// DeltaUsers returns the users not yet folded into the base.
func (s *CFSnapshot) DeltaUsers() int { return len(s.deltaUsers) }

// FoldDelta adds every delta user's exact contribution into res with
// the reference kernel (Pearson weight, epoch-stamped target lookup),
// in append order — the same order ExactResultInto scans them after a
// rebuild, so the exact path stays bit-identical to rebuilding the
// matrix with the delta appended. Returns res for chaining.
func (s *CFSnapshot) FoldDelta(res cf.Result, req cf.Request) cf.Result {
	if len(s.deltaUsers) == 0 {
		return res
	}
	d := deltaScorerPool.Get().(*cf.DeltaScorer)
	d.Bind(s.nItems, req.Targets)
	for i, rs := range s.deltaUsers {
		d.Add(res, req.Ratings, rs, s.deltaMeans[i])
	}
	deltaScorerPool.Put(d)
	return res
}

// Exact computes the exact partial result over every visible user,
// accumulating into res's reused buffers; it returns the (possibly
// re-anchored) result.
func (s *CFSnapshot) Exact(res cf.Result, req cf.Request) cf.Result {
	if s.comp != nil {
		res = cf.ExactResultInto(res, s.comp, req)
	} else {
		res = res.Reset(len(req.Targets))
	}
	return s.FoldDelta(res, req)
}

// CFStats counts a live CF shard's ingest activity.
type CFStats struct {
	Appends     uint64
	Publishes   uint64
	Compactions uint64
	Users       int
	BaseUsers   int
	StagedUsers int
}

// CFLive is the online update path for one CF shard. Appended users
// stage invisibly, publish as an exactly scored delta segment, and fold
// into a new base at compaction. Unlike the aggregation shard — whose
// synopsis merges incrementally in priority order — the CF base is
// rebuilt from scratch at each compaction: its synopsis (SVD model,
// R-tree, aggregated users) is deeply mutable state that cannot be
// shared between epochs without cloning it wholesale, and the rebuild
// is deterministic, so a compacted live snapshot is still bit-identical
// to a frozen build over the same users. Compactions are therefore
// expensive and meant to run on a coarse cadence; freshness between
// them comes from the exact delta fold.
type CFLive struct {
	nItems int
	cfg    synopsis.Config

	mu        sync.Mutex
	users     [][]cf.Rating // sorted, immutable once appended
	means     []float64
	based     int
	published int
	base      *cf.Component
	oldest    time.Time
	stats     CFStats

	snaps Epochs[CFSnapshot]
}

// NewCFLive returns an empty live CF shard over an item space of
// nItems, with an initial empty snapshot published (epoch 1).
func NewCFLive(nItems int, cfg synopsis.Config) *CFLive {
	if nItems <= 0 {
		panic("ingest: live CF shard needs a positive item space")
	}
	l := &CFLive{nItems: nItems, cfg: cfg}
	l.snaps.Publish(&CFSnapshot{nItems: nItems})
	return l
}

// Snapshot acquires the current snapshot and its epoch.
func (l *CFLive) Snapshot() (*CFSnapshot, uint64) { return l.snaps.Acquire() }

// Epoch returns the current epoch.
func (l *CFLive) Epoch() uint64 { return l.snaps.Epoch() }

// Stats returns a snapshot of the ingest counters.
func (l *CFLive) Stats() CFStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Users = len(l.users)
	st.BaseUsers = l.based
	st.StagedUsers = len(l.users) - l.published
	return st
}

// Append stages one user's ratings (any order; duplicates allowed, as
// in Matrix.SetUser). The copy is sorted and its mean computed exactly
// as Matrix.SetUser would, so the delta contribution matches what the
// user contributes after the next rebuild. Returns the user's id in
// append order.
func (l *CFLive) Append(ratings []cf.Rating) (int, error) {
	cp := append([]cf.Rating(nil), ratings...)
	slices.SortFunc(cp, func(a, b cf.Rating) int { return int(a.Item) - int(b.Item) })
	sum := 0.0
	for _, r := range cp {
		if r.Item < 0 || int(r.Item) >= l.nItems {
			return 0, fmt.Errorf("ingest: rating item %d outside [0,%d)", r.Item, l.nItems)
		}
		sum += r.Score
	}
	mean := 0.0
	if len(cp) > 0 {
		mean = sum / float64(len(cp))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.users) == l.published {
		l.oldest = time.Now()
	}
	id := len(l.users)
	l.users = append(l.users, cp)
	l.means = append(l.means, mean)
	l.stats.Appends++
	return id, nil
}

// publishLocked swaps in a snapshot exposing users [0, n). Caller
// holds l.mu.
func (l *CFLive) publishLocked(n int) (uint64, int, time.Duration) {
	var lag time.Duration
	if n > l.published && !l.oldest.IsZero() {
		lag = time.Since(l.oldest)
		l.oldest = time.Time{}
	}
	moved := n - l.published
	snap := &CFSnapshot{
		comp:       l.base,
		deltaUsers: l.users[l.based:n:n],
		deltaMeans: l.means[l.based:n:n],
		nItems:     l.nItems,
	}
	l.published = n
	l.stats.Publishes++
	return l.snaps.Publish(snap), moved, lag
}

// PublishDelta makes every staged user visible; see
// AggLive.PublishDelta for the contract.
func (l *CFLive) PublishDelta() (uint64, int, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.users); n > l.published {
		return l.publishLocked(n)
	}
	return l.snaps.Epoch(), 0, 0
}

// Compact rebuilds the base component over every appended user and
// publishes it with an empty delta. The rebuild re-adds users in append
// order, so ids are stable across compactions and the result is
// bit-identical to a frozen build over the same users.
func (l *CFLive) Compact() (uint64, int, time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.users)
	if n == l.based {
		return l.snaps.Epoch(), 0, 0, nil
	}
	m := cf.NewMatrix(l.nItems)
	for _, rs := range l.users[:n] {
		m.AddUser(rs)
	}
	comp, err := cf.BuildComponent(m, l.cfg)
	if err != nil {
		return l.snaps.Epoch(), 0, 0, err
	}
	folded := n - l.based
	l.base = comp
	l.based = n
	l.stats.Compactions++
	ep, _, lag := l.publishLocked(n)
	return ep, folded, lag, nil
}

// BuildCFSnapshot is the frozen-rebuild reference for the property
// harness: the compacted snapshot a live shard converges to after
// appending exactly these users and compacting.
func BuildCFSnapshot(nItems int, cfg synopsis.Config, users [][]cf.Rating) (*CFSnapshot, error) {
	l := NewCFLive(nItems, cfg)
	for _, rs := range users {
		if _, err := l.Append(rs); err != nil {
			return nil, err
		}
	}
	if _, _, _, err := l.Compact(); err != nil {
		return nil, err
	}
	snap, _ := l.Snapshot()
	return snap, nil
}
