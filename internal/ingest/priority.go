package ingest

// Priority returns the deterministic sampling priority of one global
// row id: the splitmix64 finalizer over (seed, row). For a fixed seed
// the priorities are i.i.d. uniform across rows, so ordering a stratum
// by (priority, row) is a uniform random permutation of its rows and
// every length-k prefix is a uniform sample without replacement — the
// bottom-k (priority sampling) form of reservoir sampling. Because the
// priority depends only on (seed, row), merging newly appended rows
// into an already-ordered stratum preserves exactly the order a from-
// scratch rebuild would produce, which is what makes live compaction
// bit-identical to a frozen rebuild.
func Priority(seed uint64, row int32) uint64 {
	z := seed + (uint64(row)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// priorityLess orders row ids by (priority, row) — the total order
// every stratum reservoir maintains.
func priorityLess(seed uint64, a, b int32) bool {
	pa, pb := Priority(seed, a), Priority(seed, b)
	return pa < pb || (pa == pb && a < b)
}
