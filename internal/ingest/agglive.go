package ingest

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/csr"
)

// AggSnapshot is one epoch of a live aggregation shard: a frozen base
// component (table prefix + priority-ordered stratified synopsis) plus
// the delta rows appended since the last compaction. Snapshots are
// immutable; queries running on an acquired snapshot keep answering
// with its epoch's data across any number of swaps.
type AggSnapshot struct {
	comp      *agg.Component
	deltaKeys []int32
	deltaVals []float64
	numKeys   int
}

// Base returns the frozen base component, nil before the first
// compaction. The synopsis engines (agg.GetEngine, agg.ExactResultInto)
// run against it unchanged; delta rows are folded on top with
// FoldDelta.
func (s *AggSnapshot) Base() *agg.Component { return s.comp }

// NumKeys returns the group-key domain size.
func (s *AggSnapshot) NumKeys() int { return s.numKeys }

// Rows returns the total rows visible at this epoch (base + delta).
func (s *AggSnapshot) Rows() int {
	n := len(s.deltaKeys)
	if s.comp != nil {
		n += s.comp.T.NumRows()
	}
	return n
}

// DeltaRows returns the rows not yet folded into the base synopsis.
func (s *AggSnapshot) DeltaRows() int { return len(s.deltaKeys) }

// FoldDelta scans the delta segment exactly and adds the selected rows
// into res. Delta rows contribute with zero variance — an unmerged
// append can only tighten the CLT bounds, never loosen them — which is
// what keeps Bounded-class accuracy floors honest between compactions.
func (s *AggSnapshot) FoldDelta(res agg.Result, q agg.Query) {
	for i, k := range s.deltaKeys {
		if v := s.deltaVals[i]; q.Selects(v) {
			res.Sum[k] += v
			res.Cnt[k]++
		}
	}
}

// QueryLevel answers the query from the ladder-level samples of the
// base plus an exact delta fold, accumulating into res's reused buffers
// (re-zeroed first); it returns the (possibly re-anchored) result. The
// path is allocation-free once pools are warm: one pooled engine over
// the immutable base, one linear scan over the delta slices.
func (s *AggSnapshot) QueryLevel(res agg.Result, q agg.Query, level int) agg.Result {
	res = res.Reset(s.numKeys)
	if s.comp != nil {
		e := agg.GetEngine(s.comp, q, level)
		e.ProcessSynopsis()
		res.Merge(e.Result())
		e.Release()
	}
	s.FoldDelta(res, q)
	return res
}

// Exact answers the query by scanning every visible row, accumulating
// into res's reused buffers; it returns the (possibly re-anchored)
// result. Row order is base strata in synopsis order, then the delta in
// arrival order — exactly the order a frozen rebuild scans once the
// delta has been compacted, so results at merged epochs are
// bit-identical to the rebuild's.
func (s *AggSnapshot) Exact(res agg.Result, q agg.Query) agg.Result {
	if s.comp != nil {
		res = agg.ExactResultInto(res, s.comp, q)
	} else {
		res = res.Reset(s.numKeys)
	}
	s.FoldDelta(res, q)
	return res
}

// AggStats counts a live aggregation shard's ingest activity.
type AggStats struct {
	Appends     uint64 // rows ever appended
	Publishes   uint64 // delta publishes (epoch swaps without compaction)
	Compactions uint64 // base rebuilds
	Rows        int    // rows appended (published or not)
	BaseRows    int    // rows folded into the current base
	StagedRows  int    // appended but not yet visible in any snapshot
}

// AggLive is the online update path for one aggregation shard: an
// append-only columnar row log, per-stratum reservoirs kept ordered by
// deterministic sampling priority, and epoch-swapped snapshots. Appends
// stage rows invisibly; PublishDelta makes them visible as an exactly
// scanned delta segment; Compact folds everything into a new base
// synopsis whose per-level sample lengths are recomputed for the grown
// strata (reservoir maintenance), keeping each level's sampling rate
// honest. All mutators serialize on one mutex; readers never lock.
type AggLive struct {
	numKeys int
	cfg     agg.Config
	seed    uint64

	mu        sync.Mutex
	keys      []int32
	vals      []float64
	based     int // rows folded into the base synopsis
	published int // rows visible in the current snapshot
	base      *agg.Component
	strata    csr.Store[int32] // per-stratum ids of [0,based), (priority,row)-ordered
	pending   csr.Store[int32] // per-stratum ids of [based,len), arrival order
	scratch   []int32
	oldest    time.Time // arrival of the oldest row not yet visible
	stats     AggStats

	snaps Epochs[AggSnapshot]
}

// NewAggLive returns an empty live shard over a key domain of numKeys
// group keys, with an initial empty snapshot already published (epoch
// 1). cfg drives both the ladder (rates, sample floor) and, via its
// seed, the deterministic per-row sampling priorities.
func NewAggLive(numKeys int, cfg agg.Config) *AggLive {
	if numKeys <= 0 {
		panic("ingest: live shard needs a positive key domain")
	}
	l := &AggLive{numKeys: numKeys, cfg: cfg, seed: cfg.Seed ^ 0x1b9a5e11d0e57a1e}
	for s := 0; s < numKeys; s++ {
		l.strata.AddRow(nil)
		l.pending.AddRow(nil)
	}
	l.snaps.Publish(&AggSnapshot{numKeys: numKeys})
	return l
}

// Snapshot acquires the current snapshot and its epoch — one atomic
// load, no allocation.
func (l *AggLive) Snapshot() (*AggSnapshot, uint64) { return l.snaps.Acquire() }

// Epoch returns the current epoch.
func (l *AggLive) Epoch() uint64 { return l.snaps.Epoch() }

// Stats returns a snapshot of the ingest counters.
func (l *AggLive) Stats() AggStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Rows = len(l.keys)
	st.BaseRows = l.based
	st.StagedRows = len(l.keys) - l.published
	return st
}

// Append stages a batch of rows. The batch becomes visible atomically
// at the next PublishDelta (or Compact); a key outside [0, numKeys)
// rejects the whole batch. Returns the number of rows accepted.
func (l *AggLive) Append(keys []int32, vals []float64) (int, error) {
	if len(keys) != len(vals) {
		return 0, fmt.Errorf("ingest: append shape %d keys, %d vals", len(keys), len(vals))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, k := range keys {
		if k < 0 || int(k) >= l.numKeys {
			return 0, fmt.Errorf("ingest: key %d outside domain [0,%d)", k, l.numKeys)
		}
	}
	if len(l.keys) == l.published {
		l.oldest = time.Now()
	}
	for i, k := range keys {
		l.pending.AppendElem(int(k), int32(len(l.keys)))
		l.keys = append(l.keys, k)
		l.vals = append(l.vals, vals[i])
	}
	l.stats.Appends += uint64(len(keys))
	return len(keys), nil
}

// publishLocked swaps in a snapshot exposing rows [0, n). Caller holds
// l.mu.
func (l *AggLive) publishLocked(n int) (uint64, int, time.Duration) {
	var lag time.Duration
	if n > l.published && !l.oldest.IsZero() {
		lag = time.Since(l.oldest)
		l.oldest = time.Time{}
	}
	moved := n - l.published
	snap := &AggSnapshot{
		comp:      l.base,
		deltaKeys: l.keys[l.based:n:n],
		deltaVals: l.vals[l.based:n:n],
		numKeys:   l.numKeys,
	}
	l.published = n
	l.stats.Publishes++
	return l.snaps.Publish(snap), moved, lag
}

// PublishDelta makes every staged row visible by swapping in a fresh
// snapshot that extends the delta segment over the shared append-only
// columns (no copying — the snapshot captures capacity-clamped slice
// prefixes). It returns the new epoch, the number of rows that became
// visible, and the freshness lag of the oldest of them; a no-op publish
// (nothing staged) keeps the current epoch and returns 0 rows.
func (l *AggLive) PublishDelta() (uint64, int, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.keys); n > l.published {
		return l.publishLocked(n)
	}
	return l.snaps.Epoch(), 0, 0
}

// Compact folds all appended rows into a new base: per stratum, the
// pending ids are priority-sorted and merged into the reservoir order,
// then the sample ladder's per-level lengths are recomputed for the
// grown strata and a fresh base component is published with an empty
// delta. Because the per-row priority is a pure function of (seed,
// row id), the merged order — and therefore every sample prefix and
// every query answer — is bit-identical to rebuilding the synopsis from
// scratch over the same rows. Returns the new epoch, the rows folded,
// and the freshness lag of the oldest row that became visible.
func (l *AggLive) Compact() (uint64, int, time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.keys)
	if n == l.based {
		return l.snaps.Epoch(), 0, 0, nil
	}
	for s := 0; s < l.numKeys; s++ {
		seg := l.pending.Row(s)
		if len(seg) == 0 {
			continue
		}
		slices.SortFunc(seg, func(a, b int32) int {
			if priorityLess(l.seed, a, b) {
				return -1
			}
			return 1
		})
		l.scratch = mergeByPriority(l.scratch[:0], l.seed, l.strata.Row(s), seg)
		l.strata.SetRow(s, l.scratch)
		l.pending.SetRow(s, nil)
	}
	rows := make([]int32, n)
	off := make([]int32, l.numKeys+1)
	pos := 0
	for s := 0; s < l.numKeys; s++ {
		off[s] = int32(pos)
		pos += copy(rows[pos:], l.strata.Row(s))
	}
	off[l.numKeys] = int32(pos)
	t := agg.TableFromColumns(l.keys[:n:n], l.vals[:n:n], l.numKeys)
	syn, err := agg.SynopsisFromOrder(t, l.cfg, rows, off)
	if err != nil {
		return l.snaps.Epoch(), 0, 0, err
	}
	folded := n - l.based
	l.base = &agg.Component{T: t, Syn: syn}
	l.based = n
	l.stats.Compactions++
	ep, _, lag := l.publishLocked(n)
	return ep, folded, lag, nil
}

// mergeByPriority merges two (priority,row)-ordered id lists into dst.
func mergeByPriority(dst []int32, seed uint64, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if priorityLess(seed, a[i], b[j]) {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// BuildAggSnapshot is the frozen-rebuild reference: it constructs, in
// one shot, the compacted snapshot a live shard converges to after
// appending exactly these rows (in any batching) and compacting. The
// property harness pins live interleavings against it bit-for-bit.
func BuildAggSnapshot(numKeys int, cfg agg.Config, keys []int32, vals []float64) (*AggSnapshot, error) {
	l := NewAggLive(numKeys, cfg)
	if _, err := l.Append(keys, vals); err != nil {
		return nil, err
	}
	if _, _, _, err := l.Compact(); err != nil {
		return nil, err
	}
	snap, _ := l.Snapshot()
	return snap, nil
}
