package ingest

import (
	"fmt"
	"math"
	"testing"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/cf"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/svd"
	"accuracytrader/internal/synopsis"
	"accuracytrader/internal/textindex"
)

// The property harness pins the sampling honesty of live ingestion:
// whatever interleaving of appends, delta publishes, and compactions a
// shard goes through, a compacted snapshot must be bit-identical to a
// frozen from-scratch build over the same data, and the reservoirs must
// keep sampling every row at the nominal per-level rate.

var aggQueries = []agg.Query{
	{Op: agg.Sum, Lo: math.Inf(-1), Hi: math.Inf(1)},
	{Op: agg.Count, Lo: 0.2, Hi: 0.8},
	{Op: agg.Avg, Lo: 0, Hi: 0.6},
}

func sameAggResult(a, b agg.Result) error {
	if len(a.Sum) != len(b.Sum) {
		return fmt.Errorf("keys %d vs %d", len(a.Sum), len(b.Sum))
	}
	for k := range a.Sum {
		if a.Sum[k] != b.Sum[k] || a.Cnt[k] != b.Cnt[k] ||
			a.SumVar[k] != b.SumVar[k] || a.CntVar[k] != b.CntVar[k] {
			return fmt.Errorf("key %d: (%v,%v,%v,%v) vs (%v,%v,%v,%v)", k,
				a.Sum[k], a.Cnt[k], a.SumVar[k], a.CntVar[k],
				b.Sum[k], b.Cnt[k], b.SumVar[k], b.CntVar[k])
		}
	}
	return nil
}

// TestAggLiveMatchesFrozenRebuild drives a live aggregation shard
// through random interleavings of batched appends, delta publishes, and
// compactions. After every compaction the snapshot must be bit-identical
// — every ladder level, every sample length, every exact answer — to a
// frozen one-shot build over the same rows; between compactions the
// exact path must still agree with a naive scan of the visible prefix.
func TestAggLiveMatchesFrozenRebuild(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := stats.NewRNG(0xa11ce + uint64(trial)*0x9e37)
		numKeys := 3 + rng.Intn(5)
		cfg := agg.Config{Rates: []float64{0.1, 0.3}, MinSample: 2, Seed: rng.Uint64()}
		l := NewAggLive(numKeys, cfg)

		var allKeys []int32
		var allVals []float64
		res := agg.NewResult(numKeys)
		want := agg.NewResult(numKeys)
		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0, 1: // append a batch
				n := 1 + rng.Intn(30)
				keys := make([]int32, n)
				vals := make([]float64, n)
				for i := range keys {
					keys[i] = int32(rng.Intn(numKeys))
					vals[i] = rng.Float64()
				}
				if _, err := l.Append(keys, vals); err != nil {
					t.Fatal(err)
				}
				allKeys = append(allKeys, keys...)
				allVals = append(allVals, vals...)
			case 2:
				l.PublishDelta()
			case 3:
				if _, _, _, err := l.Compact(); err != nil {
					t.Fatal(err)
				}
			}

			snap, _ := l.Snapshot()
			n := snap.Rows()
			if n > len(allKeys) {
				t.Fatalf("trial %d step %d: snapshot exposes %d of %d rows", trial, step, n, len(allKeys))
			}
			// Exact path vs a naive scan of the visible arrival prefix
			// (tolerance: base accumulates in synopsis order, not
			// arrival order).
			for _, q := range aggQueries {
				res = snap.Exact(res, q)
				want = want.Reset(numKeys)
				for i := 0; i < n; i++ {
					if v := allVals[i]; q.Lo <= v && v < q.Hi {
						want.Sum[allKeys[i]] += v
						want.Cnt[allKeys[i]]++
					}
				}
				for k := 0; k < numKeys; k++ {
					if math.Abs(res.Sum[k]-want.Sum[k]) > 1e-9*(1+math.Abs(want.Sum[k])) ||
						res.Cnt[k] != want.Cnt[k] {
						t.Fatalf("trial %d step %d %v key %d: exact (%v,%v) vs naive (%v,%v)",
							trial, step, q.Op, k, res.Sum[k], res.Cnt[k], want.Sum[k], want.Cnt[k])
					}
				}
			}

			if snap.DeltaRows() != 0 || snap.Base() == nil {
				continue
			}
			// Merged epoch: bit-identity against the frozen rebuild.
			frozen, err := BuildAggSnapshot(numKeys, cfg, allKeys[:n], allVals[:n])
			if err != nil {
				t.Fatal(err)
			}
			ls, fs := snap.Base().Syn, frozen.Base().Syn
			for g := 0; g < numKeys; g++ {
				if ls.StratumSize(g) != fs.StratumSize(g) {
					t.Fatalf("trial %d step %d stratum %d: size %d vs %d",
						trial, step, g, ls.StratumSize(g), fs.StratumSize(g))
				}
				for lev := 0; lev < ls.Levels(); lev++ {
					n, N := ls.SampleLen(lev, g), ls.StratumSize(g)
					if n != fs.SampleLen(lev, g) {
						t.Fatalf("trial %d step %d stratum %d level %d: sample %d vs %d",
							trial, step, g, lev, n, fs.SampleLen(lev, g))
					}
					// Reservoir maintenance honesty: the sample length
					// must track the grown stratum, not the size at
					// some earlier epoch.
					wantLen := int(math.Ceil(cfg.Rates[lev] * float64(N)))
					if wantLen < 2 {
						wantLen = 2
					}
					if wantLen > N {
						wantLen = N
					}
					if N > 0 && n != wantLen {
						t.Fatalf("trial %d step %d stratum %d level %d: sample %d of %d, want %d",
							trial, step, g, lev, n, N, wantLen)
					}
				}
			}
			other := agg.NewResult(numKeys)
			for _, q := range aggQueries {
				res = snap.Exact(res, q)
				other = frozen.Exact(other, q)
				if err := sameAggResult(res, other); err != nil {
					t.Fatalf("trial %d step %d %v exact: %v", trial, step, q.Op, err)
				}
				for lev := 0; lev < ls.Levels(); lev++ {
					res = snap.QueryLevel(res, q, lev)
					other = frozen.QueryLevel(other, q, lev)
					if err := sameAggResult(res, other); err != nil {
						t.Fatalf("trial %d step %d %v level %d: %v", trial, step, q.Op, lev, err)
					}
				}
			}
		}
	}
}

// TestAggReservoirInclusionCLT checks sampling honesty statistically:
// across seeded trials, a fixed row's chance of landing in a ladder
// sample must match the nominal rate — both for a row that lived
// through a reservoir-growing compaction (no survivor bias) and for a
// row that arrived after the base was first built (no newcomer bias).
func TestAggReservoirInclusionCLT(t *testing.T) {
	const (
		T    = 400
		rate = 0.15
		n1   = 60
		n2   = 100
	)
	// Row i carries value i, so membership in the level-0 sample is
	// query-observable: Count over [i, i+1) is positive iff row i was
	// sampled (delta is empty at merged epochs).
	included := func(snap *AggSnapshot, res agg.Result, row int) (agg.Result, bool) {
		q := agg.Query{Op: agg.Count, Lo: float64(row), Hi: float64(row) + 1}
		res = snap.QueryLevel(res, q, 0)
		return res, res.Cnt[0] > 0
	}
	var hitFirst, hitOld, hitNew int
	res := agg.NewResult(1)
	for trial := 0; trial < T; trial++ {
		cfg := agg.Config{Rates: []float64{rate}, MinSample: 2, Seed: 0x5eed + uint64(trial)}
		l := NewAggLive(1, cfg)
		keys := make([]int32, n1)
		vals := make([]float64, n1)
		for i := range vals {
			vals[i] = float64(i)
		}
		if _, err := l.Append(keys, vals); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := l.Compact(); err != nil {
			t.Fatal(err)
		}
		snap, _ := l.Snapshot()
		var ok bool
		if res, ok = included(snap, res, 5); ok {
			hitFirst++
		}
		// Grow the stratum past the old sample and compact again: the
		// reservoir must extend, and old and new rows must be sampled
		// at the same rate.
		keys = make([]int32, n2-n1)
		vals = make([]float64, n2-n1)
		for i := range vals {
			vals[i] = float64(n1 + i)
		}
		if _, err := l.Append(keys, vals); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := l.Compact(); err != nil {
			t.Fatal(err)
		}
		snap, _ = l.Snapshot()
		if got, want := snap.Base().Syn.SampleLen(0, 0), int(math.Ceil(rate*n2)); got != want {
			t.Fatalf("trial %d: sample length %d after growth, want %d", trial, got, want)
		}
		if res, ok = included(snap, res, 5); ok {
			hitOld++
		}
		if res, ok = included(snap, res, n1+5); ok {
			hitNew++
		}
	}
	// Each inclusion is Bernoulli(rate) across trials; allow 4 sigma.
	mean := T * rate
	tol := 4*math.Sqrt(T*rate*(1-rate)) + 1
	for _, c := range []struct {
		name string
		hits int
	}{{"first build", hitFirst}, {"old row after growth", hitOld}, {"new row after growth", hitNew}} {
		if math.Abs(float64(c.hits)-mean) > tol {
			t.Errorf("%s: included in %d of %d trials, want %.0f±%.0f", c.name, c.hits, T, mean, tol)
		}
	}
}

func sameCFResult(a, b cf.Result) error {
	if len(a.Num) != len(b.Num) {
		return fmt.Errorf("targets %d vs %d", len(a.Num), len(b.Num))
	}
	for i := range a.Num {
		if a.Num[i] != b.Num[i] || a.Den[i] != b.Den[i] {
			return fmt.Errorf("target %d: (%v,%v) vs (%v,%v)", i, a.Num[i], a.Den[i], b.Num[i], b.Den[i])
		}
	}
	return nil
}

// TestCFLiveMatchesFrozenRebuild drives a live CF shard through random
// interleavings. At every epoch the exact path must be bit-identical to
// running the reference kernel over a matrix rebuilt from the visible
// users; at merged epochs the whole snapshot — synopsis answers
// included — must match the frozen rebuild.
func TestCFLiveMatchesFrozenRebuild(t *testing.T) {
	const nItems = 40
	cfg := synopsis.Config{SVD: svd.Config{Dims: 3, Epochs: 10, Seed: 11}, CompressionRatio: 10}
	rng := stats.NewRNG(0xcf11fe)
	genUser := func() []cf.Rating {
		n := 5 + rng.Intn(11)
		perm := rng.Perm(nItems)
		rs := make([]cf.Rating, n)
		for i := range rs {
			rs[i] = cf.Rating{Item: int32(perm[i]), Score: 1 + 4*rng.Float64()}
		}
		return rs
	}
	req := cf.NewRequest(genUser(), []int32{0, 7, 19, 33})

	l := NewCFLive(nItems, cfg)
	var allUsers [][]cf.Rating
	res := cf.NewResult(len(req.Targets))
	want := cf.NewResult(len(req.Targets))
	for step := 0; step < 30; step++ {
		switch rng.Intn(4) {
		case 0, 1:
			u := genUser()
			if _, err := l.Append(u); err != nil {
				t.Fatal(err)
			}
			allUsers = append(allUsers, u)
		case 2:
			l.PublishDelta()
		case 3:
			if _, _, _, err := l.Compact(); err != nil {
				t.Fatal(err)
			}
		}

		snap, _ := l.Snapshot()
		n := snap.Users()
		// Exact path vs the reference kernel over a rebuilt matrix of
		// the visible users: bit-identical (same kernel, same order).
		m := cf.NewMatrix(nItems)
		for _, rs := range allUsers[:n] {
			m.AddUser(rs)
		}
		res = snap.Exact(res, req)
		want = want.Reset(len(req.Targets))
		sc := new(cf.DeltaScorer)
		sc.Bind(nItems, req.Targets)
		for u := 0; u < n; u++ {
			sc.Add(want, req.Ratings, m.Ratings(u), m.Mean(u))
		}
		if err := sameCFResult(res, want); err != nil {
			t.Fatalf("step %d exact vs rebuilt matrix: %v", step, err)
		}

		if snap.DeltaUsers() != 0 || snap.Base() == nil {
			continue
		}
		frozen, err := BuildCFSnapshot(nItems, cfg, allUsers[:n])
		if err != nil {
			t.Fatal(err)
		}
		res = snap.Exact(res, req)
		want = frozen.Exact(want, req)
		if err := sameCFResult(res, want); err != nil {
			t.Fatalf("step %d merged exact vs frozen: %v", step, err)
		}
		le := cf.GetEngine(snap.Base(), req)
		fe := cf.GetEngine(frozen.Base(), req)
		lc := le.ProcessSynopsis()
		fc := fe.ProcessSynopsis()
		if len(lc) != len(fc) {
			t.Fatalf("step %d: %d vs %d synopsis correlations", step, len(lc), len(fc))
		}
		for g := range lc {
			if lc[g] != fc[g] {
				t.Fatalf("step %d set %d: correlation %v vs %v", step, g, lc[g], fc[g])
			}
		}
		if err := sameCFResult(le.Result(), fe.Result()); err != nil {
			t.Fatalf("step %d merged synopsis vs frozen: %v", step, err)
		}
		le.Release()
		fe.Release()
	}
}

// TestSearchLiveMatchesFrozenRebuild drives a live search shard through
// random interleavings. Merged epochs must be bit-identical to the
// frozen rebuild; unmerged epochs serve delta documents scored at the
// base epoch's idf weights, so only structural sanity is pinned there.
func TestSearchLiveMatchesFrozenRebuild(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta", "omega", "sigma", "tau", "kappa"}
	rng := stats.NewRNG(0x5ea4c4)
	genDoc := func() string {
		n := 3 + rng.Intn(10)
		doc := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				doc += " "
			}
			doc += vocab[rng.Intn(len(vocab))]
		}
		return doc
	}
	cfg := synopsis.Config{SVD: svd.Config{Dims: 3, Epochs: 10, Seed: 9}, CompressionRatio: 10}

	l := NewSearchLive(cfg)
	var allDocs []string
	var hits, want []textindex.Hit
	for step := 0; step < 30; step++ {
		switch rng.Intn(4) {
		case 0, 1:
			d := genDoc()
			l.Append(d)
			allDocs = append(allDocs, d)
		case 2:
			l.PublishDelta()
		case 3:
			if _, _, _, err := l.Compact(); err != nil {
				t.Fatal(err)
			}
		}

		snap, _ := l.Snapshot()
		n := snap.Docs()
		q := snap.ParseQuery("alpha gamma sigma")
		hits = snap.ExactTopK(hits, q, 5)
		for i, h := range hits {
			if h.Doc < 0 || h.Doc >= n {
				t.Fatalf("step %d: hit doc %d outside %d visible docs", step, h.Doc, n)
			}
			if i > 0 && hits[i-1].Score < h.Score {
				t.Fatalf("step %d: hits not sorted at %d", step, i)
			}
		}

		if snap.DeltaDocs() != 0 || snap.Base() == nil {
			continue
		}
		frozen, err := BuildSearchSnapshot(cfg, allDocs[:n])
		if err != nil {
			t.Fatal(err)
		}
		want = frozen.ExactTopK(want, frozen.ParseQuery("alpha gamma sigma"), 5)
		if len(hits) != len(want) {
			t.Fatalf("step %d: %d hits vs frozen's %d", step, len(hits), len(want))
		}
		for i := range hits {
			if hits[i] != want[i] {
				t.Fatalf("step %d hit %d: %+v vs frozen %+v", step, i, hits[i], want[i])
			}
		}
	}
}
