//go:build !race

package ingest

const raceEnabled = false
