package stats

import "math"

// Summary accumulates streaming count/mean/variance/min/max using
// Welford's algorithm, so experiment code can report stable moments
// without retaining samples.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (s *Summary) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean (NaN when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Var returns the unbiased sample variance (NaN for fewer than 2 samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (NaN when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation (NaN when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Histogram is a fixed-width-bucket histogram over [lo, hi); values
// outside the range are clamped into the first/last bucket. It is used to
// render the per-minute latency fluctuation panels of Figures 5-7.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []int
	total   int
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int, n)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	i := int((v - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.total++
}

// Buckets returns the raw bucket counts (shared slice).
func (h *Histogram) Buckets() []int { return h.buckets }

// Total returns the number of values recorded.
func (h *Histogram) Total() int { return h.total }

// BucketBounds returns the [lo,hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	return h.lo + float64(i)*h.width, h.lo + float64(i+1)*h.width
}
