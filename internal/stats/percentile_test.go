package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileKnownValues(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75}, {10, 1.9},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile of empty slice should be NaN")
	}
}

func TestPercentileSingle(t *testing.T) {
	for _, p := range []float64{0, 50, 99.9, 100} {
		if got := Percentile([]float64{42}, p); got != 42 {
			t.Fatalf("Percentile single p=%v got %v", p, got)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{5, 1, 3}
	Percentile(vals, 50)
	if vals[0] != 5 || vals[1] != 1 || vals[2] != 3 {
		t.Fatalf("input mutated: %v", vals)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	r := NewRNG(21)
	f := func(n uint8) bool {
		m := int(n%100) + 2
		vals := make([]float64, m)
		for i := range vals {
			vals[i] = r.Float64() * 1000
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7.3 {
			v := Percentile(vals, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	r := NewRNG(22)
	f := func(n uint16) bool {
		m := int(n%500) + 1
		vals := make([]float64, m)
		for i := range vals {
			vals[i] = r.Norm(0, 100)
		}
		sorted := make([]float64, m)
		copy(sorted, vals)
		sort.Float64s(sorted)
		for _, p := range []float64{0, 12.5, 50, 99, 99.9, 100} {
			v := Percentile(vals, p)
			if v < sorted[0] || v > sorted[m-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyRecorder(t *testing.T) {
	l := NewLatencyRecorder(16)
	for i := 1; i <= 1000; i++ {
		l.Record(float64(i))
	}
	if l.Count() != 1000 {
		t.Fatalf("Count = %d", l.Count())
	}
	if got := l.Percentile(99.9); math.Abs(got-999.001) > 0.01 {
		t.Fatalf("p99.9 = %v", got)
	}
	if got := l.Max(); got != 1000 {
		t.Fatalf("Max = %v", got)
	}
	if got := l.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestLatencyRecorderRecordAfterQuery(t *testing.T) {
	l := NewLatencyRecorder(0)
	l.Record(10)
	_ = l.Percentile(50)
	l.Record(20) // must invalidate cached sort
	if got := l.Percentile(100); got != 20 {
		t.Fatalf("p100 after second record = %v", got)
	}
	if got := l.Max(); got != 20 {
		t.Fatalf("max after second record = %v", got)
	}
}

func TestLatencyRecorderMerge(t *testing.T) {
	a := NewLatencyRecorder(0)
	b := NewLatencyRecorder(0)
	a.Record(1)
	b.Record(3)
	a.Merge(b)
	if a.Count() != 2 || a.Max() != 3 {
		t.Fatalf("merge failed: count=%d max=%v", a.Count(), a.Max())
	}
}

func TestLatencyRecorderReset(t *testing.T) {
	l := NewLatencyRecorder(0)
	l.Record(5)
	l.Reset()
	if l.Count() != 0 {
		t.Fatalf("count after reset = %d", l.Count())
	}
	if !math.IsNaN(l.Max()) || !math.IsNaN(l.Mean()) {
		t.Fatal("stats after reset should be NaN")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatal("empty summary should be NaN")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 100} {
		h.Add(v)
	}
	want := []int{3, 1, 1, 0, 3}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	lo, hi := h.BucketBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("bounds = %v,%v", lo, hi)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 1, 3)
}
