package stats

import (
	"math"
	"sort"
	"testing"
)

func TestP2AgainstExact(t *testing.T) {
	rng := NewRNG(1)
	for _, p := range []float64{0.5, 0.95, 0.99} {
		e := NewP2Quantile(p)
		var samples []float64
		for i := 0; i < 50000; i++ {
			// Lognormal: the skewed shape latencies actually have.
			v := rng.LogNormal(3, 0.8)
			e.Add(v)
			samples = append(samples, v)
		}
		sort.Float64s(samples)
		exact := PercentileSorted(samples, p*100)
		got := e.Value()
		if math.Abs(got-exact)/exact > 0.08 {
			t.Fatalf("p=%v: P2 %v vs exact %v", p, got, exact)
		}
	}
}

func TestP2SmallSamples(t *testing.T) {
	e := NewP2Quantile(0.5)
	if !math.IsNaN(e.Value()) {
		t.Fatal("empty estimator should be NaN")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("single sample median = %v", e.Value())
	}
	e.Add(20)
	e.Add(30)
	if got := e.Value(); got != 20 {
		t.Fatalf("3-sample median = %v", got)
	}
	if e.N() != 3 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestP2MonotoneInputs(t *testing.T) {
	e := NewP2Quantile(0.9)
	for i := 1; i <= 1000; i++ {
		e.Add(float64(i))
	}
	got := e.Value()
	if got < 850 || got > 950 {
		t.Fatalf("p90 of 1..1000 estimated %v", got)
	}
}

func TestP2ExtremesClamp(t *testing.T) {
	e := NewP2Quantile(0.5)
	for _, v := range []float64{5, 5, 5, 5, 5} {
		e.Add(v)
	}
	e.Add(1000) // new max
	e.Add(-100) // new min
	if got := e.Value(); got < -100 || got > 1000 {
		t.Fatalf("estimate %v escaped observed range", got)
	}
}

func TestP2Panics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewP2Quantile(%v) did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}
