package stats

import "math"

// P2Quantile is the P² (Jain & Chlamtac 1985) streaming quantile
// estimator: it maintains five markers and estimates a single quantile in
// O(1) memory and time per observation. The live service runtime uses it
// so long-running clusters track p95/p99.9 without retaining samples;
// the offline experiments keep exact recorders.
type P2Quantile struct {
	p     float64
	n     int
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired positions
	dWant [5]float64 // desired position increments
	init  []float64
}

// NewP2Quantile returns an estimator for the quantile p in (0,1), e.g.
// 0.95 for p95.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: P2 quantile must be in (0,1)")
	}
	e := &P2Quantile{p: p, init: make([]float64, 0, 5)}
	e.dWant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add incorporates one observation.
func (e *P2Quantile) Add(x float64) {
	e.n++
	if len(e.init) < 5 {
		e.init = append(e.init, x)
		if len(e.init) == 5 {
			sortFive(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.pos[i] = float64(i + 1)
			}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}
	// Locate the cell containing x and clamp extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.dWant[i]
	}
	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := sign(d)
			qNew := e.parabolic(i, s)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic prediction of marker i moved by
// d (±1).
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// Value returns the current quantile estimate (NaN when empty; exact for
// fewer than five observations).
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if len(e.init) < 5 {
		cp := append([]float64(nil), e.init...)
		sortFive(cp)
		rank := e.p * float64(len(cp)-1)
		lo := int(rank)
		if lo >= len(cp)-1 {
			return cp[len(cp)-1]
		}
		frac := rank - float64(lo)
		return cp[lo]*(1-frac) + cp[lo+1]*frac
	}
	return e.q[2]
}

// N returns the number of observations.
func (e *P2Quantile) N() int { return e.n }

// HedgeWarmObservations is the cold-start guard shared by the hedge
// triggers of both serving runtimes: the P² estimator keeps its first
// five samples verbatim, so with fewer observations its "p95" is an
// interpolation over noise and the trigger must hold its configured
// floor.
const HedgeWarmObservations = 5

// HedgeEstimateDue reports whether the cached hedge-trigger estimate
// should be refreshed after the n-th observation: never before the
// estimator has a full marker set, on every sample through the warm
// phase (so the trigger tracks reality quickly), then every 16th.
func HedgeEstimateDue(n int) bool {
	return n >= HedgeWarmObservations && (n < 16 || n%16 == 0)
}

// sortFive insertion-sorts a tiny slice.
func sortFive(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
