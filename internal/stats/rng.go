package stats

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; give each goroutine its own RNG,
// typically via Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// NewRNG returns a generator seeded from the given seed. Distinct seeds
// yield independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	return r
}

// Split derives a new independent generator from r, keyed by id. Two Splits
// with different ids produce decorrelated streams, which lets experiment
// code hand one RNG per component or per worker without sharing state.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id * 0xd1342543de82ef95))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return res
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Norm returns a normally distributed float64 with mean mu and standard
// deviation sigma, via the Marsaglia polar method.
func (r *RNG) Norm(mu, sigma float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mu + sigma*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(1-u) / rate
}

// LogNormal returns a lognormally distributed float64 whose underlying
// normal has mean mu and standard deviation sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pareto returns a Pareto(xm, alpha) sample: heavy-tailed with minimum xm.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Poisson returns a Poisson-distributed count with the given mean. For
// small means it uses Knuth's product method; for large means a normal
// approximation with continuity correction, which is accurate enough for
// workload generation.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := r.Norm(mean, math.Sqrt(mean))
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}
