package stats

import "math"

// Zipf draws integers in [0,n) with probability proportional to
// 1/(rank+1)^s. It precomputes the cumulative distribution once so that
// each draw is a binary search, which keeps corpus generation fast even
// for vocabularies of hundreds of thousands of terms.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a Zipf sampler over [0,n) with exponent s > 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns the next Zipf-distributed rank.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the support size of the sampler.
func (z *Zipf) N() int { return len(z.cdf) }
