package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (p in [0,100]) of values using
// linear interpolation between closest ranks. The input is not modified.
// It returns NaN for an empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	cp := make([]float64, len(values))
	copy(cp, values)
	sort.Float64s(cp)
	return percentileSorted(cp, p)
}

// PercentileSorted is like Percentile but requires values to be sorted
// ascending and does not copy.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LatencyRecorder accumulates latency observations (in milliseconds or any
// consistent unit) and answers percentile queries. It keeps the raw samples
// so that extreme tails (p99.9) are exact, which matters for the paper's
// headline metric; experiments at reproduction scale record at most a few
// hundred thousand samples per run.
type LatencyRecorder struct {
	samples []float64
	sorted  bool
}

// NewLatencyRecorder returns an empty recorder with the given capacity hint.
func NewLatencyRecorder(capHint int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]float64, 0, capHint)}
}

// Record adds one observation.
func (l *LatencyRecorder) Record(v float64) {
	l.samples = append(l.samples, v)
	l.sorted = false
}

// Merge adds all observations from other.
func (l *LatencyRecorder) Merge(other *LatencyRecorder) {
	l.samples = append(l.samples, other.samples...)
	l.sorted = false
}

// Count returns the number of recorded observations.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Percentile returns the exact p-th percentile of the recorded samples.
func (l *LatencyRecorder) Percentile(p float64) float64 {
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	return PercentileSorted(l.samples, p)
}

// Max returns the largest recorded value (NaN when empty).
func (l *LatencyRecorder) Max() float64 {
	if len(l.samples) == 0 {
		return math.NaN()
	}
	if l.sorted {
		return l.samples[len(l.samples)-1]
	}
	m := l.samples[0]
	for _, v := range l.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of the recorded values (NaN when empty).
func (l *LatencyRecorder) Mean() float64 {
	if len(l.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range l.samples {
		sum += v
	}
	return sum / float64(len(l.samples))
}

// Reset discards all samples but keeps the allocation.
func (l *LatencyRecorder) Reset() {
	l.samples = l.samples[:0]
	l.sorted = false
}

// Samples returns the recorded samples (shared slice; callers must not
// modify it). Order is unspecified.
func (l *LatencyRecorder) Samples() []float64 { return l.samples }
