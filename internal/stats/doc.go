// Package stats provides the deterministic random-number machinery,
// probability distributions and summary statistics (percentiles,
// streaming P² quantile estimation) that the paper's evaluation (§4)
// rests on: workload generation, interference traces, and the
// 99.9th-percentile component latencies every figure reports.
//
// Every stochastic element of the experiments draws from an explicitly
// seeded RNG so that runs are reproducible bit-for-bit. The generator is
// xoshiro256**, seeded through splitmix64 as recommended by its authors.
package stats
