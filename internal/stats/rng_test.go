package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams share %d outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", s.Mean())
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(5)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Norm(3, 2))
	}
	if math.Abs(s.Mean()-3) > 0.05 {
		t.Fatalf("normal mean %v too far from 3", s.Mean())
	}
	if math.Abs(s.Std()-2) > 0.05 {
		t.Fatalf("normal std %v too far from 2", s.Std())
	}
}

func TestExpMoments(t *testing.T) {
	r := NewRNG(6)
	var s Summary
	for i := 0; i < 200000; i++ {
		v := r.Exp(4)
		if v < 0 {
			t.Fatalf("exponential sample negative: %v", v)
		}
		s.Add(v)
	}
	if math.Abs(s.Mean()-0.25) > 0.01 {
		t.Fatalf("exp mean %v too far from 0.25", s.Mean())
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(8)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		var s Summary
		for i := 0; i < 100000; i++ {
			s.Add(float64(r.Poisson(mean)))
		}
		if math.Abs(s.Mean()-mean) > 0.05*mean+0.05 {
			t.Fatalf("poisson(%v) mean %v", mean, s.Mean())
		}
		// Poisson variance equals the mean.
		if math.Abs(s.Var()-mean) > 0.1*mean+0.1 {
			t.Fatalf("poisson(%v) var %v", mean, s.Var())
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := NewRNG(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := NewRNG(1).Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d", got)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto sample %v below xm", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal sample %v not positive", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(12)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermProperty(t *testing.T) {
	r := NewRNG(13)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == m*(m-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(14)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("zipf counts not decreasing: c0=%d c10=%d c100=%d", counts[0], counts[10], counts[100])
	}
	// Rank 0 under s=1 over 1000 items has probability ~1/H(1000) ~ 0.1337.
	frac := float64(counts[0]) / 100000
	if math.Abs(frac-0.1337) > 0.02 {
		t.Fatalf("zipf head frequency %v", frac)
	}
}

func TestZipfBounds(t *testing.T) {
	r := NewRNG(15)
	z := NewZipf(r, 7, 1.2)
	if z.N() != 7 {
		t.Fatalf("N = %d", z.N())
	}
	for i := 0; i < 10000; i++ {
		if v := z.Draw(); v < 0 || v >= 7 {
			t.Fatalf("zipf draw out of range: %d", v)
		}
	}
}
