package cluster

import (
	"fmt"

	"accuracytrader/internal/frontend"
)

// FrontendConfig models the accuracy-aware frontend (internal/frontend)
// inside the simulator: the same admission, routing, and degradation
// policy values that drive the live runtime are evaluated here against
// the virtual clock, at fan-out widths and arrival rates the live
// runtime can't reach. Requests pass admission → replica routing →
// per-component FIFO queues; under load the degradation controller
// selects coarser ladder levels per request instead of letting queues
// grow without bound.
type FrontendConfig struct {
	// Replicas is the replica factor of the component map (default 2):
	// subset s may be served by components s … s+R-1 (mod n).
	Replicas int
	// Admission policies; the most severe verdict wins. Empty admits
	// everything.
	Admission []frontend.AdmissionPolicy
	// Router places each sub-operation on one of the subset's replicas
	// (default least-loaded).
	Router frontend.Router
	// Controller maps observed load to a ladder level per request.
	// Nil disables degradation (components use their fixed synopsis).
	Controller *frontend.Controller
	// QueueCap is the per-component queue bound used to normalise
	// queue-depth fractions for admission and the controller
	// (default 64).
	QueueCap int
	// ClassOf assigns request r its SLO class (default: BestEffort for
	// every request).
	ClassOf func(req int) frontend.SLO
}

func (f *FrontendConfig) withDefaults() {
	if f.Replicas <= 0 {
		f.Replicas = 2
	}
	if f.Router == nil {
		f.Router = frontend.NewLeastLoaded()
	}
	if f.QueueCap <= 0 {
		f.QueueCap = 64
	}
	if f.ClassOf == nil {
		f.ClassOf = func(int) frontend.SLO { return frontend.BestEffortSLO() }
	}
}

// frontendSim is the simulated frontend's runtime state.
type frontendSim struct {
	cfg        FrontendConfig
	rmap       frontend.ReplicaMap
	comps      []component
	hedge      *hedgeEstimator
	deadlineMs float64
	inflight   int
	remaining  []int // outstanding sub-operations per admitted request
}

func newFrontendSim(cfg Config, comps []component, hedge *hedgeEstimator) (*frontendSim, error) {
	fc := *cfg.Frontend
	fc.withDefaults()
	if fc.Controller != nil && cfg.Technique != AccuracyTrader {
		// Levels would be recorded on the Result but never served —
		// exact techniques always do full scans.
		return nil, fmt.Errorf("cluster: frontend degradation requires Technique AccuracyTrader, got %v", cfg.Technique)
	}
	if fc.Controller != nil {
		for i := range cfg.Work {
			if len(cfg.Work[i].SynopsisLadder) == 0 {
				return nil, fmt.Errorf("cluster: frontend degradation needs a SynopsisLadder in every work model")
			}
			if got := len(cfg.Work[i].SynopsisLadder); got != fc.Controller.Levels() {
				return nil, fmt.Errorf("cluster: controller has %d levels but work model %d has a %d-level ladder",
					fc.Controller.Levels(), i, got)
			}
		}
	}
	return &frontendSim{
		cfg:        fc,
		rmap:       frontend.NewReplicaMap(cfg.Components, fc.Replicas),
		comps:      comps,
		hedge:      hedge,
		deadlineMs: cfg.DeadlineMs,
		remaining:  make([]int, len(cfg.Arrivals)),
	}, nil
}

// depth is the routing/admission load probe: queued plus in-service
// sub-operations on one component.
func (fe *frontendSim) depth(c int) int {
	d := len(fe.comps[c].queue)
	if fe.comps[c].busy {
		d++
	}
	return d
}

// snapshot summarises current pressure for the policies.
func (fe *frontendSim) snapshot() frontend.Load {
	sum, max := 0.0, 0.0
	for c := range fe.comps {
		frac := float64(fe.depth(c)) / float64(fe.cfg.QueueCap)
		sum += frac
		if frac > max {
			max = frac
		}
	}
	lat := 0.0
	if fe.deadlineMs > 0 {
		lat = fe.hedge.p95() / fe.deadlineMs
	}
	return frontend.Load{
		Inflight:     fe.inflight,
		QueueFrac:    sum / float64(len(fe.comps)),
		MaxQueueFrac: max,
		LatencyFrac:  lat,
	}
}

// admit runs one arrival through admission and level selection,
// recording the outcome on the result. It returns false for shed
// requests.
func (fe *frontendSim) admit(nowMs float64, req, n int, res *Result) bool {
	slo := fe.cfg.ClassOf(req)
	res.Class[req] = slo
	load := fe.snapshot()
	if fe.cfg.Controller != nil {
		fe.cfg.Controller.Observe(load)
	}
	switch frontend.Chain(nowMs, load, fe.cfg.Admission) {
	case frontend.Reject:
		res.Rejected[req] = true
		res.Level[req] = -1
		return false
	case frontend.Degrade:
		if slo.Kind == frontend.Bounded {
			slo = frontend.BestEffortSLO()
			res.Class[req] = slo
		}
	}
	level := -1
	if fe.cfg.Controller != nil {
		level = fe.cfg.Controller.LevelFor(slo)
	}
	res.Level[req] = level
	fe.inflight++
	fe.remaining[req] = n
	return true
}

// route picks the component serving one subset, falling back to home
// placement for out-of-range router picks (as the live runtime does).
func (fe *frontendSim) route(subset int) int {
	if c := fe.cfg.Router.Pick(subset, fe.rmap.Replicas(subset), fe.depth); c >= 0 && c < len(fe.comps) {
		return c
	}
	return subset
}

// finished records one completed sub-operation and releases the
// request's in-flight slot when its last sub-operation lands.
func (fe *frontendSim) finished(req int) {
	fe.remaining[req]--
	if fe.remaining[req] == 0 {
		fe.inflight--
	}
}
