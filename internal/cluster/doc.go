// Package cluster simulates the paper's deployment (§4.3): one frontend
// partitioning each request across n parallel service components (one per
// VM), each component a FIFO single-server queue whose processing speed is
// modulated by co-located MapReduce interference, and a composer gathering
// sub-operation results. Component latency = queueing delay + processing
// time, the exact mechanism the paper identifies as the source of tail
// latency.
//
// Three processing behaviours are simulated:
//
//   - Exact (Basic and Partial execution share it): every sub-operation
//     scans the component's whole subset. Partial execution differs only
//     at composition time — results arriving after the deadline are
//     skipped — so one run serves both techniques.
//   - Reissue: exact processing plus hedging — when a sub-operation has
//     been outstanding longer than the (dynamically estimated) 95th
//     percentile of sub-operation latency, a replica is enqueued on
//     another component and the quicker of the two is used.
//   - AccuracyTrader: the component first processes its synopsis, then
//     improves with ranked member sets while the elapsed service time
//     stays below the deadline (Algorithm 1 under the simulator's cost
//     model). Service demand therefore adapts to queueing delay, which is
//     what keeps the system out of overload.
package cluster
