package cluster

import (
	"math"
	"testing"

	"accuracytrader/internal/frontend"
	"accuracytrader/internal/stats"
)

func countRejected(res *Result) int {
	n := 0
	for _, r := range res.Rejected {
		if r {
			n++
		}
	}
	return n
}

func TestFrontendTokenBucketShedsOnVirtualClock(t *testing.T) {
	// 200 req/s offered against a 100/s bucket: roughly half the
	// requests are shed, and the bucket refills on virtual time.
	rng := stats.NewRNG(11)
	arr := poissonArrivals(rng, 200, 10000)
	cfg := baseConfig(arr)
	cfg.Frontend = &FrontendConfig{
		Admission: []frontend.AdmissionPolicy{frontend.NewTokenBucket(100, 10)},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rejected := countRejected(res)
	admitted := len(arr) - rejected
	// ~1000 tokens refill over the 10s window (plus the initial burst).
	if admitted < 900 || admitted > 1100 {
		t.Fatalf("admitted %d of %d, want ~1000", admitted, len(arr))
	}
	// Shed requests carry no sub-operations and are excluded from the
	// latency population; they complete nothing and were never
	// answered.
	sawRejected := false
	svc := res.ServiceLatencies(true, 0)
	for i, ops := range res.Ops {
		if !res.Rejected[i] {
			continue
		}
		sawRejected = true
		if ops[0].LatencyMs != 0 {
			t.Fatalf("rejected request %d has latency %v", i, ops[0].LatencyMs)
		}
		if f := res.CompletedFraction(i, 1e9); f != 0 {
			t.Fatalf("rejected request %d completed fraction %v", i, f)
		}
		if !math.IsNaN(svc[i]) {
			t.Fatalf("rejected request %d service latency %v, want NaN", i, svc[i])
		}
	}
	if !sawRejected {
		t.Fatal("no rejected request to check")
	}
	if len(res.ComponentLatencies()) != admitted*cfg.Components {
		t.Fatal("ComponentLatencies did not exclude rejected requests")
	}
}

func TestFrontendMaxInflightBoundsQueues(t *testing.T) {
	// 2x overload on Basic: unbounded queues without a frontend, but a
	// concurrency cap sheds the excess and keeps the tail bounded by
	// limit x service time.
	rng := stats.NewRNG(12)
	arr := poissonArrivals(rng, 200, 10000)
	open, err := Run(baseConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(arr)
	cfg.Frontend = &FrontendConfig{
		Replicas:  1,
		Admission: []frontend.AdmissionPolicy{frontend.NewMaxInflight(8)},
	}
	capped, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if countRejected(capped) == 0 {
		t.Fatal("2x overload shed nothing")
	}
	tailOpen := stats.Percentile(open.ComponentLatencies(), 99.9)
	tailCap := stats.Percentile(capped.ComponentLatencies(), 99.9)
	// 8 in-flight requests x 10ms service = at most ~80ms of queueing
	// ahead of any admitted sub-operation.
	if tailCap > 100 {
		t.Fatalf("capped tail %vms, want bounded by the inflight cap", tailCap)
	}
	if tailCap >= tailOpen {
		t.Fatalf("capped tail %v not below open tail %v", tailCap, tailOpen)
	}
}

func TestFrontendDegradationCoarsensUnderLoad(t *testing.T) {
	// A deliberately heavy fixed synopsis saturates at 1200 req/s; the
	// degradation controller steers requests to coarser ladder levels
	// and keeps the tail below the fixed-synopsis run.
	rng := stats.NewRNG(13)
	arr := poissonArrivals(rng, 1200, 5000)
	work := WorkModel{
		FullUnits:      1000,
		SynopsisUnits:  120,
		NumGroups:      10,
		SynopsisLadder: []float64{5, 30, 120},
	}
	base := Config{
		Components: 4,
		Arrivals:   arr,
		Work:       []WorkModel{work},
		UnitCostMs: 0.01,
		Technique:  AccuracyTrader,
		DeadlineMs: 20,
	}
	fixed, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := frontend.NewController(frontend.ControllerConfig{
		Levels:        3,
		LevelAccuracy: []float64{0.6, 0.85, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Frontend = &FrontendConfig{Controller: ctrl, QueueCap: 16}
	deg, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tf := stats.Percentile(fixed.ComponentLatencies(), 99.9)
	td := stats.Percentile(deg.ComponentLatencies(), 99.9)
	if td >= tf {
		t.Fatalf("degraded tail %v not below fixed %v", td, tf)
	}
	// Under sustained overload most requests run below the finest level.
	coarse := 0
	for i, lv := range deg.Level {
		if deg.Rejected[i] {
			continue
		}
		if lv < 2 {
			coarse++
		}
	}
	if coarse < len(arr)/2 {
		t.Fatalf("only %d of %d requests degraded", coarse, len(arr))
	}
}

func TestFrontendSLOClasses(t *testing.T) {
	// Alpha 1 makes the controller track raw load exactly, and an
	// inflight saturation of 1 saturates it as soon as one request is
	// in flight: the first (Exact) request sees load 0 and the finest
	// level, the later two see load 1 — Bounded stops at its accuracy
	// floor, BestEffort takes the coarsest level. The Exact request
	// runs a full scan.
	ctrl, err := frontend.NewController(frontend.ControllerConfig{
		Levels:             3,
		LevelAccuracy:      []float64{0.6, 0.9, 1},
		Alpha:              1,
		InflightSaturation: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	classes := []frontend.SLO{
		frontend.ExactSLO(),
		frontend.BoundedSLO(0.85),
		frontend.BestEffortSLO(),
	}
	work := WorkModel{
		FullUnits:      1000,
		SynopsisUnits:  120,
		NumGroups:      10,
		SynopsisLadder: []float64{5, 30, 120},
	}
	cfg := Config{
		Components: 2,
		Arrivals:   []float64{0, 0.5, 1},
		Work:       []WorkModel{work},
		UnitCostMs: 0.01,
		Technique:  AccuracyTrader,
		DeadlineMs: 100,
		Frontend: &FrontendConfig{
			Controller: ctrl,
			ClassOf:    func(r int) frontend.SLO { return classes[r] },
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level[0] != 2 {
		t.Fatalf("exact level = %d, want finest", res.Level[0])
	}
	if res.Level[1] != 1 {
		t.Fatalf("bounded level = %d, want accuracy floor 1", res.Level[1])
	}
	if res.Level[2] != 0 {
		t.Fatalf("best-effort level = %d, want coarsest", res.Level[2])
	}
	// The exact request's first sub-operation is a full scan: 10ms of
	// service, not synopsis + sets.
	if res.Ops[0][0].LatencyMs < 10 {
		t.Fatalf("exact request latency %v, want a full 10ms scan", res.Ops[0][0].LatencyMs)
	}
	if res.Ops[0][0].SetsProcessed != 0 {
		t.Fatalf("exact request processed sets: %+v", res.Ops[0][0])
	}
	if res.Class[0].Kind != frontend.Exact || res.Class[2].Kind != frontend.BestEffort {
		t.Fatalf("classes = %v", res.Class)
	}
}

func TestFrontendRoutingAvoidsSlowComponent(t *testing.T) {
	// Component 0 is permanently 8x slower. Fixed placement pins subset
	// 0 to it; least-loaded routing over a 2-replica map drains subset
	// 0's work through component 1 once component 0's queue builds.
	rng := stats.NewRNG(14)
	arr := poissonArrivals(rng, 50, 10000)
	slow := func(c int, _ float64) float64 {
		if c == 0 {
			return 8
		}
		return 1
	}
	base := baseConfig(arr)
	base.Slowdown = slow
	pinned, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(arr)
	cfg.Slowdown = slow
	cfg.Frontend = &FrontendConfig{Replicas: 2, Router: frontend.NewLeastLoaded()}
	routed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tp := stats.Percentile(pinned.ComponentLatencies(), 99)
	tr := stats.Percentile(routed.ComponentLatencies(), 99)
	if tr >= tp {
		t.Fatalf("routed tail %v not below pinned %v", tr, tp)
	}
}

func TestFrontendDegradationRequiresLadder(t *testing.T) {
	ctrl, err := frontend.NewController(frontend.ControllerConfig{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig([]float64{0}) // WorkModel without SynopsisLadder
	cfg.Technique = AccuracyTrader
	cfg.Frontend = &FrontendConfig{Controller: ctrl}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected missing-ladder error")
	}
	// A ladder whose depth disagrees with the controller would silently
	// clamp levels, skewing accuracy-vs-level analysis — rejected.
	cfg.Work = []WorkModel{{
		FullUnits: 1000, SynopsisUnits: 10, NumGroups: 10,
		SynopsisLadder: []float64{2, 5, 10}, // 3 levels vs controller's 2
	}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected level-mismatch error")
	}
}

func TestFrontendDeterminism(t *testing.T) {
	rng := stats.NewRNG(15)
	arr := poissonArrivals(rng, 300, 5000)
	run := func() *Result {
		ctrl, err := frontend.NewController(frontend.ControllerConfig{Levels: 3})
		if err != nil {
			t.Fatal(err)
		}
		work := WorkModel{
			FullUnits:      1000,
			SynopsisUnits:  10,
			NumGroups:      10,
			SynopsisLadder: []float64{2, 5, 10},
		}
		cfg := baseConfig(arr)
		cfg.Work = []WorkModel{work}
		cfg.Technique = AccuracyTrader
		cfg.Frontend = &FrontendConfig{
			Replicas:   2,
			Router:     frontend.NewPowerOfTwo(7),
			Controller: ctrl,
			Admission: []frontend.AdmissionPolicy{
				frontend.NewTokenBucket(250, 20),
				frontend.NewQueueWatermark(0.5, 0.9),
			},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for r := range a.Ops {
		if a.Rejected[r] != b.Rejected[r] || a.Level[r] != b.Level[r] {
			t.Fatalf("frontend not deterministic at request %d", r)
		}
		for c := range a.Ops[r] {
			if a.Ops[r][c] != b.Ops[r][c] {
				t.Fatalf("ops not deterministic at (%d,%d)", r, c)
			}
		}
	}
}
