package cluster

import (
	"math"
	"testing"

	"accuracytrader/internal/stats"
)

// poissonArrivals generates an open-loop arrival sequence at rate req/s
// over horizonMs.
func poissonArrivals(rng *stats.RNG, ratePerSec, horizonMs float64) []float64 {
	var out []float64
	t := 0.0
	for {
		t += rng.Exp(ratePerSec / 1000)
		if t >= horizonMs {
			return out
		}
		out = append(out, t)
	}
}

func baseConfig(arrivals []float64) Config {
	return Config{
		Components: 8,
		Arrivals:   arrivals,
		Work:       []WorkModel{{FullUnits: 1000, SynopsisUnits: 10, NumGroups: 10}},
		UnitCostMs: 0.01, // full scan = 10ms
		Technique:  Basic,
		DeadlineMs: 100,
	}
}

func TestValidation(t *testing.T) {
	cfg := baseConfig([]float64{0})
	cfg.Components = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected components error")
	}
	cfg = baseConfig([]float64{5, 1})
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected unsorted arrivals error")
	}
	cfg = baseConfig([]float64{0})
	cfg.UnitCostMs = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected unit cost error")
	}
	cfg = baseConfig([]float64{0})
	cfg.Work = []WorkModel{{}, {}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected work model count error")
	}
}

func TestLightLoadLatencyEqualsServiceTime(t *testing.T) {
	// One request on an idle system: latency = full scan time exactly.
	cfg := baseConfig([]float64{0})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, op := range res.Ops[0] {
		if math.Abs(op.LatencyMs-10) > 1e-9 {
			t.Fatalf("component %d latency %v, want 10", c, op.LatencyMs)
		}
	}
}

func TestQueueingDelayAccumulates(t *testing.T) {
	// Two simultaneous requests: the second waits for the first.
	cfg := baseConfig([]float64{0, 0})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Ops[0][0].LatencyMs-10) > 1e-9 {
		t.Fatalf("first request latency %v", res.Ops[0][0].LatencyMs)
	}
	if math.Abs(res.Ops[1][0].LatencyMs-20) > 1e-9 {
		t.Fatalf("second request latency %v", res.Ops[1][0].LatencyMs)
	}
}

func TestOverloadExplodesBasic(t *testing.T) {
	// Utilization 2x: tail latency must grow far beyond service time.
	rng := stats.NewRNG(1)
	arr := poissonArrivals(rng, 200, 10000) // 200 req/s x 10ms = 2.0 util
	cfg := baseConfig(arr)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tail := stats.Percentile(res.ComponentLatencies(), 99.9)
	if tail < 1000 {
		t.Fatalf("overloaded tail %vms, expected queueing blow-up", tail)
	}
}

func TestAccuracyTraderBoundedUnderOverload(t *testing.T) {
	rng := stats.NewRNG(2)
	arr := poissonArrivals(rng, 200, 10000)
	cfg := baseConfig(arr)
	cfg.Technique = AccuracyTrader
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tail := stats.Percentile(res.ComponentLatencies(), 99.9)
	// Tail stays near the deadline: bounded by deadline + one set + synopsis.
	if tail > cfg.DeadlineMs+15 {
		t.Fatalf("AccuracyTrader tail %vms breaches deadline bound", tail)
	}
	// Under heavy load most sub-operations process few sets.
	var sets stats.Summary
	for _, ops := range res.Ops {
		for _, op := range ops {
			sets.Add(float64(op.SetsProcessed))
		}
	}
	if sets.Mean() > 9 {
		t.Fatalf("mean sets %v under overload; expected adaptation", sets.Mean())
	}
}

func TestAccuracyTraderProcessesAllAtLightLoad(t *testing.T) {
	cfg := baseConfig([]float64{0})
	cfg.Technique = AccuracyTrader
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.Ops[0] {
		if op.SetsProcessed != 10 {
			t.Fatalf("light load processed %d of 10 sets", op.SetsProcessed)
		}
		if op.SynopsisOnly {
			t.Fatal("light load should not be synopsis-only")
		}
	}
}

func TestAccuracyTraderHonorsIMax(t *testing.T) {
	cfg := baseConfig([]float64{0})
	cfg.Technique = AccuracyTrader
	cfg.IMaxFrac = 0.4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.Ops[0] {
		if op.SetsProcessed != 4 {
			t.Fatalf("imax 40%% processed %d of 10 sets", op.SetsProcessed)
		}
	}
}

func TestAccuracyTraderAlwaysProducesSynopsisResult(t *testing.T) {
	// Extreme overload: sub-operations still finish (synopsis only), and
	// latency may exceed the deadline only by the synopsis processing time
	// plus queueing of other synopsis-sized ops.
	rng := stats.NewRNG(3)
	arr := poissonArrivals(rng, 2000, 3000)
	cfg := baseConfig(arr)
	cfg.Technique = AccuracyTrader
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	synOnly := 0
	total := 0
	for _, ops := range res.Ops {
		for _, op := range ops {
			total++
			if op.SynopsisOnly {
				synOnly++
			}
			if op.LatencyMs <= 0 {
				t.Fatal("unfinished sub-operation")
			}
		}
	}
	if synOnly == 0 {
		t.Fatal("extreme overload should force synopsis-only results")
	}
}

func TestReissueCutsStragglerTail(t *testing.T) {
	// One node is 8x slower half the time; hedging should cut the tail
	// relative to Basic under light load.
	rng := stats.NewRNG(4)
	arr := poissonArrivals(rng, 10, 30000)
	slow := func(c int, tm float64) float64 {
		if c == 0 && int(tm/1000)%2 == 0 {
			return 8
		}
		return 1
	}
	cfgB := baseConfig(arr)
	cfgB.Slowdown = slow
	resB, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	cfgR := baseConfig(arr)
	cfgR.Slowdown = slow
	cfgR.Technique = Reissue
	cfgR.HedgeFloorMs = 12
	resR, err := Run(cfgR)
	if err != nil {
		t.Fatal(err)
	}
	tailB := stats.Percentile(resB.ComponentLatencies(), 99)
	tailR := stats.Percentile(resR.ComponentLatencies(), 99)
	if tailR >= tailB {
		t.Fatalf("reissue tail %v not below basic %v", tailR, tailB)
	}
	// Some hedges must have fired.
	hedged := 0
	for _, ops := range resR.Ops {
		for _, op := range ops {
			if op.Hedged {
				hedged++
			}
		}
	}
	if hedged == 0 {
		t.Fatal("no hedges fired")
	}
}

func TestCompletedFraction(t *testing.T) {
	cfg := baseConfig([]float64{0, 0, 0, 0})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential service: latencies 10,20,30,40ms; with a 25ms deadline,
	// requests 0,1 complete fully, request 2 and 3 not at all.
	if f := res.CompletedFraction(0, 25); f != 1 {
		t.Fatalf("req0 fraction %v", f)
	}
	if f := res.CompletedFraction(2, 25); f != 0 {
		t.Fatalf("req2 fraction %v", f)
	}
}

func TestTailLatencyWindow(t *testing.T) {
	cfg := baseConfig([]float64{0, 5000})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	early := res.TailLatency(50, 0, 1000)
	late := res.TailLatency(50, 4000, 6000)
	if math.IsNaN(early) || math.IsNaN(late) {
		t.Fatal("window percentiles missing")
	}
	if math.IsNaN(res.TailLatency(50, 9000, 10000)) == false {
		t.Fatal("empty window should be NaN")
	}
}

func TestDeterminism(t *testing.T) {
	rng := stats.NewRNG(5)
	arr := poissonArrivals(rng, 50, 5000)
	for _, tech := range []Technique{Basic, Reissue, AccuracyTrader} {
		cfg := baseConfig(arr)
		cfg.Technique = tech
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for r := range a.Ops {
			for c := range a.Ops[r] {
				if a.Ops[r][c] != b.Ops[r][c] {
					t.Fatalf("%v not deterministic at (%d,%d)", tech, r, c)
				}
			}
		}
	}
}

func TestTechniqueString(t *testing.T) {
	if Basic.String() != "Basic" || Reissue.String() != "Request reissue" ||
		AccuracyTrader.String() != "AccuracyTrader" {
		t.Fatal("names wrong")
	}
	if Technique(9).String() == "" {
		t.Fatal("unknown technique should still format")
	}
}

func TestWorkModelMeanSetUnits(t *testing.T) {
	w := WorkModel{FullUnits: 100, NumGroups: 4}
	if w.MeanSetUnits() != 25 {
		t.Fatalf("MeanSetUnits = %v", w.MeanSetUnits())
	}
	if (WorkModel{}).MeanSetUnits() != 0 {
		t.Fatal("zero groups should give 0")
	}
}

func TestAdaptiveSynopsisUnderExtremeOverload(t *testing.T) {
	// With a large fixed synopsis, extreme overload queues even the
	// synopsis-only work; the adaptive ladder falls back to coarser
	// synopses and keeps the tail lower.
	rng := stats.NewRNG(9)
	arr := poissonArrivals(rng, 1200, 5000)
	work := WorkModel{
		FullUnits:      1000,
		SynopsisUnits:  120, // deliberately heavy fixed synopsis (1.2ms)
		NumGroups:      10,
		SynopsisLadder: []float64{5, 30, 120},
	}
	base := Config{
		Components: 4,
		Arrivals:   arr,
		Work:       []WorkModel{work},
		UnitCostMs: 0.01,
		Technique:  AccuracyTrader,
		DeadlineMs: 20,
	}
	fixed, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := base
	adaptive.AdaptiveSynopsis = true
	ad, err := Run(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	tf := stats.Percentile(fixed.ComponentLatencies(), 99.9)
	ta := stats.Percentile(ad.ComponentLatencies(), 99.9)
	if ta >= tf {
		t.Fatalf("adaptive tail %v not below fixed %v", ta, tf)
	}
}

func TestAdaptiveSynopsisIdleUsesFinest(t *testing.T) {
	// On an idle system the adaptive policy must pick the finest level,
	// matching the fixed behaviour.
	work := WorkModel{
		FullUnits:      1000,
		SynopsisUnits:  120,
		NumGroups:      10,
		SynopsisLadder: []float64{5, 30, 120},
	}
	cfg := Config{
		Components:       2,
		Arrivals:         []float64{0},
		Work:             []WorkModel{work},
		UnitCostMs:       0.01,
		Technique:        AccuracyTrader,
		DeadlineMs:       100,
		AdaptiveSynopsis: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fixedCfg := cfg
	fixedCfg.AdaptiveSynopsis = false
	fixed, err := Run(fixedCfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := range res.Ops[0] {
		if res.Ops[0][c].LatencyMs != fixed.Ops[0][c].LatencyMs {
			t.Fatalf("idle adaptive differs from fixed: %v vs %v",
				res.Ops[0][c].LatencyMs, fixed.Ops[0][c].LatencyMs)
		}
	}
}

func TestServiceLatencies(t *testing.T) {
	cfg := baseConfig([]float64{0, 0})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Request 0 completes at 10ms on every component; request 1 at 20ms.
	wait := res.ServiceLatencies(true, 0)
	if math.Abs(wait[0]-10) > 1e-9 || math.Abs(wait[1]-20) > 1e-9 {
		t.Fatalf("wait-all latencies = %v", wait)
	}
	// Partial composition caps at the deadline.
	part := res.ServiceLatencies(false, 15)
	if math.Abs(part[0]-10) > 1e-9 || math.Abs(part[1]-15) > 1e-9 {
		t.Fatalf("partial latencies = %v", part)
	}
}
