package cluster

import (
	"fmt"
	"math"
	"sort"

	"accuracytrader/internal/des"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/stats"
)

// Technique selects the simulated processing behaviour.
type Technique int

// The compared techniques of paper §4.1.
const (
	Basic Technique = iota
	Reissue
	AccuracyTrader
)

// String returns the paper's name for the technique.
func (t Technique) String() string {
	switch t {
	case Basic:
		return "Basic"
	case Reissue:
		return "Request reissue"
	case AccuracyTrader:
		return "AccuracyTrader"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// WorkModel gives the simulator a component's data volumes in abstract
// work units (one unit = one original data point scanned).
type WorkModel struct {
	FullUnits     float64 // scan the whole subset (exact processing)
	SynopsisUnits float64 // scan the synopsis
	NumGroups     int     // ranked member sets available for improvement
	// SynopsisLadder, when non-empty, lists alternative synopsis sizes
	// (work units, ascending = coarse to fine) for the load-adaptive
	// extension: under pressure the component answers from a coarser
	// synopsis (see Config.AdaptiveSynopsis and synopsis.Ladder).
	SynopsisLadder []float64
}

// MeanSetUnits returns the average improvement cost of one ranked set.
// The R-tree is depth-balanced, so sets have similar sizes (paper §2.2).
func (w WorkModel) MeanSetUnits() float64 {
	if w.NumGroups == 0 {
		return 0
	}
	return w.FullUnits / float64(w.NumGroups)
}

// Config parametrizes one simulation run.
type Config struct {
	Components int       // number of parallel components (paper: 108)
	Arrivals   []float64 // request arrival times in ms, ascending
	// Work describes each component's data (len must equal Components, or
	// 1 to share a model across components).
	Work []WorkModel
	// UnitCostMs is the time to scan one work unit at speed 1.
	UnitCostMs float64
	// Slowdown returns node c's slowdown factor at time t (nil = none).
	Slowdown func(c int, t float64) float64
	// Technique selects the processing behaviour.
	Technique Technique
	// DeadlineMs is l_spe for AccuracyTrader (and the composition deadline
	// evaluated for Partial execution). Paper: 100 ms.
	DeadlineMs float64
	// IMaxFrac caps the fraction of ranked sets AccuracyTrader may process
	// (paper: 1.0 for the recommender, 0.4 for the search engine).
	// 0 means 1.0.
	IMaxFrac float64
	// HedgeFloorMs is the minimum hedge delay for Reissue before the
	// latency estimator warms up.
	HedgeFloorMs float64
	// ReplicaOffset places subset c's replica on component (c+offset)%n.
	ReplicaOffset int
	// AdaptiveSynopsis enables the load-adaptive extension for
	// AccuracyTrader: when a sub-operation has already burned more than
	// half its deadline queueing, the component answers from the coarsest
	// ladder level that still fits, instead of the fixed synopsis.
	AdaptiveSynopsis bool
	// Frontend, when non-nil, puts the simulated accuracy-aware
	// frontend in front of the components: admission, replica routing,
	// and per-request ladder-level degradation (see FrontendConfig).
	// A request's frontend-selected level overrides AdaptiveSynopsis.
	Frontend *FrontendConfig
}

func (c Config) validate() error {
	if c.Components <= 0 {
		return fmt.Errorf("cluster: no components")
	}
	if len(c.Work) != c.Components && len(c.Work) != 1 {
		return fmt.Errorf("cluster: %d work models for %d components", len(c.Work), c.Components)
	}
	if c.UnitCostMs <= 0 {
		return fmt.Errorf("cluster: non-positive unit cost")
	}
	for i := 1; i < len(c.Arrivals); i++ {
		if c.Arrivals[i] < c.Arrivals[i-1] {
			return fmt.Errorf("cluster: arrivals not sorted at %d", i)
		}
	}
	return nil
}

func (c Config) work(comp int) WorkModel {
	if len(c.Work) == 1 {
		return c.Work[0]
	}
	return c.Work[comp]
}

// SubOp is the outcome of one sub-operation (request x component).
type SubOp struct {
	LatencyMs     float64 // completion - request arrival (first replica for Reissue)
	SetsProcessed int     // AccuracyTrader: ranked sets improved
	SynopsisOnly  bool    // AccuracyTrader: no set fit the budget
	Hedged        bool    // Reissue: a replica was issued
}

// Result holds the outcome of a run.
type Result struct {
	Arrivals []float64
	// Ops[r][c] is the sub-operation of request r on data subset c.
	// Without a frontend, subset c always executes on component c.
	Ops [][]SubOp

	// The remaining fields are populated only when Config.Frontend is
	// set (len equals len(Arrivals)).

	// Rejected marks requests shed by admission; their Ops rows are
	// zero-valued and must be excluded from latency populations.
	Rejected []bool
	// Class is each request's (possibly downgraded) SLO class.
	Class []frontend.SLO
	// Level is the ladder level the frontend selected for the request
	// (coarse 0 … fine Levels-1), or -1 for rejected requests and runs
	// without a degradation controller.
	Level []int
}

// ComponentLatencies returns every sub-operation latency in one slice —
// the population over which the paper's 99.9th-percentile component
// latency is computed. Requests shed by the frontend have no
// sub-operations and are excluded.
func (r *Result) ComponentLatencies() []float64 {
	if len(r.Ops) == 0 {
		return nil
	}
	out := make([]float64, 0, len(r.Ops)*len(r.Ops[0]))
	for i, ops := range r.Ops {
		if r.rejected(i) {
			continue
		}
		for _, op := range ops {
			out = append(out, op.LatencyMs)
		}
	}
	return out
}

// rejected reports whether request i was shed by the frontend.
func (r *Result) rejected(i int) bool {
	return r.Rejected != nil && r.Rejected[i]
}

// TailLatency returns the p-th percentile component latency of requests
// arriving in [from, to) ms (rejected requests excluded).
func (r *Result) TailLatency(p, from, to float64) float64 {
	var lat []float64
	for i, a := range r.Arrivals {
		if a < from || a >= to || r.rejected(i) {
			continue
		}
		for _, op := range r.Ops[i] {
			lat = append(lat, op.LatencyMs)
		}
	}
	return stats.Percentile(lat, p)
}

// ServiceLatencies returns per-request service latency under the given
// composition semantics: with waitAll the composer answers when the last
// component does (Basic, Reissue, AccuracyTrader); otherwise it answers
// at the deadline or earlier if every component finished before it
// (Partial execution). Requests shed by the frontend were never
// answered and report NaN.
func (r *Result) ServiceLatencies(waitAll bool, deadlineMs float64) []float64 {
	out := make([]float64, len(r.Ops))
	for i, ops := range r.Ops {
		if r.rejected(i) {
			out[i] = math.NaN()
			continue
		}
		max := 0.0
		for _, op := range ops {
			if op.LatencyMs > max {
				max = op.LatencyMs
			}
		}
		if !waitAll && max > deadlineMs {
			max = deadlineMs
		}
		out[i] = max
	}
	return out
}

// CompletedFraction returns, for request r, the fraction of components
// whose sub-operation finished within the deadline — what Partial
// execution composes from. A request shed by the frontend completed
// nothing and returns 0.
func (res *Result) CompletedFraction(r int, deadlineMs float64) float64 {
	if res.rejected(r) {
		return 0
	}
	n := 0
	for _, op := range res.Ops[r] {
		if op.LatencyMs <= deadlineMs {
			n++
		}
	}
	return float64(n) / float64(len(res.Ops[r]))
}

// subop is the in-flight state of one sub-operation replica.
type subop struct {
	req      int
	comp     int // component executing this replica
	subset   int // data subset being processed (differs from comp for routed/hedged replicas)
	arrival  float64
	finished *bool // shared between primary and replica
	level    int   // frontend-selected ladder level, -1 when unset
	exact    bool  // frontend Exact SLO: full scan regardless of technique
}

// component is a FIFO single-server queue.
type component struct {
	queue []subop
	busy  bool
}

// Run simulates the configured workload and returns per-sub-operation
// outcomes. The simulation is deterministic for a given configuration.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.IMaxFrac <= 0 || cfg.IMaxFrac > 1 {
		cfg.IMaxFrac = 1
	}
	if cfg.HedgeFloorMs <= 0 {
		cfg.HedgeFloorMs = 1
	}
	if cfg.ReplicaOffset <= 0 {
		cfg.ReplicaOffset = 1
	}
	slowdown := cfg.Slowdown
	if slowdown == nil {
		slowdown = func(int, float64) float64 { return 1 }
	}

	sim := des.New()
	n := cfg.Components
	comps := make([]component, n)
	res := &Result{
		Arrivals: cfg.Arrivals,
		Ops:      make([][]SubOp, len(cfg.Arrivals)),
	}
	for r := range res.Ops {
		res.Ops[r] = make([]SubOp, n)
	}
	hedge := newHedgeEstimator(cfg.HedgeFloorMs)
	var fe *frontendSim
	if cfg.Frontend != nil {
		res.Rejected = make([]bool, len(cfg.Arrivals))
		res.Class = make([]frontend.SLO, len(cfg.Arrivals))
		res.Level = make([]int, len(cfg.Arrivals))
		var err error
		if fe, err = newFrontendSim(cfg, comps, hedge); err != nil {
			return nil, err
		}
	}

	// serviceTime computes how long the sub-operation occupies the server
	// when it starts executing at time start, and its set count.
	serviceTime := func(op subop, start float64) (dur float64, sets int, synOnly bool) {
		w := cfg.work(op.subset)
		speed := slowdown(op.comp, start)
		unit := cfg.UnitCostMs * speed
		if op.exact {
			// Frontend Exact SLO: the component scans its whole subset
			// no matter the technique — exactness is a guarantee paid
			// for in latency.
			return w.FullUnits * unit, 0, false
		}
		switch cfg.Technique {
		case AccuracyTrader:
			synUnits := w.SynopsisUnits
			switch {
			case op.level >= 0 && len(w.SynopsisLadder) > 0:
				// The frontend picked a ladder level at admission time
				// (coarse 0 … fine len-1, as in synopsis.Ladder cuts).
				idx := op.level
				if idx >= len(w.SynopsisLadder) {
					idx = len(w.SynopsisLadder) - 1
				}
				synUnits = w.SynopsisLadder[idx]
			case cfg.AdaptiveSynopsis && len(w.SynopsisLadder) > 0:
				synUnits = adaptiveSynopsisUnits(w, start-op.arrival, cfg.DeadlineMs, unit)
			}
			synTime := synUnits * unit
			elapsed := start - op.arrival + synTime
			setTime := w.MeanSetUnits() * unit
			imax := int(cfg.IMaxFrac * float64(w.NumGroups))
			sets := 0
			// Algorithm 1's loop under the cost model: keep improving
			// while the elapsed service time stays below the deadline.
			for sets < imax && elapsed < cfg.DeadlineMs {
				elapsed += setTime
				sets++
			}
			return synTime + float64(sets)*setTime, sets, sets == 0
		default: // Basic, Reissue: exact full scan
			return w.FullUnits * unit, 0, false
		}
	}

	var start func(c int)
	finishOne := func(op subop, t float64, sets int, synOnly bool) {
		if *op.finished {
			return // the other replica won
		}
		*op.finished = true
		lat := t - op.arrival
		so := &res.Ops[op.req][op.subset]
		so.LatencyMs = lat
		so.SetsProcessed = sets
		so.SynopsisOnly = synOnly
		hedge.record(lat)
		if fe != nil {
			fe.finished(op.req)
		}
	}
	start = func(c int) {
		comp := &comps[c]
		if comp.busy || len(comp.queue) == 0 {
			return
		}
		comp.busy = true
		op := comp.queue[0]
		comp.queue = comp.queue[1:]
		if *op.finished {
			// The other replica already completed; skip the work.
			comp.busy = false
			start(c)
			return
		}
		dur, sets, synOnly := serviceTime(op, sim.Now())
		sim.After(dur, func() {
			finishOne(op, sim.Now(), sets, synOnly)
			comp.busy = false
			start(c)
		})
	}
	enqueue := func(op subop) {
		comps[op.comp].queue = append(comps[op.comp].queue, op)
		start(op.comp)
	}

	for r, at := range cfg.Arrivals {
		r, at := r, at
		sim.At(at, func() {
			level, exact := -1, false
			if fe != nil {
				if !fe.admit(sim.Now(), r, n, res) {
					return // shed before touching any queue
				}
				level = res.Level[r]
				exact = res.Class[r].Kind == frontend.Exact
			}
			for c := 0; c < n; c++ {
				comp := c
				if fe != nil {
					comp = fe.route(c)
				}
				op := subop{req: r, comp: comp, subset: c, arrival: at,
					finished: new(bool), level: level, exact: exact}
				enqueue(op)
				if cfg.Technique == Reissue {
					scheduleHedge(sim, cfg, hedge, res, op, enqueue)
				}
			}
		})
	}
	sim.Run()
	return res, nil
}

// adaptiveSynopsisUnits picks the finest ladder level whose processing
// still fits half of the remaining deadline budget, falling back to the
// coarsest level when even that does not fit — the component must always
// process at least one synopsis to produce a result.
func adaptiveSynopsisUnits(w WorkModel, waited, deadlineMs, unitMs float64) float64 {
	remaining := deadlineMs - waited
	best := w.SynopsisLadder[0]
	for _, units := range w.SynopsisLadder {
		if units*unitMs <= remaining/2 && units > best {
			best = units
		}
	}
	return best
}

// scheduleHedge arms the reissue timer for a sub-operation: when it is
// still outstanding after the estimated p95 latency, a replica is sent to
// another component (paper §4.1, request reissue).
func scheduleHedge(sim *des.Sim, cfg Config, h *hedgeEstimator, res *Result, op subop, enqueue func(subop)) {
	delay := h.p95()
	sim.After(delay, func() {
		if *op.finished {
			return
		}
		replica := op
		replica.comp = (op.comp + cfg.ReplicaOffset) % cfg.Components
		res.Ops[op.req][op.subset].Hedged = true
		enqueue(replica)
	})
}

// hedgeEstimator tracks a sliding sample of sub-operation latencies and
// serves their 95th percentile, mirroring how reissue implementations
// estimate "the expected latency for this class of sub-operations".
type hedgeEstimator struct {
	floor   float64
	buf     []float64
	idx     int
	cached  float64
	pending int
}

func newHedgeEstimator(floor float64) *hedgeEstimator {
	return &hedgeEstimator{floor: floor, cached: floor, buf: make([]float64, 0, 2048)}
}

func (h *hedgeEstimator) record(lat float64) {
	if len(h.buf) < cap(h.buf) {
		h.buf = append(h.buf, lat)
	} else {
		h.buf[h.idx] = lat
		h.idx = (h.idx + 1) % len(h.buf)
	}
	h.pending++
	if h.pending >= 256 || (len(h.buf) < 256 && h.pending >= 32) {
		h.refresh()
	}
}

func (h *hedgeEstimator) refresh() {
	h.pending = 0
	cp := append([]float64(nil), h.buf...)
	sort.Float64s(cp)
	p := stats.PercentileSorted(cp, 95)
	if math.IsNaN(p) || p < h.floor {
		p = h.floor
	}
	h.cached = p
}

func (h *hedgeEstimator) p95() float64 { return h.cached }
