package cost

import (
	"context"
	"sync/atomic"
)

// Usage is a resource account: what some unit of work consumed. Usages
// add component-wise.
type Usage struct {
	// CPUNs is handler execution time in nanoseconds, summed over every
	// span that did work for the request.
	CPUNs uint64 `json:"cpu_ns"`
	// Scanned counts data units touched: fact rows, postings, sample
	// units — each workload's natural scan unit.
	Scanned uint64 `json:"scanned"`
	// QueueNs is time spent waiting in server queues, nanoseconds.
	QueueNs uint64 `json:"queue_ns"`
	// WireBytes is frame bytes moved on the wire for the request.
	WireBytes uint64 `json:"wire_bytes"`
	// WallNs is end-to-end wall time at the recording hop, nanoseconds.
	// Unlike the four counters above it is not additive across fan-out
	// (sub-operations overlap), so it is set once by the closer.
	WallNs uint64 `json:"wall_ns"`
}

// Add returns u with v folded in.
func (u Usage) Add(v Usage) Usage {
	u.CPUNs += v.CPUNs
	u.Scanned += v.Scanned
	u.QueueNs += v.QueueNs
	u.WireBytes += v.WireBytes
	u.WallNs += v.WallNs
	return u
}

// Account accumulates one in-flight request's usage. Peer goroutines
// fold sub-operation costs in concurrently, so the fields are atomics.
// A nil *Account no-ops on every method — the zero-cost-off idiom.
type Account struct {
	cpuNs     atomic.Uint64
	scanned   atomic.Uint64
	queueNs   atomic.Uint64
	wireBytes atomic.Uint64
}

// Add folds u's additive counters into the account (WallNs is ignored:
// wall time is the closer's measurement, not a sum). Nil-safe.
func (a *Account) Add(u Usage) {
	if a == nil {
		return
	}
	if u.CPUNs != 0 {
		a.cpuNs.Add(u.CPUNs)
	}
	if u.Scanned != 0 {
		a.scanned.Add(u.Scanned)
	}
	if u.QueueNs != 0 {
		a.queueNs.Add(u.QueueNs)
	}
	if u.WireBytes != 0 {
		a.wireBytes.Add(u.WireBytes)
	}
}

// AddWireBytes folds n frame bytes into the account. Nil-safe.
func (a *Account) AddWireBytes(n uint64) {
	if a == nil || n == 0 {
		return
	}
	a.wireBytes.Add(n)
}

// Usage snapshots the account's additive counters (WallNs is zero; the
// closer stamps it). Nil-safe: a nil account reads as all-zero.
func (a *Account) Usage() Usage {
	if a == nil {
		return Usage{}
	}
	return Usage{
		CPUNs:     a.cpuNs.Load(),
		Scanned:   a.scanned.Load(),
		QueueNs:   a.queueNs.Load(),
		WireBytes: a.wireBytes.Load(),
	}
}

// accountKey is the context key for the request's account.
type accountKey struct{}

// WithAccount returns a context carrying the request's cost account,
// so every hop below the front server can fold usage in.
func WithAccount(ctx context.Context, a *Account) context.Context {
	if a == nil {
		return ctx
	}
	return context.WithValue(ctx, accountKey{}, a)
}

// AccountFrom returns the context's cost account, or nil. The nil
// result composes with the nil-safe methods: callers just call Add.
func AccountFrom(ctx context.Context) *Account {
	a, _ := ctx.Value(accountKey{}).(*Account)
	return a
}
