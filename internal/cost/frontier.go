package cost

import "sort"

// AccuracyPoint is the accuracy side of the frontier join: one
// (workload, level)'s measured accuracy, extracted from the audit
// plane's calibration tables (MeanRealized over audited samples). The
// adapter lives with the caller so this package stays decoupled from
// the audit plane.
type AccuracyPoint struct {
	Workload string  `json:"workload"`
	Level    int16   `json:"level"`
	Accuracy float64 `json:"accuracy"`
	Samples  int64   `json:"samples"`
}

// FrontierPoint is one (workload, level) with both sides of the trade
// measured: what it costs per request and what accuracy it buys.
type FrontierPoint struct {
	Workload string `json:"workload"`
	Level    int16  `json:"level"`
	// Scanned is the EWMA per-request scan units — the deterministic
	// cost axis the frontier is ordered by (CPU and wall ride along as
	// context but jitter with the machine).
	Scanned  float64 `json:"scanned"`
	CPUNs    float64 `json:"cpu_ns"`
	WallNs   float64 `json:"wall_ns"`
	Accuracy float64 `json:"accuracy"`
	Requests uint64  `json:"requests"`
	Samples  int64   `json:"audit_samples"`
}

// FrontierCurve is one workload's accuracy-vs-cost frontier: the
// Pareto-optimal points sorted by cost ascending, so accuracy is
// strictly increasing along Points by construction — paying more
// always buys more accuracy, and levels that don't are surfaced in
// Dominated instead of silently dropped.
type FrontierCurve struct {
	Workload  string          `json:"workload"`
	Points    []FrontierPoint `json:"points"`
	Dominated []FrontierPoint `json:"dominated,omitempty"`
}

// Frontier joins a cost snapshot with audit-plane accuracy points into
// per-workload Pareto frontiers. Cost rows are aggregated over tenants
// and classes (weighted by request count) per (workload, level); a
// level appears only when both sides measured it. Internal-tenant rows
// are excluded — background refresh work is not a point on any
// client-visible trade-off curve.
func Frontier(v View, acc []AccuracyPoint) []FrontierCurve {
	type wl struct {
		workload string
		level    int16
	}
	// Aggregate the cost side per (workload, level), request-weighted.
	type agg struct {
		scanned, cpu, wall float64
		requests           uint64
	}
	costs := make(map[wl]*agg)
	for _, r := range v.Rows {
		if r.Tenant == InternalTenant || r.Requests == 0 {
			continue
		}
		k := wl{r.Workload, r.Level}
		a := costs[k]
		if a == nil {
			a = &agg{}
			costs[k] = a
		}
		w := float64(r.Requests)
		a.scanned += w * r.EWMA.Scanned
		a.cpu += w * r.EWMA.CPUNs
		a.wall += w * r.EWMA.WallNs
		a.requests += r.Requests
	}
	// Join against the accuracy side.
	byWorkload := make(map[string][]FrontierPoint)
	for _, p := range acc {
		if p.Samples == 0 {
			continue
		}
		a := costs[wl{p.Workload, p.Level}]
		if a == nil || a.requests == 0 {
			continue
		}
		w := float64(a.requests)
		byWorkload[p.Workload] = append(byWorkload[p.Workload], FrontierPoint{
			Workload: p.Workload,
			Level:    p.Level,
			Scanned:  a.scanned / w,
			CPUNs:    a.cpu / w,
			WallNs:   a.wall / w,
			Accuracy: p.Accuracy,
			Requests: a.requests,
			Samples:  p.Samples,
		})
	}
	var out []FrontierCurve
	for workload, pts := range byWorkload {
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].Scanned != pts[j].Scanned {
				return pts[i].Scanned < pts[j].Scanned
			}
			return pts[i].Level > pts[j].Level // coarser level first on ties
		})
		c := FrontierCurve{Workload: workload}
		best := -1.0
		for _, p := range pts {
			if p.Accuracy > best {
				best = p.Accuracy
				c.Points = append(c.Points, p)
			} else {
				c.Dominated = append(c.Dominated, p)
			}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}
