// Package cost is the resource-attribution plane: it accounts what
// each request actually consumed (handler execution time, data units
// scanned, queue wait, bytes on the wire) and aggregates it per
// (tenant, SLO class, workload, ladder level) into exact running
// totals and EWMA per-request cost curves.
//
// The plane has two halves:
//
//   - Account is the per-request accumulator. The front server opens
//     one, every hop that measures something folds its usage in (the
//     aggregator stitches component-side span costs from v6 sub-reply
//     frames exactly like it stitches trace spans), and the front
//     server closes the request by folding the account into a Table.
//
//   - Table is the sharded aggregate keyed by Key. Both the per-key
//     entries and the global counters are fed the same integer values,
//     so per-tenant sums equal the global totals exactly — the
//     conservation contract `-exp costcompare` pins.
//
// Everything is nil-safe: a nil *Table and a nil *Account no-op, so a
// deployment without cost attribution pays zero allocations on the
// serving path (bench-guarded in CI).
//
// Frontier joins a Table snapshot with the audit plane's calibration
// tables into the per-workload accuracy-vs-cost Pareto frontier served
// at /frontier: the measured answer to "what does one more nine of
// accuracy cost here".
package cost
