package cost

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"accuracytrader/internal/obs"
)

// Key identifies one cost series: who (tenant), under what contract
// (SLO class byte, wire encoding), doing what (workload), at which
// ladder level (-1 = no level / exact scan).
type Key struct {
	Tenant   string
	Class    uint8
	Workload string
	Level    int16
}

// InternalTenant is the reserved tenant internal traffic (cache
// refreshes, rewarms) is billed to, so background capacity cost stays
// visible without polluting any real tenant's series. Audit replays are
// excluded from the table entirely — they re-measure work already
// accounted to the original request.
const InternalTenant = "~internal"

// ewmaAlpha weights the newest request 1:4 against history — fast
// enough to track load shifts, smooth enough to survive one outlier.
const ewmaAlpha = 0.2

// tableShards spreads keys over independent locks. Power of two.
const tableShards = 16

// maxMetricKeys caps how many keys register per-key Prometheus series;
// beyond it the aggregate series still grow but scrape cardinality
// stays bounded. /costs always serves every key.
const maxMetricKeys = 256

// entry accumulates one key's totals (atomics, exact) and EWMA
// per-request means (under mu).
type entry struct {
	requests atomic.Uint64
	hits     atomic.Uint64
	cpuNs    atomic.Uint64
	scanned  atomic.Uint64
	queueNs  atomic.Uint64
	wireNs   atomic.Uint64 // wire bytes, named for symmetry with the atomics above
	wallNs   atomic.Uint64

	mu   sync.Mutex
	ewma [5]float64 // cpu, scanned, queue, wire, wall per-request means
	seen bool
}

// tableShard is one lock's worth of the key space.
type tableShard struct {
	mu sync.RWMutex
	m  map[Key]*entry
}

// Table aggregates per-request usage per Key. All methods are
// concurrency-safe and nil-safe: a nil *Table no-ops, which is the
// whole cost plane's off switch.
type Table struct {
	shards [tableShards]tableShard

	// Global totals, fed the same integers as the entries, so summing
	// the per-tenant rows reproduces these exactly once writers quiesce.
	requests  atomic.Uint64
	hits      atomic.Uint64
	cpuNs     atomic.Uint64
	scanned   atomic.Uint64
	queueNs   atomic.Uint64
	wireBytes atomic.Uint64
	wallNs    atomic.Uint64

	reg        atomic.Pointer[obs.Registry]
	metricKeys atomic.Int64
}

// NewTable returns an empty cost table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].m = make(map[Key]*entry)
	}
	return t
}

// shardOf hashes k without allocating (FNV-1a over the key fields).
func shardOf(k Key) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(k.Tenant); i++ {
		h = (h ^ uint32(k.Tenant[i])) * prime
	}
	h = (h ^ uint32(k.Class)) * prime
	for i := 0; i < len(k.Workload); i++ {
		h = (h ^ uint32(k.Workload[i])) * prime
	}
	h = (h ^ uint32(uint16(k.Level))) * prime
	h = (h ^ uint32(uint16(k.Level)>>8)) * prime
	return h
}

// Record folds one finished request's usage into the table. hit marks
// a result served from the accuracy-aware cache (its saved fan-out
// shows up as low usage; the hit count keeps the ratio readable).
// Nil-safe: recording into a nil table is a no-op.
func (t *Table) Record(k Key, u Usage, hit bool) {
	if t == nil {
		return
	}
	e := t.entry(k)
	e.requests.Add(1)
	t.requests.Add(1)
	if hit {
		e.hits.Add(1)
		t.hits.Add(1)
	}
	e.cpuNs.Add(u.CPUNs)
	e.scanned.Add(u.Scanned)
	e.queueNs.Add(u.QueueNs)
	e.wireNs.Add(u.WireBytes)
	e.wallNs.Add(u.WallNs)
	t.cpuNs.Add(u.CPUNs)
	t.scanned.Add(u.Scanned)
	t.queueNs.Add(u.QueueNs)
	t.wireBytes.Add(u.WireBytes)
	t.wallNs.Add(u.WallNs)

	sample := [5]float64{
		float64(u.CPUNs), float64(u.Scanned), float64(u.QueueNs),
		float64(u.WireBytes), float64(u.WallNs),
	}
	e.mu.Lock()
	if !e.seen {
		e.ewma = sample
		e.seen = true
	} else {
		for i := range e.ewma {
			e.ewma[i] += ewmaAlpha * (sample[i] - e.ewma[i])
		}
	}
	e.mu.Unlock()
}

// entry returns (creating if needed) k's entry.
func (t *Table) entry(k Key) *entry {
	s := &t.shards[shardOf(k)&(tableShards-1)]
	s.mu.RLock()
	e := s.m[k]
	s.mu.RUnlock()
	if e != nil {
		return e
	}
	s.mu.Lock()
	e = s.m[k]
	if e == nil {
		e = &entry{}
		s.m[k] = e
		s.mu.Unlock()
		t.registerKeyMetrics(k, e)
		return e
	}
	s.mu.Unlock()
	return e
}

// RegisterMetrics exports the table on reg: global totals, the tracked
// key count, and per-key series for the first maxMetricKeys keys.
// Nil-safe.
func (t *Table) RegisterMetrics(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	t.reg.Store(reg)
	reg.GaugeFunc("cost_requests_total", func() float64 { return float64(t.requests.Load()) })
	reg.GaugeFunc("cost_cache_hits_total", func() float64 { return float64(t.hits.Load()) })
	reg.GaugeFunc("cost_cpu_ns_total", func() float64 { return float64(t.cpuNs.Load()) })
	reg.GaugeFunc("cost_scanned_total", func() float64 { return float64(t.scanned.Load()) })
	reg.GaugeFunc("cost_queue_ns_total", func() float64 { return float64(t.queueNs.Load()) })
	reg.GaugeFunc("cost_wire_bytes_total", func() float64 { return float64(t.wireBytes.Load()) })
	reg.GaugeFunc("cost_tracked_keys", func() float64 { return float64(t.keys()) })
}

// registerKeyMetrics registers one new key's Prometheus series, up to
// the cardinality cap. Called once per key, off the hot path.
func (t *Table) registerKeyMetrics(k Key, e *entry) {
	reg := t.reg.Load()
	if reg == nil {
		return
	}
	if t.metricKeys.Add(1) > maxMetricKeys {
		return
	}
	labels := obs.Labels(
		"tenant", k.Tenant,
		"class", obs.ClassLabel(k.Class),
		"workload", k.Workload,
		"level", strconv.Itoa(int(k.Level)),
	)
	reg.GaugeFunc("cost_key_requests_total"+labels, func() float64 { return float64(e.requests.Load()) })
	reg.GaugeFunc("cost_key_cpu_ns_total"+labels, func() float64 { return float64(e.cpuNs.Load()) })
	reg.GaugeFunc("cost_key_scanned_total"+labels, func() float64 { return float64(e.scanned.Load()) })
	reg.GaugeFunc("cost_key_queue_ns_total"+labels, func() float64 { return float64(e.queueNs.Load()) })
	reg.GaugeFunc("cost_key_wire_bytes_total"+labels, func() float64 { return float64(e.wireNs.Load()) })
}

// keys counts tracked keys.
func (t *Table) keys() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.RLock()
		n += len(t.shards[i].m)
		t.shards[i].mu.RUnlock()
	}
	return n
}

// Row is one key's aggregate in a snapshot.
type Row struct {
	Tenant   string `json:"tenant"`
	Class    string `json:"class"`
	Workload string `json:"workload"`
	Level    int16  `json:"level"`
	Requests uint64 `json:"requests"`
	// CacheHits counts requests served from the result cache.
	CacheHits uint64 `json:"cache_hits"`
	// Totals are exact integer sums over the row's requests.
	Totals Usage `json:"totals"`
	// EWMA is the exponentially weighted per-request usage (alpha 0.2)
	// — the live cost curve /frontier joins against accuracy.
	EWMA EWMAUsage `json:"ewma"`

	key Key
}

// EWMAUsage mirrors Usage with float64 EWMA means.
type EWMAUsage struct {
	CPUNs     float64 `json:"cpu_ns"`
	Scanned   float64 `json:"scanned"`
	QueueNs   float64 `json:"queue_ns"`
	WireBytes float64 `json:"wire_bytes"`
	WallNs    float64 `json:"wall_ns"`
}

// View is the /costs document: every tracked row plus the global
// totals the rows must sum to.
type View struct {
	Rows     []Row  `json:"rows"`
	Global   Usage  `json:"global_totals"`
	Requests uint64 `json:"requests"`
	Hits     uint64 `json:"cache_hits"`
}

// Snapshot copies the table, rows sorted by (tenant, class, workload,
// level). Nil-safe: a nil table snapshots empty.
func (t *Table) Snapshot() View {
	if t == nil {
		return View{}
	}
	var v View
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for k, e := range s.m {
			e.mu.Lock()
			ew := e.ewma
			e.mu.Unlock()
			v.Rows = append(v.Rows, Row{
				Tenant:    k.Tenant,
				Class:     obs.ClassLabel(k.Class),
				Workload:  k.Workload,
				Level:     k.Level,
				Requests:  e.requests.Load(),
				CacheHits: e.hits.Load(),
				Totals: Usage{
					CPUNs:     e.cpuNs.Load(),
					Scanned:   e.scanned.Load(),
					QueueNs:   e.queueNs.Load(),
					WireBytes: e.wireNs.Load(),
					WallNs:    e.wallNs.Load(),
				},
				EWMA: EWMAUsage{
					CPUNs: ew[0], Scanned: ew[1], QueueNs: ew[2],
					WireBytes: ew[3], WallNs: ew[4],
				},
				key: k,
			})
		}
		s.mu.RUnlock()
	}
	sort.Slice(v.Rows, func(i, j int) bool {
		a, b := v.Rows[i], v.Rows[j]
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		if a.key.Class != b.key.Class {
			return a.key.Class < b.key.Class
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.Level < b.Level
	})
	v.Global = Usage{
		CPUNs:     t.cpuNs.Load(),
		Scanned:   t.scanned.Load(),
		QueueNs:   t.queueNs.Load(),
		WireBytes: t.wireBytes.Load(),
		WallNs:    t.wallNs.Load(),
	}
	v.Requests = t.requests.Load()
	v.Hits = t.hits.Load()
	return v
}
