package cost

import (
	"context"
	"strings"
	"sync"
	"testing"

	"accuracytrader/internal/obs"
)

func TestNilSafety(t *testing.T) {
	var tab *Table
	tab.Record(Key{Tenant: "a"}, Usage{CPUNs: 1}, false)
	if v := tab.Snapshot(); len(v.Rows) != 0 || v.Requests != 0 {
		t.Fatalf("nil table snapshot = %+v", v)
	}
	tab.RegisterMetrics(obs.NewRegistry())

	var a *Account
	a.Add(Usage{CPUNs: 5})
	a.AddWireBytes(9)
	if u := a.Usage(); u != (Usage{}) {
		t.Fatalf("nil account usage = %+v", u)
	}
	if got := AccountFrom(context.Background()); got != nil {
		t.Fatalf("AccountFrom(bare ctx) = %v", got)
	}
	if ctx := WithAccount(context.Background(), nil); AccountFrom(ctx) != nil {
		t.Fatal("WithAccount(nil) must not store an account")
	}
}

func TestAccountAccumulatesConcurrently(t *testing.T) {
	a := &Account{}
	ctx := WithAccount(context.Background(), a)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := AccountFrom(ctx)
			for j := 0; j < 100; j++ {
				got.Add(Usage{CPUNs: 3, Scanned: 2, QueueNs: 1})
				got.AddWireBytes(4)
			}
		}()
	}
	wg.Wait()
	want := Usage{CPUNs: 2400, Scanned: 1600, QueueNs: 800, WireBytes: 3200}
	if u := a.Usage(); u != want {
		t.Fatalf("usage = %+v, want %+v", u, want)
	}
}

// TestTenantSumsEqualGlobal is the conservation contract: summing the
// per-key rows reproduces the global totals exactly, under concurrent
// writers across many tenants.
func TestTenantSumsEqualGlobal(t *testing.T) {
	tab := NewTable()
	tenants := []string{"t0", "t1", "t2", "t3", "t4"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{
					Tenant:   tenants[(w+i)%len(tenants)],
					Class:    uint8(i % 3),
					Workload: []string{"agg", "search"}[i%2],
					Level:    int16(i%4) - 1,
				}
				tab.Record(k, Usage{
					CPUNs:     uint64(i + 1),
					Scanned:   uint64(2*i + 1),
					QueueNs:   uint64(i % 7),
					WireBytes: uint64(i % 13),
					WallNs:    uint64(3 * i),
				}, i%5 == 0)
			}
		}(w)
	}
	wg.Wait()
	v := tab.Snapshot()
	var sum Usage
	var reqs, hits uint64
	for _, r := range v.Rows {
		sum = sum.Add(r.Totals)
		reqs += r.Requests
		hits += r.CacheHits
	}
	if sum != v.Global {
		t.Fatalf("row sums %+v != global %+v", sum, v.Global)
	}
	if reqs != v.Requests || hits != v.Hits {
		t.Fatalf("requests %d/%d hits %d/%d", reqs, v.Requests, hits, v.Hits)
	}
	if reqs != 8*500 {
		t.Fatalf("requests = %d, want %d", reqs, 8*500)
	}
}

func TestSnapshotSortedAndEWMA(t *testing.T) {
	tab := NewTable()
	k := Key{Tenant: "acme", Class: 1, Workload: "agg", Level: 2}
	tab.Record(k, Usage{CPUNs: 100}, false)
	v := tab.Snapshot()
	if len(v.Rows) != 1 || v.Rows[0].EWMA.CPUNs != 100 {
		t.Fatalf("first sample must initialize the EWMA: %+v", v.Rows)
	}
	tab.Record(k, Usage{CPUNs: 200}, false)
	v = tab.Snapshot()
	if got := v.Rows[0].EWMA.CPUNs; got != 100+ewmaAlpha*(200-100) {
		t.Fatalf("EWMA = %g", got)
	}
	// Sorting: tenants ascending, classes ascending within a tenant.
	tab.Record(Key{Tenant: "zeta", Class: 0, Workload: "agg", Level: 0}, Usage{}, false)
	tab.Record(Key{Tenant: "acme", Class: 0, Workload: "agg", Level: 0}, Usage{}, false)
	v = tab.Snapshot()
	if len(v.Rows) != 3 || v.Rows[0].Tenant != "acme" || v.Rows[0].Class != "Exact" ||
		v.Rows[1].Tenant != "acme" || v.Rows[2].Tenant != "zeta" {
		t.Fatalf("rows out of order: %+v", v.Rows)
	}
}

func TestRegisterMetrics(t *testing.T) {
	tab := NewTable()
	reg := obs.NewRegistry()
	tab.RegisterMetrics(reg)
	tab.Record(Key{Tenant: "acme", Class: 1, Workload: "agg", Level: 3},
		Usage{CPUNs: 7, Scanned: 11, QueueNs: 3, WireBytes: 5, WallNs: 9}, true)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"cost_requests_total 1",
		"cost_cache_hits_total 1",
		"cost_cpu_ns_total 7",
		"cost_scanned_total 11",
		"cost_tracked_keys 1",
		`cost_key_scanned_total{tenant="acme",class="Bounded",workload="agg",level="3"} 11`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
}

func TestFrontierParetoMonotone(t *testing.T) {
	tab := NewTable()
	// Three ladder levels: finer scans more and (per the audit plane)
	// is more accurate — except level 9, which scans more than level 2
	// while being less accurate: a dominated point.
	rec := func(level int16, scanned uint64) {
		tab.Record(Key{Tenant: "acme", Class: 1, Workload: "agg", Level: level},
			Usage{Scanned: scanned, CPUNs: scanned * 2, WallNs: scanned * 3}, false)
	}
	rec(0, 100)
	rec(1, 500)
	rec(2, 2000)
	rec(9, 3000)
	// Internal refresh work must not become a frontier point.
	tab.Record(Key{Tenant: InternalTenant, Class: 0, Workload: "agg", Level: -1},
		Usage{Scanned: 999999}, false)
	acc := []AccuracyPoint{
		{Workload: "agg", Level: 0, Accuracy: 0.90, Samples: 10},
		{Workload: "agg", Level: 1, Accuracy: 0.96, Samples: 10},
		{Workload: "agg", Level: 2, Accuracy: 0.99, Samples: 10},
		{Workload: "agg", Level: 9, Accuracy: 0.95, Samples: 10},
		{Workload: "agg", Level: 7, Accuracy: 1.0, Samples: 10}, // no cost side: dropped
		{Workload: "search", Level: 0, Accuracy: 0.9, Samples: 0},
	}
	curves := Frontier(tab.Snapshot(), acc)
	if len(curves) != 1 || curves[0].Workload != "agg" {
		t.Fatalf("curves = %+v", curves)
	}
	c := curves[0]
	if len(c.Points) != 3 {
		t.Fatalf("pareto points = %+v", c.Points)
	}
	for i := 1; i < len(c.Points); i++ {
		if !(c.Points[i].Scanned > c.Points[i-1].Scanned) ||
			!(c.Points[i].Accuracy > c.Points[i-1].Accuracy) {
			t.Fatalf("frontier not monotone at %d: %+v", i, c.Points)
		}
	}
	if len(c.Dominated) != 1 || c.Dominated[0].Level != 9 {
		t.Fatalf("dominated = %+v", c.Dominated)
	}
	for _, p := range c.Points {
		if p.Level == 7 {
			t.Fatal("accuracy-only level joined without cost data")
		}
	}
}
