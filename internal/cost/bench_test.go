package cost

import (
	"context"
	"testing"
)

// BenchmarkCostDisabled is the cost plane's off switch, pinned at
// 0 allocs/op in CI: a deployment without a cost table must pay
// nothing on the serving path — the nil-receiver no-ops and the
// account lookup on an account-less context must never allocate.
func BenchmarkCostDisabled(b *testing.B) {
	var tab *Table
	ctx := context.Background()
	k := Key{Tenant: "acme", Class: 1, Workload: "agg", Level: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := AccountFrom(ctx)
		a.Add(Usage{CPUNs: 1, Scanned: 2})
		a.AddWireBytes(3)
		tab.Record(k, a.Usage(), false)
	}
}

// BenchmarkCostRecord measures the cost-on hot path: one account
// accumulation plus a table fold, the per-request overhead a costed
// deployment pays.
func BenchmarkCostRecord(b *testing.B) {
	tab := NewTable()
	a := &Account{}
	k := Key{Tenant: "acme", Class: 1, Workload: "agg", Level: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Add(Usage{CPUNs: 1000, Scanned: 64, QueueNs: 10})
		a.AddWireBytes(128)
		tab.Record(k, a.Usage(), i%8 == 0)
	}
}
