package breaker

import (
	"sync"
	"testing"
	"time"
)

// manualClock is a settable test clock.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *manualClock) {
	clk := &manualClock{now: time.Unix(1_000_000, 0)}
	return New(Config{FailThreshold: threshold, Cooldown: cooldown, Now: clk.Now}), clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.Fail()
		if got := b.State(); got != Closed {
			t.Fatalf("after %d fails state = %v, want closed", i+1, got)
		}
		if !b.Allow() {
			t.Fatalf("closed breaker refused a request after %d fails", i+1)
		}
	}
	b.Fail()
	if got := b.State(); got != Open {
		t.Fatalf("after threshold state = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Fail()
	b.Fail()
	b.Success()
	b.Fail()
	b.Fail()
	if got := b.State(); got != Closed {
		t.Fatalf("non-consecutive failures tripped the breaker: %v", got)
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Fail()
	if b.State() != Open {
		t.Fatal("breaker not open")
	}
	// Inside the cooldown: fail fast.
	clk.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("admitted inside cooldown")
	}
	// Cooldown elapsed: exactly one probe is admitted.
	clk.Advance(2 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open probe refused")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("second request admitted while a probe is in flight")
	}
	// Probe failure re-opens with a fresh cooldown.
	b.Fail()
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("admitted immediately after failed probe")
	}
	// Second probe succeeds: closed again, full threshold restored.
	clk.Advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("second half-open probe refused")
	}
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("state after healed probe = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
}

func TestBreakerStragglerFailuresWhileOpenDoNotExtendCooldown(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Fail()
	clk.Advance(900 * time.Millisecond)
	b.Fail() // straggler from before the trip
	clk.Advance(101 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("straggler failure extended the cooldown")
	}
}

func TestBreakerStateChangeHook(t *testing.T) {
	clk := &manualClock{now: time.Unix(1_000_000, 0)}
	var seen []State
	b := New(Config{
		FailThreshold: 1,
		Cooldown:      time.Second,
		Now:           clk.Now,
		OnStateChange: func(s State) { seen = append(seen, s) },
	})
	if !b.Fail() {
		t.Fatal("threshold-1 failure did not report a trip")
	}
	clk.Advance(time.Second + time.Millisecond)
	b.Allow()
	b.Success()
	want := []State{Open, HalfOpen, Closed}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seen, want)
		}
	}
}

func TestBackoffCapsAndJitters(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	b := NewBackoff(base, cap, 7)
	prevCeil := time.Duration(0)
	for i := 0; i < 8; i++ {
		d := b.Next()
		exp := base << i
		if exp > cap || exp <= 0 {
			exp = cap
		}
		if d < exp/2 || d >= exp {
			t.Fatalf("attempt %d delay %v outside [%v, %v)", i, d, exp/2, exp)
		}
		if exp == cap && prevCeil == cap && d >= cap {
			t.Fatalf("capped delay %v >= cap %v", d, cap)
		}
		prevCeil = exp
	}
	if b.Attempts() != 8 {
		t.Fatalf("attempts = %d", b.Attempts())
	}
	b.Reset()
	if d := b.Next(); d >= base {
		t.Fatalf("post-reset delay %v not back at base schedule", d)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a := NewBackoff(time.Millisecond, 64*time.Millisecond, 42)
	b := NewBackoff(time.Millisecond, 64*time.Millisecond, 42)
	for i := 0; i < 10; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("attempt %d: %v != %v with equal seeds", i, da, db)
		}
	}
}
