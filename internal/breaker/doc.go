// Package breaker implements the per-peer circuit breaker and the
// capped exponential dial backoff of the failure-domain hardening
// extension (PR 7) — the machinery that keeps a dead or flapping
// component from turning into retry storms and head-of-line stalls in
// the networked serving path.
//
// A Breaker is the classic three-state machine: Closed counts
// consecutive failures and trips Open at a threshold; Open fails every
// request fast for a cooldown; after the cooldown one half-open probe
// is admitted, and its outcome decides between re-closing (the peer
// healed) and re-opening (still down, new cooldown). Both the
// aggregator's peers (internal/netsvc) and the in-process cluster's
// components (internal/service) wear one, so the two runtimes keep
// behavioural parity under component failure.
//
// A Backoff produces the capped exponential retry schedule with equal
// jitter (half deterministic, half seeded-random) that replaces
// immediate redialing: attempt n waits base·2ⁿ at most Cap, jittered so
// a fleet of aggregators does not reconnect in lockstep when a shared
// component heals. The jitter source is a deterministic seeded RNG
// (internal/stats), so failure scenarios replay bit-identically in
// tests and experiments.
package breaker
