package breaker

import (
	"sync"
	"time"

	"accuracytrader/internal/stats"
)

// State is a breaker's position in the closed → open → half-open cycle.
type State uint8

// The breaker states.
const (
	// Closed admits every request; consecutive failures are counted.
	Closed State = iota
	// Open fails every request fast until the cooldown elapses.
	Open
	// HalfOpen admits exactly one probe; its outcome picks the next
	// state.
	HalfOpen
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	default:
		return "half-open"
	}
}

// Config parametrizes a Breaker.
type Config struct {
	// FailThreshold is the consecutive-failure count that trips Closed
	// → Open (default 3).
	FailThreshold int
	// Cooldown is how long Open fails fast before admitting a half-open
	// probe (default 200ms). A healed peer is rediscovered within one
	// cooldown of the first post-heal probe.
	Cooldown time.Duration
	// Now is the clock (default time.Now); injectable so state-machine
	// tests run on a manual clock instead of sleeping.
	Now func() time.Time
	// OnStateChange, when set, is invoked (outside the breaker's lock)
	// after every state transition — the hook metrics and reconnect
	// logic attach to.
	OnStateChange func(State)
}

func (c Config) withDefaults() Config {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 200 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is one peer's circuit breaker. The zero value is not usable;
// construct with New. Safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	cfg      Config
	state    State
	fails    int
	openedAt time.Time
	probing  bool      // a half-open probe is in flight
	probeAt  time.Time // when the probe slot was claimed
	opens    int64
}

// New returns a closed breaker.
func New(cfg Config) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed. Closed always admits.
// Open admits nothing until the cooldown has elapsed, at which point
// the breaker turns half-open and this call claims the single probe
// slot; further Allow calls fail fast until the probe resolves via
// Success or Fail.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	switch b.state {
	case Closed:
		b.mu.Unlock()
		return true
	case Open:
		now := b.cfg.Now()
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			b.mu.Unlock()
			return false
		}
		b.state = HalfOpen
		b.probing = true
		b.probeAt = now
		b.mu.Unlock()
		b.notify(HalfOpen)
		return true
	default: // HalfOpen
		now := b.cfg.Now()
		if b.probing && now.Sub(b.probeAt) < b.cfg.Cooldown {
			// A probe is in flight. Should it never resolve (dropped by a
			// racing replica or a dying caller), the claim expires after
			// one cooldown so the breaker cannot wedge half-open.
			b.mu.Unlock()
			return false
		}
		b.probing = true
		b.probeAt = now
		b.mu.Unlock()
		return true
	}
}

// Success records a request that completed: the peer is healthy, so any
// state collapses back to Closed and the failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	changed := b.state != Closed
	b.state = Closed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
	if changed {
		b.notify(Closed)
	}
}

// Fail records a failed request and reports whether this failure
// tripped the breaker open. Consecutive failures trip Closed → Open at
// the threshold; a failed half-open probe re-opens with a fresh
// cooldown. Failures landing while already Open (stragglers from
// before the trip) neither extend the cooldown nor re-count.
func (b *Breaker) Fail() bool {
	b.mu.Lock()
	tripped := false
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.FailThreshold {
			b.trip()
			tripped = true
		}
	case HalfOpen:
		b.trip()
		tripped = true
	case Open:
		// no-op: the cooldown clock keeps its origin.
	}
	b.mu.Unlock()
	if tripped {
		b.notify(Open)
	}
	return tripped
}

// notify runs the state-change hook, if any. Called outside b.mu so the
// hook may re-enter the breaker.
func (b *Breaker) notify(s State) {
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(s)
	}
}

// trip moves to Open. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.probing = false
	b.fails = 0
	b.opens++
}

// State returns the breaker's current state. An Open breaker whose
// cooldown has elapsed still reports Open until an Allow claims the
// half-open probe — state transitions happen on traffic, not on a
// timer.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns the cumulative number of Closed/HalfOpen → Open trips.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Backoff produces a capped exponential retry schedule with equal
// jitter. The zero value is not usable; construct with NewBackoff.
// Safe for concurrent use.
type Backoff struct {
	mu      sync.Mutex
	base    time.Duration
	cap     time.Duration
	attempt int
	rng     *stats.RNG
}

// NewBackoff returns a backoff starting at base and capping at max.
// seed drives the jitter deterministically (same seed, same schedule).
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, cap: max, rng: stats.NewRNG(seed)}
}

// Next returns the delay before the next attempt and advances the
// schedule: min(cap, base·2ⁿ), jittered into [d/2, d) so concurrent
// reconnectors spread out instead of thundering together.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.cap
	if shift := b.attempt; shift < 32 {
		if e := b.base << shift; e < b.cap && e > 0 {
			d = e
		}
	}
	b.attempt++
	half := d / 2
	return half + time.Duration(b.rng.Float64()*float64(half))
}

// Reset rewinds the schedule to the first attempt (after a success).
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Attempts returns how many delays Next has handed out since the last
// Reset.
func (b *Backoff) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}
