package netsvc

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accuracytrader/internal/frontend"
	"accuracytrader/internal/service"
	"accuracytrader/internal/wire"
)

// Handler serves one sub-operation on a component server. The server
// fills in the reply's ID, Subset and Kind from the request; handlers
// must be safe for concurrent use when Workers > 1. The context
// carries the request's propagated deadline: handlers running
// Algorithm 1 should stop improving when the budget is gone.
type Handler func(ctx context.Context, req *wire.Request) *wire.SubReply

// ServerOptions configures a Server or FrontServer.
type ServerOptions struct {
	// Workers is the worker-pool width (default 1 — the single-server
	// FIFO queue of the component model; aggregator processes want more).
	Workers int
	// QueueLen bounds pending requests across connections (default 256).
	// A full queue answers StatusBusy immediately, surfacing overload
	// instead of buffering it invisibly.
	QueueLen int
	// MaxFrame bounds accepted frame sizes (default wire.MaxFrame).
	MaxFrame int
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.MaxFrame
	}
	return o
}

// ServerStats counts a server's request outcomes.
type ServerStats struct {
	Requests  int64 // dequeued by a worker
	Abandoned int64 // deadline already passed at dequeue: answered Skipped, no work done
	Shed      int64 // answered StatusBusy at a full queue
}

// srvConn is one accepted connection with serialized writes (workers
// reply concurrently).
type srvConn struct {
	c  net.Conn
	mu sync.Mutex
}

func (sc *srvConn) write(frame []byte) {
	sc.mu.Lock()
	_, err := sc.c.Write(frame)
	sc.mu.Unlock()
	if err != nil {
		// The reader side will observe the broken connection and exit.
		sc.c.Close()
	}
}

type srvJob struct {
	req  *wire.Request
	conn *srvConn
}

// srvCore is the shared listener/worker machinery of Server and
// FrontServer; the two differ only in how they respond.
type srvCore struct {
	opts ServerOptions
	// respond handles one live request and returns the encoded reply
	// frame; expired answers a request whose deadline has already
	// passed; busy answers a request shed at the queue bound.
	respond func(ctx context.Context, req *wire.Request) []byte
	expired func(req *wire.Request) []byte
	busy    func(req *wire.Request) []byte

	// graceful extends the work deadline with gather slack: a front
	// server's budget bounds the components' work (propagated in the
	// wire request), but the replies computed within that budget still
	// need time to travel back and be composed — without the grace,
	// work that legitimately fills the budget always loses the gather
	// race by a transport epsilon.
	graceful bool

	queue chan srvJob
	quit  chan struct{}

	mu     sync.Mutex
	lns    []net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	workers sync.WaitGroup
	readers sync.WaitGroup

	requests  atomic.Int64
	abandoned atomic.Int64
	shed      atomic.Int64
}

func newSrvCore(opts ServerOptions) *srvCore {
	opts = opts.withDefaults()
	s := &srvCore{
		opts:  opts,
		queue: make(chan srvJob, opts.QueueLen),
		quit:  make(chan struct{}),
		conns: map[net.Conn]struct{}{},
	}
	for w := 0; w < opts.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Serve accepts connections on l until the server is closed or the
// listener fails. It blocks; run it in a goroutine.
func (s *srvCore) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("netsvc: server closed")
	}
	s.lns = append(s.lns, l)
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.readers.Add(1)
		s.mu.Unlock()
		go s.readConn(c)
	}
}

// readConn decodes request frames off one connection and enqueues them
// on the bounded worker queue. A protocol error closes the connection.
func (s *srvCore) readConn(c net.Conn) {
	defer s.readers.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	sc := &srvConn{c: c}
	br := bufio.NewReader(c)
	var buf []byte
	for {
		var err error
		buf, err = wire.ReadFrame(br, buf, s.opts.MaxFrame)
		if err != nil {
			return
		}
		req, err := wire.DecodeRequest(buf)
		if err != nil {
			return
		}
		select {
		case s.queue <- srvJob{req: req, conn: sc}:
		default:
			s.shed.Add(1)
			sc.write(s.busy(req))
		}
	}
}

func (s *srvCore) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.serveJob(j)
		}
	}
}

func (s *srvCore) serveJob(j srvJob) {
	s.requests.Add(1)
	ctx := context.Background()
	if j.req.Deadline != 0 {
		dl := time.Unix(0, j.req.Deadline)
		// The propagated budget is already gone: abandon the work
		// entirely — the aggregator has (or will have) composed without
		// this subset, so computing would be pure waste.
		if !time.Now().Before(dl) {
			s.abandoned.Add(1)
			j.conn.write(s.expired(j.req))
			return
		}
		if s.graceful {
			rem := time.Until(dl)
			dl = dl.Add(rem/4 + 2*time.Millisecond)
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, dl)
		defer cancel()
	}
	j.conn.write(s.respond(ctx, j.req))
}

// Stats returns the server's request counters.
func (s *srvCore) Stats() ServerStats {
	return ServerStats{
		Requests:  s.requests.Load(),
		Abandoned: s.abandoned.Load(),
		Shed:      s.shed.Load(),
	}
}

// Close stops accepting, closes open connections, and stops the
// workers. Safe to call more than once.
func (s *srvCore) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lns := s.lns
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	close(s.quit)
	s.workers.Wait()
	s.readers.Wait()
}

// Server is a component server: one shard-holding process answering
// sub-operation requests with sub-replies.
type Server struct {
	*srvCore
	h Handler
}

// NewServer returns a component server around a workload handler.
func NewServer(h Handler, opts ServerOptions) *Server {
	s := &Server{h: h}
	s.srvCore = newSrvCore(opts)
	s.srvCore.respond = func(ctx context.Context, req *wire.Request) []byte {
		rep := h(ctx, req)
		rep.ID, rep.Subset, rep.Kind = req.ID, req.Subset, req.Kind
		return wire.AppendSubReplyFrame(nil, rep)
	}
	s.srvCore.expired = func(req *wire.Request) []byte {
		return wire.AppendSubReplyFrame(nil, &wire.SubReply{
			ID: req.ID, Subset: req.Subset, Kind: req.Kind,
			Status: wire.StatusSkipped, Level: wire.NoLevel,
		})
	}
	s.srvCore.busy = func(req *wire.Request) []byte {
		return wire.AppendSubReplyFrame(nil, &wire.SubReply{
			ID: req.ID, Subset: req.Subset, Kind: req.Kind,
			Status: wire.StatusBusy, Err: "server queue full", Level: wire.NoLevel,
		})
	}
	return s
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// FrontServer is an aggregator process's client-facing listener: it
// answers whole-service requests with composed replies, optionally
// running every request through the accuracy-aware frontend pipeline.
type FrontServer struct {
	*srvCore
	agg *Aggregator
	fe  *frontend.Frontend
}

// NewFrontServer wraps an aggregator (and, when fe is non-nil, the
// frontend pipeline in front of it). FrontServers want Workers > 1:
// each in-flight client request occupies a worker for its whole
// scatter/gather.
func NewFrontServer(agg *Aggregator, fe *frontend.Frontend, opts ServerOptions) *FrontServer {
	if opts.Workers <= 0 {
		opts.Workers = 64
	}
	s := &FrontServer{agg: agg, fe: fe}
	s.srvCore = newSrvCore(opts)
	s.srvCore.graceful = true
	s.srvCore.respond = func(ctx context.Context, req *wire.Request) []byte {
		return wire.AppendReplyFrame(nil, s.serve(ctx, req))
	}
	s.srvCore.expired = func(req *wire.Request) []byte {
		return wire.AppendReplyFrame(nil, &wire.Reply{
			ID: req.ID, Kind: req.Kind, Status: wire.ReplyErr,
			Err: "deadline expired before service", SLO: req.SLO,
			MinAccuracy: req.MinAccuracy, Level: wire.NoLevel,
		})
	}
	s.srvCore.busy = func(req *wire.Request) []byte {
		return wire.AppendReplyFrame(nil, &wire.Reply{
			ID: req.ID, Kind: req.Kind, Status: wire.ReplyRejected,
			Err: "aggregator queue full", SLO: req.SLO,
			MinAccuracy: req.MinAccuracy, Level: wire.NoLevel,
		})
	}
	return s
}

// ListenAndServe listens on addr and serves until Close.
func (s *FrontServer) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// serve answers one whole-service request.
func (s *FrontServer) serve(ctx context.Context, req *wire.Request) *wire.Reply {
	rep := &wire.Reply{
		ID: req.ID, Kind: req.Kind, SLO: req.SLO,
		MinAccuracy: req.MinAccuracy, Level: wire.NoLevel,
	}
	var subs []service.SubResult
	if s.fe != nil {
		res, err := s.fe.Call(ctx, req, sloFromWire(req.SLO, req.MinAccuracy))
		switch {
		case errors.Is(err, frontend.ErrRejected):
			rep.Status = wire.ReplyRejected
			rep.Err = err.Error()
			return rep
		case err != nil:
			rep.Status = wire.ReplyErr
			rep.Err = err.Error()
			return rep
		}
		rep.SLO = uint8(res.SLO.Kind)
		rep.MinAccuracy = res.SLO.MinAccuracy
		rep.Degraded = res.Degraded
		rep.Level = int16(res.Level)
		subs = res.Sub
	} else {
		var err error
		subs, err = s.agg.Call(ctx, req)
		if err != nil {
			rep.Status = wire.ReplyErr
			rep.Err = err.Error()
			return rep
		}
	}
	rep.Status = wire.ReplyOK
	rep.SubStatus = SubStatuses(subs)
	switch req.Kind {
	case wire.KindCF:
		rep.CF = ComposeCF(subs)
	case wire.KindSearch:
		k := 10
		if req.Search != nil && req.Search.K > 0 {
			k = int(req.Search.K)
		}
		rep.Search = ComposeSearch(subs, k)
	case wire.KindAgg:
		rep.Agg = ComposeAgg(subs)
	}
	return rep
}

// sloFromWire converts a wire SLO class to the frontend's. SLONone
// maps to BestEffort: a client that states no contract accepts
// whatever the current load dictates.
func sloFromWire(class uint8, minAcc float64) frontend.SLO {
	switch class {
	case wire.SLOExact:
		return frontend.ExactSLO()
	case wire.SLOBounded:
		return frontend.BoundedSLO(minAcc)
	default:
		return frontend.BestEffortSLO()
	}
}
