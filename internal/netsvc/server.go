package netsvc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accuracytrader/internal/audit"
	"accuracytrader/internal/cost"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/rescache"
	"accuracytrader/internal/service"
	"accuracytrader/internal/wire"
)

// Handler serves one sub-operation on a component server. The server
// fills in the reply's ID, Subset and Kind from the request; handlers
// must be safe for concurrent use when Workers > 1. The context
// carries the request's propagated deadline: handlers running
// Algorithm 1 should stop improving when the budget is gone.
type Handler func(ctx context.Context, req *wire.Request) *wire.SubReply

// ServerOptions configures a Server or FrontServer.
type ServerOptions struct {
	// Workers is the worker-pool width (default 1 — the single-server
	// FIFO queue of the component model; aggregator processes want more).
	Workers int
	// QueueLen bounds pending requests across connections (default 256).
	// A full queue answers StatusBusy immediately, surfacing overload
	// instead of buffering it invisibly.
	QueueLen int
	// MaxFrame bounds accepted frame sizes (default wire.MaxFrame).
	MaxFrame int
	// Tracer, when non-nil on a FrontServer, records a decision trace
	// per whole-service request (propagating the client's trace ID, or
	// minting one). Component Servers need no recorder: they attach
	// queue/exec spans to traced sub-replies on the wire instead.
	Tracer *obs.Recorder
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.MaxFrame
	}
	return o
}

// ServerStats counts a server's request outcomes.
type ServerStats struct {
	Requests  int64 // dequeued by a worker
	Abandoned int64 // deadline already passed at dequeue: answered Skipped, no work done
	Shed      int64 // answered StatusBusy at a full queue
	Ingests   int64 // append batches answered inline on connection readers
}

// srvConn is one accepted connection with serialized writes (workers
// reply concurrently).
type srvConn struct {
	c  net.Conn
	mu sync.Mutex
}

func (sc *srvConn) write(frame []byte) {
	sc.mu.Lock()
	_, err := sc.c.Write(frame)
	sc.mu.Unlock()
	if err != nil {
		// The reader side will observe the broken connection and exit.
		sc.c.Close()
	}
}

type srvJob struct {
	req  *wire.Request
	conn *srvConn
	enq  time.Time // when the request entered the worker queue
}

// srvCore is the shared listener/worker machinery of Server and
// FrontServer; the two differ only in how they respond.
type srvCore struct {
	opts ServerOptions
	// respond handles one live request and returns the encoded reply
	// frame (enq is when the request entered the worker queue, for
	// queue-wait spans); expired answers a request whose deadline has
	// already passed; busy answers a request shed at the queue bound.
	respond func(ctx context.Context, req *wire.Request, enq time.Time) []byte
	expired func(req *wire.Request) []byte
	busy    func(req *wire.Request) []byte

	// graceful extends the work deadline with gather slack: a front
	// server's budget bounds the components' work (propagated in the
	// wire request), but the replies computed within that budget still
	// need time to travel back and be composed — without the grace,
	// work that legitimately fills the budget always loses the gather
	// race by a transport epsilon.
	graceful bool

	queue chan srvJob
	quit  chan struct{}

	mu       sync.Mutex
	lns      []net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool

	workers sync.WaitGroup
	readers sync.WaitGroup

	// ingest, when set, answers v5 append batches (see SetIngest); it
	// is installed before Serve and read without synchronization.
	ingest IngestHandler

	requests  atomic.Int64
	abandoned atomic.Int64
	shed      atomic.Int64
	ingests   atomic.Int64
	pending   atomic.Int64 // queued + in-flight requests (drain signal)
}

func newSrvCore(opts ServerOptions) *srvCore {
	opts = opts.withDefaults()
	s := &srvCore{
		opts:  opts,
		queue: make(chan srvJob, opts.QueueLen),
		quit:  make(chan struct{}),
		conns: map[net.Conn]struct{}{},
	}
	for w := 0; w < opts.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Serve accepts connections on l until the server is closed or the
// listener fails. It blocks; run it in a goroutine.
func (s *srvCore) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("netsvc: server closed")
	}
	s.lns = append(s.lns, l)
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.closed || s.draining
			s.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.readers.Add(1)
		s.mu.Unlock()
		go s.readConn(c)
	}
}

// readConn decodes request frames off one connection and enqueues them
// on the bounded worker queue. A protocol error closes the connection.
func (s *srvCore) readConn(c net.Conn) {
	defer s.readers.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	sc := &srvConn{c: c}
	br := bufio.NewReader(c)
	var buf []byte
	for {
		var err error
		buf, err = wire.ReadFrame(br, buf, s.opts.MaxFrame)
		if err != nil {
			return
		}
		// One connection carries both query and append frames; the kind
		// byte routes before any payload decoding. Append batches are
		// answered inline on this reader — staging is a short, bounded
		// mutation that must not queue behind budgeted query work.
		kind, err := wire.FrameKind(buf)
		if err != nil {
			return
		}
		if kind == wire.FrameIngest {
			in, err := wire.DecodeIngestRequest(buf)
			if err != nil {
				return
			}
			s.serveIngest(sc, in)
			continue
		}
		req, err := wire.DecodeRequest(buf)
		if err != nil {
			return
		}
		// pending is raised before the enqueue so a drain never observes
		// zero while a just-enqueued job is still unserved.
		s.pending.Add(1)
		select {
		case s.queue <- srvJob{req: req, conn: sc, enq: time.Now()}:
		default:
			s.pending.Add(-1)
			s.shed.Add(1)
			sc.write(s.busy(req))
		}
	}
}

func (s *srvCore) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.serveJob(j)
			s.pending.Add(-1)
		}
	}
}

func (s *srvCore) serveJob(j srvJob) {
	s.requests.Add(1)
	ctx := context.Background()
	if j.req.Deadline != 0 {
		dl := time.Unix(0, j.req.Deadline)
		// The propagated budget is already gone: abandon the work
		// entirely — the aggregator has (or will have) composed without
		// this subset, so computing would be pure waste.
		if !time.Now().Before(dl) {
			s.abandoned.Add(1)
			j.conn.write(s.expired(j.req))
			return
		}
		if s.graceful {
			rem := time.Until(dl)
			dl = dl.Add(rem/4 + 2*time.Millisecond)
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, dl)
		defer cancel()
	}
	j.conn.write(s.respond(ctx, j.req, j.enq))
}

// Stats returns the server's request counters.
func (s *srvCore) Stats() ServerStats {
	return ServerStats{
		Requests:  s.requests.Load(),
		Abandoned: s.abandoned.Load(),
		Shed:      s.shed.Load(),
		Ingests:   s.ingests.Load(),
	}
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, waits up to timeout for every queued and in-flight
// request to be answered, then closes. It reports whether the drain
// completed before the deadline (false means remaining work was cut
// off by the final Close). Safe to call more than once; Close after
// Shutdown is a no-op.
func (s *srvCore) Shutdown(timeout time.Duration) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return true
	}
	s.draining = true
	lns := s.lns
	s.lns = nil
	s.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
	deadline := time.Now().Add(timeout)
	drained := false
	for {
		if s.pending.Load() == 0 {
			drained = true
			break
		}
		if !time.Now().Before(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	return drained
}

// Close stops accepting, closes open connections, and stops the
// workers. Safe to call more than once.
func (s *srvCore) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lns := s.lns
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	close(s.quit)
	s.workers.Wait()
	s.readers.Wait()
}

// Server is a component server: one shard-holding process answering
// sub-operation requests with sub-replies.
type Server struct {
	*srvCore
	h Handler
}

// NewServer returns a component server around a workload handler.
func NewServer(h Handler, opts ServerOptions) *Server {
	s := &Server{h: h}
	s.srvCore = newSrvCore(opts)
	s.srvCore.respond = func(ctx context.Context, req *wire.Request, enq time.Time) []byte {
		exec0 := time.Now()
		var sc *scanCounter
		if req.Trace != 0 {
			// Traced request: install a scan counter so the handler's
			// engine can report the data units it touched. Untraced
			// requests skip the context allocation entirely.
			sc = &scanCounter{}
			ctx = withScanCounter(ctx, sc)
		}
		rep := h(ctx, req)
		rep.ID, rep.Subset, rep.Kind = req.ID, req.Subset, req.Kind
		if req.Trace != 0 {
			// Traced request: ship the server-side queue wait and handler
			// execution back as wire spans for the aggregator to stitch,
			// each carrying its resource cost (queue wait on the queue
			// span; CPU, scanned units, and the request frame's wire bytes
			// on the exec span). Untraced requests pay nothing, not even
			// the two time stamps' encoding.
			queueWait := exec0.Sub(enq)
			execDur := time.Since(exec0)
			rep.Spans = append(rep.Spans,
				wire.Span{Kind: wire.SpanQueue, Start: enq.UnixNano(), Dur: int64(queueWait),
					Cost: wire.Cost{QueueNs: uint64(queueWait)}},
				wire.Span{Kind: wire.SpanExec, Start: exec0.UnixNano(), Dur: int64(execDur),
					Cost: wire.Cost{CPUNs: uint64(execDur), Scanned: sc.n.Load(), WireBytes: uint64(req.FrameLen)}})
		}
		return wire.AppendSubReplyFrame(nil, rep)
	}
	s.srvCore.expired = func(req *wire.Request) []byte {
		return wire.AppendSubReplyFrame(nil, &wire.SubReply{
			ID: req.ID, Subset: req.Subset, Kind: req.Kind,
			Status: wire.StatusSkipped, Level: wire.NoLevel,
		})
	}
	s.srvCore.busy = func(req *wire.Request) []byte {
		return wire.AppendSubReplyFrame(nil, &wire.SubReply{
			ID: req.ID, Subset: req.Subset, Kind: req.Kind,
			Status: wire.StatusBusy, Err: "server queue full", Level: wire.NoLevel,
		})
	}
	return s
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// FrontServer is an aggregator process's client-facing listener: it
// answers whole-service requests with composed replies, optionally
// running every request through the accuracy-aware frontend pipeline
// and, with EnableCache, through the accuracy-tagged result cache.
type FrontServer struct {
	*srvCore
	agg    *Aggregator
	fe     *frontend.Frontend
	cache  *rescache.Cache
	tracer *obs.Recorder

	// keyBufs pools canonical-key scratch buffers so the cache lookup
	// path does not allocate per request.
	keyBufs sync.Pool

	cacheHits atomic.Int64

	// Ingest-driven invalidation state (see EnableIngest): the highest
	// component data epoch observed, the re-warm budget per swap, and
	// the flag serializing background re-warm passes.
	dataEpoch atomic.Uint64
	rewarmMax int
	rewarming atomic.Bool

	// SLO attainment tracking (EnableSLO) and ground-truth auditing
	// (EnableAudit); both nil when disabled, and every call site is
	// nil-safe so the off state costs nothing.
	slo      *obs.SLOTracker
	tenantOf func(*wire.Request) string
	auditor  *audit.Auditor

	// costs, when set (EnableCost), meters every answered request into
	// the per-(tenant, class, workload, level) cost table. Nil costs
	// nothing: serve skips the account entirely.
	costs *cost.Table
}

// NewFrontServer wraps an aggregator (and, when fe is non-nil, the
// frontend pipeline in front of it). FrontServers want Workers > 1:
// each in-flight client request occupies a worker for its whole
// scatter/gather.
func NewFrontServer(agg *Aggregator, fe *frontend.Frontend, opts ServerOptions) *FrontServer {
	if opts.Workers <= 0 {
		opts.Workers = 64
	}
	s := &FrontServer{agg: agg, fe: fe, tracer: opts.Tracer}
	s.srvCore = newSrvCore(opts)
	s.srvCore.graceful = true
	s.srvCore.respond = func(ctx context.Context, req *wire.Request, enq time.Time) []byte {
		rep, costDone := s.serve(ctx, req, enq)
		frame := wire.AppendReplyFrame(nil, rep)
		if costDone != nil {
			// The reply frame's own bytes are part of the request's wire
			// cost; only the encoder knows them, so the cost record closes
			// here rather than in serve.
			costDone(len(frame))
		}
		return frame
	}
	s.srvCore.expired = func(req *wire.Request) []byte {
		return wire.AppendReplyFrame(nil, &wire.Reply{
			ID: req.ID, Kind: req.Kind, Status: wire.ReplyErr,
			Err: "deadline expired before service", SLO: req.SLO,
			MinAccuracy: req.MinAccuracy, Level: wire.NoLevel,
		})
	}
	s.srvCore.busy = func(req *wire.Request) []byte {
		return wire.AppendReplyFrame(nil, &wire.Reply{
			ID: req.ID, Kind: req.Kind, Status: wire.ReplyRejected,
			Err: "aggregator queue full", SLO: req.SLO,
			MinAccuracy: req.MinAccuracy, Level: wire.NoLevel,
		})
	}
	return s
}

// ListenAndServe listens on addr and serves until Close.
func (s *FrontServer) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// EnableCache puts the accuracy-tagged result cache in front of the
// frontend pipeline: whole-service requests are keyed on their
// canonical wire encoding (wire.AppendCanonicalKey), hits are served
// without touching admission or the aggregator, and concurrent
// identical misses coalesce onto one fan-out. When the cache was built
// with a refresh target, a background worker recomputes popular coarse
// entries at Exact class through the frontend (admission included, so
// refreshes yield to foreground traffic). Requires a frontend — the
// accuracy tags come from its degradation controller. Call before
// Serve.
func (s *FrontServer) EnableCache(c *rescache.Cache) error {
	if s.fe == nil || s.fe.Controller() == nil {
		// Without a controller the frontend would tag approximate
		// answers with accuracy 1 and the floor rule would be void.
		return errors.New("netsvc: result cache requires a frontend with a degradation controller (entries are accuracy-tagged by its calibrated level estimates)")
	}
	s.cache = c
	ctrl := s.fe.Controller()
	c.SetRefresh(s.refreshToExact, func() bool {
		return ctrl.Load() < frontend.RefreshLoadCeiling
	})
	return nil
}

// CacheHits returns the number of whole-service requests answered from
// the result cache.
func (s *FrontServer) CacheHits() int64 { return s.cacheHits.Load() }

// cacheKey computes the canonical cache key of a whole-service request
// using a pooled scratch buffer.
func (s *FrontServer) cacheKey(req *wire.Request) uint64 {
	buf, _ := s.keyBufs.Get().([]byte)
	buf = wire.AppendCanonicalKey(buf[:0], req)
	key := rescache.Key(buf)
	s.keyBufs.Put(buf) //nolint:staticcheck // slice header boxing is amortized by the pool
	return key
}

// cacheFloorOf maps the wire SLO class to the accuracy floor a cached
// entry must clear to serve it.
func (s *FrontServer) cacheFloorOf(req *wire.Request) float64 {
	switch req.SLO {
	case wire.SLOExact:
		return 1
	case wire.SLOBounded:
		return req.MinAccuracy
	default:
		return s.cache.BestEffortFloor()
	}
}

// errUncacheable marks a composed reply that must not be shared with
// coalesced waiters or stored (rejected, failed, or partial); the
// reply itself still travels back to the caller alongside it.
var errUncacheable = errors.New("netsvc: reply not cacheable")

// Tracer returns the decision-trace recorder (nil when tracing is
// disabled) — the admin plane serves its snapshots at /traces.
func (s *FrontServer) Tracer() *obs.Recorder { return s.tracer }

// EnableCost installs the cost-attribution table: every answered
// whole-service request opens a cost account on its context, the
// fan-out folds sub-operation span costs in, and the closed account is
// recorded per (tenant, SLO class, workload, ladder level). Requires a
// Tracer — component servers only report span costs on traced
// requests, so an untraced costed server would meter only wire bytes
// and wall time. Call before Serve.
func (s *FrontServer) EnableCost(t *cost.Table) error {
	if t != nil && s.tracer == nil {
		return errors.New("netsvc: cost attribution requires a Tracer (sub-operation costs ride traced spans)")
	}
	s.costs = t
	return nil
}

// CostTable returns the installed cost table (nil when disabled) — the
// admin plane serves its snapshots at /costs.
func (s *FrontServer) CostTable() *cost.Table { return s.costs }

// tenantFor resolves a request's tenant: the EnableSLO hook when one
// is installed (it may re-map or reject wire tenants), the request's
// wire tenant field otherwise.
func (s *FrontServer) tenantFor(req *wire.Request) string {
	if s.tenantOf != nil {
		return s.tenantOf(req)
	}
	return req.Tenant
}

// workloadName maps a wire request kind to the workload label shared
// by the cost table, the audit plane and the frontier join — the three
// must agree or per-workload joins silently come up empty.
func workloadName(kind wire.Kind) string {
	switch kind {
	case wire.KindAgg:
		return "agg"
	case wire.KindCF:
		return "cf"
	case wire.KindSearch:
		return "search"
	default:
		return "unknown"
	}
}

// serve wraps one whole-service request in a decision trace (when a
// Tracer is configured) and answers it. The client's propagated trace
// ID is adopted so the client can correlate; an untraced server does
// no extra work beyond two nil checks. The second return value, when
// non-nil, closes the request's cost record once the caller knows the
// encoded reply frame's size; a cost-off server always returns nil.
func (s *FrontServer) serve(ctx context.Context, req *wire.Request, enq time.Time) (*wire.Reply, func(replyBytes int)) {
	start := time.Now()
	epoch := s.dataEpoch.Load()            // pre-answer epoch: audit samples must not straddle a swap
	tr := s.tracer.Start(req.Trace, start) // nil recorder -> nil trace
	tenant := s.tenantFor(req)
	if tr != nil {
		tr.SetRequest(uint8(req.Kind), req.SLO, req.MinAccuracy, req.Deadline)
		tr.SetTenant(tenant)
		if !enq.IsZero() {
			// The front server's own queue wait, before any pipeline
			// stage ran. Comp -1: not tied to a subset.
			tr.Add(obs.SpanServerQueue, -1, enq, start.Sub(enq), 0)
		}
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	var acct *cost.Account
	if s.costs != nil {
		acct = &cost.Account{}
		acct.AddWireBytes(uint64(req.FrameLen))
		ctx = cost.WithAccount(ctx, acct)
		if tenant != "" {
			ctx = obs.WithTenant(ctx, tenant)
		}
	}
	rep, acc := s.answer(ctx, req)
	rep.Trace = tr.ID() // nil-safe: 0 when untraced
	switch rep.Status {
	case wire.ReplyDegraded:
		tr.MarkAnomaly(obs.AnomalyDegraded)
	case wire.ReplyUnavailable:
		tr.MarkAnomaly(obs.AnomalyUnavailable)
	}
	dur := time.Since(start)
	tr.Finish(dur) // pins anomalous traces (incl. deadline misses) as exemplars
	s.recordSLO(req, rep, start, dur)
	s.maybeAudit(req, rep, acc, epoch)
	if acct == nil {
		return rep, nil
	}
	lvl := rep.Level
	if lvl == wire.NoLevel {
		// No frontend in the path: the components honored the request's
		// explicit level, but nothing stamped it on the reply.
		lvl = req.Level
	}
	key := cost.Key{
		Tenant:   tenant,
		Class:    sloClassOf(req.SLO),
		Workload: workloadName(req.Kind),
		Level:    lvl,
	}
	hit := rep.Cached
	return rep, func(replyBytes int) {
		acct.AddWireBytes(uint64(replyBytes))
		u := acct.Usage()
		u.WallNs = uint64(dur)
		s.costs.Record(key, u, hit)
	}
}

// answer resolves one whole-service request, through the result cache
// when one is enabled, and reports the accuracy the answer is claimed
// at (the cached entry's recorded accuracy on hits).
func (s *FrontServer) answer(ctx context.Context, req *wire.Request) (*wire.Reply, float64) {
	if s.cache == nil {
		return s.serveMiss(ctx, req)
	}
	if ctrl := s.fe.Controller(); ctrl != nil {
		s.cache.SetLoad(ctrl.Load())
	}
	tr := obs.TraceFrom(ctx)
	var cacheT0 time.Time
	if tr != nil {
		cacheT0 = time.Now()
	}
	key := s.cacheKey(req)
	v, acc, outcome, err := s.cache.DoWith(ctx, key, s.cacheFloorOf(req),
		func() (interface{}, float64, error) {
			// Capture the epoch before computing so an entry whose
			// fan-out straddles a data update is born stale.
			epoch := s.cache.Epoch()
			acct := cost.AccountFrom(ctx)
			before := acct.Usage()
			rep, acc := s.serveMiss(ctx, req)
			if rep.Status != wire.ReplyOK || !allOK(rep.SubStatus) {
				return rep, acc, errUncacheable
			}
			stored := *rep
			stored.ID = 0 // hits are re-stamped with their own request ID
			// Tag the entry with what the fan-out cost (the account delta
			// across serveMiss), so later hits can be credited as saved
			// work. With cost attribution off the delta is zero and the
			// tag is inert.
			after := acct.Usage()
			fill := cost.Usage{
				CPUNs:     after.CPUNs - before.CPUNs,
				Scanned:   after.Scanned - before.Scanned,
				QueueNs:   after.QueueNs - before.QueueNs,
				WireBytes: after.WireBytes - before.WireBytes,
			}
			s.cache.StoreCosted(key, req, &stored, acc, epoch, fill)
			return rep, acc, nil
		})
	if tr != nil {
		switch outcome {
		case rescache.OutcomeHit:
			tr.SetCacheOutcome(obs.CacheHit)
			tr.Add(obs.SpanCache, -1, cacheT0, time.Since(cacheT0), obs.CacheHit)
		case rescache.OutcomeCoalesced:
			tr.SetCacheOutcome(obs.CacheCoalesced)
			tr.Add(obs.SpanCache, -1, cacheT0, time.Since(cacheT0), obs.CacheCoalesced)
		default:
			// Miss: the cost is the fan-out itself, already covered by its
			// own admission/sub-op/merge spans — a SpanCache here would
			// double-count the whole request.
			tr.SetCacheOutcome(obs.CacheMiss)
		}
	}
	rep, ok := v.(*wire.Reply)
	if !ok {
		// Only possible when the wait for a shared result was cut short
		// by the connection's context.
		msg := "cache wait cancelled"
		if err != nil {
			msg = err.Error()
		}
		return &wire.Reply{ID: req.ID, Kind: req.Kind, Status: wire.ReplyErr,
			Err: msg, SLO: req.SLO, MinAccuracy: req.MinAccuracy, Level: wire.NoLevel}, 0
	}
	if outcome == rescache.OutcomeMiss {
		// This request's own computation, already stamped — but the
		// same object was handed to any coalesced waiters, who copy it
		// concurrently. Return a private copy so serve's trace-ID stamp
		// never races those reads.
		out := *rep
		return &out, acc
	}
	// Cache hit or coalesced share: the stored reply is immutable —
	// copy it and stamp this request's identity and class.
	s.cacheHits.Add(1)
	out := *rep
	out.ID = req.ID
	out.SLO, out.MinAccuracy = req.SLO, req.MinAccuracy
	out.Degraded = false
	out.Cached = true
	return &out, acc
}

// allOK reports whether every subset answered StatusOK.
func allOK(statuses []uint8) bool {
	for _, st := range statuses {
		if st != wire.StatusOK {
			return false
		}
	}
	return true
}

// refreshToExact recomputes one cached answer at Exact class through
// the frontend pipeline and returns the upgraded reply (accuracy 1).
func (s *FrontServer) refreshToExact(_ uint64, payload interface{}) (interface{}, float64, bool) {
	req, ok := payload.(*wire.Request)
	if !ok {
		return nil, 0, false
	}
	exact := *req
	exact.SLO, exact.MinAccuracy = wire.SLOExact, 0
	exact.Level, exact.Deadline = wire.NoLevel, 0
	ctx, cancel := context.WithTimeout(context.Background(), 2*s.agg.Deadline())
	defer cancel()
	// Internal traffic: refresh work must not count against client SLO
	// windows or tenant cost curves.
	ctx = obs.WithInternal(ctx)
	// Refreshes get their own trace (CacheRefresh outcome) so background
	// recomputation load is visible alongside foreground requests.
	start := time.Now()
	tr := s.tracer.Start(0, start)
	if tr != nil {
		tr.SetRequest(uint8(exact.Kind), exact.SLO, exact.MinAccuracy, 0)
		tr.SetCacheOutcome(obs.CacheRefresh)
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	// Refresh work is still real work: meter it under the reserved
	// internal tenant so capacity spent on background upgrades is
	// visible, without polluting any client tenant's curves.
	var acct *cost.Account
	if s.costs != nil {
		acct = &cost.Account{}
		ctx = cost.WithAccount(ctx, acct)
	}
	rep, acc := s.serveMiss(ctx, &exact)
	dur := time.Since(start)
	tr.Finish(dur)
	if acct != nil {
		u := acct.Usage()
		u.WallNs = uint64(dur)
		s.costs.Record(cost.Key{
			Tenant:   cost.InternalTenant,
			Class:    sloClassOf(exact.SLO),
			Workload: workloadName(exact.Kind),
			Level:    rep.Level,
		}, u, false)
	}
	if rep.Status != wire.ReplyOK || !allOK(rep.SubStatus) {
		return nil, 0, false
	}
	stored := *rep
	stored.ID = 0
	return &stored, acc, true
}

// serveMiss composes one whole-service reply from a fresh fan-out and
// reports the accuracy bound it was computed at (1 for Exact-class
// answers, the controller's calibrated level estimate otherwise; 0 for
// failures).
func (s *FrontServer) serveMiss(ctx context.Context, req *wire.Request) (*wire.Reply, float64) {
	rep := &wire.Reply{
		ID: req.ID, Kind: req.Kind, SLO: req.SLO,
		MinAccuracy: req.MinAccuracy, Level: wire.NoLevel,
	}
	acc := 0.0
	var subs []service.SubResult
	if s.fe != nil {
		res, err := s.fe.Call(ctx, req, sloFromWire(req.SLO, req.MinAccuracy))
		switch {
		case errors.Is(err, frontend.ErrRejected):
			rep.Status = wire.ReplyRejected
			rep.Err = err.Error()
			return rep, 0
		case err != nil:
			rep.Status = wire.ReplyErr
			rep.Err = err.Error()
			return rep, 0
		}
		rep.SLO = uint8(res.SLO.Kind)
		rep.MinAccuracy = res.SLO.MinAccuracy
		rep.Degraded = res.Degraded
		rep.Level = int16(res.Level)
		subs = res.Sub
		acc = res.EstimatedAccuracy // 1 for Exact-class results
	} else {
		var err error
		subs, err = s.agg.Call(ctx, req)
		if err != nil {
			rep.Status = wire.ReplyErr
			rep.Err = err.Error()
			return rep, 0
		}
	}
	rep.Status = wire.ReplyOK
	rep.SubStatus = SubStatuses(subs)
	answered, total := DegradeStats(rep.SubStatus)
	if answered < total {
		// Some strata are absent (dead component, tripped breaker, shed
		// queue, expired budget). Discount the accuracy by the lost
		// contribution and apply the per-SLO rule instead of silently
		// composing a skewed answer.
		base := acc
		if s.fe == nil {
			// Without a frontend the components run at full fidelity; the
			// only accuracy loss is the missing strata themselves.
			base = 1
		}
		disc := DiscountAccuracy(base, answered, total)
		switch {
		case rep.SLO == wire.SLOExact:
			rep.Status = wire.ReplyUnavailable
			rep.Err = fmt.Sprintf("exact answer unavailable: %d of %d strata answered", answered, total)
			return rep, 0
		case rep.SLO == wire.SLOBounded && disc < rep.MinAccuracy:
			rep.Status = wire.ReplyUnavailable
			rep.Err = fmt.Sprintf("accuracy floor %.3f unreachable: %d of %d strata answered (discounted accuracy %.3f)",
				rep.MinAccuracy, answered, total, disc)
			return rep, 0
		}
		rep.Status = wire.ReplyDegraded
		rep.Degraded = true
		acc = disc
	}
	tr := obs.TraceFrom(ctx)
	var mergeT0 time.Time
	if tr != nil {
		mergeT0 = time.Now()
	}
	switch req.Kind {
	case wire.KindCF:
		rep.CF = ComposeCF(subs)
	case wire.KindSearch:
		k := 10
		if req.Search != nil && req.Search.K > 0 {
			k = int(req.Search.K)
		}
		rep.Search = ComposeSearch(subs, k)
	case wire.KindAgg:
		rep.Agg = ComposeAgg(subs)
		if rep.Status == wire.ReplyDegraded {
			ExtrapolateAgg(rep.Agg, answered, total)
		}
	}
	if tr != nil {
		tr.Add(obs.SpanMerge, -1, mergeT0, time.Since(mergeT0), 0)
	}
	return rep, acc
}

// sloFromWire converts a wire SLO class to the frontend's. SLONone
// maps to BestEffort: a client that states no contract accepts
// whatever the current load dictates.
func sloFromWire(class uint8, minAcc float64) frontend.SLO {
	switch class {
	case wire.SLOExact:
		return frontend.ExactSLO()
	case wire.SLOBounded:
		return frontend.BoundedSLO(minAcc)
	default:
		return frontend.BestEffortSLO()
	}
}
