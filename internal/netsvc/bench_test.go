package netsvc

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/cost"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/service"
	"accuracytrader/internal/wire"
)

// benchServe measures one whole-service round trip over loopback —
// client → front server → component fan-out → composed reply — with an
// optional trace recorder on the front server. The traced/untraced
// pair bounds the end-to-end tracing overhead; CI feeds both through
// `benchjson -assert-max-regress`.
func benchServe(b *testing.B, rec *obs.Recorder, costs *cost.Table) {
	comps := buildAggComps(b, 1)
	_, addr := startServer(b, NewAggBackend(comps, BackendOptions{}), ServerOptions{})
	a, err := NewAggregator([]string{addr}, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(a.Close)
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	fs := NewFrontServer(a, nil, ServerOptions{Tracer: rec})
	if costs != nil {
		if err := fs.EnableCost(costs); err != nil {
			b.Fatal(err)
		}
	}
	go fs.Serve(fl)
	b.Cleanup(fs.Close)
	cl, err := DialClient(fl.Addr().String(), ClientOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })

	req := aggReq(agg.Sum, 0, math.Inf(1))
	req.SLO = wire.SLOBestEffort
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := cl.Call(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Status != wire.ReplyOK {
			b.Fatalf("reply status %d err %q", rep.Status, rep.Err)
		}
	}
}

func BenchmarkServeUntraced(b *testing.B) { benchServe(b, nil, nil) }

func BenchmarkServeTraced(b *testing.B) { benchServe(b, obs.NewRecorder(256, 64), nil) }

// BenchmarkServeUncosted/Costed bound the end-to-end overhead of cost
// attribution (account on the context, span-cost folds in the gather
// loop, table record per request — tracing included, since cost rides
// traced spans). CI compares the pair with `benchjson
// -assert-max-regress`.
func BenchmarkServeUncosted(b *testing.B) { benchServe(b, obs.NewRecorder(256, 64), nil) }

func BenchmarkServeCosted(b *testing.B) {
	benchServe(b, obs.NewRecorder(256, 64), cost.NewTable())
}
