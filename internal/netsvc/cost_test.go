package netsvc

import (
	"context"
	"testing"
	"time"

	"accuracytrader/internal/audit"
	"accuracytrader/internal/cost"
	"accuracytrader/internal/wire"
)

// costStack is auditStack plus cost attribution: the front server
// meters every answered request into the returned table.
func costStack(t *testing.T, cfg audit.Config) (*Client, *FrontServer, *audit.Auditor, *cost.Table) {
	t.Helper()
	cl, fs, auditor := auditStack(t, cfg)
	table := cost.NewTable()
	if err := fs.EnableCost(table); err != nil {
		t.Fatal(err)
	}
	return cl, fs, auditor, table
}

// TestCostAttributionEndToEnd drives tenant-tagged requests over the
// wire and asserts the cost table attributes real resource usage to
// the right (tenant, class, workload, level) key: CPU from component
// exec spans, scanned units from the engines, queue time, and wire
// bytes covering all four frame directions.
func TestCostAttributionEndToEnd(t *testing.T) {
	cl, _, _, table := costStack(t, audit.Config{SampleFraction: 0.000001})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	const calls = 3
	for i := 0; i < calls; i++ {
		req := boundedCoarseReq(0.1)
		req.Tenant = "acme"
		rep, err := cl.Call(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status != wire.ReplyOK {
			t.Fatalf("reply: %+v", rep)
		}
	}

	v := table.Snapshot()
	if v.Requests != calls {
		t.Fatalf("table requests = %d, want %d", v.Requests, calls)
	}
	if len(v.Rows) != 1 {
		t.Fatalf("rows = %+v, want exactly one key", v.Rows)
	}
	row := v.Rows[0]
	if row.Tenant != "acme" || row.Class != "Bounded" || row.Workload != "agg" {
		t.Fatalf("row key = %s/%s/%s/%d, want acme/Bounded/agg", row.Tenant, row.Class, row.Workload, row.Level)
	}
	if row.Requests != calls {
		t.Fatalf("row requests = %d, want %d", row.Requests, calls)
	}
	u := row.Totals
	if u.CPUNs == 0 || u.Scanned == 0 || u.QueueNs == 0 || u.WireBytes == 0 || u.WallNs == 0 {
		t.Fatalf("totals have zero dimensions: %+v", u)
	}
	// Per-tenant rows must sum to the global totals exactly (the same
	// integers feed both sides).
	if u != v.Global {
		t.Fatalf("single row %+v != global %+v", u, v.Global)
	}
	// Wire bytes cover at least the four frames of each fan-out hop:
	// more than the client request frame alone.
	if u.WireBytes < calls*4*8 {
		t.Fatalf("wire bytes = %d, implausibly low", u.WireBytes)
	}
}

// TestInternalTrafficExcluded is the regression contract for audit
// replays: a replay is measurement, not service, so it must appear in
// neither the per-class SLO windows nor the cost table — no Exact-class
// rows from the replays' Exact recomputations, no internal-tenant rows,
// and SLO totals that count exactly the client's calls.
func TestInternalTrafficExcluded(t *testing.T) {
	cl, fs, auditor, table := costStack(t, audit.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	const calls = 4
	for i := 0; i < calls; i++ {
		rep, err := cl.Call(ctx, boundedCoarseReq(0.9999))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status != wire.ReplyOK {
			t.Fatalf("reply: %+v", rep)
		}
	}
	if !auditor.Drain(5 * time.Second) {
		t.Fatalf("auditor never drained: %+v", auditor.Stats())
	}
	if st := auditor.Stats(); st.Audited != calls {
		t.Fatalf("audited = %d, want %d (every call sampled)", st.Audited, calls)
	}

	// SLO windows: the Bounded class saw exactly the client's calls; the
	// Exact class saw nothing, even though every replay recomputed at
	// Exact class through the same composition path.
	tr := fs.SLOTracker()
	if total, _, _, _ := tr.Window(wire.SLOBounded, 0); total != calls {
		t.Fatalf("Bounded window total = %d, want %d", total, calls)
	}
	if total, _, _, _ := tr.Window(wire.SLOExact, 0); total != 0 {
		t.Fatalf("Exact window total = %d, want 0 (audit replays must not count)", total)
	}

	// Cost table: only the client's own requests are billed. Replays
	// open no account, so nothing lands under Exact class or the
	// internal tenant.
	v := table.Snapshot()
	if v.Requests != calls {
		t.Fatalf("table requests = %d, want %d (replays must not be metered)", v.Requests, calls)
	}
	for _, row := range v.Rows {
		if row.Class == "Exact" {
			t.Fatalf("Exact-class cost row from an audit replay: %+v", row)
		}
		if row.Tenant == cost.InternalTenant {
			t.Fatalf("internal-tenant cost row from an audit replay: %+v", row)
		}
	}
}

// TestRefreshBilledToInternalTenant asserts cache-refresh work is
// metered — it spends real backend capacity — but under the reserved
// internal tenant, never a client's.
func TestRefreshBilledToInternalTenant(t *testing.T) {
	_, fs, _, table := costStack(t, audit.Config{SampleFraction: 0.000001})

	// (Without a frontend the claimed accuracy stays 0 — EnableCache
	// requires one in production; the cost accounting is what's under
	// test here.)
	v, _, ok := fs.refreshToExact(0, boundedCoarseReq(0.1))
	if !ok || v == nil {
		t.Fatalf("refreshToExact = (%v, _, %v), want a successful recompute", v, ok)
	}

	snap := table.Snapshot()
	if len(snap.Rows) != 1 {
		t.Fatalf("rows = %+v, want exactly the refresh row", snap.Rows)
	}
	row := snap.Rows[0]
	if row.Tenant != cost.InternalTenant || row.Class != "Exact" || row.Workload != "agg" {
		t.Fatalf("refresh billed to %s/%s/%s, want %s/Exact/agg", row.Tenant, row.Class, row.Workload, cost.InternalTenant)
	}
	if row.Totals.CPUNs == 0 || row.Totals.Scanned == 0 {
		t.Fatalf("refresh row has no usage: %+v", row.Totals)
	}
}
