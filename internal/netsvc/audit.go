package netsvc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/audit"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/wire"
)

// EnableSLO installs the SLO attainment tracker: every answered
// whole-service request is recorded with its class, deadline outcome
// and degradation outcome. tenantOf, when non-nil, keys the per-tenant
// dimension (return "" for untenanted requests); a nil tenantOf uses
// the request's wire Tenant field. Call before Serve.
func (s *FrontServer) EnableSLO(t *obs.SLOTracker, tenantOf func(*wire.Request) string) {
	s.slo = t
	s.tenantOf = tenantOf
}

// SLOTracker returns the installed tracker (nil when disabled).
func (s *FrontServer) SLOTracker() *obs.SLOTracker { return s.slo }

// EnableAudit starts the ground-truth auditor behind this front server.
// Unset Config hooks are wired to the server itself: Replay recomputes
// the sampled request at Exact class through the same pipeline
// (admission included, so audits yield to foreground traffic — and a
// successful replay upgrades a still-cached entry for free), Gate holds
// replays below the controller's refresh load ceiling, and Epoch tracks
// the ingest-driven data epoch so a sample is never audited against
// newer data than its answer saw. Call before Serve; the caller owns
// Close on the returned auditor.
func (s *FrontServer) EnableAudit(cfg audit.Config) (*audit.Auditor, error) {
	if cfg.Replay == nil {
		cfg.Replay = s.auditReplay
	}
	if cfg.Gate == nil && s.fe != nil && s.fe.Controller() != nil {
		ctrl := s.fe.Controller()
		cfg.Gate = func() bool { return ctrl.Load() < frontend.RefreshLoadCeiling }
	}
	if cfg.Epoch == nil {
		cfg.Epoch = s.DataEpoch
	}
	user := cfg.OnVerdict
	cfg.OnVerdict = func(smp *audit.Sample, v audit.Verdict) {
		s.onAuditVerdict(smp, v)
		if user != nil {
			user(smp, v)
		}
	}
	a, err := audit.New(cfg)
	if err != nil {
		return nil, err
	}
	s.auditor = a
	return a, nil
}

// Auditor returns the enabled auditor (nil when disabled).
func (s *FrontServer) Auditor() *audit.Auditor { return s.auditor }

// auditMismatchSlack is how far claimed accuracy may exceed realized
// before the trace is pinned as an audit mismatch. CLT bounds are
// probabilistic, so an individual miss within this slack is expected
// noise, not evidence of a stale calibration.
const auditMismatchSlack = 0.05

// onAuditVerdict folds a verdict back into the observability plane:
// floor violations and over-promises pin the original trace as an
// anomaly exemplar, and floor violations land in the SLO tracker's
// after-the-fact dimension.
func (s *FrontServer) onAuditVerdict(smp *audit.Sample, v audit.Verdict) {
	var reason obs.AnomalyReason
	if v.FloorViolated {
		reason |= obs.AnomalyFloorViolation
	}
	if v.AccuracyGap > auditMismatchSlack {
		reason |= obs.AnomalyAuditMismatch
	}
	if reason != 0 {
		s.tracer.Pin(smp.TraceID, reason)
	}
	if v.FloorViolated {
		s.slo.RecordFloorViolation(smp.Class, smp.Tenant)
	}
}

// maybeAudit offers one freshly-answered request to the auditor. Only
// approximate-class OK answers from a real fan-out qualify, and only
// when the answer did not straddle a data-epoch swap. The non-sampled
// path is allocation-free: the sample is built after the hash decision.
func (s *FrontServer) maybeAudit(req *wire.Request, rep *wire.Reply, acc float64, epoch uint64) {
	if s.auditor == nil || rep.Cached || rep.Status != wire.ReplyOK || req.SLO == wire.SLOExact {
		return
	}
	id := rep.Trace
	if id == 0 {
		id = req.ID
	}
	if !s.auditor.ShouldSample(id) {
		return
	}
	if s.dataEpoch.Load() != epoch {
		return
	}
	smp := s.buildSample(req, rep, acc, epoch, id)
	if smp != nil {
		s.auditor.Submit(smp)
	}
}

// sloClassOf collapses the wire class byte to the tracker's 0/1/2
// space (SLONone states no contract and accounts as BestEffort).
func sloClassOf(class uint8) uint8 {
	if class > wire.SLOBestEffort {
		return wire.SLOBestEffort
	}
	return class
}

// buildSample captures the approximate answer in auditable shape. The
// decoded request is retained as the replay payload — requests are
// decoded fresh per frame, so nothing else aliases it after the reply
// is written.
func (s *FrontServer) buildSample(req *wire.Request, rep *wire.Reply, acc float64, epoch uint64, id uint64) *audit.Sample {
	smp := &audit.Sample{
		TraceID:         id,
		Class:           sloClassOf(req.SLO),
		Level:           rep.Level,
		MinAccuracy:     req.MinAccuracy,
		ClaimedAccuracy: acc,
		Epoch:           epoch,
		Payload:         req,
	}
	smp.Tenant = s.tenantFor(req)
	switch req.Kind {
	case wire.KindAgg:
		if rep.Agg == nil || req.Agg == nil {
			return nil
		}
		smp.Workload, smp.Mode = "agg", audit.ModeRelErr
		res := AggResultOf(rep.Agg)
		op := agg.Op(req.Agg.Op)
		n := len(rep.Agg.Sum)
		smp.Estimates = make([]float64, n)
		smp.Bounds = make([]float64, n)
		for k := 0; k < n; k++ {
			smp.Estimates[k] = res.Estimate(op, k)
			smp.Bounds[k] = res.Bound(op, k)
		}
	case wire.KindCF:
		if rep.CF == nil || req.CF == nil {
			return nil
		}
		smp.Workload, smp.Mode = "cf", audit.ModeRelErr
		smp.Estimates = CFResultOf(rep.CF).Predictions(activeMeanOf(req.CF))
	case wire.KindSearch:
		if rep.Search == nil {
			return nil
		}
		smp.Workload, smp.Mode = "search", audit.ModeOverlap
		smp.Estimates = searchIDs(rep.Search)
	default:
		return nil
	}
	return smp
}

// activeMeanOf is the CF prediction baseline: the active user's mean
// known rating. Both the approximate answer and the exact replay are
// converted with the same baseline, so it cancels out of the error.
func activeMeanOf(cf *wire.CFRequest) float64 {
	if len(cf.Ratings) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range cf.Ratings {
		sum += r.Score
	}
	return sum / float64(len(cf.Ratings))
}

// searchIDs projects a hit list to its doc IDs (rank-insensitive: the
// audit scores recall, not ordering).
func searchIDs(res *wire.SearchResult) []float64 {
	ids := make([]float64, len(res.Hits))
	for i, h := range res.Hits {
		ids[i] = float64(h.Doc)
	}
	return ids
}

// auditReplay recomputes a sampled request at Exact class through the
// same composition path the original answer took — the audit.Config
// Replay hook. A successful replay also upgrades the request's cache
// entry in place (if it is still cached), so audits double as free
// refreshes.
func (s *FrontServer) auditReplay(ctx context.Context, smp *audit.Sample) ([]float64, error) {
	req, ok := smp.Payload.(*wire.Request)
	if !ok {
		return nil, errors.New("netsvc: audit sample payload is not a request")
	}
	exact := *req
	exact.SLO, exact.MinAccuracy = wire.SLOExact, 0
	exact.Level, exact.Deadline = wire.NoLevel, 0
	exact.Trace = 0
	// Internal traffic: a replay is measurement, not service — it must
	// not count against SLO windows or any tenant's cost curves (no cost
	// account is opened, so fan-out costs fold into nothing).
	ctx = obs.WithInternal(ctx)
	var epoch uint64
	if s.cache != nil {
		epoch = s.cache.Epoch()
	}
	start := time.Now()
	tr := s.tracer.Start(0, start)
	if tr != nil {
		tr.SetRequest(uint8(exact.Kind), exact.SLO, 0, 0)
		tr.SetCacheOutcome(obs.CacheRefresh)
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	rep, _ := s.serveMiss(ctx, &exact)
	tr.Finish(time.Since(start))
	if rep.Status != wire.ReplyOK || !allOK(rep.SubStatus) {
		return nil, fmt.Errorf("netsvc: audit replay not exact: status %d (%s)", rep.Status, rep.Err)
	}
	if s.cache != nil {
		stored := *rep
		stored.ID = 0
		s.cache.UpgradeIfPresent(s.cacheKey(req), req, &stored, 1, epoch)
	}
	return exactValuesOf(req, rep, smp)
}

// exactValuesOf extracts the replay's values in the sample's shape.
func exactValuesOf(req *wire.Request, rep *wire.Reply, smp *audit.Sample) ([]float64, error) {
	switch req.Kind {
	case wire.KindAgg:
		if rep.Agg == nil {
			return nil, errors.New("netsvc: audit replay returned no agg result")
		}
		return AggResultOf(rep.Agg).Estimates(agg.Op(req.Agg.Op)), nil
	case wire.KindCF:
		if rep.CF == nil {
			return nil, errors.New("netsvc: audit replay returned no cf result")
		}
		return CFResultOf(rep.CF).Predictions(activeMeanOf(req.CF)), nil
	case wire.KindSearch:
		if rep.Search == nil {
			return nil, errors.New("netsvc: audit replay returned no search result")
		}
		return searchIDs(rep.Search), nil
	}
	return nil, fmt.Errorf("netsvc: audit replay: unknown kind %d", req.Kind)
}

// recordSLO accounts one answered request with the tracker. Kept
// allocation-free for known tenants (the common case): flags are
// computed from facts already in hand.
func (s *FrontServer) recordSLO(req *wire.Request, rep *wire.Reply, start time.Time, dur time.Duration) {
	if s.slo == nil {
		return
	}
	var flags obs.SLOFlags
	if req.Deadline != 0 && start.UnixNano()+int64(dur) > req.Deadline {
		flags |= obs.SLODeadlineMiss
	}
	if rep.Degraded || rep.Status == wire.ReplyDegraded || rep.Status == wire.ReplyUnavailable {
		flags |= obs.SLODegraded
	}
	s.slo.Record(sloClassOf(req.SLO), s.tenantFor(req), flags)
}
