package netsvc

import (
	"context"
	"math"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"accuracytrader/internal/service"
	"accuracytrader/internal/wire"
)

// degradeFixture serves four subsets where subset 0 fails on demand,
// behind a FrontServer, and returns a client plus the fault switch.
func degradeFixture(t *testing.T) (*Client, *atomic.Bool) {
	t.Helper()
	var lose atomic.Bool
	h := func(ctx context.Context, req *wire.Request) *wire.SubReply {
		if req.Subset == 0 && lose.Load() {
			return &wire.SubReply{Status: wire.StatusErr, Err: "injected fault", Level: wire.NoLevel}
		}
		return &wire.SubReply{Status: wire.StatusOK, Level: wire.NoLevel,
			Agg: &wire.AggResult{Sum: []float64{1}, Cnt: []float64{1}, SumVar: []float64{0.5}, CntVar: []float64{0}}}
	}
	addrs := make([]string, 4)
	for i := range addrs {
		_, addrs[i] = startServer(t, h, ServerOptions{})
	}
	a, err := NewAggregator(addrs, AggregatorOptions{
		Policy:   service.WaitAll,
		Deadline: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	if err := a.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	fs := NewFrontServer(a, nil, ServerOptions{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fs.Serve(l)
	t.Cleanup(fs.Close)
	cl, err := DialClient(l.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, &lose
}

func degradeCall(t *testing.T, cl *Client, slo uint8, minAcc float64) *wire.Reply {
	t.Helper()
	req := &wire.Request{
		Kind: wire.KindAgg, Subset: -1, SLO: slo, MinAccuracy: minAcc,
		Level: wire.NoLevel, Agg: &wire.AggRequest{Lo: 0, Hi: math.Inf(1)},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rep, err := cl.Call(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestDegradationSLORule pins the per-SLO composition rule when strata
// are missing: BestEffort always answers (degraded, with extrapolated
// bounds), Bounded answers only while the discounted accuracy clears
// its floor (typed rejection otherwise), Exact fails fast — and a
// healthy fan-out stays a plain OK answer.
func TestDegradationSLORule(t *testing.T) {
	cl, lose := degradeFixture(t)

	// Healthy control: full fan-out, plain OK, no degradation flag.
	rep := degradeCall(t, cl, wire.SLOBestEffort, 0)
	if rep.Status != wire.ReplyOK || rep.Degraded {
		t.Fatalf("healthy reply: status %d degraded %v err %q", rep.Status, rep.Degraded, rep.Err)
	}
	if got := rep.Agg.Sum[0]; got != 4 {
		t.Fatalf("healthy composed sum = %v, want 4", got)
	}

	lose.Store(true)

	// BestEffort: always answers, degraded, with the 3-of-4 answer
	// extrapolated to the full population (sums ×4/3, variances ×16/9).
	rep = degradeCall(t, cl, wire.SLOBestEffort, 0)
	if rep.Status != wire.ReplyDegraded || !rep.Degraded {
		t.Fatalf("best-effort under loss: status %d degraded %v err %q", rep.Status, rep.Degraded, rep.Err)
	}
	if got, want := rep.Agg.Sum[0], 3*4.0/3; math.Abs(got-want) > 1e-9 {
		t.Fatalf("extrapolated sum = %v, want %v", got, want)
	}
	if got, want := rep.Agg.SumVar[0], 3*0.5*(4.0/3)*(4.0/3); math.Abs(got-want) > 1e-9 {
		t.Fatalf("extrapolated sum variance = %v, want %v", got, want)
	}
	if n := len(rep.SubStatus); n != 4 {
		t.Fatalf("SubStatus length %d, want 4", n)
	}

	// Bounded below the discounted accuracy (0.75): answers degraded.
	rep = degradeCall(t, cl, wire.SLOBounded, 0.7)
	if rep.Status != wire.ReplyDegraded || !rep.Degraded {
		t.Fatalf("bounded 0.7 under loss: status %d err %q", rep.Status, rep.Err)
	}

	// Bounded above it: typed rejection, no payload.
	rep = degradeCall(t, cl, wire.SLOBounded, 0.9)
	if rep.Status != wire.ReplyUnavailable {
		t.Fatalf("bounded 0.9 under loss: status %d err %q", rep.Status, rep.Err)
	}
	if rep.Agg != nil {
		t.Fatalf("rejected reply carries a payload: %+v", rep.Agg)
	}
	if !strings.Contains(rep.Err, "floor") {
		t.Fatalf("rejection reason %q does not name the floor", rep.Err)
	}

	// Exact: fails fast with the typed status.
	rep = degradeCall(t, cl, wire.SLOExact, 0)
	if rep.Status != wire.ReplyUnavailable || rep.Agg != nil {
		t.Fatalf("exact under loss: status %d agg %v", rep.Status, rep.Agg)
	}

	// Heal: the next fan-out is whole again.
	lose.Store(false)
	rep = degradeCall(t, cl, wire.SLOBounded, 0.9)
	if rep.Status != wire.ReplyOK || rep.Degraded {
		t.Fatalf("post-heal reply: status %d degraded %v err %q", rep.Status, rep.Degraded, rep.Err)
	}
}
