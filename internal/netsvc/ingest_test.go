package netsvc

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/ingest"
	"accuracytrader/internal/service"
	"accuracytrader/internal/wire"
)

// startLiveStack runs n component servers over live (epoch-swapped)
// aggregation shards with merge workers, an aggregator, and an
// ingest-enabled front server, and returns a client plus the shards.
func startLiveStack(t *testing.T, n, numKeys int) (*Client, *FrontServer, []*ingest.AggLive) {
	t.Helper()
	cfg := agg.Config{Rates: []float64{0.1, 0.4}, MinSample: 4, Seed: 3}
	lives := make([]*ingest.AggLive, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		lives[i] = ingest.NewAggLive(numKeys, cfg)
		w := ingest.NewWorker(lives[i], ingest.WorkerOptions{Interval: 2 * time.Millisecond, CompactEvery: 8})
		t.Cleanup(w.Close)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(NewLiveAggBackend(lives[i:i+1], BackendOptions{}), ServerOptions{})
		srv.SetIngest(NewLiveIngestHandler(LiveStores{Agg: lives[i : i+1]}))
		go srv.Serve(l)
		t.Cleanup(srv.Close)
		addrs[i] = l.Addr().String()
	}
	a, err := NewAggregator(addrs, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	fs := NewFrontServer(a, nil, ServerOptions{})
	fs.EnableIngest(0)
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fs.Serve(fl)
	t.Cleanup(fs.Close)
	cl, err := DialClient(fl.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl, fs, lives
}

// TestIngestEndToEnd drives an append batch through client → front
// server → aggregator → component and asserts the acknowledged rows
// become visible to exact queries after the next epoch swap, that the
// front server observes the advancing data epoch, and that an
// out-of-domain batch is rejected whole.
func TestIngestEndToEnd(t *testing.T) {
	const numKeys = 8
	cl, fs, _ := startLiveStack(t, 2, numKeys)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	rep, err := cl.Ingest(ctx, &wire.IngestRequest{
		Kind: wire.KindAgg, Subset: 0,
		Agg: &wire.AggIngest{Keys: []int32{1, 2, 1}, Vals: []float64{2, 3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != wire.IngestOK || rep.Accepted != 3 {
		t.Fatalf("ingest ack = %+v", rep)
	}
	if rep.Subset != 0 {
		t.Fatalf("ack subset = %d, want 0", rep.Subset)
	}
	if fs.DataEpoch() == 0 {
		t.Fatal("front server did not observe the data epoch")
	}

	// The ack's epoch is where the batch was staged; it becomes
	// queryable at any strictly greater epoch, i.e. after the merge
	// worker's next swap. Poll the composed exact answer until then.
	req := aggReq(agg.Sum, 0, math.Inf(1))
	req.SLO = wire.SLOExact
	deadline := time.Now().Add(4 * time.Second)
	for {
		qrep, err := cl.Call(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if qrep.Status != wire.ReplyOK {
			t.Fatalf("query status %d err %q", qrep.Status, qrep.Err)
		}
		got := AggResultOf(qrep.Agg)
		if got.Sum[1] == 6 && got.Sum[2] == 3 && got.Cnt[1] == 2 && got.Cnt[2] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("appended rows never became visible: sum=%v cnt=%v", got.Sum, got.Cnt)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Batch atomicity: one out-of-domain key rejects the whole batch.
	bad, err := cl.Ingest(ctx, &wire.IngestRequest{
		Kind: wire.KindAgg, Subset: 0,
		Agg: &wire.AggIngest{Keys: []int32{0, numKeys}, Vals: []float64{1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Status != wire.IngestErr || bad.Accepted != 0 {
		t.Fatalf("out-of-domain batch ack = %+v", bad)
	}

	// An unrouted batch (Subset -1) is assigned a shard round-robin and
	// the ack reports where it landed.
	rr, err := cl.Ingest(ctx, &wire.IngestRequest{
		Kind: wire.KindAgg, Subset: -1,
		Agg: &wire.AggIngest{Keys: []int32{0}, Vals: []float64{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Status != wire.IngestOK || rr.Subset < 0 || rr.Subset > 1 {
		t.Fatalf("round-robin ack = %+v", rr)
	}
}

// TestIngestNotEnabled pins the degradation contract: a component
// without an ingest handler answers IngestRejected instead of killing
// the connection, and the rejection travels back through the front
// server to the client.
func TestIngestNotEnabled(t *testing.T) {
	comps := buildAggComps(t, 1)
	_, addr := startServer(t, NewAggBackend(comps, BackendOptions{}), ServerOptions{})
	a, err := NewAggregator([]string{addr}, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	fs := NewFrontServer(a, nil, ServerOptions{})
	fs.EnableIngest(0)
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fs.Serve(fl)
	t.Cleanup(fs.Close)
	cl, err := DialClient(fl.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rep, err := cl.Ingest(ctx, &wire.IngestRequest{
		Kind: wire.KindAgg, Subset: 0,
		Agg: &wire.AggIngest{Keys: []int32{0}, Vals: []float64{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != wire.IngestRejected {
		t.Fatalf("ack = %+v, want IngestRejected", rep)
	}
	// The same connection still serves queries after the rejection.
	q := aggReq(agg.Sum, 0, math.Inf(1))
	q.SLO = wire.SLOExact
	if qrep, err := cl.Call(ctx, q); err != nil || qrep.Status != wire.ReplyOK {
		t.Fatalf("query after rejected ingest: %v %+v", err, qrep)
	}
}
