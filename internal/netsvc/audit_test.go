package netsvc

import (
	"context"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/audit"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/service"
	"accuracytrader/internal/wire"
)

// auditStack runs 4 component servers behind an audited front server
// (tracing + SLO tracking + fraction-1 sampling) and returns the client,
// front server, and auditor.
func auditStack(t *testing.T, cfg audit.Config) (*Client, *FrontServer, *audit.Auditor) {
	t.Helper()
	comps := buildAggComps(t, 4)
	addrs := make([]string, 4)
	for i := range addrs {
		// IMaxFrac caps Algorithm 1 improvement at one ranked set, so a
		// coarse-level answer stays genuinely approximate and the exact
		// replay has real error to measure.
		_, addrs[i] = startServer(t, NewAggBackend(comps, BackendOptions{IMaxFrac: 0.01}), ServerOptions{})
	}
	a, err := NewAggregator(addrs, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	if err := a.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	fs := NewFrontServer(a, nil, ServerOptions{Tracer: obs.NewRecorder(64, 16)})
	fs.EnableSLO(obs.NewSLOTracker(obs.SLOBudgets{}), nil)
	if cfg.SampleFraction == 0 {
		cfg.SampleFraction = 1
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Microsecond
	}
	auditor, err := fs.EnableAudit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(auditor.Close)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fs.Serve(l)
	t.Cleanup(fs.Close)
	cl, err := DialClient(l.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, fs, auditor
}

// boundedCoarseReq asks for a Bounded aggregation pinned to the
// coarsest ladder level, so the answer is genuinely approximate and the
// Exact replay has real error to measure.
func boundedCoarseReq(minAcc float64) *wire.Request {
	req := aggReq(agg.Sum, 0, math.Inf(1))
	req.SLO, req.MinAccuracy = wire.SLOBounded, minAcc
	req.Level = 0
	return req
}

// TestAuditEndToEnd drives approximate Bounded answers through the
// wire and asserts the auditor replays them exactly: verdicts land in
// the calibration tables, an unreachable floor is detected as a
// violation, the original trace is pinned, and the SLO tracker records
// the after-the-fact floor violation.
func TestAuditEndToEnd(t *testing.T) {
	cl, fs, auditor := auditStack(t, audit.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// A floor of 0.9999 is unreachable at the coarsest sampling rate:
	// every audited sample must come back a violation.
	const calls = 5
	for i := 0; i < calls; i++ {
		rep, err := cl.Call(ctx, boundedCoarseReq(0.9999))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status != wire.ReplyOK || rep.Cached {
			t.Fatalf("reply: %+v", rep)
		}
	}
	if !auditor.Drain(5 * time.Second) {
		t.Fatalf("auditor never drained: %+v", auditor.Stats())
	}
	st := auditor.Stats()
	if st.Sampled != calls || st.Audited != calls {
		t.Fatalf("stats = %+v, want %d sampled and audited", st, calls)
	}
	if st.Violations != calls {
		t.Fatalf("violations = %d, want %d (floor 0.9999 at the coarsest level)", st.Violations, calls)
	}
	tables := auditor.Tables()
	if len(tables) != 1 {
		t.Fatalf("tables = %+v", tables)
	}
	tab := tables[0]
	if tab.Workload != "agg" || tab.Level != wire.NoLevel || tab.Samples != calls {
		t.Fatalf("table: %+v", tab)
	}
	if tab.MeanRealized <= 0 || tab.MeanRealized >= 0.9999 {
		t.Fatalf("mean realized accuracy = %g, want approximate but below the floor", tab.MeanRealized)
	}

	// The verdicts pin the original traces as floor-violation anomalies.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ex := fs.Tracer().Exemplars(0)
		pinned := 0
		for _, v := range ex {
			if v.Anomaly&uint8(obs.AnomalyFloorViolation) != 0 {
				pinned++
			}
		}
		if pinned == calls {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pinned %d floor-violation exemplars, want %d: %+v", pinned, calls, ex)
		}
		time.Sleep(time.Millisecond)
	}
	// And the SLO tracker's after-the-fact dimension counts them without
	// inflating the request totals.
	total, _, floor, _ := fs.SLOTracker().Window(wire.SLOBounded, 2)
	if total != calls {
		t.Fatalf("SLO total = %d, want %d (floor violations must not double-count)", total, calls)
	}
	if floor != calls {
		t.Fatalf("SLO floor violations = %d, want %d", floor, calls)
	}
}

// TestAuditSkipsEpochSwappedSamples holds a sample at the gate while
// the data epoch swaps underneath it: the replay must be skipped as
// stale — never audited against newer data — and the accounting must
// still balance.
func TestAuditSkipsEpochSwappedSamples(t *testing.T) {
	var gateOpen atomic.Bool
	cl, fs, auditor := auditStack(t, audit.Config{
		Gate: func() bool { return gateOpen.Load() },
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if rep, err := cl.Call(ctx, boundedCoarseReq(0)); err != nil || rep.Status != wire.ReplyOK {
		t.Fatalf("call: %v %+v", err, rep)
	}
	// The sample is queued behind the closed gate. Swap the epoch, then
	// let the worker through.
	fs.NotifyEpochSwap(fs.DataEpoch() + 1)
	gateOpen.Store(true)
	if !auditor.Drain(5 * time.Second) {
		t.Fatalf("drain: %+v", auditor.Stats())
	}
	st := auditor.Stats()
	if st.Audited != 0 || st.SkippedStale != 1 {
		t.Fatalf("stats = %+v, want the sample skipped stale", st)
	}
	if st.Sampled != st.Audited+st.SkippedStale+st.ReplayErrs+st.Dropped {
		t.Fatalf("accounting broken: %+v", st)
	}

	// A request answered entirely after the swap audits normally.
	if rep, err := cl.Call(ctx, boundedCoarseReq(0)); err != nil || rep.Status != wire.ReplyOK {
		t.Fatalf("post-swap call: %v %+v", err, rep)
	}
	if !auditor.Drain(5 * time.Second) {
		t.Fatalf("drain: %+v", auditor.Stats())
	}
	if st := auditor.Stats(); st.Audited != 1 {
		t.Fatalf("post-swap stats = %+v, want 1 audited", st)
	}
}

// TestAuditorEpochSwapRace races live audited traffic against a stream
// of NotifyEpochSwap calls; run with -race. No replay may panic or
// audit across a swap, and the accounting invariant must hold exactly
// once everything settles.
func TestAuditorEpochSwapRace(t *testing.T) {
	cl, fs, auditor := auditStack(t, audit.Config{QueueLen: 512})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	stop := make(chan struct{})
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		epoch := uint64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs.NotifyEpochSwap(epoch)
			epoch++
			time.Sleep(200 * time.Microsecond)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				rep, err := cl.Call(ctx, boundedCoarseReq(0))
				if err != nil || rep.Status != wire.ReplyOK {
					t.Errorf("call: %v %+v", err, rep)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-swapDone
	// With the swaps stopped, a few quiet calls are guaranteed to be
	// sampled and audited cleanly.
	for i := 0; i < 5; i++ {
		if rep, err := cl.Call(ctx, boundedCoarseReq(0)); err != nil || rep.Status != wire.ReplyOK {
			t.Fatalf("quiet call: %v %+v", err, rep)
		}
	}
	if !auditor.Drain(10 * time.Second) {
		t.Fatalf("drain: %+v", auditor.Stats())
	}
	auditor.Close()
	st := auditor.Stats()
	if st.Sampled != st.Audited+st.SkippedStale+st.ReplayErrs+st.Dropped {
		t.Fatalf("accounting broken after swap race: %+v", st)
	}
	if st.Audited < 5 {
		t.Fatalf("audited = %d, want at least the 5 quiet samples", st.Audited)
	}
}

// TestAuditorSurvivesShutdown races the auditor's background replays
// against the front server's graceful drain; run with -race. Replays
// in flight during Shutdown must complete or fail cleanly — never
// panic — and closing the auditor afterward balances the books.
func TestAuditorSurvivesShutdown(t *testing.T) {
	cl, fs, auditor := auditStack(t, audit.Config{QueueLen: 512})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for i := 0; i < 20; i++ {
		rep, err := cl.Call(ctx, boundedCoarseReq(0))
		if err != nil || rep.Status != wire.ReplyOK {
			t.Fatalf("call: %v %+v", err, rep)
		}
	}
	// Drain the listener while the auditor is still replaying. The
	// replay path talks to the aggregator directly, not through the
	// listener, so pending audits either finish or error — no panics.
	if !fs.Shutdown(5 * time.Second) {
		t.Fatal("front server drain incomplete")
	}
	if !auditor.Drain(10 * time.Second) {
		t.Fatalf("drain: %+v", auditor.Stats())
	}
	auditor.Close()
	st := auditor.Stats()
	if st.Sampled != 20 {
		t.Fatalf("sampled = %d, want 20", st.Sampled)
	}
	if st.Sampled != st.Audited+st.SkippedStale+st.ReplayErrs+st.Dropped {
		t.Fatalf("accounting broken after shutdown: %+v", st)
	}
	// Submitting after Close stays safe and lands in dropped.
	auditor.Submit(&audit.Sample{TraceID: 1})
	if st := auditor.Stats(); st.Dropped == 0 && st.Sampled != 21 {
		t.Fatalf("post-close submit: %+v", st)
	}
}

// TestDegradedReplyPinnedAndRecorded pins the tail-retention contract
// end to end: a degraded reply (one subset lost under a partial
// fan-out) marks its trace anomalous, the exemplar survives healthy
// churn, and the SLO tracker counts the degraded signal.
func TestDegradedReplyPinnedAndRecorded(t *testing.T) {
	var lose atomic.Bool
	h := func(ctx context.Context, req *wire.Request) *wire.SubReply {
		if req.Subset == 0 && lose.Load() {
			return &wire.SubReply{Status: wire.StatusErr, Err: "injected fault", Level: wire.NoLevel}
		}
		return &wire.SubReply{Status: wire.StatusOK, Level: wire.NoLevel,
			Agg: &wire.AggResult{Sum: []float64{1}, Cnt: []float64{1}, SumVar: []float64{0.5}, CntVar: []float64{0}}}
	}
	addrs := make([]string, 4)
	for i := range addrs {
		_, addrs[i] = startServer(t, h, ServerOptions{})
	}
	a, err := NewAggregator(addrs, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	if err := a.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	fs := NewFrontServer(a, nil, ServerOptions{Tracer: obs.NewRecorder(4, 8)})
	fs.EnableSLO(obs.NewSLOTracker(obs.SLOBudgets{}), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fs.Serve(l)
	t.Cleanup(fs.Close)
	cl, err := DialClient(l.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	call := func(slo uint8) *wire.Reply {
		t.Helper()
		req := aggReq(agg.Sum, 0, math.Inf(1))
		req.SLO = slo
		rep, err := cl.Call(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	lose.Store(true)
	rep := call(wire.SLOBestEffort)
	if rep.Status != wire.ReplyDegraded {
		t.Fatalf("degraded reply: %+v", rep)
	}
	degradedID := rep.Trace
	if degradedID == 0 {
		t.Fatal("degraded reply carries no trace ID")
	}

	// Healthy traffic churns the (tiny) ring past the degraded slot.
	lose.Store(false)
	for i := 0; i < 10; i++ {
		if rep := call(wire.SLOBestEffort); rep.Status != wire.ReplyOK {
			t.Fatalf("healthy reply: %+v", rep)
		}
	}
	ex := fs.Tracer().Exemplars(0)
	if len(ex) != 1 || ex[0].ID != degradedID {
		t.Fatalf("degraded exemplar lost: %+v", ex)
	}
	if ex[0].Anomaly&uint8(obs.AnomalyDegraded) == 0 {
		t.Fatalf("exemplar reasons: %+v", ex[0])
	}
	// Healthy traces rotated; none were pinned.
	if got := fs.Tracer().PinnedTotal(); got != 1 {
		t.Fatalf("PinnedTotal = %d, want 1", got)
	}
	// The SLO tracker saw 11 BestEffort requests, 1 degraded.
	total, _, _, deg := fs.SLOTracker().Window(wire.SLOBestEffort, 2)
	if total != 11 || deg != 1 {
		t.Fatalf("SLO window: total %d degraded %d, want 11/1", total, deg)
	}
}
