package netsvc

import (
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/service"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/wire"
	"accuracytrader/internal/workload"
)

// startServer runs a component server on an ephemeral loopback port.
func startServer(t testing.TB, h Handler, opts ServerOptions) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(h, opts)
	go s.Serve(l)
	t.Cleanup(s.Close)
	return s, l.Addr().String()
}

// aggReq builds a whole-service aggregation request template.
func aggReq(op agg.Op, lo, hi float64) *wire.Request {
	return &wire.Request{
		Kind: wire.KindAgg, Subset: -1, SLO: wire.SLONone,
		Level: wire.NoLevel,
		Agg:   &wire.AggRequest{Op: uint8(op), Lo: lo, Hi: hi},
	}
}

// buildAggComps generates n fact-table shards and their ladders.
func buildAggComps(t testing.TB, n int) []*agg.Component {
	t.Helper()
	cfg := workload.DefaultFactsConfig()
	cfg.RowsPerSubset = 600
	cfg.Keys = 12
	cfg.Seed = 11
	data := workload.GenerateFacts(cfg, n)
	var comps []*agg.Component
	for _, tab := range data.Subsets {
		c, err := agg.BuildComponent(tab, agg.Config{Rates: []float64{0.1, 0.4}, MinSample: 4, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, c)
	}
	return comps
}

// TestDeadlinePropagation is the budget-propagation contract, both
// halves:
//
//  1. a request whose propagated absolute deadline has already passed
//     is answered Skipped without the handler ever running, and
//  2. a handler already mid-request abandons Algorithm 1 improvement
//     once the remaining budget is exhausted.
func TestDeadlinePropagation(t *testing.T) {
	comps := buildAggComps(t, 1)
	var handlerRuns atomic.Int64
	inner := NewAggBackend(comps, BackendOptions{UnitCost: 40 * time.Microsecond})
	h := func(ctx context.Context, req *wire.Request) *wire.SubReply {
		handlerRuns.Add(1)
		return inner(ctx, req)
	}
	srv, addr := startServer(t, h, ServerOptions{})
	agg1, err := NewAggregator([]string{addr}, AggregatorOptions{Policy: service.WaitAll, Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer agg1.Close()

	// (1) Expired on arrival: the server answers Skipped and never
	// invokes the handler.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-10*time.Millisecond))
	defer cancel()
	subs, err := agg1.Call(ctx, aggReq(agg.Sum, 0, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !subs[0].Skipped {
		t.Fatalf("expired request must come back skipped: %+v", subs[0])
	}
	deadlineWait := time.Now().Add(time.Second)
	for srv.Stats().Abandoned == 0 && time.Now().Before(deadlineWait) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.Stats().Abandoned; got != 1 {
		t.Fatalf("server abandoned = %d, want 1", got)
	}
	if handlerRuns.Load() != 0 {
		t.Fatalf("handler ran %d times for an expired request", handlerRuns.Load())
	}

	// (2) Budget exhausted mid-request: with the modeled cost, the full
	// improvement pass costs ~600 rows × 40µs = 24ms. A 3ms budget must
	// stop Algorithm 1 after at most a few strata, while a generous
	// budget improves every stratum.
	tight, cancel2 := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel2()
	subsTight, err := agg1.Call(tight, aggReq(agg.Sum, 0, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	loose, cancel3 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel3()
	subsLoose, err := agg1.Call(loose, aggReq(agg.Sum, 0, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	repLoose := subsLoose[0].Value.(*wire.SubReply)
	total := comps[0].Syn.NumStrata()
	if int(repLoose.SetsProcessed) != total {
		t.Fatalf("generous budget processed %d of %d strata", repLoose.SetsProcessed, total)
	}
	var setsTight uint32
	if rep, ok := subsTight[0].Value.(*wire.SubReply); ok {
		setsTight = rep.SetsProcessed
	} // else the whole sub-op was skipped: zero sets — also abandonment.
	if int(setsTight) >= total {
		t.Fatalf("3ms budget still processed all %d strata", total)
	}
}

// TestGatherPoliciesOverSockets pins the three gather policies'
// distinguishing behaviour on a fan-out with one deliberately slow
// component.
func TestGatherPoliciesOverSockets(t *testing.T) {
	const n = 3
	const slowSubset = 1
	const stall = 300 * time.Millisecond
	mkHandler := func(server int) Handler {
		return func(ctx context.Context, req *wire.Request) *wire.SubReply {
			// Interference lives on server slowSubset, so the hedge
			// replica (on another server) escapes it.
			if server == slowSubset {
				time.Sleep(stall)
			}
			return &wire.SubReply{
				Status: wire.StatusOK, Level: wire.NoLevel,
				Agg: &wire.AggResult{Sum: []float64{1}, Cnt: []float64{1}, SumVar: []float64{0}, CntVar: []float64{0}},
			}
		}
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		_, addrs[i] = startServer(t, mkHandler(i), ServerOptions{})
	}

	call := func(policy service.Policy, deadline time.Duration, hedgeFloor time.Duration) ([]service.SubResult, time.Duration, *Aggregator) {
		a, err := NewAggregator(addrs, AggregatorOptions{Policy: policy, Deadline: deadline, HedgeFloor: hedgeFloor})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(a.Close)
		t0 := time.Now()
		subs, err := a.Call(context.Background(), aggReq(agg.Sum, 0, 1))
		if err != nil {
			t.Fatal(err)
		}
		return subs, time.Since(t0), a
	}

	// WaitAll pays the straggler.
	subs, lat, _ := call(service.WaitAll, 2*time.Second, 0)
	if lat < stall {
		t.Fatalf("WaitAll finished in %v, before the %v straggler", lat, stall)
	}
	for i, sr := range subs {
		if sr.Err != nil || sr.Skipped {
			t.Fatalf("WaitAll sub %d: %+v", i, sr)
		}
	}

	// PartialGather composes at the deadline, skipping the straggler.
	subs, lat, _ = call(service.PartialGather, 80*time.Millisecond, 0)
	if lat >= stall {
		t.Fatalf("PartialGather took %v, did not cut at the deadline", lat)
	}
	if !subs[slowSubset].Skipped {
		t.Fatalf("PartialGather must skip the straggler: %+v", subs[slowSubset])
	}
	for i, sr := range subs {
		if i != slowSubset && (sr.Err != nil || sr.Skipped) {
			t.Fatalf("PartialGather sub %d: %+v", i, sr)
		}
	}

	// Hedged reissues the straggler's sub-operation on its replica and
	// the replica's reply wins well before the stall resolves.
	subs, lat, a := call(service.Hedged, 2*time.Second, 5*time.Millisecond)
	if lat >= stall {
		t.Fatalf("Hedged took %v, the replica did not win", lat)
	}
	if !subs[slowSubset].Hedged {
		t.Fatal("straggler sub-result must be marked hedged")
	}
	if a.Stats().Hedges == 0 {
		t.Fatal("hedge counter must move")
	}
}

// TestAggregatorReconnect kills the component server's listener-side
// connections and asserts the next call transparently re-dials.
func TestAggregatorReconnect(t *testing.T) {
	comps := buildAggComps(t, 1)
	h := NewAggBackend(comps, BackendOptions{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv := NewServer(h, ServerOptions{})
	go srv.Serve(l)

	a, err := NewAggregator([]string{addr}, AggregatorOptions{Policy: service.WaitAll, Deadline: time.Second, ConnsPerPeer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Call(context.Background(), aggReq(agg.Count, 0, math.Inf(1))); err != nil {
		t.Fatal(err)
	}

	// Bounce the server: old connections die, a new listener takes the
	// same address.
	srv.Close()
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(h, ServerOptions{})
	go srv2.Serve(l2)
	t.Cleanup(srv2.Close)

	var subs []service.SubResult
	ok := false
	for attempt := 0; attempt < 20 && !ok; attempt++ {
		subs, err = a.Call(context.Background(), aggReq(agg.Count, 0, math.Inf(1)))
		if err != nil {
			t.Fatal(err)
		}
		ok = subs[0].Err == nil && !subs[0].Skipped
	}
	if !ok {
		t.Fatalf("call after server bounce never recovered: %+v", subs[0])
	}
	if a.Stats().Reconnects == 0 {
		t.Fatal("reconnect counter must move")
	}
}

// TestServerShedsAtQueueBound fills the single worker with a stalled
// job plus a full queue and asserts the overflow is answered
// StatusBusy instead of buffering invisibly.
func TestServerShedsAtQueueBound(t *testing.T) {
	release := make(chan struct{})
	h := func(ctx context.Context, req *wire.Request) *wire.SubReply {
		<-release
		return &wire.SubReply{Status: wire.StatusOK, Level: wire.NoLevel,
			Agg: &wire.AggResult{Sum: []float64{0}, Cnt: []float64{0}, SumVar: []float64{0}, CntVar: []float64{0}}}
	}
	srv, addr := startServer(t, h, ServerOptions{Workers: 1, QueueLen: 1})
	defer close(release)
	a, err := NewAggregator([]string{addr}, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var busy atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			defer cancel()
			subs, err := a.Call(ctx, aggReq(agg.Sum, 0, 1))
			if err != nil {
				return
			}
			if subs[0].Err != nil && !errors.Is(subs[0].Err, context.DeadlineExceeded) {
				busy.Add(1)
			}
		}()
	}
	wg.Wait()
	if busy.Load() == 0 {
		t.Fatalf("no request was shed busy (server stats: %+v)", srv.Stats())
	}
	if srv.Stats().Shed == 0 {
		t.Fatal("server shed counter must move")
	}
}

// TestEndToEndComposedReply runs client → front server (with frontend)
// → component servers over loopback sockets and asserts the composed
// aggregation answer is bit-identical to the same composition done in
// process, that SLO classes round-trip (Exact bypasses the synopsis),
// and that the frontend's level selection is reported back.
func TestEndToEndComposedReply(t *testing.T) {
	const n = 3
	comps := buildAggComps(t, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		_, addrs[i] = startServer(t, NewAggBackend(comps, BackendOptions{}), ServerOptions{})
	}
	a, err := NewAggregator(addrs, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctrl, err := frontend.NewController(frontend.ControllerConfig{
		Levels:        comps[0].Syn.Levels(),
		LevelAccuracy: []float64{0.8, 0.97},
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := frontend.New(a, frontend.Options{Controller: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFrontServer(a, fe, ServerOptions{})
	go fs.Serve(fl)
	t.Cleanup(fs.Close)
	cl, err := DialClient(fl.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Exact-class request: every component bypasses its synopsis, so
	// the composed answer equals the exact merged answer bit for bit.
	q := agg.Query{Op: agg.Sum, Lo: 0, Hi: math.Inf(1)}
	req := aggReq(q.Op, q.Lo, q.Hi)
	req.SLO = wire.SLOExact
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rep, err := cl.Call(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != wire.ReplyOK {
		t.Fatalf("reply status %d err %q", rep.Status, rep.Err)
	}
	if rep.SLO != wire.SLOExact {
		t.Fatalf("effective SLO %d, want Exact", rep.SLO)
	}
	exact := agg.NewResult(comps[0].T.NumKeys())
	for _, c := range comps {
		exact.Merge(agg.ExactResult(c, q))
	}
	got := AggResultOf(rep.Agg)
	for k := range exact.Sum {
		if got.Sum[k] != exact.Sum[k] || got.Cnt[k] != exact.Cnt[k] {
			t.Fatalf("key %d: network (%v,%v) != in-process (%v,%v)",
				k, got.Sum[k], got.Cnt[k], exact.Sum[k], exact.Cnt[k])
		}
	}
	for _, st := range rep.SubStatus {
		if st != wire.StatusOK {
			t.Fatalf("sub statuses %v", rep.SubStatus)
		}
	}

	// Best-effort request at idle load: the controller must select the
	// finest level and the composed reply must report it.
	req2 := aggReq(q.Op, q.Lo, q.Hi)
	req2.SLO = wire.SLOBestEffort
	rep2, err := cl.Call(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Status != wire.ReplyOK {
		t.Fatalf("reply2 status %d err %q", rep2.Status, rep2.Err)
	}
	if want := int16(comps[0].Syn.Levels() - 1); rep2.Level != want {
		t.Fatalf("reported level %d, want finest %d", rep2.Level, want)
	}
	if rep2.Agg == nil || len(rep2.Agg.Sum) != comps[0].T.NumKeys() {
		t.Fatalf("approximate composed reply malformed: %+v", rep2.Agg)
	}
}

// TestTemplateSLOSurvivesBareAggregator asserts a client-stamped SLO
// class reaches components through an aggregator with no frontend: an
// Exact-class request must take the exact-scan path, not the synopsis.
func TestTemplateSLOSurvivesBareAggregator(t *testing.T) {
	comps := buildAggComps(t, 1)
	_, addr := startServer(t, NewAggBackend(comps, BackendOptions{}), ServerOptions{})
	a, err := NewAggregator([]string{addr}, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	q := agg.Query{Op: agg.Sum, Lo: 0, Hi: math.Inf(1)}
	req := aggReq(q.Op, q.Lo, q.Hi)
	req.SLO = wire.SLOExact
	subs, err := a.Call(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	rep := subs[0].Value.(*wire.SubReply)
	exact := agg.ExactResult(comps[0], q)
	got := AggResultOf(rep.Agg)
	for k := range exact.Sum {
		if got.Sum[k] != exact.Sum[k] || got.SumVar[k] != 0 {
			t.Fatalf("key %d: Exact-class answer not exact: got %v (var %v) want %v",
				k, got.Sum[k], got.SumVar[k], exact.Sum[k])
		}
	}
}

// TestBackendWrongWorkload asserts a mismatched payload is a clean
// error sub-reply, not a panic.
func TestBackendWrongWorkload(t *testing.T) {
	comps := buildAggComps(t, 1)
	h := NewAggBackend(comps, BackendOptions{})
	rep := h(context.Background(), &wire.Request{Kind: wire.KindSearch, Subset: 0,
		SLO: wire.SLONone, Level: wire.NoLevel, Search: &wire.SearchRequest{Query: "x", K: 3}})
	if rep.Status != wire.StatusErr {
		t.Fatalf("wrong-workload request must error, got %+v", rep)
	}
}

// TestFrontendBackendSeam pins the compile-time contract that both
// runtimes satisfy the frontend's Backend seam.
func TestFrontendBackendSeam(t *testing.T) {
	var _ frontend.Backend = (*Aggregator)(nil)
	var _ frontend.Backend = (*service.Cluster)(nil)
}

// TestOpenLoopFiresConcurrently asserts the generator is open-loop: a
// slow request must not throttle later arrivals.
func TestOpenLoopFiresConcurrently(t *testing.T) {
	var max atomic.Int64
	var cur atomic.Int64
	n := OpenLoop(stats.NewRNG(9), 400, 150*time.Millisecond, func(i int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(30 * time.Millisecond)
		cur.Add(-1)
	})
	if n < 10 {
		t.Fatalf("only %d arrivals fired", n)
	}
	if max.Load() < 2 {
		t.Fatal("arrivals never overlapped — generator is closed-loop")
	}
}
