// Package netsvc is the networked serving layer: the paper's
// deployment model — an aggregator fanning each request out to many
// component sub-services — realized over real TCP sockets instead of
// in-process goroutine mailboxes (internal/service).
//
// The pieces, bottom up:
//
//   - Server: a component server — one listener, a bounded accept and
//     worker pool, and per-request deadline enforcement: a request
//     whose propagated absolute deadline (wire.Request.Deadline) has
//     already passed is answered Skipped without touching the handler,
//     and handlers run under a context carrying the remaining budget
//     so Algorithm 1 abandons improvement the moment it is exhausted.
//   - Aggregator: the scatter/gather client — pooled persistent
//     connections per component with transparent reconnect, and the
//     same gather policies as the in-process runtime (service.WaitAll,
//     service.PartialGather, service.Hedged) executed over sockets,
//     including the P²-estimated p95 hedge trigger. It implements
//     frontend.Backend, so the accuracy-aware frontend's admission,
//     replica routing, and degradation policies drive it unchanged.
//   - FrontServer: an aggregator process's client-facing listener: it
//     accepts whole-service wire.Requests, runs them through the
//     frontend pipeline, merges the sub-results with the application
//     composers (additive for CF and aggregation — bounds-aware via
//     the carried variances — top-k for search), and answers with a
//     composed wire.Reply recording what was delivered.
//   - Backends: per-workload component handlers wrapping the pooled
//     application engines, with an optional modeled per-point scan
//     cost and a co-located-interference hook so laptop-scale loopback
//     deployments exhibit cluster-shaped tails.
//   - OpenLoop: the open-loop Poisson load generator used by the
//     netcompare experiment and the distributed example.
package netsvc
