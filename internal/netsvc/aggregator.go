package netsvc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accuracytrader/internal/breaker"
	"accuracytrader/internal/cost"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/service"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/wire"
)

// ErrClosed is returned by Aggregator.Call after Close.
var ErrClosed = errors.New("netsvc: aggregator closed")

// ErrQueueFull is reported for a sub-operation shed because the target
// component's outstanding-request window was full — the network analog
// of service.ErrQueueFull.
var ErrQueueFull = errors.New("netsvc: component outstanding window full")

// ErrPeerDown is reported for a sub-operation refused fast because the
// target component's circuit breaker is not closed (or its dial
// backoff window has not elapsed): the peer is known-unhealthy, so the
// sub-operation fails immediately instead of waiting out a timeout and
// is eligible for rerouting under the retry budget.
var ErrPeerDown = errors.New("netsvc: peer circuit open")

// AggregatorOptions configures an Aggregator.
type AggregatorOptions struct {
	// Policy selects the gather behaviour — the same policies as the
	// in-process runtime (service.WaitAll, service.PartialGather,
	// service.Hedged), executed over sockets.
	Policy service.Policy
	// Deadline bounds gathering for PartialGather and is the default
	// Call timeout otherwise (default 1s).
	Deadline time.Duration
	// MaxOutstanding caps in-flight sub-operations per component — the
	// QueueCap/QueueDepth bound the frontend's load snapshot and queue
	// watermarks act on (default 128).
	MaxOutstanding int
	// ConnsPerPeer is the connection-pool width per component (default
	// 2). Requests are multiplexed by ID, so the pool mainly spreads
	// TCP-level head-of-line blocking.
	ConnsPerPeer int
	// HedgeFloor is the minimum hedge delay before the p95 estimator
	// has warmed up (default 1ms).
	HedgeFloor time.Duration
	// ReplicaOf maps a subset to the component executing its hedged
	// replica (default: next component).
	ReplicaOf func(subset, n int) int
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// MaxFrame bounds accepted reply frames (default wire.MaxFrame).
	MaxFrame int
	// Dial overrides the transport dial (default net.DialTimeout over
	// TCP) — the seam fault injection and connection tests hook.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Breaker configures the per-peer circuit breakers; zero fields
	// take the breaker package defaults (trip after 3 consecutive
	// failures, 200ms cooldown).
	Breaker breaker.Config
	// RedialBase and RedialMax bound the capped exponential dial
	// backoff with jitter that replaces immediate redialing (defaults
	// 10ms and 500ms). RedialMax also bounds how long a healed peer
	// waits for its next background probe.
	RedialBase time.Duration
	RedialMax  time.Duration
	// RetryBudget caps how many times one sub-operation may be
	// re-dispatched onto a healthy peer after a peer-level failure
	// (dial error, connection failure, open breaker), always within
	// the propagated deadline. Default 1; negative disables retries.
	RetryBudget int
	// Seed drives backoff jitter deterministically (default 1).
	Seed uint64
	// Metrics, when set, publishes per-peer breaker state gauges,
	// breaker transition counters, and retry/fault counters.
	Metrics *obs.Registry
}

func (o AggregatorOptions) withDefaults() AggregatorOptions {
	if o.Deadline <= 0 {
		o.Deadline = time.Second
	}
	if o.MaxOutstanding <= 0 {
		o.MaxOutstanding = 128
	}
	if o.ConnsPerPeer <= 0 {
		o.ConnsPerPeer = 2
	}
	if o.HedgeFloor <= 0 {
		o.HedgeFloor = time.Millisecond
	}
	if o.ReplicaOf == nil {
		o.ReplicaOf = func(subset, n int) int { return (subset + 1) % n }
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.MaxFrame
	}
	if o.Dial == nil {
		o.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if o.RedialBase <= 0 {
		o.RedialBase = 10 * time.Millisecond
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 500 * time.Millisecond
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 1
	}
	if o.RetryBudget < 0 {
		o.RetryBudget = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// AggregatorStats are the aggregator's scatter/gather counters.
type AggregatorStats struct {
	SubOps       int   // sub-replies received
	Hedges       int64 // replicas issued
	Reconnects   int64 // re-dials after a connection failure
	Retries      int64 // sub-operations re-dispatched after peer failure
	Faults       int64 // peer-level failures (dial, conn, timeout)
	BreakerOpens int64 // cumulative breaker trips across peers
	P999Ms       float64
}

// Aggregator is the scatter/gather client over n component servers:
// the networked counterpart of service.Cluster, implementing
// frontend.Backend so the accuracy-aware frontend drives it unchanged.
type Aggregator struct {
	addrs  []string
	opts   AggregatorOptions
	peers  []*peer
	nextID atomic.Uint64

	mu     sync.Mutex
	route  service.RouteFunc
	closed bool

	// Streaming sub-operation latency estimators (P², as in service).
	estMu   sync.Mutex
	p95est  *stats.P2Quantile
	p999est *stats.P2Quantile
	subOps  int
	p95us   atomic.Uint64

	hedges   atomic.Int64
	retries  atomic.Int64
	faults   atomic.Int64
	inflight atomic.Int64

	// ingestRR round-robins unrouted append batches across components.
	ingestRR atomic.Uint64

	mRetries *obs.Counter
	mFaults  *obs.Counter
	mIngests *obs.Counter
}

// NewAggregator returns an aggregator over one address per component.
// Connections are dialed lazily; use WaitReady to block until every
// component answers.
func NewAggregator(addrs []string, opts AggregatorOptions) (*Aggregator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("netsvc: no component addresses")
	}
	opts = opts.withDefaults()
	a := &Aggregator{
		addrs:   addrs,
		opts:    opts,
		p95est:  stats.NewP2Quantile(0.95),
		p999est: stats.NewP2Quantile(0.999),
	}
	a.p95us.Store(uint64(opts.HedgeFloor / time.Microsecond))
	if opts.Metrics != nil {
		a.mRetries = opts.Metrics.Counter("netsvc_retries_total")
		a.mFaults = opts.Metrics.Counter("netsvc_faults_total")
		a.mIngests = opts.Metrics.Counter("netsvc_ingest_forwarded_total")
	}
	for i, addr := range addrs {
		p := &peer{
			agg:     a,
			addr:    addr,
			idx:     i,
			slots:   make([]*peerConn, opts.ConnsPerPeer),
			backoff: breaker.NewBackoff(opts.RedialBase, opts.RedialMax, opts.Seed+uint64(i)*0x9e3779b97f4a7c15),
			closeCh: make(chan struct{}),
		}
		bcfg := opts.Breaker
		userHook := bcfg.OnStateChange
		var transitions [3]*obs.Counter
		if opts.Metrics != nil {
			m := opts.Metrics
			for s, label := range map[breaker.State]string{
				breaker.Closed: "closed", breaker.Open: "open", breaker.HalfOpen: "half_open",
			} {
				transitions[s] = m.Counter(fmt.Sprintf(`netsvc_breaker_transitions_total{peer=%q,state=%q}`, addr, label))
			}
			m.GaugeFunc(fmt.Sprintf(`netsvc_breaker_state{peer=%q}`, addr), func() float64 {
				return float64(p.br.State())
			})
		}
		bcfg.OnStateChange = func(s breaker.State) {
			if s == breaker.Open {
				// A tripped breaker starts the background prober even when
				// the pooled connections are still nominally alive (a
				// stalled or partitioned peer), so recovery never depends
				// on fresh request traffic.
				p.kickReconnector()
			}
			if transitions[s] != nil {
				transitions[s].Inc()
			}
			if userHook != nil {
				userHook(s)
			}
		}
		p.br = breaker.New(bcfg)
		a.peers = append(a.peers, p)
	}
	return a, nil
}

// WaitReady dials every component until it answers or the timeout
// elapses — the race-free way to start an aggregator before its
// component processes are certain to be listening.
func (a *Aggregator) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, p := range a.peers {
		for {
			_, err := p.conn()
			if err == nil {
				break
			}
			if !time.Now().Before(deadline) {
				return fmt.Errorf("netsvc: component %s not ready: %w", p.addr, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

// Components returns the fan-out width.
func (a *Aggregator) Components() int { return len(a.peers) }

// QueueCap returns the per-component outstanding window
// (AggregatorOptions.MaxOutstanding).
func (a *Aggregator) QueueCap() int { return a.opts.MaxOutstanding }

// QueueDepth returns the sub-operations currently outstanding on one
// component — the aggregator-side load signal admission and routing
// policies act on.
func (a *Aggregator) QueueDepth(comp int) int {
	return int(a.peers[comp].outstanding.Load())
}

// Inflight returns the number of Calls currently executing.
func (a *Aggregator) Inflight() int { return int(a.inflight.Load()) }

// EstimatedP95 returns the streaming 95th-percentile sub-operation
// latency estimate (the hedge trigger delay).
func (a *Aggregator) EstimatedP95() time.Duration {
	return time.Duration(a.p95us.Load()) * time.Microsecond
}

// Deadline returns the configured call deadline.
func (a *Aggregator) Deadline() time.Duration { return a.opts.Deadline }

// Ingest forwards one append batch to its owning component and waits
// for the acknowledgement. Unlike query sub-operations, an append is
// never rerouted to a healthier peer — the rows have exactly one home
// shard, and staging them elsewhere would silently fork the dataset —
// so an unhealthy owner rejects the batch immediately (IngestRejected)
// and the producer retries later. A request with Subset < 0 is
// assigned a component round-robin. The returned reply always carries
// the caller's ID and the subset the batch landed on; it is never nil.
func (a *Aggregator) Ingest(ctx context.Context, req *wire.IngestRequest) *wire.IngestReply {
	fail := func(status uint8, msg string) *wire.IngestReply {
		return &wire.IngestReply{ID: req.ID, Subset: req.Subset, Status: status, Err: msg}
	}
	a.mu.Lock()
	closed := a.closed
	a.mu.Unlock()
	if closed {
		return fail(wire.IngestErr, ErrClosed.Error())
	}
	n := len(a.peers)
	sub := *req
	sub.ID = a.nextID.Add(1)
	if sub.Subset < 0 {
		sub.Subset = int32((a.ingestRR.Add(1) - 1) % uint64(n))
	}
	target := int(sub.Subset) % n
	p := a.peers[target]
	if !p.healthy() {
		return fail(wire.IngestRejected, ErrPeerDown.Error())
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.opts.Deadline)
		defer cancel()
	}
	type ack struct {
		rep *wire.IngestReply
		err error
	}
	// Buffered so a late delivery after the deadline never blocks the
	// connection's read loop.
	ch := make(chan ack, 1)
	p.sendIngest(&sub, func(rep *wire.IngestReply, err error) {
		select {
		case ch <- ack{rep, err}:
		default:
		}
	})
	select {
	case <-ctx.Done():
		return fail(wire.IngestErr, ctx.Err().Error())
	case got := <-ch:
		if got.err != nil {
			if !errors.Is(got.err, ErrClosed) && !errors.Is(got.err, ErrPeerDown) {
				a.recordFault(nil, target, sub.Subset)
			}
			return fail(wire.IngestErr, got.err.Error())
		}
		p.br.Success()
		if a.mIngests != nil {
			a.mIngests.Inc()
		}
		out := *got.rep
		out.ID = req.ID
		out.Subset = sub.Subset
		return &out
	}
}

// SetRouter injects a routing policy used by subsequent Calls to place
// each sub-operation on a component; nil restores home placement.
func (a *Aggregator) SetRouter(route service.RouteFunc) {
	a.mu.Lock()
	a.route = route
	a.mu.Unlock()
}

// OpenBreakers returns the addresses of peers whose circuit breaker is
// not closed — the degraded-health signal /healthz exposes.
func (a *Aggregator) OpenBreakers() []string {
	var open []string
	for _, p := range a.peers {
		if p.br.State() != breaker.Closed {
			open = append(open, p.addr)
		}
	}
	return open
}

// BreakerState returns one component's breaker state.
func (a *Aggregator) BreakerState(comp int) breaker.State {
	return a.peers[comp].br.State()
}

// Stats returns a snapshot of the aggregator's counters.
func (a *Aggregator) Stats() AggregatorStats {
	var reconnects, opens int64
	for _, p := range a.peers {
		reconnects += p.reconnects.Load()
		opens += p.br.Opens()
	}
	a.estMu.Lock()
	defer a.estMu.Unlock()
	st := AggregatorStats{
		SubOps:       a.subOps,
		Hedges:       a.hedges.Load(),
		Reconnects:   reconnects,
		Retries:      a.retries.Load(),
		Faults:       a.faults.Load(),
		BreakerOpens: opens,
	}
	if st.SubOps > 0 {
		st.P999Ms = a.p999est.Value()
	}
	return st
}

func (a *Aggregator) recordLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	a.estMu.Lock()
	a.subOps++
	a.p95est.Add(ms)
	a.p999est.Add(ms)
	// Cold-start guard + warm-phase cadence (see stats.HedgeEstimateDue):
	// with fewer than five observations the P² "p95" is an interpolation
	// over noise, so the hedge delay holds HedgeFloor instead of firing
	// replicas at a garbage threshold.
	if stats.HedgeEstimateDue(a.subOps) {
		p := a.p95est.Value()
		floor := float64(a.opts.HedgeFloor) / float64(time.Millisecond)
		if p < floor {
			p = floor
		}
		a.p95us.Store(uint64(p * 1000))
	}
	a.estMu.Unlock()
}

// recordFault counts one peer-level failure (dial, connection, or
// timeout) into the peer's breaker and the fault counters, recording a
// breaker-trip span when this failure is the one that opened it.
func (a *Aggregator) recordFault(tr *obs.Trace, target int, subset int32) {
	a.faults.Add(1)
	if a.mFaults != nil {
		a.mFaults.Inc()
	}
	if a.peers[target].br.Fail() {
		tr.Add(obs.SpanBreakerTrip, subset, time.Now(), 0, int64(target))
	}
}

// nextHealthy returns the first other component after from (wrapping)
// whose breaker is closed, or from itself when no other peer is
// healthy.
func (a *Aggregator) nextHealthy(from int) int {
	n := len(a.peers)
	for k := 1; k < n; k++ {
		i := (from + k) % n
		if a.peers[i].healthy() {
			return i
		}
	}
	return from
}

// Call fans the request template out to every component and gathers
// sub-results according to the gather policy. payload must be a
// *wire.Request with the payload fields set; the aggregator stamps
// per-sub-operation IDs, the subset, the absolute deadline from the
// context, and the frontend-selected SLO class and ladder level (read
// from the context via the frontend package's conventions). The
// returned slice has one entry per subset in subset order; Value holds
// the *wire.SubReply of answered sub-operations.
//
// Failure handling: sub-operations on a peer whose breaker is open
// fail fast with ErrPeerDown; peer-level failures are re-dispatched to
// a healthy peer while the retry budget and the propagated deadline
// allow; what still fails surfaces as an errored SubResult for the
// compose path's accuracy-aware degradation.
func (a *Aggregator) Call(ctx context.Context, payload interface{}) ([]service.SubResult, error) {
	tmpl, ok := payload.(*wire.Request)
	if !ok {
		return nil, fmt.Errorf("netsvc: Call payload must be *wire.Request, got %T", payload)
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, ErrClosed
	}
	route := a.route
	a.mu.Unlock()
	a.inflight.Add(1)
	defer a.inflight.Add(-1)
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.opts.Deadline)
		defer cancel()
	}
	dl, _ := ctx.Deadline()
	// The frontend's context values override the template's class and
	// level; without a frontend the request's own fields stand, so a
	// client-stamped SLO survives an aggregator that runs bare.
	level := tmpl.Level
	if lv, ok := frontend.LevelFrom(ctx); ok {
		level = int16(lv)
	}
	slo, minAcc := tmpl.SLO, tmpl.MinAccuracy
	if s, ok := frontend.SLOFrom(ctx); ok {
		slo, minAcc = uint8(s.Kind), s.MinAccuracy
	}
	// The active trace (nil when untraced) is threaded to every dispatch
	// so the CAS-winning delivery records its sub-operation span and
	// stitches the server-side spans off the wire.
	tr := obs.TraceFrom(ctx)
	// The request's cost account (nil when attribution is off): the
	// gather loop folds each sub-reply's span costs and frame bytes in,
	// so the front server's closer sees the whole fan-out's usage.
	acct := cost.AccountFrom(ctx)

	n := len(a.peers)
	reply := make(chan service.SubResult, 2*n)
	dones := make([]*atomic.Bool, n)
	targets := make([]int, n)
	var timers []*time.Timer
	for i := 0; i < n; i++ {
		dones[i] = &atomic.Bool{}
		sub := *tmpl
		sub.ID = a.nextID.Add(1)
		sub.Seq = tmpl.ID // correlate sub-operations with their parent request
		sub.Subset = int32(i)
		// The call deadline only ever tightens a deadline the request
		// already carries (a client-side l_spe): each hop propagates the
		// strictest absolute budget downward.
		if sub.Deadline == 0 || dl.UnixNano() < sub.Deadline {
			sub.Deadline = dl.UnixNano()
		}
		sub.Level = level
		sub.SLO, sub.MinAccuracy = slo, minAcc
		sub.Trace = tr.ID() // nil-safe: 0 propagates "untraced"
		target := i
		if route != nil {
			if t := route(i, n, a.QueueDepth); t >= 0 && t < n {
				target = t
			}
		}
		// Health-aware routing: an open-breaker peer is evicted from the
		// route set when any healthy peer exists (every component server
		// holds all shards, so placement is a latency choice, not a
		// correctness one).
		if !a.peers[target].healthy() {
			target = a.nextHealthy(target)
		}
		targets[i] = target
		hedged := &atomic.Bool{}
		a.dispatch(tr, target, &sub, dones[i], hedged, reply, true)
		if a.opts.Policy == service.Hedged {
			timers = append(timers, a.armHedge(tr, sub, target, dones[i], hedged, reply))
		}
	}
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	out := make([]service.SubResult, n)
	got := make([]bool, n)
	remaining := n
	var deadlineC <-chan time.Time
	if a.opts.Policy == service.PartialGather {
		t := time.NewTimer(time.Until(dl))
		defer t.Stop()
		deadlineC = t.C
	}
	for remaining > 0 {
		select {
		case r := <-reply:
			if !got[r.Subset] {
				got[r.Subset] = true
				out[r.Subset] = r
				remaining--
				if acct != nil {
					if rep, ok := r.Value.(*wire.SubReply); ok {
						for _, sp := range rep.Spans {
							acct.Add(cost.Usage{
								CPUNs:     sp.Cost.CPUNs,
								Scanned:   sp.Cost.Scanned,
								QueueNs:   sp.Cost.QueueNs,
								WireBytes: sp.Cost.WireBytes,
							})
						}
						// The sub-reply frame's own bytes; the matching
						// sub-request frame was counted by the component
						// server (the exec span's WireBytes).
						acct.AddWireBytes(uint64(rep.FrameLen))
					}
				}
			}
		case <-deadlineC:
			// Partial execution: compose without the stragglers. Their
			// servers keep working unless the propagated deadline stops
			// them first; late replies are dropped via the done flags.
			for i := range got {
				if !got[i] {
					dones[i].Store(true)
					out[i] = service.SubResult{Subset: i, Skipped: true}
					remaining--
					// A sub-operation that never answered within the budget
					// is failure evidence against its target: consecutive
					// timeouts trip the breaker (a stalled or partitioned
					// peer produces nothing else).
					a.recordFault(tr, targets[i], int32(i))
				}
			}
		case <-ctx.Done():
			expired := errors.Is(ctx.Err(), context.DeadlineExceeded)
			for i := range got {
				if !got[i] {
					dones[i].Store(true)
					out[i] = service.SubResult{Subset: i, Err: ctx.Err(), Skipped: true}
					remaining--
					// Deadline expiry indicts the peer; caller cancellation
					// does not.
					if expired {
						a.recordFault(tr, targets[i], int32(i))
					}
				}
			}
		}
	}
	return out, nil
}

// dispatch sends one sub-operation to a component. primary outcomes
// are always delivered (first-wins); hedge outcomes are delivered only
// when the replica actually answered OK, so a failed or shed replica
// can never displace the primary's pending reply.
func (a *Aggregator) dispatch(tr *obs.Trace, target int, sub *wire.Request, done, hedged *atomic.Bool, reply chan<- service.SubResult, primary bool) {
	a.dispatchAttempt(tr, target, sub, done, hedged, reply, primary, 0)
}

// dispatchAttempt is one placement of a sub-operation; peer-level
// failures recurse onto a healthy peer while the retry budget and the
// propagated deadline allow.
func (a *Aggregator) dispatchAttempt(tr *obs.Trace, target int, sub *wire.Request, done, hedged *atomic.Bool, reply chan<- service.SubResult, primary bool, attempt int) {
	p := a.peers[target]
	subset := int(sub.Subset)
	// deliverErr resolves this attempt with an error. retryable marks
	// peer-level failures (dial, connection, open breaker) that another
	// peer could still answer; shed and server-reported errors are not.
	deliverErr := func(err error, skipped, retryable bool) {
		if !primary {
			return
		}
		if retryable && attempt < a.opts.RetryBudget && !done.Load() &&
			(sub.Deadline == 0 || time.Now().UnixNano() < sub.Deadline) {
			next := target
			if !p.healthy() {
				next = a.nextHealthy(target)
			}
			if next != target || p.healthy() {
				a.retries.Add(1)
				if a.mRetries != nil {
					a.mRetries.Inc()
				}
				tr.Add(obs.SpanRetry, sub.Subset, time.Now(), 0, int64(next))
				clone := *sub
				clone.ID = a.nextID.Add(1)
				a.dispatchAttempt(tr, next, &clone, done, hedged, reply, primary, attempt+1)
				return
			}
		}
		if done.CompareAndSwap(false, true) {
			reply <- service.SubResult{Subset: subset, Err: err, Skipped: skipped, Hedged: hedged.Load()}
		}
	}
	if !p.healthy() {
		// Fail fast instead of waiting out a timeout against a peer the
		// breaker already condemned. Recovery is the reconnector's job,
		// so known-unhealthy peers cost nothing per request.
		deliverErr(ErrPeerDown, false, true)
		return
	}
	if p.outstanding.Add(1) > int64(a.opts.MaxOutstanding) {
		p.outstanding.Add(-1)
		deliverErr(ErrQueueFull, false, false)
		return
	}
	start := time.Now()
	p.send(sub, func(rep *wire.SubReply, err error) {
		p.outstanding.Add(-1)
		if err != nil {
			if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrPeerDown) {
				a.recordFault(tr, target, sub.Subset)
			}
			deliverErr(err, false, true)
			return
		}
		// Any decoded reply — OK, skipped, or busy — is proof of life.
		p.br.Success()
		lat := time.Since(start)
		a.recordLatency(lat)
		switch rep.Status {
		case wire.StatusOK:
			if done.CompareAndSwap(false, true) {
				if tr != nil {
					// Only the winning delivery records: one SpanSubOp per
					// subset, even when a hedge raced the primary. The
					// server-side queue/exec spans that travelled back in
					// the sub-reply are stitched under the same subset.
					tr.Add(obs.SpanSubOp, int32(subset), start, lat, int64(target))
					for _, sp := range rep.Spans {
						kind := obs.SpanServerQueue
						if sp.Kind == wire.SpanExec {
							kind = obs.SpanServerExec
						}
						tr.AddRemote(kind, int32(subset), sp.Start, sp.Dur)
					}
				}
				reply <- service.SubResult{Subset: subset, Value: rep, Latency: lat, Hedged: hedged.Load()}
			}
		case wire.StatusSkipped:
			// A skipped reply means the propagated budget is gone: any
			// later reply would be past-deadline too, so a replica's
			// skip resolves the subset just like a primary's.
			if done.CompareAndSwap(false, true) {
				reply <- service.SubResult{Subset: subset, Skipped: true, Latency: lat, Hedged: hedged.Load()}
			}
		case wire.StatusBusy:
			// A server-side shed is the same condition as the
			// aggregator-side outstanding window: report the sentinel so
			// composed replies classify it StatusBusy, not a generic
			// error.
			deliverErr(ErrQueueFull, false, false)
		default:
			deliverErr(fmt.Errorf("netsvc: component %d: %s", target, rep.Err), false, false)
		}
	})
}

// armHedge schedules the reissue check for one sub-operation.
func (a *Aggregator) armHedge(tr *obs.Trace, sub wire.Request, target int, done, hedged *atomic.Bool, reply chan<- service.SubResult) *time.Timer {
	return time.AfterFunc(a.EstimatedP95(), func() {
		if done.Load() {
			return
		}
		rc := a.opts.ReplicaOf(int(sub.Subset), len(a.peers))
		if !a.peers[rc].healthy() {
			// Hedging into an open breaker buys nothing; place the
			// replica on the next healthy peer instead.
			rc = a.nextHealthy(rc)
		}
		if rc == target {
			// A replica behind the very sub-operation it hedges would
			// queue after it — skip, as in the in-process runtime.
			return
		}
		// Mark before sending so the replica's own reply (which may win
		// immediately) already observes the flag.
		hedged.Store(true)
		clone := sub
		clone.ID = a.nextID.Add(1)
		a.hedges.Add(1)
		tr.Add(obs.SpanHedge, sub.Subset, time.Now(), 0, int64(rc))
		a.dispatch(tr, rc, &clone, done, hedged, reply, false)
	})
}

// Close tears down every connection; Call returns ErrClosed afterwards
// and outstanding sub-operations fail over to their gather policy's
// error path.
func (a *Aggregator) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	for _, p := range a.peers {
		p.close()
	}
}

// peer is the connection pool plus failure-domain state for one
// component server: its circuit breaker, dial backoff, and background
// reconnector.
type peer struct {
	agg         *Aggregator
	addr        string
	idx         int
	outstanding atomic.Int64
	reconnects  atomic.Int64

	br           *breaker.Breaker
	backoff      *breaker.Backoff
	reconnecting atomic.Bool
	closeCh      chan struct{}

	mu         sync.Mutex
	slots      []*peerConn
	next       int
	nextDialAt time.Time
	closed     bool
}

// healthy reports whether the peer's breaker admits normal traffic.
func (p *peer) healthy() bool { return p.br.State() == breaker.Closed }

func (p *peer) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// conn returns a live pooled connection, dialing a dead slot as
// needed. Dials are gated by the peer's capped exponential backoff:
// inside the backoff window conn fails fast with ErrPeerDown instead
// of hammering a refusing address once per request.
func (p *peer) conn() (*peerConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	i := p.next
	p.next = (p.next + 1) % len(p.slots)
	pc := p.slots[i]
	if pc != nil && !pc.isDead() {
		p.mu.Unlock()
		return pc, nil
	}
	// Prefer any other live slot over redialing (the background
	// reconnector may have installed a fresh connection already).
	for _, q := range p.slots {
		if q != nil && !q.isDead() {
			p.mu.Unlock()
			return q, nil
		}
	}
	if pc != nil {
		p.reconnects.Add(1)
	}
	if !p.nextDialAt.IsZero() && time.Now().Before(p.nextDialAt) {
		p.mu.Unlock()
		p.kickReconnector()
		return nil, ErrPeerDown
	}
	c, err := p.agg.opts.Dial(p.addr, p.agg.opts.DialTimeout)
	if err != nil {
		p.nextDialAt = time.Now().Add(p.backoff.Next())
		p.mu.Unlock()
		p.kickReconnector()
		return nil, err
	}
	p.backoff.Reset()
	p.nextDialAt = time.Time{}
	pc = p.newConn(c)
	p.slots[i] = pc
	p.mu.Unlock()
	go pc.readLoop(p.agg.opts.MaxFrame)
	return pc, nil
}

// newConn wraps an established transport connection. Caller holds p.mu
// and must start the read loop after unlocking.
func (p *peer) newConn(c net.Conn) *peerConn {
	return &peerConn{
		c:         c,
		pending:   map[uint64]func(*wire.SubReply, error){},
		pendingIn: map[uint64]func(*wire.IngestReply, error){},
		onDead:    p.kickReconnector,
	}
}

// kickReconnector starts the background reconnect/probe loop unless it
// is already running or the peer is closed. It is invoked on every
// connection death, failed dial, and breaker trip.
func (p *peer) kickReconnector() {
	if p.isClosed() {
		return
	}
	if !p.reconnecting.CompareAndSwap(false, true) {
		return
	}
	go p.reconnectLoop()
}

// reconnectLoop is the traffic-independent recovery path: it redials
// the peer on the capped backoff schedule, acting as the breaker's
// half-open prober, until a dial lands (connection installed, breaker
// closed, backoff reset) or the peer is closed. Dial outcomes feed the
// breaker, so a dead peer's breaker trips — and a healed peer's
// breaker re-closes — even with zero request traffic.
func (p *peer) reconnectLoop() {
	defer p.reconnecting.Store(false)
	t := time.NewTimer(0)
	defer t.Stop()
	for {
		d := p.backoff.Next()
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		t.Reset(d)
		select {
		case <-p.closeCh:
			return
		case <-t.C:
		}
		if p.isClosed() {
			return
		}
		if p.br.State() != breaker.Closed && !p.br.Allow() {
			// Still inside the cooldown; the backoff sleep above keeps
			// the loop from spinning.
			continue
		}
		c, err := p.agg.opts.Dial(p.addr, p.agg.opts.DialTimeout)
		if err != nil {
			p.br.Fail()
			p.agg.faults.Add(1)
			if p.agg.mFaults != nil {
				p.agg.mFaults.Inc()
			}
			continue
		}
		p.install(c)
		p.br.Success()
		p.backoff.Reset()
		return
	}
}

// install pools a successfully probed connection into a dead or empty
// slot.
func (p *peer) install(c net.Conn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	idx := 0
	for i, q := range p.slots {
		if q == nil || q.isDead() {
			idx = i
			break
		}
	}
	pc := p.newConn(c)
	p.slots[idx] = pc
	p.nextDialAt = time.Time{}
	p.mu.Unlock()
	go pc.readLoop(p.agg.opts.MaxFrame)
}

// send transmits one sub-operation and registers its delivery callback
// (invoked exactly once: reply, connection failure, or close).
func (p *peer) send(sub *wire.Request, deliver func(*wire.SubReply, error)) {
	pc, err := p.conn()
	if err != nil {
		deliver(nil, err)
		return
	}
	if !pc.register(sub.ID, deliver) {
		// The connection died between pooling and registration; one
		// retry against a fresh slot, then give up.
		pc, err = p.conn()
		if err != nil {
			deliver(nil, err)
			return
		}
		if !pc.register(sub.ID, deliver) {
			deliver(nil, errors.New("netsvc: connection lost"))
			return
		}
	}
	frame := wire.AppendRequestFrame(nil, sub)
	pc.wmu.Lock()
	_, werr := pc.c.Write(frame)
	pc.wmu.Unlock()
	if werr != nil {
		pc.fail(werr)
	}
}

// sendIngest transmits one append batch on a pooled connection and
// registers its acknowledgement callback (invoked exactly once: reply,
// connection failure, or close). It mirrors send, on the ingest half
// of the multiplexed connection.
func (p *peer) sendIngest(sub *wire.IngestRequest, deliver func(*wire.IngestReply, error)) {
	pc, err := p.conn()
	if err != nil {
		deliver(nil, err)
		return
	}
	if !pc.registerIngest(sub.ID, deliver) {
		pc, err = p.conn()
		if err != nil {
			deliver(nil, err)
			return
		}
		if !pc.registerIngest(sub.ID, deliver) {
			deliver(nil, errors.New("netsvc: connection lost"))
			return
		}
	}
	frame := wire.AppendIngestRequestFrame(nil, sub)
	pc.wmu.Lock()
	_, werr := pc.c.Write(frame)
	pc.wmu.Unlock()
	if werr != nil {
		pc.fail(werr)
	}
}

func (p *peer) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.closeCh)
	slots := append([]*peerConn(nil), p.slots...)
	p.mu.Unlock()
	for _, pc := range slots {
		if pc != nil {
			pc.fail(ErrClosed)
		}
	}
}

// peerConn is one multiplexed connection: concurrent requests are
// matched to replies by ID.
type peerConn struct {
	c      net.Conn
	onDead func() // kicks the owning peer's reconnector
	wmu    sync.Mutex

	pmu       sync.Mutex
	pending   map[uint64]func(*wire.SubReply, error)
	pendingIn map[uint64]func(*wire.IngestReply, error)
	dead      bool
}

func (pc *peerConn) isDead() bool {
	pc.pmu.Lock()
	defer pc.pmu.Unlock()
	return pc.dead
}

func (pc *peerConn) register(id uint64, deliver func(*wire.SubReply, error)) bool {
	pc.pmu.Lock()
	defer pc.pmu.Unlock()
	if pc.dead {
		return false
	}
	pc.pending[id] = deliver
	return true
}

func (pc *peerConn) registerIngest(id uint64, deliver func(*wire.IngestReply, error)) bool {
	pc.pmu.Lock()
	defer pc.pmu.Unlock()
	if pc.dead {
		return false
	}
	pc.pendingIn[id] = deliver
	return true
}

// readLoop dispatches reply frames to their pending callbacks until
// the connection fails.
func (pc *peerConn) readLoop(maxFrame int) {
	br := bufio.NewReader(pc.c)
	var buf []byte
	for {
		var err error
		buf, err = wire.ReadFrame(br, buf, maxFrame)
		if err != nil {
			pc.fail(err)
			return
		}
		// Query sub-replies and ingest acknowledgements share the
		// connection; the kind byte routes before payload decoding.
		kind, err := wire.FrameKind(buf)
		if err != nil {
			pc.fail(err)
			return
		}
		if kind == wire.FrameIngestReply {
			ack, err := wire.DecodeIngestReply(buf)
			if err != nil {
				pc.fail(err)
				return
			}
			pc.pmu.Lock()
			deliver := pc.pendingIn[ack.ID]
			delete(pc.pendingIn, ack.ID)
			pc.pmu.Unlock()
			if deliver != nil {
				deliver(ack, nil)
			}
			continue
		}
		rep, err := wire.DecodeSubReply(buf)
		if err != nil {
			pc.fail(err)
			return
		}
		pc.pmu.Lock()
		deliver := pc.pending[rep.ID]
		delete(pc.pending, rep.ID)
		pc.pmu.Unlock()
		if deliver != nil {
			deliver(rep, nil)
		}
	}
}

// fail marks the connection dead and fails every pending sub-operation
// exactly once.
func (pc *peerConn) fail(err error) {
	pc.pmu.Lock()
	if pc.dead {
		pc.pmu.Unlock()
		return
	}
	pc.dead = true
	pending := pc.pending
	pendingIn := pc.pendingIn
	pc.pending = nil
	pc.pendingIn = nil
	pc.pmu.Unlock()
	pc.c.Close()
	if pc.onDead != nil && !errors.Is(err, ErrClosed) {
		pc.onDead()
	}
	for _, deliver := range pending {
		deliver(nil, fmt.Errorf("netsvc: connection failed: %w", err))
	}
	for _, deliver := range pendingIn {
		deliver(nil, fmt.Errorf("netsvc: connection failed: %w", err))
	}
}
