package netsvc

import (
	"context"
	"math"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/breaker"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/service"
	"accuracytrader/internal/wire"
)

// leakCheck snapshots the goroutine count and returns a func asserting
// the count settles back near the snapshot.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before+2 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
	}
}

// refusedAddr returns a loopback address with nothing listening on it.
func refusedAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestDialBackoffLimitsRedialStorm drives many calls against a
// refusing listener and asserts dial attempts follow the capped
// backoff schedule instead of one-dial-per-request.
func TestDialBackoffLimitsRedialStorm(t *testing.T) {
	addr := refusedAddr(t)
	var dials atomic.Int64
	a, err := NewAggregator([]string{addr}, AggregatorOptions{
		Policy:     service.WaitAll,
		Deadline:   50 * time.Millisecond,
		RedialBase: 25 * time.Millisecond,
		RedialMax:  200 * time.Millisecond,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			dials.Add(1)
			return net.DialTimeout("tcp", addr, timeout)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const calls = 60
	for i := 0; i < calls; i++ {
		subs, err := a.Call(context.Background(), aggReq(agg.Sum, 0, 1))
		if err != nil {
			t.Fatal(err)
		}
		if subs[0].Err == nil {
			t.Fatal("call against a refusing listener answered OK")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// 60 calls over ~300ms. Without backoff every call (plus its retry)
	// dials: >= 60 attempts. With the 25ms-base/200ms-cap schedule the
	// call path and the background prober together fit in a small
	// logarithmic budget.
	if got := dials.Load(); got == 0 || got > 15 {
		t.Fatalf("dial attempts = %d, want in [1, 15] under backoff", got)
	}
	if a.Stats().Faults == 0 {
		t.Fatal("fault counter must move")
	}
}

// TestBreakerEvictsReroutesAndRecloses is the breaker lifecycle over a
// real kill/heal cycle: trips open on a killed peer, evicts it from
// routing (the healthy peer answers every subset), publishes its state
// to metrics, and re-closes via the background prober after heal with
// no request traffic at all.
func TestBreakerEvictsReroutesAndRecloses(t *testing.T) {
	comps := buildAggComps(t, 2)
	h := NewAggBackend(comps, BackendOptions{})

	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr0 := l0.Addr().String()
	srv0 := NewServer(h, ServerOptions{})
	go srv0.Serve(l0)
	_, addr1 := startServer(t, h, ServerOptions{})

	reg := obs.NewRegistry()
	a, err := NewAggregator([]string{addr0, addr1}, AggregatorOptions{
		Policy:     service.WaitAll,
		Deadline:   300 * time.Millisecond,
		RedialBase: 10 * time.Millisecond,
		RedialMax:  80 * time.Millisecond,
		Breaker:    breaker.Config{FailThreshold: 3, Cooldown: 50 * time.Millisecond},
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill component 0.
	srv0.Close()

	// Calls keep succeeding end to end: once the breaker opens, subset 0
	// is rerouted to the healthy peer (every server holds all shards).
	deadline := time.Now().Add(5 * time.Second)
	healthyCall := false
	for time.Now().Before(deadline) && !healthyCall {
		subs, err := a.Call(context.Background(), aggReq(agg.Sum, 0, math.Inf(1)))
		if err != nil {
			t.Fatal(err)
		}
		healthyCall = true
		for _, sr := range subs {
			if sr.Err != nil || sr.Skipped {
				healthyCall = false
			}
		}
	}
	if !healthyCall {
		t.Fatal("calls never recovered via rerouting after component kill")
	}
	if st := a.BreakerState(0); st != breaker.Open && st != breaker.HalfOpen {
		t.Fatalf("killed peer breaker state = %v, want open/half-open", st)
	}
	open := a.OpenBreakers()
	if len(open) != 1 || open[0] != addr0 {
		t.Fatalf("OpenBreakers() = %v, want [%s]", open, addr0)
	}
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "netsvc_breaker_state{peer=") {
		t.Fatal("breaker state gauge missing from metrics")
	}
	if !strings.Contains(prom.String(), `state="open"`) {
		t.Fatal("breaker open transition counter missing from metrics")
	}

	// Heal: new server on the same address. The background prober must
	// re-close the breaker without any further calls.
	l0b, err := net.Listen("tcp", addr0)
	if err != nil {
		t.Fatal(err)
	}
	srv0b := NewServer(h, ServerOptions{})
	go srv0b.Serve(l0b)
	t.Cleanup(srv0b.Close)

	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && a.BreakerState(0) != breaker.Closed {
		time.Sleep(10 * time.Millisecond)
	}
	if st := a.BreakerState(0); st != breaker.Closed {
		t.Fatalf("breaker did not re-close after heal: %v", st)
	}
	if got := a.OpenBreakers(); got != nil {
		t.Fatalf("OpenBreakers() after heal = %v, want none", got)
	}

	// And traffic lands on the healed peer again.
	subs, err := a.Call(context.Background(), aggReq(agg.Sum, 0, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range subs {
		if sr.Err != nil || sr.Skipped {
			t.Fatalf("post-heal sub %d: %+v", i, sr)
		}
	}
}

// TestCallCancellationReleasesInflight cancels the caller's context
// while every sub-operation is parked in a stalled handler and asserts
// Call returns promptly and the dispatch/hedge machinery unwinds
// without goroutine leaks.
func TestCallCancellationReleasesInflight(t *testing.T) {
	checkLeaks := leakCheck(t)
	release := make(chan struct{})
	h := func(ctx context.Context, req *wire.Request) *wire.SubReply {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &wire.SubReply{Status: wire.StatusOK, Level: wire.NoLevel,
			Agg: &wire.AggResult{Sum: []float64{1}, Cnt: []float64{1}, SumVar: []float64{0}, CntVar: []float64{0}}}
	}
	srv1, addr1 := startServer(t, h, ServerOptions{})
	srv2, addr2 := startServer(t, h, ServerOptions{})
	a, err := NewAggregator([]string{addr1, addr2}, AggregatorOptions{
		Policy:   service.Hedged,
		Deadline: 30 * time.Second, // far away: only cancellation can release
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		subs, err := a.Call(ctx, aggReq(agg.Sum, 0, 1))
		if err == nil {
			for _, sr := range subs {
				if sr.Err == nil && !sr.Skipped {
					done <- nil
					return
				}
			}
		}
		done <- ctx.Err()
	}()
	time.Sleep(50 * time.Millisecond) // let the sub-ops reach the handlers
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Call did not return after context cancellation")
	}
	if got := a.Inflight(); got != 0 {
		t.Fatalf("Inflight = %d after cancelled Call returned", got)
	}
	close(release)
	a.Close()
	srv1.Close()
	srv2.Close()
	checkLeaks()
}

// TestMidFlightKillEveryCallReturns kills a component server while N
// calls are in flight and asserts every Call returns (an answered,
// errored, or skipped sub-result — never a hang) with no goroutine
// leaks. Run under -race this doubles as the abrupt-close race test.
func TestMidFlightKillEveryCallReturns(t *testing.T) {
	checkLeaks := leakCheck(t)
	comps := buildAggComps(t, 2)
	inner := NewAggBackend(comps, BackendOptions{})
	h := func(ctx context.Context, req *wire.Request) *wire.SubReply {
		time.Sleep(20 * time.Millisecond) // hold replies so the kill lands mid-flight
		return inner(ctx, req)
	}
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv0 := NewServer(h, ServerOptions{})
	go srv0.Serve(l0)
	srv1, addr1 := startServer(t, h, ServerOptions{})

	a, err := NewAggregator([]string{l0.Addr().String(), addr1}, AggregatorOptions{
		Policy:   service.WaitAll,
		Deadline: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	const inflight = 24
	var wg sync.WaitGroup
	var returned atomic.Int64
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if _, err := a.Call(ctx, aggReq(agg.Sum, 0, math.Inf(1))); err != nil {
				t.Errorf("Call error: %v", err)
				return
			}
			returned.Add(1)
		}()
	}
	time.Sleep(10 * time.Millisecond) // calls dispatched, replies pending
	srv0.Close()                      // abrupt kill: connections reset mid-flight
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("calls hung after mid-flight server kill")
	}
	if got := returned.Load(); got != inflight {
		t.Fatalf("%d of %d calls returned", got, inflight)
	}
	a.Close()
	srv1.Close()
	checkLeaks()
}
