package netsvc

import (
	"accuracytrader/internal/agg"
	"accuracytrader/internal/cf"
	"accuracytrader/internal/service"
	"accuracytrader/internal/textindex"
	"accuracytrader/internal/topk"
	"accuracytrader/internal/wire"
)

// GlobalDocStride globalizes shard-local search doc ids in composed
// replies: global id = subset*GlobalDocStride + doc (the convention of
// the experiment replays).
const GlobalDocStride = 10_000_000

// subReplyOf extracts the decoded sub-reply of an answered sub-result.
func subReplyOf(sr service.SubResult) *wire.SubReply {
	if sr.Err != nil || sr.Skipped || sr.Value == nil {
		return nil
	}
	rep, _ := sr.Value.(*wire.SubReply)
	return rep
}

// SubStatuses maps gathered sub-results to per-subset wire statuses
// for the composed reply.
func SubStatuses(subs []service.SubResult) []uint8 {
	out := make([]uint8, len(subs))
	for i, sr := range subs {
		switch {
		case sr.Skipped:
			out[i] = wire.StatusSkipped
		case sr.Err != nil:
			if sr.Err == ErrQueueFull || sr.Err == service.ErrQueueFull {
				out[i] = wire.StatusBusy
			} else {
				out[i] = wire.StatusErr
			}
		default:
			out[i] = wire.StatusOK
			// An in-process handler may resolve a sub-operation with a
			// non-OK reply in the value slot; surface the inner status.
			if rep, ok := sr.Value.(*wire.SubReply); ok && rep != nil {
				out[i] = rep.Status
			}
		}
	}
	return out
}

// DegradeStats counts the strata that contributed a payload to the
// composed reply (StatusOK) against the fan-out width — the inputs to
// the per-SLO degradation rule.
func DegradeStats(statuses []uint8) (answered, total int) {
	for _, st := range statuses {
		if st == wire.StatusOK {
			answered++
		}
	}
	return answered, len(statuses)
}

// DiscountAccuracy discounts an accuracy bound by the answered
// fraction of the fan-out: each stratum contributes 1/total of the
// answer, so a reply composed over answered strata cannot promise more
// than acc·answered/total of it.
func DiscountAccuracy(acc float64, answered, total int) float64 {
	if total <= 0 || answered >= total {
		return acc
	}
	return acc * float64(answered) / float64(total)
}

// ExtrapolateAgg rescales an aggregation answer composed over answered
// of total strata up to the full population: sums and counts grow by
// total/answered (unbiased under the uniform sharding of the replays),
// variances by its square — the CLT bounds honestly widen to cover the
// unseen strata instead of silently skewing low.
func ExtrapolateAgg(res *wire.AggResult, answered, total int) {
	if res == nil || answered <= 0 || answered >= total {
		return
	}
	f := float64(total) / float64(answered)
	f2 := f * f
	for i := range res.Sum {
		res.Sum[i] *= f
		res.SumVar[i] *= f2
	}
	for i := range res.Cnt {
		res.Cnt[i] *= f
		res.CntVar[i] *= f2
	}
}

// ComposeCF merges CF sub-results additively (the partial-result merge
// contract of cf.Result): skipped or failed components simply
// contribute nothing, exactly as in the in-process composition.
func ComposeCF(subs []service.SubResult) *wire.CFResult {
	var res cf.Result
	for _, sr := range subs {
		rep := subReplyOf(sr)
		if rep == nil || rep.CF == nil {
			continue
		}
		part := cf.Result{Num: rep.CF.Num, Den: rep.CF.Den}
		if res.Num == nil {
			res = cf.NewResult(len(part.Num))
		}
		if len(part.Num) != len(res.Num) {
			continue // mis-shaped partial: drop rather than corrupt
		}
		res.Merge(part)
	}
	return &wire.CFResult{Num: res.Num, Den: res.Den}
}

// ComposeSearch merges per-component hit lists into a global top-k via
// the same bounded selection kernel the engines use (internal/topk),
// globalizing shard-local doc ids with GlobalDocStride.
func ComposeSearch(subs []service.SubResult, k int) *wire.SearchResult {
	var sel topk.Selector
	sel.Reset(k)
	for _, sr := range subs {
		rep := subReplyOf(sr)
		if rep == nil || rep.Search == nil {
			continue
		}
		// Globalize on the gathered subset (always set by the runtime),
		// not the reply's echo of it, so directly-invoked handlers
		// compose identically to server-filled replies.
		for _, h := range rep.Search.Hits {
			sel.Offer(sr.Subset*GlobalDocStride+int(h.Doc), h.Score)
		}
	}
	items := sel.Sorted()
	hits := make([]wire.Hit, 0, len(items))
	for _, it := range items {
		hits = append(hits, wire.Hit{Doc: int32(it.ID), Score: it.Score})
	}
	return &wire.SearchResult{Hits: hits}
}

// ComposeAgg merges aggregation sub-results additively, variances
// included — the composed reply stays bounds-aware: converting it with
// AggResultOf yields an agg.Result whose Estimate/Bound methods work
// on the merged answer.
func ComposeAgg(subs []service.SubResult) *wire.AggResult {
	var res agg.Result
	for _, sr := range subs {
		rep := subReplyOf(sr)
		if rep == nil || rep.Agg == nil {
			continue
		}
		part := AggResultOf(rep.Agg)
		if res.Sum == nil {
			res = agg.NewResult(len(part.Sum))
		}
		if len(part.Sum) != len(res.Sum) {
			continue
		}
		res.Merge(part)
	}
	return &wire.AggResult{Sum: res.Sum, Cnt: res.Cnt, SumVar: res.SumVar, CntVar: res.CntVar}
}

// AggResultOf views a wire aggregation result as an agg.Result, so the
// application's Estimate/Bound/Estimates machinery is reused verbatim
// on composed network replies.
func AggResultOf(r *wire.AggResult) agg.Result {
	return agg.Result{Sum: r.Sum, Cnt: r.Cnt, SumVar: r.SumVar, CntVar: r.CntVar}
}

// CFResultOf views a wire CF result as a cf.Result (for Predictions).
func CFResultOf(r *wire.CFResult) cf.Result {
	return cf.Result{Num: r.Num, Den: r.Den}
}

// SearchHitsOf converts wire hits to textindex hits (global doc ids).
func SearchHitsOf(r *wire.SearchResult) []textindex.Hit {
	out := make([]textindex.Hit, len(r.Hits))
	for i, h := range r.Hits {
		out[i] = textindex.Hit{Doc: int(h.Doc), Score: h.Score}
	}
	return out
}
