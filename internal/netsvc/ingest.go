package netsvc

import (
	"context"
	"sync"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/cf"
	"accuracytrader/internal/ingest"
	"accuracytrader/internal/wire"
)

// IngestHandler applies one append batch and returns its
// acknowledgement. The server fills in the reply's ID and Subset from
// the request; handlers must be safe for concurrent use (one call per
// connection reader can be in flight at a time). Batches are atomic:
// either every item is staged (IngestOK with the count) or none is.
type IngestHandler func(req *wire.IngestRequest) *wire.IngestReply

// SetIngest installs the append-batch handler. Component servers pass
// a handler staging into their live shards (NewLiveIngestHandler);
// front servers install a forwarding handler via EnableIngest. Call
// before Serve; without a handler, ingest frames are answered
// IngestRejected so a v5 client degrades cleanly against a read-only
// server.
func (s *srvCore) SetIngest(h IngestHandler) { s.ingest = h }

// serveIngest answers one decoded append batch on the connection's
// reader goroutine: staging into a live shard is a short, bounded
// critical section (no synopsis work — that happens on the merge
// worker), so appends bypass the query worker queue the way a write
// path must not contend with Algorithm 1's budgets.
func (s *srvCore) serveIngest(sc *srvConn, req *wire.IngestRequest) {
	s.ingests.Add(1)
	var rep *wire.IngestReply
	if h := s.ingest; h != nil {
		// The handler owns the reply's Subset: a front server reports
		// the shard an unrouted batch actually landed on, which the
		// request's own Subset (-1) cannot name.
		rep = h(req)
	} else {
		rep = &wire.IngestReply{Subset: req.Subset, Status: wire.IngestRejected, Err: "ingest not enabled"}
	}
	rep.ID = req.ID
	sc.write(wire.AppendIngestReplyFrame(nil, rep))
}

// LiveStores bundles the live shards one component server ingests
// into and serves from, per workload. A nil slice rejects that
// workload's batches.
type LiveStores struct {
	Agg    []*ingest.AggLive
	CF     []*ingest.CFLive
	Search []*ingest.SearchLive
}

// shard maps a wire subset onto one of n shards (Subset < 0 — a batch
// that was never routed — lands on shard 0).
func shard(subset int32, n int) int {
	if subset < 0 {
		return 0
	}
	return int(subset) % n
}

// NewLiveIngestHandler returns the component-side append handler over
// a set of live shards: each batch is validated, staged atomically
// into the owning shard, and acknowledged with the epoch at which it
// was staged (visible to every snapshot with a strictly greater
// epoch, i.e. after the merge worker's next swap).
func NewLiveIngestHandler(ls LiveStores) IngestHandler {
	return func(req *wire.IngestRequest) *wire.IngestReply {
		rep := &wire.IngestReply{Subset: req.Subset}
		reject := func(msg string) *wire.IngestReply {
			rep.Status = wire.IngestRejected
			rep.Err = msg
			return rep
		}
		switch req.Kind {
		case wire.KindAgg:
			if len(ls.Agg) == 0 || req.Agg == nil {
				return reject("no live aggregation shard")
			}
			l := ls.Agg[shard(req.Subset, len(ls.Agg))]
			n, err := l.Append(req.Agg.Keys, req.Agg.Vals)
			if err != nil {
				rep.Status = wire.IngestErr
				rep.Err = err.Error()
				return rep
			}
			rep.Accepted = uint32(n)
			rep.Epoch = l.Epoch()
		case wire.KindCF:
			if len(ls.CF) == 0 || req.CF == nil {
				return reject("no live CF shard")
			}
			l := ls.CF[shard(req.Subset, len(ls.CF))]
			// Convert every user before appending any, so a bad rating
			// rejects the batch whole instead of staging a prefix.
			users := make([][]cf.Rating, len(req.CF.Users))
			for u, rs := range req.CF.Users {
				users[u] = make([]cf.Rating, len(rs))
				for i, r := range rs {
					users[u][i] = cf.Rating{Item: r.Item, Score: r.Score}
				}
			}
			for u, rs := range users {
				if _, err := l.Append(rs); err != nil {
					rep.Status = wire.IngestErr
					rep.Err = err.Error()
					rep.Accepted = uint32(u)
					return rep
				}
			}
			rep.Accepted = uint32(len(users))
			rep.Epoch = l.Epoch()
		case wire.KindSearch:
			if len(ls.Search) == 0 || req.Search == nil {
				return reject("no live search shard")
			}
			l := ls.Search[shard(req.Subset, len(ls.Search))]
			for _, d := range req.Search.Docs {
				l.Append(d)
			}
			rep.Accepted = uint32(len(req.Search.Docs))
			rep.Epoch = l.Epoch()
		default:
			rep.Status = wire.IngestErr
			rep.Err = "unknown payload kind"
			return rep
		}
		rep.Status = wire.IngestOK
		return rep
	}
}

// liveAggResults recycles result accumulators across live aggregation
// requests so the serving path allocates only its wire reply.
var liveAggResults = sync.Pool{New: func() any { return new(agg.Result) }}

// NewLiveAggBackend returns a handler serving the aggregation workload
// from the epoch-swapped snapshots of live shards (component c answers
// for subset c mod len(lives)). Each request pins one snapshot with a
// single atomic load and answers entirely from it — concurrent epoch
// swaps never tear a result — using the snapshot's base synopsis at
// the requested ladder level plus an exact fold of the unmerged delta.
func NewLiveAggBackend(lives []*ingest.AggLive, opts BackendOptions) Handler {
	opts = opts.withDefaults()
	return func(ctx context.Context, req *wire.Request) *wire.SubReply {
		if req.Kind != wire.KindAgg || req.Agg == nil || req.Subset < 0 {
			return errSub("netsvc: malformed aggregation request")
		}
		opts.interfere(req.Seq)
		l := lives[int(req.Subset)%len(lives)]
		snap, _ := l.Snapshot()
		q := agg.Query{Op: agg.Op(req.Agg.Op), Lo: req.Agg.Lo, Hi: req.Agg.Hi}
		rep := &wire.SubReply{Status: wire.StatusOK, Level: wire.NoLevel}
		res := liveAggResults.Get().(*agg.Result)
		if req.SLO == wire.SLOExact || snap.Base() == nil {
			// Exact class — or an epoch before the first compaction, whose
			// only data is the exactly scanned delta.
			if opts.UnitCost > 0 {
				time.Sleep(time.Duration(snap.Rows()) * opts.UnitCost)
			}
			*res = snap.Exact(*res, q)
		} else {
			syn := snap.Base().Syn
			level := int(req.Level)
			if req.Level == wire.NoLevel || level >= syn.Levels() {
				level = syn.Levels() - 1
			}
			if level < 0 {
				level = 0
			}
			if opts.UnitCost > 0 {
				time.Sleep(time.Duration(syn.SampleUnits(level)+snap.DeltaRows()) * opts.UnitCost)
			}
			*res = snap.QueryLevel(*res, q, level)
			rep.Level = int16(level)
		}
		rep.Agg = &wire.AggResult{
			Sum:    append([]float64(nil), res.Sum...),
			Cnt:    append([]float64(nil), res.Cnt...),
			SumVar: append([]float64(nil), res.SumVar...),
			CntVar: append([]float64(nil), res.CntVar...),
		}
		liveAggResults.Put(res)
		return rep
	}
}

// EnableIngest makes the front server accept v5 append batches and
// forward each to its owning component through the aggregator, and
// wires the ingest-driven cache invalidation: whenever a component
// epoch swap is observed — via NotifyEpochSwap from an in-process
// merge worker's OnSwap hook, or via the advancing epochs on ingest
// acknowledgements — the result cache's epoch is bumped (staling every
// entry) and up to rewarmMax of the hottest entries are recomputed in
// the background (rescache.RewarmHot), turning the post-swap miss
// burst back into hits. rewarmMax 0 disables re-warming; without
// EnableCache the epoch bookkeeping is kept but there is nothing to
// invalidate. Call before Serve.
func (s *FrontServer) EnableIngest(rewarmMax int) {
	s.rewarmMax = rewarmMax
	s.SetIngest(func(req *wire.IngestRequest) *wire.IngestReply {
		ctx, cancel := context.WithTimeout(context.Background(), s.agg.Deadline())
		defer cancel()
		rep := s.agg.Ingest(ctx, req)
		if rep.Status == wire.IngestOK {
			// The staging epoch only advances across a swap, so observing
			// it grow is observing that previously composed answers went
			// stale — the cross-process invalidation signal.
			s.NotifyEpochSwap(rep.Epoch)
		}
		return rep
	})
}

// NotifyEpochSwap folds one observed data epoch into the front
// server's view. An advance past the highest epoch seen so far bumps
// the result cache (every cached answer predates the swap) and kicks
// one background re-warm pass over the hottest entries; stale or
// duplicate notifications are no-ops, so the in-process OnSwap hook
// and the acknowledgement-observed epochs can both feed it safely.
func (s *FrontServer) NotifyEpochSwap(epoch uint64) {
	for {
		cur := s.dataEpoch.Load()
		if epoch <= cur {
			return
		}
		if s.dataEpoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	if s.cache == nil {
		return
	}
	s.cache.BumpEpoch()
	// One re-warm pass at a time: each recomputation stamps the epoch
	// captured at its own start, so a pass that straddles further swaps
	// stays correct (entries are born stale) — overlapping passes would
	// only duplicate work.
	if s.rewarmMax > 0 && s.rewarming.CompareAndSwap(false, true) {
		go func() {
			defer s.rewarming.Store(false)
			s.cache.RewarmHot(s.rewarmMax)
		}()
	}
}

// DataEpoch returns the highest component data epoch observed through
// ingest acknowledgements and NotifyEpochSwap.
func (s *FrontServer) DataEpoch() uint64 { return s.dataEpoch.Load() }
