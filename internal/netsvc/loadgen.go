package netsvc

import (
	"sync"
	"time"

	"accuracytrader/internal/stats"
)

// OpenLoop drives open-loop Poisson load for the window: fire(i) runs
// in its own goroutine at each arrival — arrivals never wait for
// earlier requests, so queueing delay shows up as latency instead of
// silently throttling the offered rate (the closed-loop trap). It
// returns the number of requests fired, after all of them complete.
func OpenLoop(rng *stats.RNG, ratePerSec float64, window time.Duration, fire func(i int)) int {
	var wg sync.WaitGroup
	stop := time.Now().Add(window)
	n := 0
	for time.Now().Before(stop) {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fire(i)
		}(n)
		n++
		time.Sleep(time.Duration(rng.Exp(ratePerSec) * float64(time.Second)))
	}
	wg.Wait()
	return n
}
