package netsvc

import (
	"context"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/service"
	"accuracytrader/internal/wire"
)

// startTracedStack stands up n component servers, an aggregator, a
// frontend, and a traced FrontServer on loopback, returning the
// recorder and a connected client.
func startTracedStack(t *testing.T, n int) (*obs.Recorder, *Client) {
	t.Helper()
	comps := buildAggComps(t, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		_, addrs[i] = startServer(t, NewAggBackend(comps, BackendOptions{}), ServerOptions{})
	}
	a, err := NewAggregator(addrs, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	ctrl, err := frontend.NewController(frontend.ControllerConfig{
		Levels:        comps[0].Syn.Levels(),
		LevelAccuracy: []float64{0.8, 0.97},
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := frontend.New(a, frontend.Options{Controller: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(16, 64)
	fs := NewFrontServer(a, fe, ServerOptions{Tracer: rec})
	go fs.Serve(fl)
	t.Cleanup(fs.Close)
	cl, err := DialClient(fl.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return rec, cl
}

// TestTraceStitchesAcrossWire is the cross-process tracing contract: a
// client-stamped trace ID is adopted by the front server, propagated
// to every component, and the server-side queue/exec spans travel back
// in the sub-replies to be stitched into one span tree.
func TestTraceStitchesAcrossWire(t *testing.T) {
	const n = 2
	rec, cl := startTracedStack(t, n)

	req := aggReq(agg.Sum, 0, math.Inf(1))
	req.SLO = wire.SLOBestEffort
	req.Trace = 0x5eed
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rep, err := cl.Call(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != wire.ReplyOK {
		t.Fatalf("reply status %d err %q", rep.Status, rep.Err)
	}
	if rep.Trace != 0x5eed {
		t.Fatalf("reply echoes trace %#x, want the client's %#x", rep.Trace, 0x5eed)
	}

	views := rec.Snapshot(0)
	if len(views) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(views))
	}
	tv := views[0]
	if tv.ID != 0x5eed || !tv.Done {
		t.Fatalf("trace = id %#x done %v, want id 0x5eed done", tv.ID, tv.Done)
	}
	if tv.DurNs <= 0 {
		t.Fatalf("finished trace has non-positive duration %d", tv.DurNs)
	}
	var subOps, remoteQueue, remoteExec, admission, merge int
	for _, sp := range tv.Spans {
		switch sp.Kind {
		case obs.SpanSubOp:
			subOps++
		case obs.SpanServerQueue:
			if sp.Remote {
				remoteQueue++
			}
		case obs.SpanServerExec:
			if sp.Remote {
				remoteExec++
			}
		case obs.SpanAdmission:
			admission++
		case obs.SpanMerge:
			merge++
		}
	}
	if subOps != n {
		t.Fatalf("trace holds %d sub-op spans, want one per subset (%d)", subOps, n)
	}
	if remoteQueue != n || remoteExec != n {
		t.Fatalf("stitched remote spans: %d queue + %d exec, want %d of each", remoteQueue, remoteExec, n)
	}
	if admission == 0 {
		t.Fatal("frontend admission span missing from the stitched tree")
	}
	if merge != 1 {
		t.Fatalf("trace holds %d merge spans, want 1", merge)
	}
	if acc := obs.Accounted(tv); acc <= 0 {
		t.Fatalf("accounted time %.3fms, want > 0", acc)
	}
	if bd := obs.Breakdown(tv); bd.ExecMs <= 0 {
		t.Fatalf("critical-path breakdown found no server exec time: %+v", bd)
	}
}

// TestTraceMintsIDWhenAbsent asserts an untraced client request still
// gets a server-minted trace ID echoed back when the server traces.
func TestTraceMintsIDWhenAbsent(t *testing.T) {
	_, cl := startTracedStack(t, 1)
	req := aggReq(agg.Sum, 0, math.Inf(1))
	req.SLO = wire.SLOBestEffort
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rep, err := cl.Call(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == 0 {
		t.Fatal("tracing server answered with trace ID 0")
	}
}

// TestUntracedServerStaysSilent asserts a FrontServer without a
// Tracer answers with trace ID 0 and no component spans are requested
// (the propagated trace ID stays 0 end to end).
func TestUntracedServerStaysSilent(t *testing.T) {
	comps := buildAggComps(t, 1)
	var sawTraced atomic.Int64
	inner := NewAggBackend(comps, BackendOptions{})
	h := func(ctx context.Context, req *wire.Request) *wire.SubReply {
		if req.Trace != 0 {
			sawTraced.Add(1)
		}
		return inner(ctx, req)
	}
	_, addr := startServer(t, h, ServerOptions{})
	a, err := NewAggregator([]string{addr}, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFrontServer(a, nil, ServerOptions{})
	go fs.Serve(fl)
	t.Cleanup(fs.Close)
	cl, err := DialClient(fl.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rep, err := cl.Call(ctx, aggReq(agg.Sum, 0, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != wire.ReplyOK || rep.Trace != 0 {
		t.Fatalf("untraced reply: status %d trace %#x, want OK and 0", rep.Status, rep.Trace)
	}
	if sawTraced.Load() != 0 {
		t.Fatalf("%d component requests carried a trace ID on an untraced server", sawTraced.Load())
	}
}

// TestGracefulShutdownDrains is the drain contract: Shutdown stops
// accepting, but a request already in flight is answered before the
// server closes, and Shutdown reports the drain completed.
func TestGracefulShutdownDrains(t *testing.T) {
	comps := buildAggComps(t, 1)
	inner := NewAggBackend(comps, BackendOptions{})
	started := make(chan struct{})
	h := func(ctx context.Context, req *wire.Request) *wire.SubReply {
		close(started)
		time.Sleep(50 * time.Millisecond)
		return inner(ctx, req)
	}
	srv, addr := startServer(t, h, ServerOptions{})
	a, err := NewAggregator([]string{addr}, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)

	type result struct {
		subs []service.SubResult
		err  error
	}
	done := make(chan result, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		subs, err := a.Call(ctx, aggReq(agg.Sum, 0, math.Inf(1)))
		done <- result{subs, err}
	}()
	<-started // the request is mid-handler: Shutdown must wait for it

	if !srv.Shutdown(2 * time.Second) {
		t.Fatal("Shutdown reported an incomplete drain")
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.subs[0].Err != nil || r.subs[0].Skipped {
		t.Fatalf("in-flight request was cut off by shutdown: %+v", r.subs[0])
	}
	if _, ok := r.subs[0].Value.(*wire.SubReply); !ok {
		t.Fatalf("in-flight request lost its reply: %+v", r.subs[0])
	}

	// The listener is gone: new connections are refused.
	if c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestShutdownIdempotent asserts Shutdown after Close (and a second
// Shutdown) return immediately and report drained.
func TestShutdownIdempotent(t *testing.T) {
	srv, _ := startServer(t, func(ctx context.Context, req *wire.Request) *wire.SubReply {
		return &wire.SubReply{Status: wire.StatusOK, Level: wire.NoLevel}
	}, ServerOptions{})
	if !srv.Shutdown(time.Second) {
		t.Fatal("first Shutdown on an idle server did not drain")
	}
	if !srv.Shutdown(time.Second) {
		t.Fatal("second Shutdown did not report drained")
	}
	srv.Close() // must be a no-op, not a panic
}
