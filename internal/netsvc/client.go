package netsvc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accuracytrader/internal/wire"
)

// ClientOptions configures a Client.
type ClientOptions struct {
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// MaxFrame bounds accepted reply frames (default wire.MaxFrame).
	MaxFrame int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.MaxFrame
	}
	return o
}

// Client talks to a FrontServer: it sends whole-service requests and
// receives composed replies over one multiplexed connection with
// transparent re-dial after failures. Safe for concurrent use.
type Client struct {
	addr   string
	opts   ClientOptions
	nextID atomic.Uint64

	mu     sync.Mutex
	conn   *clientConn
	closed bool
}

type clientConn struct {
	c   net.Conn
	wmu sync.Mutex

	pmu       sync.Mutex
	pending   map[uint64]chan *wire.Reply
	pendingIn map[uint64]chan *wire.IngestReply
	dead      bool
}

// DialClient connects to a FrontServer.
func DialClient(addr string, opts ClientOptions) (*Client, error) {
	cl := &Client{addr: addr, opts: opts.withDefaults()}
	if _, err := cl.live(); err != nil {
		return nil, err
	}
	return cl, nil
}

func (cl *Client) live() (*clientConn, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil, ErrClosed
	}
	if cc := cl.conn; cc != nil && !cc.isDead() {
		return cc, nil
	}
	c, err := net.DialTimeout("tcp", cl.addr, cl.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	cc := &clientConn{
		c:         c,
		pending:   map[uint64]chan *wire.Reply{},
		pendingIn: map[uint64]chan *wire.IngestReply{},
	}
	cl.conn = cc
	go cc.readLoop(cl.opts.MaxFrame)
	return cc, nil
}

// Call sends one whole-service request and waits for its composed
// reply. The request's ID is stamped by the client and its Deadline
// from the context; Subset is forced to -1 (whole service).
func (cl *Client) Call(ctx context.Context, req *wire.Request) (*wire.Reply, error) {
	cc, err := cl.live()
	if err != nil {
		return nil, err
	}
	sub := *req
	sub.ID = cl.nextID.Add(1)
	sub.Subset = -1
	// The context only tightens a service deadline the request already
	// carries, so a caller can hold a strict service budget while
	// allowing transport slack for the reply to travel back.
	if dl, ok := ctx.Deadline(); ok {
		if sub.Deadline == 0 || dl.UnixNano() < sub.Deadline {
			sub.Deadline = dl.UnixNano()
		}
	}
	ch := make(chan *wire.Reply, 1)
	if !cc.register(sub.ID, ch) {
		return nil, errors.New("netsvc: connection lost")
	}
	defer cc.deregister(sub.ID)
	frame := wire.AppendRequestFrame(nil, &sub)
	cc.wmu.Lock()
	_, werr := cc.c.Write(frame)
	cc.wmu.Unlock()
	if werr != nil {
		cc.fail()
		return nil, fmt.Errorf("netsvc: send failed: %w", werr)
	}
	select {
	case rep := <-ch:
		if rep == nil {
			return nil, errors.New("netsvc: connection failed awaiting reply")
		}
		return rep, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Ingest sends one append batch and waits for its acknowledgement.
// The batch's ID is stamped by the client; Subset is passed through
// (use -1 to let the service pick the shard). A reply with status
// wire.IngestOK carries the number of items staged and the epoch the
// batch was staged at — the appended rows are visible to every query
// answered at a strictly greater epoch.
func (cl *Client) Ingest(ctx context.Context, req *wire.IngestRequest) (*wire.IngestReply, error) {
	cc, err := cl.live()
	if err != nil {
		return nil, err
	}
	sub := *req
	sub.ID = cl.nextID.Add(1)
	ch := make(chan *wire.IngestReply, 1)
	if !cc.registerIngest(sub.ID, ch) {
		return nil, errors.New("netsvc: connection lost")
	}
	defer cc.deregisterIngest(sub.ID)
	frame := wire.AppendIngestRequestFrame(nil, &sub)
	cc.wmu.Lock()
	_, werr := cc.c.Write(frame)
	cc.wmu.Unlock()
	if werr != nil {
		cc.fail()
		return nil, fmt.Errorf("netsvc: send failed: %w", werr)
	}
	select {
	case rep := <-ch:
		if rep == nil {
			return nil, errors.New("netsvc: connection failed awaiting ingest ack")
		}
		return rep, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close tears the connection down; in-flight Calls fail.
func (cl *Client) Close() {
	cl.mu.Lock()
	cl.closed = true
	cc := cl.conn
	cl.mu.Unlock()
	if cc != nil {
		cc.fail()
	}
}

func (cc *clientConn) isDead() bool {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	return cc.dead
}

func (cc *clientConn) register(id uint64, ch chan *wire.Reply) bool {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	if cc.dead {
		return false
	}
	cc.pending[id] = ch
	return true
}

func (cc *clientConn) deregister(id uint64) {
	cc.pmu.Lock()
	delete(cc.pending, id)
	cc.pmu.Unlock()
}

func (cc *clientConn) registerIngest(id uint64, ch chan *wire.IngestReply) bool {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	if cc.dead {
		return false
	}
	cc.pendingIn[id] = ch
	return true
}

func (cc *clientConn) deregisterIngest(id uint64) {
	cc.pmu.Lock()
	delete(cc.pendingIn, id)
	cc.pmu.Unlock()
}

func (cc *clientConn) readLoop(maxFrame int) {
	br := bufio.NewReader(cc.c)
	var buf []byte
	for {
		var err error
		buf, err = wire.ReadFrame(br, buf, maxFrame)
		if err != nil {
			cc.fail()
			return
		}
		// Composed replies and ingest acknowledgements share the
		// connection; route on the kind byte before decoding.
		kind, err := wire.FrameKind(buf)
		if err != nil {
			cc.fail()
			return
		}
		if kind == wire.FrameIngestReply {
			ack, err := wire.DecodeIngestReply(buf)
			if err != nil {
				cc.fail()
				return
			}
			cc.pmu.Lock()
			ch := cc.pendingIn[ack.ID]
			delete(cc.pendingIn, ack.ID)
			cc.pmu.Unlock()
			if ch != nil {
				ch <- ack
			}
			continue
		}
		rep, err := wire.DecodeReply(buf)
		if err != nil {
			cc.fail()
			return
		}
		cc.pmu.Lock()
		ch := cc.pending[rep.ID]
		delete(cc.pending, rep.ID)
		cc.pmu.Unlock()
		if ch != nil {
			ch <- rep
		}
	}
}

func (cc *clientConn) fail() {
	cc.pmu.Lock()
	if cc.dead {
		cc.pmu.Unlock()
		return
	}
	cc.dead = true
	pending := cc.pending
	pendingIn := cc.pendingIn
	cc.pending = nil
	cc.pendingIn = nil
	cc.pmu.Unlock()
	cc.c.Close()
	for _, ch := range pending {
		ch <- nil
	}
	for _, ch := range pendingIn {
		ch <- nil
	}
}
