package netsvc

import (
	"context"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/cf"
	"accuracytrader/internal/core"
	"accuracytrader/internal/textindex"
	"accuracytrader/internal/wire"
)

// BackendOptions configures a workload backend handler.
type BackendOptions struct {
	// UnitCost is the modeled wall-clock cost per original data point
	// scanned (0 = pure compute). The real engines at laptop scale run
	// in microseconds; the modeled cost restores the cluster-scale
	// cost/accuracy trade so deadlines, degradation and hedging have
	// something real to act on — the live analog of the simulator's
	// UnitCostMs.
	UnitCost time.Duration
	// SubBudget is the component-side service deadline l_spe (paper §4:
	// 100ms): each sub-operation's Algorithm 1 budget is capped at
	// min(propagated request deadline, arrival + SubBudget), so a
	// component never spends more than SubBudget on one sub-operation
	// even when the gather policy is willing to wait much longer
	// (0 = bound by the propagated deadline alone).
	SubBudget time.Duration
	// Interfere returns this server's co-located interference delay for
	// a parent request (wire.Request.Seq; nil = none). It models the
	// machine the server runs on, not the subset: a hedged replica
	// dispatched to another server escapes it. The stall counts against
	// the sub-operation's budget, exactly like queueing delay.
	Interfere func(seq uint64) time.Duration
	// K is the per-component search hit count when the request carries
	// none (default 10).
	K int
	// IMaxFrac caps Algorithm 1 improvement at the top fraction of
	// ranked sets (the paper's imax). 0 selects the workload default:
	// 0.4 for search (paper §4.3), every set eligible for CF and
	// aggregation. Keeping typical service time well under the budget
	// is what gives hedging its headroom.
	IMaxFrac float64
}

func (o BackendOptions) withDefaults() BackendOptions {
	if o.K <= 0 {
		o.K = 10
	}
	return o
}

// imax converts the configured improvement fraction into a set cap.
func (o BackendOptions) imax(sets int, workloadDefault float64) int {
	frac := o.IMaxFrac
	if frac <= 0 {
		frac = workloadDefault
	}
	m := int(frac * float64(sets))
	if m < 1 {
		m = 1
	}
	return m
}

// errSub builds a StatusErr sub-reply.
func errSub(msg string) *wire.SubReply {
	return &wire.SubReply{Status: wire.StatusErr, Err: msg, Level: wire.NoLevel}
}

// budgetContinue stops Algorithm 1's improvement loop once the
// context's propagated deadline has passed — the per-hop budget
// enforcement (the paper's l_spe measured from the remaining request
// budget, not from a local constant).
func budgetContinue(ctx context.Context) core.Continue {
	dl, ok := ctx.Deadline()
	if !ok {
		return func(int) bool { return true }
	}
	return func(int) bool { return time.Now().Before(dl) }
}

// costedEngine wraps an application engine with the modeled scan cost.
// Costs are paid through a debt account: sub-millisecond charges are
// accumulated and slept in chunks, and each sleep's measured overshoot
// (Go timers overshoot small sleeps by up to ~1ms under load) is
// credited back, so the long-run wall cost tracks the model instead of
// the platform's timer granularity.
type costedEngine struct {
	inner    core.Engine
	synopsis time.Duration
	setCost  func(g int) time.Duration
	debt     time.Duration
}

// pay charges d against the debt account and sleeps when at least a
// millisecond is owed.
func (e *costedEngine) pay(d time.Duration) {
	e.debt += d
	if e.debt < time.Millisecond {
		return
	}
	t0 := time.Now()
	time.Sleep(e.debt)
	e.debt -= time.Since(t0)
}

func (e *costedEngine) ProcessSynopsis() []float64 {
	e.pay(e.synopsis)
	return e.inner.ProcessSynopsis()
}

func (e *costedEngine) ProcessSet(g int) {
	e.pay(e.setCost(g))
	e.inner.ProcessSet(g)
}

// tallyEngine wraps an engine to credit the data units each step
// touches to the request's scan counter — the Scanned dimension of
// cost attribution. It is installed only when a counter is present
// (traced requests), so the untraced hot path never pays the
// indirection.
type tallyEngine struct {
	inner    core.Engine
	synopsis uint64
	setSize  func(g int) uint64
	sc       *scanCounter
}

func (e *tallyEngine) ProcessSynopsis() []float64 {
	e.sc.n.Add(e.synopsis)
	return e.inner.ProcessSynopsis()
}

func (e *tallyEngine) ProcessSet(g int) {
	e.sc.n.Add(e.setSize(g))
	e.inner.ProcessSet(g)
}

// interfere applies the server's modeled co-located interference.
func (o BackendOptions) interfere(seq uint64) {
	if o.Interfere != nil {
		if d := o.Interfere(seq); d > 0 {
			time.Sleep(d)
		}
	}
}

// budget caps the sub-operation's context at l_spe from now.
// context.WithTimeout keeps the parent's deadline when it is earlier,
// so the propagated request deadline always remains the outer bound.
func (o BackendOptions) budget(ctx context.Context) (context.Context, context.CancelFunc) {
	if o.SubBudget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, o.SubBudget)
}

// NewAggBackend returns a handler serving the aggregation workload
// over comps (component c answers for subset c mod len(comps)). Exact
// requests scan every row; others run Algorithm 1 at the request's
// ladder level against the propagated budget.
func NewAggBackend(comps []*agg.Component, opts BackendOptions) Handler {
	opts = opts.withDefaults()
	return func(ctx context.Context, req *wire.Request) *wire.SubReply {
		if req.Kind != wire.KindAgg || req.Agg == nil || req.Subset < 0 {
			return errSub("netsvc: malformed aggregation request")
		}
		ctx, cancel := opts.budget(ctx)
		defer cancel()
		opts.interfere(req.Seq)
		c := comps[int(req.Subset)%len(comps)]
		q := agg.Query{Op: agg.Op(req.Agg.Op), Lo: req.Agg.Lo, Hi: req.Agg.Hi}
		rep := &wire.SubReply{Status: wire.StatusOK, Level: wire.NoLevel}
		if req.SLO == wire.SLOExact {
			AddScanned(ctx, uint64(c.T.NumRows()))
			if opts.UnitCost > 0 {
				time.Sleep(time.Duration(c.T.NumRows()) * opts.UnitCost)
			}
			res := agg.ExactResult(c, q)
			rep.Agg = &wire.AggResult{Sum: res.Sum, Cnt: res.Cnt, SumVar: res.SumVar, CntVar: res.CntVar}
			return rep
		}
		level := int(req.Level)
		if req.Level == wire.NoLevel {
			level = c.Syn.Levels() - 1
		}
		e := agg.GetEngine(c, q, level)
		var eng core.Engine = e
		if opts.UnitCost > 0 {
			eng = &costedEngine{
				inner:    e,
				synopsis: time.Duration(c.Syn.SampleUnits(e.Level)) * opts.UnitCost,
				setCost:  func(g int) time.Duration { return time.Duration(c.Syn.StratumSize(g)) * opts.UnitCost },
			}
		}
		if sc := scanCounterFrom(ctx); sc != nil {
			eng = &tallyEngine{
				inner:    eng,
				synopsis: uint64(c.Syn.SampleUnits(e.Level)),
				setSize:  func(g int) uint64 { return uint64(c.Syn.StratumSize(g)) },
				sc:       sc,
			}
		}
		trace := core.Run(eng, budgetContinue(ctx), opts.imax(c.Syn.NumStrata(), 1.0))
		served := e.Level
		res := e.TakeResult()
		e.Release()
		rep.Level = int16(served)
		rep.SetsProcessed = uint32(trace.SetsProcessed)
		rep.Agg = &wire.AggResult{Sum: res.Sum, Cnt: res.Cnt, SumVar: res.SumVar, CntVar: res.CntVar}
		return rep
	}
}

// NewCFBackend returns a handler serving the CF recommender workload
// over comps.
func NewCFBackend(comps []*cf.Component, opts BackendOptions) Handler {
	opts = opts.withDefaults()
	return func(ctx context.Context, req *wire.Request) *wire.SubReply {
		if req.Kind != wire.KindCF || req.CF == nil || req.Subset < 0 {
			return errSub("netsvc: malformed CF request")
		}
		ctx, cancel := opts.budget(ctx)
		defer cancel()
		opts.interfere(req.Seq)
		c := comps[int(req.Subset)%len(comps)]
		ratings := make([]cf.Rating, len(req.CF.Ratings))
		for i, r := range req.CF.Ratings {
			ratings[i] = cf.Rating{Item: r.Item, Score: r.Score}
		}
		creq := cf.NewRequest(ratings, req.CF.Targets)
		rep := &wire.SubReply{Status: wire.StatusOK, Level: wire.NoLevel}
		if req.SLO == wire.SLOExact {
			AddScanned(ctx, uint64(c.M.NumUsers()))
			if opts.UnitCost > 0 {
				time.Sleep(time.Duration(c.M.NumUsers()) * opts.UnitCost)
			}
			res := cf.ExactResult(c, creq)
			rep.CF = &wire.CFResult{Num: res.Num, Den: res.Den}
			return rep
		}
		e := cf.GetEngine(c, creq)
		var eng core.Engine = e
		if opts.UnitCost > 0 {
			eng = &costedEngine{
				inner:    e,
				synopsis: time.Duration(len(c.Aggs)) * opts.UnitCost,
				setCost:  func(g int) time.Duration { return time.Duration(len(c.Aggs[g].Members)) * opts.UnitCost },
			}
		}
		if sc := scanCounterFrom(ctx); sc != nil {
			eng = &tallyEngine{
				inner:    eng,
				synopsis: uint64(len(c.Aggs)),
				setSize:  func(g int) uint64 { return uint64(len(c.Aggs[g].Members)) },
				sc:       sc,
			}
		}
		trace := core.Run(eng, budgetContinue(ctx), opts.imax(len(c.Aggs), 1.0))
		res := e.TakeResult()
		e.Release()
		rep.SetsProcessed = uint32(trace.SetsProcessed)
		rep.CF = &wire.CFResult{Num: res.Num, Den: res.Den}
		return rep
	}
}

// NewSearchBackend returns a handler serving the web-search workload
// over comps.
func NewSearchBackend(comps []*textindex.Component, opts BackendOptions) Handler {
	opts = opts.withDefaults()
	return func(ctx context.Context, req *wire.Request) *wire.SubReply {
		if req.Kind != wire.KindSearch || req.Search == nil || req.Subset < 0 {
			return errSub("netsvc: malformed search request")
		}
		ctx, cancel := opts.budget(ctx)
		defer cancel()
		opts.interfere(req.Seq)
		c := comps[int(req.Subset)%len(comps)]
		q := c.Ix.ParseQuery(req.Search.Query)
		k := int(req.Search.K)
		if k <= 0 {
			k = opts.K
		}
		rep := &wire.SubReply{Status: wire.StatusOK, Level: wire.NoLevel}
		if req.SLO == wire.SLOExact {
			AddScanned(ctx, uint64(c.Ix.NumDocs()))
			if opts.UnitCost > 0 {
				time.Sleep(time.Duration(c.Ix.NumDocs()) * opts.UnitCost)
			}
			rep.Search = wireHits(textindex.ExactTopK(c, q, k))
			return rep
		}
		e := textindex.GetEngine(c, q)
		var eng core.Engine = e
		if opts.UnitCost > 0 {
			eng = &costedEngine{
				inner:    e,
				synopsis: time.Duration(len(c.Aggs)) * opts.UnitCost,
				setCost:  func(g int) time.Duration { return time.Duration(c.GroupSize(g)) * opts.UnitCost },
			}
		}
		if sc := scanCounterFrom(ctx); sc != nil {
			eng = &tallyEngine{
				inner:    eng,
				synopsis: uint64(len(c.Aggs)),
				setSize:  func(g int) uint64 { return uint64(c.GroupSize(g)) },
				sc:       sc,
			}
		}
		trace := core.Run(eng, budgetContinue(ctx), opts.imax(len(c.Aggs), 0.4))
		hits := e.TopK(k)
		e.Release()
		rep.SetsProcessed = uint32(trace.SetsProcessed)
		rep.Search = wireHits(hits)
		return rep
	}
}

func wireHits(hits []textindex.Hit) *wire.SearchResult {
	out := make([]wire.Hit, len(hits))
	for i, h := range hits {
		out[i] = wire.Hit{Doc: int32(h.Doc), Score: h.Score}
	}
	return &wire.SearchResult{Hits: out}
}
