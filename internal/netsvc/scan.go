package netsvc

import (
	"context"
	"sync/atomic"
)

// scanCounter tallies the rows/postings a backend computation touched.
// Component servers install one in the request context only when the
// request is traced, so the untraced hot path stays allocation-free.
type scanCounter struct {
	n atomic.Uint64
}

type scanCounterKey struct{}

func withScanCounter(ctx context.Context, c *scanCounter) context.Context {
	return context.WithValue(ctx, scanCounterKey{}, c)
}

func scanCounterFrom(ctx context.Context) *scanCounter {
	c, _ := ctx.Value(scanCounterKey{}).(*scanCounter)
	return c
}

// AddScanned credits n scanned rows/postings to the request's scan
// counter. Backend engines call it from compute paths; when no counter
// is installed (untraced request, or a caller outside a component
// server) it is a no-op.
func AddScanned(ctx context.Context, n uint64) {
	if c := scanCounterFrom(ctx); c != nil {
		c.n.Add(n)
	}
}
