package netsvc

import (
	"context"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/rescache"
	"accuracytrader/internal/service"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/wire"
)

// TestHedgeTriggerColdStartGuard is the satellite check on the
// P²-estimated p95 hedge trigger: with fewer than five observations the
// estimator has no meaningful tail estimate, so the hedge delay must
// stay at the configured floor instead of a garbage threshold — and
// must track the real tail once warm.
func TestHedgeTriggerColdStartGuard(t *testing.T) {
	floor := 2 * time.Millisecond
	a, err := NewAggregator([]string{"127.0.0.1:1"}, AggregatorOptions{HedgeFloor: floor})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Four fat samples: still cold, the trigger must hold the floor.
	for i := 0; i < stats.HedgeWarmObservations-1; i++ {
		a.recordLatency(300 * time.Millisecond)
	}
	if got := a.EstimatedP95(); got != floor {
		t.Fatalf("cold-start hedge delay = %v, want the %v floor", got, floor)
	}
	// The fifth observation completes the marker set: the trigger may
	// now move, and with five identical 300ms samples it must.
	a.recordLatency(300 * time.Millisecond)
	if got := a.EstimatedP95(); got < 100*time.Millisecond {
		t.Fatalf("warm hedge delay = %v, not tracking the %v samples", got, 300*time.Millisecond)
	}
	// The floor still clamps from below once warm.
	b, err := NewAggregator([]string{"127.0.0.1:1"}, AggregatorOptions{HedgeFloor: floor})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 16; i++ {
		b.recordLatency(10 * time.Microsecond)
	}
	if got := b.EstimatedP95(); got != floor {
		t.Fatalf("warm sub-floor estimate = %v, want clamped to %v", got, floor)
	}
}

// startCachedFrontServer builds the full stack — component servers,
// aggregator, frontend, result cache — counting backend handler
// invocations.
func startCachedFrontServer(t *testing.T, n int, cacheCfg rescache.Config) (*FrontServer, *rescache.Cache, *Client, *atomic.Int64, []*agg.Component) {
	t.Helper()
	comps := buildAggComps(t, n)
	var backendCalls atomic.Int64
	inner := NewAggBackend(comps, BackendOptions{})
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		_, addrs[i] = startServer(t, func(ctx context.Context, req *wire.Request) *wire.SubReply {
			backendCalls.Add(1)
			return inner(ctx, req)
		}, ServerOptions{Workers: 2})
	}
	a, err := NewAggregator(addrs, AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	ctrl, err := frontend.NewController(frontend.ControllerConfig{
		Levels:        comps[0].Syn.Levels(),
		LevelAccuracy: []float64{0.8, 0.97},
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := frontend.New(a, frontend.Options{Controller: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := rescache.New(cacheCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cache.Close)
	fs := NewFrontServer(a, fe, ServerOptions{})
	if err := fs.EnableCache(cache); err != nil {
		t.Fatal(err)
	}
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fs.Serve(fl)
	t.Cleanup(fs.Close)
	cl, err := DialClient(fl.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return fs, cache, cl, &backendCalls, comps
}

// TestFrontServerCacheHitAndFloor covers the networked cache end to
// end: a repeat request is answered from the cache (Cached flag set,
// no backend work), a Bounded request whose floor exceeds the entry's
// recorded accuracy recomputes, and an epoch bump invalidates.
func TestFrontServerCacheHitAndFloor(t *testing.T) {
	const n = 2
	// RefreshBelow under every entry's accuracy: the background worker
	// stays idle, so backend-call counts are deterministic.
	fs, cache, cl, backendCalls, _ := startCachedFrontServer(t, n, rescache.Config{Capacity: 64, RefreshBelow: 0.01})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req := aggReq(agg.Sum, 0, math.Inf(1))
	req.SLO, req.MinAccuracy = wire.SLOBounded, 0.9

	rep1, err := cl.Call(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Status != wire.ReplyOK || rep1.Cached {
		t.Fatalf("first reply = status %d cached %v", rep1.Status, rep1.Cached)
	}
	calls := backendCalls.Load()
	if calls == 0 {
		t.Fatal("first request did no backend work")
	}

	// Same semantic request (metadata may differ): served from cache.
	rep2, err := cl.Call(ctx, aggReqBounded(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Cached {
		t.Fatal("repeat request not served from cache")
	}
	if backendCalls.Load() != calls {
		t.Fatal("cache hit still did backend work")
	}
	if rep2.ID == rep1.ID {
		t.Fatal("cached reply not re-stamped with its own request ID")
	}
	// The cached payload is the same composed answer.
	for k := range rep1.Agg.Sum {
		if rep1.Agg.Sum[k] != rep2.Agg.Sum[k] {
			t.Fatalf("cached answer diverged at key %d", k)
		}
	}

	// A floor above the entry's recorded accuracy (finest level 0.97)
	// must recompute, not serve the entry.
	strict := aggReqBounded(0.99)
	rep3, err := cl.Call(ctx, strict)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Cached {
		t.Fatal("entry served above its recorded accuracy")
	}
	if backendCalls.Load() == calls {
		t.Fatal("floor-violating lookup did not recompute")
	}

	// Epoch bump: the data changed, the entry must not serve again.
	cache.BumpEpoch()
	calls = backendCalls.Load()
	rep4, err := cl.Call(ctx, aggReqBounded(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if rep4.Cached || backendCalls.Load() == calls {
		t.Fatal("stale entry served after epoch bump")
	}
	if fs.CacheHits() == 0 {
		t.Fatal("front-server cache-hit counter never moved")
	}
}

// aggReqBounded is the Bounded{minAcc} whole-service SUM request the
// cache tests repeat.
func aggReqBounded(minAcc float64) *wire.Request {
	req := aggReq(agg.Sum, 0, math.Inf(1))
	req.SLO, req.MinAccuracy = wire.SLOBounded, minAcc
	return req
}

// TestFrontServerCoalescesConcurrentMisses: N concurrent identical
// whole-service requests against a cold cache must fan out once.
func TestFrontServerCoalescesConcurrentMisses(t *testing.T) {
	const n = 2
	const clients = 16
	_, cache, cl, backendCalls, _ := startCachedFrontServer(t, n, rescache.Config{Capacity: 64, RefreshBelow: 0.01})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	var cached atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := cl.Call(ctx, aggReqBounded(0.9))
			if err != nil {
				t.Error(err)
				return
			}
			if rep.Status != wire.ReplyOK {
				t.Errorf("reply status %d err %q", rep.Status, rep.Err)
			}
			if rep.Cached {
				cached.Add(1)
			}
		}()
	}
	wg.Wait()
	// Exactly one fan-out: n sub-operations total. (The requests race
	// through one multiplexed client connection, so every waiter really
	// is concurrent with the winner.)
	if got := backendCalls.Load(); got != n {
		t.Fatalf("%d backend sub-operations for %d concurrent identical requests, want %d", got, clients, n)
	}
	if cached.Load() != clients-1 {
		t.Fatalf("%d of %d requests shared the computation, want %d", cached.Load(), clients, clients-1)
	}
	// A late-scheduled client hits the freshly stored entry instead of
	// joining the flight; both count as sharing the one computation.
	if st := cache.Stats(); st.Coalesced+st.Hits != clients-1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

// TestFrontServerCacheRefreshToExact: a coarse cached entry is upgraded
// to the exact answer by the background worker, so later hits carry
// accuracy 1 — "coarse first, refine later" applied to reuse.
func TestFrontServerCacheRefreshToExact(t *testing.T) {
	const n = 2
	_, cache, cl, _, comps := startCachedFrontServer(t, n, rescache.Config{
		Capacity: 64, RefreshBelow: 1, RefreshInterval: time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// BestEffort request: computed at the finest synopsis level
	// (recorded accuracy 0.97 < 1), so its entry is a refresh candidate.
	req := aggReq(agg.Sum, 0, math.Inf(1))
	req.SLO = wire.SLOBestEffort
	if _, err := cl.Call(ctx, req); err != nil {
		t.Fatal(err)
	}
	// First hit enqueues the refresh.
	if _, err := cl.Call(ctx, req); err != nil {
		t.Fatal(err)
	}

	exact := agg.NewResult(comps[0].T.NumKeys())
	for _, c := range comps {
		exact.Merge(agg.ExactResult(c, agg.Query{Op: agg.Sum, Lo: 0, Hi: math.Inf(1)}))
	}
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if cache.Stats().Refreshes > 0 {
			rep, err := cl.Call(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Cached {
				t.Fatal("refreshed entry not served from cache")
			}
			got := AggResultOf(rep.Agg)
			for k := range exact.Sum {
				if got.Sum[k] != exact.Sum[k] {
					t.Fatalf("refreshed answer not exact at key %d: %v != %v", k, got.Sum[k], exact.Sum[k])
				}
			}
			return
		}
		cl.Call(ctx, req) // keep hitting so a dropped enqueue retries
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("cache entry never refreshed to exact")
}
