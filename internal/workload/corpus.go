package workload

import (
	"fmt"
	"math"
	"strings"

	"accuracytrader/internal/stats"
	"accuracytrader/internal/textindex"
)

// CorpusConfig shapes the synthetic web corpus. Topics are grouped into
// theme families (e.g. sports/tech/finance) with a shared family
// vocabulary: real web corpora have this hierarchical, low-rank topic
// structure, and it is what lets the paper's 3-dimensional SVD reduction
// preserve page similarity. Flat isotropic topics would not embed in
// three dimensions.
type CorpusConfig struct {
	DocsPerSubset int     // paper: 0.5M; default laptop scale far lower
	Themes        int     // theme families
	Topics        int     // topical clusters of pages (spread over themes)
	TopicVocab    int     // characteristic words per topic
	ThemeVocab    int     // characteristic words per theme family
	SharedVocab   int     // background vocabulary (Zipf-distributed)
	DocTokens     int     // tokens per page
	TopicBias     float64 // fraction of tokens from the page's topic vocabulary
	ThemeBias     float64 // fraction of tokens from the page's theme vocabulary
	Seed          uint64
}

// DefaultCorpusConfig returns a laptop-scale corpus with the structure
// the search-engine experiments need.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		DocsPerSubset: 400,
		Themes:        3,
		Topics:        9,
		TopicVocab:    40,
		ThemeVocab:    60,
		SharedVocab:   400,
		DocTokens:     60,
		TopicBias:     0.45,
		ThemeBias:     0.30,
	}
}

// CorpusData is the generated search input: per-subset inverted indexes
// over topically clustered pages, plus the topic of every page.
type CorpusData struct {
	Subsets []*textindex.Index
	Topics  [][]int
	cfg     CorpusConfig
}

// GenerateCorpus builds nSubsets indexes. Pages concentrate on one topic
// each: tokens come from the page's topic vocabulary, its theme family's
// vocabulary, and the shared background vocabulary, all Zipf-distributed.
func GenerateCorpus(cfg CorpusConfig, nSubsets int) *CorpusData {
	if cfg.Themes <= 0 {
		cfg.Themes = 1
	}
	rng := stats.NewRNG(cfg.Seed ^ 0xabcdef)
	d := &CorpusData{cfg: cfg}
	for s := 0; s < nSubsets; s++ {
		srng := rng.Split(uint64(s) + 1)
		ix := textindex.NewIndex()
		topics := make([]int, cfg.DocsPerSubset)
		for p := 0; p < cfg.DocsPerSubset; p++ {
			topic := srng.Intn(cfg.Topics)
			topics[p] = topic
			ix.Add(d.pageText(srng, topic))
		}
		d.Subsets = append(d.Subsets, ix)
		d.Topics = append(d.Topics, topics)
	}
	return d
}

// pageText synthesizes one page's content. Zipf samplers are rebuilt per
// call from the page RNG; their CDFs are cached per config so this stays
// cheap.
func (d *CorpusData) pageText(rng *stats.RNG, topic int) string {
	theme := topic % d.cfg.Themes
	var sb strings.Builder
	for w := 0; w < d.cfg.DocTokens; w++ {
		r := rng.Float64()
		switch {
		case r < d.cfg.TopicBias:
			fmt.Fprintf(&sb, "t%dw%d ", topic, zipfDraw(rng, d.cfg.TopicVocab))
		case r < d.cfg.TopicBias+d.cfg.ThemeBias:
			fmt.Fprintf(&sb, "th%dw%d ", theme, zipfDraw(rng, d.cfg.ThemeVocab))
		default:
			fmt.Fprintf(&sb, "bg%d ", zipfDraw(rng, d.cfg.SharedVocab))
		}
	}
	return sb.String()
}

// zipfDraw draws a Zipf(1.05) rank in [0,n) via inverse-power sampling —
// an approximation that avoids carrying sampler state per vocabulary.
func zipfDraw(rng *stats.RNG, n int) int {
	u := rng.Float64()
	// Inverse CDF of a continuous power-law on [1, n+1).
	x := pow(float64(n+1), u)
	k := int(x) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

func pow(base, exp float64) float64 {
	return math.Exp(exp * math.Log(base))
}

// PageText exposes page synthesis for update experiments (new or changed
// pages on subset s).
func (d *CorpusData) PageText(seed uint64, topic int) string {
	rng := stats.NewRNG(seed ^ 0x5bd1e995)
	return d.pageText(rng, topic)
}

// SampleQueries draws n queries: each picks a topic and 2-3 of its
// characteristic words (weighted like page text, so frequent page words
// are frequent query words, as in real query logs).
func (d *CorpusData) SampleQueries(seed uint64, n int) []string {
	rng := stats.NewRNG(seed ^ 0x2545f491)
	out := make([]string, n)
	for i := range out {
		topic := rng.Intn(d.cfg.Topics)
		terms := 2 + rng.Intn(2)
		var sb strings.Builder
		for k := 0; k < terms; k++ {
			fmt.Fprintf(&sb, "t%dw%d ", topic, zipfDraw(rng, d.cfg.TopicVocab))
		}
		out[i] = sb.String()
	}
	return out
}
