package workload

import (
	"accuracytrader/internal/cf"
	"accuracytrader/internal/stats"
)

// RatingsConfig shapes the synthetic rating data.
type RatingsConfig struct {
	UsersPerSubset int     // paper: ~4000
	Items          int     // item-space size; paper: ~1000 per subset
	Clusters       int     // latent taste clusters
	Density        float64 // fraction of items each user rates
	Noise          float64 // rating noise sigma
	Seed           uint64
}

// DefaultRatingsConfig returns a laptop-scale rating workload with the
// paper's structure.
func DefaultRatingsConfig() RatingsConfig {
	return RatingsConfig{
		UsersPerSubset: 400,
		Items:          200,
		Clusters:       8,
		Density:        0.25,
		Noise:          0.35,
	}
}

// RatingsData is the generated recommender input: per-subset rating
// matrices sharing one global taste structure, so active users correlate
// with users on every component.
type RatingsData struct {
	Subsets  []*cf.Matrix
	Clusters [][]int // cluster of each user, per subset
	profiles [][]float64
	cfg      RatingsConfig
}

// GenerateRatings builds nSubsets rating matrices. Users are drawn from
// shared cluster profiles: users in the same cluster rate items similarly
// (the like-minded-neighbour structure user-based CF exploits).
//
// Cluster profiles are generated from a low-dimensional latent taste
// space (items carry 3 latent genre factors; each cluster is a taste
// vector over those factors), because real rating matrices are
// approximately low-rank — which is precisely why the paper's step-1 SVD
// to ~3 dimensions preserves user similarity. Isotropic random profiles
// would make the 3-dimensional reduction structurally impossible.
func GenerateRatings(cfg RatingsConfig, nSubsets int) *RatingsData {
	const genres = 3
	rng := stats.NewRNG(cfg.Seed)
	itemFactors := make([][]float64, cfg.Items)
	for i := range itemFactors {
		f := make([]float64, genres)
		for d := range f {
			f[d] = rng.Norm(0, 1)
		}
		itemFactors[i] = f
	}
	profiles := make([][]float64, cfg.Clusters)
	for p := range profiles {
		taste := make([]float64, genres)
		for d := range taste {
			taste[d] = rng.Norm(0, 1)
		}
		prof := make([]float64, cfg.Items)
		for i := range prof {
			dot := 0.0
			for d := 0; d < genres; d++ {
				dot += taste[d] * itemFactors[i][d]
			}
			prof[i] = clampScore(3 + dot)
		}
		profiles[p] = prof
	}
	d := &RatingsData{cfg: cfg, profiles: profiles}
	for s := 0; s < nSubsets; s++ {
		srng := rng.Split(uint64(s) + 1)
		m := cf.NewMatrix(cfg.Items)
		clusters := make([]int, cfg.UsersPerSubset)
		for u := 0; u < cfg.UsersPerSubset; u++ {
			cl := srng.Intn(cfg.Clusters)
			clusters[u] = cl
			m.AddUser(d.userRatings(srng, cl, cfg.Density))
		}
		d.Subsets = append(d.Subsets, m)
		d.Clusters = append(d.Clusters, clusters)
	}
	return d
}

// userRatings draws one user's ratings around a cluster profile.
func (d *RatingsData) userRatings(rng *stats.RNG, cluster int, density float64) []cf.Rating {
	prof := d.profiles[cluster]
	var rs []cf.Rating
	for i := 0; i < d.cfg.Items; i++ {
		if rng.Float64() < density {
			rs = append(rs, cf.Rating{Item: int32(i), Score: clampScore(prof[i] + rng.Norm(0, d.cfg.Noise))})
		}
	}
	if len(rs) == 0 {
		rs = []cf.Rating{{Item: int32(rng.Intn(d.cfg.Items)), Score: clampScore(prof[0])}}
	}
	return rs
}

func clampScore(s float64) float64 {
	if s < 1 {
		return 1
	}
	if s > 5 {
		return 5
	}
	return s
}

// CFRequest is one recommendation request with ground truth: the active
// user's known ratings (80% of their ratings, per paper §4.2) and the
// held-out target items with their actual scores.
type CFRequest struct {
	Known   []cf.Rating
	Targets []int32
	Truth   []float64
}

// SampleCFRequests draws n active users from the shared taste structure
// and splits each user's ratings into known (weight computation) and
// target (prediction) parts. targetFrac is the held-out fraction (paper:
// 20%).
func (d *RatingsData) SampleCFRequests(seed uint64, n int, targetFrac float64) []CFRequest {
	rng := stats.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	out := make([]CFRequest, 0, n)
	for k := 0; k < n; k++ {
		cl := rng.Intn(d.cfg.Clusters)
		// Active users rate more densely so weights are well defined.
		rs := d.userRatings(rng, cl, d.cfg.Density*2)
		rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
		cut := len(rs) - int(targetFrac*float64(len(rs)))
		if cut < 2 {
			cut = 2
		}
		if cut >= len(rs) {
			cut = len(rs) - 1
		}
		if cut < 1 {
			continue
		}
		req := CFRequest{}
		req.Known = append(req.Known, rs[:cut]...)
		for _, r := range rs[cut:] {
			req.Targets = append(req.Targets, r.Item)
			req.Truth = append(req.Truth, r.Score)
		}
		if len(req.Targets) == 0 {
			continue
		}
		out = append(out, req)
	}
	return out
}
