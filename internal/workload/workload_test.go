package workload

import (
	"math"
	"testing"

	"accuracytrader/internal/cf"
	"accuracytrader/internal/stats"
)

func TestGenerateRatingsShape(t *testing.T) {
	cfg := DefaultRatingsConfig()
	cfg.UsersPerSubset = 100
	cfg.Seed = 1
	d := GenerateRatings(cfg, 3)
	if len(d.Subsets) != 3 || len(d.Clusters) != 3 {
		t.Fatalf("subsets = %d", len(d.Subsets))
	}
	for s, m := range d.Subsets {
		if m.NumUsers() != 100 {
			t.Fatalf("subset %d users = %d", s, m.NumUsers())
		}
		if m.NumItems() != cfg.Items {
			t.Fatalf("subset %d items = %d", s, m.NumItems())
		}
		for u := 0; u < m.NumUsers(); u++ {
			for _, r := range m.Ratings(u) {
				if r.Score < 1 || r.Score > 5 {
					t.Fatalf("score %v out of 1..5", r.Score)
				}
			}
		}
	}
}

func TestRatingsClusterStructure(t *testing.T) {
	// Same-cluster users must have higher Pearson weights than
	// cross-cluster users; this is the structure CF and the synopsis need.
	cfg := DefaultRatingsConfig()
	cfg.UsersPerSubset = 150
	cfg.Density = 0.3
	cfg.Seed = 2
	d := GenerateRatings(cfg, 1)
	m := d.Subsets[0]
	cl := d.Clusters[0]
	var same, diff stats.Summary
	for a := 0; a < 60; a++ {
		for b := a + 1; b < 60; b++ {
			w := cf.Weight(m.Ratings(a), m.Ratings(b))
			if cl[a] == cl[b] {
				same.Add(w)
			} else {
				diff.Add(w)
			}
		}
	}
	if same.Mean() < diff.Mean()+0.3 {
		t.Fatalf("cluster weights not separated: same=%v diff=%v", same.Mean(), diff.Mean())
	}
}

func TestGenerateRatingsDeterministic(t *testing.T) {
	cfg := DefaultRatingsConfig()
	cfg.UsersPerSubset = 50
	cfg.Seed = 3
	a := GenerateRatings(cfg, 1)
	b := GenerateRatings(cfg, 1)
	for u := 0; u < 50; u++ {
		ra, rb := a.Subsets[0].Ratings(u), b.Subsets[0].Ratings(u)
		if len(ra) != len(rb) {
			t.Fatal("not deterministic")
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestSampleCFRequests(t *testing.T) {
	cfg := DefaultRatingsConfig()
	cfg.UsersPerSubset = 50
	cfg.Seed = 4
	d := GenerateRatings(cfg, 1)
	reqs := d.SampleCFRequests(7, 50, 0.2)
	if len(reqs) < 45 {
		t.Fatalf("only %d requests sampled", len(reqs))
	}
	for _, r := range reqs {
		if len(r.Known) < 2 {
			t.Fatalf("too few known ratings: %d", len(r.Known))
		}
		if len(r.Targets) == 0 || len(r.Targets) != len(r.Truth) {
			t.Fatalf("targets/truth mismatch: %d/%d", len(r.Targets), len(r.Truth))
		}
		// Targets must not appear in known.
		known := map[int32]bool{}
		for _, k := range r.Known {
			known[k.Item] = true
		}
		for _, tg := range r.Targets {
			if known[tg] {
				t.Fatal("target leaked into known ratings")
			}
		}
		for _, tv := range r.Truth {
			if tv < 1 || tv > 5 {
				t.Fatalf("truth %v out of range", tv)
			}
		}
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.DocsPerSubset = 80
	cfg.Seed = 5
	d := GenerateCorpus(cfg, 2)
	if len(d.Subsets) != 2 {
		t.Fatalf("subsets = %d", len(d.Subsets))
	}
	for s, ix := range d.Subsets {
		if ix.NumDocs() != 80 {
			t.Fatalf("subset %d docs = %d", s, ix.NumDocs())
		}
		if ix.NumTerms() < cfg.Topics {
			t.Fatalf("vocab too small: %d", ix.NumTerms())
		}
	}
}

func TestCorpusQueriesRetrieveOwnTopic(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.DocsPerSubset = 200
	cfg.Seed = 6
	d := GenerateCorpus(cfg, 1)
	ix := d.Subsets[0]
	queries := d.SampleQueries(8, 30)
	agree := 0
	total := 0
	for _, qs := range queries {
		q := ix.ParseQuery(qs)
		if len(q.Terms) == 0 {
			continue
		}
		hits := ix.Search(q, 10)
		if len(hits) == 0 {
			continue
		}
		// Query topic from its text ("t<k>w...").
		var topic int
		if _, err := fmtSscanfTopic(qs, &topic); err != nil {
			t.Fatalf("unparseable query %q", qs)
		}
		for _, h := range hits {
			total++
			if d.Topics[0][h.Doc] == topic {
				agree++
			}
		}
	}
	if total == 0 {
		t.Fatal("no hits at all")
	}
	if frac := float64(agree) / float64(total); frac < 0.8 {
		t.Fatalf("only %.2f of hits match query topic", frac)
	}
}

// fmtSscanfTopic extracts the topic id from a query like "t3w7 t3w1 ".
func fmtSscanfTopic(q string, topic *int) (int, error) {
	var w int
	n, err := sscanf(q, topic, &w)
	return n, err
}

func sscanf(q string, topic, w *int) (int, error) {
	// Minimal manual parse to avoid fmt's scanning quirks with our token
	// format: expects leading "t<digits>w".
	i := 0
	if i >= len(q) || q[i] != 't' {
		return 0, errParse
	}
	i++
	v := 0
	start := i
	for i < len(q) && q[i] >= '0' && q[i] <= '9' {
		v = v*10 + int(q[i]-'0')
		i++
	}
	if i == start {
		return 0, errParse
	}
	*topic = v
	return 1, nil
}

var errParse = errorString("parse error")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestPageTextTopicBias(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Seed = 9
	d := GenerateCorpus(cfg, 1)
	text := d.PageText(3, 2)
	if len(text) == 0 {
		t.Fatal("empty page")
	}
}

func TestPoissonArrivals(t *testing.T) {
	rng := stats.NewRNG(10)
	arr := PoissonArrivals(rng, 50, 60_000)
	if len(arr) < 2400 || len(arr) > 3600 {
		t.Fatalf("50/s over 60s gave %d arrivals", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	if arr[len(arr)-1] >= 60_000 {
		t.Fatal("arrival beyond horizon")
	}
	if PoissonArrivals(rng, 0, 1000) != nil {
		t.Fatal("zero rate should give nil")
	}
}

func TestSogouPatternShape(t *testing.T) {
	p := SogouLikePattern(100)
	// Peak hour (21, index 20) at 100 req/s.
	if p.HourlyRate[20] != 100 {
		t.Fatalf("peak = %v", p.HourlyRate[20])
	}
	// Night trough far below daytime.
	if p.HourlyRate[4] > 0.2*p.HourlyRate[20] {
		t.Fatalf("trough %v too high", p.HourlyRate[4])
	}
	// Hour 9 (8-9am, index 8) must be increasing within the hour.
	const hourMs = 3600_000.0
	early := p.Rate(8*hourMs + 5*60_000)
	late := p.Rate(9*hourMs - 5*60_000)
	if late <= early {
		t.Fatalf("hour 9 not increasing: %v -> %v", early, late)
	}
	// Hour 24 (index 23) must be decreasing within the hour.
	early = p.Rate(23*hourMs + 5*60_000)
	late = p.Rate(24*hourMs - 5*60_000)
	if late >= early {
		t.Fatalf("hour 24 not decreasing: %v -> %v", early, late)
	}
}

func TestRateWraparound(t *testing.T) {
	p := SogouLikePattern(80)
	const day = 24 * 3600_000.0
	if math.Abs(p.Rate(0)-p.Rate(day)) > 1e-9 {
		t.Fatal("rate not periodic")
	}
	if math.Abs(p.Rate(-3600_000)-p.Rate(day-3600_000)) > 1e-9 {
		t.Fatal("negative time not wrapped")
	}
}

func TestHourArrivalsMatchRate(t *testing.T) {
	p := SogouLikePattern(60)
	rng := stats.NewRNG(11)
	arr := p.HourArrivals(rng, 8, 9) // paper hour 9
	mean := p.MeanRate(8, 9)
	want := mean * 3600
	if float64(len(arr)) < want*0.9 || float64(len(arr)) > want*1.1 {
		t.Fatalf("hour-9 arrivals %d, want ~%.0f", len(arr), want)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	if len(arr) > 0 && (arr[0] < 0 || arr[len(arr)-1] >= 3600_000) {
		t.Fatal("arrivals outside window")
	}
	// The first half of hour 9 must be quieter than the second (ramping).
	half := 0
	for _, a := range arr {
		if a < 1800_000 {
			half++
		}
	}
	if half*2 >= len(arr) {
		t.Fatalf("hour 9 arrivals not ramping: %d of %d in first half", half, len(arr))
	}
}

func TestMeanRatePositive(t *testing.T) {
	p := SogouLikePattern(50)
	for h := 0; h < 24; h++ {
		if p.MeanRate(float64(h), float64(h+1)) <= 0 {
			t.Fatalf("hour %d mean rate not positive", h)
		}
	}
}

func TestCorpusThemeStructure(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.DocsPerSubset = 150
	cfg.Seed = 20
	d := GenerateCorpus(cfg, 1)
	ix := d.Subsets[0]
	// Theme vocabulary must exist and be shared across same-theme topics:
	// a theme word should match documents of several topics.
	id, ok := ix.TermID("th0w0")
	if !ok {
		t.Fatal("theme vocabulary missing")
	}
	_ = id
	q := ix.ParseQuery("th0w0 th0w1")
	hits := ix.Search(q, 50)
	topicsSeen := map[int]bool{}
	for _, h := range hits {
		topicsSeen[d.Topics[0][h.Doc]] = true
	}
	if len(topicsSeen) < 2 {
		t.Fatalf("theme words matched only %d topics", len(topicsSeen))
	}
	// All matched topics must belong to theme 0 (topic %% Themes == 0).
	for topic := range topicsSeen {
		if topic%cfg.Themes != 0 {
			t.Fatalf("theme-0 word matched topic %d", topic)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.DocsPerSubset = 60
	cfg.Seed = 21
	a := GenerateCorpus(cfg, 1)
	b := GenerateCorpus(cfg, 1)
	if a.Subsets[0].NumTerms() != b.Subsets[0].NumTerms() {
		t.Fatal("corpus not deterministic")
	}
	qa := a.SampleQueries(5, 10)
	qb := b.SampleQueries(5, 10)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("queries not deterministic")
		}
	}
}

func TestSampleCFRequestsDeterministic(t *testing.T) {
	cfg := DefaultRatingsConfig()
	cfg.UsersPerSubset = 40
	cfg.Seed = 22
	d := GenerateRatings(cfg, 1)
	a := d.SampleCFRequests(9, 20, 0.2)
	b := d.SampleCFRequests(9, 20, 0.2)
	if len(a) != len(b) {
		t.Fatal("request count differs")
	}
	for i := range a {
		if len(a[i].Known) != len(b[i].Known) || len(a[i].Targets) != len(b[i].Targets) {
			t.Fatalf("request %d differs", i)
		}
	}
	// A different seed must give different requests.
	c := d.SampleCFRequests(10, 20, 0.2)
	same := true
	for i := range a {
		if i < len(c) && (len(a[i].Known) != len(c[i].Known) || len(a[i].Targets) != len(c[i].Targets)) {
			same = false
			break
		}
	}
	if same && len(a) == len(c) {
		// Lengths can coincide; compare first target items.
		diff := false
		for i := range a {
			if a[i].Targets[0] != c[i].Targets[0] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds gave identical requests")
		}
	}
}

func TestRatingsLowRankStructure(t *testing.T) {
	// The generator must produce genuinely low-rank taste structure: some
	// cluster pairs correlate strongly (positively or negatively), unlike
	// isotropic random profiles.
	cfg := DefaultRatingsConfig()
	cfg.UsersPerSubset = 100
	cfg.Seed = 23
	d := GenerateRatings(cfg, 1)
	m := d.Subsets[0]
	cl := d.Clusters[0]
	// Find two users from different clusters with |w| > 0.8: with
	// low-rank tastes such pairs must exist.
	found := false
	for a := 0; a < 60 && !found; a++ {
		for b := a + 1; b < 60; b++ {
			if cl[a] == cl[b] {
				continue
			}
			w := cf.Weight(m.Ratings(a), m.Ratings(b))
			if w > 0.8 || w < -0.8 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no strongly correlated cross-cluster pair; structure looks isotropic")
	}
}

func TestZipfDrawBounds(t *testing.T) {
	rng := stats.NewRNG(24)
	counts := make([]int, 20)
	for i := 0; i < 20000; i++ {
		k := zipfDraw(rng, 20)
		if k < 0 || k >= 20 {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("zipf head not heavier: %v", counts)
	}
}
