package workload

import (
	"accuracytrader/internal/stats"
)

// PoissonArrivals generates an open-loop arrival sequence at a fixed rate
// (requests/second) over [0, horizonMs), as used by the Table 1-2 runs.
func PoissonArrivals(rng *stats.RNG, ratePerSec, horizonMs float64) []float64 {
	if ratePerSec <= 0 {
		return nil
	}
	var out []float64
	t := 0.0
	for {
		t += rng.Exp(ratePerSec / 1000)
		if t >= horizonMs {
			return out
		}
		out = append(out, t)
	}
}

// DiurnalPattern is a 24-hour arrival-rate profile: HourlyRate[h] is the
// mean rate (requests/second) during hour h+1 (hour 1 = midnight-1am,
// matching the paper's hour numbering). Rates are linearly interpolated
// between hour midpoints so within-hour trends (hour 9 increasing, hour
// 10 steady, hour 24 decreasing) are reproduced.
type DiurnalPattern struct {
	HourlyRate [24]float64
}

// sogouShape is the relative 24-hour load shape of a Chinese web search
// engine query log (paper Figures 5/7: night trough, morning ramp through
// hour 9, high steady daytime load, evening peak, decline into hour 24).
var sogouShape = [24]float64{
	0.52, 0.33, 0.20, 0.14, 0.12, 0.15, 0.26, 0.46,
	0.68, 0.86, 0.92, 0.90, 0.84, 0.88, 0.93, 0.96,
	0.93, 0.86, 0.82, 0.90, 1.00, 0.94, 0.82, 0.64,
}

// SogouLikePattern returns the diurnal pattern scaled so the busiest hour
// runs at peakRate requests/second.
func SogouLikePattern(peakRate float64) DiurnalPattern {
	var p DiurnalPattern
	for i, s := range sogouShape {
		p.HourlyRate[i] = s * peakRate
	}
	return p
}

// Rate returns the instantaneous arrival rate (req/s) at time tMs since
// midnight, interpolating linearly between hour midpoints and wrapping
// around midnight.
func (p DiurnalPattern) Rate(tMs float64) float64 {
	const hourMs = 3600_000.0
	day := 24 * hourMs
	t := tMs
	for t < 0 {
		t += day
	}
	for t >= day {
		t -= day
	}
	// Hour midpoints anchor the interpolation.
	h := t / hourMs // in [0,24)
	i := int(h - 0.5)
	frac := h - 0.5 - float64(i)
	if h < 0.5 {
		i = 23
		frac = h + 0.5
	}
	j := (i + 1) % 24
	return p.HourlyRate[i]*(1-frac) + p.HourlyRate[j]*frac
}

// HourArrivals generates arrivals for the window [fromHour, toHour) of
// the day (hours in the paper's 1-based numbering are fromHour=h-1,
// toHour=h) via inhomogeneous Poisson thinning. Returned times are in ms
// relative to the window start.
func (p DiurnalPattern) HourArrivals(rng *stats.RNG, fromHour, toHour float64) []float64 {
	const hourMs = 3600_000.0
	start := fromHour * hourMs
	end := toHour * hourMs
	// Thinning envelope: the max rate in the window.
	maxRate := 0.0
	for t := start; t < end; t += hourMs / 16 {
		if r := p.Rate(t); r > maxRate {
			maxRate = r
		}
	}
	if maxRate <= 0 {
		return nil
	}
	var out []float64
	t := start
	for {
		t += rng.Exp(maxRate / 1000)
		if t >= end {
			return out
		}
		if rng.Float64() < p.Rate(t)/maxRate {
			out = append(out, t-start)
		}
	}
}

// MeanRate returns the average rate (req/s) over [fromHour, toHour).
func (p DiurnalPattern) MeanRate(fromHour, toHour float64) float64 {
	const hourMs = 3600_000.0
	sum, n := 0.0, 0
	for t := fromHour * hourMs; t < toHour*hourMs; t += hourMs / 64 {
		sum += p.Rate(t)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
