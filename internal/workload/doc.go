// Package workload generates the evaluation workloads of the paper:
// a MovieLens-like clustered rating dataset for the CF recommender, a
// Sogou-like topical web corpus and query stream for the search engine,
// and the arrival processes — fixed-rate Poisson for Tables 1-2 and a
// 24-hour diurnal pattern shaped like the Sogou query log for Figures 5-8.
//
// Substitution note (DESIGN.md §3): the real MovieLens/Sogou datasets are
// replaced by generators that reproduce the structural properties the
// experiments depend on — clusters of like-minded users / topically
// similar pages (so synopses aggregate meaningfully) and realistic
// diurnal load shapes. All accuracy numbers are computed by running the
// real CF/search implementations on this data.
package workload
