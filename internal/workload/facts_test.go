package workload

import (
	"testing"

	"accuracytrader/internal/agg"
)

func TestGenerateFactsShape(t *testing.T) {
	cfg := DefaultFactsConfig()
	cfg.RowsPerSubset = 1200
	cfg.Keys = 24
	cfg.Seed = 3
	d := GenerateFacts(cfg, 3)
	if len(d.Subsets) != 3 {
		t.Fatalf("subsets = %d", len(d.Subsets))
	}
	for s, tab := range d.Subsets {
		if tab.NumRows() != 1200 || tab.NumKeys() != 24 {
			t.Fatalf("subset %d shape %d x %d", s, tab.NumRows(), tab.NumKeys())
		}
		for i := 0; i < tab.NumRows(); i++ {
			if tab.Value(i) <= 0 {
				t.Fatalf("subset %d row %d non-positive value %v", s, i, tab.Value(i))
			}
		}
	}
	// Zipf skew: the hottest key must own far more rows than the median.
	counts := make([]int, cfg.Keys)
	for i := 0; i < d.Subsets[0].NumRows(); i++ {
		counts[d.Subsets[0].Key(i)]++
	}
	max, nonzero := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c > 0 {
			nonzero++
		}
	}
	if max < 5*(1200/cfg.Keys) {
		t.Fatalf("no key skew: hottest key holds %d of %d rows", max, 1200)
	}
	if nonzero < cfg.Keys/2 {
		t.Fatalf("only %d of %d keys populated", nonzero, cfg.Keys)
	}
}

func TestSampleAggQueriesSelectivity(t *testing.T) {
	cfg := DefaultFactsConfig()
	cfg.RowsPerSubset = 2000
	cfg.Seed = 5
	d := GenerateFacts(cfg, 1)
	qs := d.SampleAggQueries(7, 40)
	if len(qs) != 40 {
		t.Fatalf("queries = %d", len(qs))
	}
	tab := d.Subsets[0]
	ops := map[agg.Op]bool{}
	var meanSel float64
	for _, q := range qs {
		if q.Hi <= q.Lo {
			t.Fatalf("empty window [%v,%v)", q.Lo, q.Hi)
		}
		ops[q.Op] = true
		sel := 0
		for i := 0; i < tab.NumRows(); i++ {
			v := tab.Value(i)
			if q.Lo <= v && v < q.Hi {
				sel++
			}
		}
		meanSel += float64(sel) / float64(tab.NumRows())
	}
	if len(ops) != 3 {
		t.Fatalf("op mix incomplete: %v", ops)
	}
	meanSel /= float64(len(qs))
	// Moderate mean selectivity: the filter keeps a real subset, never
	// everything, never (almost) nothing.
	if meanSel < 0.25 || meanSel > 0.95 {
		t.Fatalf("mean selectivity %v outside [0.25, 0.95]", meanSel)
	}
}
