package workload

import (
	"math"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/stats"
)

// FactsConfig shapes the synthetic fact table backing the approximate
// aggregation workload (internal/agg): Zipf-skewed group keys — a few
// hot groups own most rows while the tail stays rare, the regime where
// BlinkDB-style stratified sampling beats uniform sampling — and
// lognormal measure values whose location shifts per key, so per-group
// SUM/AVG answers genuinely differ.
type FactsConfig struct {
	RowsPerSubset int     // fact rows per shard
	Keys          int     // GROUP-BY key domain size
	ZipfS         float64 // key-popularity skew exponent
	ValueMu       float64 // location of log(value) before the per-key shift
	ValueSigma    float64 // per-row spread of log(value)
	KeySpread     float64 // per-key shift spread of log(value)
	Seed          uint64
}

// DefaultFactsConfig returns a laptop-scale aggregation workload.
func DefaultFactsConfig() FactsConfig {
	return FactsConfig{
		RowsPerSubset: 4000,
		Keys:          48,
		ZipfS:         1.1,
		ValueMu:       1.0,
		ValueSigma:    0.5,
		KeySpread:     0.6,
	}
}

// FactsData is the generated aggregation input: per-shard fact tables
// sharing one global key-popularity and value structure, so per-key
// answers correlate across shards and merged results are meaningful.
type FactsData struct {
	Subsets []*agg.Table
	keyMu   []float64 // per-key location of log(value), shared by shards
	cfg     FactsConfig
}

// GenerateFacts builds nSubsets fact-table shards. Key popularity and
// the per-key value locations are drawn once and shared, then each
// shard samples its rows independently.
func GenerateFacts(cfg FactsConfig, nSubsets int) *FactsData {
	rng := stats.NewRNG(cfg.Seed ^ 0xfac75)
	keyMu := make([]float64, cfg.Keys)
	for k := range keyMu {
		keyMu[k] = cfg.ValueMu + rng.Norm(0, cfg.KeySpread)
	}
	d := &FactsData{cfg: cfg, keyMu: keyMu}
	for s := 0; s < nSubsets; s++ {
		srng := rng.Split(uint64(s) + 1)
		z := stats.NewZipf(srng, cfg.Keys, cfg.ZipfS)
		t := agg.NewTable(cfg.Keys)
		for i := 0; i < cfg.RowsPerSubset; i++ {
			k := z.Draw()
			t.Append(int32(k), srng.LogNormal(keyMu[k], cfg.ValueSigma))
		}
		d.Subsets = append(d.Subsets, t)
	}
	return d
}

// logStd returns the overall standard deviation of log(value): the
// per-key location spread composed with the per-row spread.
func (d *FactsData) logStd() float64 {
	return math.Sqrt(d.cfg.KeySpread*d.cfg.KeySpread + d.cfg.ValueSigma*d.cfg.ValueSigma)
}

// SampleAggQueries draws n aggregation queries with a uniform op mix
// and value-filter windows of moderate selectivity: the window's edges
// sit at z-scores of the overall log(value) distribution, so most
// queries keep a substantial (but never total) fraction of every
// stratum and the sample-based estimates are genuinely approximate.
func (d *FactsData) SampleAggQueries(seed uint64, n int) []agg.Query {
	rng := stats.NewRNG(seed ^ 0x4a99e5)
	m, s := d.cfg.ValueMu, d.logStd()
	out := make([]agg.Query, n)
	for i := range out {
		zLo := -2.5 + 2.2*rng.Float64() // in [-2.5, -0.3]
		zHi := zLo + 1.0 + 2.0*rng.Float64()
		out[i] = agg.Query{
			Op: agg.Op(rng.Intn(3)),
			Lo: math.Exp(m + s*zLo),
			Hi: math.Exp(m + s*zHi),
		}
	}
	return out
}
