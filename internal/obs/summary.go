package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ClassLabel names a wire SLO class byte (0 exact, 1 bounded, 2
// best-effort, 0xff none).
func ClassLabel(slo uint8) string {
	switch slo {
	case 0:
		return "Exact"
	case 1:
		return "Bounded"
	case 2:
		return "BestEffort"
	default:
		return "None"
	}
}

// StageBreakdown is where a request's wall time went, in milliseconds,
// along the critical path: the slowest sub-operation stands in for the
// fan-out (the gather waits for it), split into the server-side queue
// wait, server-side execution, and the transport remainder.
type StageBreakdown struct {
	AdmissionMs float64 `json:"admission_ms"`
	CacheMs     float64 `json:"cache_ms"`
	QueueMs     float64 `json:"queue_ms"`
	ExecMs      float64 `json:"exec_ms"`
	NetMs       float64 `json:"net_ms"`
	MergeMs     float64 `json:"merge_ms"`
	OtherMs     float64 `json:"other_ms"`
}

func (sb *StageBreakdown) addScaled(o StageBreakdown, f float64) {
	sb.AdmissionMs += o.AdmissionMs * f
	sb.CacheMs += o.CacheMs * f
	sb.QueueMs += o.QueueMs * f
	sb.ExecMs += o.ExecMs * f
	sb.NetMs += o.NetMs * f
	sb.MergeMs += o.MergeMs * f
	sb.OtherMs += o.OtherMs * f
}

// ClassSummary aggregates one SLO class's traces.
type ClassSummary struct {
	Class    uint8  `json:"class"`
	Label    string `json:"label"`
	Count    int    `json:"count"`
	Rejected int    `json:"rejected"`
	Degraded int    `json:"degraded"`
	CacheHit int    `json:"cache_hits"`
	Hedged   int    `json:"hedged"` // traces with at least one hedge fire
	answered int

	MeanTotalMs  float64        `json:"mean_total_ms"`
	P99TotalMs   float64        `json:"p99_total_ms"`
	MeanBudgetMs float64        `json:"mean_budget_ms"` // mean deadline budget (0 = unbounded)
	Mean         StageBreakdown `json:"mean_stages"`

	totals []float64
}

// Summary is the per-class deadline-budget breakdown over a batch of
// traces — the answer to "where did slow requests spend their budget".
type Summary struct {
	Traces   int            `json:"traces"`
	Answered int            `json:"answered"`
	Classes  []ClassSummary `json:"classes"`
}

// Breakdown computes one trace's critical-path stage breakdown.
func Breakdown(tv TraceView) StageBreakdown {
	var sb StageBreakdown
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	// Critical path: the slowest sub-operation bounds the gather.
	critIdx := -1
	var critDur time.Duration
	for i, sp := range tv.Spans {
		switch sp.Kind {
		case SpanAdmission:
			sb.AdmissionMs += ms(sp.Dur)
		case SpanCache:
			sb.CacheMs += ms(sp.Dur)
		case SpanMerge:
			sb.MergeMs += ms(sp.Dur)
		case SpanSubOp:
			if critIdx < 0 || sp.Dur > critDur {
				critIdx, critDur = i, sp.Dur
			}
		}
	}
	if critIdx >= 0 {
		crit := tv.Spans[critIdx]
		var srv time.Duration
		for _, sp := range tv.Spans {
			if !sp.Remote || sp.Comp != crit.Comp {
				continue
			}
			switch sp.Kind {
			case SpanServerQueue:
				sb.QueueMs += ms(sp.Dur)
				srv += sp.Dur
			case SpanServerExec:
				sb.ExecMs += ms(sp.Dur)
				srv += sp.Dur
			}
		}
		if net := crit.Dur - srv; net > 0 {
			sb.NetMs = ms(net)
		}
	}
	if other := ms(time.Duration(tv.DurNs)) - Accounted(tv); other > 0 {
		sb.OtherMs = other
	}
	return sb
}

// Accounted returns the milliseconds of the trace's total duration
// explained by its spans along the critical path: admission + cache +
// the slowest sub-operation + merge. The gap to the measured total is
// scheduling/transport slack the spans do not cover.
func Accounted(tv TraceView) float64 {
	var acc, critDur time.Duration
	for _, sp := range tv.Spans {
		switch sp.Kind {
		case SpanAdmission, SpanCache, SpanMerge:
			acc += sp.Dur
		case SpanSubOp:
			if sp.Dur > critDur {
				critDur = sp.Dur
			}
		}
	}
	return float64(acc+critDur) / float64(time.Millisecond)
}

// Summarize aggregates traces into per-SLO-class budget tables.
// Unfinished traces are skipped.
func Summarize(traces []TraceView) *Summary {
	byClass := map[uint8]*ClassSummary{}
	var order []uint8
	s := &Summary{}
	for _, tv := range traces {
		if !tv.Done {
			continue
		}
		s.Traces++
		cs, ok := byClass[tv.SLO]
		if !ok {
			cs = &ClassSummary{Class: tv.SLO, Label: ClassLabel(tv.SLO)}
			byClass[tv.SLO] = cs
			order = append(order, tv.SLO)
		}
		cs.Count++
		if tv.Verdict == VerdictRejected {
			cs.Rejected++
			continue
		}
		if tv.Verdict == VerdictDegraded {
			cs.Degraded++
		}
		if tv.CacheOutcome == CacheHit || tv.CacheOutcome == CacheCoalesced {
			cs.CacheHit++
		}
		for _, sp := range tv.Spans {
			if sp.Kind == SpanHedge {
				cs.Hedged++
				break
			}
		}
		s.Answered++
		cs.answered++
		totalMs := float64(tv.DurNs) / float64(time.Millisecond)
		cs.MeanTotalMs += totalMs
		cs.totals = append(cs.totals, totalMs)
		if tv.DeadlineNs != 0 {
			if budget := float64(tv.DeadlineNs-tv.Start) / float64(time.Millisecond); budget > 0 {
				cs.MeanBudgetMs += budget
			}
		}
		cs.Mean.addScaled(Breakdown(tv), 1)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, class := range order {
		cs := byClass[class]
		if n := float64(cs.answered); n > 0 {
			cs.MeanTotalMs /= n
			cs.MeanBudgetMs /= n
			cs.Mean.addScaled(cs.Mean, 1/n-1) // divide in place
		}
		sort.Float64s(cs.totals)
		if len(cs.totals) > 0 {
			cs.P99TotalMs = cs.totals[min(len(cs.totals)-1, (len(cs.totals)*99)/100)]
		}
		cs.totals = nil
		s.Classes = append(s.Classes, *cs)
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Render formats the summary as the deadline-budget breakdown table:
// one row per SLO class, stage columns in mean milliseconds along the
// critical path.
func (s *Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TRACE SUMMARY: %d traces (%d answered)\n", s.Traces, s.Answered)
	fmt.Fprintf(&b, "  %-10s %6s %5s %5s %6s %6s %8s %8s %8s | %9s %7s %7s %7s %7s %7s %7s\n",
		"class", "n", "rej", "degr", "cache", "hedge", "mean ms", "p99 ms", "budget",
		"admission", "cache", "queue", "exec", "net", "merge", "other")
	for _, cs := range s.Classes {
		fmt.Fprintf(&b, "  %-10s %6d %5d %5d %6d %6d %8.2f %8.2f %8.1f | %9.2f %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f\n",
			cs.Label, cs.Count, cs.Rejected, cs.Degraded, cs.CacheHit, cs.Hedged,
			cs.MeanTotalMs, cs.P99TotalMs, cs.MeanBudgetMs,
			cs.Mean.AdmissionMs, cs.Mean.CacheMs, cs.Mean.QueueMs, cs.Mean.ExecMs,
			cs.Mean.NetMs, cs.Mean.MergeMs, cs.Mean.OtherMs)
	}
	b.WriteString("  (stage columns: mean ms on the critical path — the slowest sub-operation bounds the gather;\n")
	b.WriteString("   net = sub-op time outside the server, other = total minus every accounted stage)\n")
	return b.String()
}
