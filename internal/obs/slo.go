package obs

import (
	"context"
	"sync"
	"time"
)

// SLOFlags marks which SLO signals a finished request tripped.
type SLOFlags uint8

// The SLO signals tracked per class.
const (
	// SLODeadlineMiss: the reply landed after the request's deadline.
	SLODeadlineMiss SLOFlags = 1 << iota
	// SLOFloorViolation: realized accuracy fell below the Bounded
	// floor (reported by the ground-truth auditor, after the fact).
	SLOFloorViolation
	// SLODegraded: the reply was served degraded or unavailable.
	SLODegraded
)

// sloSignalNames orders the signal labels by bit position.
var sloSignalNames = []string{"deadline_miss", "floor_violation", "degraded"}

// SLOBudgets holds the per-signal error budgets: the tolerated bad/total
// event ratio. Burn rate = observed ratio / budget, so burn > 1 means
// the budget is being consumed faster than allowed.
type SLOBudgets struct {
	DeadlineMiss   float64 `json:"deadline_miss"`
	FloorViolation float64 `json:"floor_violation"`
	Degraded       float64 `json:"degraded"`
}

// DefaultSLOBudgets tolerates 0.1% deadline misses, 0.1% floor
// violations, and 5% degraded replies.
func DefaultSLOBudgets() SLOBudgets {
	return SLOBudgets{DeadlineMiss: 1e-3, FloorViolation: 1e-3, Degraded: 5e-2}
}

// sloWindowSpec describes one sliding window: its label, bucket
// granularity in seconds, and bucket count (span = gran * buckets).
type sloWindowSpec struct {
	name    string
	gran    int64
	buckets int
}

// sloWindows are the tracked burn-rate windows: 1m at 1s granularity,
// 10m at 10s, 1h at 60s.
var sloWindows = []sloWindowSpec{
	{"1m", 1, 60},
	{"10m", 10, 60},
	{"1h", 60, 60},
}

// sloBucket is one granularity slot of a window. epoch is the absolute
// bucket index (unixSeconds / gran) it currently holds counts for.
type sloBucket struct {
	epoch int64
	total int64
	miss  int64
	floor int64
	deg   int64
}

// sloWindow is a circular bucket array over one granularity.
type sloWindow struct {
	spec    sloWindowSpec
	buckets []sloBucket
}

func (w *sloWindow) record(unixSec int64, flags SLOFlags, countTotal bool) {
	e := unixSec / w.spec.gran
	b := &w.buckets[int(e%int64(len(w.buckets)))]
	if b.epoch != e {
		*b = sloBucket{epoch: e}
	}
	if countTotal {
		b.total++
	}
	if flags&SLODeadlineMiss != 0 {
		b.miss++
	}
	if flags&SLOFloorViolation != 0 {
		b.floor++
	}
	if flags&SLODegraded != 0 {
		b.deg++
	}
}

// sum totals the buckets still inside the window ending at unixSec.
func (w *sloWindow) sum(unixSec int64) (total, miss, floor, deg int64) {
	e := unixSec / w.spec.gran
	lo := e - int64(len(w.buckets)) + 1
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.epoch >= lo && b.epoch <= e {
			total += b.total
			miss += b.miss
			floor += b.floor
			deg += b.deg
		}
	}
	return
}

// sloSeries is one (class or class×tenant) dimension: every window,
// guarded by one mutex so record stays allocation-free and race-safe.
type sloSeries struct {
	mu      sync.Mutex
	windows []sloWindow
}

func newSLOSeries() *sloSeries {
	s := &sloSeries{windows: make([]sloWindow, len(sloWindows))}
	for i, spec := range sloWindows {
		s.windows[i] = sloWindow{spec: spec, buckets: make([]sloBucket, spec.buckets)}
	}
	return s
}

func (s *sloSeries) record(unixSec int64, flags SLOFlags, countTotal bool) {
	s.mu.Lock()
	for i := range s.windows {
		s.windows[i].record(unixSec, flags, countTotal)
	}
	s.mu.Unlock()
}

// SLOWindowView is one window's snapshot for one class dimension.
type SLOWindowView struct {
	Window         string  `json:"window"`
	Total          int64   `json:"total"`
	DeadlineMiss   int64   `json:"deadline_miss"`
	FloorViolation int64   `json:"floor_violation"`
	Degraded       int64   `json:"degraded"`
	BurnMiss       float64 `json:"burn_deadline_miss"`
	BurnFloor      float64 `json:"burn_floor_violation"`
	BurnDegraded   float64 `json:"burn_degraded"`
}

// SLOClassView is one SLO class's windows.
type SLOClassView struct {
	Class   string          `json:"class"`
	Windows []SLOWindowView `json:"windows"`
}

// SLOView is the full /slo snapshot.
type SLOView struct {
	Budgets SLOBudgets                `json:"budgets"`
	Classes []SLOClassView            `json:"classes"`
	Tenants map[string][]SLOClassView `json:"tenants,omitempty"`
}

// SLOTracker accounts SLO attainment per class (Exact/Bounded/
// BestEffort) over sliding multi-window burn rates, with an optional
// per-tenant dimension. A nil tracker is a valid no-op receiver, so
// call sites need no branches and the disabled path costs nothing.
type SLOTracker struct {
	budgets SLOBudgets
	now     func() time.Time

	classes [3]*sloSeries

	mu         sync.RWMutex
	tenants    map[string]*[3]*sloSeries
	maxTenants int
}

// maxSLOTenants bounds the tenant dimension; past it, new tenants
// collapse into the "~other" key so a tenant-id flood cannot grow the
// tracker without bound.
const maxSLOTenants = 64

// overflowTenant is the collapsed key for tenants past the cap.
const overflowTenant = "~other"

// NewSLOTracker returns a tracker with the given budgets. Zero-valued
// budget fields fall back to the defaults.
func NewSLOTracker(budgets SLOBudgets) *SLOTracker {
	def := DefaultSLOBudgets()
	if budgets.DeadlineMiss <= 0 {
		budgets.DeadlineMiss = def.DeadlineMiss
	}
	if budgets.FloorViolation <= 0 {
		budgets.FloorViolation = def.FloorViolation
	}
	if budgets.Degraded <= 0 {
		budgets.Degraded = def.Degraded
	}
	t := &SLOTracker{
		budgets:    budgets,
		now:        time.Now,
		tenants:    make(map[string]*[3]*sloSeries),
		maxTenants: maxSLOTenants,
	}
	for i := range t.classes {
		t.classes[i] = newSLOSeries()
	}
	return t
}

// SetClock overrides the tracker's clock (tests).
func (t *SLOTracker) SetClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.now = now
}

// Record accounts one finished request of the given class (0=Exact,
// 1=Bounded, 2=BestEffort; other values are ignored) with the signals
// it tripped. tenant "" records only the class aggregate.
func (t *SLOTracker) Record(class uint8, tenant string, flags SLOFlags) {
	if t == nil {
		return
	}
	t.RecordAt(t.now(), class, tenant, flags)
}

// RecordAt is Record with an explicit timestamp (deterministic tests).
func (t *SLOTracker) RecordAt(at time.Time, class uint8, tenant string, flags SLOFlags) {
	t.recordAt(at, class, tenant, flags, true)
}

// RecordFloorViolation accounts an after-the-fact floor violation (the
// auditor's path): the request was already counted in the totals when
// it finished, so only the violation counter moves.
func (t *SLOTracker) RecordFloorViolation(class uint8, tenant string) {
	if t == nil {
		return
	}
	t.recordAt(t.now(), class, tenant, SLOFloorViolation, false)
}

func (t *SLOTracker) recordAt(at time.Time, class uint8, tenant string, flags SLOFlags, countTotal bool) {
	if t == nil || int(class) >= len(t.classes) {
		return
	}
	sec := at.Unix()
	t.classes[class].record(sec, flags, countTotal)
	if tenant == "" {
		return
	}
	t.mu.RLock()
	series := t.tenants[tenant]
	t.mu.RUnlock()
	if series == nil {
		t.mu.Lock()
		series = t.tenants[tenant]
		if series == nil {
			if len(t.tenants) >= t.maxTenants {
				tenant = overflowTenant
				series = t.tenants[tenant]
			}
			if series == nil {
				series = new([3]*sloSeries)
				for i := range series {
					series[i] = newSLOSeries()
				}
				t.tenants[tenant] = series
			}
		}
		t.mu.Unlock()
	}
	series[class].record(sec, flags, countTotal)
}

// burn converts a bad/total ratio into budget-relative burn.
func burn(bad, total int64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 0
	}
	return float64(bad) / float64(total) / budget
}

func (t *SLOTracker) windowsOf(s *sloSeries, sec int64) []SLOWindowView {
	out := make([]SLOWindowView, len(s.windows))
	s.mu.Lock()
	for i := range s.windows {
		w := &s.windows[i]
		total, miss, floor, deg := w.sum(sec)
		out[i] = SLOWindowView{
			Window:         w.spec.name,
			Total:          total,
			DeadlineMiss:   miss,
			FloorViolation: floor,
			Degraded:       deg,
			BurnMiss:       burn(miss, total, t.budgets.DeadlineMiss),
			BurnFloor:      burn(floor, total, t.budgets.FloorViolation),
			BurnDegraded:   burn(deg, total, t.budgets.Degraded),
		}
	}
	s.mu.Unlock()
	return out
}

// Window returns the (total, miss, floor, degraded) counts of one
// class's window (by index into the 1m/10m/1h list) at the tracker's
// current clock. Test hook for naive-reference comparison.
func (t *SLOTracker) Window(class uint8, window int) (total, miss, floor, deg int64) {
	if t == nil || int(class) >= len(t.classes) || window < 0 || window >= len(sloWindows) {
		return
	}
	s := t.classes[class]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.windows[window].sum(t.now().Unix())
}

// BurnRate returns one class's budget-relative burn for a signal bit
// over window index w (0=1m, 1=10m, 2=1h).
func (t *SLOTracker) BurnRate(class uint8, signal SLOFlags, w int) float64 {
	if t == nil || int(class) >= len(t.classes) || w < 0 || w >= len(sloWindows) {
		return 0
	}
	s := t.classes[class]
	s.mu.Lock()
	total, miss, floor, deg := s.windows[w].sum(t.now().Unix())
	s.mu.Unlock()
	switch signal {
	case SLODeadlineMiss:
		return burn(miss, total, t.budgets.DeadlineMiss)
	case SLOFloorViolation:
		return burn(floor, total, t.budgets.FloorViolation)
	case SLODegraded:
		return burn(deg, total, t.budgets.Degraded)
	}
	return 0
}

// Snapshot builds the full /slo view.
func (t *SLOTracker) Snapshot() SLOView {
	if t == nil {
		return SLOView{}
	}
	sec := t.now().Unix()
	v := SLOView{Budgets: t.budgets}
	for class := range t.classes {
		v.Classes = append(v.Classes, SLOClassView{
			Class:   ClassLabel(uint8(class)),
			Windows: t.windowsOf(t.classes[class], sec),
		})
	}
	t.mu.RLock()
	names := make([]string, 0, len(t.tenants))
	for name := range t.tenants {
		names = append(names, name)
	}
	t.mu.RUnlock()
	if len(names) > 0 {
		v.Tenants = make(map[string][]SLOClassView, len(names))
		for _, name := range names {
			t.mu.RLock()
			series := t.tenants[name]
			t.mu.RUnlock()
			if series == nil {
				continue
			}
			var classes []SLOClassView
			for class := range series {
				classes = append(classes, SLOClassView{
					Class:   ClassLabel(uint8(class)),
					Windows: t.windowsOf(series[class], sec),
				})
			}
			v.Tenants[name] = classes
		}
	}
	return v
}

// RegisterMetrics exports every class×signal×window burn rate as a
// slo_burn_rate gauge in reg.
func (t *SLOTracker) RegisterMetrics(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	for class := range t.classes {
		for bit, signal := range sloSignalNames {
			for w := range sloWindows {
				class, w := uint8(class), w
				flag := SLOFlags(1) << uint(bit)
				labels := Labels(
					"class", ClassLabel(class),
					"signal", signal,
					"window", sloWindows[w].name,
				)
				reg.GaugeFunc("slo_burn_rate"+labels, func() float64 {
					return t.BurnRate(class, flag, w)
				})
			}
		}
	}
}

// tenantKey carries the request's tenant through its context.
type tenantKey struct{}

// WithTenant attaches a tenant key to the context ("" is a no-op).
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom extracts the tenant key ("" when absent).
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// internalKey marks a context as internal traffic: background work the
// serving stack generates for itself (audit replays, cache refreshes,
// re-warms) rather than on a client's behalf.
type internalKey struct{}

// WithInternal marks the context as internal traffic. Observability
// consumers that model *client* experience — SLO attainment windows,
// the ground-truth audit sampler, per-tenant cost attribution — must
// skip or re-bucket work carried out under an internal context.
func WithInternal(ctx context.Context) context.Context {
	return context.WithValue(ctx, internalKey{}, true)
}

// IsInternal reports whether the context is marked as internal traffic.
func IsInternal(ctx context.Context) bool {
	v, _ := ctx.Value(internalKey{}).(bool)
	return v
}
