package obs

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Profiler captures bounded CPU and heap pprof profiles the moment an
// anomaly fires — an SLO burn rate crossing its budget, a circuit
// breaker opening — so the evidence for a tail regression exists from
// the minute it happened instead of from a later repro attempt.
//
// Guards keep continuous profiling from becoming its own overload:
// at most one capture runs at a time, a cooldown separates captures,
// and finished profiles land in a bounded ring (oldest evicted) served
// by /debug/profiles. A nil *Profiler no-ops everywhere.
type Profiler struct {
	cpuDur   time.Duration
	cooldown time.Duration
	ringSize int
	now      func() time.Time

	mu       sync.Mutex
	lastFire time.Time
	fired    bool
	seq      int
	ring     []CapturedProfile

	running atomic.Bool
	wg      sync.WaitGroup

	// Trigger accounting, exported on /debug/profiles.
	triggered          atomic.Int64
	suppressedCooldown atomic.Int64
	suppressedBusy     atomic.Int64
}

// CapturedProfile is one finished capture. CPU may be empty when the
// runtime's CPU profiler was already claimed (e.g. an in-flight
// /debug/pprof/profile scrape); the heap snapshot still lands.
type CapturedProfile struct {
	Seq    int       `json:"seq"`
	Reason string    `json:"reason"`
	Start  time.Time `json:"start"`
	CPU    []byte    `json:"-"`
	Heap   []byte    `json:"-"`
	Err    string    `json:"err,omitempty"`
}

// ProfileInfo is the /debug/profiles listing entry for one capture.
type ProfileInfo struct {
	Seq       int       `json:"seq"`
	Reason    string    `json:"reason"`
	Start     time.Time `json:"start"`
	CPUBytes  int       `json:"cpu_bytes"`
	HeapBytes int       `json:"heap_bytes"`
	Err       string    `json:"err,omitempty"`
}

// ProfilerView is the /debug/profiles document.
type ProfilerView struct {
	Profiles           []ProfileInfo `json:"profiles"`
	Triggered          int64         `json:"triggered"`
	SuppressedCooldown int64         `json:"suppressed_cooldown"`
	SuppressedBusy     int64         `json:"suppressed_busy"`
}

// NewProfiler returns a profiler keeping the last ringSize captures,
// sampling CPU for cpuDur per capture, with at least cooldown between
// captures. Non-positive arguments select the defaults (8 profiles,
// 250ms CPU, 30s cooldown).
func NewProfiler(ringSize int, cpuDur, cooldown time.Duration) *Profiler {
	if ringSize <= 0 {
		ringSize = 8
	}
	if cpuDur <= 0 {
		cpuDur = 250 * time.Millisecond
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &Profiler{
		cpuDur:   cpuDur,
		cooldown: cooldown,
		ringSize: ringSize,
		now:      time.Now,
	}
}

// SetClock overrides the profiler's cooldown clock (tests). The CPU
// sampling duration still runs on real time.
func (p *Profiler) SetClock(now func() time.Time) {
	if p == nil || now == nil {
		return
	}
	p.mu.Lock()
	p.now = now
	p.mu.Unlock()
}

// Trigger requests a capture attributed to reason. It returns true
// when a capture actually started: false means the cooldown window or
// an in-flight capture suppressed it — the fire-once-then-cool-down
// contract under a sustained anomaly. Nil-safe.
func (p *Profiler) Trigger(reason string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	now := p.now()
	if p.fired && now.Sub(p.lastFire) < p.cooldown {
		p.mu.Unlock()
		p.suppressedCooldown.Add(1)
		return false
	}
	if !p.running.CompareAndSwap(false, true) {
		p.mu.Unlock()
		p.suppressedBusy.Add(1)
		return false
	}
	p.lastFire = now
	p.fired = true
	p.seq++
	seq := p.seq
	p.wg.Add(1)
	p.mu.Unlock()
	p.triggered.Add(1)
	go p.capture(seq, reason, now)
	return true
}

// capture runs one bounded CPU + heap capture and files it in the ring.
func (p *Profiler) capture(seq int, reason string, start time.Time) {
	defer p.wg.Done()
	prof := CapturedProfile{Seq: seq, Reason: reason, Start: start}
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		// The runtime CPU profiler is single-owner; losing the race to a
		// /debug/pprof/profile scrape still yields the heap half.
		prof.Err = fmt.Sprintf("cpu profile unavailable: %v", err)
	} else {
		time.Sleep(p.cpuDur)
		pprof.StopCPUProfile()
		prof.CPU = cpu.Bytes()
	}
	var heap bytes.Buffer
	if hp := pprof.Lookup("heap"); hp != nil {
		if err := hp.WriteTo(&heap, 0); err == nil {
			prof.Heap = heap.Bytes()
		}
	}
	p.mu.Lock()
	p.ring = append(p.ring, prof)
	if len(p.ring) > p.ringSize {
		p.ring = p.ring[len(p.ring)-p.ringSize:]
	}
	p.mu.Unlock()
	p.running.Store(false)
}

// Wait blocks until any in-flight capture has filed its profile
// (tests and graceful shutdown).
func (p *Profiler) Wait() {
	if p == nil {
		return
	}
	p.wg.Wait()
}

// Snapshot lists the retained captures, newest last, plus the trigger
// accounting. Nil-safe.
func (p *Profiler) Snapshot() ProfilerView {
	if p == nil {
		return ProfilerView{}
	}
	p.mu.Lock()
	infos := make([]ProfileInfo, 0, len(p.ring))
	for _, c := range p.ring {
		infos = append(infos, ProfileInfo{
			Seq: c.Seq, Reason: c.Reason, Start: c.Start,
			CPUBytes: len(c.CPU), HeapBytes: len(c.Heap), Err: c.Err,
		})
	}
	p.mu.Unlock()
	return ProfilerView{
		Profiles:           infos,
		Triggered:          p.triggered.Load(),
		SuppressedCooldown: p.suppressedCooldown.Load(),
		SuppressedBusy:     p.suppressedBusy.Load(),
	}
}

// Get returns the capture with the given sequence number.
func (p *Profiler) Get(seq int) (CapturedProfile, bool) {
	if p == nil {
		return CapturedProfile{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.ring {
		if c.Seq == seq {
			return c, true
		}
	}
	return CapturedProfile{}, false
}

// WatchBurn polls the tracker every interval and triggers a capture
// whenever any class×signal burn rate over the 1m window crosses its
// budget (burn > 1). It returns a stop function. Nil-safe on both
// receivers.
func (p *Profiler) WatchBurn(t *SLOTracker, interval time.Duration) (stop func()) {
	if p == nil || t == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				p.checkBurn(t)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// checkBurn evaluates every class×signal 1m burn rate once, triggering
// on the first crossing found. Split out so tests (and deterministic
// experiments) can drive the evaluation without the ticker.
func (p *Profiler) checkBurn(t *SLOTracker) bool {
	if p == nil || t == nil {
		return false
	}
	for class := uint8(0); class < 3; class++ {
		for bit, name := range sloSignalNames {
			flag := SLOFlags(1) << uint(bit)
			if b := t.BurnRate(class, flag, 0); b > 1 {
				return p.Trigger(fmt.Sprintf("slo-burn %s %s 1m burn=%.1f",
					ClassLabel(class), name, b))
			}
		}
	}
	return false
}
