package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestAdmin(t *testing.T) (*Admin, *Registry, *Recorder) {
	t.Helper()
	reg := NewRegistry()
	rec := NewRecorder(8, 8)
	return NewAdmin(reg, rec), reg, rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestAdminMetrics(t *testing.T) {
	a, reg, _ := newTestAdmin(t)
	reg.Counter("reqs_total").Add(5)
	w := get(t, a.Handler(), "/metrics")
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "reqs_total 5") {
		t.Fatalf("metrics body:\n%s", w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
}

func TestAdminHealthzFlips(t *testing.T) {
	a, _, _ := newTestAdmin(t)
	if w := get(t, a.Handler(), "/healthz"); w.Code != 200 || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("ready healthz: %d %q", w.Code, w.Body.String())
	}
	a.SetReady(false)
	if a.Ready() {
		t.Fatal("Ready() should be false")
	}
	if w := get(t, a.Handler(), "/healthz"); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("draining healthz: %d %q", w.Code, w.Body.String())
	}
}

// TestAdminHealthzThreeStates pins the health surface's distinction
// between healthy (200 ok), serving-around-failures (200 degraded,
// listing the open breakers so probes can see which domains are down
// without evicting the process) and draining (503).
func TestAdminHealthzThreeStates(t *testing.T) {
	a, _, _ := newTestAdmin(t)
	var open []string
	a.SetHealthSource(func() []string { return open })

	if w := get(t, a.Handler(), "/healthz"); w.Code != 200 || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthy: %d %q", w.Code, w.Body.String())
	}

	open = []string{"127.0.0.1:9001", "127.0.0.1:9003"}
	w := get(t, a.Handler(), "/healthz")
	if w.Code != 200 {
		t.Fatalf("degraded must stay routable (200), got %d", w.Code)
	}
	body := w.Body.String()
	if !strings.Contains(body, "degraded") || strings.Contains(body, "ok\n") {
		t.Fatalf("degraded body: %q", body)
	}
	for _, b := range open {
		if !strings.Contains(body, "open-breaker "+b) {
			t.Fatalf("degraded body does not list %s: %q", b, body)
		}
	}

	// Draining wins over degraded: a stopping process must be evicted.
	a.SetReady(false)
	if w := get(t, a.Handler(), "/healthz"); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("draining: %d %q", w.Code, w.Body.String())
	}

	// Healed: back to plain ok.
	a.SetReady(true)
	open = nil
	if w := get(t, a.Handler(), "/healthz"); w.Code != 200 || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healed: %d %q", w.Code, w.Body.String())
	}
}

func TestAdminTraces(t *testing.T) {
	a, _, rec := newTestAdmin(t)
	for i := 0; i < 3; i++ {
		tr := rec.Start(0, time.Now())
		tr.Add(SpanMerge, -1, time.Now(), time.Millisecond, 0)
		tr.Finish(2 * time.Millisecond)
	}
	w := get(t, a.Handler(), "/traces?n=2")
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	var body struct {
		Traces []TraceView `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body.String())
	}
	if len(body.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(body.Traces))
	}
	if len(body.Traces[0].Spans) != 1 {
		t.Fatalf("spans lost in JSON: %+v", body.Traces[0])
	}
	if w := get(t, a.Handler(), "/traces?n=bogus"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad n: status = %d", w.Code)
	}
}

func TestAdminTracesNilRecorder(t *testing.T) {
	a := NewAdmin(NewRegistry(), nil)
	w := get(t, a.Handler(), "/traces")
	if w.Code != 200 || !strings.Contains(w.Body.String(), `"traces": []`) {
		t.Fatalf("nil recorder: %d %q", w.Code, w.Body.String())
	}
}

func TestAdminPprofIndex(t *testing.T) {
	a, _, _ := newTestAdmin(t)
	w := get(t, a.Handler(), "/debug/pprof/")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "goroutine") {
		t.Fatalf("pprof index: %d", w.Code)
	}
}

func TestAdminListenServesOverTCP(t *testing.T) {
	a, reg, _ := newTestAdmin(t)
	reg.Counter("live_total").Inc()
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "live_total 1") {
		t.Fatalf("scrape over TCP: %d %q", resp.StatusCode, body)
	}
}

func TestAdminTracesFilters(t *testing.T) {
	a, _, rec := newTestAdmin(t)
	// Two Bounded traces (one slow, one fast) and one BestEffort, plus an
	// anomalous degraded trace pinned into the exemplar store.
	slow := rec.Start(0, time.Now())
	slow.SetRequest(2, 1, 0.9, 0)
	slow.Finish(20 * time.Millisecond)
	fast := rec.Start(0, time.Now())
	fast.SetRequest(2, 1, 0.9, 0)
	fast.Finish(time.Millisecond)
	be := rec.Start(0, time.Now())
	be.SetRequest(2, 2, 0, 0)
	be.Finish(30 * time.Millisecond)
	bad := rec.Start(0, time.Now())
	bad.SetRequest(2, 1, 0.9, 0)
	bad.MarkAnomaly(AnomalyDegraded)
	bad.Finish(2 * time.Millisecond)

	decode := func(w *httptest.ResponseRecorder) []TraceView {
		t.Helper()
		if w.Code != 200 {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
		var body struct {
			Traces []TraceView `json:"traces"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		return body.Traces
	}

	// class filter: label and numeric forms agree.
	byLabel := decode(get(t, a.Handler(), "/traces?class=Bounded"))
	byCode := decode(get(t, a.Handler(), "/traces?class=1"))
	if len(byLabel) != 3 || len(byCode) != 3 {
		t.Fatalf("class filter: label=%d code=%d, want 3", len(byLabel), len(byCode))
	}
	for _, v := range byLabel {
		if v.SLO != 1 {
			t.Fatalf("class filter leaked SLO %d", v.SLO)
		}
	}
	// case-insensitive label.
	if got := decode(get(t, a.Handler(), "/traces?class=bounded")); len(got) != 3 {
		t.Fatalf("case-insensitive class: %d, want 3", len(got))
	}

	// min_ms filter.
	slowOnly := decode(get(t, a.Handler(), "/traces?min_ms=10"))
	if len(slowOnly) != 2 { // 20ms Bounded + 30ms BestEffort
		t.Fatalf("min_ms filter: %d traces, want 2", len(slowOnly))
	}
	// Combined: Bounded AND >= 10ms.
	combined := decode(get(t, a.Handler(), "/traces?class=Bounded&min_ms=10"))
	if len(combined) != 1 || combined[0].ID != slow.ID() {
		t.Fatalf("combined filter: %+v", combined)
	}

	// filter=anomaly serves the exemplar store only.
	anomalies := decode(get(t, a.Handler(), "/traces?filter=anomaly"))
	if len(anomalies) != 1 || anomalies[0].ID != bad.ID() {
		t.Fatalf("anomaly filter: %+v", anomalies)
	}
	if anomalies[0].AnomalyWhy[0] != "degraded" {
		t.Fatalf("anomaly labels lost in JSON: %+v", anomalies[0])
	}
	// Anomaly filter composes with class.
	if got := decode(get(t, a.Handler(), "/traces?filter=anomaly&class=BestEffort")); len(got) != 0 {
		t.Fatalf("anomaly+class filter leaked: %+v", got)
	}

	// Malformed parameters answer 400.
	for _, bad := range []string{
		"/traces?class=Gold",
		"/traces?class=7",
		"/traces?min_ms=fast",
		"/traces?min_ms=-1",
		"/traces?filter=slow",
	} {
		if w := get(t, a.Handler(), bad); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", bad, w.Code)
		}
	}
}

func TestAdminSLOEndpoint(t *testing.T) {
	a, _, _ := newTestAdmin(t)
	// Without a tracker the endpoint still answers valid (empty) JSON.
	w := get(t, a.Handler(), "/slo")
	if w.Code != 200 {
		t.Fatalf("no-tracker /slo status = %d", w.Code)
	}
	var empty SLOView
	if err := json.Unmarshal(w.Body.Bytes(), &empty); err != nil {
		t.Fatalf("no-tracker /slo bad JSON: %v", err)
	}

	tr := NewSLOTracker(SLOBudgets{})
	now := time.Unix(1_700_000_000, 0)
	tr.SetClock(func() time.Time { return now })
	tr.RecordAt(now, 1, "acme", SLODeadlineMiss)
	a.SetSLOTracker(tr)
	w = get(t, a.Handler(), "/slo")
	if w.Code != 200 {
		t.Fatalf("/slo status = %d", w.Code)
	}
	var view SLOView
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
		t.Fatalf("/slo bad JSON: %v\n%s", err, w.Body.String())
	}
	if len(view.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(view.Classes))
	}
	if view.Classes[1].Windows[0].DeadlineMiss != 1 {
		t.Fatalf("Bounded 1m window: %+v", view.Classes[1].Windows[0])
	}
	if _, ok := view.Tenants["acme"]; !ok {
		t.Fatalf("tenant dimension missing: %+v", view.Tenants)
	}
}

func TestAdminTracesTenantFilter(t *testing.T) {
	a, _, rec := newTestAdmin(t)
	mk := func(tenant string, class uint8) *Trace {
		tr := rec.Start(2, time.Now())
		tr.SetRequest(2, class, 0.9, 0)
		tr.SetTenant(tenant)
		tr.Finish(time.Millisecond)
		return tr
	}
	acme := mk("acme", 1)
	mk("umbra", 1)
	mk("acme", 2)
	mk("", 1)

	decode := func(w *httptest.ResponseRecorder) []TraceView {
		t.Helper()
		if w.Code != 200 {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
		var body struct {
			Traces []TraceView `json:"traces"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		return body.Traces
	}

	got := decode(get(t, a.Handler(), "/traces?tenant=acme"))
	if len(got) != 2 {
		t.Fatalf("tenant filter: %d traces, want 2", len(got))
	}
	for _, v := range got {
		if v.Tenant != "acme" {
			t.Fatalf("tenant filter leaked %q", v.Tenant)
		}
	}
	// Composes with the class filter.
	combined := decode(get(t, a.Handler(), "/traces?tenant=acme&class=Bounded"))
	if len(combined) != 1 || combined[0].ID != acme.ID() {
		t.Fatalf("tenant+class filter: %+v", combined)
	}
	// Unknown tenants answer an empty (not error) list.
	if got := decode(get(t, a.Handler(), "/traces?tenant=nobody")); len(got) != 0 {
		t.Fatalf("unknown tenant leaked: %+v", got)
	}
	// Untagged traces stay reachable without the filter.
	if got := decode(get(t, a.Handler(), "/traces")); len(got) != 4 {
		t.Fatalf("unfiltered: %d traces, want 4", len(got))
	}
}

func TestAdminCostAndFrontierEndpoints(t *testing.T) {
	a, _, _ := newTestAdmin(t)
	for _, path := range []string{"/costs", "/frontier"} {
		if w := get(t, a.Handler(), path); w.Code != http.StatusNotFound {
			t.Fatalf("unconfigured %s status = %d, want 404", path, w.Code)
		}
	}
	a.SetCostSource(func() any {
		return map[string]int{"requests": 12}
	})
	a.SetFrontierSource(func() any {
		return []map[string]any{{"workload": "agg"}}
	})
	w := get(t, a.Handler(), "/costs")
	if w.Code != 200 {
		t.Fatalf("/costs status = %d", w.Code)
	}
	var costs map[string]int
	if err := json.Unmarshal(w.Body.Bytes(), &costs); err != nil || costs["requests"] != 12 {
		t.Fatalf("/costs body = %v (%v)", costs, err)
	}
	w = get(t, a.Handler(), "/frontier")
	if w.Code != 200 {
		t.Fatalf("/frontier status = %d", w.Code)
	}
	var curves []map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &curves); err != nil || len(curves) != 1 {
		t.Fatalf("/frontier body = %v (%v)", curves, err)
	}
}

func TestAdminProfilesEndpoint(t *testing.T) {
	a, _, _ := newTestAdmin(t)
	if w := get(t, a.Handler(), "/debug/profiles"); w.Code != http.StatusNotFound {
		t.Fatalf("unconfigured /debug/profiles status = %d, want 404", w.Code)
	}
	p := NewProfiler(4, time.Millisecond, time.Minute)
	a.SetProfiler(p)
	w := get(t, a.Handler(), "/debug/profiles")
	if w.Code != 200 {
		t.Fatalf("empty listing status = %d", w.Code)
	}
	var view ProfilerView
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil || len(view.Profiles) != 0 {
		t.Fatalf("empty listing = %+v (%v)", view, err)
	}

	if !p.Trigger("test anomaly") {
		t.Fatal("trigger suppressed")
	}
	p.Wait()
	w = get(t, a.Handler(), "/debug/profiles")
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil || len(view.Profiles) != 1 {
		t.Fatalf("listing after capture = %+v (%v)", view, err)
	}
	w = get(t, a.Handler(), "/debug/profiles?seq=1&kind=heap")
	if w.Code != 200 || w.Body.Len() == 0 {
		t.Fatalf("heap download: %d, %d bytes", w.Code, w.Body.Len())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("heap content-type = %q", ct)
	}
	if view.Profiles[0].Err == "" {
		if w := get(t, a.Handler(), "/debug/profiles?seq=1&kind=cpu"); w.Code != 200 || w.Body.Len() == 0 {
			t.Fatalf("cpu download: %d, %d bytes", w.Code, w.Body.Len())
		}
	}

	for path, want := range map[string]int{
		"/debug/profiles?seq=banana&kind=cpu": http.StatusBadRequest,
		"/debug/profiles?seq=1&kind=goros":    http.StatusBadRequest,
		"/debug/profiles?seq=99&kind=cpu":     http.StatusNotFound,
	} {
		if w := get(t, a.Handler(), path); w.Code != want {
			t.Errorf("%s: status = %d, want %d", path, w.Code, want)
		}
	}
}

func TestAdminAuditEndpoint(t *testing.T) {
	a, _, _ := newTestAdmin(t)
	if w := get(t, a.Handler(), "/audit"); w.Code != http.StatusNotFound {
		t.Fatalf("unconfigured /audit status = %d, want 404", w.Code)
	}
	a.SetAuditSource(func() any {
		return map[string]int{"sampled": 42}
	})
	w := get(t, a.Handler(), "/audit")
	if w.Code != 200 {
		t.Fatalf("/audit status = %d", w.Code)
	}
	var body map[string]int
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("/audit bad JSON: %v", err)
	}
	if body["sampled"] != 42 {
		t.Fatalf("/audit body = %v", body)
	}
}
