package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestAdmin(t *testing.T) (*Admin, *Registry, *Recorder) {
	t.Helper()
	reg := NewRegistry()
	rec := NewRecorder(8, 8)
	return NewAdmin(reg, rec), reg, rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestAdminMetrics(t *testing.T) {
	a, reg, _ := newTestAdmin(t)
	reg.Counter("reqs_total").Add(5)
	w := get(t, a.Handler(), "/metrics")
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "reqs_total 5") {
		t.Fatalf("metrics body:\n%s", w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
}

func TestAdminHealthzFlips(t *testing.T) {
	a, _, _ := newTestAdmin(t)
	if w := get(t, a.Handler(), "/healthz"); w.Code != 200 || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("ready healthz: %d %q", w.Code, w.Body.String())
	}
	a.SetReady(false)
	if a.Ready() {
		t.Fatal("Ready() should be false")
	}
	if w := get(t, a.Handler(), "/healthz"); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("draining healthz: %d %q", w.Code, w.Body.String())
	}
}

// TestAdminHealthzThreeStates pins the health surface's distinction
// between healthy (200 ok), serving-around-failures (200 degraded,
// listing the open breakers so probes can see which domains are down
// without evicting the process) and draining (503).
func TestAdminHealthzThreeStates(t *testing.T) {
	a, _, _ := newTestAdmin(t)
	var open []string
	a.SetHealthSource(func() []string { return open })

	if w := get(t, a.Handler(), "/healthz"); w.Code != 200 || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthy: %d %q", w.Code, w.Body.String())
	}

	open = []string{"127.0.0.1:9001", "127.0.0.1:9003"}
	w := get(t, a.Handler(), "/healthz")
	if w.Code != 200 {
		t.Fatalf("degraded must stay routable (200), got %d", w.Code)
	}
	body := w.Body.String()
	if !strings.Contains(body, "degraded") || strings.Contains(body, "ok\n") {
		t.Fatalf("degraded body: %q", body)
	}
	for _, b := range open {
		if !strings.Contains(body, "open-breaker "+b) {
			t.Fatalf("degraded body does not list %s: %q", b, body)
		}
	}

	// Draining wins over degraded: a stopping process must be evicted.
	a.SetReady(false)
	if w := get(t, a.Handler(), "/healthz"); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("draining: %d %q", w.Code, w.Body.String())
	}

	// Healed: back to plain ok.
	a.SetReady(true)
	open = nil
	if w := get(t, a.Handler(), "/healthz"); w.Code != 200 || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healed: %d %q", w.Code, w.Body.String())
	}
}

func TestAdminTraces(t *testing.T) {
	a, _, rec := newTestAdmin(t)
	for i := 0; i < 3; i++ {
		tr := rec.Start(0, time.Now())
		tr.Add(SpanMerge, -1, time.Now(), time.Millisecond, 0)
		tr.Finish(2 * time.Millisecond)
	}
	w := get(t, a.Handler(), "/traces?n=2")
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	var body struct {
		Traces []TraceView `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body.String())
	}
	if len(body.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(body.Traces))
	}
	if len(body.Traces[0].Spans) != 1 {
		t.Fatalf("spans lost in JSON: %+v", body.Traces[0])
	}
	if w := get(t, a.Handler(), "/traces?n=bogus"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad n: status = %d", w.Code)
	}
}

func TestAdminTracesNilRecorder(t *testing.T) {
	a := NewAdmin(NewRegistry(), nil)
	w := get(t, a.Handler(), "/traces")
	if w.Code != 200 || !strings.Contains(w.Body.String(), `"traces": []`) {
		t.Fatalf("nil recorder: %d %q", w.Code, w.Body.String())
	}
}

func TestAdminPprofIndex(t *testing.T) {
	a, _, _ := newTestAdmin(t)
	w := get(t, a.Handler(), "/debug/pprof/")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "goroutine") {
		t.Fatalf("pprof index: %d", w.Code)
	}
}

func TestAdminListenServesOverTCP(t *testing.T) {
	a, reg, _ := newTestAdmin(t)
	reg.Counter("live_total").Inc()
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "live_total 1") {
		t.Fatalf("scrape over TCP: %d %q", resp.StatusCode, body)
	}
}
