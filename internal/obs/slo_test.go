package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// naiveSLO is the reference implementation for the sliding windows: it
// keeps every (timestamp, flags, counted) event and re-scans the lot.
type naiveSLO struct {
	events []struct {
		sec     int64
		flags   SLOFlags
		counted bool
	}
}

func (n *naiveSLO) record(sec int64, flags SLOFlags, counted bool) {
	n.events = append(n.events, struct {
		sec     int64
		flags   SLOFlags
		counted bool
	}{sec, flags, counted})
}

// window sums events whose bucket (sec/gran) lies inside the window of
// `buckets` buckets of `gran` seconds ending at the bucket of nowSec.
func (n *naiveSLO) window(nowSec, gran int64, buckets int) (total, miss, floor, deg int64) {
	hi := nowSec / gran
	lo := hi - int64(buckets) + 1
	for _, e := range n.events {
		b := e.sec / gran
		if b < lo || b > hi {
			continue
		}
		if e.counted {
			total++
		}
		if e.flags&SLODeadlineMiss != 0 {
			miss++
		}
		if e.flags&SLOFloorViolation != 0 {
			floor++
		}
		if e.flags&SLODegraded != 0 {
			deg++
		}
	}
	return
}

func TestSLOTrackerMatchesNaiveReference(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	now := base
	tr := NewSLOTracker(SLOBudgets{})
	tr.SetClock(func() time.Time { return now })
	ref := &naiveSLO{}

	// A deterministic stream spread over ~2h so every window rolls
	// buckets out: xorshift drives time steps and flag patterns.
	rng := uint64(42)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	at := base
	for i := 0; i < 4000; i++ {
		at = at.Add(time.Duration(next(4)) * time.Second)
		var flags SLOFlags
		if next(100) < 5 {
			flags |= SLODeadlineMiss
		}
		if next(100) < 20 {
			flags |= SLODegraded
		}
		tr.RecordAt(at, 1, "", flags)
		ref.record(at.Unix(), flags, true)
		if next(100) < 3 {
			// After-the-fact floor violation: bumps only the violation
			// counter, never the total.
			now = at
			tr.RecordFloorViolation(1, "")
			ref.record(at.Unix(), SLOFloorViolation, false)
		}
	}
	now = at
	for w, spec := range sloWindows {
		total, miss, floor, deg := tr.Window(1, w)
		nt, nm, nf, nd := ref.window(at.Unix(), spec.gran, spec.buckets)
		if total != nt || miss != nm || floor != nf || deg != nd {
			t.Fatalf("window %s: tracker (%d,%d,%d,%d) != naive (%d,%d,%d,%d)",
				spec.name, total, miss, floor, deg, nt, nm, nf, nd)
		}
	}
	// Re-check after the stream ages fully out of the 1m window.
	now = at.Add(2 * time.Minute)
	if total, _, _, _ := tr.Window(1, 0); total != 0 {
		t.Fatalf("1m window still holds %d events 2m after the stream ended", total)
	}
	nt, _, _, _ := ref.window(now.Unix(), 1, 60)
	if nt != 0 {
		t.Fatalf("naive reference disagrees: %d", nt)
	}
}

func TestSLOTrackerBurnRates(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := NewSLOTracker(SLOBudgets{DeadlineMiss: 0.01, Degraded: 0.1})
	tr.SetClock(func() time.Time { return now })
	for i := 0; i < 99; i++ {
		tr.RecordAt(now, 2, "", 0)
	}
	tr.RecordAt(now, 2, "", SLODeadlineMiss|SLODegraded)
	// 1 miss in 100 at a 1% budget = burn exactly 1.0.
	if got := tr.BurnRate(2, SLODeadlineMiss, 0); got != 1.0 {
		t.Fatalf("deadline burn = %g, want 1.0", got)
	}
	// 1 degraded in 100 at a 10% budget = burn 0.1 (up to fp rounding).
	if got := tr.BurnRate(2, SLODegraded, 0); got < 0.1-1e-12 || got > 0.1+1e-12 {
		t.Fatalf("degraded burn = %g, want 0.1", got)
	}
	// Unused class: no traffic, burn 0 (not NaN).
	if got := tr.BurnRate(0, SLODeadlineMiss, 0); got != 0 {
		t.Fatalf("idle-class burn = %g, want 0", got)
	}
}

func TestSLOTrackerTenantsAndOverflow(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := NewSLOTracker(SLOBudgets{})
	tr.SetClock(func() time.Time { return now })
	tr.maxTenants = 3
	for i := 0; i < 10; i++ {
		tr.RecordAt(now, 1, fmt.Sprintf("tenant-%d", i), SLODegraded)
	}
	v := tr.Snapshot()
	if len(v.Tenants) != 4 { // 3 real + "~other"
		t.Fatalf("tenant dimensions = %d, want 4 (cap 3 + overflow)", len(v.Tenants))
	}
	other, ok := v.Tenants[overflowTenant]
	if !ok {
		t.Fatalf("overflow tenant missing; have %v", keysOf(v.Tenants))
	}
	if got := other[1].Windows[0].Total; got != 7 {
		t.Fatalf("overflow tenant total = %d, want 7", got)
	}
	// The class aggregate saw everyone.
	if total, _, _, _ := tr.Window(1, 0); total != 10 {
		t.Fatalf("class aggregate total = %d, want 10", total)
	}
}

// TestSLOTrackerManyTenantsCapAtDefault drives a tenant-ID flood (far
// past the default cap) and pins the containment behavior: the map
// stops growing at maxSLOTenants, everything past the cap collapses
// into the overflow series instead of allocating without bound, events
// are conserved (per-tenant totals sum to the class aggregate), and
// tenants admitted before the flood keep recording into their own
// series rather than being evicted into "~other".
func TestSLOTrackerManyTenantsCapAtDefault(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := NewSLOTracker(SLOBudgets{})
	tr.SetClock(func() time.Time { return now })
	if tr.maxTenants != maxSLOTenants {
		t.Fatalf("default cap = %d, want %d", tr.maxTenants, maxSLOTenants)
	}
	tr.RecordAt(now, 1, "early-bird", SLODeadlineMiss)
	const flood = 500
	for i := 0; i < flood; i++ {
		tr.RecordAt(now, 1, fmt.Sprintf("flood-%04d", i), SLODegraded)
	}
	// The early tenant records again after the flood filled the map.
	tr.RecordAt(now, 1, "early-bird", SLODeadlineMiss)

	v := tr.Snapshot()
	if len(v.Tenants) != maxSLOTenants+1 { // cap + "~other"
		t.Fatalf("tenant series = %d, want %d", len(v.Tenants), maxSLOTenants+1)
	}
	early, ok := v.Tenants["early-bird"]
	if !ok {
		t.Fatal("pre-flood tenant evicted by the flood")
	}
	if got := early[1].Windows[0].DeadlineMiss; got != 2 {
		t.Fatalf("early-bird misses = %d, want 2 (post-flood event lost)", got)
	}
	other, ok := v.Tenants[overflowTenant]
	if !ok {
		t.Fatal("overflow tenant missing")
	}
	// early-bird took one slot, so maxSLOTenants-1 flood tenants were
	// admitted; the rest landed in the overflow bucket.
	wantOther := int64(flood - (maxSLOTenants - 1))
	if got := other[1].Windows[0].Total; got != wantOther {
		t.Fatalf("overflow total = %d, want %d", got, wantOther)
	}
	var perTenant int64
	for _, classes := range v.Tenants {
		perTenant += classes[1].Windows[0].Total
	}
	total, _, _, _ := tr.Window(1, 0)
	if perTenant != total || total != flood+2 {
		t.Fatalf("conservation: per-tenant sum %d, class aggregate %d, want %d",
			perTenant, total, flood+2)
	}
}

func keysOf(m map[string][]SLOClassView) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSLOTrackerNilSafe(t *testing.T) {
	var tr *SLOTracker
	tr.Record(1, "t", SLODeadlineMiss)
	tr.RecordFloorViolation(1, "t")
	tr.SetClock(time.Now)
	tr.RegisterMetrics(NewRegistry())
	if got := tr.BurnRate(1, SLODeadlineMiss, 0); got != 0 {
		t.Fatalf("nil BurnRate = %g, want 0", got)
	}
	if v := tr.Snapshot(); len(v.Classes) != 0 {
		t.Fatalf("nil Snapshot non-empty: %+v", v)
	}
	// Out-of-range class and window indices are ignored, not panics.
	live := NewSLOTracker(SLOBudgets{})
	live.Record(9, "t", SLODeadlineMiss)
	if got := live.BurnRate(9, SLODeadlineMiss, 0); got != 0 {
		t.Fatalf("bad-class BurnRate = %g, want 0", got)
	}
	if got := live.BurnRate(1, SLODeadlineMiss, 5); got != 0 {
		t.Fatalf("bad-window BurnRate = %g, want 0", got)
	}
}

func TestSLOTrackerRegisterMetrics(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := NewSLOTracker(SLOBudgets{DeadlineMiss: 0.01})
	tr.SetClock(func() time.Time { return now })
	reg := NewRegistry()
	tr.RegisterMetrics(reg)
	tr.RecordAt(now, 1, "", SLODeadlineMiss)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `slo_burn_rate{class="Bounded",signal="deadline_miss",window="1m"} 100`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q\n--- got ---\n%s", want, out)
	}
	// 3 classes x 3 signals x 3 windows.
	if n := strings.Count(out, "slo_burn_rate{"); n != 27 {
		t.Fatalf("exported %d slo_burn_rate series, want 27", n)
	}
}

func TestSLOTrackerRecordRace(t *testing.T) {
	tr := NewSLOTracker(SLOBudgets{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%2)
			for i := 0; i < 2000; i++ {
				tr.Record(uint8(i%3), tenant, SLOFlags(i%8))
			}
		}()
	}
	for i := 0; i < 20; i++ {
		tr.Snapshot()
		tr.BurnRate(1, SLODegraded, 1)
	}
	wg.Wait()
	var total int64
	for class := uint8(0); class < 3; class++ {
		ct, _, _, _ := tr.Window(class, 2)
		total += ct
	}
	if total != 8000 {
		t.Fatalf("1h totals across classes = %d, want 8000", total)
	}
}

func TestSLOTrackerRecordDoesNotAllocate(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := NewSLOTracker(SLOBudgets{})
	tr.SetClock(func() time.Time { return now })
	tr.Record(1, "warm", SLODegraded) // pre-create the tenant series
	allocs := testing.AllocsPerRun(200, func() {
		tr.Record(1, "warm", SLODeadlineMiss)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op on a warm tenant, want 0", allocs)
	}
}

func TestTenantContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TenantFrom(ctx); got != "" {
		t.Fatalf("TenantFrom(empty) = %q", got)
	}
	ctx2 := WithTenant(ctx, "acme")
	if got := TenantFrom(ctx2); got != "acme" {
		t.Fatalf("TenantFrom = %q, want acme", got)
	}
	if WithTenant(ctx, "") != ctx {
		t.Fatal("WithTenant(\"\") should be a no-op")
	}
}
