package obs

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// counterShards spreads a hot counter's increments over independent
// cache lines so concurrent writers do not serialize on one word.
// Must be a power of two.
const counterShards = 8

// shardCell pads one atomic to a cache line.
type shardCell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. The zero
// value is usable; increments never allocate.
type Counter struct {
	shards [counterShards]shardCell
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	c.shards[rand.Uint64()&(counterShards-1)].v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. The sum is exact once writers quiesce;
// concurrent reads see a consistent-enough point-in-time total.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: bounds are set at creation,
// observations never allocate. Bucket i counts observations <=
// bounds[i]; the final implicit bucket counts the rest (+Inf).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefaultLatencyBuckets are millisecond bounds that resolve both the
// sub-millisecond in-process path and the hundreds-of-milliseconds
// interference tail.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}
}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("obs: histogram bounds must strictly increase (bound %d: %g after %g)",
				i, bounds[i], bounds[i-1])
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (~12) and the common case
	// exits early; a binary search's branches cost about the same.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an estimate of the q-th quantile by linear
// interpolation inside the holding bucket — coarse by design (fixed
// buckets), but monotone and cheap. Edge cases are pinned to sane
// values instead of bucket-boundary artifacts: an empty histogram
// returns 0 (not NaN, which would poison JSON encoders), q is clamped
// into [0,1], a single observation returns the exact mean, q=0 returns
// the lower edge of the first occupied bucket, q=1 the upper edge of
// the last occupied one, and a quantile landing in the open +Inf
// bucket reports the mean when it exceeds the bucket's lower edge (the
// only remaining signal about how far the tail runs) rather than the
// top finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	mean := h.Sum() / float64(total)
	if total == 1 {
		// One observation: the sum is the observation.
		return mean
	}
	rank := q * float64(total)
	var cum int64
	lo := 0.0
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n > 0 {
			hi := math.Inf(1)
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if q == 0 {
				return lo // lower edge of the first occupied bucket
			}
			if float64(cum)+float64(n) >= rank {
				if math.IsInf(hi, 1) {
					// Open bucket: no upper edge to interpolate toward. The
					// mean bounds the tail from below at least as tightly as
					// the bucket's lower edge when mass sits out there.
					if mean > lo {
						return mean
					}
					return lo
				}
				if q == 1 {
					return hi // upper edge of the last occupied bucket
				}
				frac := (rank - float64(cum)) / float64(n)
				return lo + frac*(hi-lo)
			}
		}
		cum += n
		if i < len(h.bounds) {
			lo = h.bounds[i]
		}
	}
	return lo
}

// Registry names and exposes a process's metrics. Metric instruments
// are get-or-create: asking twice for the same name returns the same
// instrument, so independently wired subsystems share counters by
// naming convention. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		hists:      map[string]*Histogram{},
	}
}

// NameError is the typed registration error for malformed metric
// names. Registration methods panic with a *NameError — metric names
// are compile-time constants, so a typo should fail the first test
// that touches it — and callers validating dynamic names up front use
// CheckName, which returns it.
type NameError struct {
	Name   string // the offending metric name
	Reason string // what is wrong with it
}

// Error implements error.
func (e *NameError) Error() string {
	return fmt.Sprintf("obs: invalid metric name %q: %s", e.Name, e.Reason)
}

// CheckName reports whether name is a well-formed metric name (a
// Prometheus identifier with an optional {label="value",...} suffix);
// a non-nil result is always a *NameError.
func CheckName(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	return nil
}

// validName checks the metric name: a Prometheus-compatible identifier
// with an optional {label="value",...} suffix.
func validName(name string) *NameError {
	base, labels := splitName(name)
	if base == "" {
		return &NameError{Name: name, Reason: "empty base name"}
	}
	for i, r := range base {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return &NameError{Name: name, Reason: fmt.Sprintf("character %q not allowed", r)}
		}
	}
	if labels != "" && (!strings.HasPrefix(labels, "{") || !strings.HasSuffix(labels, "}")) {
		return &NameError{Name: name, Reason: "label suffix must be {...}"}
	}
	return nil
}

// EscapeLabelValue escapes a label value for the Prometheus text
// exposition format: backslash, double quote and newline become
// \\, \" and \n. Every dynamically interpolated label value must pass
// through here (Labels does it automatically) or a hostile value could
// break out of its quotes and corrupt the whole scrape.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Labels renders alternating key/value pairs as a {k="v",...} metric
// name suffix with the values escaped, the one safe way to build a
// labelled metric name from dynamic strings:
//
//	reg.Counter("ingest_publishes_total" + obs.Labels("store", name))
//
// Odd trailing keys and empty input yield "" (no suffix). Keys are the
// caller's responsibility and must be static identifiers.
func Labels(kv ...string) string {
	if len(kv) < 2 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates "name{label=...}" into base name and label block.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// Counter returns (creating if needed) the named counter. Invalid
// names panic: metric names are compile-time constants and a typo
// should fail the first test that touches it.
func (r *Registry) Counter(name string) *Counter {
	if err := validName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if err := validName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge computed at scrape time (live queue
// depths, cache sizes). Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	if err := validName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = f
	r.mu.Unlock()
}

// Histogram returns (creating if needed) the named histogram. The
// bounds of an existing histogram are kept; passing different bounds
// for the same name panics, surfacing the conflict where it is made.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if err := validName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Errorf("obs: histogram %q re-registered with different bounds", name))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Errorf("obs: histogram %q re-registered with different bounds", name))
			}
		}
		return h
	}
	h, err := newHistogram(bounds)
	if err != nil {
		panic(err)
	}
	r.hists[name] = h
	return h
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, sorted by name for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	type namedCounter struct {
		name string
		c    *Counter
	}
	type namedGauge struct {
		name string
		v    float64
	}
	type namedHist struct {
		name string
		h    *Histogram
	}
	counters := make([]namedCounter, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, namedCounter{name, c})
	}
	gauges := make([]namedGauge, 0, len(r.gauges)+len(r.gaugeFuncs))
	for name, g := range r.gauges {
		gauges = append(gauges, namedGauge{name, g.Value()})
	}
	fns := make(map[string]func() float64, len(r.gaugeFuncs))
	for name, f := range r.gaugeFuncs {
		fns[name] = f
	}
	hists := make([]namedHist, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, namedHist{name, h})
	}
	r.mu.RUnlock()
	// Scrape-time gauges run outside the registry lock: a GaugeFunc may
	// probe a subsystem that itself registers metrics.
	for name, f := range fns {
		gauges = append(gauges, namedGauge{name, f()})
	}

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	var b strings.Builder
	typed := map[string]bool{}
	typeLine := func(name, kind string) {
		base, _ := splitName(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, nc := range counters {
		typeLine(nc.name, "counter")
		fmt.Fprintf(&b, "%s %d\n", nc.name, nc.c.Value())
	}
	for _, ng := range gauges {
		typeLine(ng.name, "gauge")
		fmt.Fprintf(&b, "%s %g\n", ng.name, ng.v)
	}
	for _, nh := range hists {
		typeLine(nh.name, "histogram")
		base, labels := splitName(nh.name)
		leName := func(le string) string {
			if labels == "" {
				return fmt.Sprintf("%s_bucket{le=%q}", base, le)
			}
			return fmt.Sprintf("%s_bucket%s,le=%q}", base, labels[:len(labels)-1], le)
		}
		var cum int64
		for i := range nh.h.buckets {
			cum += nh.h.buckets[i].Load()
			le := "+Inf"
			if i < len(nh.h.bounds) {
				le = formatFloat(nh.h.bounds[i])
			}
			fmt.Fprintf(&b, "%s %d\n", leName(le), cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %g\n", base, labels, nh.h.Sum())
		fmt.Fprintf(&b, "%s_count%s %d\n", base, labels, nh.h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a bucket bound the way Prometheus clients expect.
func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
