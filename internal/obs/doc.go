// Package obs is the serving stack's low-overhead observability layer:
// a unified metrics registry and a per-request decision tracer, surfaced
// through an admin HTTP plane.
//
// The registry (Registry) holds sharded atomic counters, gauges and
// fixed-bucket histograms, and renders them in the Prometheus text
// exposition format. The three runtime packages' ad-hoc Stats structs
// (internal/frontend, internal/service, internal/rescache) are backed by
// registry counters — their snapshot APIs are unchanged, but every
// counter a Stats() call reports is now also one scrape away.
//
// The tracer (Recorder) is a preallocated ring buffer of per-request
// span trees. A request's trace records the admission verdict, the
// chosen SLO class and ladder level, cache hit/miss/coalesce, per
// component dispatch/queue/execution time, hedge fires, and merge time.
// The trace travels by context (ContextWithTrace / TraceFrom) and its
// 64-bit ID propagates across TCP in the wire protocol (v3), so
// component servers report server-side queue and execution spans that
// the aggregator stitches into the same tree. When no trace rides the
// context every recording call is a nil-receiver no-op: the disabled
// hot path performs zero allocations (CI-guarded).
//
// The admin plane (Admin) serves /metrics (Prometheus text), /healthz
// (readiness, flipped unready during graceful drain), /traces?n=K
// (recent traces as JSON) and /debug/pprof. Summarize turns a batch of
// traces into per-SLO-class deadline-budget breakdown tables — where a
// slow request actually spent its budget.
package obs
