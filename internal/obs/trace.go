package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind classifies one recorded stage of a request.
type SpanKind uint8

// The span kinds, in rough pipeline order.
const (
	// SpanAdmission is the frontend's load-observe + admit/degrade/
	// reject decision (Note: a Verdict* value).
	SpanAdmission SpanKind = iota
	// SpanCache is the result-cache interaction (Note: a Cache* value).
	SpanCache
	// SpanSubOp is one sub-operation as the aggregator saw it: dispatch
	// to reply (or failure), per subset. Comp is the subset; Note holds
	// the executing component for routed/hedged placements.
	SpanSubOp
	// SpanHedge marks a hedge fire for a subset (Note: the replica
	// component). Its Start is the fire time; Dur is zero.
	SpanHedge
	// SpanServerQueue is a component server's queue wait, recorded
	// server-side and stitched in over the wire.
	SpanServerQueue
	// SpanServerExec is a component server's handler execution,
	// recorded server-side and stitched in over the wire.
	SpanServerExec
	// SpanMerge is the aggregator-side composition of sub-replies into
	// the whole-service answer.
	SpanMerge
	// SpanRetry marks a sub-operation re-dispatched to another
	// component after a peer-level failure (Note: the new component).
	// Its Start is the retry time; Dur is zero.
	SpanRetry
	// SpanBreakerTrip marks the failure that tripped a peer's circuit
	// breaker open (Note: the tripped component).
	SpanBreakerTrip
)

// String returns the span kind's summary-table label.
func (k SpanKind) String() string {
	switch k {
	case SpanAdmission:
		return "admission"
	case SpanCache:
		return "cache"
	case SpanSubOp:
		return "subop"
	case SpanHedge:
		return "hedge"
	case SpanServerQueue:
		return "srvqueue"
	case SpanServerExec:
		return "srvexec"
	case SpanMerge:
		return "merge"
	case SpanRetry:
		return "retry"
	case SpanBreakerTrip:
		return "brktrip"
	default:
		return "unknown"
	}
}

// Admission verdicts (Trace.Verdict and SpanAdmission notes).
const (
	VerdictAdmitted = 0
	VerdictDegraded = 1
	VerdictRejected = 2
)

// AnomalyReason is a bit set naming why a trace counts as anomalous.
// Anomalous traces are pinned into the recorder's exemplar store at
// Finish (or at Pin, for reasons discovered after the fact, like an
// audit mismatch) so the tail's evidence survives while healthy traces
// rotate through the ring.
type AnomalyReason uint8

// The anomaly reasons.
const (
	// AnomalyDeadlineMiss: the request finished past its stamped
	// absolute deadline (detected by Finish).
	AnomalyDeadlineMiss AnomalyReason = 1 << iota
	// AnomalyDegraded: the reply was served degraded (downgraded class
	// or partial fan-out).
	AnomalyDegraded
	// AnomalyUnavailable: the request's contract could not be met and
	// an unavailable reply was returned.
	AnomalyUnavailable
	// AnomalyHedge: a hedge fired during the fan-out (detected when the
	// hedge span is recorded).
	AnomalyHedge
	// AnomalyFloorViolation: the ground-truth auditor measured realized
	// accuracy below the request's Bounded floor.
	AnomalyFloorViolation
	// AnomalyAuditMismatch: the auditor found the claimed accuracy or
	// claimed error bounds not backed by the exact replay.
	AnomalyAuditMismatch
)

// anomalyNames orders the reason labels by bit position.
var anomalyNames = []string{
	"deadline_miss", "degraded", "unavailable", "hedge",
	"floor_violation", "audit_mismatch",
}

// Labels expands the bit set into its reason labels (nil when clear).
func (a AnomalyReason) Labels() []string {
	if a == 0 {
		return nil
	}
	out := make([]string, 0, 2)
	for i, name := range anomalyNames {
		if a&(1<<uint(i)) != 0 {
			out = append(out, name)
		}
	}
	return out
}

// Cache outcomes (Trace.CacheOutcome and SpanCache notes).
const (
	CacheNone      = 0 // no cache configured / request uncacheable
	CacheHit       = 1
	CacheMiss      = 2 // this request computed (and possibly stored)
	CacheCoalesced = 3 // shared another in-flight request's computation
	CacheRefresh   = 4 // a background refresh-to-exact recomputation
)

// Span is one recorded stage. Start is an offset from the trace's
// start; remote spans are converted from the server's wall clock, so
// cross-machine offsets inherit clock skew (loopback and single-host
// deployments are exact to clock resolution).
type Span struct {
	Kind   SpanKind      `json:"kind"`
	Comp   int32         `json:"comp"` // subset or component; -1 when not applicable
	Remote bool          `json:"remote,omitempty"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Note   int64         `json:"note,omitempty"`
}

// Trace is one request's span tree under construction. A nil *Trace is
// a valid no-op receiver: every method returns immediately, which is
// what keeps the tracing-disabled hot path allocation-free.
type Trace struct {
	mu   sync.Mutex
	rec  *Recorder
	slot int // ring slot, -1 for detached overflow traces
	seq  uint64

	id       uint64
	start    time.Time
	tenant   string
	kind     uint8
	slo      uint8
	minAcc   float64
	level    int16
	verdict  uint8
	cacheOut uint8
	deadline int64 // absolute unix nanos, 0 = none
	dur      time.Duration
	done     bool
	anomaly  AnomalyReason
	dropped  int // spans lost to the per-trace cap
	spans    []Span
}

// TraceView is an immutable snapshot of a finished (or in-flight)
// trace, as served by /traces and consumed by Summarize.
type TraceView struct {
	ID           uint64   `json:"id"`
	Start        int64    `json:"start_unix_ns"`
	DurNs        int64    `json:"dur_ns"`
	Tenant       string   `json:"tenant,omitempty"`
	Kind         uint8    `json:"kind"`
	SLO          uint8    `json:"slo"`
	MinAccuracy  float64  `json:"min_accuracy,omitempty"`
	Level        int16    `json:"level"`
	Verdict      uint8    `json:"verdict"`
	CacheOutcome uint8    `json:"cache_outcome"`
	DeadlineNs   int64    `json:"deadline_unix_ns,omitempty"`
	Done         bool     `json:"done"`
	Anomaly      uint8    `json:"anomaly,omitempty"`
	AnomalyWhy   []string `json:"anomaly_labels,omitempty"`
	Dropped      int      `json:"dropped_spans,omitempty"`
	Spans        []Span   `json:"spans"`
}

// Recorder is a preallocated ring buffer of traces. Start claims a
// slot (overflowing to a detached, unlisted trace when every slot is
// still in flight), Finish completes it, Snapshot copies the most
// recent finished traces. All methods are safe for concurrent use.
type Recorder struct {
	slots    []Trace
	maxSpans int
	nextSlot atomic.Uint64
	nextSeq  atomic.Uint64
	nextID   atomic.Uint64
	started  Counter
	overflow Counter
	ex       exemplarStore
}

// exemplarStore holds pinned copies of anomalous traces, separate from
// the ring so the interesting tail survives while healthy traces
// rotate. Bounded: the oldest pin is evicted once cap entries are held.
type exemplarStore struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	entries []exemplarEntry
	pinned  Counter
	evicted Counter
}

type exemplarEntry struct {
	seq  uint64
	view TraceView
}

// pin inserts (or, for an already-pinned trace ID, replaces) a view.
func (ex *exemplarStore) pin(v TraceView) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.seq++
	for i := range ex.entries {
		if ex.entries[i].view.ID == v.ID {
			ex.entries[i] = exemplarEntry{ex.seq, v}
			return
		}
	}
	ex.pinned.Inc()
	if len(ex.entries) < ex.cap {
		ex.entries = append(ex.entries, exemplarEntry{ex.seq, v})
		return
	}
	// Evict the oldest pin.
	oldest := 0
	for i := 1; i < len(ex.entries); i++ {
		if ex.entries[i].seq < ex.entries[oldest].seq {
			oldest = i
		}
	}
	ex.entries[oldest] = exemplarEntry{ex.seq, v}
	ex.evicted.Inc()
}

// NewRecorder returns a recorder with n ring slots, each holding up to
// maxSpans spans (excess spans are counted as dropped, never grown:
// span storage is claimed once, up front). n <= 0 selects 256 slots,
// maxSpans <= 0 selects 64 spans.
func NewRecorder(n, maxSpans int) *Recorder {
	if n <= 0 {
		n = 256
	}
	if maxSpans <= 0 {
		maxSpans = 64
	}
	r := &Recorder{slots: make([]Trace, n), maxSpans: maxSpans}
	r.ex.cap = 128
	for i := range r.slots {
		r.slots[i].rec = r
		r.slots[i].slot = i
		r.slots[i].spans = make([]Span, 0, maxSpans)
	}
	return r
}

// SetExemplarCapacity bounds the anomalous-trace exemplar store at n
// pins (n <= 0 keeps the default of 128). Call before traffic: shrink
// does not drop already-pinned entries retroactively.
func (r *Recorder) SetExemplarCapacity(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.ex.mu.Lock()
	r.ex.cap = n
	r.ex.mu.Unlock()
}

// Exemplars returns up to n pinned anomalous traces, most recently
// pinned first. n <= 0 returns every pin.
func (r *Recorder) Exemplars(n int) []TraceView {
	if r == nil {
		return nil
	}
	r.ex.mu.Lock()
	all := make([]exemplarEntry, len(r.ex.entries))
	copy(all, r.ex.entries)
	r.ex.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	out := make([]TraceView, len(all))
	for i := range all {
		out[i] = all[i].view
	}
	return out
}

// PinnedTotal returns the number of distinct traces ever pinned as
// anomalous exemplars.
func (r *Recorder) PinnedTotal() int64 {
	if r == nil {
		return 0
	}
	return r.ex.pinned.Value()
}

// EvictedExemplars returns the number of pins dropped to the capacity
// bound.
func (r *Recorder) EvictedExemplars() int64 {
	if r == nil {
		return 0
	}
	return r.ex.evicted.Value()
}

// Pin marks the trace with the given ID anomalous for reason after the
// fact — the auditor's path, whose verdict lands long after Finish. If
// the trace is still in the ring its flags are updated and the pin
// refreshed; otherwise an already-pinned exemplar is updated in place.
// Returns false when the trace is gone from both.
func (r *Recorder) Pin(id uint64, reason AnomalyReason) bool {
	if r == nil || id == 0 {
		return false
	}
	for i := range r.slots {
		tr := &r.slots[i]
		tr.mu.Lock()
		if tr.seq != 0 && tr.id == id {
			tr.anomaly |= reason
			v := tr.viewLocked()
			tr.mu.Unlock()
			r.ex.pin(v)
			return true
		}
		tr.mu.Unlock()
	}
	r.ex.mu.Lock()
	defer r.ex.mu.Unlock()
	for i := range r.ex.entries {
		if r.ex.entries[i].view.ID == id {
			e := &r.ex.entries[i]
			e.view.Anomaly |= uint8(reason)
			e.view.AnomalyWhy = AnomalyReason(e.view.Anomaly).Labels()
			return true
		}
	}
	return false
}

// Started returns the number of traces started.
func (r *Recorder) Started() int64 { return r.started.Value() }

// Overflowed returns the number of traces that could not claim a ring
// slot (every slot was in flight) and were recorded detached — they
// never appear in Snapshot.
func (r *Recorder) Overflowed() int64 { return r.overflow.Value() }

// Start claims a trace for a request beginning at start. id is the
// propagated trace ID; pass 0 to mint a fresh one.
func (r *Recorder) Start(id uint64, start time.Time) *Trace {
	if r == nil {
		return nil
	}
	if id == 0 {
		id = r.nextID.Add(1)<<16 | uint64(start.UnixNano())&0xffff
	}
	r.started.Inc()
	n := uint64(len(r.slots))
	first := r.nextSlot.Add(1) - 1
	for off := uint64(0); off < n; off++ {
		tr := &r.slots[(first+off)%n]
		tr.mu.Lock()
		if tr.seq != 0 && !tr.done {
			tr.mu.Unlock()
			continue // still being written by an in-flight request
		}
		tr.reset(id, start, r.nextSeq.Add(1))
		tr.mu.Unlock()
		return tr
	}
	// Every slot is in flight: record detached so the caller still gets
	// a valid trace (it just will not be listed).
	r.overflow.Inc()
	tr := &Trace{rec: r, slot: -1, spans: make([]Span, 0, r.maxSpans)}
	tr.reset(id, start, r.nextSeq.Add(1))
	return tr
}

// reset reinitializes a claimed slot. Caller holds tr.mu (or owns the
// detached trace exclusively).
func (tr *Trace) reset(id uint64, start time.Time, seq uint64) {
	tr.id, tr.start, tr.seq = id, start, seq
	tr.tenant = ""
	tr.kind, tr.slo, tr.minAcc, tr.level = 0, 0, 0, -1
	tr.verdict, tr.cacheOut, tr.deadline = VerdictAdmitted, CacheNone, 0
	tr.dur, tr.done, tr.anomaly, tr.dropped = 0, false, 0, 0
	tr.spans = tr.spans[:0]
}

// ID returns the trace's 64-bit identity (0 for a nil trace).
func (tr *Trace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Begin returns the trace's start time (zero for a nil trace).
func (tr *Trace) Begin() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.start
}

// SetRequest stamps the request facts: workload kind, SLO class, its
// Bounded floor, and the absolute deadline (unix nanos, 0 = none).
func (tr *Trace) SetRequest(kind, slo uint8, minAcc float64, deadline int64) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.kind, tr.slo, tr.minAcc, tr.deadline = kind, slo, minAcc, deadline
	tr.mu.Unlock()
}

// SetTenant stamps the request's tenant ("" = untagged), so /traces
// can be filtered per tenant.
func (tr *Trace) SetTenant(tenant string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.tenant = tenant
	tr.mu.Unlock()
}

// SetDecision stamps the pipeline's decisions: admission verdict,
// effective SLO class after any downgrade, and the chosen ladder level.
func (tr *Trace) SetDecision(verdict uint8, slo uint8, level int16) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.verdict, tr.slo, tr.level = verdict, slo, level
	tr.mu.Unlock()
}

// SetCacheOutcome stamps the result-cache outcome.
func (tr *Trace) SetCacheOutcome(out uint8) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.cacheOut = out
	tr.mu.Unlock()
}

// Add records one span. start is the span's begin time on this
// process's clock.
func (tr *Trace) Add(kind SpanKind, comp int32, start time.Time, dur time.Duration, note int64) {
	if tr == nil {
		return
	}
	tr.add(Span{Kind: kind, Comp: comp, Start: start.Sub(tr.start), Dur: dur, Note: note})
}

// AddRemote stitches a server-side span into the tree. startUnixNano
// is the server's wall-clock span start.
func (tr *Trace) AddRemote(kind SpanKind, comp int32, startUnixNano, durNano int64) {
	if tr == nil {
		return
	}
	tr.add(Span{
		Kind: kind, Comp: comp, Remote: true,
		Start: time.Duration(startUnixNano - tr.start.UnixNano()),
		Dur:   time.Duration(durNano),
	})
}

func (tr *Trace) add(s Span) {
	tr.mu.Lock()
	if s.Kind == SpanHedge {
		tr.anomaly |= AnomalyHedge
	}
	if len(tr.spans) < cap(tr.spans) {
		tr.spans = append(tr.spans, s)
	} else {
		tr.dropped++
	}
	tr.mu.Unlock()
}

// MarkAnomaly flags the trace with an anomaly reason. Finish pins
// flagged traces into the exemplar store. Safe on a nil trace.
func (tr *Trace) MarkAnomaly(reason AnomalyReason) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.anomaly |= reason
	tr.mu.Unlock()
}

// Anomaly returns the accumulated anomaly bit set (0 for nil).
func (tr *Trace) Anomaly() AnomalyReason {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.anomaly
}

// Finish completes the trace with the request's total duration. A
// finish past the request's stamped deadline marks a deadline miss, and
// any anomalous trace is pinned into the recorder's exemplar store so
// it survives ring rotation. Healthy finishes stay allocation-free.
func (tr *Trace) Finish(dur time.Duration) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.dur = dur
	tr.done = true
	if tr.deadline != 0 && tr.start.UnixNano()+int64(dur) > tr.deadline {
		tr.anomaly |= AnomalyDeadlineMiss
	}
	var pin TraceView
	pinIt := tr.anomaly != 0 && tr.rec != nil
	if pinIt {
		pin = tr.viewLocked()
	}
	tr.mu.Unlock()
	if pinIt {
		tr.rec.ex.pin(pin)
	}
}

// View snapshots the trace. Caller holds tr.mu.
func (tr *Trace) viewLocked() TraceView {
	return TraceView{
		ID:           tr.id,
		Start:        tr.start.UnixNano(),
		DurNs:        int64(tr.dur),
		Tenant:       tr.tenant,
		Kind:         tr.kind,
		SLO:          tr.slo,
		MinAccuracy:  tr.minAcc,
		Level:        tr.level,
		Verdict:      tr.verdict,
		CacheOutcome: tr.cacheOut,
		DeadlineNs:   tr.deadline,
		Done:         tr.done,
		Anomaly:      uint8(tr.anomaly),
		AnomalyWhy:   tr.anomaly.Labels(),
		Dropped:      tr.dropped,
		Spans:        append([]Span(nil), tr.spans...),
	}
}

// Snapshot returns up to n finished traces, most recent first.
// n <= 0 returns every finished trace in the ring.
func (r *Recorder) Snapshot(n int) []TraceView {
	if r == nil {
		return nil
	}
	type seqView struct {
		seq  uint64
		view TraceView
	}
	all := make([]seqView, 0, len(r.slots))
	for i := range r.slots {
		tr := &r.slots[i]
		tr.mu.Lock()
		if tr.seq != 0 && tr.done {
			all = append(all, seqView{tr.seq, tr.viewLocked()})
		}
		tr.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	out := make([]TraceView, len(all))
	for i := range all {
		out[i] = all[i].view
	}
	return out
}

// traceKey carries the active *Trace through a request's context.
type traceKey struct{}

// ContextWithTrace attaches a trace to the context. Attaching nil
// returns ctx unchanged, so disabled paths never allocate a context.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom extracts the active trace; nil when the request is not
// traced. The nil result is a valid no-op receiver for every Trace
// method, so call sites need no branches.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
