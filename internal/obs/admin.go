package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Admin is the serving stack's HTTP admin plane. It exposes:
//
//	/metrics        Prometheus text exposition of the registry
//	/healthz        200 "ok" when ready, 200 "degraded" + the open
//	                breakers when serving around failed components,
//	                503 "draining" when not ready
//	/traces?n=K     the K most recent finished traces as JSON;
//	                ?class=Bounded (or 0/1/2), ?tenant=acme, ?min_ms=5,
//	                and ?filter=anomaly narrow the answer —
//	                filter=anomaly serves the pinned exemplar store
//	                instead of the ring
//	/slo            sliding-window SLO burn rates (SetSLOTracker)
//	/audit          the ground-truth auditor's calibration report
//	                (SetAuditSource)
//	/costs          the per-tenant cost attribution table
//	                (SetCostSource)
//	/frontier       the accuracy-vs-cost frontier per workload
//	                (SetFrontierSource)
//	/debug/profiles the anomaly-triggered profile ring: a JSON listing,
//	                or ?seq=N&kind=cpu|heap to download one capture
//	/debug/pprof/*  the standard runtime profiles
//
// Readiness starts true and is flipped by SetReady — graceful shutdown
// flips it false first so load balancers stop routing before the
// listeners close. Degraded is deliberately still a 200: the process
// keeps answering (rerouted, possibly at degraded accuracy), so load
// balancers must not evict it — but operators and probes can see which
// failure domains are open.
type Admin struct {
	reg      *Registry
	rec      *Recorder
	ready    atomic.Bool
	health   atomic.Value // func() []string: open-breaker source
	slo      atomic.Value // *SLOTracker
	audit    atomic.Value // func() any: audit report source
	costs    atomic.Value // func() any: cost table source
	frontier atomic.Value // func() any: frontier source
	profiler atomic.Value // *Profiler
	srv      *http.Server
	ln       net.Listener
}

// NewAdmin returns an admin plane over the given registry and recorder.
// Either may be nil: /metrics serves an empty exposition, /traces an
// empty list.
func NewAdmin(reg *Registry, rec *Recorder) *Admin {
	a := &Admin{reg: reg, rec: rec}
	a.ready.Store(true)
	return a
}

// SetReady flips the /healthz readiness answer.
func (a *Admin) SetReady(ready bool) { a.ready.Store(ready) }

// Ready reports the current readiness answer.
func (a *Admin) Ready() bool { return a.ready.Load() }

// SetHealthSource installs the degradation probe: a function returning
// the identifiers (peer addresses, component indices) whose circuit
// breakers are currently open. A non-empty answer turns /healthz into
// 200 "degraded" listing them; nil or an empty answer keeps plain
// "ok".
func (a *Admin) SetHealthSource(openBreakers func() []string) {
	a.health.Store(openBreakers)
}

// SetSLOTracker installs the tracker behind /slo.
func (a *Admin) SetSLOTracker(t *SLOTracker) { a.slo.Store(t) }

// SetAuditSource installs the report source behind /audit — a function
// returning any JSON-encodable value (typically audit.Auditor.Report;
// obs cannot import audit, so the coupling stays this loose).
func (a *Admin) SetAuditSource(report func() any) { a.audit.Store(report) }

// SetCostSource installs the cost-table source behind /costs — a
// function returning any JSON-encodable value (typically
// cost.Table.Snapshot; same loose coupling as the audit source).
func (a *Admin) SetCostSource(view func() any) { a.costs.Store(view) }

// SetFrontierSource installs the accuracy-vs-cost frontier source
// behind /frontier (typically the cost.Frontier join over the cost
// table and the audit plane's calibration tables).
func (a *Admin) SetFrontierSource(view func() any) { a.frontier.Store(view) }

// SetProfiler installs the anomaly-triggered profiler behind
// /debug/profiles.
func (a *Admin) SetProfiler(p *Profiler) { a.profiler.Store(p) }

// Handler returns the admin mux.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/traces", a.handleTraces)
	mux.HandleFunc("/slo", a.handleSLO)
	mux.HandleFunc("/audit", a.handleAudit)
	mux.HandleFunc("/costs", a.handleCosts)
	mux.HandleFunc("/frontier", a.handleFrontier)
	mux.HandleFunc("/debug/profiles", a.handleProfiles)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if a.reg != nil {
		a.reg.WritePrometheus(w)
	}
}

func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !a.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if src, _ := a.health.Load().(func() []string); src != nil {
		if open := src(); len(open) > 0 {
			fmt.Fprintln(w, "degraded")
			for _, b := range open {
				fmt.Fprintf(w, "open-breaker %s\n", b)
			}
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

// parseClass maps a ?class= value — an SLO label ("Exact", "Bounded",
// "BestEffort", case-insensitive) or its numeric code — to the class
// byte. ok is false for anything else.
func parseClass(s string) (uint8, bool) {
	for c := uint8(0); c < 3; c++ {
		if strings.EqualFold(s, ClassLabel(c)) {
			return c, true
		}
	}
	if v, err := strconv.Atoi(s); err == nil && v >= 0 && v <= 2 {
		return uint8(v), true
	}
	return 0, false
}

func (a *Admin) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n := 32
	if s := q.Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "obs: bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	hasClass := false
	var class uint8
	if s := q.Get("class"); s != "" {
		c, ok := parseClass(s)
		if !ok {
			http.Error(w, "obs: bad class", http.StatusBadRequest)
			return
		}
		hasClass, class = true, c
	}
	minDur := time.Duration(0)
	if s := q.Get("min_ms"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 {
			http.Error(w, "obs: bad min_ms", http.StatusBadRequest)
			return
		}
		minDur = time.Duration(v * float64(time.Millisecond))
	}
	tenant := q.Get("tenant")
	var views []TraceView
	switch q.Get("filter") {
	case "":
		views = a.rec.Snapshot(n)
	case "anomaly":
		views = a.rec.Exemplars(n)
	default:
		http.Error(w, "obs: bad filter (want anomaly)", http.StatusBadRequest)
		return
	}
	if hasClass || minDur > 0 || tenant != "" {
		kept := views[:0]
		for _, v := range views {
			if hasClass && v.SLO != class {
				continue
			}
			if minDur > 0 && time.Duration(v.DurNs) < minDur {
				continue
			}
			if tenant != "" && v.Tenant != tenant {
				continue
			}
			kept = append(kept, v)
		}
		views = kept
	}
	if views == nil {
		views = []TraceView{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Traces []TraceView `json:"traces"`
	}{views})
}

func (a *Admin) handleSLO(w http.ResponseWriter, _ *http.Request) {
	t, _ := a.slo.Load().(*SLOTracker)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(t.Snapshot())
}

func (a *Admin) handleAudit(w http.ResponseWriter, _ *http.Request) {
	src, _ := a.audit.Load().(func() any)
	if src == nil {
		http.Error(w, "obs: no audit source configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(src())
}

func (a *Admin) handleCosts(w http.ResponseWriter, _ *http.Request) {
	src, _ := a.costs.Load().(func() any)
	if src == nil {
		http.Error(w, "obs: no cost source configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(src())
}

func (a *Admin) handleFrontier(w http.ResponseWriter, _ *http.Request) {
	src, _ := a.frontier.Load().(func() any)
	if src == nil {
		http.Error(w, "obs: no frontier source configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(src())
}

// handleProfiles serves the anomaly-triggered profile ring: the JSON
// listing by default, or one capture's raw pprof bytes with
// ?seq=N&kind=cpu|heap.
func (a *Admin) handleProfiles(w http.ResponseWriter, r *http.Request) {
	p, _ := a.profiler.Load().(*Profiler)
	if p == nil {
		http.Error(w, "obs: no profiler configured", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	if s := q.Get("seq"); s != "" {
		seq, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "obs: bad seq", http.StatusBadRequest)
			return
		}
		c, ok := p.Get(seq)
		if !ok {
			http.Error(w, "obs: no such profile (evicted?)", http.StatusNotFound)
			return
		}
		var data []byte
		switch q.Get("kind") {
		case "cpu":
			data = c.CPU
		case "heap":
			data = c.Heap
		default:
			http.Error(w, "obs: bad kind (want cpu or heap)", http.StatusBadRequest)
			return
		}
		if len(data) == 0 {
			http.Error(w, "obs: capture has no such profile", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p.Snapshot())
}

// Listen binds the admin plane to addr and serves it on a background
// goroutine. It returns the bound address (useful with ":0").
func (a *Admin) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen: %w", err)
	}
	a.ln = ln
	a.srv = &http.Server{Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go a.srv.Serve(ln)
	return ln.Addr(), nil
}

// Close shuts the admin listener down, waiting briefly for in-flight
// scrapes.
func (a *Admin) Close() error {
	if a.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return a.srv.Shutdown(ctx)
}
