package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"
)

// Admin is the serving stack's HTTP admin plane. It exposes:
//
//	/metrics        Prometheus text exposition of the registry
//	/healthz        200 "ok" when ready, 200 "degraded" + the open
//	                breakers when serving around failed components,
//	                503 "draining" when not ready
//	/traces?n=K     the K most recent finished traces as JSON
//	/debug/pprof/*  the standard runtime profiles
//
// Readiness starts true and is flipped by SetReady — graceful shutdown
// flips it false first so load balancers stop routing before the
// listeners close. Degraded is deliberately still a 200: the process
// keeps answering (rerouted, possibly at degraded accuracy), so load
// balancers must not evict it — but operators and probes can see which
// failure domains are open.
type Admin struct {
	reg    *Registry
	rec    *Recorder
	ready  atomic.Bool
	health atomic.Value // func() []string: open-breaker source
	srv    *http.Server
	ln     net.Listener
}

// NewAdmin returns an admin plane over the given registry and recorder.
// Either may be nil: /metrics serves an empty exposition, /traces an
// empty list.
func NewAdmin(reg *Registry, rec *Recorder) *Admin {
	a := &Admin{reg: reg, rec: rec}
	a.ready.Store(true)
	return a
}

// SetReady flips the /healthz readiness answer.
func (a *Admin) SetReady(ready bool) { a.ready.Store(ready) }

// Ready reports the current readiness answer.
func (a *Admin) Ready() bool { return a.ready.Load() }

// SetHealthSource installs the degradation probe: a function returning
// the identifiers (peer addresses, component indices) whose circuit
// breakers are currently open. A non-empty answer turns /healthz into
// 200 "degraded" listing them; nil or an empty answer keeps plain
// "ok".
func (a *Admin) SetHealthSource(openBreakers func() []string) {
	a.health.Store(openBreakers)
}

// Handler returns the admin mux.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/traces", a.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if a.reg != nil {
		a.reg.WritePrometheus(w)
	}
}

func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !a.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if src, _ := a.health.Load().(func() []string); src != nil {
		if open := src(); len(open) > 0 {
			fmt.Fprintln(w, "degraded")
			for _, b := range open {
				fmt.Fprintf(w, "open-breaker %s\n", b)
			}
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

func (a *Admin) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 32
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "obs: bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	views := a.rec.Snapshot(n)
	if views == nil {
		views = []TraceView{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Traces []TraceView `json:"traces"`
	}{views})
}

// Listen binds the admin plane to addr and serves it on a background
// goroutine. It returns the bound address (useful with ":0").
func (a *Admin) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen: %w", err)
	}
	a.ln = ln
	a.srv = &http.Server{Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go a.srv.Serve(ln)
	return ln.Addr(), nil
}

// Close shuts the admin listener down, waiting briefly for in-flight
// scrapes.
func (a *Admin) Close() error {
	if a.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return a.srv.Shutdown(ctx)
}
