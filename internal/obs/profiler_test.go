package obs

import (
	"strings"
	"testing"
	"time"
)

func TestProfilerTriggerCooldown(t *testing.T) {
	p := NewProfiler(4, time.Millisecond, 10*time.Second)
	now := time.Unix(1_700_000_000, 0)
	p.SetClock(func() time.Time { return now })

	if !p.Trigger("first anomaly") {
		t.Fatal("first trigger must start a capture")
	}
	p.Wait()
	// A sustained anomaly inside the cooldown window fires exactly once.
	if p.Trigger("still burning") {
		t.Fatal("trigger inside cooldown must be suppressed")
	}
	now = now.Add(11 * time.Second)
	if !p.Trigger("second anomaly") {
		t.Fatal("trigger after cooldown must fire again")
	}
	p.Wait()

	v := p.Snapshot()
	if v.Triggered != 2 || v.SuppressedCooldown != 1 {
		t.Fatalf("accounting = %+v", v)
	}
	if len(v.Profiles) != 2 {
		t.Fatalf("ring holds %d captures, want 2", len(v.Profiles))
	}
	if v.Profiles[0].Reason != "first anomaly" || v.Profiles[1].Reason != "second anomaly" {
		t.Fatalf("reasons = %+v", v.Profiles)
	}
	for _, info := range v.Profiles {
		if info.HeapBytes == 0 {
			t.Fatalf("capture %d lost its heap profile: %+v", info.Seq, info)
		}
		// The CPU half can lose the race for the runtime's single-owner
		// CPU profiler (e.g. go test -cpuprofile); then Err says so.
		if info.Err == "" && info.CPUBytes == 0 {
			t.Fatalf("capture %d has neither CPU bytes nor an error", info.Seq)
		}
	}
}

func TestProfilerRingEvictsOldest(t *testing.T) {
	p := NewProfiler(2, time.Millisecond, time.Second)
	now := time.Unix(1_700_000_000, 0)
	p.SetClock(func() time.Time { return now })
	for i := 0; i < 3; i++ {
		if !p.Trigger("anomaly") {
			t.Fatalf("trigger %d suppressed", i)
		}
		p.Wait()
		now = now.Add(2 * time.Second)
	}
	v := p.Snapshot()
	if len(v.Profiles) != 2 || v.Profiles[0].Seq != 2 || v.Profiles[1].Seq != 3 {
		t.Fatalf("ring = %+v, want seqs 2,3", v.Profiles)
	}
	if _, ok := p.Get(1); ok {
		t.Fatal("evicted capture still retrievable")
	}
	if c, ok := p.Get(3); !ok || c.Seq != 3 {
		t.Fatalf("Get(3) = %+v, %v", c, ok)
	}
}

func TestProfilerBusySuppression(t *testing.T) {
	// Cooldown of 1ns so the second trigger reaches the single-capture
	// guard while the first capture's 100ms CPU sample is still running.
	p := NewProfiler(4, 100*time.Millisecond, time.Nanosecond)
	now := time.Unix(1_700_000_000, 0)
	p.SetClock(func() time.Time { return now })
	if !p.Trigger("first") {
		t.Fatal("first trigger must start")
	}
	now = now.Add(time.Millisecond)
	if p.Trigger("concurrent") {
		t.Fatal("trigger during an in-flight capture must be suppressed")
	}
	p.Wait()
	v := p.Snapshot()
	if v.SuppressedBusy != 1 {
		t.Fatalf("suppressed_busy = %d, want 1", v.SuppressedBusy)
	}
	now = now.Add(time.Millisecond)
	if !p.Trigger("after") {
		t.Fatal("trigger after the capture finished must fire")
	}
	p.Wait()
}

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	if p.Trigger("x") {
		t.Fatal("nil profiler must not fire")
	}
	p.Wait()
	p.SetClock(time.Now)
	if v := p.Snapshot(); len(v.Profiles) != 0 || v.Triggered != 0 {
		t.Fatalf("nil snapshot = %+v", v)
	}
	if _, ok := p.Get(1); ok {
		t.Fatal("nil Get must miss")
	}
	stop := p.WatchBurn(NewSLOTracker(SLOBudgets{}), time.Millisecond)
	stop()
	stop() // idempotent
	if live := NewProfiler(0, 0, 0); live.checkBurn(nil) {
		t.Fatal("checkBurn(nil tracker) must not fire")
	}
}

func TestProfilerCheckBurnFiresOnceThenCoolsDown(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := NewSLOTracker(SLOBudgets{DeadlineMiss: 0.01})
	tr.SetClock(func() time.Time { return now })
	p := NewProfiler(4, time.Millisecond, 30*time.Second)
	p.SetClock(func() time.Time { return now })

	if p.checkBurn(tr) {
		t.Fatal("no traffic: nothing should burn")
	}
	// One miss in one request at a 1% budget: burn 100x, well past 1.
	tr.RecordAt(now, 1, "acme", SLODeadlineMiss)
	if !p.checkBurn(tr) {
		t.Fatal("burn > 1 must trigger a capture")
	}
	p.Wait()
	// The burn persists, but the cooldown holds the profiler back.
	if p.checkBurn(tr) {
		t.Fatal("sustained burn inside cooldown must not re-fire")
	}
	v := p.Snapshot()
	if len(v.Profiles) != 1 {
		t.Fatalf("profiles = %d, want 1", len(v.Profiles))
	}
	if !strings.Contains(v.Profiles[0].Reason, "deadline_miss") ||
		!strings.Contains(v.Profiles[0].Reason, "Bounded") {
		t.Fatalf("reason = %q", v.Profiles[0].Reason)
	}
	if v.SuppressedCooldown != 1 {
		t.Fatalf("suppressed_cooldown = %d, want 1", v.SuppressedCooldown)
	}
}

func TestProfilerWatchBurnPolls(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := NewSLOTracker(SLOBudgets{Degraded: 0.01})
	tr.SetClock(func() time.Time { return now })
	tr.RecordAt(now, 2, "", SLODegraded)
	p := NewProfiler(4, time.Millisecond, time.Minute)
	p.SetClock(func() time.Time { return now })
	stop := p.WatchBurn(tr, time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for p.Snapshot().Triggered == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never triggered on a burning SLO")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	p.Wait()
}
