package obs

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterSumsShards(t *testing.T) {
	var c Counter
	for i := 0; i < 1000; i++ {
		c.Inc()
	}
	c.Add(24)
	if got := c.Value(); got != 1024 {
		t.Fatalf("Value = %d, want 1024", got)
	}
}

func TestGaugeRoundTrips(t *testing.T) {
	var g Gauge
	if got := g.Value(); got != 0 {
		t.Fatalf("zero gauge = %g, want 0", got)
	}
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("Value = %g, want 3.5", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // bucket <=1
	}
	for i := 0; i < 10; i++ {
		h.Observe(50) // bucket <=100
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if want := 90*0.5 + 10*50.0; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("Sum = %g, want %g", h.Sum(), want)
	}
	if q := h.Quantile(0.5); q < 0 || q > 1 {
		t.Fatalf("p50 = %g, want within (0, 1]", q)
	}
	if q := h.Quantile(0.99); q <= 10 || q > 100 {
		t.Fatalf("p99 = %g, want within (10, 100]", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty_ms", DefaultLatencyBuckets())
	// Empty histograms answer 0, not NaN: a NaN poisons every JSON
	// encoder and dashboard math downstream of the scrape.
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty quantile(%g) = %g, want 0", q, got)
		}
	}
}

func TestHistogramQuantileSingleObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("single_ms", []float64{1, 10, 100})
	h.Observe(7)
	// One observation: every quantile is that observation, exactly —
	// not the enclosing bucket's upper bound (the old behaviour
	// answered 10 for every q).
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("single-observation quantile(%g) = %g, want 7", q, got)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges_ms", []float64{1, 10, 100})
	for i := 0; i < 50; i++ {
		h.Observe(5) // bucket (1,10]
	}
	for i := 0; i < 50; i++ {
		h.Observe(50) // bucket (10,100]
	}
	// q=0 answers the lower edge of the first occupied bucket, q=1 the
	// upper edge of the last — never the top configured bound (1000 in
	// DefaultLatencyBuckets style setups) and never beyond the data.
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q=0 = %g, want 1 (lower edge of first occupied bucket)", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("q=1 = %g, want 100 (upper edge of last occupied bucket)", got)
	}
	// Out-of-range q clamps instead of extrapolating.
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Fatalf("q=-3 = %g, want clamp to q=0 = %g", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Fatalf("q=7 = %g, want clamp to q=1 = %g", got, want)
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("over_ms", []float64{1, 10})
	for i := 0; i < 4; i++ {
		h.Observe(1000) // +Inf holding bucket
	}
	// All mass past the last finite bound: the honest point estimate is
	// the mean of what was observed, not +Inf and not the last bound.
	if got := h.Quantile(0.99); got != 1000 {
		t.Fatalf("overflow quantile = %g, want 1000 (mean)", got)
	}
}

// naiveQuantile is the reference: sort the raw observations after
// snapping each to its bucket, and interpolate within the bucket
// exactly as the histogram claims to.
func TestHistogramQuantileAgainstNaiveReference(t *testing.T) {
	bounds := []float64{1, 5, 25, 125}
	r := NewRegistry()
	h := r.Histogram("ref_ms", bounds)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%25000) / 100.0 // [0, 250): exercises every bucket incl. overflow
	}
	var obs []float64
	for i := 0; i < 500; i++ {
		v := next()
		obs = append(obs, v)
		h.Observe(v)
	}
	// Property 1: monotone non-decreasing in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: q=%g -> %g after %g", q, got, prev)
		}
		prev = got
	}
	// Property 2: every quantile lies within the occupied bucket range
	// of the naive per-bucket reference (bucket-edge agreement).
	naive := func(q float64) (lo, hi float64) {
		rank := q * float64(len(obs))
		if rank < 1 {
			rank = 1
		}
		cum := 0
		bLo := 0.0
		for i := 0; i <= len(bounds); i++ {
			bHi := math.Inf(1)
			if i < len(bounds) {
				bHi = bounds[i]
			}
			n := 0
			for _, v := range obs {
				if v > bLo && v <= bHi || (i == 0 && v <= bHi) {
					n++
				}
			}
			if float64(cum+n) >= rank && n > 0 {
				return bLo, bHi
			}
			cum += n
			if i < len(bounds) {
				bLo = bounds[i]
			}
		}
		return bLo, math.Inf(1)
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := h.Quantile(q)
		lo, hi := naive(q)
		if got < lo || (got > hi && !math.IsInf(hi, 1)) {
			t.Fatalf("Quantile(%g) = %g outside naive bucket [%g, %g]", q, got, lo, hi)
		}
		if math.IsInf(got, 1) || math.IsNaN(got) {
			t.Fatalf("Quantile(%g) = %g, want finite", q, got)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total")
	b := r.Counter("requests_total")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counter did not observe the increment")
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "sp ace", "dash-ed", "unclosed{label=\"x\""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: want panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
	// Labelled names are fine.
	r.Counter(`requests_total{slo="exact"}`).Inc()
}

func TestHistogramBoundConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_ms", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on re-registration with different bounds")
		}
	}()
	r.Histogram("h_ms", []float64{1, 3})
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Add(7)
	r.Counter(`reqs_total{slo="exact"}`).Add(3)
	r.Gauge("queue_depth").Set(4)
	r.GaugeFunc("live_conns", func() float64 { return 2 })
	h := r.Histogram(`lat_ms{stage="merge"}`, []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		"reqs_total 7",
		`reqs_total{slo="exact"} 3`,
		"# TYPE queue_depth gauge",
		"queue_depth 4",
		"live_conns 2",
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{stage="merge",le="1"} 1`,
		`lat_ms_bucket{stage="merge",le="10"} 2`,
		`lat_ms_bucket{stage="merge",le="+Inf"} 3`,
		`lat_ms_sum{stage="merge"} 55.5`,
		`lat_ms_count{stage="merge"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE reqs_total counter"); n != 1 {
		t.Errorf("TYPE line for reqs_total emitted %d times, want 1", n)
	}
}

// TestCounterScrapeRace exercises registry counter increments racing a
// Prometheus-text scrape; run with -race (the ISSUE 6 satellite).
func TestCounterScrapeRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total")
	h := r.Histogram("race_ms", DefaultLatencyBuckets())
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(1.5)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "race_total") {
			t.Fatal("scrape lost the counter")
		}
	}
	wg.Wait()
	if got := c.Value(); got != 4*perG {
		t.Fatalf("Value = %d, want %d", got, 4*perG)
	}
	if got := h.Count(); got != 4*perG {
		t.Fatalf("histogram Count = %d, want %d", got, 4*perG)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_ms", DefaultLatencyBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(3.7)
		}
	})
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"all\\\"\n", `all\\\"\n`},
		{"", ""},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLabelsBuildsEscapedSuffix(t *testing.T) {
	if got, want := Labels("store", "agg"), `{store="agg"}`; got != want {
		t.Fatalf("Labels = %q, want %q", got, want)
	}
	if got, want := Labels("a", "x", "b", "y"), `{a="x",b="y"}`; got != want {
		t.Fatalf("Labels = %q, want %q", got, want)
	}
	// A hostile value cannot break out of its quotes.
	got := Labels("store", `evil"} bad_total 999`+"\n")
	if got != `{store="evil\"} bad_total 999\n"}` {
		t.Fatalf("Labels did not escape hostile value: %q", got)
	}
	if Labels() != "" || Labels("odd") != "" {
		t.Fatal("empty/odd Labels should yield no suffix")
	}
	// The escaped result must register and scrape cleanly end to end.
	r := NewRegistry()
	r.Counter("esc_total" + Labels("who", "a\"b\\c\nd")).Add(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `esc_total{who="a\"b\\c\nd"} 2`) {
		t.Fatalf("scrape lost or mangled escaped label: %q", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "bad_total") {
			t.Fatalf("hostile label value forged a metric line: %q", line)
		}
	}
}

func TestCheckNameTypedError(t *testing.T) {
	if err := CheckName("good_total"); err != nil {
		t.Fatalf("CheckName(good_total) = %v, want nil", err)
	}
	if err := CheckName(`good_total{slo="exact"}`); err != nil {
		t.Fatalf("CheckName(labelled) = %v, want nil", err)
	}
	for _, bad := range []string{"", "9lead", "sp ace", "dash-ed"} {
		err := CheckName(bad)
		if err == nil {
			t.Errorf("CheckName(%q) = nil, want *NameError", bad)
			continue
		}
		var ne *NameError
		if !errors.As(err, &ne) {
			t.Errorf("CheckName(%q) error type %T, want *NameError", bad, err)
			continue
		}
		if ne.Name != bad || ne.Reason == "" {
			t.Errorf("NameError fields = %+v", ne)
		}
	}
	// Registration panics carry the same typed error.
	r := NewRegistry()
	func() {
		defer func() {
			rec := recover()
			if _, ok := rec.(*NameError); !ok {
				t.Errorf("registration panic value %T, want *NameError", rec)
			}
		}()
		r.Counter("bad name")
	}()
}
