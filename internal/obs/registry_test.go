package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterSumsShards(t *testing.T) {
	var c Counter
	for i := 0; i < 1000; i++ {
		c.Inc()
	}
	c.Add(24)
	if got := c.Value(); got != 1024 {
		t.Fatalf("Value = %d, want 1024", got)
	}
}

func TestGaugeRoundTrips(t *testing.T) {
	var g Gauge
	if got := g.Value(); got != 0 {
		t.Fatalf("zero gauge = %g, want 0", got)
	}
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("Value = %g, want 3.5", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // bucket <=1
	}
	for i := 0; i < 10; i++ {
		h.Observe(50) // bucket <=100
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if want := 90*0.5 + 10*50.0; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("Sum = %g, want %g", h.Sum(), want)
	}
	if q := h.Quantile(0.5); q < 0 || q > 1 {
		t.Fatalf("p50 = %g, want within (0, 1]", q)
	}
	if q := h.Quantile(0.99); q <= 10 || q > 100 {
		t.Fatalf("p99 = %g, want within (10, 100]", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty_ms", DefaultLatencyBuckets())
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %g, want NaN", q)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total")
	b := r.Counter("requests_total")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counter did not observe the increment")
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "sp ace", "dash-ed", "unclosed{label=\"x\""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: want panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
	// Labelled names are fine.
	r.Counter(`requests_total{slo="exact"}`).Inc()
}

func TestHistogramBoundConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_ms", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on re-registration with different bounds")
		}
	}()
	r.Histogram("h_ms", []float64{1, 3})
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Add(7)
	r.Counter(`reqs_total{slo="exact"}`).Add(3)
	r.Gauge("queue_depth").Set(4)
	r.GaugeFunc("live_conns", func() float64 { return 2 })
	h := r.Histogram(`lat_ms{stage="merge"}`, []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		"reqs_total 7",
		`reqs_total{slo="exact"} 3`,
		"# TYPE queue_depth gauge",
		"queue_depth 4",
		"live_conns 2",
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{stage="merge",le="1"} 1`,
		`lat_ms_bucket{stage="merge",le="10"} 2`,
		`lat_ms_bucket{stage="merge",le="+Inf"} 3`,
		`lat_ms_sum{stage="merge"} 55.5`,
		`lat_ms_count{stage="merge"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE reqs_total counter"); n != 1 {
		t.Errorf("TYPE line for reqs_total emitted %d times, want 1", n)
	}
}

// TestCounterScrapeRace exercises registry counter increments racing a
// Prometheus-text scrape; run with -race (the ISSUE 6 satellite).
func TestCounterScrapeRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total")
	h := r.Histogram("race_ms", DefaultLatencyBuckets())
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(1.5)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "race_total") {
			t.Fatal("scrape lost the counter")
		}
	}
	wg.Wait()
	if got := c.Value(); got != 4*perG {
		t.Fatalf("Value = %d, want %d", got, 4*perG)
	}
	if got := h.Count(); got != 4*perG {
		t.Fatalf("histogram Count = %d, want %d", got, 4*perG)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_ms", DefaultLatencyBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(3.7)
		}
	})
}
