package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	// Every method must be callable on nil.
	tr.SetRequest(1, 0, 0.95, 0)
	tr.SetDecision(VerdictDegraded, 1, 3)
	tr.SetCacheOutcome(CacheMiss)
	tr.Add(SpanAdmission, -1, time.Now(), time.Millisecond, 0)
	tr.AddRemote(SpanServerExec, 2, time.Now().UnixNano(), 1000)
	tr.Finish(time.Millisecond)
	if tr.ID() != 0 {
		t.Fatal("nil trace ID should be 0")
	}
	if !tr.Begin().IsZero() {
		t.Fatal("nil trace Begin should be zero")
	}
	ctx := ContextWithTrace(context.Background(), nil)
	if TraceFrom(ctx) != nil {
		t.Fatal("nil trace attached to context")
	}
}

func TestContextRoundTrip(t *testing.T) {
	rec := NewRecorder(4, 8)
	tr := rec.Start(0, time.Now())
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("trace did not round-trip through context")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("bare context should carry no trace")
	}
}

func TestRecorderLifecycle(t *testing.T) {
	rec := NewRecorder(4, 8)
	start := time.Now()
	tr := rec.Start(0, start)
	if tr.ID() == 0 {
		t.Fatal("minted ID is zero")
	}
	tr.SetRequest(2, 1, 0.9, start.Add(50*time.Millisecond).UnixNano())
	tr.SetDecision(VerdictDegraded, 1, 4)
	tr.SetCacheOutcome(CacheMiss)
	tr.Add(SpanAdmission, -1, start, 100*time.Microsecond, VerdictDegraded)
	tr.Add(SpanSubOp, 0, start.Add(time.Millisecond), 5*time.Millisecond, 0)
	tr.AddRemote(SpanServerExec, 0, start.Add(2*time.Millisecond).UnixNano(), int64(3*time.Millisecond))
	tr.Finish(7 * time.Millisecond)

	views := rec.Snapshot(0)
	if len(views) != 1 {
		t.Fatalf("Snapshot = %d traces, want 1", len(views))
	}
	v := views[0]
	if v.ID != tr.ID() || !v.Done || v.DurNs != int64(7*time.Millisecond) {
		t.Fatalf("bad view: %+v", v)
	}
	if v.SLO != 1 || v.Level != 4 || v.Verdict != VerdictDegraded || v.CacheOutcome != CacheMiss {
		t.Fatalf("decision fields lost: %+v", v)
	}
	if len(v.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(v.Spans))
	}
	var remote *Span
	for i := range v.Spans {
		if v.Spans[i].Remote {
			remote = &v.Spans[i]
		}
	}
	if remote == nil || remote.Kind != SpanServerExec {
		t.Fatal("remote span not stitched")
	}
	if remote.Start < time.Millisecond || remote.Start > 3*time.Millisecond {
		t.Fatalf("remote span offset = %v, want ~2ms", remote.Start)
	}
}

func TestRecorderPropagatedID(t *testing.T) {
	rec := NewRecorder(4, 8)
	tr := rec.Start(0xdeadbeef, time.Now())
	if tr.ID() != 0xdeadbeef {
		t.Fatalf("ID = %#x, want 0xdeadbeef", tr.ID())
	}
}

func TestRecorderReusesOldestFinishedSlot(t *testing.T) {
	rec := NewRecorder(2, 4)
	a := rec.Start(1, time.Now())
	aID := a.ID() // the *Trace aliases the ring slot; capture before reuse
	a.Finish(time.Millisecond)
	b := rec.Start(2, time.Now())
	b.Finish(time.Millisecond)
	c := rec.Start(3, time.Now())
	c.Finish(time.Millisecond)
	views := rec.Snapshot(0)
	if len(views) != 2 {
		t.Fatalf("Snapshot = %d, want 2 (ring size)", len(views))
	}
	// Most recent first.
	if views[0].ID != 3 {
		t.Fatalf("first snapshot ID = %#x, want most recent 3", views[0].ID)
	}
	for _, v := range views {
		if v.ID == aID {
			t.Fatal("oldest trace should have been evicted")
		}
	}
}

func TestRecorderOverflowsDetached(t *testing.T) {
	rec := NewRecorder(1, 4)
	a := rec.Start(0, time.Now()) // occupies the only slot, stays in flight
	b := rec.Start(0, time.Now()) // must detach
	if rec.Overflowed() != 1 {
		t.Fatalf("Overflowed = %d, want 1", rec.Overflowed())
	}
	b.Add(SpanMerge, -1, time.Now(), time.Millisecond, 0)
	b.Finish(time.Millisecond)
	if got := len(rec.Snapshot(0)); got != 0 {
		t.Fatalf("detached trace appeared in snapshot (%d views)", got)
	}
	a.Finish(time.Millisecond)
	if got := len(rec.Snapshot(0)); got != 1 {
		t.Fatalf("Snapshot = %d, want 1", got)
	}
}

func TestTraceDropsSpansPastCap(t *testing.T) {
	rec := NewRecorder(1, 2)
	tr := rec.Start(0, time.Now())
	for i := 0; i < 5; i++ {
		tr.Add(SpanSubOp, int32(i), time.Now(), time.Millisecond, 0)
	}
	tr.Finish(time.Millisecond)
	v := rec.Snapshot(1)[0]
	if len(v.Spans) != 2 || v.Dropped != 3 {
		t.Fatalf("spans=%d dropped=%d, want 2/3", len(v.Spans), v.Dropped)
	}
}

// TestRecorderSnapshotRace races span recording and trace turnover
// against /traces-style snapshots; run with -race (ISSUE 6 satellite).
func TestRecorderSnapshotRace(t *testing.T) {
	rec := NewRecorder(8, 16)
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr := rec.Start(0, time.Now())
				for s := 0; s < 4; s++ {
					tr.Add(SpanSubOp, int32(s), time.Now(), time.Microsecond, 0)
				}
				tr.SetDecision(VerdictAdmitted, 2, 1)
				tr.Finish(time.Microsecond)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		for _, v := range rec.Snapshot(4) {
			if !v.Done {
				t.Error("snapshot returned unfinished trace")
			}
		}
	}
	wg.Wait()
	if got := rec.Started(); got != 4*perG {
		t.Fatalf("Started = %d, want %d", got, 4*perG)
	}
}

func TestSpanKindString(t *testing.T) {
	kinds := []SpanKind{SpanAdmission, SpanCache, SpanSubOp, SpanHedge,
		SpanServerQueue, SpanServerExec, SpanMerge, SpanRetry,
		SpanBreakerTrip, SpanKind(99)}
	want := []string{"admission", "cache", "subop", "hedge",
		"srvqueue", "srvexec", "merge", "retry", "brktrip", "unknown"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("SpanKind(%d).String() = %q, want %q", k, k.String(), want[i])
		}
	}
}

// BenchmarkTraceDisabled is the CI-guarded zero-alloc check for the
// tracing-disabled hot path: TraceFrom on an untraced context plus the
// nil-receiver recording calls a request would make.
func BenchmarkTraceDisabled(b *testing.B) {
	ctx := context.Background()
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := TraceFrom(ctx)
		tr.SetDecision(VerdictAdmitted, 0, 1)
		tr.SetCacheOutcome(CacheMiss)
		tr.Add(SpanSubOp, 0, now, time.Millisecond, 0)
		tr.Finish(time.Millisecond)
	}
}

// BenchmarkTraceEnabled measures the full per-request recording cost:
// slot claim, typical span volume, finish.
func BenchmarkTraceEnabled(b *testing.B) {
	rec := NewRecorder(256, 16)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := rec.Start(0, now)
		tr.SetRequest(1, 0, 0.95, 0)
		tr.SetDecision(VerdictAdmitted, 0, 1)
		tr.SetCacheOutcome(CacheMiss)
		tr.Add(SpanAdmission, -1, now, time.Microsecond, 0)
		tr.Add(SpanCache, -1, now, time.Microsecond, 0)
		tr.Add(SpanSubOp, 0, now, time.Millisecond, 0)
		tr.Add(SpanMerge, -1, now, time.Microsecond, 0)
		tr.Finish(time.Millisecond)
	}
}

func TestAnomalyReasonLabels(t *testing.T) {
	if got := AnomalyReason(0).Labels(); got != nil {
		t.Fatalf("clear anomaly labels = %v, want nil", got)
	}
	got := (AnomalyDeadlineMiss | AnomalyFloorViolation).Labels()
	want := []string{"deadline_miss", "floor_violation"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("labels = %v, want %v", got, want)
	}
}

func TestFinishDetectsDeadlineMiss(t *testing.T) {
	rec := NewRecorder(4, 8)
	start := time.Now()
	tr := rec.Start(0, start)
	tr.SetRequest(2, 1, 0.9, start.Add(5*time.Millisecond).UnixNano())
	tr.Finish(20 * time.Millisecond) // overshoots the stamped deadline
	if tr.Anomaly()&AnomalyDeadlineMiss == 0 {
		t.Fatal("deadline overshoot not flagged")
	}
	ex := rec.Exemplars(0)
	if len(ex) != 1 || ex[0].Anomaly&uint8(AnomalyDeadlineMiss) == 0 {
		t.Fatalf("deadline miss not pinned: %+v", ex)
	}
	// An on-time trace stays unflagged and unpinned.
	ok := rec.Start(0, start)
	ok.SetRequest(2, 1, 0.9, start.Add(time.Hour).UnixNano())
	ok.Finish(time.Millisecond)
	if ok.Anomaly() != 0 {
		t.Fatalf("healthy trace anomaly = %b", ok.Anomaly())
	}
	if got := rec.PinnedTotal(); got != 1 {
		t.Fatalf("PinnedTotal = %d, want 1", got)
	}
}

func TestHedgeSpanFlagsAnomaly(t *testing.T) {
	rec := NewRecorder(4, 8)
	tr := rec.Start(0, time.Now())
	tr.Add(SpanHedge, 1, time.Now(), 0, 2)
	tr.Finish(time.Millisecond)
	ex := rec.Exemplars(0)
	if len(ex) != 1 || ex[0].Anomaly&uint8(AnomalyHedge) == 0 {
		t.Fatalf("hedge fire not pinned as anomaly: %+v", ex)
	}
	if ex[0].AnomalyWhy[0] != "hedge" {
		t.Fatalf("anomaly labels = %v", ex[0].AnomalyWhy)
	}
}

// TestExemplarsSurviveRingRotation is the tail-retention contract:
// anomalous traces stay queryable after the ring has recycled their
// slot for healthy traffic.
func TestExemplarsSurviveRingRotation(t *testing.T) {
	rec := NewRecorder(2, 4) // tiny ring: rotates after 2 traces
	bad := rec.Start(0, time.Now())
	bad.MarkAnomaly(AnomalyDegraded)
	bad.Finish(time.Millisecond)
	badID := bad.ID()
	for i := 0; i < 10; i++ {
		tr := rec.Start(0, time.Now())
		tr.Finish(time.Millisecond)
	}
	for _, v := range rec.Snapshot(0) {
		if v.ID == badID {
			t.Fatal("anomalous trace still in the ring; rotation did not happen")
		}
	}
	ex := rec.Exemplars(0)
	if len(ex) != 1 || ex[0].ID != badID {
		t.Fatalf("anomalous trace lost after rotation: %+v", ex)
	}
}

func TestPinAfterTheFact(t *testing.T) {
	rec := NewRecorder(2, 4)
	tr := rec.Start(0, time.Now())
	tr.Finish(time.Millisecond)
	id := tr.ID()
	// Still in the ring: Pin flags it and pins the refreshed view.
	if !rec.Pin(id, AnomalyFloorViolation) {
		t.Fatal("Pin of in-ring trace failed")
	}
	ex := rec.Exemplars(0)
	if len(ex) != 1 || ex[0].Anomaly != uint8(AnomalyFloorViolation) {
		t.Fatalf("in-ring pin wrong: %+v", ex)
	}
	// Rotate it out of the ring, then stack a second reason onto the
	// exemplar-only copy.
	for i := 0; i < 5; i++ {
		rec.Start(0, time.Now()).Finish(time.Millisecond)
	}
	if !rec.Pin(id, AnomalyAuditMismatch) {
		t.Fatal("Pin of exemplar-only trace failed")
	}
	ex = rec.Exemplars(0)
	if len(ex) != 1 {
		t.Fatalf("exemplars = %d, want 1", len(ex))
	}
	wantBits := uint8(AnomalyFloorViolation | AnomalyAuditMismatch)
	if ex[0].Anomaly != wantBits {
		t.Fatalf("anomaly bits = %b, want %b", ex[0].Anomaly, wantBits)
	}
	if len(ex[0].AnomalyWhy) != 2 {
		t.Fatalf("anomaly labels = %v, want both reasons", ex[0].AnomalyWhy)
	}
	// A trace gone from both ring and store cannot be pinned.
	if rec.Pin(0xabcdef, AnomalyDegraded) {
		t.Fatal("Pin of unknown trace reported success")
	}
	if rec.Pin(0, AnomalyDegraded) {
		t.Fatal("Pin of id 0 reported success")
	}
}

func TestExemplarCapacityEvictsOldest(t *testing.T) {
	rec := NewRecorder(8, 4)
	rec.SetExemplarCapacity(3)
	var ids []uint64
	for i := 0; i < 5; i++ {
		tr := rec.Start(0, time.Now())
		tr.MarkAnomaly(AnomalyDegraded)
		tr.Finish(time.Millisecond)
		ids = append(ids, tr.ID())
	}
	ex := rec.Exemplars(0)
	if len(ex) != 3 {
		t.Fatalf("exemplars = %d, want cap 3", len(ex))
	}
	// Most recently pinned first; the two oldest were evicted.
	if ex[0].ID != ids[4] || ex[1].ID != ids[3] || ex[2].ID != ids[2] {
		t.Fatalf("wrong survivors: %v vs ids %v", []uint64{ex[0].ID, ex[1].ID, ex[2].ID}, ids)
	}
	if got := rec.EvictedExemplars(); got != 2 {
		t.Fatalf("EvictedExemplars = %d, want 2", got)
	}
	if got := rec.PinnedTotal(); got != 5 {
		t.Fatalf("PinnedTotal = %d, want 5", got)
	}
	// Re-pinning an already-pinned ID replaces in place, no new slot.
	if !rec.Pin(ids[4], AnomalyHedge) {
		t.Fatal("re-pin failed")
	}
	if got := len(rec.Exemplars(0)); got != 3 {
		t.Fatalf("re-pin grew the store to %d", got)
	}
}

func TestNilRecorderExemplarMethods(t *testing.T) {
	var rec *Recorder
	rec.SetExemplarCapacity(8)
	if rec.Exemplars(0) != nil || rec.Pin(1, AnomalyDegraded) ||
		rec.PinnedTotal() != 0 || rec.EvictedExemplars() != 0 {
		t.Fatal("nil recorder exemplar methods not no-ops")
	}
	var tr *Trace
	tr.MarkAnomaly(AnomalyDegraded)
	if tr.Anomaly() != 0 {
		t.Fatal("nil trace anomaly != 0")
	}
}

// TestHealthyFinishDoesNotAllocate guards the hot path: a healthy
// (non-anomalous) trace must finish without touching the exemplar store
// or allocating a view.
func TestHealthyFinishDoesNotAllocate(t *testing.T) {
	rec := NewRecorder(4, 8)
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		tr := rec.Start(0, start)
		tr.Finish(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("healthy start+finish allocates %.1f/op, want 0", allocs)
	}
	if rec.PinnedTotal() != 0 {
		t.Fatal("healthy traces were pinned")
	}
}

// TestExemplarPinRace races anomalous finishes, after-the-fact pins,
// and exemplar queries; run with -race.
func TestExemplarPinRace(t *testing.T) {
	rec := NewRecorder(8, 4)
	rec.SetExemplarCapacity(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tr := rec.Start(0, time.Now())
				if i%2 == 0 {
					tr.MarkAnomaly(AnomalyDegraded)
				}
				tr.Finish(time.Microsecond)
				rec.Pin(tr.ID(), AnomalyAuditMismatch)
			}
		}()
	}
	for i := 0; i < 100; i++ {
		rec.Exemplars(8)
		rec.PinnedTotal()
	}
	wg.Wait()
}
