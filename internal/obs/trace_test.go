package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	// Every method must be callable on nil.
	tr.SetRequest(1, 0, 0.95, 0)
	tr.SetDecision(VerdictDegraded, 1, 3)
	tr.SetCacheOutcome(CacheMiss)
	tr.Add(SpanAdmission, -1, time.Now(), time.Millisecond, 0)
	tr.AddRemote(SpanServerExec, 2, time.Now().UnixNano(), 1000)
	tr.Finish(time.Millisecond)
	if tr.ID() != 0 {
		t.Fatal("nil trace ID should be 0")
	}
	if !tr.Begin().IsZero() {
		t.Fatal("nil trace Begin should be zero")
	}
	ctx := ContextWithTrace(context.Background(), nil)
	if TraceFrom(ctx) != nil {
		t.Fatal("nil trace attached to context")
	}
}

func TestContextRoundTrip(t *testing.T) {
	rec := NewRecorder(4, 8)
	tr := rec.Start(0, time.Now())
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("trace did not round-trip through context")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("bare context should carry no trace")
	}
}

func TestRecorderLifecycle(t *testing.T) {
	rec := NewRecorder(4, 8)
	start := time.Now()
	tr := rec.Start(0, start)
	if tr.ID() == 0 {
		t.Fatal("minted ID is zero")
	}
	tr.SetRequest(2, 1, 0.9, start.Add(50*time.Millisecond).UnixNano())
	tr.SetDecision(VerdictDegraded, 1, 4)
	tr.SetCacheOutcome(CacheMiss)
	tr.Add(SpanAdmission, -1, start, 100*time.Microsecond, VerdictDegraded)
	tr.Add(SpanSubOp, 0, start.Add(time.Millisecond), 5*time.Millisecond, 0)
	tr.AddRemote(SpanServerExec, 0, start.Add(2*time.Millisecond).UnixNano(), int64(3*time.Millisecond))
	tr.Finish(7 * time.Millisecond)

	views := rec.Snapshot(0)
	if len(views) != 1 {
		t.Fatalf("Snapshot = %d traces, want 1", len(views))
	}
	v := views[0]
	if v.ID != tr.ID() || !v.Done || v.DurNs != int64(7*time.Millisecond) {
		t.Fatalf("bad view: %+v", v)
	}
	if v.SLO != 1 || v.Level != 4 || v.Verdict != VerdictDegraded || v.CacheOutcome != CacheMiss {
		t.Fatalf("decision fields lost: %+v", v)
	}
	if len(v.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(v.Spans))
	}
	var remote *Span
	for i := range v.Spans {
		if v.Spans[i].Remote {
			remote = &v.Spans[i]
		}
	}
	if remote == nil || remote.Kind != SpanServerExec {
		t.Fatal("remote span not stitched")
	}
	if remote.Start < time.Millisecond || remote.Start > 3*time.Millisecond {
		t.Fatalf("remote span offset = %v, want ~2ms", remote.Start)
	}
}

func TestRecorderPropagatedID(t *testing.T) {
	rec := NewRecorder(4, 8)
	tr := rec.Start(0xdeadbeef, time.Now())
	if tr.ID() != 0xdeadbeef {
		t.Fatalf("ID = %#x, want 0xdeadbeef", tr.ID())
	}
}

func TestRecorderReusesOldestFinishedSlot(t *testing.T) {
	rec := NewRecorder(2, 4)
	a := rec.Start(1, time.Now())
	aID := a.ID() // the *Trace aliases the ring slot; capture before reuse
	a.Finish(time.Millisecond)
	b := rec.Start(2, time.Now())
	b.Finish(time.Millisecond)
	c := rec.Start(3, time.Now())
	c.Finish(time.Millisecond)
	views := rec.Snapshot(0)
	if len(views) != 2 {
		t.Fatalf("Snapshot = %d, want 2 (ring size)", len(views))
	}
	// Most recent first.
	if views[0].ID != 3 {
		t.Fatalf("first snapshot ID = %#x, want most recent 3", views[0].ID)
	}
	for _, v := range views {
		if v.ID == aID {
			t.Fatal("oldest trace should have been evicted")
		}
	}
}

func TestRecorderOverflowsDetached(t *testing.T) {
	rec := NewRecorder(1, 4)
	a := rec.Start(0, time.Now()) // occupies the only slot, stays in flight
	b := rec.Start(0, time.Now()) // must detach
	if rec.Overflowed() != 1 {
		t.Fatalf("Overflowed = %d, want 1", rec.Overflowed())
	}
	b.Add(SpanMerge, -1, time.Now(), time.Millisecond, 0)
	b.Finish(time.Millisecond)
	if got := len(rec.Snapshot(0)); got != 0 {
		t.Fatalf("detached trace appeared in snapshot (%d views)", got)
	}
	a.Finish(time.Millisecond)
	if got := len(rec.Snapshot(0)); got != 1 {
		t.Fatalf("Snapshot = %d, want 1", got)
	}
}

func TestTraceDropsSpansPastCap(t *testing.T) {
	rec := NewRecorder(1, 2)
	tr := rec.Start(0, time.Now())
	for i := 0; i < 5; i++ {
		tr.Add(SpanSubOp, int32(i), time.Now(), time.Millisecond, 0)
	}
	tr.Finish(time.Millisecond)
	v := rec.Snapshot(1)[0]
	if len(v.Spans) != 2 || v.Dropped != 3 {
		t.Fatalf("spans=%d dropped=%d, want 2/3", len(v.Spans), v.Dropped)
	}
}

// TestRecorderSnapshotRace races span recording and trace turnover
// against /traces-style snapshots; run with -race (ISSUE 6 satellite).
func TestRecorderSnapshotRace(t *testing.T) {
	rec := NewRecorder(8, 16)
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr := rec.Start(0, time.Now())
				for s := 0; s < 4; s++ {
					tr.Add(SpanSubOp, int32(s), time.Now(), time.Microsecond, 0)
				}
				tr.SetDecision(VerdictAdmitted, 2, 1)
				tr.Finish(time.Microsecond)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		for _, v := range rec.Snapshot(4) {
			if !v.Done {
				t.Error("snapshot returned unfinished trace")
			}
		}
	}
	wg.Wait()
	if got := rec.Started(); got != 4*perG {
		t.Fatalf("Started = %d, want %d", got, 4*perG)
	}
}

func TestSpanKindString(t *testing.T) {
	kinds := []SpanKind{SpanAdmission, SpanCache, SpanSubOp, SpanHedge,
		SpanServerQueue, SpanServerExec, SpanMerge, SpanRetry,
		SpanBreakerTrip, SpanKind(99)}
	want := []string{"admission", "cache", "subop", "hedge",
		"srvqueue", "srvexec", "merge", "retry", "brktrip", "unknown"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("SpanKind(%d).String() = %q, want %q", k, k.String(), want[i])
		}
	}
}

// BenchmarkTraceDisabled is the CI-guarded zero-alloc check for the
// tracing-disabled hot path: TraceFrom on an untraced context plus the
// nil-receiver recording calls a request would make.
func BenchmarkTraceDisabled(b *testing.B) {
	ctx := context.Background()
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := TraceFrom(ctx)
		tr.SetDecision(VerdictAdmitted, 0, 1)
		tr.SetCacheOutcome(CacheMiss)
		tr.Add(SpanSubOp, 0, now, time.Millisecond, 0)
		tr.Finish(time.Millisecond)
	}
}

// BenchmarkTraceEnabled measures the full per-request recording cost:
// slot claim, typical span volume, finish.
func BenchmarkTraceEnabled(b *testing.B) {
	rec := NewRecorder(256, 16)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := rec.Start(0, now)
		tr.SetRequest(1, 0, 0.95, 0)
		tr.SetDecision(VerdictAdmitted, 0, 1)
		tr.SetCacheOutcome(CacheMiss)
		tr.Add(SpanAdmission, -1, now, time.Microsecond, 0)
		tr.Add(SpanCache, -1, now, time.Microsecond, 0)
		tr.Add(SpanSubOp, 0, now, time.Millisecond, 0)
		tr.Add(SpanMerge, -1, now, time.Microsecond, 0)
		tr.Finish(time.Millisecond)
	}
}
