package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// mkTrace builds a finished TraceView with the canonical span shape:
// admission, cache, two subops (one with stitched server spans), merge.
func mkTrace(slo uint8, verdict uint8, totalMs float64) TraceView {
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	start := time.Unix(0, 1_000_000_000)
	tv := TraceView{
		ID:         1,
		Start:      start.UnixNano(),
		DurNs:      int64(ms(totalMs)),
		SLO:        slo,
		Level:      2,
		Verdict:    verdict,
		DeadlineNs: start.Add(50 * time.Millisecond).UnixNano(),
		Done:       true,
	}
	if verdict == VerdictRejected {
		return tv
	}
	tv.CacheOutcome = CacheMiss
	tv.Spans = []Span{
		{Kind: SpanAdmission, Comp: -1, Dur: ms(0.2)},
		{Kind: SpanCache, Comp: -1, Dur: ms(0.3)},
		{Kind: SpanSubOp, Comp: 0, Dur: ms(4)},
		{Kind: SpanSubOp, Comp: 1, Dur: ms(6)}, // critical
		{Kind: SpanServerQueue, Comp: 1, Remote: true, Dur: ms(1)},
		{Kind: SpanServerExec, Comp: 1, Remote: true, Dur: ms(4)},
		{Kind: SpanMerge, Comp: -1, Dur: ms(0.5)},
	}
	return tv
}

func TestBreakdownCriticalPath(t *testing.T) {
	sb := Breakdown(mkTrace(1, VerdictAdmitted, 8))
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(sb.AdmissionMs, 0.2) || !approx(sb.CacheMs, 0.3) || !approx(sb.MergeMs, 0.5) {
		t.Fatalf("front/back stages wrong: %+v", sb)
	}
	// Critical subop is comp 1 (6ms): 1ms queue + 4ms exec + 1ms net.
	if !approx(sb.QueueMs, 1) || !approx(sb.ExecMs, 4) || !approx(sb.NetMs, 1) {
		t.Fatalf("server stages wrong: %+v", sb)
	}
	// Accounted = 0.2+0.3+6+0.5 = 7; total 8 → other 1.
	if !approx(sb.OtherMs, 1) {
		t.Fatalf("OtherMs = %g, want 1", sb.OtherMs)
	}
}

func TestAccounted(t *testing.T) {
	got := Accounted(mkTrace(0, VerdictAdmitted, 8))
	if math.Abs(got-7) > 1e-9 {
		t.Fatalf("Accounted = %g, want 7", got)
	}
}

func TestSummarizeClasses(t *testing.T) {
	traces := []TraceView{
		mkTrace(0, VerdictAdmitted, 8),
		mkTrace(0, VerdictAdmitted, 10),
		mkTrace(1, VerdictDegraded, 6),
		mkTrace(2, VerdictRejected, 0.1),
		{Done: false}, // in-flight: skipped
	}
	s := Summarize(traces)
	if s.Traces != 4 || s.Answered != 3 {
		t.Fatalf("Traces=%d Answered=%d, want 4/3", s.Traces, s.Answered)
	}
	if len(s.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(s.Classes))
	}
	// Sorted by class byte: Exact, Bounded, BestEffort.
	if s.Classes[0].Label != "Exact" || s.Classes[1].Label != "Bounded" || s.Classes[2].Label != "BestEffort" {
		t.Fatalf("class order wrong: %+v", s.Classes)
	}
	ex := s.Classes[0]
	if ex.Count != 2 || math.Abs(ex.MeanTotalMs-9) > 1e-9 {
		t.Fatalf("Exact: count=%d mean=%g, want 2/9", ex.Count, ex.MeanTotalMs)
	}
	if math.Abs(ex.MeanBudgetMs-50) > 1e-6 {
		t.Fatalf("Exact budget = %g, want 50", ex.MeanBudgetMs)
	}
	bd := s.Classes[1]
	if bd.Degraded != 1 {
		t.Fatalf("Bounded degraded = %d, want 1", bd.Degraded)
	}
	be := s.Classes[2]
	if be.Rejected != 1 || be.Count != 1 {
		t.Fatalf("BestEffort: %+v", be)
	}
}

func TestSummaryRender(t *testing.T) {
	s := Summarize([]TraceView{
		mkTrace(0, VerdictAdmitted, 8),
		mkTrace(1, VerdictDegraded, 6),
	})
	out := s.Render()
	for _, want := range []string{"TRACE SUMMARY: 2 traces", "Exact", "Bounded", "admission", "budget", "critical path"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 4 {
		t.Fatalf("Render too short (%d lines):\n%s", lines, out)
	}
}

func TestClassLabel(t *testing.T) {
	if ClassLabel(0) != "Exact" || ClassLabel(1) != "Bounded" || ClassLabel(2) != "BestEffort" || ClassLabel(0xff) != "None" {
		t.Fatal("ClassLabel mapping wrong")
	}
}
