package synopsis

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"accuracytrader/internal/rtree"
	"accuracytrader/internal/svd"
)

// FeatureSource exposes a data subset as sparse numeric feature vectors —
// the input to step 1 (dimensionality reduction). For a rating matrix the
// features are item ratings; for a web-page collection, term counts.
type FeatureSource interface {
	NumPoints() int
	NumFeatures() int
	// Features returns the sparse feature vector of point i.
	Features(i int) []svd.Cell
}

// Config controls synopsis creation.
type Config struct {
	// SVD configures step-1 dimensionality reduction.
	SVD svd.Config
	// TreeMin/TreeMax are the R-tree node capacities (defaults 4/16).
	TreeMin, TreeMax int
	// CompressionRatio is the target ratio of original points per
	// aggregated point; the paper suggests ~100x. Default 100.
	CompressionRatio int
	// FoldInEpochs bounds the gradient steps when folding changed or added
	// points into the latent space during updates (default: SVD.Epochs).
	FoldInEpochs int
}

func (c Config) withDefaults() Config {
	if c.TreeMax <= 0 {
		// A lower fan-out than rtree.DefaultMax keeps per-level node
		// counts fine-grained, so the cut can approach the requested
		// synopsis size instead of jumping 16x between levels.
		c.TreeMax = 8
	}
	if c.TreeMin <= 0 {
		c.TreeMin = c.TreeMax / 4
	}
	if c.CompressionRatio <= 0 {
		c.CompressionRatio = 100
	}
	return c
}

// Group is one entry of the index file: the original data points
// aggregated into one synopsis point. The ID is stable across incremental
// updates for groups whose membership did not change, so applications can
// cache the (expensive) aggregated information keyed by ID.
type Group struct {
	ID      int64
	Members []int
}

// Timings records how long the creation steps took (the paper's §4.2
// "overheads of synopsis creation" evaluation; step 3 is timed by the
// application, which owns aggregation).
type Timings struct {
	SVDMs  float64 // step 1: dimensionality reduction
	TreeMs float64 // step 2: R-tree construction and cut selection
}

// Synopsis is the product of offline synopsis management for one data
// subset.
type Synopsis struct {
	cfg     Config
	model   *svd.Model
	tree    *rtree.Tree
	latent  [][]float64 // latent coordinates per original point (dead points keep their last coords)
	alive   []bool
	groups  []Group
	nextID  int64
	timings Timings
}

// Timings returns the creation-step durations.
func (s *Synopsis) Timings() Timings { return s.timings }

// Build creates the synopsis for a data subset: SVD reduction (step 1),
// R-tree construction over the latent points (step 2), and selection of
// the cut depth whose node count meets the compression ratio. Aggregation
// (step 3) is performed by the application over the returned groups.
func Build(src FeatureSource, cfg Config) (*Synopsis, error) {
	cfg = cfg.withDefaults()
	n := src.NumPoints()
	if n == 0 {
		return nil, fmt.Errorf("synopsis: empty data subset")
	}
	// Step 1: dimensionality reduction.
	t0 := time.Now()
	m := svd.NewMatrix(n, src.NumFeatures())
	for i := 0; i < n; i++ {
		for _, c := range src.Features(i) {
			m.Set(i, int(c.Col), c.Val)
		}
	}
	model := svd.Train(m, cfg.SVD)
	svdMs := float64(time.Since(t0)) / float64(time.Millisecond)
	latent := make([][]float64, n)
	items := make([]rtree.Item, n)
	for i := 0; i < n; i++ {
		latent[i] = model.RowFactors(i)
		items[i] = rtree.Item{Point: latent[i], ID: i}
	}
	// Step 2: organize similar points with an R-tree.
	t1 := time.Now()
	tree := rtree.Bulk(model.Dims(), cfg.TreeMin, cfg.TreeMax, items)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	s := &Synopsis{
		cfg:    cfg,
		model:  model,
		tree:   tree,
		latent: latent,
		alive:  alive,
	}
	s.recomputeGroups(nil)
	s.timings = Timings{
		SVDMs:  svdMs,
		TreeMs: float64(time.Since(t1)) / float64(time.Millisecond),
	}
	return s, nil
}

// Groups returns the current index file (shared slice; do not modify).
func (s *Synopsis) Groups() []Group { return s.groups }

// NumGroups returns the number of aggregated data points.
func (s *Synopsis) NumGroups() int { return len(s.groups) }

// NumPoints returns the number of live original data points.
func (s *Synopsis) NumPoints() int { return s.tree.Len() }

// Latent returns point i's latent coordinates (shared slice).
func (s *Synopsis) Latent(i int) []float64 { return s.latent[i] }

// MeanGroupSize returns the average number of original points per group —
// the "each aggregated user corresponds to an average of 133.01 original
// users" statistic the paper reports.
func (s *Synopsis) MeanGroupSize() float64 {
	if len(s.groups) == 0 {
		return 0
	}
	total := 0
	for _, g := range s.groups {
		total += len(g.Members)
	}
	return float64(total) / float64(len(s.groups))
}

// Kind discriminates input-data changes for Update.
type Kind int

// The change kinds of paper §2.2: new data points arriving, existing
// points changing, plus deletion for completeness.
const (
	Add Kind = iota
	Modify
	Delete
)

// Change describes one input-data change.
type Change struct {
	Kind  Kind
	Point int        // target point for Modify/Delete; ignored for Add
	Cells []svd.Cell // new feature vector for Add/Modify
}

// UpdateStats reports what an Update touched; the experiments use it to
// show that incremental updating re-aggregates only affected groups.
type UpdateStats struct {
	Added              int
	Modified           int
	Deleted            int
	GroupsKept         int // groups whose cached aggregates stay valid
	GroupsReaggregated int // groups the application must re-aggregate
	NewPointIDs        []int
}

// Update applies input-data changes incrementally: fold changed/new points
// into the latent space, fix up the R-tree leaves, then recompute the
// level cut, preserving the IDs of groups whose membership is unchanged.
func (s *Synopsis) Update(changes []Change) (UpdateStats, error) {
	var st UpdateStats
	for _, ch := range changes {
		switch ch.Kind {
		case Add:
			u := s.model.FoldIn(ch.Cells, s.cfg.FoldInEpochs)
			id := len(s.latent)
			s.latent = append(s.latent, u)
			s.alive = append(s.alive, true)
			s.tree.Insert(u, id)
			st.Added++
			st.NewPointIDs = append(st.NewPointIDs, id)
		case Modify:
			if err := s.checkLive(ch.Point); err != nil {
				return st, err
			}
			if !s.tree.Delete(s.latent[ch.Point], ch.Point) {
				return st, fmt.Errorf("synopsis: point %d not in tree", ch.Point)
			}
			u := s.model.FoldIn(ch.Cells, s.cfg.FoldInEpochs)
			s.latent[ch.Point] = u
			s.tree.Insert(u, ch.Point)
			st.Modified++
		case Delete:
			if err := s.checkLive(ch.Point); err != nil {
				return st, err
			}
			if !s.tree.Delete(s.latent[ch.Point], ch.Point) {
				return st, fmt.Errorf("synopsis: point %d not in tree", ch.Point)
			}
			s.alive[ch.Point] = false
			st.Deleted++
		default:
			return st, fmt.Errorf("synopsis: unknown change kind %d", ch.Kind)
		}
	}
	prev := make(map[uint64]int64, len(s.groups))
	for _, g := range s.groups {
		prev[memberHash(g.Members)] = g.ID
	}
	kept := s.recomputeGroups(prev)
	st.GroupsKept = kept
	st.GroupsReaggregated = len(s.groups) - kept
	return st, nil
}

func (s *Synopsis) checkLive(p int) error {
	if p < 0 || p >= len(s.alive) || !s.alive[p] {
		return fmt.Errorf("synopsis: point %d does not exist", p)
	}
	return nil
}

// recomputeGroups rebuilds the node cut. prev maps member-set hashes to
// previous group IDs; matching groups keep their ID. Returns how many
// groups were kept.
func (s *Synopsis) recomputeGroups(prev map[uint64]int64) int {
	if s.tree.Len() == 0 {
		s.groups = nil
		return 0
	}
	maxAgg := s.tree.Len() / s.cfg.CompressionRatio
	if maxAgg < 1 {
		maxAgg = 1
	}
	cuts := s.tree.CutToTarget(maxAgg)
	groups := make([]Group, 0, len(cuts))
	kept := 0
	for _, cut := range cuts {
		members := append([]int(nil), cut.Members...)
		sort.Ints(members)
		h := memberHash(members)
		if id, ok := prev[h]; ok {
			groups = append(groups, Group{ID: id, Members: members})
			kept++
			continue
		}
		groups = append(groups, Group{ID: s.nextID, Members: members})
		s.nextID++
	}
	// Deterministic ordering for downstream consumers.
	sort.Slice(groups, func(i, j int) bool { return groups[i].ID < groups[j].ID })
	s.groups = groups
	return kept
}

// memberHash hashes a sorted member list (FNV-1a over the varint bytes).
func memberHash(members []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, m := range members {
		v := uint64(m)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// CheckInvariants verifies that the groups partition exactly the live
// points and that the underlying tree is healthy.
func (s *Synopsis) CheckInvariants() error {
	if err := s.tree.CheckInvariants(); err != nil {
		return err
	}
	seen := make(map[int]bool)
	for _, g := range s.groups {
		for _, m := range g.Members {
			if seen[m] {
				return fmt.Errorf("synopsis: point %d in two groups", m)
			}
			if m < 0 || m >= len(s.alive) || !s.alive[m] {
				return fmt.Errorf("synopsis: group contains dead point %d", m)
			}
			seen[m] = true
		}
	}
	live := 0
	for _, a := range s.alive {
		if a {
			live++
		}
	}
	if len(seen) != live {
		return fmt.Errorf("synopsis: groups cover %d of %d live points", len(seen), live)
	}
	return nil
}
