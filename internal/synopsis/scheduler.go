package synopsis

import (
	"sync"
	"time"
)

// UpdateScheduler implements the paper's low-priority updating strategy
// (§3.1): input-data changes are queued, and the periodic updater applies
// them only when the component is underutilized, "ensuring little
// interruption to the running service". The resource probe is a callback
// so services can plug in queue depth, CPU or any utilization signal.
type UpdateScheduler struct {
	apply    func([]Change) (UpdateStats, error)
	busy     func() bool
	interval time.Duration

	mu      sync.Mutex
	pending []Change
	applied int
	skipped int
	lastErr error

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewUpdateScheduler creates a scheduler that calls apply with the queued
// changes every interval, skipping rounds where busy() reports pressure.
// apply is typically Component.ApplyChanges of the owning application.
func NewUpdateScheduler(apply func([]Change) (UpdateStats, error), busy func() bool, interval time.Duration) *UpdateScheduler {
	if interval <= 0 {
		interval = time.Second
	}
	if busy == nil {
		busy = func() bool { return false }
	}
	return &UpdateScheduler{
		apply:    apply,
		busy:     busy,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Enqueue queues changes for the next underutilized period.
func (u *UpdateScheduler) Enqueue(changes ...Change) {
	u.mu.Lock()
	u.pending = append(u.pending, changes...)
	u.mu.Unlock()
}

// Pending returns the number of queued changes.
func (u *UpdateScheduler) Pending() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.pending)
}

// Stats returns how many changes were applied, how many rounds were
// skipped for load, and the last apply error (if any).
func (u *UpdateScheduler) Stats() (applied, skippedRounds int, lastErr error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.applied, u.skipped, u.lastErr
}

// Start launches the periodic updater goroutine.
func (u *UpdateScheduler) Start() {
	go func() {
		defer close(u.done)
		ticker := time.NewTicker(u.interval)
		defer ticker.Stop()
		for {
			select {
			case <-u.stop:
				return
			case <-ticker.C:
				u.tick()
			}
		}
	}()
}

// tick applies pending changes when the system is idle.
func (u *UpdateScheduler) tick() {
	if u.busy() {
		u.mu.Lock()
		if len(u.pending) > 0 {
			u.skipped++
		}
		u.mu.Unlock()
		return
	}
	u.Flush()
}

// Flush applies all queued changes immediately, regardless of load.
func (u *UpdateScheduler) Flush() {
	u.mu.Lock()
	batch := u.pending
	u.pending = nil
	u.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	_, err := u.apply(batch)
	u.mu.Lock()
	if err != nil {
		u.lastErr = err
		// Failed batches are dropped (the owning application decides how
		// to retry); the error is surfaced via Stats.
	} else {
		u.applied += len(batch)
	}
	u.mu.Unlock()
}

// Stop halts the updater; queued changes stay pending (call Flush first
// to drain them). Stop is idempotent.
func (u *UpdateScheduler) Stop() {
	u.once.Do(func() { close(u.stop) })
	<-u.done
}
