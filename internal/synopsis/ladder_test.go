package synopsis

import (
	"testing"

	"accuracytrader/internal/stats"
)

func TestBuildLadderShapes(t *testing.T) {
	rng := stats.NewRNG(30)
	s, _ := buildTestSynopsis(t, rng, 400)
	l := s.BuildLadder(8, 40, 100)
	if l.Levels() != 3 {
		t.Fatalf("levels = %d", l.Levels())
	}
	// Ratios sorted descending: coarsest (100) first.
	if l.Ratios[0] != 100 || l.Ratios[2] != 8 {
		t.Fatalf("ratios = %v", l.Ratios)
	}
	// Finer levels have at least as many groups.
	prev := 0
	for i := range l.Cuts {
		if len(l.Cuts[i]) < prev {
			t.Fatalf("level %d has fewer groups (%d) than coarser level (%d)", i, len(l.Cuts[i]), prev)
		}
		prev = len(l.Cuts[i])
		// Every level partitions all points.
		seen := map[int]bool{}
		for _, g := range l.Cuts[i] {
			for _, m := range g.Members {
				if seen[m] {
					t.Fatalf("level %d: duplicate member %d", i, m)
				}
				seen[m] = true
			}
		}
		if len(seen) != 400 {
			t.Fatalf("level %d covers %d of 400", i, len(seen))
		}
	}
	// The coarsest level must respect its ratio.
	if len(l.Cuts[0]) > 400/100+1 {
		t.Fatalf("coarsest level too fine: %d groups", len(l.Cuts[0]))
	}
}

func TestBuildLadderClampsAndDedupes(t *testing.T) {
	rng := stats.NewRNG(32)
	s, _ := buildTestSynopsis(t, rng, 400)
	// A non-positive ratio clamps to 1 and collapses with an explicit 1:
	// one finest-level cut, not two identical ones.
	l := s.BuildLadder(1, 0)
	if l.Levels() != 1 {
		t.Fatalf("levels = %d, want 1 (clamped duplicate not removed)", l.Levels())
	}
	if l.Ratios[0] != 1 {
		t.Fatalf("ratios = %v", l.Ratios)
	}
	// Clamping happens before the descending sort: -5 must not land in
	// the finest slot.
	l = s.BuildLadder(-5, 40)
	if l.Levels() != 2 || l.Ratios[0] != 40 || l.Ratios[1] != 1 {
		t.Fatalf("ratios = %v, want [40 1]", l.Ratios)
	}
	if len(l.Cuts[0]) >= len(l.Cuts[1]) {
		t.Fatalf("coarse level (%d groups) not coarser than fine (%d)", len(l.Cuts[0]), len(l.Cuts[1]))
	}
	// Repeated ratios dedupe.
	if l := s.BuildLadder(8, 8, 8); l.Levels() != 1 {
		t.Fatalf("duplicate ratios produced %d levels", l.Levels())
	}
}

func TestLadderSelectBoundaries(t *testing.T) {
	rng := stats.NewRNG(33)
	s, _ := buildTestSynopsis(t, rng, 400)
	l := s.BuildLadder(4, 20, 100)
	// Load exactly 0 selects the finest level (last cut), exactly 1 the
	// coarsest (first cut).
	if lv, g := l.Select(0); lv != l.Levels()-1 || len(g) != len(l.Cuts[l.Levels()-1]) {
		t.Fatalf("Select(0) = level %d", lv)
	}
	if lv, g := l.Select(1); lv != 0 || len(g) != len(l.Cuts[0]) {
		t.Fatalf("Select(1) = level %d", lv)
	}
	// Out-of-range loads clamp to the boundary levels.
	if lv, _ := l.Select(-0.01); lv != l.Levels()-1 {
		t.Fatalf("Select(-0.01) = level %d", lv)
	}
	if lv, _ := l.Select(1.01); lv != 0 {
		t.Fatalf("Select(1.01) = level %d", lv)
	}
	// Empty ladder returns level 0 and no groups at every load.
	var empty Ladder
	for _, load := range []float64{-1, 0, 0.5, 1, 2} {
		if lv, g := empty.Select(load); lv != 0 || g != nil {
			t.Fatalf("empty.Select(%v) = (%d, %v)", load, lv, g)
		}
	}
}

func TestLadderSelect(t *testing.T) {
	rng := stats.NewRNG(31)
	s, _ := buildTestSynopsis(t, rng, 400)
	l := s.BuildLadder(8, 100)
	lvIdle, fine := l.Select(0)
	lvSat, coarse := l.Select(1)
	if lvIdle == lvSat {
		t.Fatal("idle and saturated selected the same level")
	}
	if len(fine) <= len(coarse) {
		t.Fatalf("idle cut (%d groups) not finer than saturated (%d)", len(fine), len(coarse))
	}
	// Clamping.
	if lv, _ := l.Select(-3); lv != lvIdle {
		t.Fatal("negative load not clamped")
	}
	if lv, _ := l.Select(7); lv != lvSat {
		t.Fatal("overload not clamped")
	}
	// Empty ladder.
	var empty Ladder
	if lv, g := empty.Select(0.5); lv != 0 || g != nil {
		t.Fatal("empty ladder select")
	}
}
