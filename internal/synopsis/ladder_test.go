package synopsis

import (
	"testing"

	"accuracytrader/internal/stats"
)

func TestBuildLadderShapes(t *testing.T) {
	rng := stats.NewRNG(30)
	s, _ := buildTestSynopsis(t, rng, 400)
	l := s.BuildLadder(8, 40, 100)
	if l.Levels() != 3 {
		t.Fatalf("levels = %d", l.Levels())
	}
	// Ratios sorted descending: coarsest (100) first.
	if l.Ratios[0] != 100 || l.Ratios[2] != 8 {
		t.Fatalf("ratios = %v", l.Ratios)
	}
	// Finer levels have at least as many groups.
	prev := 0
	for i := range l.Cuts {
		if len(l.Cuts[i]) < prev {
			t.Fatalf("level %d has fewer groups (%d) than coarser level (%d)", i, len(l.Cuts[i]), prev)
		}
		prev = len(l.Cuts[i])
		// Every level partitions all points.
		seen := map[int]bool{}
		for _, g := range l.Cuts[i] {
			for _, m := range g.Members {
				if seen[m] {
					t.Fatalf("level %d: duplicate member %d", i, m)
				}
				seen[m] = true
			}
		}
		if len(seen) != 400 {
			t.Fatalf("level %d covers %d of 400", i, len(seen))
		}
	}
	// The coarsest level must respect its ratio.
	if len(l.Cuts[0]) > 400/100+1 {
		t.Fatalf("coarsest level too fine: %d groups", len(l.Cuts[0]))
	}
}

func TestLadderSelect(t *testing.T) {
	rng := stats.NewRNG(31)
	s, _ := buildTestSynopsis(t, rng, 400)
	l := s.BuildLadder(8, 100)
	lvIdle, fine := l.Select(0)
	lvSat, coarse := l.Select(1)
	if lvIdle == lvSat {
		t.Fatal("idle and saturated selected the same level")
	}
	if len(fine) <= len(coarse) {
		t.Fatalf("idle cut (%d groups) not finer than saturated (%d)", len(fine), len(coarse))
	}
	// Clamping.
	if lv, _ := l.Select(-3); lv != lvIdle {
		t.Fatal("negative load not clamped")
	}
	if lv, _ := l.Select(7); lv != lvSat {
		t.Fatal("overload not clamped")
	}
	// Empty ladder.
	var empty Ladder
	if lv, g := empty.Select(0.5); lv != 0 || g != nil {
		t.Fatal("empty ladder select")
	}
}
