package synopsis

import "sort"

// Ladder holds alternative cuts of one synopsis at several compression
// ratios, coarse to fine. The paper (§2.3) defers load-adaptive synopsis
// selection to the authors' SARP line of work; this implements that
// extension: under heavy load a component can answer from a coarser
// (cheaper) synopsis and still rank its member sets, trading initial
// accuracy for initial latency.
//
// Ladder cuts are read-only views derived from the current R-tree: they
// are not tracked across Update calls (rebuild the ladder after updating)
// and their group IDs are local to the ladder.
type Ladder struct {
	Ratios []int
	Cuts   [][]Group
}

// BuildLadder computes one cut per compression ratio. Non-positive
// ratios are clamped to 1 first, then the ratios are deduplicated and
// sorted descending (coarsest first), so inputs like (1, 0) yield a
// single finest-level cut instead of two identical ones.
func (s *Synopsis) BuildLadder(ratios ...int) Ladder {
	seen := make(map[int]bool, len(ratios))
	sorted := make([]int, 0, len(ratios))
	for _, r := range ratios {
		if r < 1 {
			r = 1
		}
		if !seen[r] {
			seen[r] = true
			sorted = append(sorted, r)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	l := Ladder{Ratios: sorted}
	var id int64
	for _, ratio := range sorted {
		maxAgg := s.tree.Len() / ratio
		if maxAgg < 1 {
			maxAgg = 1
		}
		cuts := s.tree.CutToTarget(maxAgg)
		groups := make([]Group, 0, len(cuts))
		for _, c := range cuts {
			members := append([]int(nil), c.Members...)
			sort.Ints(members)
			groups = append(groups, Group{ID: id, Members: members})
			id++
		}
		l.Cuts = append(l.Cuts, groups)
	}
	return l
}

// Levels returns the number of ladder levels.
func (l Ladder) Levels() int { return len(l.Cuts) }

// Select picks a ladder level for the given load factor in [0,1]:
// 0 (idle) selects the finest cut, 1 (saturated) the coarsest. Values
// outside [0,1] are clamped.
func (l Ladder) Select(load float64) (level int, groups []Group) {
	if len(l.Cuts) == 0 {
		return 0, nil
	}
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	// Cuts are ordered coarse -> fine; map load 0 -> last (finest).
	idx := int((1 - load) * float64(len(l.Cuts)))
	if idx >= len(l.Cuts) {
		idx = len(l.Cuts) - 1
	}
	return idx, l.Cuts[idx]
}
