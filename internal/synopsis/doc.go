// Package synopsis implements the offline synopsis-management module of
// AccuracyTrader (paper §2.2, §3.1). A component's data subset is turned
// into:
//
//   - an index file: a partition of the original data points into groups,
//     one group per R-tree node at a chosen depth, grouping points that
//     are similar in a low-dimensional latent space produced by
//     incremental SVD; and
//   - a synopsis: one aggregated data point per group. The aggregated
//     *information* (mean ratings, merged documents, ...) is
//     application-specific, so this package owns only the grouping; the
//     applications build their aggregates from Groups() and cache them by
//     the stable group ID.
//
// Updating is incremental, mirroring the paper: added points are folded
// into the SVD model and inserted as new R-tree leaves; changed points are
// deleted and re-inserted; then only the groups whose membership actually
// changed receive new IDs (forcing re-aggregation), while untouched groups
// keep their IDs so their cached aggregates remain valid.
package synopsis
