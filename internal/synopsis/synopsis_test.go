package synopsis

import (
	"bytes"
	"testing"

	"accuracytrader/internal/stats"
	"accuracytrader/internal/svd"
)

// clusterSource is a FeatureSource with k well-separated clusters of
// points, the structure synopses exploit.
type clusterSource struct {
	features [][]svd.Cell
	nFeat    int
	cluster  []int
}

func newClusterSource(rng *stats.RNG, nPoints, nFeat, k int) *clusterSource {
	cs := &clusterSource{nFeat: nFeat}
	profiles := make([][]float64, k)
	for p := range profiles {
		prof := make([]float64, nFeat)
		for c := range prof {
			prof[c] = rng.Norm(0, 2)
		}
		profiles[p] = prof
	}
	for i := 0; i < nPoints; i++ {
		cl := i % k
		cs.cluster = append(cs.cluster, cl)
		var cells []svd.Cell
		for c := 0; c < nFeat; c++ {
			if rng.Float64() < 0.5 {
				cells = append(cells, svd.Cell{Col: int32(c), Val: profiles[cl][c] + rng.Norm(0, 0.1)})
			}
		}
		if len(cells) == 0 {
			cells = append(cells, svd.Cell{Col: 0, Val: profiles[cl][0]})
		}
		cs.features = append(cs.features, cells)
	}
	return cs
}

func (c *clusterSource) NumPoints() int            { return len(c.features) }
func (c *clusterSource) NumFeatures() int          { return c.nFeat }
func (c *clusterSource) Features(i int) []svd.Cell { return c.features[i] }
func (c *clusterSource) randomCells(rng *stats.RNG) []svd.Cell {
	var cells []svd.Cell
	for f := 0; f < c.nFeat; f++ {
		if rng.Float64() < 0.5 {
			cells = append(cells, svd.Cell{Col: int32(f), Val: rng.Norm(0, 2)})
		}
	}
	if len(cells) == 0 {
		cells = []svd.Cell{{Col: 0, Val: 1}}
	}
	return cells
}

func buildTestSynopsis(t *testing.T, rng *stats.RNG, n int) (*Synopsis, *clusterSource) {
	t.Helper()
	src := newClusterSource(rng, n, 30, 4)
	s, err := Build(src, Config{
		SVD:              svd.Config{Dims: 3, Epochs: 12, Seed: 42},
		CompressionRatio: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, src
}

func TestBuildBasics(t *testing.T) {
	rng := stats.NewRNG(1)
	s, _ := buildTestSynopsis(t, rng, 400)
	if s.NumPoints() != 400 {
		t.Fatalf("NumPoints = %d", s.NumPoints())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Compression: group count must respect the ratio target.
	if s.NumGroups() > 400/20 {
		t.Fatalf("too many groups: %d", s.NumGroups())
	}
	if s.NumGroups() < 2 {
		t.Fatalf("too few groups: %d", s.NumGroups())
	}
	if ms := s.MeanGroupSize(); ms < 20 {
		t.Fatalf("mean group size %v below compression ratio", ms)
	}
}

func TestBuildEmptyFails(t *testing.T) {
	src := &clusterSource{nFeat: 5}
	if _, err := Build(src, Config{}); err == nil {
		t.Fatal("expected error for empty source")
	}
}

func TestGroupsPartitionPoints(t *testing.T) {
	rng := stats.NewRNG(2)
	s, _ := buildTestSynopsis(t, rng, 300)
	seen := map[int]bool{}
	for _, g := range s.Groups() {
		for _, m := range g.Members {
			if seen[m] {
				t.Fatalf("point %d appears twice", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 300 {
		t.Fatalf("groups cover %d of 300 points", len(seen))
	}
}

func TestGroupsClusterPure(t *testing.T) {
	// With well-separated clusters, most points should share a group only
	// with same-cluster points (the similarity-preservation property of
	// paper Fig. 2).
	rng := stats.NewRNG(3)
	src := newClusterSource(rng, 800, 30, 4)
	s, err := Build(src, Config{
		SVD:              svd.Config{Dims: 3, Epochs: 12, Seed: 42},
		CompressionRatio: 10, // deep enough cut for group count >> cluster count
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumGroups() < 8 {
		t.Fatalf("cut too coarse for this test: %d groups", s.NumGroups())
	}
	mixedPoints := 0
	for _, g := range s.Groups() {
		counts := map[int]int{}
		for _, m := range g.Members {
			counts[src.cluster[m]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		mixedPoints += len(g.Members) - best
	}
	if mixedPoints > 800*15/100 {
		t.Fatalf("%d of 800 points grouped with a foreign cluster", mixedPoints)
	}
}

func TestUpdateAddNewPoints(t *testing.T) {
	rng := stats.NewRNG(4)
	s, src := buildTestSynopsis(t, rng, 300)
	var changes []Change
	for i := 0; i < 30; i++ {
		changes = append(changes, Change{Kind: Add, Cells: src.randomCells(rng)})
	}
	st, err := s.Update(changes)
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 30 || len(st.NewPointIDs) != 30 {
		t.Fatalf("stats = %+v", st)
	}
	if s.NumPoints() != 330 {
		t.Fatalf("NumPoints = %d", s.NumPoints())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// New point IDs continue after the original range.
	for i, id := range st.NewPointIDs {
		if id != 300+i {
			t.Fatalf("new id %d, want %d", id, 300+i)
		}
	}
}

func TestUpdateKeepsUntouchedGroupIDs(t *testing.T) {
	rng := stats.NewRNG(5)
	s, src := buildTestSynopsis(t, rng, 500)
	before := map[int64]bool{}
	for _, g := range s.Groups() {
		before[g.ID] = true
	}
	st, err := s.Update([]Change{{Kind: Add, Cells: src.randomCells(rng)}})
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupsKept == 0 {
		t.Fatal("single add invalidated every group")
	}
	if st.GroupsKept+st.GroupsReaggregated != s.NumGroups() {
		t.Fatalf("kept %d + reagg %d != groups %d", st.GroupsKept, st.GroupsReaggregated, s.NumGroups())
	}
	kept := 0
	for _, g := range s.Groups() {
		if before[g.ID] {
			kept++
		}
	}
	if kept != st.GroupsKept {
		t.Fatalf("reported kept=%d but %d IDs survived", st.GroupsKept, kept)
	}
	// A single added point should invalidate only a small share of groups.
	if st.GroupsReaggregated > s.NumGroups()/2 {
		t.Fatalf("one add re-aggregated %d of %d groups", st.GroupsReaggregated, s.NumGroups())
	}
}

func TestUpdateModify(t *testing.T) {
	rng := stats.NewRNG(6)
	s, src := buildTestSynopsis(t, rng, 300)
	st, err := s.Update([]Change{
		{Kind: Modify, Point: 5, Cells: src.randomCells(rng)},
		{Kind: Modify, Point: 17, Cells: src.randomCells(rng)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Modified != 2 {
		t.Fatalf("Modified = %d", st.Modified)
	}
	if s.NumPoints() != 300 {
		t.Fatalf("NumPoints changed to %d", s.NumPoints())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateDelete(t *testing.T) {
	rng := stats.NewRNG(7)
	s, _ := buildTestSynopsis(t, rng, 300)
	st, err := s.Update([]Change{{Kind: Delete, Point: 10}, {Kind: Delete, Point: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 2 || s.NumPoints() != 298 {
		t.Fatalf("delete failed: %+v points=%d", st, s.NumPoints())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleting the same point twice errors.
	if _, err := s.Update([]Change{{Kind: Delete, Point: 10}}); err == nil {
		t.Fatal("double delete should error")
	}
}

func TestUpdateInvalidPoint(t *testing.T) {
	rng := stats.NewRNG(8)
	s, src := buildTestSynopsis(t, rng, 100)
	if _, err := s.Update([]Change{{Kind: Modify, Point: 1000, Cells: src.randomCells(rng)}}); err == nil {
		t.Fatal("modify of absent point should error")
	}
	if _, err := s.Update([]Change{{Kind: Kind(99), Point: 0}}); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestAddCheaperThanModify(t *testing.T) {
	// The paper's Fig. 3 observation: adding new points only inserts R-tree
	// leaves while changing points deletes and re-inserts, so adds must
	// invalidate no more groups than changes at equal volume.
	rng := stats.NewRNG(9)
	sAdd, src := buildTestSynopsis(t, rng, 600)
	sMod, _ := buildTestSynopsis(t, stats.NewRNG(9), 600)
	var adds, mods []Change
	for i := 0; i < 60; i++ {
		adds = append(adds, Change{Kind: Add, Cells: src.randomCells(rng)})
		mods = append(mods, Change{Kind: Modify, Point: i * 7 % 600, Cells: src.randomCells(rng)})
	}
	stAdd, err := sAdd.Update(adds)
	if err != nil {
		t.Fatal(err)
	}
	stMod, err := sMod.Update(mods)
	if err != nil {
		t.Fatal(err)
	}
	if stAdd.GroupsReaggregated > stMod.GroupsReaggregated+3 {
		t.Fatalf("adds invalidated %d groups, changes %d", stAdd.GroupsReaggregated, stMod.GroupsReaggregated)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := stats.NewRNG(10)
	s, src := buildTestSynopsis(t, rng, 300)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPoints() != s.NumPoints() || loaded.NumGroups() != s.NumGroups() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			loaded.NumPoints(), loaded.NumGroups(), s.NumPoints(), s.NumGroups())
	}
	// Group identity must survive the round trip exactly.
	for i, g := range s.Groups() {
		lg := loaded.Groups()[i]
		if lg.ID != g.ID || len(lg.Members) != len(g.Members) {
			t.Fatalf("group %d changed", i)
		}
		for j := range g.Members {
			if lg.Members[j] != g.Members[j] {
				t.Fatalf("group %d member %d changed", i, j)
			}
		}
	}
	// The loaded synopsis must keep updating incrementally: a single add
	// keeps most group IDs.
	st, err := loaded.Update([]Change{{Kind: Add, Cells: src.randomCells(rng)}})
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupsKept == 0 {
		t.Fatal("loaded synopsis lost group identity on update")
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a synopsis"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestUpdateSequenceInvariantsProperty(t *testing.T) {
	rng := stats.NewRNG(11)
	s, src := buildTestSynopsis(t, rng, 200)
	live := map[int]bool{}
	for i := 0; i < 200; i++ {
		live[i] = true
	}
	next := 200
	for step := 0; step < 25; step++ {
		var ch Change
		switch rng.Intn(3) {
		case 0:
			ch = Change{Kind: Add, Cells: src.randomCells(rng)}
			live[next] = true
			next++
		case 1:
			ch = Change{Kind: Modify, Point: pickLive(rng, live), Cells: src.randomCells(rng)}
		default:
			p := pickLive(rng, live)
			ch = Change{Kind: Delete, Point: p}
			delete(live, p)
		}
		if _, err := s.Update([]Change{ch}); err != nil {
			t.Fatalf("step %d (%+v): %v", step, ch.Kind, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if s.NumPoints() != len(live) {
			t.Fatalf("step %d: %d points, want %d", step, s.NumPoints(), len(live))
		}
	}
}

func pickLive(rng *stats.RNG, live map[int]bool) int {
	keys := make([]int, 0, len(live))
	for k := range live {
		keys = append(keys, k)
	}
	// Deterministic order before the random pick.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys[rng.Intn(len(keys))]
}

func newTestRNG() *stats.RNG { return stats.NewRNG(777) }
