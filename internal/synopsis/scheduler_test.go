package synopsis

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerAppliesWhenIdle(t *testing.T) {
	var applied atomic.Int64
	u := NewUpdateScheduler(func(ch []Change) (UpdateStats, error) {
		applied.Add(int64(len(ch)))
		return UpdateStats{}, nil
	}, func() bool { return false }, 2*time.Millisecond)
	u.Start()
	defer u.Stop()
	u.Enqueue(Change{Kind: Add}, Change{Kind: Add})
	deadline := time.Now().Add(2 * time.Second)
	for applied.Load() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if applied.Load() != 2 {
		t.Fatalf("applied = %d", applied.Load())
	}
	a, _, err := u.Stats()
	if a != 2 || err != nil {
		t.Fatalf("stats = %d,%v", a, err)
	}
}

func TestSchedulerSkipsWhenBusy(t *testing.T) {
	var busy atomic.Bool
	busy.Store(true)
	var applied atomic.Int64
	u := NewUpdateScheduler(func(ch []Change) (UpdateStats, error) {
		applied.Add(int64(len(ch)))
		return UpdateStats{}, nil
	}, busy.Load, 2*time.Millisecond)
	u.Start()
	defer u.Stop()
	u.Enqueue(Change{Kind: Add})
	time.Sleep(20 * time.Millisecond)
	if applied.Load() != 0 {
		t.Fatal("applied while busy")
	}
	if u.Pending() != 1 {
		t.Fatalf("pending = %d", u.Pending())
	}
	_, skipped, _ := u.Stats()
	if skipped == 0 {
		t.Fatal("no skipped rounds recorded")
	}
	// Load drops: the change must go through.
	busy.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for applied.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if applied.Load() != 1 {
		t.Fatal("change not applied after load dropped")
	}
}

func TestSchedulerFlushForces(t *testing.T) {
	var applied atomic.Int64
	u := NewUpdateScheduler(func(ch []Change) (UpdateStats, error) {
		applied.Add(int64(len(ch)))
		return UpdateStats{}, nil
	}, func() bool { return true }, time.Hour)
	u.Start()
	defer u.Stop()
	u.Enqueue(Change{Kind: Add}, Change{Kind: Modify, Point: 1})
	u.Flush()
	if applied.Load() != 2 || u.Pending() != 0 {
		t.Fatalf("flush: applied=%d pending=%d", applied.Load(), u.Pending())
	}
}

func TestSchedulerSurfacesErrors(t *testing.T) {
	boom := errors.New("boom")
	u := NewUpdateScheduler(func([]Change) (UpdateStats, error) {
		return UpdateStats{}, boom
	}, nil, time.Hour)
	u.Enqueue(Change{Kind: Add})
	u.Flush()
	if _, _, err := u.Stats(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestSchedulerStopIdempotent(t *testing.T) {
	u := NewUpdateScheduler(func([]Change) (UpdateStats, error) {
		return UpdateStats{}, nil
	}, nil, time.Millisecond)
	u.Start()
	u.Stop()
	u.Stop()
}

func TestSchedulerEndToEndWithSynopsis(t *testing.T) {
	// Wire the scheduler to a real synopsis: queued adds land in the
	// synopsis once the probe reports idle.
	rng := newTestRNG()
	s, src := buildTestSynopsis(t, rng, 200)
	var busy atomic.Bool
	busy.Store(true)
	u := NewUpdateScheduler(s.Update, busy.Load, 2*time.Millisecond)
	u.Start()
	u.Enqueue(Change{Kind: Add, Cells: src.randomCells(rng)})
	time.Sleep(10 * time.Millisecond)
	if a, _, _ := u.Stats(); a != 0 {
		u.Stop()
		t.Fatal("update applied while busy")
	}
	busy.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a, _, _ := u.Stats(); a == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// The synopsis is single-owner: stop the scheduler before touching it.
	u.Stop()
	if a, _, err := u.Stats(); a != 1 || err != nil {
		t.Fatalf("queued add never applied: applied=%d err=%v", a, err)
	}
	if s.NumPoints() != 201 {
		t.Fatalf("NumPoints = %d", s.NumPoints())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
