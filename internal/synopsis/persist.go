package synopsis

import (
	"encoding/gob"
	"fmt"
	"io"

	"accuracytrader/internal/rtree"
	"accuracytrader/internal/svd"
)

// image is the gob wire format of a Synopsis. The R-tree structure is
// saved verbatim so that updating after a load continues from the exact
// stored tree, as the paper prescribes ("the R-tree and the index file are
// stored and they can be used as the starting point of synopsis
// updating").
type image struct {
	Cfg    Config
	Model  svd.Snapshot
	Tree   rtree.Snapshot
	Latent [][]float64
	Alive  []bool
	Groups []Group
	NextID int64
}

// Save writes the synopsis (SVD model, R-tree, index file) to w.
func (s *Synopsis) Save(w io.Writer) error {
	img := image{
		Cfg:    s.cfg,
		Model:  s.model.Snapshot(),
		Tree:   s.tree.Snapshot(),
		Latent: s.latent,
		Alive:  s.alive,
		Groups: s.groups,
		NextID: s.nextID,
	}
	if err := gob.NewEncoder(w).Encode(img); err != nil {
		return fmt.Errorf("synopsis: save: %w", err)
	}
	return nil
}

// Load reads a synopsis previously written with Save.
func Load(r io.Reader) (*Synopsis, error) {
	var img image
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("synopsis: load: %w", err)
	}
	s := &Synopsis{
		cfg:    img.Cfg,
		model:  svd.FromSnapshot(img.Model),
		tree:   rtree.FromSnapshot(img.Tree),
		latent: img.Latent,
		alive:  img.Alive,
		groups: img.Groups,
		nextID: img.NextID,
	}
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("synopsis: load: corrupt image: %w", err)
	}
	return s, nil
}
