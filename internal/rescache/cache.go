package rescache

import (
	"fmt"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"accuracytrader/internal/cost"
	"accuracytrader/internal/obs"
)

// Config configures a Cache.
type Config struct {
	// Capacity bounds the total entry count across shards (default
	// 4096). The bound is enforced per shard with LRU eviction.
	Capacity int
	// Shards is the shard count, rounded up to a power of two (default
	// 16). More shards mean less lock contention on the hit path.
	Shards int
	// BestEffortFloor is the accuracy floor applied to BestEffort-class
	// lookups when the service is idle (default 0.5). Exact and Bounded
	// floors are fixed by the request and never pass through here.
	BestEffortFloor float64
	// MaxSlack is how much of BestEffortFloor the degradation
	// controller may loosen away at full load (default: all of it).
	// The effective BestEffort floor is
	// BestEffortFloor - MaxSlack*load, clamped at 0.
	MaxSlack float64
	// RefreshBelow marks entries whose accuracy is below this value as
	// refresh candidates on every hit (default 1: anything inexact).
	// Only meaningful once SetRefresh installs a refresh function.
	RefreshBelow float64
	// RefreshInterval paces the low-priority refresh worker: at most
	// one refresh attempt per interval (default 25ms).
	RefreshInterval time.Duration
	// RefreshQueue bounds the pending-refresh queue (default 256). A
	// full queue drops the candidate; the next hit re-enqueues it.
	RefreshQueue int
	// Metrics is the observability registry the cache's counters live in
	// (rescache_hits_total, rescache_misses_total, …). Nil uses a
	// private registry; Stats() is unaffected either way.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.BestEffortFloor <= 0 {
		c.BestEffortFloor = 0.5
	}
	if c.MaxSlack <= 0 {
		c.MaxSlack = c.BestEffortFloor
	}
	if c.RefreshBelow <= 0 {
		c.RefreshBelow = 1
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = 25 * time.Millisecond
	}
	if c.RefreshQueue <= 0 {
		c.RefreshQueue = 256
	}
	return c
}

// Stats are the cache's cumulative counters.
type Stats struct {
	Hits   int64 // lookups served from the cache
	Misses int64 // lookups that fell through (includes coalesced waiters)
	// Coalesced counts misses resolved by another caller's in-flight
	// computation instead of their own (Do). Backend computations for
	// cached keys are therefore Misses - Coalesced.
	Coalesced    int64
	Stored       int64 // Store calls
	Evictions    int64 // entries displaced by the capacity bound
	Stale        int64 // lookups that hit an entry from an old epoch
	FloorRejects int64 // lookups whose entry's accuracy missed the floor
	Refreshes    int64 // entries upgraded by the refresh worker
	Rewarms      int64 // entries recomputed by RewarmHot after epoch bumps
	// SavedCPUNs and SavedScanned accumulate the fill cost of every hit
	// entry (StoreCosted tags entries with what computing them cost):
	// the backend work the cache absorbed instead of the fan-out — the
	// cache's contribution in the same units the cost plane meters.
	SavedCPUNs   int64
	SavedScanned int64
}

// entry is one cached reply in a shard's slab. prev/next thread the
// intrusive LRU list (slab indices, -1 = none).
type entry struct {
	key     uint64
	value   interface{}
	payload interface{}
	acc     float64
	epoch   uint64
	fill    cost.Usage // what computing the entry cost (StoreCosted)
	queued  bool       // a refresh for this key is pending
	prev    int32
	next    int32
}

const nilIdx = int32(-1)

// shard is one lock domain: an index map plus a preallocated entry slab
// threaded with an intrusive LRU list and a free list.
type shard struct {
	mu   sync.Mutex
	idx  map[uint64]int32
	slab []entry
	head int32 // most recently used
	tail int32 // least recently used
	free int32 // free-list head, threaded through next
}

func (s *shard) init(capacity int) {
	s.idx = make(map[uint64]int32, capacity)
	s.slab = make([]entry, capacity)
	s.head, s.tail = nilIdx, nilIdx
	for i := range s.slab {
		s.slab[i].next = int32(i) + 1
	}
	s.slab[capacity-1].next = nilIdx
	s.free = 0
}

// unlink removes slot i from the LRU list.
func (s *shard) unlink(i int32) {
	e := &s.slab[i]
	if e.prev != nilIdx {
		s.slab[e.prev].next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nilIdx {
		s.slab[e.next].prev = e.prev
	} else {
		s.tail = e.prev
	}
}

// pushFront links slot i as the most recently used.
func (s *shard) pushFront(i int32) {
	e := &s.slab[i]
	e.prev, e.next = nilIdx, s.head
	if s.head != nilIdx {
		s.slab[s.head].prev = i
	}
	s.head = i
	if s.tail == nilIdx {
		s.tail = i
	}
}

// toFront moves slot i to the front of the LRU list.
func (s *shard) toFront(i int32) {
	if s.head == i {
		return
	}
	s.unlink(i)
	s.pushFront(i)
}

// release returns slot i to the free list, dropping its references.
func (s *shard) release(i int32) {
	e := &s.slab[i]
	e.value, e.payload = nil, nil
	e.next = s.free
	s.free = i
}

// Cache is the accuracy-aware result cache. All methods are safe for
// concurrent use.
type Cache struct {
	cfg    Config
	shards []shard
	mask   uint64
	epoch  atomic.Uint64
	load   atomic.Uint64 // float64 bits of the current load in [0,1]

	fmu     sync.Mutex
	flights map[uint64]*flight

	refreshMu  sync.Mutex
	refreshFn  RefreshFunc
	gate       func() bool
	refreshCh  chan uint64
	quit       chan struct{}
	workerDone chan struct{}
	started    bool

	hits, misses, coalesced *obs.Counter
	stored, evictions       *obs.Counter
	stale, floorRejects     *obs.Counter
	refreshes, rewarms      *obs.Counter
	savedCPU, savedScanned  *obs.Counter
}

// New returns an empty cache.
func New(cfg Config) (*Cache, error) {
	cfg = cfg.withDefaults()
	shards := 1
	for shards < cfg.Shards {
		shards <<= 1
	}
	perShard := (cfg.Capacity + shards - 1) / shards
	if perShard < 1 {
		perShard = 1
	}
	if cfg.BestEffortFloor > 1 || cfg.RefreshBelow > 1 {
		return nil, fmt.Errorf("rescache: accuracy floors must be in [0,1], got BestEffortFloor=%g RefreshBelow=%g",
			cfg.BestEffortFloor, cfg.RefreshBelow)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Cache{
		cfg:          cfg,
		shards:       make([]shard, shards),
		mask:         uint64(shards - 1),
		flights:      map[uint64]*flight{},
		quit:         make(chan struct{}),
		hits:         reg.Counter("rescache_hits_total"),
		misses:       reg.Counter("rescache_misses_total"),
		coalesced:    reg.Counter("rescache_coalesced_total"),
		stored:       reg.Counter("rescache_stored_total"),
		evictions:    reg.Counter("rescache_evictions_total"),
		stale:        reg.Counter("rescache_stale_total"),
		floorRejects: reg.Counter("rescache_floor_rejects_total"),
		refreshes:    reg.Counter("rescache_refreshes_total"),
		rewarms:      reg.Counter("rescache_rewarms_total"),
		savedCPU:     reg.Counter("rescache_saved_cpu_ns_total"),
		savedScanned: reg.Counter("rescache_saved_scanned_total"),
	}
	for i := range c.shards {
		c.shards[i].init(perShard)
	}
	reg.GaugeFunc("rescache_entries", func() float64 { return float64(c.Len()) })
	return c, nil
}

// keySeed randomizes Key per process: with an unkeyed hash a client of
// the networked front server could construct colliding canonical
// encodings offline and poison another request's cache slot; a
// process-random seed makes collisions unconstructible from outside.
// Keys are therefore not stable across restarts — irrelevant for an
// in-memory cache.
var keySeed = maphash.MakeSeed()

// Key hashes a canonical request encoding to a cache key.
func Key(b []byte) uint64 {
	return maphash.Bytes(keySeed, b)
}

// Epoch returns the current data-version epoch.
func (c *Cache) Epoch() uint64 { return c.epoch.Load() }

// BumpEpoch advances the data-version epoch: entries stored under
// earlier epochs become stale and are discarded lazily on their next
// lookup. Call it after a synopsis (or any backing-data) update.
func (c *Cache) BumpEpoch() { c.epoch.Add(1) }

// SetLoad feeds the degradation controller's smoothed load estimate in
// [0,1] to the cache. Load loosens the BestEffort accuracy floor
// (Config.MaxSlack); it never touches Exact or Bounded floors.
func (c *Cache) SetLoad(load float64) {
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	c.load.Store(math.Float64bits(load))
}

// BestEffortFloor returns the load-adjusted accuracy floor for
// BestEffort-class lookups.
func (c *Cache) BestEffortFloor() float64 {
	f := c.cfg.BestEffortFloor - c.cfg.MaxSlack*math.Float64frombits(c.load.Load())
	if f < 0 {
		f = 0
	}
	return f
}

// Get looks the key up and returns the cached value when its recorded
// accuracy clears floor and its epoch is current. The hot path: no
// allocation on hit or miss.
func (c *Cache) Get(key uint64, floor float64) (value interface{}, accuracy float64, ok bool) {
	s := &c.shards[key&c.mask]
	epoch := c.epoch.Load()
	var enqueue bool
	s.mu.Lock()
	i, present := s.idx[key]
	if !present {
		s.mu.Unlock()
		c.misses.Inc()
		return nil, 0, false
	}
	e := &s.slab[i]
	if e.epoch != epoch {
		// Stale epoch: discard lazily — the synopsis behind this answer
		// has changed since it was computed.
		s.unlink(i)
		delete(s.idx, key)
		s.release(i)
		s.mu.Unlock()
		c.stale.Inc()
		c.misses.Inc()
		return nil, 0, false
	}
	if e.acc < floor {
		s.mu.Unlock()
		c.floorRejects.Inc()
		c.misses.Inc()
		return nil, 0, false
	}
	s.toFront(i)
	value, accuracy = e.value, e.acc
	fill := e.fill
	if c.refreshEnabled() && accuracy < c.cfg.RefreshBelow && e.payload != nil && !e.queued {
		e.queued = true
		enqueue = true
	}
	s.mu.Unlock()
	if enqueue {
		select {
		case c.refreshCh <- key:
		default:
			// Queue full: clear the flag so a later hit retries.
			c.clearQueued(key)
		}
	}
	c.hits.Inc()
	// A hit means the entry's fill work was not redone: credit it as
	// saved. Entries stored without a cost tag (Store/StoreAt) leave the
	// counters untouched.
	if fill.CPUNs != 0 {
		c.savedCPU.Add(int64(fill.CPUNs))
	}
	if fill.Scanned != 0 {
		c.savedScanned.Add(int64(fill.Scanned))
	}
	return value, accuracy, true
}

// Store inserts (or overwrites) the value for key, tagged with the
// accuracy bound it was computed at and the current epoch. payload is
// whatever the refresh function needs to recompute the answer (the
// canonical request); nil disables refresh for the entry.
//
// Callers whose computation may straddle a BumpEpoch (any computation
// reading the backing data) should capture Epoch() *before* computing
// and use StoreAt instead, so an answer computed from pre-update data
// is never stamped current.
func (c *Cache) Store(key uint64, payload, value interface{}, accuracy float64) {
	c.StoreAt(key, payload, value, accuracy, c.epoch.Load())
}

// StoreAt is Store with an explicit epoch stamp — the epoch the
// computation *started* under. If BumpEpoch ran while the value was
// being computed, the entry is born stale and discarded lazily on its
// next lookup, exactly as if it had been cached before the update.
func (c *Cache) StoreAt(key uint64, payload, value interface{}, accuracy float64, epoch uint64) {
	c.storeAt(key, payload, value, accuracy, epoch, cost.Usage{})
}

// StoreCosted is StoreAt with a fill-cost tag: what computing the value
// cost (CPU, rows scanned, …). Every later hit on the entry accumulates
// the tag into the saved-cost counters (Stats.SavedCPUNs,
// Stats.SavedScanned), so the cache's contribution is metered in the
// same units as the cost-attribution plane.
func (c *Cache) StoreCosted(key uint64, payload, value interface{}, accuracy float64, epoch uint64, fill cost.Usage) {
	c.storeAt(key, payload, value, accuracy, epoch, fill)
}

func (c *Cache) storeAt(key uint64, payload, value interface{}, accuracy float64, epoch uint64, fill cost.Usage) {
	if accuracy < 0 {
		accuracy = 0
	}
	if accuracy > 1 {
		accuracy = 1
	}
	s := &c.shards[key&c.mask]
	s.mu.Lock()
	if i, present := s.idx[key]; present {
		e := &s.slab[i]
		e.value, e.payload, e.acc, e.epoch, e.fill = value, payload, accuracy, epoch, fill
		e.queued = false
		s.toFront(i)
		s.mu.Unlock()
		c.stored.Inc()
		return
	}
	i := s.free
	if i == nilIdx {
		// Full shard: evict the least recently used entry.
		i = s.tail
		delete(s.idx, s.slab[i].key)
		s.unlink(i)
		s.release(i)
		i = s.free
		c.evictions.Inc()
	}
	s.free = s.slab[i].next
	e := &s.slab[i]
	*e = entry{key: key, value: value, payload: payload, acc: accuracy, epoch: epoch, fill: fill, prev: nilIdx, next: nilIdx}
	s.idx[key] = i
	s.pushFront(i)
	s.mu.Unlock()
	c.stored.Inc()
}

// UpgradeIfPresent overwrites the entry for key — same contract as
// StoreAt — but only when the key is still cached under a current-or-
// equal epoch. The ground-truth auditor uses it so a finished exact
// replay doubles as a free refresh without polluting the LRU with keys
// nobody asked to cache: an absent (evicted, invalidated) key stays
// absent. Reports whether an entry was upgraded.
func (c *Cache) UpgradeIfPresent(key uint64, payload, value interface{}, accuracy float64, epoch uint64) bool {
	if accuracy < 0 {
		accuracy = 0
	}
	if accuracy > 1 {
		accuracy = 1
	}
	s := &c.shards[key&c.mask]
	s.mu.Lock()
	i, present := s.idx[key]
	if !present {
		s.mu.Unlock()
		return false
	}
	e := &s.slab[i]
	if e.epoch > epoch {
		// The cached entry already reflects newer data than the upgrade
		// was computed from; keep it.
		s.mu.Unlock()
		return false
	}
	// e.fill is deliberately left as-is: the replay's exact recompute is
	// internal work, and the entry's saved-cost tag should keep crediting
	// what the original (approximate) fill cost the serving path.
	e.value, e.payload, e.acc, e.epoch = value, payload, accuracy, epoch
	e.queued = false
	s.toFront(i)
	s.mu.Unlock()
	c.stored.Inc()
	c.refreshes.Inc()
	return true
}

// Invalidate removes one key (for targeted invalidation; whole-dataset
// changes should BumpEpoch instead).
func (c *Cache) Invalidate(key uint64) {
	s := &c.shards[key&c.mask]
	s.mu.Lock()
	if i, present := s.idx[key]; present {
		s.unlink(i)
		delete(s.idx, key)
		s.release(i)
	}
	s.mu.Unlock()
}

// Len returns the live entry count (entries from old epochs still
// count until their lazy discard).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.idx)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:         c.hits.Value(),
		Misses:       c.misses.Value(),
		Coalesced:    c.coalesced.Value(),
		Stored:       c.stored.Value(),
		Evictions:    c.evictions.Value(),
		Stale:        c.stale.Value(),
		FloorRejects: c.floorRejects.Value(),
		Refreshes:    c.refreshes.Value(),
		Rewarms:      c.rewarms.Value(),
		SavedCPUNs:   c.savedCPU.Value(),
		SavedScanned: c.savedScanned.Value(),
	}
}

// HitRate returns hits over lookups (0 when idle).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// payloadOf fetches the stored payload for a pending refresh; ok is
// false when the entry was evicted or superseded in the meantime.
func (c *Cache) payloadOf(key uint64) (interface{}, bool) {
	s := &c.shards[key&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	i, present := s.idx[key]
	if !present {
		return nil, false
	}
	e := &s.slab[i]
	if e.payload == nil || e.epoch != c.epoch.Load() {
		return nil, false
	}
	return e.payload, true
}

// clearQueued resets the refresh-pending flag for key.
func (c *Cache) clearQueued(key uint64) {
	s := &c.shards[key&c.mask]
	s.mu.Lock()
	if i, present := s.idx[key]; present {
		s.slab[i].queued = false
	}
	s.mu.Unlock()
}

// Close stops the refresh worker (if started) and waits for it to
// finish any in-flight recomputation — after Close returns, no
// refresh touches the backing data, so callers may swap it safely.
// The cache itself needs no teardown.
func (c *Cache) Close() {
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	if c.started {
		close(c.quit)
		<-c.workerDone
		c.started = false
	}
}
