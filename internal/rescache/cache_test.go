package rescache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestStoreGetFloor(t *testing.T) {
	c := mustNew(t, Config{Capacity: 8})
	c.Store(1, nil, "coarse", 0.8)

	if v, acc, ok := c.Get(1, 0.8); !ok || v != "coarse" || acc != 0.8 {
		t.Fatalf("Get at floor = %v %v %v", v, acc, ok)
	}
	// An accuracy floor above the entry's bound must miss: a Bounded
	// request can never be served below its contract.
	if _, _, ok := c.Get(1, 0.9); ok {
		t.Fatal("served below the accuracy floor")
	}
	// Exact floor (1.0) only matches exact entries.
	if _, _, ok := c.Get(1, 1); ok {
		t.Fatal("inexact entry served an Exact floor")
	}
	c.Store(1, nil, "exact", 1)
	if v, _, ok := c.Get(1, 1); !ok || v != "exact" {
		t.Fatalf("exact overwrite not served: %v %v", v, ok)
	}
	st := c.Stats()
	if st.FloorRejects != 2 || st.Stored != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEpochInvalidatesLazily(t *testing.T) {
	c := mustNew(t, Config{Capacity: 8})
	c.Store(7, nil, "old", 1)
	c.BumpEpoch()
	if c.Len() != 1 {
		t.Fatalf("bump eagerly removed entries: len=%d", c.Len())
	}
	if _, _, ok := c.Get(7, 0); ok {
		t.Fatal("stale entry served after epoch bump")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not discarded on lookup: len=%d", c.Len())
	}
	if st := c.Stats(); st.Stale != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Re-stored under the new epoch, the key serves again.
	c.Store(7, nil, "new", 1)
	if v, _, ok := c.Get(7, 0); !ok || v != "new" {
		t.Fatalf("fresh entry not served: %v %v", v, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard of capacity 4 so the LRU order is fully observable.
	c := mustNew(t, Config{Capacity: 4, Shards: 1})
	for k := uint64(0); k < 4; k++ {
		c.Store(k, nil, k, 1)
	}
	// Touch 0 so 1 becomes the LRU victim.
	if _, _, ok := c.Get(0, 0); !ok {
		t.Fatal("miss on resident key")
	}
	c.Store(4, nil, 4, 1)
	if _, _, ok := c.Get(1, 0); ok {
		t.Fatal("LRU victim still resident")
	}
	for _, k := range []uint64{0, 2, 3, 4} {
		if _, _, ok := c.Get(k, 0); !ok {
			t.Fatalf("key %d evicted out of LRU order", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBestEffortFloorLoosensWithLoad(t *testing.T) {
	c := mustNew(t, Config{Capacity: 8, BestEffortFloor: 0.6, MaxSlack: 0.6})
	if f := c.BestEffortFloor(); f != 0.6 {
		t.Fatalf("idle floor = %g", f)
	}
	c.SetLoad(0.5)
	if f := c.BestEffortFloor(); f != 0.3 {
		t.Fatalf("half-load floor = %g", f)
	}
	c.SetLoad(1)
	if f := c.BestEffortFloor(); f != 0 {
		t.Fatalf("full-load floor = %g", f)
	}
	// The slack only moves the BestEffort floor: a coarse entry becomes
	// servable to best-effort lookups under load, while an explicit
	// (Bounded) floor still rejects it.
	c.Store(3, nil, "coarse", 0.35)
	if _, _, ok := c.Get(3, c.BestEffortFloor()); !ok {
		t.Fatal("loosened floor did not admit the coarse entry")
	}
	if _, _, ok := c.Get(3, 0.9); ok {
		t.Fatal("bounded floor loosened by load")
	}
}

func TestDoCoalescesConcurrentMisses(t *testing.T) {
	// Satellite: N goroutines, same key -> exactly one backend
	// computation; run under -race in CI.
	c := mustNew(t, Config{Capacity: 8})
	const waiters = 32
	var computes atomic.Int64
	started := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-started
			v, acc, _, err := c.Do(context.Background(), 42, 0.5, func() (interface{}, float64, error) {
				computes.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open
				c.Store(42, nil, "answer", 0.9)
				return "answer", 0.9, nil
			})
			if err != nil || v != "answer" || acc != 0.9 {
				t.Errorf("Do = %v %v %v", v, acc, err)
			}
		}()
	}
	close(started)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computations for %d concurrent identical misses", n, waiters)
	}
	st := c.Stats()
	// Every non-winner either joined the flight (Coalesced) or — if
	// scheduled after the winner stored — hit the fresh entry (Hits);
	// both shapes are correct coalescing.
	if st.Coalesced+st.Hits != waiters-1 {
		t.Fatalf("coalesced %d + hits %d != %d (stats %+v)", st.Coalesced, st.Hits, waiters-1, st)
	}
	// The flight is gone: a later miss computes again.
	_, _, shared, _ := c.Do(context.Background(), 42, 0.95, func() (interface{}, float64, error) {
		computes.Add(1)
		return "exact", 1, nil
	})
	if shared || computes.Load() != 2 {
		t.Fatalf("follow-up above the cached accuracy did not compute (shared=%v computes=%d)", shared, computes.Load())
	}
}

func TestStoreAtEpochCapture(t *testing.T) {
	// A computation that straddles a BumpEpoch must not produce a
	// current entry: StoreAt stamps the epoch the computation started
	// under, so the entry is born stale.
	c := mustNew(t, Config{Capacity: 8})
	epoch := c.Epoch()
	c.BumpEpoch() // the data changed mid-computation
	c.StoreAt(2, nil, "pre-update answer", 1, epoch)
	if _, _, ok := c.Get(2, 0); ok {
		t.Fatal("pre-update answer served as current after epoch bump")
	}
	// The same pattern through Do: compute bumps the epoch mid-flight
	// (standing in for a concurrent synopsis update) and stores under
	// its captured epoch.
	v, _, shared, err := c.Do(context.Background(), 3, 0, func() (interface{}, float64, error) {
		ep := c.Epoch()
		c.BumpEpoch()
		c.StoreAt(3, nil, "stale", 0.9, ep)
		return "stale", 0.9, nil
	})
	if err != nil || shared || v != "stale" {
		t.Fatalf("Do = %v %v %v", v, shared, err)
	}
	if _, _, ok := c.Get(3, 0); ok {
		t.Fatal("entry stored across a bump served as current")
	}
}

func TestDoFailedWinnerSerializesWaiters(t *testing.T) {
	// A failed winner (e.g. shed by admission under overload) must not
	// release a thundering herd: the waiters re-enter the flight table
	// and at most one computation runs at a time.
	c := mustNew(t, Config{Capacity: 8})
	const waiters = 16
	var inCompute, maxConcurrent, computes atomic.Int64
	started := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-started
			c.Do(context.Background(), 8, 0.5, func() (interface{}, float64, error) {
				cur := inCompute.Add(1)
				for {
					m := maxConcurrent.Load()
					if cur <= m || maxConcurrent.CompareAndSwap(m, cur) {
						break
					}
				}
				computes.Add(1)
				time.Sleep(2 * time.Millisecond)
				inCompute.Add(-1)
				return nil, 0, context.DeadlineExceeded // every winner fails
			})
		}()
	}
	close(started)
	wg.Wait()
	if computes.Load() != waiters {
		t.Fatalf("%d computations for %d callers whose every winner failed", computes.Load(), waiters)
	}
	if maxConcurrent.Load() != 1 {
		t.Fatalf("%d computations ran concurrently, want serialized rounds of 1", maxConcurrent.Load())
	}
}

func TestDoFloorFallback(t *testing.T) {
	// A waiter whose floor the shared result cannot satisfy must fall
	// back to its own computation instead of accepting a too-coarse
	// answer.
	c := mustNew(t, Config{Capacity: 8})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), 9, 0, func() (interface{}, float64, error) {
			close(inFlight)
			<-release
			return "coarse", 0.5, nil
		})
	}()
	<-inFlight
	var ownCompute atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, acc, shared, err := c.Do(context.Background(), 9, 0.9, func() (interface{}, float64, error) {
			ownCompute.Store(true)
			return "fine", 0.95, nil
		})
		if err != nil || shared || v != "fine" || acc != 0.95 {
			t.Errorf("fallback Do = %v %v shared=%v err=%v", v, acc, shared, err)
		}
	}()
	close(release)
	<-done
	if !ownCompute.Load() {
		t.Fatal("high-floor waiter accepted the coarse shared result")
	}
}

func TestDoWaiterHonorsContext(t *testing.T) {
	c := mustNew(t, Config{Capacity: 8})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.Do(context.Background(), 5, 0, func() (interface{}, float64, error) {
			close(inFlight)
			<-release
			return nil, 0, nil
		})
	}()
	<-inFlight
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := c.Do(ctx, 5, 0, func() (interface{}, float64, error) {
		t.Error("cancelled waiter computed")
		return nil, 0, nil
	}); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentEvictionVsHit(t *testing.T) {
	// Satellite: hammer one shard with hits on hot keys while stores
	// churn the same shard past its capacity, under -race. The
	// invariant: hot keys either hit with their stored value or miss
	// cleanly — never a foreign value, never a corrupt LRU list.
	c := mustNew(t, Config{Capacity: 8, Shards: 1})
	hot := []uint64{1, 2, 3}
	for _, k := range hot {
		c.Store(k, nil, k, 1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, k := range hot {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v, _, ok := c.Get(k, 0); ok && v != k {
					t.Errorf("key %d returned foreign value %v", k, v)
					return
				}
				c.Store(k, nil, k, 1) // re-insert after any eviction
			}
		}()
	}
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(100 + w*1000 + i%64)
				c.Store(k, nil, k, 0.7)
				c.Get(k, 0)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("capacity bound violated: len=%d", c.Len())
	}
}

func TestRefreshUpgradesEntries(t *testing.T) {
	c := mustNew(t, Config{Capacity: 8, RefreshBelow: 1, RefreshInterval: time.Millisecond})
	var refreshed atomic.Int64
	c.SetRefresh(func(key uint64, payload interface{}) (interface{}, float64, bool) {
		refreshed.Add(1)
		return fmt.Sprintf("exact-%v", payload), 1, true
	}, nil)
	c.Store(11, "req", "coarse", 0.7)
	if v, _, ok := c.Get(11, 0); !ok || v != "coarse" {
		t.Fatalf("initial hit = %v %v", v, ok)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v, acc, ok := c.Get(11, 0); ok && acc == 1 {
			if v != "exact-req" {
				t.Fatalf("refreshed value = %v", v)
			}
			if st := c.Stats(); st.Refreshes < 1 {
				t.Fatalf("stats = %+v", st)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("entry never refreshed (refreshed=%d)", refreshed.Load())
}

func TestRefreshGateDefers(t *testing.T) {
	c := mustNew(t, Config{Capacity: 8, RefreshBelow: 1, RefreshInterval: time.Millisecond})
	var open atomic.Bool
	var refreshed atomic.Int64
	c.SetRefresh(func(uint64, interface{}) (interface{}, float64, bool) {
		refreshed.Add(1)
		return "exact", 1, true
	}, func() bool { return open.Load() })
	c.Store(3, "req", "coarse", 0.5)
	c.Get(3, 0)
	time.Sleep(30 * time.Millisecond)
	if refreshed.Load() != 0 {
		t.Fatal("refresh ran while the gate was closed")
	}
	open.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && refreshed.Load() == 0 {
		c.Get(3, 0) // re-enqueue in case the deferred key was dropped
		time.Sleep(time.Millisecond)
	}
	if refreshed.Load() == 0 {
		t.Fatal("refresh never ran after the gate opened")
	}
}

func TestHitPathZeroAlloc(t *testing.T) {
	c := mustNew(t, Config{Capacity: 64})
	c.Store(17, nil, "value", 0.9)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, ok := c.Get(17, 0.5); !ok {
			t.Fatal("hit path missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("hit path allocates %.1f allocs/op, want 0", allocs)
	}
	// The miss path is alloc-free too (it is the overload fast-exit).
	allocs = testing.AllocsPerRun(1000, func() {
		c.Get(99, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("miss path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestUpgradeIfPresentRefreshesResidentKeys(t *testing.T) {
	c := mustNew(t, Config{Capacity: 4, Shards: 1})
	c.Store(1, nil, "coarse", 0.8)

	// Resident key at the current epoch: the exact replay upgrades it.
	if !c.UpgradeIfPresent(1, nil, "exact", 1, c.Epoch()) {
		t.Fatal("resident key not upgraded")
	}
	if v, acc, ok := c.Get(1, 1); !ok || v != "exact" || acc != 1 {
		t.Fatalf("upgraded entry = %v %v %v, want exact at 1.0", v, acc, ok)
	}

	// Absent key: the upgrade must not insert — auditing a request nobody
	// cached should never pollute the LRU.
	if c.UpgradeIfPresent(99, nil, "exact", 1, c.Epoch()) {
		t.Fatal("upgrade inserted an absent key")
	}
	if _, _, ok := c.Get(99, 0); ok {
		t.Fatal("absent key became resident")
	}

	// Entry re-stored under a newer epoch: an upgrade computed from older
	// data must lose.
	old := c.Epoch()
	c.BumpEpoch()
	c.Store(1, nil, "fresh", 0.9)
	if c.UpgradeIfPresent(1, nil, "stale-exact", 1, old) {
		t.Fatal("stale upgrade overwrote a newer-epoch entry")
	}
	if v, _, ok := c.Get(1, 0); !ok || v != "fresh" {
		t.Fatalf("newer entry lost: %v %v", v, ok)
	}

	// Accuracy is clamped into [0, 1] like StoreAt.
	if !c.UpgradeIfPresent(1, nil, "clamped", 1.7, c.Epoch()) {
		t.Fatal("upgrade at current epoch refused")
	}
	if _, acc, ok := c.Get(1, 1); !ok || acc != 1 {
		t.Fatalf("accuracy not clamped: %v %v", acc, ok)
	}

	st := c.Stats()
	if st.Refreshes != 2 {
		t.Fatalf("stats = %+v, want 2 refreshes", st)
	}
}
