package rescache

import "testing"

// BenchmarkCacheHit is the hot hit path: one resident key served
// repeatedly. CI pipes this through cmd/benchjson -assert-zero-allocs
// to guard the 0 allocs/op contract.
func BenchmarkCacheHit(b *testing.B) {
	c, err := New(Config{Capacity: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.Store(1, nil, "value", 0.9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Get(1, 0.5); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkCacheHitParallel exercises shard-lock contention: many
// goroutines hitting a spread of resident keys.
func BenchmarkCacheHitParallel(b *testing.B) {
	c, err := New(Config{Capacity: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const keys = 1024
	for k := uint64(0); k < keys; k++ {
		c.Store(k, nil, k, 0.9)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		k := uint64(0)
		for pb.Next() {
			k = (k + 0x9e3779b97f4a7c15) % keys
			if _, _, ok := c.Get(k, 0.5); !ok {
				b.Fatal("miss")
			}
		}
	})
}

// BenchmarkCacheMiss is the overload fast-exit: absent key.
func BenchmarkCacheMiss(b *testing.B) {
	c, err := New(Config{Capacity: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(uint64(i)|1<<63, 0.5)
	}
}
