package rescache

import "context"

// Outcome classifies how DoWith resolved a lookup.
type Outcome uint8

// DoWith outcomes.
const (
	// OutcomeMiss: this caller ran compute() itself.
	OutcomeMiss Outcome = iota
	// OutcomeHit: served from a stored entry.
	OutcomeHit
	// OutcomeCoalesced: shared another caller's in-flight computation.
	OutcomeCoalesced
)

// flight is one in-progress computation that concurrent identical
// misses coalesce onto.
type flight struct {
	done chan struct{}
	v    interface{}
	acc  float64
	err  error
}

// Do serves key through the cache with singleflight coalescing:
//
//  1. a current-epoch entry clearing floor is returned immediately
//     (shared = true);
//  2. otherwise, if another Do for the same key is computing, wait for
//     its result and share it when its accuracy clears this caller's
//     floor (shared = true, counted Coalesced);
//  3. otherwise compute() runs (shared = false) — it is responsible for
//     Store-ing its result if it is cacheable.
//
// A waiter whose floor the shared result cannot satisfy — or whose
// winner failed — re-enters the lookup instead of computing
// unconditionally: it either hits the freshly stored entry, becomes
// the next single winner, or joins the next flight. Coalescing
// therefore never weakens the accuracy contract *and* a failed winner
// (e.g. shed by admission under overload) does not release a
// thundering herd — the waiters serialize, one computation per round.
// compute's value is returned even alongside a non-nil error, letting
// callers that encode failures inside the value (wire replies) mark
// them uncacheable via the error without losing the reply.
//
// ctx bounds only the waits for shared results; compute manages its
// own context.
func (c *Cache) Do(ctx context.Context, key uint64, floor float64,
	compute func() (value interface{}, accuracy float64, err error)) (value interface{}, accuracy float64, shared bool, err error) {
	v, acc, out, err := c.DoWith(ctx, key, floor, compute)
	return v, acc, out != OutcomeMiss, err
}

// DoWith is Do reporting the precise Outcome — whether the value came
// from a stored entry (OutcomeHit), another caller's in-flight
// computation (OutcomeCoalesced), or this caller's own compute()
// (OutcomeMiss) — so tracing callers can record which one happened.
func (c *Cache) DoWith(ctx context.Context, key uint64, floor float64,
	compute func() (value interface{}, accuracy float64, err error)) (value interface{}, accuracy float64, outcome Outcome, err error) {
	for {
		if v, acc, ok := c.Get(key, floor); ok {
			return v, acc, OutcomeHit, nil
		}
		c.fmu.Lock()
		fl, inFlight := c.flights[key]
		if !inFlight {
			fl = &flight{done: make(chan struct{})}
			c.flights[key] = fl
			c.fmu.Unlock()
			fl.v, fl.acc, fl.err = compute()
			c.fmu.Lock()
			delete(c.flights, key)
			c.fmu.Unlock()
			close(fl.done)
			return fl.v, fl.acc, OutcomeMiss, fl.err
		}
		c.fmu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, 0, OutcomeMiss, ctx.Err()
		}
		if fl.err == nil && fl.acc >= floor {
			c.coalesced.Inc()
			return fl.v, fl.acc, OutcomeCoalesced, nil
		}
		// The shared result cannot serve this caller (winner failed, or
		// its accuracy misses our floor): loop — each round elects one
		// new winner while the rest keep waiting.
	}
}
