// Package rescache is the accuracy-aware result cache shared by both
// serving runtimes: a sharded, bounded, accuracy-tagged map from
// canonical request keys to composed replies.
//
// In a Zipf-skewed request population most requests repeat, so the
// cheapest approximate answer is one that was already computed. The
// cache makes that reuse principled by extending the paper's
// per-request accuracy contract to cached answers: every entry carries
// the accuracy bound it was computed at (the calibrated ladder-level
// accuracy, or 1 for exact results) plus a data-version epoch, and a
// hit is served only when
//
//	cached accuracy >= request floor   AND   entry epoch is current.
//
// Exact-class requests have floor 1, Bounded requests their MinAccuracy
// (never loosened), and BestEffort requests a base floor that the
// degradation controller loosens under load (SetLoad) — the cache
// equivalent of serving a coarser ladder level. Synopsis updates bump
// the epoch (BumpEpoch), invalidating stale entries lazily on their
// next lookup.
//
// Three mechanisms make the cache production-shaped:
//
//   - a zero-alloc hot hit path: per-shard mutex, open-addressed index
//     map, and an intrusive LRU threaded through a preallocated entry
//     slab, so Get performs no allocation (benchmarked and CI-guarded
//     at 0 allocs/op);
//   - singleflight request coalescing (Do): concurrent identical misses
//     compute once, and a waiter whose accuracy floor the shared result
//     cannot satisfy falls back to its own computation;
//   - background refresh-to-exact: hits on entries below a target
//     accuracy enqueue the key for a low-priority worker that recomputes
//     the answer exactly and overwrites the entry — the paper's "coarse
//     first, refine later" applied to reuse, so popular answers get
//     more accurate over time. The worker is gated (SetRefresh) so it
//     yields while the service is overloaded.
//
// Keys are 64-bit hashes of a canonical request encoding (see
// wire.AppendCanonicalKey); Key hashes such bytes. The cache itself is
// payload-agnostic: internal/frontend stores trimmed frontend results,
// internal/netsvc stores composed wire replies.
package rescache
