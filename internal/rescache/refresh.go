package rescache

import "time"

// RefreshFunc recomputes one cached answer at full accuracy. It
// receives the entry's key and the payload Store recorded for it (the
// canonical request), and returns the upgraded value with its accuracy
// bound; ok = false means the recomputation was not possible right now
// (shed by admission, data gone) and the entry is left as is — its next
// hit re-enqueues it.
type RefreshFunc func(key uint64, payload interface{}) (value interface{}, accuracy float64, ok bool)

// SetRefresh installs the background refresh-to-exact worker: hits on
// entries whose accuracy is below Config.RefreshBelow enqueue the key,
// and a single low-priority worker drains the queue at
// Config.RefreshInterval pace, overwriting each entry with fn's
// upgraded answer — the paper's "coarse first, refine later" applied
// to reuse. gate (optional) is consulted before each recomputation;
// returning false defers the key (it is requeued), so refresh yields
// while the service is overloaded and catches up when load drops.
//
// SetRefresh must be called at most once, before the cache serves
// traffic; Close stops the worker.
func (c *Cache) SetRefresh(fn RefreshFunc, gate func() bool) {
	if fn == nil {
		return
	}
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	if c.started {
		panic("rescache: SetRefresh called twice")
	}
	c.refreshFn = fn
	c.gate = gate
	c.refreshCh = make(chan uint64, c.cfg.RefreshQueue)
	c.workerDone = make(chan struct{})
	c.started = true
	go c.refreshLoop()
}

// refreshEnabled reports whether the refresh worker is installed. The
// channel field is written once under refreshMu before any traffic, so
// the unlocked read on the hit path is safe.
func (c *Cache) refreshEnabled() bool { return c.refreshCh != nil }

// refreshLoop is the low-priority worker: one refresh attempt per
// RefreshInterval, deferring while the gate is closed.
func (c *Cache) refreshLoop() {
	defer close(c.workerDone)
	for {
		select {
		case <-c.quit:
			return
		case key := <-c.refreshCh:
			c.refreshOne(key)
		}
		select {
		case <-c.quit:
			return
		case <-time.After(c.cfg.RefreshInterval):
		}
	}
}

// RewarmHot recomputes up to max of the hottest entries through the
// refresh function, in recency order. Unlike the background refresh —
// which only upgrades entries that are still current — re-warming
// exists for the moment right after an epoch bump: the hot entries
// just went stale, and recomputing them before their next lookup turns
// a burst of post-swap misses back into hits. Each recomputation
// stamps the epoch captured at its own compute start, so a swap that
// lands mid-recompute leaves the entry born stale (and the next
// RewarmHot, typically fired by that swap's hook, redoes it) rather
// than resurrecting pre-swap data as current. Returns the number of
// entries re-warmed.
//
// RewarmHot runs on the caller's goroutine; callers pacing it off an
// epoch-swap hook get natural batching (one pass per swap). It is a
// no-op until SetRefresh installs a refresh function.
func (c *Cache) RewarmHot(max int) int {
	c.refreshMu.Lock()
	fn, gate := c.refreshFn, c.gate
	c.refreshMu.Unlock()
	if fn == nil || max <= 0 {
		return 0
	}
	type job struct {
		key     uint64
		payload interface{}
	}
	// Collect {key, payload} under the shard locks, hottest first per
	// shard: the payload travels with the job because the entry itself
	// may be lazily discarded (it is stale) before the recompute runs.
	jobs := make([]job, 0, max)
	for si := range c.shards {
		if len(jobs) == max {
			break
		}
		s := &c.shards[si]
		s.mu.Lock()
		for i := s.head; i != nilIdx && len(jobs) < max; i = s.slab[i].next {
			if e := &s.slab[i]; e.payload != nil {
				jobs = append(jobs, job{key: e.key, payload: e.payload})
			}
		}
		s.mu.Unlock()
	}
	n := 0
	for _, j := range jobs {
		if gate != nil && !gate() {
			break
		}
		// Epoch at compute start, not store time: see the method comment.
		epoch := c.Epoch()
		v, acc, ok := fn(j.key, j.payload)
		if !ok {
			continue
		}
		c.StoreAt(j.key, j.payload, v, acc, epoch)
		c.rewarms.Inc()
		n++
	}
	return n
}

func (c *Cache) refreshOne(key uint64) {
	if c.gate != nil && !c.gate() {
		// Overloaded: push the key back and let the pacing sleep retry
		// later. A full queue drops it; the next hit re-enqueues.
		select {
		case c.refreshCh <- key:
		default:
			c.clearQueued(key)
		}
		return
	}
	// Capture the epoch before recomputing: if the data is updated while
	// the refresh runs, the upgraded entry is born stale instead of
	// resurrecting a pre-update answer as current.
	epoch := c.Epoch()
	payload, ok := c.payloadOf(key)
	if !ok {
		// Evicted, stale, or payload-free since it was queued.
		c.clearQueued(key)
		return
	}
	v, acc, ok := c.refreshFn(key, payload)
	if !ok {
		c.clearQueued(key)
		return
	}
	c.StoreAt(key, payload, v, acc, epoch)
	c.refreshes.Inc()
}
