package rescache

import "time"

// RefreshFunc recomputes one cached answer at full accuracy. It
// receives the entry's key and the payload Store recorded for it (the
// canonical request), and returns the upgraded value with its accuracy
// bound; ok = false means the recomputation was not possible right now
// (shed by admission, data gone) and the entry is left as is — its next
// hit re-enqueues it.
type RefreshFunc func(key uint64, payload interface{}) (value interface{}, accuracy float64, ok bool)

// SetRefresh installs the background refresh-to-exact worker: hits on
// entries whose accuracy is below Config.RefreshBelow enqueue the key,
// and a single low-priority worker drains the queue at
// Config.RefreshInterval pace, overwriting each entry with fn's
// upgraded answer — the paper's "coarse first, refine later" applied
// to reuse. gate (optional) is consulted before each recomputation;
// returning false defers the key (it is requeued), so refresh yields
// while the service is overloaded and catches up when load drops.
//
// SetRefresh must be called at most once, before the cache serves
// traffic; Close stops the worker.
func (c *Cache) SetRefresh(fn RefreshFunc, gate func() bool) {
	if fn == nil {
		return
	}
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	if c.started {
		panic("rescache: SetRefresh called twice")
	}
	c.refreshFn = fn
	c.gate = gate
	c.refreshCh = make(chan uint64, c.cfg.RefreshQueue)
	c.workerDone = make(chan struct{})
	c.started = true
	go c.refreshLoop()
}

// refreshEnabled reports whether the refresh worker is installed. The
// channel field is written once under refreshMu before any traffic, so
// the unlocked read on the hit path is safe.
func (c *Cache) refreshEnabled() bool { return c.refreshCh != nil }

// refreshLoop is the low-priority worker: one refresh attempt per
// RefreshInterval, deferring while the gate is closed.
func (c *Cache) refreshLoop() {
	defer close(c.workerDone)
	for {
		select {
		case <-c.quit:
			return
		case key := <-c.refreshCh:
			c.refreshOne(key)
		}
		select {
		case <-c.quit:
			return
		case <-time.After(c.cfg.RefreshInterval):
		}
	}
}

func (c *Cache) refreshOne(key uint64) {
	if c.gate != nil && !c.gate() {
		// Overloaded: push the key back and let the pacing sleep retry
		// later. A full queue drops it; the next hit re-enqueues.
		select {
		case c.refreshCh <- key:
		default:
			c.clearQueued(key)
		}
		return
	}
	// Capture the epoch before recomputing: if the data is updated while
	// the refresh runs, the upgraded entry is born stale instead of
	// resurrecting a pre-update answer as current.
	epoch := c.Epoch()
	payload, ok := c.payloadOf(key)
	if !ok {
		// Evicted, stale, or payload-free since it was queued.
		c.clearQueued(key)
		return
	}
	v, acc, ok := c.refreshFn(key, payload)
	if !ok {
		c.clearQueued(key)
		return
	}
	c.StoreAt(key, payload, v, acc, epoch)
	c.refreshes.Inc()
}
