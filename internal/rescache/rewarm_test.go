package rescache

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestRewarmHotRecomputesStaleEntries: after an epoch bump the hot
// entries are stale; RewarmHot must recompute them through the refresh
// function and leave them serving at the new epoch.
func TestRewarmHotRecomputesStaleEntries(t *testing.T) {
	c := mustNew(t, Config{Capacity: 16, RefreshInterval: time.Hour})
	c.SetRefresh(func(key uint64, payload interface{}) (interface{}, float64, bool) {
		return fmt.Sprintf("fresh-%v", payload), 1, true
	}, nil)
	for k := uint64(1); k <= 4; k++ {
		c.Store(k, fmt.Sprintf("req%d", k), "old", 0.9)
	}
	// Key 9 has no payload: not re-warmable, must be skipped.
	c.Store(9, nil, "old", 0.9)

	c.BumpEpoch()
	if n := c.RewarmHot(8); n != 4 {
		t.Fatalf("RewarmHot re-warmed %d entries, want 4", n)
	}
	for k := uint64(1); k <= 4; k++ {
		v, acc, ok := c.Get(k, 0)
		if !ok || acc != 1 || v != fmt.Sprintf("fresh-req%d", k) {
			t.Fatalf("key %d after rewarm = %v %v %v", k, v, acc, ok)
		}
	}
	if _, _, ok := c.Get(9, 0); ok {
		t.Fatal("payload-free entry served after the bump")
	}
	if st := c.Stats(); st.Rewarms != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRewarmHotBounded: max bounds the recomputations, hottest first.
func TestRewarmHotBounded(t *testing.T) {
	c := mustNew(t, Config{Capacity: 16, Shards: 1, RefreshInterval: time.Hour})
	var calls atomic.Int64
	c.SetRefresh(func(key uint64, payload interface{}) (interface{}, float64, bool) {
		calls.Add(1)
		return "fresh", 1, true
	}, nil)
	for k := uint64(1); k <= 6; k++ {
		c.Store(k, "req", "old", 0.9)
	}
	c.Get(2, 0) // make key 2 the hottest
	c.BumpEpoch()
	if n := c.RewarmHot(2); n != 2 || calls.Load() != 2 {
		t.Fatalf("RewarmHot = %d (calls %d), want 2", n, calls.Load())
	}
	// The hottest key was re-warmed; the coldest was not.
	if _, _, ok := c.Get(2, 0); !ok {
		t.Fatal("hottest key not re-warmed")
	}
	if _, _, ok := c.Get(1, 0); ok {
		t.Fatal("coldest key re-warmed despite the bound")
	}
}

// TestRewarmEpochCaptureRegression is the mid-flight-swap regression
// test: a BumpEpoch that lands while a re-warm recomputation is running
// must leave the entry born stale — stamped with the epoch captured at
// compute start — so the pre-swap answer is never served as current.
func TestRewarmEpochCaptureRegression(t *testing.T) {
	c := mustNew(t, Config{Capacity: 8, RefreshInterval: time.Hour})
	inCompute := make(chan struct{})
	release := make(chan struct{})
	c.SetRefresh(func(key uint64, payload interface{}) (interface{}, float64, bool) {
		close(inCompute)
		<-release // the epoch bump lands here, mid-recompute
		return "computed-from-old-data", 1, true
	}, nil)
	c.Store(5, "req", "old", 0.9)
	c.BumpEpoch() // stale the entry; the rewarm below recomputes it

	done := make(chan int)
	go func() { done <- c.RewarmHot(1) }()
	<-inCompute
	c.BumpEpoch() // the data changed again while the recompute ran
	close(release)
	if n := <-done; n != 1 {
		t.Fatalf("RewarmHot = %d, want 1", n)
	}
	// The entry exists but is born stale: a lookup must miss instead of
	// serving the answer computed from pre-swap data.
	if v, _, ok := c.Get(5, 0); ok {
		t.Fatalf("born-stale rewarm served as current: %v", v)
	}
	if st := c.Stats(); st.Stale == 0 {
		t.Fatalf("stale discard not counted: %+v", st)
	}
}

// TestRefreshEpochCaptureRegression pins the same property on the
// background refresh worker: an epoch bump mid-recompute must leave the
// upgraded entry born stale.
func TestRefreshEpochCaptureRegression(t *testing.T) {
	c := mustNew(t, Config{Capacity: 8, RefreshBelow: 1, RefreshInterval: time.Millisecond})
	inCompute := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	c.SetRefresh(func(key uint64, payload interface{}) (interface{}, float64, bool) {
		if calls.Add(1) == 1 {
			close(inCompute)
			<-release
		}
		return "upgraded", 1, true
	}, nil)
	c.Store(7, "req", "coarse", 0.5)
	c.Get(7, 0) // enqueue the refresh
	<-inCompute
	c.BumpEpoch()
	close(release)

	// The refresh stores at the pre-bump epoch: the next lookup must
	// treat it as stale, not serve the pre-update answer at accuracy 1.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Refreshes >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if c.Stats().Refreshes < 1 {
		t.Fatal("refresh never completed")
	}
	if v, _, ok := c.Get(7, 0); ok {
		t.Fatalf("born-stale refresh served as current: %v", v)
	}
}

// TestRewarmHotGateYields: a closed gate stops the re-warm pass early
// (load first, freshness second).
func TestRewarmHotGateYields(t *testing.T) {
	c := mustNew(t, Config{Capacity: 8, RefreshInterval: time.Hour})
	var open atomic.Bool
	c.SetRefresh(func(uint64, interface{}) (interface{}, float64, bool) {
		return "fresh", 1, true
	}, func() bool { return open.Load() })
	c.Store(1, "req", "old", 0.9)
	c.BumpEpoch()
	if n := c.RewarmHot(4); n != 0 {
		t.Fatalf("RewarmHot ran %d recomputes through a closed gate", n)
	}
	open.Store(true)
	if n := c.RewarmHot(4); n != 1 {
		t.Fatalf("RewarmHot = %d after the gate opened, want 1", n)
	}
}
