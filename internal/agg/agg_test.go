package agg

import (
	"bytes"
	"math"
	"testing"

	"accuracytrader/internal/core"
	"accuracytrader/internal/stats"
)

func buildTestComponent(t *testing.T, seed uint64, keys, rows int) *Component {
	t.Helper()
	rng := stats.NewRNG(seed)
	c, err := BuildComponent(randomTable(rng, keys, rows), Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSynopsisShape(t *testing.T) {
	c := buildTestComponent(t, 3, 16, 900)
	syn := c.Syn
	if err := syn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if syn.NumStrata() != 16 {
		t.Fatalf("strata = %d", syn.NumStrata())
	}
	if syn.Levels() != 4 {
		t.Fatalf("levels = %d", syn.Levels())
	}
	// Strata partition the rows.
	total := 0
	for g := 0; g < syn.NumStrata(); g++ {
		total += syn.StratumSize(g)
	}
	if total != c.T.NumRows() {
		t.Fatalf("strata cover %d of %d rows", total, c.T.NumRows())
	}
	// Sample units grow strictly with the ladder level, and the finest
	// level still samples (much) less than the full shard.
	for l := 1; l < syn.Levels(); l++ {
		if syn.SampleUnits(l) <= syn.SampleUnits(l-1) {
			t.Fatalf("sample units not increasing: level %d %d vs %d",
				l, syn.SampleUnits(l), syn.SampleUnits(l-1))
		}
	}
	if c.SynopsisSize() >= c.T.NumRows() {
		t.Fatalf("finest synopsis (%d) not smaller than shard (%d)", c.SynopsisSize(), c.T.NumRows())
	}
	// The rarest non-empty stratum keeps at least MinSample rows (or all
	// of them) at the coarsest level — the stratified-sampling guarantee.
	for g := 0; g < syn.NumStrata(); g++ {
		n, N := syn.SampleLen(0, g), syn.StratumSize(g)
		if N == 0 {
			continue
		}
		if n < 4 && n != N {
			t.Fatalf("stratum %d sampled %d of %d at coarsest level", g, n, N)
		}
	}
}

func TestConfigRateNormalization(t *testing.T) {
	cfg := Config{Rates: []float64{0.5, -1, 0.1, 0.5, 2}}.withDefaults()
	if len(cfg.Rates) != 2 || cfg.Rates[0] != 0.1 || cfg.Rates[1] != 0.5 {
		t.Fatalf("rates = %v", cfg.Rates)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	c := buildTestComponent(t, 11, 12, 600)
	var buf bytes.Buffer
	if err := c.Syn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2 := &Component{T: c.T, Syn: loaded}
	q := Query{Op: Sum, Lo: 1, Hi: 20}
	a := NewEngine(c, q, 1)
	b := NewEngine(c2, q, 1)
	a.ProcessSynopsis()
	b.ProcessSynopsis()
	for k := range a.res.Sum {
		if a.res.Sum[k] != b.res.Sum[k] || a.res.SumVar[k] != b.res.SumVar[k] {
			t.Fatalf("loaded synopsis diverges at key %d", k)
		}
	}
}

func TestLoadRejectsCorruptImage(t *testing.T) {
	corruptions := map[string]func(s *Synopsis){
		"duplicate row":    func(s *Synopsis) { s.rows[0] = s.rows[1] },
		"no ladder levels": func(s *Synopsis) { s.lens = nil },
		"sample below variance floor": func(s *Synopsis) {
			for g := range s.lens[0] {
				if s.StratumSize(g) > 2 {
					for l := range s.lens {
						s.lens[l][g] = 1 // partial 1-row sample: n-1 == 0
					}
					return
				}
			}
		},
		"empty sample of non-empty stratum": func(s *Synopsis) {
			for g := range s.lens[0] {
				if s.StratumSize(g) > 0 {
					for l := range s.lens {
						s.lens[l][g] = 0
					}
					return
				}
			}
		},
	}
	for name, corrupt := range corruptions {
		c := buildTestComponent(t, 13, 8, 300)
		corrupt(c.Syn)
		var buf bytes.Buffer
		if err := c.Syn.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSynopsis(&buf); err == nil {
			t.Fatalf("%s: corrupt image loaded without error", name)
		}
	}
}

// TestBoundsCoverExactAnswer checks the 95% CLT bounds are calibrated:
// across many strata and queries, the exact per-key SUM/COUNT falls
// inside estimate ± bound clearly more often than a broken bound would
// allow (the normal approximation on skewed lognormal strata is not
// exact, so the assertion uses 85%, not 95%).
func TestBoundsCoverExactAnswer(t *testing.T) {
	c := buildTestComponent(t, 17, 20, 4000)
	rng := stats.NewRNG(99)
	in, total := 0, 0
	for trial := 0; trial < 40; trial++ {
		q := randomQuery(rng)
		if q.Op == Avg {
			q.Op = Sum // AVG's delta bound is conservative by construction
		}
		e := NewEngine(c, q, 1)
		e.ProcessSynopsis()
		exact := ExactResult(c, q)
		for k := range exact.Sum {
			if c.Syn.StratumSize(k) == 0 || e.res.Bound(q.Op, k) == 0 {
				continue
			}
			total++
			if math.Abs(e.res.Estimate(q.Op, k)-exact.Estimate(q.Op, k)) <= e.res.Bound(q.Op, k) {
				in++
			}
		}
	}
	if total < 100 {
		t.Fatalf("only %d bounded estimates exercised", total)
	}
	if frac := float64(in) / float64(total); frac < 0.85 {
		t.Fatalf("bounds cover only %.1f%% of exact answers", 100*frac)
	}
}

// TestAccuracyImprovesWithLevel is the ladder's reason to exist:
// finer sampling rates must deliver higher mean accuracy.
func TestAccuracyImprovesWithLevel(t *testing.T) {
	c := buildTestComponent(t, 23, 16, 3000)
	rng := stats.NewRNG(5)
	queries := make([]Query, 40)
	for i := range queries {
		queries[i] = randomQuery(rng)
	}
	comps := []*Component{c}
	prev := -1.0
	for l := 0; l < c.Syn.Levels(); l++ {
		acc := MeasureLevelAccuracy(comps, queries, l)
		if acc <= prev {
			t.Fatalf("level %d accuracy %v not above level %d's %v", l, acc, l-1, prev)
		}
		prev = acc
	}
	if prev < 0.9 {
		t.Fatalf("finest level accuracy %v too low", prev)
	}
}

// TestImprovementMonotone runs Algorithm 1 through internal/core and
// checks accuracy never suffers from processing more ranked sets, and
// that the full budget reaches the exact answer.
func TestImprovementMonotone(t *testing.T) {
	c := buildTestComponent(t, 29, 12, 1500)
	rng := stats.NewRNG(8)
	var est, exactEst []float64
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(rng)
		exact := ExactResult(c, q)
		exactEst = exact.EstimatesInto(exactEst, q.Op)
		prev := -1.0
		for _, budget := range []int{0, c.Syn.NumStrata() / 2, c.Syn.NumStrata()} {
			e := GetEngine(c, q, 0)
			trace := core.Run(e, core.BudgetContinue(budget), 0)
			if trace.SetsProcessed != budget {
				t.Fatalf("trial %d: processed %d of budget %d", trial, trace.SetsProcessed, budget)
			}
			est = e.Result().EstimatesInto(est, q.Op)
			acc := Accuracy(est, exactEst)
			// Fuzz tolerance: an individual stratum estimate can get
			// lucky, but the ranked order must never lose accuracy
			// materially, and more budget must help overall.
			if acc < prev-1e-9 {
				t.Fatalf("trial %d: accuracy fell from %v to %v at budget %d", trial, prev, acc, budget)
			}
			prev = acc
			e.Release()
		}
		if math.Abs(prev-1) > 1e-12 {
			t.Fatalf("trial %d: full improvement accuracy %v != 1", trial, prev)
		}
	}
}

func TestRelativeErrorEdgeCases(t *testing.T) {
	cases := []struct {
		a, e, want float64
	}{
		{0, 0, 0},
		{5, 0, 1},
		{0, 5, 1},
		{4, 5, 0.2},
		{500, 5, 1}, // capped
	}
	for _, tc := range cases {
		if got := relErr(tc.a, tc.e); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("relErr(%v,%v) = %v, want %v", tc.a, tc.e, got, tc.want)
		}
	}
	if acc := Accuracy([]float64{1, 2}, []float64{1, 2}); acc != 1 {
		t.Fatalf("exact match accuracy %v", acc)
	}
}

func TestResultMergeAcrossShards(t *testing.T) {
	a := buildTestComponent(t, 41, 10, 800)
	b := buildTestComponent(t, 42, 10, 800)
	q := Query{Op: Sum, Lo: 0, Hi: math.Inf(1)}
	merged := NewResult(10)
	for _, c := range []*Component{a, b} {
		e := GetEngine(c, q, c.Syn.Levels()-1)
		e.ProcessSynopsis()
		merged.Merge(e.Result())
		e.Release()
	}
	exact := NewResult(10)
	exact.Merge(ExactResult(a, q))
	exact.Merge(ExactResult(b, q))
	acc := Accuracy(merged.Estimates(q.Op), exact.Estimates(q.Op))
	if acc < 0.85 {
		t.Fatalf("merged shard accuracy %v", acc)
	}
}

func TestEngineLevelClamping(t *testing.T) {
	c := buildTestComponent(t, 51, 8, 400)
	lo := NewEngine(c, Query{Op: Count, Lo: 0, Hi: 100}, -5)
	hi := NewEngine(c, Query{Op: Count, Lo: 0, Hi: 100}, 99)
	if lo.Level != 0 || hi.Level != c.Syn.Levels()-1 {
		t.Fatalf("levels clamped to %d/%d", lo.Level, hi.Level)
	}
}

func TestEmptyTableRejected(t *testing.T) {
	if _, err := BuildSynopsis(NewTable(4), Config{}); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestMergeRejectsKeyDomainMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Merge did not panic")
		}
	}()
	NewResult(4).Merge(NewResult(6))
}

func TestEstimatesIntoReusesBuffer(t *testing.T) {
	r := Result{Sum: []float64{4, 6}, Cnt: []float64{2, 0}, SumVar: []float64{0, 0}, CntVar: []float64{0, 0}}
	buf := make([]float64, 0, 8)
	got := r.EstimatesInto(buf, Avg)
	if got[0] != 2 || got[1] != 0 {
		t.Fatalf("avg estimates = %v", got)
	}
	if cap(got) != cap(buf) {
		t.Fatal("buffer not reused")
	}
	bounds := r.BoundsInto(buf[:0], Sum)
	if len(bounds) != 2 || bounds[0] != 0 {
		t.Fatalf("bounds = %v", bounds)
	}
}
