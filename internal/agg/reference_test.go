package agg

// Reference (naive) implementations of the aggregation engine, retained
// as test-only helpers: the property tests assert the pooled,
// buffer-reusing engine is bit-identical to simple allocation-heavy
// semantics on randomized tables and queries, so the fast path cannot
// silently diverge.

import (
	"fmt"
	"math"
	"testing"

	"accuracytrader/internal/stats"
)

// naiveAnswer is the reference result: per-key maps instead of dense
// arrays, freshly allocated per query.
type naiveAnswer struct {
	sum, cnt, sumVar, cntVar map[int]float64
}

func newNaiveAnswer() *naiveAnswer {
	return &naiveAnswer{
		sum:    map[int]float64{},
		cnt:    map[int]float64{},
		sumVar: map[int]float64{},
		cntVar: map[int]float64{},
	}
}

// naiveStratum computes one stratum's sample estimate with the plain
// textbook formulas, mirroring the optimized kernel's operation order
// so accumulators stay bit-identical.
func (na *naiveAnswer) naiveStratum(t *Table, q Query, sample []int32, N float64, key int) {
	n := float64(len(sample))
	sy, syy, sb := 0.0, 0.0, 0.0
	for _, row := range sample {
		v := t.Value(int(row))
		if q.Lo <= v && v < q.Hi {
			sy += v
			syy += v * v
			sb++
		}
	}
	scale := N / n
	na.sum[key] = scale * sy
	na.cnt[key] = scale * sb
	if n >= N {
		na.sumVar[key] = 0
		na.cntVar[key] = 0
		return
	}
	fpc := 1 - n/N
	s2y := (syy - sy*sy/n) / (n - 1)
	if s2y < 0 {
		s2y = 0
	}
	s2b := (sb - sb*sb/n) / (n - 1)
	if s2b < 0 {
		s2b = 0
	}
	na.sumVar[key] = N * N * s2y / n * fpc
	na.cntVar[key] = N * N * s2b / n * fpc
}

// naiveExactStratum replaces one stratum with its exact scan.
func (na *naiveAnswer) naiveExactStratum(t *Table, q Query, rows []int32, key int) {
	sum, cnt := 0.0, 0.0
	for _, row := range rows {
		v := t.Value(int(row))
		if q.Lo <= v && v < q.Hi {
			sum += v
			cnt++
		}
	}
	na.sum[key] = sum
	na.cnt[key] = cnt
	na.sumVar[key] = 0
	na.cntVar[key] = 0
}

// naiveSynopsisAnswer runs the synopsis stage of Algorithm 1 naively.
func naiveSynopsisAnswer(c *Component, q Query, level int) *naiveAnswer {
	na := newNaiveAnswer()
	for g := 0; g < c.Syn.NumStrata(); g++ {
		N := float64(c.Syn.StratumSize(g))
		if N == 0 {
			continue
		}
		na.naiveStratum(c.T, q, c.Syn.sample(level, g), N, g)
	}
	return na
}

// checkAgainstNaive asserts the engine result equals the naive maps
// bit for bit.
func checkAgainstNaive(t *testing.T, res Result, na *naiveAnswer, ctx string) {
	t.Helper()
	for k := range res.Sum {
		if res.Sum[k] != na.sum[k] || res.Cnt[k] != na.cnt[k] ||
			res.SumVar[k] != na.sumVar[k] || res.CntVar[k] != na.cntVar[k] {
			t.Fatalf("%s: key %d got (%v,%v,%v,%v) want (%v,%v,%v,%v)", ctx, k,
				res.Sum[k], res.Cnt[k], res.SumVar[k], res.CntVar[k],
				na.sum[k], na.cnt[k], na.sumVar[k], na.cntVar[k])
		}
	}
}

// randomTable builds a Zipf-skewed fact table: most rows land on a few
// hot keys, some keys stay rare or empty.
func randomTable(rng *stats.RNG, keys, rows int) *Table {
	t := NewTable(keys)
	z := stats.NewZipf(rng, keys, 1.1)
	for i := 0; i < rows; i++ {
		t.Append(int32(z.Draw()), rng.LogNormal(1, 0.7))
	}
	return t
}

// randomQuery draws an op and a value window of moderate selectivity.
func randomQuery(rng *stats.RNG) Query {
	lo := rng.LogNormal(0.2, 0.5)
	return Query{
		Op: Op(rng.Intn(3)),
		Lo: lo,
		Hi: lo + rng.LogNormal(1.5, 0.5),
	}
}

// TestEngineMatchesNaiveReference pins the pooled engine bit-identical
// to the naive reference on randomized seeds: after ProcessSynopsis at
// every ladder level, and after each ranked ProcessSet improvement.
func TestEngineMatchesNaiveReference(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		rng := stats.NewRNG(seed)
		tab := randomTable(rng, 5+rng.Intn(16), 200+rng.Intn(600))
		c, err := BuildComponent(tab, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			q := randomQuery(rng)
			level := rng.Intn(c.Syn.Levels())
			e := GetEngine(c, q, level)
			corr := e.ProcessSynopsis()
			na := naiveSynopsisAnswer(c, q, level)
			checkAgainstNaive(t, e.Result(), na,
				fmt.Sprintf("seed %d trial %d level %d synopsis", seed, trial, level))
			// Correlations must equal the naive per-stratum bounds.
			for g := range corr {
				want := 0.0
				if c.Syn.StratumSize(g) > 0 {
					want = naiveBound(na, q.Op, g)
				}
				if corr[g] != want {
					t.Fatalf("seed %d trial %d: corr[%d] = %v, naive %v", seed, trial, g, corr[g], want)
				}
			}
			// Improve sets in ranked order, checking after each.
			for i, g := range rankDesc(corr) {
				e.ProcessSet(g)
				na.naiveExactStratum(c.T, q, c.Syn.stratumRows(g), g)
				checkAgainstNaive(t, e.Result(), na,
					fmt.Sprintf("seed %d trial %d after set %d", seed, trial, i))
			}
			e.Release()
		}
	}
}

// naiveBound mirrors Result.Bound over the naive maps.
func naiveBound(na *naiveAnswer, op Op, k int) float64 {
	switch op {
	case Sum:
		return zCI * math.Sqrt(na.sumVar[k])
	case Count:
		return zCI * math.Sqrt(na.cntVar[k])
	default:
		if na.cnt[k] <= 0 {
			return 0
		}
		est := na.sum[k] / na.cnt[k]
		return (zCI*math.Sqrt(na.sumVar[k]) + math.Abs(est)*zCI*math.Sqrt(na.cntVar[k])) / na.cnt[k]
	}
}

// rankDesc is a simple descending-correlation ordering (ties toward the
// lower id), independent of core.Rank.
func rankDesc(corr []float64) []int {
	ids := make([]int, len(corr))
	for i := range ids {
		ids[i] = i
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if corr[ids[j]] > corr[ids[i]] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	return ids
}

// TestEngineResetReuseMatchesFresh checks a pooled/reset engine
// produces bit-identical results to a fresh engine across varying
// queries and levels.
func TestEngineResetReuseMatchesFresh(t *testing.T) {
	rng := stats.NewRNG(31)
	tab := randomTable(rng, 12, 500)
	c, err := BuildComponent(tab, Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	reused := GetEngine(c, Query{}, 0)
	defer reused.Release()
	for trial := 0; trial < 15; trial++ {
		q := randomQuery(rng)
		level := rng.Intn(c.Syn.Levels())
		fresh := NewEngine(c, q, level)
		reused.Reset(c, q, level)
		fresh.ProcessSynopsis()
		reused.ProcessSynopsis()
		for g := 0; g < c.Syn.NumStrata(); g += 2 {
			fresh.ProcessSet(g)
			reused.ProcessSet(g)
		}
		for k := range fresh.res.Sum {
			if fresh.res.Sum[k] != reused.res.Sum[k] || fresh.res.SumVar[k] != reused.res.SumVar[k] ||
				fresh.res.Cnt[k] != reused.res.Cnt[k] || fresh.res.CntVar[k] != reused.res.CntVar[k] {
				t.Fatalf("trial %d key %d: reused diverges from fresh", trial, k)
			}
		}
	}
}

// TestFullyImprovedMatchesExact checks that processing every set turns
// the approximate result into the exact one, bit for bit.
func TestFullyImprovedMatchesExact(t *testing.T) {
	rng := stats.NewRNG(7)
	tab := randomTable(rng, 10, 400)
	c, err := BuildComponent(tab, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var reused Result
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(rng)
		e := NewEngine(c, q, 0)
		e.ProcessSynopsis()
		for g := 0; g < c.Syn.NumStrata(); g++ {
			e.ProcessSet(g)
		}
		want := ExactResult(c, q)
		reused = ExactResultInto(reused, c, q)
		for k := range want.Sum {
			if e.res.Sum[k] != want.Sum[k] || e.res.Cnt[k] != want.Cnt[k] {
				t.Fatalf("trial %d key %d: improved (%v,%v) exact (%v,%v)",
					trial, k, e.res.Sum[k], e.res.Cnt[k], want.Sum[k], want.Cnt[k])
			}
			if e.res.SumVar[k] != 0 || e.res.CntVar[k] != 0 {
				t.Fatalf("trial %d key %d: nonzero variance after full improvement", trial, k)
			}
			if reused.Sum[k] != want.Sum[k] || reused.Cnt[k] != want.Cnt[k] {
				t.Fatalf("trial %d key %d: ExactResultInto diverges from ExactResult", trial, k)
			}
		}
	}
}
