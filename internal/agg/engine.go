package agg

import (
	"math"
	"sync"
)

// Op selects the aggregate of a Query.
type Op int

// The supported per-group aggregates.
const (
	Sum Op = iota
	Count
	Avg
)

// String returns the SQL-ish name of the aggregate.
func (o Op) String() string {
	switch o {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	default:
		return "AVG"
	}
}

// Query is one aggregation request: Op(value) GROUP BY key over the
// rows whose value falls in the half-open filter window [Lo, Hi) —
// the WHERE clause that makes every estimate genuinely sample-based.
type Query struct {
	Op     Op
	Lo, Hi float64
}

// selects reports whether the query's filter keeps a row value.
func (q Query) selects(v float64) bool { return q.Lo <= v && v < q.Hi }

// zCI is the 95% normal quantile used for the CLT confidence bounds.
const zCI = 1.96

// Result is a component's partial answer: per group key, the estimated
// filtered SUM and COUNT plus the variances of those estimators.
// Partial results from many components merge by addition (sums and
// counts add; variances add because shards are sampled independently),
// so the composer combines exact, approximate and skipped components
// uniformly — the same merge contract as cf.Result.
type Result struct {
	Sum    []float64
	Cnt    []float64
	SumVar []float64
	CntVar []float64
}

// NewResult returns a zeroed result over n group keys.
func NewResult(n int) Result {
	return Result{
		Sum:    make([]float64, n),
		Cnt:    make([]float64, n),
		SumVar: make([]float64, n),
		CntVar: make([]float64, n),
	}
}

// Reset re-zeroes the result for n keys, reusing the buffers when
// capacity allows, and returns the (possibly re-anchored) result.
func (r Result) Reset(n int) Result {
	if cap(r.Sum) < n {
		return NewResult(n)
	}
	r.Sum, r.Cnt = r.Sum[:n], r.Cnt[:n]
	r.SumVar, r.CntVar = r.SumVar[:n], r.CntVar[:n]
	clear(r.Sum)
	clear(r.Cnt)
	clear(r.SumVar)
	clear(r.CntVar)
	return r
}

// Merge adds other into r. Both results must cover the same key
// domain; merging shards built over different NumKeys is a caller bug
// surfaced here instead of as silently dropped keys.
func (r Result) Merge(other Result) {
	if len(r.Sum) != len(other.Sum) {
		panic("agg: Merge key-domain mismatch")
	}
	for i := range r.Sum {
		r.Sum[i] += other.Sum[i]
		r.Cnt[i] += other.Cnt[i]
		r.SumVar[i] += other.SumVar[i]
		r.CntVar[i] += other.CntVar[i]
	}
}

// Estimate returns the point estimate of op for group key k. AVG of an
// empty group is 0 (both for exact and approximate answers, so the two
// stay comparable).
func (r Result) Estimate(op Op, k int) float64 {
	switch op {
	case Sum:
		return r.Sum[k]
	case Count:
		return r.Cnt[k]
	default:
		if r.Cnt[k] <= 0 {
			return 0
		}
		return r.Sum[k] / r.Cnt[k]
	}
}

// Bound returns the 95% CLT confidence half-width of the op estimate
// for group key k. SUM and COUNT bounds are exact normal-approximation
// half-widths; the AVG bound is the first-order (delta-method,
// triangle-inequality) linearization
//
//	(z·σ_sum + |avg|·z·σ_cnt) / count,
//
// which is conservative. Exactly processed strata have zero variance,
// so bounds shrink as Algorithm 1 improves the result.
func (r Result) Bound(op Op, k int) float64 {
	switch op {
	case Sum:
		return zCI * math.Sqrt(r.SumVar[k])
	case Count:
		return zCI * math.Sqrt(r.CntVar[k])
	default:
		if r.Cnt[k] <= 0 {
			return 0
		}
		est := r.Sum[k] / r.Cnt[k]
		return (zCI*math.Sqrt(r.SumVar[k]) + math.Abs(est)*zCI*math.Sqrt(r.CntVar[k])) / r.Cnt[k]
	}
}

// Estimates returns the per-key point estimates of op. The slice is
// freshly allocated; hot paths should use EstimatesInto.
func (r Result) Estimates(op Op) []float64 { return r.EstimatesInto(nil, op) }

// EstimatesInto writes the per-key estimates into dst (reused when
// capacity allows, truncated first) and returns it.
func (r Result) EstimatesInto(dst []float64, op Op) []float64 {
	dst = dst[:0]
	for k := range r.Sum {
		dst = append(dst, r.Estimate(op, k))
	}
	return dst
}

// Bounds returns the per-key 95% confidence half-widths of op. The
// slice is freshly allocated; hot paths should use BoundsInto.
func (r Result) Bounds(op Op) []float64 { return r.BoundsInto(nil, op) }

// BoundsInto writes the per-key confidence half-widths into dst (reused
// when capacity allows, truncated first) and returns it.
func (r Result) BoundsInto(dst []float64, op Op) []float64 {
	dst = dst[:0]
	for k := range r.Sum {
		dst = append(dst, r.Bound(op, k))
	}
	return dst
}

// Engine runs Algorithm 1 for one aggregation query on one component.
// It implements core.Engine: ProcessSynopsis estimates every stratum
// from its ladder-level sample and returns the per-stratum error
// contributions as correlations; ProcessSet replaces one stratum's
// estimate with an exact scan of its rows.
type Engine struct {
	Comp  *Component
	Q     Query
	Level int // ladder level served (coarse 0 … Levels-1)

	res  Result
	corr []float64
	done []bool
}

// NewEngine prepares an engine for a query at a ladder level.
func NewEngine(c *Component, q Query, level int) *Engine {
	e := &Engine{}
	e.Reset(c, q, level)
	return e
}

// Reset re-targets the engine at a component, query and ladder level,
// reusing all internal buffers. It makes engines poolable across
// requests.
func (e *Engine) Reset(c *Component, q Query, level int) {
	e.Comp, e.Q = c, q
	e.Level = c.Syn.clampLevel(level)
	e.res = e.res.Reset(c.T.NumKeys())
	n := c.Syn.NumStrata()
	if cap(e.corr) < n {
		e.corr = make([]float64, n)
		e.done = make([]bool, n)
	} else {
		e.corr = e.corr[:n]
		e.done = e.done[:n]
		clear(e.done)
	}
}

// enginePool recycles Engines across requests (see GetEngine).
var enginePool = sync.Pool{New: func() any { return new(Engine) }}

// GetEngine returns a pooled engine reset for the query. Release it
// with Engine.Release when the request is finished.
func GetEngine(c *Component, q Query, level int) *Engine {
	e := enginePool.Get().(*Engine)
	e.Reset(c, q, level)
	return e
}

// Release returns the engine to the pool. The engine, its Result and
// any slice obtained from ProcessSynopsis must not be used afterwards.
func (e *Engine) Release() {
	e.Comp = nil
	e.Q = Query{}
	enginePool.Put(e)
}

// ProcessSynopsis estimates every stratum from its ladder-level sample
// (Horvitz-Thompson scaling N/n with finite-population-corrected CLT
// variances) and returns the per-stratum error contributions — the
// requested aggregate's CI half-width — as the correlation estimates.
// The returned slice is owned by the engine and valid until the next
// Reset or Release.
func (e *Engine) ProcessSynopsis() []float64 {
	syn := e.Comp.Syn
	for g := 0; g < syn.NumStrata(); g++ {
		N := float64(syn.StratumSize(g))
		if N == 0 {
			e.corr[g] = 0
			continue
		}
		sum, cnt, sumVar, cntVar := stratumEstimate(e.Comp.T, e.Q, syn.sample(e.Level, g), N)
		e.res.Sum[g] = sum
		e.res.Cnt[g] = cnt
		e.res.SumVar[g] = sumVar
		e.res.CntVar[g] = cntVar
		e.corr[g] = e.res.Bound(e.Q.Op, g)
	}
	return e.corr
}

// stratumEstimate computes one stratum's scaled SUM/COUNT estimates and
// estimator variances from its sampled rows. A fully sampled stratum
// (n == N) is exact: scale 1, variance 0. For n < N the variances use
// the standard stratified-sampling form N²·s²/n·(1−n/N) with the
// (n−1)-denominator sample variance; n ≥ 2 whenever n < N because the
// per-stratum sample floor is at least 2.
func stratumEstimate(t *Table, q Query, sample []int32, N float64) (sum, cnt, sumVar, cntVar float64) {
	n := float64(len(sample))
	var sy, syy, sb float64
	for _, row := range sample {
		v := t.vals[row]
		if q.selects(v) {
			sy += v
			syy += v * v
			sb++
		}
	}
	scale := N / n
	sum = scale * sy
	cnt = scale * sb
	if n >= N {
		return sum, cnt, 0, 0
	}
	fpc := 1 - n/N
	s2y := (syy - sy*sy/n) / (n - 1)
	if s2y < 0 { // float cancellation on near-constant samples
		s2y = 0
	}
	s2b := (sb - sb*sb/n) / (n - 1)
	if s2b < 0 {
		s2b = 0
	}
	sumVar = N * N * s2y / n * fpc
	cntVar = N * N * s2b / n * fpc
	return sum, cnt, sumVar, cntVar
}

// ProcessSet improves the result with stratum g's original rows: the
// sample-based estimate is replaced by an exact scan (Algorithm 1 line
// 7). Strata map 1:1 onto group keys, so replacement is exact — no
// floating-point retraction residue.
func (e *Engine) ProcessSet(g int) {
	if e.done[g] {
		return
	}
	e.done[g] = true
	sum, cnt := exactStratum(e.Comp.T, e.Q, e.Comp.Syn.stratumRows(g))
	e.res.Sum[g] = sum
	e.res.Cnt[g] = cnt
	e.res.SumVar[g] = 0
	e.res.CntVar[g] = 0
}

// exactStratum scans a stratum's rows exactly.
func exactStratum(t *Table, q Query, rows []int32) (sum, cnt float64) {
	for _, row := range rows {
		v := t.vals[row]
		if q.selects(v) {
			sum += v
			cnt++
		}
	}
	return sum, cnt
}

// Result returns the current partial result. It aliases the engine's
// accumulators: for a pooled engine, copy it or use TakeResult before
// Release.
func (e *Engine) Result() Result { return e.res }

// TakeResult returns the current partial result and detaches it from
// the engine, so it stays valid after Release.
func (e *Engine) TakeResult() Result {
	r := e.res
	e.res = Result{}
	return r
}

// ExactResult computes the component's exact partial answer: every row
// is scanned — the paper's "full computation over the entire input
// data" baseline. Scanning goes stratum by stratum in the synopsis's
// stored row order, so fully improving an engine yields bit-identical
// accumulators.
func ExactResult(c *Component, q Query) Result {
	return ExactResultInto(Result{}, c, q)
}

// ExactResultInto is ExactResult accumulating into res's reused buffers
// (re-zeroed first); it returns the (possibly re-anchored) result.
func ExactResultInto(res Result, c *Component, q Query) Result {
	res = res.Reset(c.T.NumKeys())
	for g := 0; g < c.Syn.NumStrata(); g++ {
		sum, cnt := exactStratum(c.T, q, c.Syn.stratumRows(g))
		res.Sum[g] = sum
		res.Cnt[g] = cnt
	}
	return res
}

// MeanRelativeError is the error half of the aggregation accuracy
// metric: the mean over group keys of the relative error of approx
// against exact, where each key's error is |a−e|/|e| capped at 1, 0
// when both are zero, and 1 when only the exact answer is zero. The
// cap keeps accuracy in [0,1] even for wildly wrong estimates.
func MeanRelativeError(approx, exact []float64) float64 {
	if len(approx) != len(exact) {
		panic("agg: MeanRelativeError length mismatch")
	}
	if len(exact) == 0 {
		return 0
	}
	total := 0.0
	for i := range exact {
		total += relErr(approx[i], exact[i])
	}
	return total / float64(len(exact))
}

func relErr(a, e float64) float64 {
	if a == e {
		return 0
	}
	if e == 0 {
		return 1
	}
	err := math.Abs(a-e) / math.Abs(e)
	if err > 1 {
		return 1
	}
	return err
}

// Accuracy is 1 − MeanRelativeError — the aggregation application's
// accuracy metric (the analogue of the recommender's RMSE-based
// accuracy and the search engine's top-k overlap).
func Accuracy(approx, exact []float64) float64 {
	return 1 - MeanRelativeError(approx, exact)
}

// MeasureLevelAccuracy calibrates one ladder level: it replays the
// queries synopsis-only (no set improvement) across all components,
// merges the partial results, and returns the mean accuracy against
// the exact merged answers. The per-level values feed the frontend
// degradation controller's LevelAccuracy — the bridge that lets
// Bounded{MinAccuracy} SLO classes map onto real measured error.
func MeasureLevelAccuracy(comps []*Component, queries []Query, level int) float64 {
	if len(comps) == 0 || len(queries) == 0 {
		return 0
	}
	nKeys := comps[0].T.NumKeys()
	approx := NewResult(nKeys)
	exact := NewResult(nKeys)
	var estA, estE []float64
	var scratch Result
	total := 0.0
	for _, q := range queries {
		approx = approx.Reset(nKeys)
		exact = exact.Reset(nKeys)
		for _, c := range comps {
			e := GetEngine(c, q, level)
			e.ProcessSynopsis()
			approx.Merge(e.Result())
			e.Release()
			scratch = ExactResultInto(scratch, c, q)
			exact.Merge(scratch)
		}
		estA = approx.EstimatesInto(estA, q.Op)
		estE = exact.EstimatesInto(estE, q.Op)
		total += Accuracy(estA, estE)
	}
	return total / float64(len(queries))
}
