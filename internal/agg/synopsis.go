package agg

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"slices"

	"accuracytrader/internal/stats"
)

// Config controls offline synopsis creation for the aggregation
// application.
type Config struct {
	// Rates are the ladder's sampling rates in (0,1], coarse to fine.
	// They are sorted ascending and deduplicated. Default:
	// 0.02, 0.05, 0.12, 0.30.
	Rates []float64
	// MinSample is the per-stratum sample-size floor (default 4): even
	// the rarest group key keeps enough sampled rows for a CLT estimate
	// — the stratified-sampling guarantee that uniform sampling lacks.
	MinSample int
	// Seed drives the per-stratum shuffles; creation is deterministic
	// for a given (table, config).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if len(c.Rates) == 0 {
		c.Rates = []float64{0.02, 0.05, 0.12, 0.30}
	}
	rates := make([]float64, 0, len(c.Rates))
	for _, r := range c.Rates {
		if r > 0 && r <= 1 {
			rates = append(rates, r)
		}
	}
	slices.Sort(rates)
	rates = slices.Compact(rates)
	c.Rates = rates
	if c.MinSample < 2 {
		c.MinSample = 4
	}
	return c
}

// Synopsis is the offline product for one fact-table shard: the strata
// (index file: one member set per group key) and the multi-resolution
// sample ladder. Samples are nested — each stratum's rows are shuffled
// once and level l reads the prefix of length rate_l — so a finer level
// strictly extends a coarser one and the ladder costs one permutation,
// not one copy per level.
type Synopsis struct {
	cfg  Config
	rows []int32   // row ids, stratum-major, shuffled within each stratum
	off  []int32   // stratum s owns rows[off[s]:off[s+1]]; len = strata+1
	lens [][]int32 // lens[level][s] = sample length of stratum s at level
}

// BuildSynopsis creates the stratified-sample ladder for a table. It is
// the aggregation application's offline synopsis-management step: the
// strata play the role of the R-tree groups (grouping rows that are
// "similar" in the only dimension GROUP-BY queries care about — their
// key), and the sample prefixes play the role of aggregated points.
func BuildSynopsis(t *Table, cfg Config) (*Synopsis, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("agg: no valid sampling rates")
	}
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("agg: empty fact table")
	}
	nStrata := t.NumKeys()
	// Counting sort of row ids into stratum-major CSR order.
	counts := make([]int32, nStrata)
	for _, k := range t.keys {
		counts[k]++
	}
	off := make([]int32, nStrata+1)
	for s := 0; s < nStrata; s++ {
		off[s+1] = off[s] + counts[s]
	}
	next := append([]int32(nil), off[:nStrata]...)
	rows := make([]int32, t.NumRows())
	for i, k := range t.keys {
		rows[next[k]] = int32(i)
		next[k]++
	}
	syn := &Synopsis{cfg: cfg, rows: rows, off: off}
	rng := stats.NewRNG(cfg.Seed ^ 0xa66a66)
	for s := 0; s < nStrata; s++ {
		part := rows[off[s]:off[s+1]]
		srng := rng.Split(uint64(s) + 1)
		srng.Shuffle(len(part), func(i, j int) { part[i], part[j] = part[j], part[i] })
	}
	for _, rate := range cfg.Rates {
		lv := make([]int32, nStrata)
		for s := 0; s < nStrata; s++ {
			n := int32(math.Ceil(rate * float64(counts[s])))
			if n < int32(cfg.MinSample) {
				n = int32(cfg.MinSample)
			}
			if n > counts[s] {
				n = counts[s]
			}
			lv[s] = n
		}
		syn.lens = append(syn.lens, lv)
	}
	return syn, nil
}

// Levels returns the ladder depth (number of sampling rates).
func (s *Synopsis) Levels() int { return len(s.lens) }

// Rates returns the ladder's sampling rates, coarse to fine (shared
// slice; do not modify).
func (s *Synopsis) Rates() []float64 { return s.cfg.Rates }

// NumStrata returns the number of strata (= the key domain size).
func (s *Synopsis) NumStrata() int { return len(s.off) - 1 }

// StratumSize returns the number of rows in stratum g.
func (s *Synopsis) StratumSize(g int) int { return int(s.off[g+1] - s.off[g]) }

// stratumRows returns stratum g's row ids in shuffled order.
func (s *Synopsis) stratumRows(g int) []int32 { return s.rows[s.off[g]:s.off[g+1]] }

// SampleLen returns the sample size of stratum g at a ladder level.
func (s *Synopsis) SampleLen(level, g int) int { return int(s.lens[level][g]) }

// sample returns stratum g's sampled row ids at a ladder level.
func (s *Synopsis) sample(level, g int) []int32 {
	return s.rows[s.off[g] : s.off[g]+s.lens[level][g]]
}

// SampleUnits returns the total sampled rows at a ladder level — the
// data volume a synopsis-only answer scans, and the level's work units
// for the cluster simulator's cost model.
func (s *Synopsis) SampleUnits(level int) int {
	n := 0
	for _, l := range s.lens[level] {
		n += int(l)
	}
	return n
}

// clampLevel folds an out-of-range ladder level into [0, Levels).
func (s *Synopsis) clampLevel(level int) int {
	if level < 0 {
		return 0
	}
	if level >= len(s.lens) {
		return len(s.lens) - 1
	}
	return level
}

// image is the gob wire format of a Synopsis (see synopsis.Save for the
// persistence rationale: the stored strata and samples are the starting
// point for serving without re-stratifying).
type image struct {
	Cfg  Config
	Rows []int32
	Off  []int32
	Lens [][]int32
}

// Save writes the synopsis (strata index file + sample ladder) to w.
func (s *Synopsis) Save(w io.Writer) error {
	img := image{Cfg: s.cfg, Rows: s.rows, Off: s.off, Lens: s.lens}
	if err := gob.NewEncoder(w).Encode(img); err != nil {
		return fmt.Errorf("agg: save: %w", err)
	}
	return nil
}

// LoadSynopsis reads a synopsis previously written with Save.
func LoadSynopsis(r io.Reader) (*Synopsis, error) {
	var img image
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("agg: load: %w", err)
	}
	s := &Synopsis{cfg: img.Cfg, rows: img.Rows, off: img.Off, lens: img.Lens}
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("agg: load: corrupt image: %w", err)
	}
	return s, nil
}

// CheckInvariants verifies the strata partition the row space and every
// sample is a within-stratum prefix.
func (s *Synopsis) CheckInvariants() error {
	if len(s.off) < 2 || s.off[0] != 0 || int(s.off[len(s.off)-1]) != len(s.rows) {
		return fmt.Errorf("agg: bad stratum offsets")
	}
	if len(s.lens) == 0 || len(s.lens) != len(s.cfg.Rates) {
		return fmt.Errorf("agg: %d ladder levels for %d rates", len(s.lens), len(s.cfg.Rates))
	}
	seen := make([]bool, len(s.rows))
	for _, r := range s.rows {
		if r < 0 || int(r) >= len(s.rows) || seen[r] {
			return fmt.Errorf("agg: row %d missing or duplicated in strata", r)
		}
		seen[r] = true
	}
	for l, lv := range s.lens {
		if len(lv) != s.NumStrata() {
			return fmt.Errorf("agg: level %d has %d strata lengths, want %d", l, len(lv), s.NumStrata())
		}
		for g, n := range lv {
			N := s.off[g+1] - s.off[g]
			if n < 0 || n > N {
				return fmt.Errorf("agg: level %d stratum %d sample %d out of range", l, g, n)
			}
			// The estimator floor stratumEstimate's variance math relies
			// on: a non-empty stratum is sampled, and a partial sample has
			// n >= 2 so the (n-1)-denominator sample variance is defined.
			if N > 0 && n == 0 {
				return fmt.Errorf("agg: level %d stratum %d has no sample for %d rows", l, g, N)
			}
			if n < 2 && n < N {
				return fmt.Errorf("agg: level %d stratum %d partial sample %d below floor 2", l, g, n)
			}
			if l > 0 && n < s.lens[l-1][g] {
				return fmt.Errorf("agg: level %d stratum %d sample shrinks vs level %d", l, g, l-1)
			}
		}
	}
	return nil
}

// Component is one parallel service component of the aggregation
// application: its fact-table shard plus the stratified-sample
// synopsis, mirroring cf.Component and textindex.Component.
type Component struct {
	T   *Table
	Syn *Synopsis
}

// BuildComponent creates the component's synopsis (offline module).
func BuildComponent(t *Table, cfg Config) (*Component, error) {
	syn, err := BuildSynopsis(t, cfg)
	if err != nil {
		return nil, err
	}
	return &Component{T: t, Syn: syn}, nil
}

// SynopsisSize returns the sampled rows scanned by a finest-level
// synopsis answer — the data volume the cost model charges for
// processing the synopsis.
func (c *Component) SynopsisSize() int { return c.Syn.SampleUnits(c.Syn.Levels() - 1) }

// GroupSize returns the number of rows in stratum g — the data volume
// scanned when improving with that member set.
func (c *Component) GroupSize(g int) int { return c.Syn.StratumSize(g) }
