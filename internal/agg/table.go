package agg

import "fmt"

// Table is one component's shard of the fact table, stored columnar:
// row i is the pair (key[i], value[i]). Keys are dense in [0, NumKeys)
// — the GROUP-BY domain — so per-key results live in flat arrays.
type Table struct {
	keys    []int32
	vals    []float64
	numKeys int
}

// NewTable returns an empty fact table over a key domain of numKeys
// group keys.
func NewTable(numKeys int) *Table {
	if numKeys <= 0 {
		panic("agg: table needs a positive key domain")
	}
	return &Table{numKeys: numKeys}
}

// Append adds one row. It panics on a key outside [0, NumKeys).
func (t *Table) Append(key int32, val float64) {
	if key < 0 || int(key) >= t.numKeys {
		panic(fmt.Sprintf("agg: key %d outside domain [0,%d)", key, t.numKeys))
	}
	t.keys = append(t.keys, key)
	t.vals = append(t.vals, val)
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.keys) }

// NumKeys returns the size of the group-key domain.
func (t *Table) NumKeys() int { return t.numKeys }

// Key returns row i's group key.
func (t *Table) Key(i int) int32 { return t.keys[i] }

// Value returns row i's measure value.
func (t *Table) Value(i int) float64 { return t.vals[i] }
