package agg

import (
	"fmt"
	"math"
)

// Selects reports whether the query's filter window keeps a row value —
// the exported form of the engine's row predicate, so streaming-ingest
// delta scans fold unsampled rows with exactly the engine's selection
// semantics.
func (q Query) Selects(v float64) bool { return q.selects(v) }

// TableFromColumns wraps caller-owned columnar storage as a Table
// without copying. The ingest layer uses it to share one append-only
// column pair across epoch snapshots: each snapshot's base table is a
// capacity-clamped prefix of the live columns, so publishing a merged
// base costs a slice header, not a copy. The caller must not mutate
// keys[i]/vals[i] for any i < len(keys) after handing them over; keys
// must already be within [0, numKeys).
func TableFromColumns(keys []int32, vals []float64, numKeys int) *Table {
	if numKeys <= 0 {
		panic("agg: table needs a positive key domain")
	}
	if len(keys) != len(vals) {
		panic(fmt.Sprintf("agg: column length mismatch: %d keys, %d vals", len(keys), len(vals)))
	}
	return &Table{keys: keys, vals: vals, numKeys: numKeys}
}

// SynopsisFromOrder builds a synopsis over a caller-supplied stratum
// order instead of BuildSynopsis's counting-sort-plus-shuffle: rows is
// the row-id permutation in stratum-major order and off its stratum
// offsets (stratum s owns rows[off[s]:off[s+1]]; len(off) must be
// t.NumKeys()+1). Sample lengths per ladder level are computed with
// exactly BuildSynopsis's clamp — ceil(rate·N) floored at MinSample,
// capped at N — which is the reservoir-maintenance step of streaming
// ingest: the caller keeps each stratum ordered by a deterministic
// per-row sampling priority, so every level-l prefix is a uniform
// bottom-k sample whose rate tracks the stratum as it grows.
func SynopsisFromOrder(t *Table, cfg Config, rows, off []int32) (*Synopsis, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("agg: no valid sampling rates")
	}
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("agg: empty fact table")
	}
	if len(rows) != t.NumRows() || len(off) != t.NumKeys()+1 {
		return nil, fmt.Errorf("agg: order shape %d rows/%d offsets, want %d/%d",
			len(rows), len(off), t.NumRows(), t.NumKeys()+1)
	}
	syn := &Synopsis{cfg: cfg, rows: rows, off: off}
	for s := 0; s < t.NumKeys(); s++ {
		for _, r := range rows[off[s]:off[s+1]] {
			if r < 0 || int(r) >= t.NumRows() || t.keys[r] != int32(s) {
				return nil, fmt.Errorf("agg: row %d misfiled in stratum %d", r, s)
			}
		}
	}
	for _, rate := range cfg.Rates {
		lv := make([]int32, t.NumKeys())
		for s := 0; s < t.NumKeys(); s++ {
			N := off[s+1] - off[s]
			n := int32(math.Ceil(rate * float64(N)))
			if n < int32(cfg.MinSample) {
				n = int32(cfg.MinSample)
			}
			if n > N {
				n = N
			}
			lv[s] = n
		}
		syn.lens = append(syn.lens, lv)
	}
	if err := syn.CheckInvariants(); err != nil {
		return nil, err
	}
	return syn, nil
}
