// Package agg implements the third application workload of the
// AccuracyTrader reproduction: approximate aggregation analytics in the
// style of BlinkDB (Agarwal et al., EuroSys 2013) — bounded-error
// SUM/COUNT/AVG-per-group queries answered from stratified samples.
//
// The paper (§2.2) argues synopsis-based approximate processing is
// application-generic: a component's data subset is reduced to a small
// synopsis plus an index file mapping each aggregated point to its
// original member set, and Algorithm 1 (internal/core) first processes
// the synopsis, then improves the result with the member sets most
// correlated to result accuracy. This package is the strongest test of
// that genericity in the repository, because its result type is
// structurally different from the other two applications' ranked ID
// lists: grouped numeric aggregates with closed-form error bounds.
//
// The mapping onto the paper's concepts:
//
//   - Original data points are the rows of a columnar fact table
//     (Table): (group key, value) pairs with Zipf-skewed keys.
//   - The index file's groups are strata, one per group key — the
//     BlinkDB stratification on the GROUP-BY column, which guarantees
//     rare groups are represented in the synopsis.
//   - The synopsis is a multi-resolution ladder of per-stratum samples
//     (Synopsis): each stratum's rows are shuffled once under a seeded
//     RNG and ladder level l takes a prefix whose length is that
//     level's sampling rate (nested samples, so finer levels strictly
//     extend coarser ones). Ladder level = sampling rate, the analogue
//     of synopsis.Ladder's compression-ratio cuts.
//   - ProcessSynopsis estimates each stratum's SUM and COUNT under the
//     query's value filter from its sample, scaled by the inverse
//     sampling rate, and attaches closed-form CLT error bounds (normal
//     approximation with finite-population correction). The
//     correlation of a stratum is its estimated error contribution —
//     the CI half-width of the requested aggregate — so Algorithm 1
//     ranks the most uncertain strata first.
//   - ProcessSet replaces a stratum's estimate with an exact scan of
//     its rows (zero variance), the counterpart of cf/textindex
//     re-processing a group's original members.
//
// Accuracy of an approximate answer is 1 − mean relative error against
// the exact answer (Accuracy), the metric reported by the `aggcompare`
// experiment; the frontend's Bounded{MinAccuracy} SLO class maps
// directly onto it via per-level calibration (MeasureLevelAccuracy).
//
// Engines follow the repository's pooling conventions: Reset re-targets
// an engine reusing all buffers, GetEngine/Release wrap a sync.Pool,
// and Result offers EstimatesInto/BoundsInto caller-buffer variants.
// The pooled fast paths are property-tested bit-identical to a retained
// naive reference (reference_test.go).
package agg
