// Package topk provides a bounded top-k selector — a performance
// extension (PR 2) beyond the paper, serving the search engine's
// top-k result selection (the paper's §4.1 web-search case study)
// without sorting every matching document.
//
// The selector is a size-k min-heap that keeps the k best (score descending, id ascending on ties) of a streamed
// candidate set in O(n log k) time and O(k) space. It replaces the
// sort-everything-take-k pattern in the online scoring kernels, where n
// (matching documents) routinely dwarfs k (requested hits).
//
// The ordering is the total order used throughout the search engine
// (textindex.SortHits): higher score first, ties broken toward the lower
// id. Because the order is total over distinct ids, the selected set and
// its emitted order are independent of offer order — the selector is
// result-identical to a full sort followed by truncation.
package topk
