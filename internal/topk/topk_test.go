package topk

import (
	"sort"
	"testing"

	"accuracytrader/internal/stats"
)

// reference is the naive selector: sort everything, truncate to k.
func reference(items []Item, k int) []Item {
	cp := append([]Item(nil), items...)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Score != cp[j].Score {
			return cp[i].Score > cp[j].Score
		}
		return cp[i].ID < cp[j].ID
	})
	if k < 0 {
		k = 0
	}
	if len(cp) > k {
		cp = cp[:k]
	}
	return cp
}

func runSelector(items []Item, k int) []Item {
	var s Selector
	s.Reset(k)
	for _, it := range items {
		s.Offer(it.ID, it.Score)
	}
	return s.Sorted()
}

func assertEqual(t *testing.T, got, want []Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d (got %v want %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestSelectorMatchesSortTruncate(t *testing.T) {
	rng := stats.NewRNG(1)
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		k := rng.Intn(12)
		items := make([]Item, n)
		for i := range items {
			// Coarse scores force plenty of ties to exercise id tie-breaks.
			items[i] = Item{ID: i, Score: float64(rng.Intn(8))}
		}
		assertEqual(t, runSelector(items, k), reference(items, k))
	}
}

func TestSelectorOrderIndependence(t *testing.T) {
	rng := stats.NewRNG(2)
	items := make([]Item, 40)
	for i := range items {
		items[i] = Item{ID: i, Score: float64(rng.Intn(5))}
	}
	want := runSelector(items, 10)
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Item(nil), items...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		assertEqual(t, runSelector(shuffled, 10), want)
	}
}

func TestSelectorEdgeCases(t *testing.T) {
	if got := runSelector(nil, 5); len(got) != 0 {
		t.Fatalf("empty stream: %v", got)
	}
	if got := runSelector([]Item{{1, 2}, {2, 3}}, 0); len(got) != 0 {
		t.Fatalf("k=0: %v", got)
	}
	// Negative k selects nothing (and must not panic in Offer/Threshold).
	var s Selector
	s.Reset(-3)
	s.Offer(1, 2)
	if _, ok := s.Threshold(); ok {
		t.Fatal("threshold with negative k")
	}
	if got := s.Sorted(); len(got) != 0 {
		t.Fatalf("k<0: %v", got)
	}
	got := runSelector([]Item{{3, 1}, {1, 1}, {2, 1}}, 2)
	assertEqual(t, got, []Item{{1, 1}, {2, 1}})
}

func TestSelectorThreshold(t *testing.T) {
	var s Selector
	s.Reset(2)
	if _, ok := s.Threshold(); ok {
		t.Fatal("threshold before full")
	}
	s.Offer(1, 5)
	s.Offer(2, 3)
	th, ok := s.Threshold()
	if !ok || th != (Item{2, 3}) {
		t.Fatalf("threshold = %v, %v", th, ok)
	}
	s.Offer(3, 4) // evicts (2,3)
	th, _ = s.Threshold()
	if th != (Item{3, 4}) {
		t.Fatalf("threshold after evict = %v", th)
	}
}

func TestSelectorReuseIsClean(t *testing.T) {
	var s Selector
	s.Reset(3)
	for i := 0; i < 10; i++ {
		s.Offer(i, float64(i))
	}
	_ = s.Sorted()
	s.Reset(2)
	s.Offer(7, 1)
	got := s.Sorted()
	assertEqual(t, got, []Item{{7, 1}})
}

// FuzzSelector cross-checks the heap against sort+truncate on arbitrary
// byte-encoded streams (the seed corpus entries required by the bench
// harness hardening task).
func FuzzSelector(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{9, 9, 9, 9}, uint8(2))
	f.Add([]byte{255, 0, 128, 7, 7, 7, 200, 1}, uint8(5))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(10))
	f.Fuzz(func(t *testing.T, scores []byte, kb uint8) {
		k := int(kb % 16)
		items := make([]Item, len(scores))
		for i, b := range scores {
			items[i] = Item{ID: i, Score: float64(b % 16)}
		}
		got := runSelector(items, k)
		want := reference(items, k)
		if len(got) != len(want) {
			t.Fatalf("len %d want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("item %d: got %+v want %+v", i, got[i], want[i])
			}
		}
	})
}
