package topk

// Item is one selected candidate.
type Item struct {
	ID    int
	Score float64
}

// worse reports whether a ranks strictly below b in the result order
// (lower score, or equal score and higher id).
func worse(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// Selector selects the top k of an offered stream. The zero value is
// unusable; call Reset first. A Selector is not safe for concurrent use,
// but is designed for reuse: Reset reclaims the internal buffer, so a
// pooled Selector offers at steady state with zero allocations.
type Selector struct {
	k    int
	heap []Item // min-heap: root is the worst item kept
}

// Reset empties the selector and sets its bound. k <= 0 selects nothing.
func (s *Selector) Reset(k int) {
	if k < 0 {
		k = 0
	}
	s.k = k
	s.heap = s.heap[:0]
}

// Len returns the number of items currently kept.
func (s *Selector) Len() int { return len(s.heap) }

// Offer considers one candidate. It is kept iff it ranks above the
// current k-th best (or the selector holds fewer than k items).
func (s *Selector) Offer(id int, score float64) {
	it := Item{ID: id, Score: score}
	if len(s.heap) < s.k {
		s.heap = append(s.heap, it)
		s.up(len(s.heap) - 1)
		return
	}
	if s.k == 0 || !worse(s.heap[0], it) {
		return
	}
	s.heap[0] = it
	s.down(0)
}

// Threshold returns the current k-th best item and true when the selector
// is full; callers can use it to skip candidates that cannot qualify.
func (s *Selector) Threshold() (Item, bool) {
	if len(s.heap) < s.k || s.k == 0 {
		return Item{}, false
	}
	return s.heap[0], true
}

// Sorted sorts the kept items best-first in place and returns the
// internal slice. The heap invariant is destroyed: the selector must be
// Reset before the next use, and the slice is only valid until then.
func (s *Selector) Sorted() []Item {
	// Standard heapsort finish: repeatedly swap the root (worst of the
	// remainder) to the end, so the slice ends up best-first.
	h := s.heap
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		s.heap = h[:n]
		s.down(0)
	}
	s.heap = h
	return h
}

func (s *Selector) up(i int) {
	h := s.heap
	for i > 0 {
		p := (i - 1) / 2
		if !worse(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (s *Selector) down(i int) {
	h := s.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && worse(h[r], h[l]) {
			m = r
		}
		if !worse(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
