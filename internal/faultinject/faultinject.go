package faultinject

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accuracytrader/internal/stats"
)

// Mode is a fault a Script can impose on its target.
type Mode uint32

// The fault modes.
const (
	// None passes traffic through untouched.
	None Mode = iota
	// Crash resets existing connections and cuts new ones at accept;
	// scripted dialers refuse outright.
	Crash
	// Stall blocks the target's reads until healed or closed.
	Stall
	// Partition black-holes writes: they report success and go nowhere.
	Partition
	// Slow delays every write by the script's configured latency.
	Slow
	// Corrupt flips one deterministically chosen byte in each written
	// frame body.
	Corrupt
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	case Partition:
		return "partition"
	case Slow:
		return "slow"
	case Corrupt:
		return "corrupt"
	default:
		return "unknown"
	}
}

// ErrInjected is returned by connections killed by an injected crash
// and by dialers refused by a crashed target.
var ErrInjected = errors.New("faultinject: injected fault")

// Script is one target's live fault state. The zero value is not
// usable; construct via NewScript or Fabric.Script. Safe for
// concurrent use; mode changes take effect immediately on every
// connection the script has wrapped.
type Script struct {
	name string
	mode atomic.Uint32
	slow atomic.Int64 // Slow-mode write delay, ns

	rmu sync.Mutex
	rng *stats.RNG // corrupt-byte positions

	mu      sync.Mutex
	conns   map[*faultConn]struct{}
	changed chan struct{} // closed and replaced on every Set
}

// NewScript returns a healthy (None) script for the named target. seed
// drives corrupt-byte positions deterministically.
func NewScript(name string, seed uint64) *Script {
	return &Script{
		name:    name,
		rng:     stats.NewRNG(seed),
		conns:   make(map[*faultConn]struct{}),
		changed: make(chan struct{}),
	}
}

// Name returns the target name the script was created under.
func (s *Script) Name() string { return s.name }

// Mode returns the current fault mode.
func (s *Script) Mode() Mode { return Mode(s.mode.Load()) }

// Set switches the fault mode, waking any reads blocked by a previous
// Stall. Switching to Crash resets every tracked connection.
func (s *Script) Set(m Mode) {
	s.mode.Store(uint32(m))
	s.mu.Lock()
	close(s.changed)
	s.changed = make(chan struct{})
	var victims []*faultConn
	if m == Crash {
		for c := range s.conns {
			victims = append(victims, c)
		}
	}
	s.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// SetSlow switches to Slow mode with the given per-write delay.
func (s *Script) SetSlow(d time.Duration) {
	s.slow.Store(int64(d))
	s.Set(Slow)
}

// Heal restores pass-through behaviour.
func (s *Script) Heal() { s.Set(None) }

// changeCh returns the channel closed at the next Set, for reads
// blocked in Stall.
func (s *Script) changeCh() chan struct{} {
	s.mu.Lock()
	ch := s.changed
	s.mu.Unlock()
	return ch
}

// corruptAt picks the byte to flip in a body of n bytes.
func (s *Script) corruptAt(n int) int {
	s.rmu.Lock()
	i := s.rng.Intn(n)
	s.rmu.Unlock()
	return i
}

func (s *Script) track(c *faultConn) {
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *Script) untrack(c *faultConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// WrapConn wraps a single connection under the script's control.
func (s *Script) WrapConn(c net.Conn) net.Conn {
	fc := &faultConn{Conn: c, s: s, closed: make(chan struct{})}
	s.track(fc)
	return fc
}

// WrapListener wraps a listener so every accepted connection is under
// the script's control. While the script is in Crash mode, accepted
// connections are cut immediately — the port stays bound (the kernel
// completes the handshake) but the process behind it is gone.
func (s *Script) WrapListener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, s: s}
}

// Dialer wraps a dial function for the client side: Crash refuses
// before any network activity; other modes wrap the resulting
// connection.
func (s *Script) Dialer(dial func(addr string, timeout time.Duration) (net.Conn, error)) func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if s.Mode() == Crash {
			return nil, ErrInjected
		}
		c, err := dial(addr, timeout)
		if err != nil {
			return nil, err
		}
		return s.WrapConn(c), nil
	}
}

// faultListener applies its script to every accepted connection.
type faultListener struct {
	net.Listener
	s *Script
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.s.Mode() == Crash {
			c.Close()
			continue
		}
		return l.s.WrapConn(c), nil
	}
}

// faultConn applies its script's current mode to each Read and Write.
type faultConn struct {
	net.Conn
	s         *Script
	closeOnce sync.Once
	closed    chan struct{}
}

func (c *faultConn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		c.s.untrack(c)
		err = c.Conn.Close()
	})
	return err
}

func (c *faultConn) Read(p []byte) (int, error) {
	for {
		switch c.s.Mode() {
		case Stall:
			// Block until the mode changes or the conn dies. Inbound
			// bytes queue in the kernel meanwhile — exactly what a
			// process that stopped reading looks like.
			select {
			case <-c.s.changeCh():
				continue
			case <-c.closed:
				return 0, ErrInjected
			}
		case Crash:
			c.Close()
			return 0, ErrInjected
		default:
			return c.Conn.Read(p)
		}
	}
}

func (c *faultConn) Write(p []byte) (int, error) {
	switch c.s.Mode() {
	case Partition:
		return len(p), nil
	case Crash:
		c.Close()
		return 0, ErrInjected
	case Slow:
		d := time.Duration(c.s.slow.Load())
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-c.closed:
				t.Stop()
				return 0, ErrInjected
			}
		}
		return c.Conn.Write(p)
	case Corrupt:
		if len(p) == 0 {
			return c.Conn.Write(p)
		}
		buf := make([]byte, len(p))
		copy(buf, p)
		// Flip a byte past the 4-byte length prefix when the frame has
		// one, so the peer fails on decode rather than desyncing the
		// stream with a bogus frame length.
		lo := 0
		if len(buf) > 4 {
			lo = 4
		}
		buf[lo+c.s.corruptAt(len(buf)-lo)] ^= 0xFF
		return c.Conn.Write(buf)
	default:
		return c.Conn.Write(p)
	}
}

// Fabric names Scripts by target and hands out deterministic per-target
// seeds derived from the fabric seed, so a scripted failure scenario
// replays identically. Safe for concurrent use.
type Fabric struct {
	seed    uint64
	mu      sync.Mutex
	scripts map[string]*Script
}

// NewFabric returns an empty fabric with the given base seed.
func NewFabric(seed uint64) *Fabric {
	return &Fabric{seed: seed, scripts: make(map[string]*Script)}
}

// Script returns the script for the named target, creating it (healthy)
// on first use. The script's seed mixes the fabric seed with an FNV-1a
// hash of the name.
func (f *Fabric) Script(target string) *Script {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.scripts[target]; ok {
		return s
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(target); i++ {
		h ^= uint64(target[i])
		h *= 1099511628211
	}
	s := NewScript(target, f.seed^h)
	f.scripts[target] = s
	return s
}

// Targets returns the names of all scripts created so far.
func (f *Fabric) Targets() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.scripts))
	for n := range f.scripts {
		out = append(out, n)
	}
	return out
}

// HealAll heals every script in the fabric.
func (f *Fabric) HealAll() {
	f.mu.Lock()
	all := make([]*Script, 0, len(f.scripts))
	for _, s := range f.scripts {
		all = append(all, s)
	}
	f.mu.Unlock()
	for _, s := range all {
		s.Heal()
	}
}
