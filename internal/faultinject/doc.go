// Package faultinject is the scriptable fault-injection fabric of the
// failure-domain hardening extension (PR 7): it wraps the TCP surface
// of the networked serving path (component-server listeners,
// aggregator dials) so tests and experiments can crash, stall,
// partition, slow down or corrupt one component at a precise moment —
// and heal it again — without touching the code under test.
//
// A Script is one target's live fault state. Setting a mode takes
// effect immediately on every tracked connection:
//
//	Crash     existing connections are reset and new ones are cut the
//	          moment they are accepted (a crashed process behind a
//	          still-bound port); scripted dialers refuse outright.
//	Stall     the target stops reading — inbound frames queue in kernel
//	          buffers while the peer's requests time out.
//	Partition writes are black-holed (they appear to succeed and go
//	          nowhere), the asymmetric half-open network failure.
//	Slow      every write is delayed by a configured latency.
//	Corrupt   one byte of every written frame body is flipped at a
//	          deterministically seeded position, so the peer's codec
//	          rejects the frame and fails the connection.
//
// Heal restores pass-through behaviour and wakes stalled readers.
//
// A Fabric names Scripts by target (component address), deriving each
// script's corruption/jitter seed deterministically from the fabric
// seed and the target name — the same scenario replays identically
// run after run, which is what makes failure experiments assertable
// (see the faultcompare experiment).
package faultinject
