package faultinject

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped server-side conn and the raw client conn
// over loopback TCP.
func pipePair(t *testing.T, s *Script) (srv net.Conn, cli net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	wrapped := s.WrapListener(ln)
	done := make(chan net.Conn, 1)
	errc := make(chan error, 1)
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			errc <- err
			return
		}
		done <- c
	}()
	cli, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case srv = <-done:
	case err := <-errc:
		t.Fatalf("accept: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	t.Cleanup(func() { srv.Close(); cli.Close() })
	return srv, cli
}

func TestPassthroughRoundTrip(t *testing.T) {
	s := NewScript("a", 1)
	srv, cli := pipePair(t, s)
	msg := []byte("hello")
	if _, err := cli.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(srv, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
	if s.Mode() != None {
		t.Fatalf("mode = %v", s.Mode())
	}
}

func TestStallBlocksReadsUntilHeal(t *testing.T) {
	s := NewScript("a", 1)
	srv, cli := pipePair(t, s)
	s.Set(Stall)
	if _, err := cli.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := io.ReadFull(srv, buf)
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	s.Heal()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("read after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not resume after heal")
	}
}

func TestPartitionBlackHolesWrites(t *testing.T) {
	s := NewScript("a", 1)
	srv, cli := pipePair(t, s)
	s.Set(Partition)
	n, err := srv.Write([]byte("vanishes"))
	if err != nil || n != 8 {
		t.Fatalf("partitioned write: n=%d err=%v", n, err)
	}
	cli.SetReadDeadline(time.Now().Add(80 * time.Millisecond))
	buf := make([]byte, 8)
	if _, err := cli.Read(buf); err == nil {
		t.Fatal("black-holed bytes arrived")
	}
}

func TestSlowDelaysWrites(t *testing.T) {
	s := NewScript("a", 1)
	srv, cli := pipePair(t, s)
	const d = 60 * time.Millisecond
	s.SetSlow(d)
	start := time.Now()
	if _, err := srv.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(cli, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < d {
		t.Fatalf("slow write took %v, want >= %v", el, d)
	}
}

func TestCorruptFlipsOneByte(t *testing.T) {
	s := NewScript("a", 99)
	srv, cli := pipePair(t, s)
	s.Set(Corrupt)
	msg := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if _, err := srv.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(cli, buf); err != nil {
		t.Fatal(err)
	}
	diff := 0
	first4 := true
	for i := range msg {
		if buf[i] != msg[i] {
			diff++
			if i < 4 {
				first4 = false
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if !first4 {
		t.Fatal("length prefix (first 4 bytes) was corrupted")
	}
}

func TestCrashResetsExistingAndCutsNewConns(t *testing.T) {
	s := NewScript("a", 1)
	srv, cli := pipePair(t, s)
	_ = srv
	s.Set(Crash)
	cli.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := cli.Read(buf); err == nil {
		t.Fatal("read on crashed conn succeeded")
	}
	// The server-side wrapper also refuses I/O.
	if _, err := srv.Write([]byte("x")); err == nil {
		t.Fatal("write on crashed server conn succeeded")
	}
}

func TestCrashCutsFreshAccepts(t *testing.T) {
	s := NewScript("a", 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	wrapped := s.WrapListener(ln)
	s.Set(Crash)
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		// Accept loops internally while crashed; it returns only once
		// the listener closes underneath it.
		wrapped.Accept()
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("conn to crashed target delivered data")
	}
	ln.Close()
	<-acceptDone
}

func TestDialerRefusesWhileCrashed(t *testing.T) {
	s := NewScript("a", 1)
	dial := s.Dialer(func(addr string, timeout time.Duration) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	})
	s.Set(Crash)
	if _, err := dial("127.0.0.1:1", time.Second); err != ErrInjected {
		t.Fatalf("dial during crash: err = %v, want ErrInjected", err)
	}
}

func TestFabricDeterministicSeeds(t *testing.T) {
	f1, f2 := NewFabric(7), NewFabric(7)
	a1, a2 := f1.Script("comp-3"), f2.Script("comp-3")
	for i := 0; i < 5; i++ {
		if x, y := a1.corruptAt(100), a2.corruptAt(100); x != y {
			t.Fatalf("draw %d: %d != %d for same fabric seed and target", i, x, y)
		}
	}
	if f1.Script("comp-3") != a1 {
		t.Fatal("Script not memoized")
	}
	b := f1.Script("comp-4")
	if b == a1 {
		t.Fatal("distinct targets share a script")
	}
	f1.Script("comp-5").Set(Stall)
	f1.HealAll()
	if got := f1.Script("comp-5").Mode(); got != None {
		t.Fatalf("after HealAll mode = %v", got)
	}
	if len(f1.Targets()) != 3 {
		t.Fatalf("targets = %v", f1.Targets())
	}
}
