package vmath

import (
	"math"
	"testing"
	"testing/quick"

	"accuracytrader/internal/stats"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNormAndDist(t *testing.T) {
	if !almostEq(Norm([]float64{3, 4}), 5) {
		t.Fatal("Norm")
	}
	if !almostEq(Dist([]float64{0, 0}, []float64{3, 4}), 5) {
		t.Fatal("Dist")
	}
	if !almostEq(Dist2([]float64{1, 1}, []float64{2, 3}), 5) {
		t.Fatal("Dist2")
	}
}

func TestCosine(t *testing.T) {
	if !almostEq(Cosine([]float64{1, 0}, []float64{1, 0}), 1) {
		t.Fatal("parallel")
	}
	if !almostEq(Cosine([]float64{1, 0}, []float64{0, 1}), 0) {
		t.Fatal("orthogonal")
	}
	if !almostEq(Cosine([]float64{1, 0}, []float64{-1, 0}), -1) {
		t.Fatal("antiparallel")
	}
	if Cosine([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Fatal("zero norm should give 0")
	}
}

func TestScaleAddToMeanClone(t *testing.T) {
	v := Scale([]float64{1, 2}, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Fatalf("Scale = %v", v)
	}
	AddTo(v, []float64{1, 1})
	if v[0] != 4 || v[1] != 7 {
		t.Fatalf("AddTo = %v", v)
	}
	if !almostEq(Mean(v), 5.5) {
		t.Fatal("Mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean empty")
	}
	c := Clone(v)
	c[0] = 99
	if v[0] == 99 {
		t.Fatal("Clone aliases input")
	}
}

func TestSparseVec(t *testing.T) {
	sv := NewSparseVec(map[int32]float64{5: 2, 1: 3, 9: -1})
	if sv.Len() != 3 {
		t.Fatalf("Len = %d", sv.Len())
	}
	for i := 1; i < sv.Len(); i++ {
		if sv.Idx[i-1] >= sv.Idx[i] {
			t.Fatalf("indices not strictly increasing: %v", sv.Idx)
		}
	}
	if v, ok := sv.Get(5); !ok || v != 2 {
		t.Fatalf("Get(5) = %v,%v", v, ok)
	}
	if _, ok := sv.Get(4); ok {
		t.Fatal("Get(4) should miss")
	}
}

func TestDotSparse(t *testing.T) {
	a := NewSparseVec(map[int32]float64{1: 2, 3: 4, 7: 1})
	b := NewSparseVec(map[int32]float64{3: 5, 7: 2, 8: 9})
	if got := DotSparse(a, b); got != 22 {
		t.Fatalf("DotSparse = %v", got)
	}
}

func TestCosineSparseMatchesDense(t *testing.T) {
	a := NewSparseVec(map[int32]float64{0: 1, 2: 2})
	b := NewSparseVec(map[int32]float64{0: 2, 1: 1, 2: 4})
	dense := Cosine([]float64{1, 0, 2}, []float64{2, 1, 4})
	if !almostEq(CosineSparse(a, b), dense) {
		t.Fatalf("sparse %v dense %v", CosineSparse(a, b), dense)
	}
	if CosineSparse(SparseVec{}, b) != 0 {
		t.Fatal("empty sparse cosine should be 0")
	}
}

func TestPearsonKnown(t *testing.T) {
	// Perfect positive and negative correlation.
	if !almostEq(Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}), 1) {
		t.Fatal("perfect positive")
	}
	if !almostEq(Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}), -1) {
		t.Fatal("perfect negative")
	}
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("zero variance must give 0")
	}
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Fatal("single pair must give 0")
	}
}

func TestPearsonRangeProperty(t *testing.T) {
	rng := stats.NewRNG(99)
	f := func(seed uint32, n uint8) bool {
		r := rng.Split(uint64(seed))
		m := int(n%40) + 2
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := 0; i < m; i++ {
			xs[i] = r.Norm(0, 100)
			ys[i] = r.Norm(0, 100)
		}
		p := Pearson(xs, ys)
		return p >= -1 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonSymmetry(t *testing.T) {
	x := []float64{1, 4, 2, 8, 5, 7}
	y := []float64{2, 3, 1, 9, 4, 6}
	if !almostEq(Pearson(x, y), Pearson(y, x)) {
		t.Fatal("Pearson not symmetric")
	}
}

func TestPearsonShiftScaleInvariance(t *testing.T) {
	x := []float64{1, 4, 2, 8, 5, 7}
	y := []float64{2, 3, 1, 9, 4, 6}
	x2 := make([]float64, len(x))
	for i, v := range x {
		x2[i] = 3*v + 10
	}
	if !almostEq(Pearson(x, y), Pearson(x2, y)) {
		t.Fatal("Pearson not invariant to positive affine transform")
	}
}
