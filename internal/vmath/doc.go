// Package vmath provides the small dense/sparse vector kernels shared
// by the SVD, R-tree, collaborative-filtering and text-index substrates
// — the arithmetic floor under the paper's offline synopsis creation
// (§2.2 step 1) and online similarity scoring (§4.1): dot products,
// norms, cosine similarity and Pearson correlation.
package vmath
