package vmath

import (
	"math"
	"sort"
)

// Dot returns the inner product of two equal-length dense vectors.
// It panics on a length mismatch because that is always a programming
// error in this codebase.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vmath: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Cosine returns the cosine similarity of a and b, or 0 when either has
// zero norm.
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Dist2 returns the squared Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vmath: Dist2 length mismatch")
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	return math.Sqrt(Dist2(a, b))
}

// Scale multiplies v in place by k and returns it.
func Scale(v []float64, k float64) []float64 {
	for i := range v {
		v[i] *= k
	}
	return v
}

// AddTo adds src into dst element-wise (dst += src) and returns dst.
func AddTo(dst, src []float64) []float64 {
	if len(dst) != len(src) {
		panic("vmath: AddTo length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	c := make([]float64, len(v))
	copy(c, v)
	return c
}

// SparseVec is a sparse vector stored as parallel index/value slices with
// strictly increasing indices. The zero value is an empty vector.
type SparseVec struct {
	Idx []int32
	Val []float64
}

// NewSparseVec builds a sparse vector from an index->value map.
func NewSparseVec(m map[int32]float64) SparseVec {
	sv := SparseVec{
		Idx: make([]int32, 0, len(m)),
		Val: make([]float64, 0, len(m)),
	}
	for i := range m {
		sv.Idx = append(sv.Idx, i)
	}
	sort.Slice(sv.Idx, func(a, b int) bool { return sv.Idx[a] < sv.Idx[b] })
	for _, i := range sv.Idx {
		sv.Val = append(sv.Val, m[i])
	}
	return sv
}

// Len returns the number of stored (non-zero) entries.
func (s SparseVec) Len() int { return len(s.Idx) }

// Get returns the value at index i, or 0 when absent.
func (s SparseVec) Get(i int32) (float64, bool) {
	k := sort.Search(len(s.Idx), func(j int) bool { return s.Idx[j] >= i })
	if k < len(s.Idx) && s.Idx[k] == i {
		return s.Val[k], true
	}
	return 0, false
}

// DotSparse returns the inner product of two sparse vectors via merge.
func DotSparse(a, b SparseVec) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			s += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return s
}

// NormSparse returns the Euclidean norm of a sparse vector.
func NormSparse(a SparseVec) float64 {
	s := 0.0
	for _, v := range a.Val {
		s += v * v
	}
	return math.Sqrt(s)
}

// CosineSparse returns cosine similarity of two sparse vectors (0 when
// either norm is zero).
func CosineSparse(a, b SparseVec) float64 {
	na, nb := NormSparse(a), NormSparse(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return DotSparse(a, b) / (na * nb)
}

// Pearson returns the Pearson correlation coefficient of the co-rated
// pairs (x[i], y[i]). The slices must have equal length; fewer than two
// pairs, or zero variance on either side, yields 0.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vmath: Pearson length mismatch")
	}
	n := len(x)
	if n < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp rounding noise so callers can rely on [-1,1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}
