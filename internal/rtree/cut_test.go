package rtree

import (
	"sort"
	"testing"
	"testing/quick"

	"accuracytrader/internal/stats"
)

func TestCutToTargetPartition(t *testing.T) {
	rng := stats.NewRNG(1)
	items := randPoints(rng, 1200, 3)
	tr := Bulk(3, 2, 8, items)
	for _, target := range []int{1, 5, 20, 60, 150} {
		cuts := tr.CutToTarget(target)
		if len(cuts) > target {
			t.Fatalf("target %d: %d cuts", target, len(cuts))
		}
		seen := map[int]bool{}
		for _, c := range cuts {
			for _, id := range c.Members {
				if seen[id] {
					t.Fatalf("target %d: duplicate id %d", target, id)
				}
				seen[id] = true
			}
		}
		if len(seen) != 1200 {
			t.Fatalf("target %d: covered %d of 1200", target, len(seen))
		}
	}
}

func TestCutToTargetApproachesTarget(t *testing.T) {
	// The refinement must do much better than the raw depth cut when the
	// per-level counts jump past the target.
	rng := stats.NewRNG(2)
	items := randPoints(rng, 800, 3)
	tr := Bulk(3, 2, 8, items)
	target := 60
	depthCount := tr.CountAtDepth(tr.ChooseDepth(target))
	refined := len(tr.CutToTarget(target))
	if refined < depthCount {
		t.Fatalf("refinement lost nodes: %d < %d", refined, depthCount)
	}
	if refined < target/2 {
		t.Fatalf("refined cut %d still far from target %d", refined, target)
	}
}

func TestCutToTargetEmptyAndTiny(t *testing.T) {
	tr := NewDefault(2)
	if cuts := tr.CutToTarget(10); cuts != nil {
		t.Fatalf("empty tree cuts = %v", cuts)
	}
	tr.Insert([]float64{1, 2}, 0)
	cuts := tr.CutToTarget(10)
	if len(cuts) != 1 || len(cuts[0].Members) != 1 {
		t.Fatalf("single-point cut = %v", cuts)
	}
	// A non-positive target clamps to 1.
	if got := tr.CutToTarget(0); len(got) != 1 {
		t.Fatalf("target 0 gave %d cuts", len(got))
	}
}

func TestCutToTargetSplitsLargestFirst(t *testing.T) {
	// With two clusters of very different sizes, the refinement should
	// split the big cluster's node before the small one's.
	var items []Item
	rng := stats.NewRNG(3)
	for i := 0; i < 300; i++ {
		items = append(items, Item{Point: []float64{rng.Norm(0, 1), rng.Norm(0, 1)}, ID: i})
	}
	for i := 300; i < 330; i++ {
		items = append(items, Item{Point: []float64{rng.Norm(100, 1), rng.Norm(100, 1)}, ID: i})
	}
	tr := Bulk(2, 2, 8, items)
	cuts := tr.CutToTarget(8)
	// Count cuts dominated by the big cluster.
	big := 0
	for _, c := range cuts {
		inBig := 0
		for _, id := range c.Members {
			if id < 300 {
				inBig++
			}
		}
		if inBig*2 > len(c.Members) {
			big++
		}
	}
	if big < len(cuts)/2 {
		t.Fatalf("big cluster got %d of %d cuts", big, len(cuts))
	}
}

func TestCutToTargetDynamicTreeProperty(t *testing.T) {
	rng := stats.NewRNG(4)
	f := func(seed uint32, n uint8) bool {
		r := rng.Split(uint64(seed))
		tr := New(2, 2, 8)
		count := int(n)%200 + 10
		for i := 0; i < count; i++ {
			tr.Insert([]float64{r.Float64() * 10, r.Float64() * 10}, i)
		}
		for _, target := range []int{1, 4, 16} {
			cuts := tr.CutToTarget(target)
			if len(cuts) > target || len(cuts) == 0 {
				return false
			}
			total := 0
			ids := map[int]bool{}
			for _, c := range cuts {
				total += len(c.Members)
				for _, id := range c.Members {
					ids[id] = true
				}
			}
			if total != count || len(ids) != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := stats.NewRNG(5)
	items := randPoints(rng, 500, 3)
	tr := Bulk(3, 2, 8, items)
	for i := 0; i < 50; i++ {
		tr.Delete(items[i].Point, items[i].ID)
	}
	snap := tr.Snapshot()
	back := FromSnapshot(snap)
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.Height() != tr.Height() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", back.Len(), back.Height(), tr.Len(), tr.Height())
	}
	a := tr.All(nil)
	b := back.All(nil)
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ids changed across snapshot")
		}
	}
	// The cut structure must be identical (this is why we snapshot the
	// tree instead of re-bulk-loading).
	ca := tr.CutToTarget(40)
	cb := back.CutToTarget(40)
	if len(ca) != len(cb) {
		t.Fatalf("cut counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if len(ca[i].Members) != len(cb[i].Members) {
			t.Fatalf("cut %d sizes differ", i)
		}
	}
	// The restored tree must accept further operations.
	back.Insert([]float64{0.5, 0.5, 0.5}, 9999)
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
