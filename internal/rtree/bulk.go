package rtree

import (
	"math"
	"sort"
)

// Item is a (point, ID) pair for bulk loading.
type Item struct {
	Point []float64
	ID    int
}

// Bulk builds a tree over the items using Sort-Tile-Recursive (STR)
// packing, which produces well-clustered, depth-balanced trees far faster
// than repeated insertion. The synopsis builder uses Bulk for initial
// creation and Insert/Delete for incremental updates.
func Bulk(dim, min, max int, items []Item) *Tree {
	t := New(dim, min, max)
	if len(items) == 0 {
		return t
	}
	for _, it := range items {
		if len(it.Point) != dim {
			panic("rtree: bulk item dimension mismatch")
		}
	}
	leaves := packLeaves(dim, max, items)
	t.size = len(items)
	level := leaves
	for len(level) > 1 {
		level = packInternal(dim, max, level)
	}
	t.root = level[0]
	t.root.parent = nil
	return t
}

// packLeaves tiles the items into leaf nodes of up to max entries.
func packLeaves(dim, max int, items []Item) []*node {
	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{rect: PointRect(it.Point), id: it.ID}
	}
	groups := strTile(dim, 0, max, entries)
	leaves := make([]*node, len(groups))
	for i, g := range groups {
		leaves[i] = &node{leaf: true, entries: g}
	}
	return leaves
}

// packInternal tiles child nodes into parent nodes of up to max entries.
func packInternal(dim, max int, children []*node) []*node {
	entries := make([]entry, len(children))
	for i, c := range children {
		entries[i] = entry{rect: mbr(c.entries), child: c}
	}
	groups := strTile(dim, 0, max, entries)
	parents := make([]*node, len(groups))
	for i, g := range groups {
		p := &node{leaf: false, entries: g}
		for _, e := range g {
			e.child.parent = p
		}
		parents[i] = p
	}
	return parents
}

// strTile recursively sorts entries by the center coordinate of dimension
// d, slices them into vertical slabs, and tiles each slab on the next
// dimension; at the last dimension it emits runs of up to max entries.
func strTile(dim, d, max int, entries []entry) [][]entry {
	if len(entries) <= max {
		// Copy: entries may be a subslice of a larger shared array, and
		// every node must own its entry storage (appends during later
		// dynamic inserts/splits would otherwise clobber sibling nodes).
		return [][]entry{append([]entry(nil), entries...)}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return center(entries[i].rect, d) < center(entries[j].rect, d)
	})
	if d == dim-1 {
		var out [][]entry
		for i := 0; i < len(entries); i += max {
			end := i + max
			if end > len(entries) {
				end = len(entries)
			}
			out = append(out, append([]entry(nil), entries[i:end]...))
		}
		return rebalanceTail(out, max)
	}
	// Number of slabs: ceil((n/max)^(1/(dim-d))) per STR.
	nNodes := int(math.Ceil(float64(len(entries)) / float64(max)))
	slabs := int(math.Ceil(math.Pow(float64(nNodes), 1/float64(dim-d))))
	if slabs < 1 {
		slabs = 1
	}
	per := int(math.Ceil(float64(len(entries)) / float64(slabs)))
	var out [][]entry
	for i := 0; i < len(entries); i += per {
		end := i + per
		if end > len(entries) {
			end = len(entries)
		}
		out = append(out, strTile(dim, d+1, max, entries[i:end])...)
	}
	return rebalanceTail(out, max)
}

// rebalanceTail fixes a final group that is smaller than the minimum fill
// by borrowing from its neighbour, so bulk-loaded trees satisfy the same
// occupancy invariant as incrementally built ones.
func rebalanceTail(groups [][]entry, max int) [][]entry {
	min := max / 4
	if min < 1 {
		min = 1
	}
	last := len(groups) - 1
	if last >= 1 && len(groups[last]) < min {
		prev := groups[last-1]
		need := min - len(groups[last])
		if len(prev)-need >= min {
			moved := append([]entry(nil), prev[len(prev)-need:]...)
			groups[last-1] = prev[:len(prev)-need]
			groups[last] = append(moved, groups[last]...)
		} else {
			// Merge the two tail groups when borrowing would underfill.
			merged := append(append([]entry(nil), prev...), groups[last]...)
			if len(merged) <= max {
				groups = append(groups[:last-1], merged)
			}
		}
	}
	return groups
}

func center(r Rect, d int) float64 { return (r.Lo[d] + r.Hi[d]) / 2 }
