package rtree

import "math"

// Rect is an axis-aligned minimum bounding rectangle in d dimensions.
type Rect struct {
	Lo, Hi []float64
}

// PointRect returns the degenerate rectangle covering a single point.
func PointRect(p []float64) Rect {
	lo := make([]float64, len(p))
	hi := make([]float64, len(p))
	copy(lo, p)
	copy(hi, p)
	return Rect{Lo: lo, Hi: hi}
}

// NewRect returns a rectangle with the given corners; it panics when the
// corners disagree in dimension or ordering, which is always a bug.
func NewRect(lo, hi []float64) Rect {
	if len(lo) != len(hi) {
		panic("rtree: corner dimension mismatch")
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic("rtree: lo > hi")
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Lo) }

// Area returns the d-dimensional volume of the rectangle.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of edge lengths (used by split heuristics).
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the point p lies inside r (inclusive).
func (r Rect) ContainsPoint(p []float64) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s overlap (boundary touch counts).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if s.Hi[i] < r.Lo[i] || s.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	lo := make([]float64, len(r.Lo))
	hi := make([]float64, len(r.Hi))
	for i := range r.Lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// Enlargement returns the area increase needed for r to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Center returns the rectangle's center point.
func (r Rect) Center() []float64 {
	c := make([]float64, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

func (r Rect) clone() Rect {
	lo := make([]float64, len(r.Lo))
	hi := make([]float64, len(r.Hi))
	copy(lo, r.Lo)
	copy(hi, r.Hi)
	return Rect{Lo: lo, Hi: hi}
}
