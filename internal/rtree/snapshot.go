package rtree

// Snapshot is a serialization-friendly image of a Tree. The paper stores
// the R-tree alongside the index file so synopsis updating can resume from
// it; Snapshot/FromSnapshot give the synopsis layer exactly that without
// exposing internal node types.
type Snapshot struct {
	Dim, Min, Max, Size int
	Root                *NodeSnapshot
}

// NodeSnapshot is one node of a Snapshot. Leaves carry the stored points
// and IDs; internal nodes carry children. Entry MBRs are recomputed on
// load.
type NodeSnapshot struct {
	Leaf     bool
	IDs      []int
	Points   [][]float64
	Children []*NodeSnapshot
}

// Snapshot captures the tree's current structure.
func (t *Tree) Snapshot() Snapshot {
	return Snapshot{
		Dim:  t.dim,
		Min:  t.min,
		Max:  t.max,
		Size: t.size,
		Root: snapNode(t.root),
	}
}

func snapNode(n *node) *NodeSnapshot {
	s := &NodeSnapshot{Leaf: n.leaf}
	if n.leaf {
		for _, e := range n.entries {
			s.IDs = append(s.IDs, e.id)
			s.Points = append(s.Points, append([]float64(nil), e.rect.Lo...))
		}
		return s
	}
	for _, e := range n.entries {
		s.Children = append(s.Children, snapNode(e.child))
	}
	return s
}

// FromSnapshot reconstructs a tree with the identical structure (same
// nodes, same level cut) as the snapshotted one.
func FromSnapshot(s Snapshot) *Tree {
	t := New(s.Dim, s.Min, s.Max)
	t.size = s.Size
	t.root = unsnapNode(s.Root, nil)
	return t
}

func unsnapNode(s *NodeSnapshot, parent *node) *node {
	n := &node{leaf: s.Leaf, parent: parent}
	if s.Leaf {
		for i, id := range s.IDs {
			n.entries = append(n.entries, entry{rect: PointRect(s.Points[i]), id: id})
		}
		return n
	}
	for _, cs := range s.Children {
		child := unsnapNode(cs, n)
		n.entries = append(n.entries, entry{rect: mbr(child.entries), child: child})
	}
	return n
}
