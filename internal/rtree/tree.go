package rtree

import (
	"fmt"
	"sort"
)

// entry is a slot in a node: either a child pointer (internal node) or a
// data item (leaf node).
type entry struct {
	rect  Rect
	child *node // nil for leaf entries
	id    int   // data ID for leaf entries
}

type node struct {
	leaf    bool
	entries []entry
	parent  *node
}

// Tree is a depth-balanced R-tree over d-dimensional points. Data items
// are identified by an integer ID supplied by the caller (the synopsis
// builder uses the original data-point index). The zero value is not
// usable; construct with New or Bulk.
type Tree struct {
	root     *node
	dim      int
	min, max int
	size     int
}

// DefaultMax is the default maximum node fan-out (Guttman's M).
const DefaultMax = 16

// New returns an empty tree over dim-dimensional points with node
// capacities [min,max]. min must be at least 2 and at most max/2.
func New(dim, min, max int) *Tree {
	if dim <= 0 {
		panic("rtree: non-positive dimension")
	}
	if min < 2 || min > max/2 {
		panic(fmt.Sprintf("rtree: invalid capacities min=%d max=%d", min, max))
	}
	return &Tree{
		root: &node{leaf: true},
		dim:  dim,
		min:  min,
		max:  max,
	}
}

// NewDefault returns an empty tree with default capacities for dim
// dimensions.
func NewDefault(dim int) *Tree {
	return New(dim, DefaultMax/4, DefaultMax)
}

// Len returns the number of stored data items.
func (t *Tree) Len() int { return t.size }

// Dim returns the point dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Height returns the number of levels (1 for a tree that is a single
// leaf). Depth 0 is the root level; leaves live at depth Height()-1.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		h++
	}
	return h
}

// Insert adds a data item with the given point and ID. IDs need not be
// unique as far as the tree is concerned, but the synopsis layer always
// supplies unique ones.
func (t *Tree) Insert(point []float64, id int) {
	if len(point) != t.dim {
		panic("rtree: point dimension mismatch")
	}
	t.insertEntry(entry{rect: PointRect(point), id: id}, 0)
	t.size++
}

// insertEntry inserts e at the given height above the leaf level
// (0 = leaf). Reinsertions during condense use level > 0.
func (t *Tree) insertEntry(e entry, level int) {
	n := t.chooseNode(e.rect, level)
	n.entries = append(n.entries, e)
	if e.child != nil {
		e.child.parent = n
	}
	if len(n.entries) > t.max {
		t.splitAndAdjust(n)
	} else {
		t.adjustUpward(n)
	}
}

// chooseNode descends to the node at `level` levels above the leaves whose
// MBR needs the least enlargement to cover r (ties: smallest area).
func (t *Tree) chooseNode(r Rect, level int) *node {
	n := t.root
	for {
		if n.leaf || t.levelAbove(n) == level {
			return n
		}
		best := -1
		bestEnl, bestArea := 0.0, 0.0
		for i := range n.entries {
			enl := n.entries[i].rect.Enlargement(r)
			area := n.entries[i].rect.Area()
			if best == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.entries[best].child
	}
}

// levelAbove returns how many levels n sits above the leaf level.
func (t *Tree) levelAbove(n *node) int {
	l := 0
	for !n.leaf {
		n = n.entries[0].child
		l++
	}
	return l
}

// splitAndAdjust splits an overflowing node and propagates changes to the
// root, growing the tree when the root itself splits.
func (t *Tree) splitAndAdjust(n *node) {
	for {
		a, b := t.quadraticSplit(n)
		if n == t.root {
			root := &node{leaf: false}
			root.entries = []entry{
				{rect: mbr(a.entries), child: a},
				{rect: mbr(b.entries), child: b},
			}
			a.parent, b.parent = root, root
			t.root = root
			return
		}
		parent := n.parent
		// Replace n's slot with a and append b.
		for i := range parent.entries {
			if parent.entries[i].child == n {
				parent.entries[i] = entry{rect: mbr(a.entries), child: a}
				break
			}
		}
		a.parent = parent
		parent.entries = append(parent.entries, entry{rect: mbr(b.entries), child: b})
		b.parent = parent
		if len(parent.entries) > t.max {
			n = parent
			continue
		}
		t.adjustUpward(parent)
		return
	}
}

// adjustUpward recomputes MBRs from n up to the root.
func (t *Tree) adjustUpward(n *node) {
	for n != t.root {
		p := n.parent
		for i := range p.entries {
			if p.entries[i].child == n {
				p.entries[i].rect = mbr(n.entries)
				break
			}
		}
		n = p
	}
}

func mbr(entries []entry) Rect {
	r := entries[0].rect.clone()
	for _, e := range entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// quadraticSplit distributes n's entries over n (reused) and a fresh node
// using Guttman's quadratic heuristic; it returns the two nodes.
func (t *Tree) quadraticSplit(n *node) (*node, *node) {
	entries := n.entries
	// Pick the pair wasting the most area if grouped together.
	si, sj := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].rect.Union(entries[j].rect).Area() -
				entries[i].rect.Area() - entries[j].rect.Area()
			if d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	a := n
	b := &node{leaf: n.leaf, parent: n.parent}
	rest := make([]entry, 0, len(entries)-2)
	for k, e := range entries {
		if k != si && k != sj {
			rest = append(rest, e)
		}
	}
	ea, eb := entries[si], entries[sj]
	a.entries = append(a.entries[:0], ea)
	b.entries = append(b.entries, eb)
	if ea.child != nil {
		ea.child.parent = a
	}
	if eb.child != nil {
		eb.child.parent = b
	}
	ra, rb := ea.rect.clone(), eb.rect.clone()

	for len(rest) > 0 {
		// Force assignment when one group must take all remaining
		// entries to reach the minimum fill.
		if len(a.entries)+len(rest) == t.min {
			for _, e := range rest {
				a.entries = append(a.entries, e)
				if e.child != nil {
					e.child.parent = a
				}
			}
			break
		}
		if len(b.entries)+len(rest) == t.min {
			for _, e := range rest {
				b.entries = append(b.entries, e)
				if e.child != nil {
					e.child.parent = b
				}
			}
			break
		}
		// Pick the entry with the strongest preference.
		bi, bd := -1, -1.0
		var preferA bool
		for i, e := range rest {
			da := ra.Union(e.rect).Area() - ra.Area()
			db := rb.Union(e.rect).Area() - rb.Area()
			diff := da - db
			if diff < 0 {
				diff = -diff
			}
			if diff > bd {
				bd, bi = diff, i
				preferA = da < db
			}
		}
		e := rest[bi]
		rest[bi] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if preferA || (bd == 0 && len(a.entries) <= len(b.entries)) {
			a.entries = append(a.entries, e)
			if e.child != nil {
				e.child.parent = a
			}
			ra = ra.Union(e.rect)
		} else {
			b.entries = append(b.entries, e)
			if e.child != nil {
				e.child.parent = b
			}
			rb = rb.Union(e.rect)
		}
	}
	return a, b
}

// Delete removes one data item with the given point and ID. It reports
// whether an item was found and removed. The tree is condensed so the
// depth-balance invariant is preserved.
func (t *Tree) Delete(point []float64, id int) bool {
	if len(point) != t.dim {
		panic("rtree: point dimension mismatch")
	}
	r := PointRect(point)
	leaf, idx := t.findLeaf(t.root, r, id)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	// Shrink the root when it has a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	return true
}

func (t *Tree) findLeaf(n *node, r Rect, id int) (*node, int) {
	if n.leaf {
		for i, e := range n.entries {
			if e.id == id && e.rect.Lo[0] == r.Lo[0] && e.rect.Contains(r) {
				return n, i
			}
		}
		return nil, -1
	}
	for _, e := range n.entries {
		if e.rect.Contains(r) {
			if leaf, i := t.findLeaf(e.child, r, id); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, -1
}

// condense removes underfull nodes along the path to the root and
// reinserts their surviving entries at the correct level.
func (t *Tree) condense(n *node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	for n != t.root {
		p := n.parent
		if len(n.entries) < t.min {
			// Detach n and queue its entries for reinsertion.
			for i := range p.entries {
				if p.entries[i].child == n {
					p.entries = append(p.entries[:i], p.entries[i+1:]...)
					break
				}
			}
			lvl := t.levelAbove(n)
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, level: lvl})
			}
		} else {
			for i := range p.entries {
				if p.entries[i].child == n {
					p.entries[i].rect = mbr(n.entries)
					break
				}
			}
		}
		n = p
	}
	// Reinsert deepest-first so levels exist when needed.
	sort.SliceStable(orphans, func(i, j int) bool { return orphans[i].level < orphans[j].level })
	for _, o := range orphans {
		if o.e.child == nil && t.root.leaf && len(t.root.entries) == 0 {
			// Empty tree: drop straight into the root leaf.
			t.root.entries = append(t.root.entries, o.e)
			continue
		}
		t.insertEntry(o.e, o.level)
	}
}

// Search appends to dst the IDs of all data items whose point lies within
// query and returns the extended slice.
func (t *Tree) Search(query Rect, dst []int) []int {
	if query.Dim() != t.dim {
		panic("rtree: query dimension mismatch")
	}
	return t.search(t.root, query, dst)
}

func (t *Tree) search(n *node, q Rect, dst []int) []int {
	for _, e := range n.entries {
		if !e.rect.Intersects(q) {
			continue
		}
		if n.leaf {
			dst = append(dst, e.id)
		} else {
			dst = t.search(e.child, q, dst)
		}
	}
	return dst
}

// All appends every stored ID to dst and returns the extended slice.
func (t *Tree) All(dst []int) []int {
	return t.collectIDs(t.root, dst)
}

func (t *Tree) collectIDs(n *node, dst []int) []int {
	if n.leaf {
		for _, e := range n.entries {
			dst = append(dst, e.id)
		}
		return dst
	}
	for _, e := range n.entries {
		dst = t.collectIDs(e.child, dst)
	}
	return dst
}

// LevelCut describes one node at a cut depth: its MBR and the IDs of all
// data items stored beneath it. The synopsis builder turns each LevelCut
// node into one aggregated data point.
type LevelCut struct {
	MBR     Rect
	Members []int
}

// NodesAtDepth returns one LevelCut per node at the given depth
// (0 = root). Because the tree is depth-balanced the member sets
// partition the stored IDs. It panics when depth is out of range.
func (t *Tree) NodesAtDepth(depth int) []LevelCut {
	h := t.Height()
	if depth < 0 || depth >= h {
		panic(fmt.Sprintf("rtree: depth %d out of range (height %d)", depth, h))
	}
	level := []*node{t.root}
	for d := 0; d < depth; d++ {
		var next []*node
		for _, n := range level {
			for _, e := range n.entries {
				next = append(next, e.child)
			}
		}
		level = next
	}
	cuts := make([]LevelCut, 0, len(level))
	for _, n := range level {
		if len(n.entries) == 0 {
			continue
		}
		cuts = append(cuts, LevelCut{
			MBR:     mbr(n.entries),
			Members: t.collectIDs(n, nil),
		})
	}
	return cuts
}

// CountAtDepth returns the number of nodes at the given depth.
func (t *Tree) CountAtDepth(depth int) int {
	return len(t.NodesAtDepth(depth))
}

// ChooseDepth returns the deepest depth whose node count does not exceed
// maxNodes — i.e. the finest-grained cut that still keeps the synopsis
// below the requested size. If even the root level exceeds maxNodes (it
// never does: the root is one node), depth 0 is returned.
func (t *Tree) ChooseDepth(maxNodes int) int {
	best := 0
	for d := 0; d < t.Height(); d++ {
		if t.CountAtDepth(d) <= maxNodes {
			best = d
		} else {
			break
		}
	}
	return best
}
