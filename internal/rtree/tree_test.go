package rtree

import (
	"sort"
	"testing"
	"testing/quick"

	"accuracytrader/internal/stats"
)

func randPoints(rng *stats.RNG, n, dim int) []Item {
	items := make([]Item, n)
	for i := range items {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.Float64() * 100
		}
		items[i] = Item{Point: p, ID: i}
	}
	return items
}

func TestRectBasics(t *testing.T) {
	r := NewRect([]float64{0, 0}, []float64{2, 3})
	if r.Area() != 6 {
		t.Fatalf("Area = %v", r.Area())
	}
	if r.Margin() != 5 {
		t.Fatalf("Margin = %v", r.Margin())
	}
	s := NewRect([]float64{1, 1}, []float64{2, 2})
	if !r.Contains(s) || s.Contains(r) {
		t.Fatal("containment wrong")
	}
	if !r.Intersects(s) {
		t.Fatal("intersect wrong")
	}
	far := NewRect([]float64{10, 10}, []float64{11, 11})
	if r.Intersects(far) {
		t.Fatal("should not intersect")
	}
	u := r.Union(far)
	if u.Lo[0] != 0 || u.Hi[0] != 11 {
		t.Fatalf("union = %+v", u)
	}
	if got := r.Enlargement(far); got != 11*11-6 {
		t.Fatalf("enlargement = %v", got)
	}
	c := s.Center()
	if c[0] != 1.5 || c[1] != 1.5 {
		t.Fatalf("center = %v", c)
	}
	if !r.ContainsPoint([]float64{1, 1}) || r.ContainsPoint([]float64{3, 0}) {
		t.Fatal("ContainsPoint wrong")
	}
}

func TestRectPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRect([]float64{0}, []float64{1, 2}) },
		func() { NewRect([]float64{2}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInsertAndSearch(t *testing.T) {
	tr := NewDefault(2)
	rng := stats.NewRNG(1)
	items := randPoints(rng, 500, 2)
	for _, it := range items {
		tr.Insert(it.Point, it.ID)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Range query vs brute force.
	q := NewRect([]float64{20, 20}, []float64{60, 70})
	got := tr.Search(q, nil)
	var want []int
	for _, it := range items {
		if q.ContainsPoint(it.Point) {
			want = append(want, it.ID)
		}
	}
	sort.Ints(got)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("search found %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("search mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestAllReturnsEverything(t *testing.T) {
	tr := NewDefault(3)
	rng := stats.NewRNG(2)
	for _, it := range randPoints(rng, 300, 3) {
		tr.Insert(it.Point, it.ID)
	}
	ids := tr.All(nil)
	if len(ids) != 300 {
		t.Fatalf("All returned %d", len(ids))
	}
	sort.Ints(ids)
	for i, id := range ids {
		if id != i {
			t.Fatalf("missing/dup id at %d: %d", i, id)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := NewDefault(2)
	rng := stats.NewRNG(3)
	items := randPoints(rng, 400, 2)
	for _, it := range items {
		tr.Insert(it.Point, it.ID)
	}
	// Delete every third item.
	deleted := map[int]bool{}
	for i := 0; i < len(items); i += 3 {
		if !tr.Delete(items[i].Point, items[i].ID) {
			t.Fatalf("Delete(%d) failed", i)
		}
		deleted[i] = true
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	ids := tr.All(nil)
	if len(ids) != tr.Len() {
		t.Fatalf("All len %d vs size %d", len(ids), tr.Len())
	}
	for _, id := range ids {
		if deleted[id] {
			t.Fatalf("deleted id %d still present", id)
		}
	}
	// Deleting a missing item returns false.
	if tr.Delete([]float64{-999, -999}, 123456) {
		t.Fatal("Delete of absent item returned true")
	}
}

func TestDeleteAll(t *testing.T) {
	tr := NewDefault(2)
	rng := stats.NewRNG(4)
	items := randPoints(rng, 100, 2)
	for _, it := range items {
		tr.Insert(it.Point, it.ID)
	}
	for _, it := range items {
		if !tr.Delete(it.Point, it.ID) {
			t.Fatalf("Delete(%d) failed", it.ID)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", it.ID, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	// Tree must remain usable.
	tr.Insert([]float64{1, 1}, 7)
	if got := tr.All(nil); len(got) != 1 || got[0] != 7 {
		t.Fatalf("reuse after empty failed: %v", got)
	}
}

func TestBulkLoad(t *testing.T) {
	rng := stats.NewRNG(5)
	for _, n := range []int{0, 1, 5, 16, 17, 100, 1000, 4321} {
		items := randPoints(rng, n, 3)
		tr := Bulk(3, DefaultMax/4, DefaultMax, items)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ids := tr.All(nil)
		sort.Ints(ids)
		for i, id := range ids {
			if id != i {
				t.Fatalf("n=%d: id set corrupted at %d", n, i)
			}
		}
	}
}

func TestBulkThenDynamicOps(t *testing.T) {
	rng := stats.NewRNG(6)
	items := randPoints(rng, 800, 2)
	tr := Bulk(2, DefaultMax/4, DefaultMax, items)
	// Dynamic inserts on a bulk-loaded tree.
	extra := randPoints(rng, 200, 2)
	for i, it := range extra {
		tr.Insert(it.Point, 800+i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 400; i++ {
		if !tr.Delete(items[i].Point, items[i].ID) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := NewDefault(2)
	if tr.Height() != 1 {
		t.Fatalf("empty height = %d", tr.Height())
	}
	rng := stats.NewRNG(7)
	for _, it := range randPoints(rng, 2000, 2) {
		tr.Insert(it.Point, it.ID)
	}
	h := tr.Height()
	if h < 3 {
		t.Fatalf("2000 points with fanout 16 should have height >= 3, got %d", h)
	}
}

func TestNodesAtDepthPartition(t *testing.T) {
	rng := stats.NewRNG(8)
	items := randPoints(rng, 1500, 3)
	tr := Bulk(3, DefaultMax/4, DefaultMax, items)
	for d := 0; d < tr.Height(); d++ {
		cuts := tr.NodesAtDepth(d)
		seen := map[int]bool{}
		total := 0
		for _, c := range cuts {
			total += len(c.Members)
			for _, id := range c.Members {
				if seen[id] {
					t.Fatalf("depth %d: id %d in two cuts", d, id)
				}
				seen[id] = true
			}
		}
		if total != 1500 {
			t.Fatalf("depth %d: members total %d, want 1500", d, total)
		}
	}
}

func TestNodesAtDepthCountsGrow(t *testing.T) {
	rng := stats.NewRNG(9)
	tr := Bulk(2, DefaultMax/4, DefaultMax, randPoints(rng, 3000, 2))
	prev := 0
	for d := 0; d < tr.Height(); d++ {
		c := tr.CountAtDepth(d)
		if c < prev {
			t.Fatalf("node count shrank from %d to %d at depth %d", prev, c, d)
		}
		prev = c
	}
	if tr.CountAtDepth(0) != 1 {
		t.Fatalf("root level count = %d", tr.CountAtDepth(0))
	}
}

func TestChooseDepth(t *testing.T) {
	rng := stats.NewRNG(10)
	tr := Bulk(2, DefaultMax/4, DefaultMax, randPoints(rng, 4096, 2))
	for _, maxNodes := range []int{1, 10, 40, 100, 1000} {
		d := tr.ChooseDepth(maxNodes)
		if got := tr.CountAtDepth(d); got > maxNodes {
			t.Fatalf("ChooseDepth(%d) -> depth %d with %d nodes", maxNodes, d, got)
		}
		// The next depth (if any) must exceed maxNodes, i.e. d is deepest.
		if d+1 < tr.Height() {
			if next := tr.CountAtDepth(d + 1); next <= maxNodes {
				t.Fatalf("ChooseDepth(%d) not deepest: depth %d has %d nodes", maxNodes, d+1, next)
			}
		}
	}
}

func TestNodesAtDepthPanics(t *testing.T) {
	tr := NewDefault(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.NodesAtDepth(5)
}

func TestSimilarPointsGroupTogether(t *testing.T) {
	// Two tight, well-separated clusters inserted dynamically: at most a
	// small fraction of points may end up in a cut that mixes clusters
	// (the quadratic split separates them by area waste).
	tr := NewDefault(2)
	rng := stats.NewRNG(11)
	for i := 0; i < 256; i++ {
		tr.Insert([]float64{rng.Norm(0, 0.5), rng.Norm(0, 0.5)}, i)
	}
	for i := 256; i < 512; i++ {
		tr.Insert([]float64{rng.Norm(100, 0.5), rng.Norm(100, 0.5)}, i)
	}
	mixed := 0
	for _, cut := range tr.NodesAtDepth(tr.Height() - 1) {
		lo, hi := 0, 0
		for _, id := range cut.Members {
			if id < 256 {
				lo++
			} else {
				hi++
			}
		}
		if lo > 0 && hi > 0 {
			mixed += lo + hi
		}
	}
	if mixed > 512/10 {
		t.Fatalf("%d of 512 points live in cluster-mixing leaves", mixed)
	}
}

func TestQuickInsertDeleteInvariants(t *testing.T) {
	rng := stats.NewRNG(12)
	f := func(seed uint32, nOps uint8) bool {
		r := rng.Split(uint64(seed))
		tr := New(2, 2, 8)
		type live struct {
			p  []float64
			id int
		}
		var alive []live
		next := 0
		ops := int(nOps)%120 + 10
		for i := 0; i < ops; i++ {
			if len(alive) == 0 || r.Float64() < 0.6 {
				p := []float64{r.Float64() * 50, r.Float64() * 50}
				tr.Insert(p, next)
				alive = append(alive, live{p, next})
				next++
			} else {
				k := r.Intn(len(alive))
				if !tr.Delete(alive[k].p, alive[k].id) {
					return false
				}
				alive = append(alive[:k], alive[k+1:]...)
			}
			if tr.CheckInvariants() != nil {
				return false
			}
			if tr.Len() != len(alive) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ dim, min, max int }{{0, 2, 8}, {2, 1, 8}, {2, 5, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d,%d) did not panic", c.dim, c.min, c.max)
				}
			}()
			New(c.dim, c.min, c.max)
		}()
	}
}

func TestInsertDimensionMismatchPanics(t *testing.T) {
	tr := NewDefault(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Insert([]float64{1, 2, 3}, 0)
}
