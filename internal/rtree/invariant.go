package rtree

import "fmt"

// CheckInvariants validates the structural invariants the rest of the
// system depends on and returns a descriptive error when one is violated:
//
//   - the tree is depth-balanced (all leaves at the same depth);
//   - every internal entry's rectangle equals the MBR of its child;
//   - node occupancy is within [min,max] except at the root;
//   - parent pointers are consistent;
//   - the stored size matches the number of leaf entries.
//
// It is exported so that property-based tests in dependent packages can
// assert tree health after arbitrary operation sequences.
func (t *Tree) CheckInvariants() error {
	leafDepth := -1
	count := 0
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n != t.root {
			if len(n.entries) < t.min {
				return fmt.Errorf("rtree: node at depth %d underfull (%d < %d)", depth, len(n.entries), t.min)
			}
		}
		if len(n.entries) > t.max {
			return fmt.Errorf("rtree: node at depth %d overfull (%d > %d)", depth, len(n.entries), t.max)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			count += len(n.entries)
			return nil
		}
		for i, e := range n.entries {
			if e.child == nil {
				return fmt.Errorf("rtree: internal entry %d has nil child", i)
			}
			if e.child.parent != n {
				return fmt.Errorf("rtree: broken parent pointer at depth %d", depth)
			}
			if len(e.child.entries) > 0 {
				m := mbr(e.child.entries)
				if !e.rect.Contains(m) {
					return fmt.Errorf("rtree: entry MBR does not cover child at depth %d", depth)
				}
			}
			if err := walk(e.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d leaf entries", t.size, count)
	}
	return nil
}
