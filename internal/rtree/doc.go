// Package rtree implements the depth-balanced R-tree used by the offline
// synopsis-management module (DESIGN.md §2, paper §2.2). It supports
// dynamic insertion (Guttman, quadratic split), deletion with tree
// condensation, STR bulk loading, range search and — the operation the
// synopsis builder relies on — enumeration of all nodes at a chosen depth
// together with the data-point IDs below each node.
package rtree
