package rtree

// CutToTarget returns a partition of the stored data into at most
// maxNodes groups of R-tree nodes. It starts from the deepest full level
// whose node count fits (ChooseDepth) and then greedily splits the
// largest remaining nodes into their children while the group count stays
// within maxNodes.
//
// Rationale: with fan-out F the per-level node counts jump by ~F x, so a
// pure single-depth cut can land far below the requested synopsis size
// (e.g. 3 groups when 13 were requested), making correlation ranking
// needlessly coarse. The refinement keeps every group an R-tree node —
// preserving the similarity grouping of paper §2.2 — while approaching
// the requested granularity. The paper's single-depth cut is recovered by
// NodesAtDepth for comparison (see the ablation benchmarks).
func (t *Tree) CutToTarget(maxNodes int) []LevelCut {
	if t.Len() == 0 {
		return nil
	}
	if maxNodes < 1 {
		maxNodes = 1
	}
	depth := t.ChooseDepth(maxNodes)
	cut := t.nodesAt(depth)
	sizes := make(map[*node]int, len(cut))
	size := func(n *node) int {
		if s, ok := sizes[n]; ok {
			return s
		}
		s := len(t.collectIDs(n, nil))
		sizes[n] = s
		return s
	}
	for {
		best := -1
		for i, n := range cut {
			if n.leaf || len(n.entries) == 0 {
				continue
			}
			if len(cut)+len(n.entries)-1 > maxNodes {
				continue
			}
			if best == -1 || size(n) > size(cut[best]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		n := cut[best]
		children := make([]*node, 0, len(n.entries))
		for _, e := range n.entries {
			children = append(children, e.child)
		}
		cut = append(cut[:best], append(children, cut[best+1:]...)...)
	}
	out := make([]LevelCut, 0, len(cut))
	for _, n := range cut {
		if len(n.entries) == 0 {
			continue
		}
		out = append(out, LevelCut{MBR: mbr(n.entries), Members: t.collectIDs(n, nil)})
	}
	return out
}

// nodesAt returns the internal node list at a depth (0 = root).
func (t *Tree) nodesAt(depth int) []*node {
	level := []*node{t.root}
	for d := 0; d < depth; d++ {
		var next []*node
		for _, n := range level {
			for _, e := range n.entries {
				next = append(next, e.child)
			}
		}
		level = next
	}
	return level
}
