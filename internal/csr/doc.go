// Package csr provides flat CSR-style row storage — a performance
// extension (PR 2) beyond the paper, backing the online scoring
// kernels whose per-request cost every latency figure rests on.
//
// All rows of a ragged 2-D collection live in one backing array, addressed by per-row
// (offset, length, capacity) spans. Compared to a [][]T it removes one
// slice header + one allocation per row, and streaming over a row — the
// dominant access pattern of the online scoring kernels — touches one
// contiguous region of memory.
//
// Unlike textbook CSR, rows stay mutable: each row carries slack
// capacity, in-row inserts and removals shift within the row, and a row
// that outgrows its capacity relocates to the end of the backing array,
// leaving a hole. Holes are reclaimed by compaction once they exceed half
// the backing array, so space stays O(live + slack) amortized.
package csr
