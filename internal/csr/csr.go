package csr

// span addresses one row inside the backing array.
type span struct {
	off int32
	n   int32
	cap int32
}

// Store is a mutable CSR container. The zero value is an empty store.
// Row slices returned by Row alias the backing array: they are
// invalidated by any subsequent mutation of the store.
type Store[T any] struct {
	flat []T
	rows []span
	live int // total live elements across rows
	dead int // abandoned capacity from relocated rows
}

// NumRows returns the number of rows ever added.
func (s *Store[T]) NumRows() int { return len(s.rows) }

// Len returns the length of row r.
func (s *Store[T]) Len(r int) int { return int(s.rows[r].n) }

// TotalLen returns the total number of live elements across all rows.
func (s *Store[T]) TotalLen() int { return s.live }

// Row returns row r as a slice of the backing array (read-mutable in
// place, but append would clobber a neighbouring row — the slice is
// capacity-clamped to prevent that).
func (s *Store[T]) Row(r int) []T {
	sp := s.rows[r]
	return s.flat[sp.off : sp.off+sp.n : sp.off+sp.n]
}

// AddRow appends a new row holding a copy of items and returns its id.
func (s *Store[T]) AddRow(items []T) int {
	r := len(s.rows)
	s.rows = append(s.rows, span{})
	s.SetRow(r, items)
	return r
}

// SetRow replaces row r's contents with a copy of items.
func (s *Store[T]) SetRow(r int, items []T) {
	sp := &s.rows[r]
	s.live += len(items) - int(sp.n)
	if len(items) <= int(sp.cap) {
		copy(s.flat[sp.off:], items)
		sp.n = int32(len(items))
		s.maybeCompact()
		return
	}
	s.relocate(r, int32(growCap(len(items))), false)
	sp = &s.rows[r]
	copy(s.flat[sp.off:], items)
	sp.n = int32(len(items))
	s.maybeCompact()
}

// InsertAt inserts v at position i of row r, shifting the tail right.
func (s *Store[T]) InsertAt(r, i int, v T) {
	sp := &s.rows[r]
	if sp.n == sp.cap {
		s.relocate(r, int32(growCap(int(sp.n)+1)), true)
		sp = &s.rows[r]
	}
	row := s.flat[sp.off : sp.off+sp.n+1]
	copy(row[i+1:], row[i:])
	row[i] = v
	sp.n++
	s.live++
	s.maybeCompact()
}

// RemoveAt removes position i of row r, shifting the tail left.
func (s *Store[T]) RemoveAt(r, i int) {
	sp := &s.rows[r]
	row := s.flat[sp.off : sp.off+sp.n]
	copy(row[i:], row[i+1:])
	sp.n--
	s.live--
}

// relocate moves row r to the end of the backing array with the given
// capacity, abandoning its old span. keepData copies the old contents
// into the new span; SetRow passes false since it overwrites the row
// wholesale anyway.
func (s *Store[T]) relocate(r int, newCap int32, keepData bool) {
	sp := s.rows[r]
	off := int32(len(s.flat))
	s.flat = append(s.flat, make([]T, newCap)...)
	if keepData {
		copy(s.flat[off:], s.flat[sp.off:sp.off+sp.n])
	}
	s.dead += int(sp.cap)
	s.rows[r] = span{off: off, n: sp.n, cap: newCap}
}

// growCap returns the relocation capacity for a row that must hold n
// elements: doubling with a small floor, so repeated single-element
// inserts relocate O(log n) times.
func growCap(n int) int {
	c := 4
	for c < n {
		c *= 2
	}
	return c
}

// maybeCompact repacks the backing array when more than half of it is
// dead. Row capacities (slack) are preserved, only holes are squeezed
// out, so compaction cannot cascade.
func (s *Store[T]) maybeCompact() {
	if s.dead <= len(s.flat)/2 || s.dead < 1024 {
		return
	}
	s.Compact()
}

// Compact rewrites the backing array without holes. All previously
// returned row slices are invalidated.
func (s *Store[T]) Compact() {
	total := 0
	for _, sp := range s.rows {
		total += int(sp.cap)
	}
	flat := make([]T, 0, total)
	for r := range s.rows {
		sp := &s.rows[r]
		off := int32(len(flat))
		flat = append(flat, s.flat[sp.off:sp.off+sp.cap]...)
		sp.off = off
	}
	s.flat = flat
	s.dead = 0
}
