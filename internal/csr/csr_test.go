package csr

import (
	"testing"

	"accuracytrader/internal/stats"
)

// model is the obvious [][]int reference implementation.
type model struct{ rows [][]int }

func (m *model) addRow(items []int) int {
	m.rows = append(m.rows, append([]int(nil), items...))
	return len(m.rows) - 1
}
func (m *model) setRow(r int, items []int) { m.rows[r] = append([]int(nil), items...) }
func (m *model) insertAt(r, i int, v int) {
	row := m.rows[r]
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = v
	m.rows[r] = row
}
func (m *model) removeAt(r, i int) {
	m.rows[r] = append(m.rows[r][:i], m.rows[r][i+1:]...)
}

func checkAgainstModel(t *testing.T, s *Store[int], m *model) {
	t.Helper()
	if s.NumRows() != len(m.rows) {
		t.Fatalf("NumRows %d, want %d", s.NumRows(), len(m.rows))
	}
	total := 0
	for r := range m.rows {
		total += len(m.rows[r])
		if s.Len(r) != len(m.rows[r]) {
			t.Fatalf("row %d len %d, want %d", r, s.Len(r), len(m.rows[r]))
		}
		row := s.Row(r)
		for i, v := range m.rows[r] {
			if row[i] != v {
				t.Fatalf("row %d pos %d: %d, want %d", r, i, row[i], v)
			}
		}
	}
	if s.TotalLen() != total {
		t.Fatalf("TotalLen %d, want %d", s.TotalLen(), total)
	}
}

func TestStoreBasics(t *testing.T) {
	var s Store[int]
	r0 := s.AddRow([]int{1, 2, 3})
	r1 := s.AddRow(nil)
	r2 := s.AddRow([]int{9})
	if r0 != 0 || r1 != 1 || r2 != 2 {
		t.Fatal("row ids wrong")
	}
	if s.TotalLen() != 4 || s.Len(1) != 0 {
		t.Fatal("lengths wrong")
	}
	s.SetRow(1, []int{7, 8})
	if got := s.Row(1); len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("row 1 = %v", got)
	}
	// Shrink in place.
	s.SetRow(0, []int{5})
	if got := s.Row(0); len(got) != 1 || got[0] != 5 {
		t.Fatalf("row 0 = %v", got)
	}
	if s.TotalLen() != 4 {
		t.Fatalf("TotalLen = %d", s.TotalLen())
	}
}

func TestStoreInsertRemove(t *testing.T) {
	var s Store[int]
	s.AddRow([]int{10, 30})
	s.InsertAt(0, 1, 20)
	s.InsertAt(0, 3, 40)
	s.InsertAt(0, 0, 5)
	want := []int{5, 10, 20, 30, 40}
	row := s.Row(0)
	for i, v := range want {
		if row[i] != v {
			t.Fatalf("after inserts: %v", row)
		}
	}
	s.RemoveAt(0, 2)
	s.RemoveAt(0, 0)
	row = s.Row(0)
	want = []int{10, 30, 40}
	if len(row) != 3 {
		t.Fatalf("after removes: %v", row)
	}
	for i, v := range want {
		if row[i] != v {
			t.Fatalf("after removes: %v", row)
		}
	}
}

func TestStoreRowSliceIsCapacityClamped(t *testing.T) {
	var s Store[int]
	s.AddRow([]int{1})
	s.AddRow([]int{2})
	row := s.Row(0)
	if cap(row) != len(row) {
		t.Fatalf("row slice not clamped: len %d cap %d", len(row), cap(row))
	}
}

func TestStoreCompactPreservesContents(t *testing.T) {
	var s Store[int]
	var m model
	rng := stats.NewRNG(7)
	for r := 0; r < 20; r++ {
		items := make([]int, rng.Intn(10))
		for i := range items {
			items[i] = rng.Intn(100)
		}
		s.AddRow(items)
		m.addRow(items)
	}
	// Force relocations by growing rows, then compact explicitly.
	for r := 0; r < 20; r++ {
		for j := 0; j < 10; j++ {
			v := rng.Intn(100)
			s.InsertAt(r, s.Len(r), v)
			m.insertAt(r, len(m.rows[r]), v)
		}
	}
	s.Compact()
	checkAgainstModel(t, &s, &m)
	if s.dead != 0 {
		t.Fatalf("dead after compact = %d", s.dead)
	}
}

func TestStoreRandomizedAgainstModel(t *testing.T) {
	rng := stats.NewRNG(42)
	var s Store[int]
	var m model
	for op := 0; op < 5000; op++ {
		switch {
		case s.NumRows() == 0 || rng.Float64() < 0.1:
			items := make([]int, rng.Intn(6))
			for i := range items {
				items[i] = rng.Intn(1000)
			}
			s.AddRow(items)
			m.addRow(items)
		case rng.Float64() < 0.2:
			r := rng.Intn(s.NumRows())
			items := make([]int, rng.Intn(12))
			for i := range items {
				items[i] = rng.Intn(1000)
			}
			s.SetRow(r, items)
			m.setRow(r, items)
		case rng.Float64() < 0.6:
			r := rng.Intn(s.NumRows())
			i := rng.Intn(s.Len(r) + 1)
			v := rng.Intn(1000)
			s.InsertAt(r, i, v)
			m.insertAt(r, i, v)
		default:
			r := rng.Intn(s.NumRows())
			if s.Len(r) == 0 {
				continue
			}
			i := rng.Intn(s.Len(r))
			s.RemoveAt(r, i)
			m.removeAt(r, i)
		}
	}
	checkAgainstModel(t, &s, &m)
}
