package csr

import "testing"

// TestAppendElem pins AppendElem against the InsertAt-at-tail semantics
// it shortcuts, across relocations and interleaved rows.
func TestAppendElem(t *testing.T) {
	var a, b Store[int]
	for r := 0; r < 3; r++ {
		a.AddRow(nil)
		b.AddRow(nil)
	}
	for i := 0; i < 200; i++ {
		r := i % 3
		a.AppendElem(r, i)
		b.InsertAt(r, b.Len(r), i)
	}
	if a.TotalLen() != 200 || b.TotalLen() != 200 {
		t.Fatalf("TotalLen = %d/%d, want 200", a.TotalLen(), b.TotalLen())
	}
	for r := 0; r < 3; r++ {
		ra, rb := a.Row(r), b.Row(r)
		if len(ra) != len(rb) {
			t.Fatalf("row %d: len %d vs %d", r, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("row %d[%d]: %d vs %d", r, i, ra[i], rb[i])
			}
		}
	}
	// Tail appends after a SetRow shrink must not clobber neighbours.
	a.SetRow(1, []int{7})
	a.AppendElem(1, 8)
	if got := a.Row(1); len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("row 1 after shrink+append = %v", got)
	}
	if a.Len(0) != 67 || a.Len(2) != 66 {
		t.Fatalf("neighbour rows disturbed: %d/%d", a.Len(0), a.Len(2))
	}
}
