package csr

// AppendElem appends v at the end of row r in O(1) amortized time: the
// building block of append-friendly delta segments, where new elements
// only ever arrive at row tails. Equivalent to InsertAt(r, Len(r), v)
// but without the tail shift bookkeeping.
func (s *Store[T]) AppendElem(r int, v T) {
	sp := &s.rows[r]
	if sp.n == sp.cap {
		s.relocate(r, int32(growCap(int(sp.n)+1)), true)
		sp = &s.rows[r]
	}
	s.flat[sp.off+sp.n] = v
	sp.n++
	s.live++
	s.maybeCompact()
}
