package metrics

import (
	"math"
	"sort"

	"accuracytrader/internal/stats"
)

// Skill converts an RMSE into prediction skill relative to the trivial
// baseline RMSE: 1 is perfect, 0 is no better than the baseline.
func Skill(rmse, baselineRMSE float64) float64 {
	if baselineRMSE <= 0 || math.IsNaN(rmse) {
		return 0
	}
	s := 1 - rmse/baselineRMSE
	if s < 0 {
		return 0
	}
	return s
}

// LossPct is the percentage decrease from the exact accuracy to the
// approximate accuracy, clamped to [0,100].
func LossPct(exact, approx float64) float64 {
	if exact <= 0 {
		return 0
	}
	l := 100 * (exact - approx) / exact
	if l < 0 {
		return 0
	}
	if l > 100 {
		return 100
	}
	return l
}

// OverlapLossPct is the search-engine loss: 100*(1-overlap).
func OverlapLossPct(overlap float64) float64 {
	return LossPct(1, overlap)
}

// Series accumulates (time, value) observations into fixed-width time
// bins and reports per-bin summary statistics — the building block of the
// paper's fluctuation figures (one bin per minute for Figures 5-6, one
// per hour for Figures 7-8).
type Series struct {
	binMs float64
	bins  [][]float64
}

// NewSeries returns a series with n bins of width binMs starting at t=0.
func NewSeries(binMs float64, n int) *Series {
	if binMs <= 0 || n <= 0 {
		panic("metrics: invalid series shape")
	}
	return &Series{binMs: binMs, bins: make([][]float64, n)}
}

// Add records value v at time t (ms). Out-of-range times are dropped.
func (s *Series) Add(t, v float64) {
	if t < 0 {
		return
	}
	i := int(t / s.binMs)
	if i >= len(s.bins) {
		return
	}
	s.bins[i] = append(s.bins[i], v)
}

// Bins returns the number of bins.
func (s *Series) Bins() int { return len(s.bins) }

// Count returns the number of observations in bin i.
func (s *Series) Count(i int) int { return len(s.bins[i]) }

// Percentile returns the p-th percentile of bin i (NaN when empty).
func (s *Series) Percentile(i int, p float64) float64 {
	if len(s.bins[i]) == 0 {
		return math.NaN()
	}
	out := make([]float64, 1)
	var scratch []float64
	s.binPercentiles(i, []float64{p}, out, &scratch)
	return out[0]
}

// Mean returns the mean of bin i (NaN when empty).
func (s *Series) Mean(i int) float64 {
	if len(s.bins[i]) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.bins[i] {
		sum += v
	}
	return sum / float64(len(s.bins[i]))
}

// MeanSeries returns per-bin means.
func (s *Series) MeanSeries() []float64 {
	out := make([]float64, len(s.bins))
	for i := range s.bins {
		out[i] = s.Mean(i)
	}
	return out
}

// PercentileSeries returns per-bin p-th percentiles.
func (s *Series) PercentileSeries(p float64) []float64 {
	return s.PercentileSeriesAll(p)[0]
}

// PercentileSeriesAll returns, for each requested quantile, the
// per-bin percentile series: out[j][i] is the ps[j]-th percentile of
// bin i. Each bin is copied into a reused scratch buffer and sorted
// exactly once, and every requested quantile is read from that one
// sorted copy — the multi-quantile reports (p50/p99/p99.9 panels) no
// longer re-copy and re-sort every bin per quantile.
func (s *Series) PercentileSeriesAll(ps ...float64) [][]float64 {
	out := make([][]float64, len(ps))
	for j := range out {
		out[j] = make([]float64, len(s.bins))
	}
	var scratch []float64
	row := make([]float64, len(ps))
	for i := range s.bins {
		if len(s.bins[i]) == 0 {
			for j := range ps {
				out[j][i] = math.NaN()
			}
			continue
		}
		s.binPercentiles(i, ps, row, &scratch)
		for j := range ps {
			out[j][i] = row[j]
		}
	}
	return out
}

// binPercentiles sorts bin i once (into *scratch, reused across bins)
// and reads every requested quantile from the sorted copy into out.
// The bin must be non-empty.
func (s *Series) binPercentiles(i int, ps []float64, out []float64, scratch *[]float64) {
	cp := append((*scratch)[:0], s.bins[i]...)
	sort.Float64s(cp)
	*scratch = cp
	for j, p := range ps {
		out[j] = stats.PercentileSorted(cp, p)
	}
}
