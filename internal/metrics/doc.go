// Package metrics defines the evaluation metrics of the paper (§4.1) and
// the time-binned series used to render the per-minute / per-hour panels
// of Figures 5-8.
//
// Accuracy-loss definitions (documented in EXPERIMENTS.md):
//
//   - Search engine: accuracy is the fraction of the actual top-10 pages
//     present in the retrieved top-10; exact processing scores 1 by
//     construction, so loss% = 100*(1 - overlap).
//   - Recommender: the paper reports losses in [0,100]% even when a
//     technique answers with no usable neighbours, so raw RMSE ratios do
//     not work as the loss measure. We define accuracy as prediction
//     skill over the trivial predictor (always answering the active
//     user's mean rating): skill = max(0, 1 - RMSE/RMSE_trivial). A
//     technique that degrades to the trivial answer has skill 0, i.e.
//     100% loss — exactly the regime Partial execution reaches under
//     overload. loss% = 100*(skill_exact - skill_approx)/skill_exact.
package metrics
