package metrics

import (
	"math"
	"sort"
	"testing"

	"accuracytrader/internal/stats"
)

// naivePercentile is the retained reference: re-copy and re-sort the
// bin for every quantile read, exactly as PercentileSeries did before
// the sort-once rewrite.
func naivePercentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), vals...)
	sort.Float64s(cp)
	return stats.PercentileSorted(cp, p)
}

func fillSeries(seed uint64, bins, perBin int) *Series {
	rng := stats.NewRNG(seed)
	s := NewSeries(1000, bins)
	for i := 0; i < bins; i++ {
		n := rng.Intn(perBin + 1) // some bins sparse or empty
		for j := 0; j < n; j++ {
			s.Add(float64(i)*1000+rng.Float64()*999, rng.LogNormal(2, 1))
		}
	}
	return s
}

// TestPercentileSeriesMatchesNaive asserts the sort-once path returns
// bit-identical values to the per-quantile re-sort reference, across
// single- and multi-quantile reads, sparse and empty bins included.
func TestPercentileSeriesMatchesNaive(t *testing.T) {
	quantiles := []float64{0, 10, 50, 90, 95, 99, 99.9, 100}
	for seed := uint64(1); seed <= 5; seed++ {
		s := fillSeries(seed, 24, 40)
		all := s.PercentileSeriesAll(quantiles...)
		for j, p := range quantiles {
			single := s.PercentileSeries(p)
			for i := 0; i < s.Bins(); i++ {
				want := naivePercentile(s.bins[i], p)
				for name, got := range map[string]float64{"all": all[j][i], "single": single[i], "Percentile": s.Percentile(i, p)} {
					if math.IsNaN(want) != math.IsNaN(got) || (!math.IsNaN(want) && want != got) {
						t.Fatalf("seed %d bin %d p%.1f (%s): got %v want %v", seed, i, p, name, got, want)
					}
				}
			}
		}
	}
}

// TestPercentileSeriesAllShape pins the [quantile][bin] layout.
func TestPercentileSeriesAllShape(t *testing.T) {
	s := NewSeries(10, 3)
	s.Add(0, 1)
	s.Add(0, 2)
	out := s.PercentileSeriesAll(0, 100)
	if len(out) != 2 || len(out[0]) != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", len(out), len(out[0]))
	}
	if out[0][0] != 1 || out[1][0] != 2 {
		t.Fatalf("bin 0 min/max = %v/%v", out[0][0], out[1][0])
	}
	if !math.IsNaN(out[0][1]) || !math.IsNaN(out[1][2]) {
		t.Fatal("empty bins must be NaN")
	}
}

// BenchmarkPercentileSeriesAll is the satellite's perf guard: reading
// three quantiles from every bin with one sort per bin.
func BenchmarkPercentileSeriesAll(b *testing.B) {
	s := fillSeries(7, 60, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PercentileSeriesAll(50, 99, 99.9)
	}
}

// BenchmarkPercentileSeriesNaive is the retained before-shape: one
// full PercentileSeries pass per quantile, each bin re-copied and
// re-sorted per quantile read.
func BenchmarkPercentileSeriesNaive(b *testing.B) {
	s := fillSeries(7, 60, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range []float64{50, 99, 99.9} {
			for bin := 0; bin < s.Bins(); bin++ {
				naivePercentile(s.bins[bin], p)
			}
		}
	}
}
