package metrics

import (
	"math"
	"testing"
)

func TestSkill(t *testing.T) {
	if got := Skill(0.5, 1.0); got != 0.5 {
		t.Fatalf("Skill = %v", got)
	}
	if got := Skill(0, 1); got != 1 {
		t.Fatalf("perfect skill = %v", got)
	}
	if got := Skill(2, 1); got != 0 {
		t.Fatal("worse than baseline must floor at 0")
	}
	if got := Skill(0.5, 0); got != 0 {
		t.Fatal("zero baseline must give 0")
	}
	if got := Skill(math.NaN(), 1); got != 0 {
		t.Fatal("NaN RMSE must give 0")
	}
}

func TestLossPct(t *testing.T) {
	if got := LossPct(0.8, 0.6); math.Abs(got-25) > 1e-9 {
		t.Fatalf("LossPct = %v", got)
	}
	if got := LossPct(0.8, 0.9); got != 0 {
		t.Fatal("improvement must clamp to 0")
	}
	if got := LossPct(0.8, -5); got != 100 {
		t.Fatal("loss must clamp to 100")
	}
	if got := LossPct(0, 0.5); got != 0 {
		t.Fatal("zero exact accuracy must give 0")
	}
}

func TestOverlapLossPct(t *testing.T) {
	if got := OverlapLossPct(0.7); math.Abs(got-30) > 1e-9 {
		t.Fatalf("OverlapLossPct = %v", got)
	}
	if got := OverlapLossPct(1); got != 0 {
		t.Fatalf("full overlap loss = %v", got)
	}
}

func TestSeriesBinning(t *testing.T) {
	s := NewSeries(1000, 3)
	s.Add(0, 10)
	s.Add(999, 20)
	s.Add(1000, 30)
	s.Add(2500, 40)
	s.Add(5000, 99) // out of range: dropped
	s.Add(-1, 99)   // out of range: dropped
	if s.Bins() != 3 {
		t.Fatalf("Bins = %d", s.Bins())
	}
	if s.Count(0) != 2 || s.Count(1) != 1 || s.Count(2) != 1 {
		t.Fatalf("counts = %d,%d,%d", s.Count(0), s.Count(1), s.Count(2))
	}
	if got := s.Mean(0); got != 15 {
		t.Fatalf("Mean(0) = %v", got)
	}
	if got := s.Percentile(0, 100); got != 20 {
		t.Fatalf("P100(0) = %v", got)
	}
}

func TestSeriesEmptyBin(t *testing.T) {
	s := NewSeries(100, 2)
	if !math.IsNaN(s.Mean(0)) || !math.IsNaN(s.Percentile(1, 50)) {
		t.Fatal("empty bins must be NaN")
	}
}

func TestSeriesSeries(t *testing.T) {
	s := NewSeries(10, 2)
	s.Add(5, 1)
	s.Add(6, 3)
	s.Add(15, 5)
	means := s.MeanSeries()
	if means[0] != 2 || means[1] != 5 {
		t.Fatalf("means = %v", means)
	}
	p := s.PercentileSeries(50)
	if p[0] != 2 || p[1] != 5 {
		t.Fatalf("medians = %v", p)
	}
}

func TestSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSeries(0, 5)
}
