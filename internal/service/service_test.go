package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func sleepHandler(d time.Duration, v interface{}) Handler {
	return func(ctx context.Context, _ interface{}) (interface{}, error) {
		select {
		case <-time.After(d):
			return v, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestWaitAllGathersEverything(t *testing.T) {
	cl, err := New([]Handler{
		sleepHandler(time.Millisecond, 1),
		sleepHandler(2*time.Millisecond, 2),
		sleepHandler(time.Millisecond, 3),
	}, WaitAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Call(context.Background(), "req")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("sub %d: %+v", i, r)
		}
		if r.Value.(int) != i+1 {
			t.Fatalf("sub %d value %v", i, r.Value)
		}
		if r.Subset != i {
			t.Fatalf("order broken: %+v", r)
		}
	}
}

func TestNewRequiresHandlers(t *testing.T) {
	if _, err := New(nil, WaitAll, Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestPartialGatherSkipsSlow(t *testing.T) {
	cl, err := New([]Handler{
		sleepHandler(time.Millisecond, "fast"),
		sleepHandler(300*time.Millisecond, "slow"),
	}, PartialGather, Options{Deadline: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	res, err := cl.Call(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("partial gather blocked for %v", elapsed)
	}
	if res[0].Skipped || res[0].Value != "fast" {
		t.Fatalf("fast sub-op wrong: %+v", res[0])
	}
	if !res[1].Skipped {
		t.Fatalf("slow sub-op not skipped: %+v", res[1])
	}
}

func TestHedgedUsesReplica(t *testing.T) {
	// Subset 0's primary worker is blocked by a long-running job, so the
	// hedge must reissue subset 0 onto component 1 and win.
	var calls0 atomic.Int64
	h0 := func(ctx context.Context, _ interface{}) (interface{}, error) {
		calls0.Add(1)
		return "zero", nil
	}
	blocker := sleepHandler(150*time.Millisecond, "blocked")
	cl, err := New([]Handler{h0, sleepHandler(time.Millisecond, "one")}, Hedged,
		Options{HedgeFloor: 10 * time.Millisecond, Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Occupy component 0 with a long job so the real sub-op queues.
	done := &atomic.Bool{}
	blockReply := make(chan SubResult, 1)
	cl.comps[0].mailbox <- job{
		handler: blocker, subset: 0, done: done, reply: blockReply,
		enqueued: time.Now(), ctx: context.Background(),
	}
	start := time.Now()
	res, err := cl.Call(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if res[0].Err != nil || res[0].Value != "zero" {
		t.Fatalf("subset 0 result: %+v", res[0])
	}
	if !res[0].Hedged {
		t.Fatalf("subset 0 should have been answered by a hedge: %+v", res[0])
	}
	if elapsed > 120*time.Millisecond {
		t.Fatalf("hedge did not cut latency: %v", elapsed)
	}
	if cl.Stats().Hedges == 0 {
		t.Fatal("no hedges recorded")
	}
	<-blockReply
}

func TestQueueFullFailsFast(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, _ interface{}) (interface{}, error) {
		<-release
		return nil, nil
	}
	cl, err := New([]Handler{blocking}, WaitAll, Options{QueueLen: 1, Deadline: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the worker and fill the 1-slot mailbox deterministically.
	reply := make(chan SubResult, 2)
	for i := 0; i < 2; i++ {
		cl.comps[0].mailbox <- job{
			handler: blocking, subset: 0, done: &atomic.Bool{}, reply: reply,
			enqueued: time.Now(), ctx: context.Background(),
		}
	}
	res, err := cl.Call(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[0].Err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %+v", res[0])
	}
	close(release)
	<-reply
	<-reply
	cl.Close()
}

func TestContextCancellation(t *testing.T) {
	cl, err := New([]Handler{sleepHandler(500*time.Millisecond, nil)}, WaitAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := cl.Call(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("cancellation did not unblock Call")
	}
	if res[0].Err == nil {
		t.Fatalf("expected context error: %+v", res[0])
	}
}

func TestCloseIdempotentAndRejectsCalls(t *testing.T) {
	cl, err := New([]Handler{sleepHandler(time.Millisecond, nil)}, WaitAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close()
	if _, err := cl.Call(context.Background(), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	cl, err := New([]Handler{sleepHandler(time.Millisecond, nil), sleepHandler(time.Millisecond, nil)}, WaitAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 5; i++ {
		if _, err := cl.Call(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := cl.Stats()
	if st.SubOps != 10 {
		t.Fatalf("SubOps = %d", st.SubOps)
	}
	if st.P999Ms <= 0 {
		t.Fatalf("P999 = %v", st.P999Ms)
	}
}

func TestConcurrentCalls(t *testing.T) {
	cl, err := New([]Handler{
		sleepHandler(time.Millisecond, 0),
		sleepHandler(time.Millisecond, 1),
		sleepHandler(time.Millisecond, 2),
		sleepHandler(time.Millisecond, 3),
	}, WaitAll, Options{QueueLen: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var wg int32 = 20
	errCh := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func() {
			_, err := cl.Call(context.Background(), nil)
			errCh <- err
			atomic.AddInt32(&wg, -1)
		}()
	}
	for i := 0; i < 20; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	cl, err := New([]Handler{func(context.Context, interface{}) (interface{}, error) {
		return nil, boom
	}}, WaitAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Call(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[0].Err, boom) {
		t.Fatalf("error lost: %+v", res[0])
	}
}

func TestReplicaOfOverride(t *testing.T) {
	// Subset 0's fast handler is stuck behind blockers on BOTH its own
	// worker and the default replica target (component 1). Routing the
	// replica to component 2 via ReplicaOf is the only way to answer
	// quickly.
	fast := sleepHandler(time.Millisecond, "fast")
	cl, err := New(
		[]Handler{fast, sleepHandler(time.Millisecond, 1), sleepHandler(time.Millisecond, 2)},
		Hedged,
		Options{
			HedgeFloor: 5 * time.Millisecond,
			Deadline:   2 * time.Second,
			ReplicaOf:  func(subset, n int) int { return (subset + 2) % n },
		})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Block workers 0 and 1 with long jobs.
	blocker := sleepHandler(250*time.Millisecond, "blocked")
	blockReply := make(chan SubResult, 2)
	for _, c := range []int{0, 1} {
		cl.comps[c].mailbox <- job{
			handler: blocker, subset: c, done: &atomic.Bool{}, hedged: &atomic.Bool{},
			reply: blockReply, enqueued: time.Now(), ctx: context.Background(),
		}
	}
	res, err := cl.Call(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[0].Value != "fast" {
		t.Fatalf("subset 0 result: %+v", res[0])
	}
	if !res[0].Hedged {
		t.Fatalf("subset 0 not hedged: %+v", res[0])
	}
	// Subset 0's sub-operation must have finished long before the 250ms
	// blockers cleared — only possible via the ReplicaOf route to the
	// free component 2 (subset 1's result legitimately takes ~250ms, so
	// the overall call does too).
	if res[0].Latency > 150*time.Millisecond {
		t.Fatalf("replica did not take the ReplicaOf route: %v", res[0].Latency)
	}
	<-blockReply
	<-blockReply
}

func TestReplicaOfSelfIsSkipped(t *testing.T) {
	// A replica mapped to the same component would be useless; the hedge
	// must not fire in that case.
	cl, err := New([]Handler{sleepHandler(50*time.Millisecond, nil)}, Hedged, Options{
		HedgeFloor: 2 * time.Millisecond,
		Deadline:   time.Second,
		ReplicaOf:  func(subset, n int) int { return subset },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Call(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if cl.Stats().Hedges != 0 {
		t.Fatal("self-replica hedge fired")
	}
}

func TestPartialGatherAllFast(t *testing.T) {
	// When everything beats the deadline, nothing is skipped and the call
	// returns as soon as all replies arrive.
	cl, err := New([]Handler{
		sleepHandler(time.Millisecond, 1),
		sleepHandler(time.Millisecond, 2),
	}, PartialGather, Options{Deadline: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	res, err := cl.Call(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("partial gather waited for the deadline with all replies in")
	}
	for _, r := range res {
		if r.Skipped {
			t.Fatalf("fast sub-op skipped: %+v", r)
		}
	}
}

func TestCloseRacesHedgeEnqueue(t *testing.T) {
	// A hedge timer's AfterFunc can fire concurrently with Close: Call
	// returns once the primary replies, timer.Stop does not wait for a
	// running callback, and Close may then drain calls and stop workers
	// while the callback still enqueues onto a mailbox. Mailboxes are
	// never closed, so the late enqueue must be harmless. Run many
	// iterations so -race gets real interleavings to check.
	for iter := 0; iter < 30; iter++ {
		cl, err := New([]Handler{
			sleepHandler(100*time.Microsecond, 0),
			sleepHandler(100*time.Microsecond, 1),
		}, Hedged, Options{
			// A sub-microsecond floor makes nearly every call arm a hedge
			// that fires while the primary is still running.
			HedgeFloor: time.Nanosecond,
			Deadline:   time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					if _, err := cl.Call(context.Background(), nil); err != nil && !errors.Is(err, ErrClosed) {
						t.Error(err)
						return
					}
				}
			}()
		}
		cl.Close() // races the callers and their in-flight hedge timers
		wg.Wait()
	}
}

func TestPartialGatherExpiredDeadline(t *testing.T) {
	// With a deadline so short it has already passed by the time the
	// gather loop starts, the deadline timer is created with a negative
	// duration. It must fire immediately (not hang), skipping every
	// outstanding sub-operation.
	cl, err := New([]Handler{
		sleepHandler(50*time.Millisecond, 0),
		sleepHandler(50*time.Millisecond, 1),
	}, PartialGather, Options{Deadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	res, err := cl.Call(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired deadline blocked Call for %v", elapsed)
	}
	for i, r := range res {
		if !r.Skipped {
			t.Fatalf("sub %d not skipped with expired deadline: %+v", i, r)
		}
	}
}

func TestSetRouterRedirectsSubsets(t *testing.T) {
	// A router that sends every subset to component 1 leaves component
	// 0's worker idle: a blocker parked on component 0 must not delay
	// subset 0's sub-operation.
	cl, err := New([]Handler{
		sleepHandler(time.Millisecond, "zero"),
		sleepHandler(time.Millisecond, "one"),
	}, WaitAll, Options{Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRouter(func(subset, n int, depth func(int) int) int { return 1 })
	blockReply := make(chan SubResult, 1)
	cl.comps[0].mailbox <- job{
		handler: sleepHandler(300*time.Millisecond, "blocked"), subset: 0,
		done: &atomic.Bool{}, reply: blockReply, enqueued: time.Now(), ctx: context.Background(),
	}
	start := time.Now()
	res, err := cl.Call(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("router did not avoid blocked component: %v", elapsed)
	}
	if res[0].Value != "zero" || res[1].Value != "one" {
		t.Fatalf("routed results wrong: %+v", res)
	}
	// An out-of-range route falls back to the subset's own component.
	cl.SetRouter(func(subset, n int, depth func(int) int) int { return -7 })
	if _, err := cl.Call(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	<-blockReply
}

func TestHedgeSkipsPrimaryPlacement(t *testing.T) {
	// The router places subset 0's primary on component 1 — exactly
	// where the default ReplicaOf would put the hedge replica. The
	// hedge must be skipped rather than queue behind its own primary.
	cl, err := New([]Handler{
		sleepHandler(20*time.Millisecond, 0),
		sleepHandler(20*time.Millisecond, 1),
	}, Hedged, Options{HedgeFloor: 2 * time.Millisecond, Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRouter(func(subset, n int, depth func(int) int) int { return 1 })
	if _, err := cl.Call(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	// Subset 1's hedge would also target component (1+1)%2 = 0 — but
	// its primary sits on 1, so that hedge is legitimate; subset 0's
	// (replica target 1 == placement 1) is not. At most one hedge, and
	// never one queued behind its primary on component 1.
	if h := cl.Stats().Hedges; h > 1 {
		t.Fatalf("hedges = %d, collision hedge fired", h)
	}
}

func TestQueueDepthAndInflightProbes(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, _ interface{}) (interface{}, error) {
		<-release
		return nil, nil
	}
	cl, err := New([]Handler{blocking}, WaitAll, Options{QueueLen: 8, Deadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Components() != 1 || cl.QueueCap() != 8 {
		t.Fatalf("Components=%d QueueCap=%d", cl.Components(), cl.QueueCap())
	}
	// Park jobs behind the blocked worker; depth counts the waiting ones.
	reply := make(chan SubResult, 4)
	for i := 0; i < 4; i++ {
		cl.comps[0].mailbox <- job{
			handler: blocking, subset: 0, done: &atomic.Bool{}, reply: reply,
			enqueued: time.Now(), ctx: context.Background(),
		}
	}
	// The worker holds one job (busy) and three wait in the mailbox;
	// depth counts both.
	deadline := time.Now().Add(2 * time.Second)
	for cl.QueueDepth(0) != 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := cl.QueueDepth(0); d != 4 {
		t.Fatalf("QueueDepth = %d, want 4 (3 queued + 1 in service)", d)
	}
	if cl.Inflight() != 0 {
		t.Fatalf("Inflight = %d with no Calls", cl.Inflight())
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		cl.Call(context.Background(), nil)
	}()
	for cl.Inflight() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cl.Inflight() != 1 {
		t.Fatalf("Inflight = %d with one Call running", cl.Inflight())
	}
	close(release)
	<-done
	for i := 0; i < 4; i++ {
		<-reply
	}
	cl.Close()
}

func TestHedgeDelayAdaptsToObservedLatency(t *testing.T) {
	cl, err := New([]Handler{sleepHandler(2*time.Millisecond, nil)}, Hedged, Options{
		HedgeFloor: time.Millisecond,
		Deadline:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 200; i++ {
		if _, err := cl.Call(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
	}
	// After warm-up the estimate must reflect the ~2ms handler, not the
	// 1ms floor.
	if d := cl.hedgeDelay(); d < 1500*time.Microsecond {
		t.Fatalf("hedge delay %v did not adapt upward", d)
	}
}
