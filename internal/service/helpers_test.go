package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"accuracytrader/internal/stats"
)

func TestCompleteAndSnapshot(t *testing.T) {
	ok := []SubResult{
		{Subset: 0, Value: "a", Latency: time.Millisecond, Hedged: true},
		{Subset: 1, Value: "b", Latency: 2 * time.Millisecond},
	}
	if !Complete(ok) {
		t.Fatal("clean sub-results reported incomplete")
	}
	for _, bad := range [][]SubResult{
		{{Subset: 0, Value: "a"}, {Subset: 1, Err: errors.New("x"), Value: "b"}},
		{{Subset: 0, Value: "a"}, {Subset: 1, Skipped: true}},
		{{Subset: 0, Value: "a"}, {Subset: 1}}, // nil value
	} {
		if Complete(bad) {
			t.Fatalf("incomplete sub-results %+v reported complete", bad)
		}
	}
	snap := Snapshot(ok)
	if len(snap) != 2 || snap[0].Value != "a" || snap[1].Value != "b" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Per-execution transport facts must not survive into a cache entry.
	for i, sr := range snap {
		if sr.Latency != 0 || sr.Hedged || sr.Subset != i {
			t.Fatalf("snapshot[%d] keeps execution facts: %+v", i, sr)
		}
	}
}

func TestClusterHedgeTriggerColdStartGuard(t *testing.T) {
	floor := 3 * time.Millisecond
	cl, err := New([]Handler{func(ctx context.Context, p interface{}) (interface{}, error) { return nil, nil }},
		Hedged, Options{HedgeFloor: floor})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Fewer than five observations: the trigger holds the floor.
	for i := 0; i < stats.HedgeWarmObservations-1; i++ {
		cl.recordLatency(250 * time.Millisecond)
	}
	if got := cl.EstimatedP95(); got != floor {
		t.Fatalf("cold-start hedge delay = %v, want the %v floor", got, floor)
	}
	// Warm: the estimate tracks the samples immediately.
	cl.recordLatency(250 * time.Millisecond)
	if got := cl.EstimatedP95(); got < 100*time.Millisecond {
		t.Fatalf("warm hedge delay = %v, not tracking 250ms samples", got)
	}
}
