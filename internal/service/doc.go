// Package service is the live (wall-clock) runtime of the AccuracyTrader
// reproduction: the same fan-out topology the simulator models — a
// frontend partitioning each request across n parallel components, each a
// single-server FIFO worker goroutine, and a composer gathering
// sub-results — running on real goroutines with context deadlines.
//
// The gather policies mirror the compared techniques:
//
//   - WaitAll — the Basic behaviour: block until every component replies.
//   - PartialGather — partial execution: return whatever arrived by the
//     deadline and skip the rest.
//   - Hedged — request reissue: when a sub-operation has been outstanding
//     longer than the estimated p95 sub-operation latency, enqueue a
//     replica of it on another component and use the quicker reply.
//
// AccuracyTrader itself needs no special gather policy: components finish
// within the deadline by construction (their handler runs Algorithm 1 via
// core.RunWithDeadline), so WaitAll composes complete results quickly.
package service
