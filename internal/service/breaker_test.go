package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"accuracytrader/internal/breaker"
)

// TestClusterBreakerEvictsAndRecovers models a dead machine: every
// sub-operation executed on component 0 fails while it is "down". The
// breaker must trip, routing must evict component 0 (the subset's
// handler runs on a healthy worker), and after heal a half-open probe
// must re-close the breaker.
func TestClusterBreakerEvictsAndRecovers(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	mk := func(subset int) Handler {
		return func(ctx context.Context, payload interface{}) (interface{}, error) {
			if comp, _ := ComponentFrom(ctx); comp == 0 && down.Load() {
				return nil, errors.New("machine 0 down")
			}
			return subset, nil
		}
	}
	cl, err := New([]Handler{mk(0), mk(1), mk(2)}, WaitAll, Options{
		Deadline: time.Second,
		Breaker:  breaker.Config{FailThreshold: 2, Cooldown: 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Drive calls until subset 0 is answered cleanly via rerouting.
	deadline := time.Now().Add(5 * time.Second)
	rerouted := false
	for time.Now().Before(deadline) && !rerouted {
		subs, err := cl.Call(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		rerouted = subs[0].Err == nil && !subs[0].Skipped && subs[0].Value == 0
	}
	if !rerouted {
		t.Fatal("subset 0 never answered via a healthy component")
	}
	if st := cl.BreakerState(0); st == breaker.Closed {
		t.Fatalf("component 0 breaker still closed after consecutive failures")
	}
	open := cl.OpenBreakers()
	if len(open) != 1 || open[0] != 0 {
		t.Fatalf("OpenBreakers() = %v, want [0]", open)
	}
	if cl.Stats().BreakerOpens == 0 {
		t.Fatal("BreakerOpens counter must move")
	}

	// Heal the machine: a cooled-down breaker admits one probe request,
	// whose success re-closes it.
	down.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && cl.BreakerState(0) != breaker.Closed {
		if _, err := cl.Call(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := cl.BreakerState(0); st != breaker.Closed {
		t.Fatalf("breaker did not re-close after heal: %v", st)
	}
	if got := cl.OpenBreakers(); got != nil {
		t.Fatalf("OpenBreakers() after heal = %v, want none", got)
	}
}

// TestClusterBreakerFailsFastWhenNoHealthyAlternative pins the
// fail-fast contract on a single-component cluster: once tripped and
// inside the cooldown, Call reports ErrComponentDown without running
// the handler.
func TestClusterBreakerFailsFastWhenNoHealthyAlternative(t *testing.T) {
	var runs atomic.Int64
	boom := errors.New("boom")
	cl, err := New([]Handler{func(context.Context, interface{}) (interface{}, error) {
		runs.Add(1)
		return nil, boom
	}}, WaitAll, Options{
		Deadline: time.Second,
		Breaker:  breaker.Config{FailThreshold: 1, Cooldown: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	subs, err := cl.Call(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(subs[0].Err, boom) {
		t.Fatalf("first call: %+v", subs[0])
	}
	subs, err = cl.Call(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(subs[0].Err, ErrComponentDown) {
		t.Fatalf("call inside cooldown: err = %v, want ErrComponentDown", subs[0].Err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("handler ran %d times; the fail-fast call must not execute", got)
	}
}
