package service

import (
	"context"
	"testing"
	"time"
)

// TestComponentFrom asserts handlers observe the executing component:
// home placement reports the subset's own component, and a hedged
// replica reports the replica component.
func TestComponentFrom(t *testing.T) {
	const n = 3
	got := make(chan int, 2*n)
	handlers := make([]Handler, n)
	for i := range handlers {
		subset := i
		handlers[i] = func(ctx context.Context, _ interface{}) (interface{}, error) {
			comp, ok := ComponentFrom(ctx)
			if !ok {
				t.Error("ComponentFrom not set inside a worker")
			}
			got <- comp
			_ = subset
			return nil, nil
		}
	}
	cl, err := New(handlers, WaitAll, Options{Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Call(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		seen[<-got] = true
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			t.Fatalf("component %d never executed its home subset: %v", i, seen)
		}
	}

	// Outside a worker the probe reports ok=false.
	if _, ok := ComponentFrom(context.Background()); ok {
		t.Fatal("ComponentFrom must be unset outside a worker")
	}
}
