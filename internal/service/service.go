package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"accuracytrader/internal/breaker"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/stats"
)

// Handler processes one sub-operation against one data subset. Handlers
// must be safe for concurrent use: under hedging, the same subset's
// handler may run on another component's worker.
type Handler func(ctx context.Context, payload interface{}) (interface{}, error)

// Policy selects the gather behaviour of Call.
type Policy int

// Gather policies (see package comment).
const (
	WaitAll Policy = iota
	PartialGather
	Hedged
)

// Options configures a Cluster.
type Options struct {
	// QueueLen bounds each component's mailbox (default 1024). A full
	// mailbox makes enqueues fail fast, surfacing overload instead of
	// buffering it invisibly.
	QueueLen int
	// Deadline bounds gathering for PartialGather (and is the default
	// Call timeout for the other policies; default 1s).
	Deadline time.Duration
	// HedgeFloor is the minimum hedge delay before the p95 estimator has
	// warmed up (default 1ms).
	HedgeFloor time.Duration
	// ReplicaOf maps a subset to the component that executes its hedged
	// replica (default: next component).
	ReplicaOf func(subset, n int) int
	// Metrics is the observability registry the cluster's counters live
	// in (service_subops_total, service_hedges_total, and the
	// service_subop_latency_ms histogram). Nil uses a private registry;
	// Stats() is unaffected either way.
	Metrics *obs.Registry
	// Breaker configures the per-component circuit breakers — the
	// in-process mirror of the aggregator's per-peer breakers, fed by
	// the outcome of every executed sub-operation on that component.
	// Zero fields take the breaker package defaults.
	Breaker breaker.Config
}

func (o Options) withDefaults() Options {
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.Deadline <= 0 {
		o.Deadline = time.Second
	}
	if o.HedgeFloor <= 0 {
		o.HedgeFloor = time.Millisecond
	}
	if o.ReplicaOf == nil {
		o.ReplicaOf = func(subset, n int) int { return (subset + 1) % n }
	}
	return o
}

// SubResult is one component's reply.
type SubResult struct {
	Subset  int
	Value   interface{}
	Err     error
	Latency time.Duration
	Skipped bool // PartialGather: deadline passed before the reply
	Hedged  bool // Hedged: a replica was issued for this sub-operation
}

// Complete reports whether every sub-result was answered: no errors,
// nothing skipped, a value present. Result caches store only complete
// fan-outs — a partial composition's accuracy tag would overstate what
// the entry actually contains.
func Complete(subs []SubResult) bool {
	for i := range subs {
		if subs[i].Err != nil || subs[i].Skipped || subs[i].Value == nil {
			return false
		}
	}
	return true
}

// Answered counts the sub-results that actually delivered a value —
// the in-process mirror of netsvc.DegradeStats, for accuracy
// discounting and degraded-reply accounting on the goroutine runtime.
func Answered(subs []SubResult) (answered, total int) {
	total = len(subs)
	for i := range subs {
		if subs[i].Err == nil && !subs[i].Skipped && subs[i].Value != nil {
			answered++
		}
	}
	return
}

// Snapshot returns a cache-ready copy of sub-results holding only the
// durable fields (Subset, Value). Latency and the hedge flag are
// per-execution transport facts that must not replay on cache hits.
func Snapshot(subs []SubResult) []SubResult {
	out := make([]SubResult, len(subs))
	for i := range subs {
		out[i] = SubResult{Subset: subs[i].Subset, Value: subs[i].Value}
	}
	return out
}

// RouteFunc picks the component that executes a subset's sub-operation.
// It receives the subset, the component count, and a live queue-depth
// probe, and must return a component in [0, n). Handlers are safe for
// concurrent use (see Handler), so any component can serve any subset.
type RouteFunc func(subset, n int, queueDepth func(comp int) int) int

// ErrQueueFull is reported for a sub-operation whose component mailbox
// was full at enqueue time.
var ErrQueueFull = errors.New("service: component queue full")

// ErrComponentDown is reported for a sub-operation refused fast because
// the target component's circuit breaker is open and no healthy
// component could take the placement — the in-process mirror of
// netsvc.ErrPeerDown.
var ErrComponentDown = errors.New("service: component circuit open")

// ErrClosed is returned by Call after Close.
var ErrClosed = errors.New("service: cluster closed")

type job struct {
	handler  Handler
	payload  interface{}
	subset   int
	target   int          // component the primary was enqueued on (routing-aware)
	hedged   *atomic.Bool // set once a replica has been issued for the sub-op
	enqueued time.Time
	done     *atomic.Bool
	reply    chan<- SubResult
	ctx      context.Context
}

type component struct {
	mailbox chan job
	idx     int
	busy    atomic.Bool // worker is executing a job right now
}

// compKey is the context key carrying the executing component's index
// to handlers.
type compKey struct{}

// ComponentFrom returns the index of the component whose worker is
// executing the current sub-operation. Under hedging the replica runs
// on a different component than the primary, so handlers modeling
// per-machine effects (co-located interference, cache locality) can
// key on the executor rather than the subset. ok is false outside a
// cluster worker.
func ComponentFrom(ctx context.Context) (comp int, ok bool) {
	comp, ok = ctx.Value(compKey{}).(int)
	return comp, ok
}

// quit signals workers to stop; mailboxes are never closed, so a hedge
// callback racing with Close can still enqueue harmlessly.

// Cluster is a fan-out service: one worker goroutine per component.
type Cluster struct {
	handlers []Handler
	comps    []*component
	brs      []*breaker.Breaker // per-component, indexed like comps
	opts     Options
	policy   Policy

	// Streaming quantile estimators keep the runtime's memory constant no
	// matter how long the cluster serves (P², see internal/stats).
	mu      sync.Mutex
	p95est  *stats.P2Quantile
	p999est *stats.P2Quantile
	// subOps stays a plain in-lock int: the hedge-estimate cadence
	// (stats.HedgeEstimateDue) needs the exact count at Add time.
	subOps   int
	hedges   *obs.Counter
	subOpsC  *obs.Counter
	latMs    *obs.Histogram
	closed   bool
	route    RouteFunc
	quit     chan struct{}
	wg       sync.WaitGroup // worker goroutines
	calls    sync.WaitGroup // in-flight Calls, drained by Close
	inflight atomic.Int64   // in-flight Calls, for load probes
	p95ms    atomic.Uint64  // cached estimate, in microseconds
}

// New starts a cluster with one worker per handler. handlers[i] owns data
// subset i.
func New(handlers []Handler, policy Policy, opts Options) (*Cluster, error) {
	if len(handlers) == 0 {
		return nil, fmt.Errorf("service: no handlers")
	}
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cl := &Cluster{
		handlers: handlers,
		opts:     opts,
		policy:   policy,
		p95est:   stats.NewP2Quantile(0.95),
		p999est:  stats.NewP2Quantile(0.999),
		quit:     make(chan struct{}),
		hedges:   reg.Counter("service_hedges_total"),
		subOpsC:  reg.Counter("service_subops_total"),
		latMs:    reg.Histogram("service_subop_latency_ms", obs.DefaultLatencyBuckets()),
	}
	reg.GaugeFunc("service_inflight", func() float64 { return float64(cl.inflight.Load()) })
	cl.p95ms.Store(uint64(opts.HedgeFloor / time.Microsecond))
	for i := range handlers {
		c := &component{mailbox: make(chan job, opts.QueueLen), idx: i}
		cl.comps = append(cl.comps, c)
		bcfg := opts.Breaker
		userHook := bcfg.OnStateChange
		var transitions [3]*obs.Counter
		for s, label := range map[breaker.State]string{
			breaker.Closed: "closed", breaker.Open: "open", breaker.HalfOpen: "half_open",
		} {
			transitions[s] = reg.Counter(fmt.Sprintf(`service_breaker_transitions_total{comp="%d",state=%q}`, i, label))
		}
		bcfg.OnStateChange = func(s breaker.State) {
			transitions[s].Inc()
			if userHook != nil {
				userHook(s)
			}
		}
		br := breaker.New(bcfg)
		cl.brs = append(cl.brs, br)
		reg.GaugeFunc(fmt.Sprintf(`service_breaker_state{comp="%d"}`, i), func() float64 {
			return float64(br.State())
		})
		cl.wg.Add(1)
		go cl.worker(c)
	}
	return cl, nil
}

// worker drains one component's mailbox sequentially — the single-server
// FIFO queue of the model.
func (cl *Cluster) worker(c *component) {
	defer cl.wg.Done()
	for {
		select {
		case <-cl.quit:
			return
		case j := <-c.mailbox:
			if j.done.Load() {
				continue // the other replica already answered
			}
			c.busy.Store(true)
			v, err := j.handler(context.WithValue(j.ctx, compKey{}, c.idx), j.payload)
			c.busy.Store(false)
			// Every executed sub-operation is breaker evidence for the
			// component that ran it (under hedging that may not be the
			// subset's home): consecutive handler failures trip it open.
			if err != nil {
				if cl.brs[c.idx].Fail() {
					if tr := obs.TraceFrom(j.ctx); tr != nil {
						tr.Add(obs.SpanBreakerTrip, int32(j.subset), time.Now(), 0, int64(c.idx))
					}
				}
			} else {
				cl.brs[c.idx].Success()
			}
			lat := time.Since(j.enqueued)
			if j.done.CompareAndSwap(false, true) {
				cl.recordLatency(lat)
				// Only the winning replica records the sub-op span, so a
				// trace carries one per subset.
				if tr := obs.TraceFrom(j.ctx); tr != nil {
					tr.Add(obs.SpanSubOp, int32(j.subset), j.enqueued, lat, int64(c.idx))
				}
				hedged := j.hedged != nil && j.hedged.Load()
				j.reply <- SubResult{Subset: j.subset, Value: v, Err: err, Latency: lat, Hedged: hedged}
			}
		}
	}
}

func (cl *Cluster) recordLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	cl.subOpsC.Inc()
	cl.latMs.Observe(ms)
	cl.mu.Lock()
	cl.subOps++
	cl.p95est.Add(ms)
	cl.p999est.Add(ms)
	// Cold-start guard + warm-phase cadence (see stats.HedgeEstimateDue):
	// the trigger holds the floor until the P² estimator is meaningful.
	if stats.HedgeEstimateDue(cl.subOps) {
		p := cl.p95est.Value()
		floor := float64(cl.opts.HedgeFloor) / float64(time.Millisecond)
		if p < floor {
			p = floor
		}
		cl.p95ms.Store(uint64(p * 1000))
	}
	cl.mu.Unlock()
}

// hedgeDelay returns the current reissue trigger delay.
func (cl *Cluster) hedgeDelay() time.Duration {
	return time.Duration(cl.p95ms.Load()) * time.Microsecond
}

// SetRouter injects a routing policy used by subsequent Calls to place
// each sub-operation on a component. A nil route restores the default
// (subset i on component i). Safe to call while the cluster serves.
func (cl *Cluster) SetRouter(route RouteFunc) {
	cl.mu.Lock()
	cl.route = route
	cl.mu.Unlock()
}

// Components returns the fan-out width.
func (cl *Cluster) Components() int { return len(cl.comps) }

// QueueDepth returns the number of jobs outstanding on one component:
// those waiting in its mailbox plus the one its worker is executing.
// This is the load signal admission and routing policies act on; the
// value is a point-in-time sample.
func (cl *Cluster) QueueDepth(comp int) int {
	c := cl.comps[comp]
	d := len(c.mailbox)
	if c.busy.Load() {
		d++
	}
	return d
}

// QueueCap returns each mailbox's bound (Options.QueueLen).
func (cl *Cluster) QueueCap() int { return cl.opts.QueueLen }

// Inflight returns the number of Calls currently executing.
func (cl *Cluster) Inflight() int { return int(cl.inflight.Load()) }

// EstimatedP95 returns the streaming 95th-percentile sub-operation
// latency estimate (the hedge trigger delay).
func (cl *Cluster) EstimatedP95() time.Duration { return cl.hedgeDelay() }

// Deadline returns the configured call deadline (Options.Deadline).
func (cl *Cluster) Deadline() time.Duration { return cl.opts.Deadline }

// BreakerState returns one component's circuit-breaker state.
func (cl *Cluster) BreakerState(comp int) breaker.State { return cl.brs[comp].State() }

// OpenBreakers returns the indices of components whose breaker is not
// closed — the degraded-health signal.
func (cl *Cluster) OpenBreakers() []int {
	var open []int
	for i, b := range cl.brs {
		if b.State() != breaker.Closed {
			open = append(open, i)
		}
	}
	return open
}

// nextHealthy returns the first other component after from (wrapping)
// whose breaker is closed, or from itself when no other is healthy.
func (cl *Cluster) nextHealthy(from int) int {
	n := len(cl.brs)
	for k := 1; k < n; k++ {
		i := (from + k) % n
		if cl.brs[i].State() == breaker.Closed {
			return i
		}
	}
	return from
}

// admit asks a component's breaker to accept one sub-operation. probe
// reports that the admission claimed a half-open probe slot, whose
// outcome must reach the breaker.
func (cl *Cluster) admit(comp int) (admitted, probe bool) {
	if cl.brs[comp].State() == breaker.Closed {
		return true, false
	}
	if cl.brs[comp].Allow() {
		return true, true
	}
	return false, false
}

// Stats reports cluster-level counters.
type Stats struct {
	SubOps       int
	Hedges       int64
	BreakerOpens int64 // cumulative breaker trips across components
	P999Ms       float64
}

// Stats returns a snapshot of the recorded sub-operation statistics.
// P999Ms is a streaming P² estimate, not an exact percentile. The
// counters live in the Options.Metrics registry (or a private one), so
// the same numbers are one Prometheus scrape away.
func (cl *Cluster) Stats() Stats {
	var opens int64
	for _, b := range cl.brs {
		opens += b.Opens()
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	st := Stats{SubOps: cl.subOps, Hedges: cl.hedges.Value(), BreakerOpens: opens}
	if st.SubOps > 0 {
		st.P999Ms = cl.p999est.Value()
	}
	return st
}

// Call fans the payload out to every component and gathers sub-results
// according to the cluster policy. The returned slice always has one
// entry per subset, in subset order; skipped or failed sub-operations
// carry Err/Skipped.
func (cl *Cluster) Call(ctx context.Context, payload interface{}) ([]SubResult, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, ErrClosed
	}
	cl.calls.Add(1)
	route := cl.route
	cl.mu.Unlock()
	defer cl.calls.Done()
	cl.inflight.Add(1)
	defer cl.inflight.Add(-1)
	n := len(cl.comps)
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cl.opts.Deadline)
		defer cancel()
	}
	reply := make(chan SubResult, 2*n)
	dones := make([]*atomic.Bool, n)
	var timers []*time.Timer
	now := time.Now()
	for i := 0; i < n; i++ {
		dones[i] = &atomic.Bool{}
		j := job{
			handler:  cl.handlers[i],
			payload:  payload,
			subset:   i,
			hedged:   &atomic.Bool{},
			enqueued: now,
			done:     dones[i],
			reply:    reply,
			ctx:      ctx,
		}
		target := i
		if route != nil {
			if t := route(i, n, cl.QueueDepth); t >= 0 && t < n {
				target = t
			}
		}
		// Health-aware placement: an open-breaker component is evicted
		// from the route set when a healthy one exists (handlers are safe
		// to run on any worker); a cooled-down breaker admits the
		// sub-operation as its half-open probe.
		admitted, probe := cl.admit(target)
		if !admitted {
			if alt := cl.nextHealthy(target); alt != target {
				target = alt
				admitted, probe = cl.admit(target)
			}
		}
		j.target = target
		if !admitted {
			dones[i].Store(true)
			reply <- SubResult{Subset: i, Err: ErrComponentDown}
			continue
		}
		if !cl.enqueue(target, j) {
			if probe {
				// The probe never ran; resolve it so the breaker is not
				// wedged half-open.
				cl.brs[target].Fail()
			}
			dones[i].Store(true)
			reply <- SubResult{Subset: i, Err: ErrQueueFull}
			continue
		}
		if cl.policy == Hedged {
			timers = append(timers, cl.armHedge(j))
		}
	}
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	out := make([]SubResult, n)
	got := make([]bool, n)
	remaining := n
	var deadlineC <-chan time.Time
	if cl.policy == PartialGather {
		t := time.NewTimer(cl.opts.Deadline - time.Since(now))
		defer t.Stop()
		deadlineC = t.C
	}
	for remaining > 0 {
		select {
		case r := <-reply:
			if !got[r.Subset] {
				got[r.Subset] = true
				out[r.Subset] = r
				remaining--
			}
		case <-deadlineC:
			// Partial execution: skip everything still outstanding. The
			// components keep working (wasted computation, as in the
			// paper), but their replies are ignored via the done flags.
			for i := range got {
				if !got[i] {
					dones[i].Store(true)
					out[i] = SubResult{Subset: i, Skipped: true}
					remaining--
				}
			}
		case <-ctx.Done():
			for i := range got {
				if !got[i] {
					dones[i].Store(true)
					out[i] = SubResult{Subset: i, Err: ctx.Err(), Skipped: true}
					remaining--
				}
			}
		}
	}
	return out, nil
}

func (cl *Cluster) enqueue(comp int, j job) bool {
	select {
	case cl.comps[comp].mailbox <- j:
		return true
	default:
		return false
	}
}

// armHedge schedules the reissue check for one sub-operation.
func (cl *Cluster) armHedge(j job) *time.Timer {
	return time.AfterFunc(cl.hedgeDelay(), func() {
		if j.done.Load() {
			return
		}
		// A replica on the component the primary actually sits on (the
		// router may have placed it away from its home) would queue
		// behind the very sub-operation it is meant to hedge — skip.
		rc := cl.opts.ReplicaOf(j.subset, len(cl.comps))
		if cl.brs[rc].State() != breaker.Closed {
			// Hedging into an open breaker buys nothing; place the replica
			// on the next healthy component instead.
			rc = cl.nextHealthy(rc)
			if cl.brs[rc].State() != breaker.Closed {
				return
			}
		}
		if rc == j.target {
			return
		}
		// Mark before enqueueing so the replica's own reply (which may win
		// immediately) already observes the flag.
		j.hedged.Store(true)
		if cl.enqueue(rc, j) {
			cl.hedges.Inc()
			if tr := obs.TraceFrom(j.ctx); tr != nil {
				tr.Add(obs.SpanHedge, int32(j.subset), time.Now(), 0, int64(rc))
			}
		} else {
			j.hedged.Store(false)
		}
	})
}

// Close shuts the cluster down: it waits for in-flight Calls (including
// their hedge timers' enqueues), processes pending mailbox jobs, then
// stops the workers. Call returns ErrClosed afterwards.
func (cl *Cluster) Close() {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return
	}
	cl.closed = true
	cl.mu.Unlock()
	cl.calls.Wait()
	close(cl.quit)
	cl.wg.Wait()
}
