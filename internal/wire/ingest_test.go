package wire

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"accuracytrader/internal/stats"
)

// randIngestRequest draws a random append batch of any payload kind.
func randIngestRequest(rng *stats.RNG) *IngestRequest {
	req := &IngestRequest{
		ID:     rng.Uint64(),
		Subset: int32(rng.Intn(64)) - 1,
		Trace:  rng.Uint64() >> uint(rng.Intn(64)),
	}
	switch Kind(rng.Intn(3)) {
	case KindCF:
		req.Kind = KindCF
		ci := &CFIngest{}
		for u := 0; u < rng.Intn(5); u++ {
			var rs []Rating
			for i := 0; i < rng.Intn(6); i++ {
				rs = append(rs, Rating{Item: int32(rng.Intn(1000)), Score: rng.Float64() * 5})
			}
			ci.Users = append(ci.Users, rs)
		}
		req.CF = ci
	case KindSearch:
		req.Kind = KindSearch
		words := []string{"alpha beta", "gamma", "", "delta omega tau"}
		si := &SearchIngest{}
		for i := 0; i < rng.Intn(5); i++ {
			si.Docs = append(si.Docs, words[rng.Intn(len(words))])
		}
		req.Search = si
	default:
		req.Kind = KindAgg
		n := rng.Intn(10)
		ai := &AggIngest{}
		for i := 0; i < n; i++ {
			ai.Keys = append(ai.Keys, int32(rng.Intn(16)))
			ai.Vals = append(ai.Vals, rng.Norm(0, 1))
		}
		req.Agg = ai
	}
	return req
}

func randIngestReply(rng *stats.RNG) *IngestReply {
	rep := &IngestReply{
		ID:       rng.Uint64(),
		Subset:   int32(rng.Intn(64)),
		Status:   uint8(rng.Intn(3)),
		Accepted: uint32(rng.Intn(1000)),
		Epoch:    rng.Uint64() >> 8,
	}
	if rep.Status != IngestOK {
		rep.Err = "shard rejected batch"
	}
	return rep
}

func TestIngestRequestRoundTrip(t *testing.T) {
	rng := stats.NewRNG(51)
	for i := 0; i < 500; i++ {
		req := randIngestRequest(rng)
		got, err := DecodeIngestRequest(body(t, AppendIngestRequestFrame(nil, req)))
		if err != nil {
			t.Fatalf("decode: %v (%+v)", err, req)
		}
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", req, got)
		}
	}
}

func TestIngestReplyRoundTrip(t *testing.T) {
	rng := stats.NewRNG(52)
	for i := 0; i < 500; i++ {
		rep := randIngestReply(rng)
		got, err := DecodeIngestReply(body(t, AppendIngestReplyFrame(nil, rep)))
		if err != nil {
			t.Fatalf("decode: %v (%+v)", err, rep)
		}
		if !reflect.DeepEqual(rep, got) {
			t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", rep, got)
		}
	}
}

// TestIngestTruncatedFramesError asserts every strict prefix of a valid
// ingest body decodes to a clean error.
func TestIngestTruncatedFramesError(t *testing.T) {
	rng := stats.NewRNG(53)
	for i := 0; i < 50; i++ {
		reqBody := body(t, AppendIngestRequestFrame(nil, randIngestRequest(rng)))
		for cut := 0; cut < len(reqBody); cut++ {
			if _, err := DecodeIngestRequest(reqBody[:cut]); err == nil {
				t.Fatalf("ingest prefix of %d/%d bytes decoded without error", cut, len(reqBody))
			}
		}
		repBody := body(t, AppendIngestReplyFrame(nil, randIngestReply(rng)))
		for cut := 0; cut < len(repBody); cut++ {
			if _, err := DecodeIngestReply(repBody[:cut]); err == nil {
				t.Fatalf("ingest-reply prefix of %d/%d bytes decoded without error", cut, len(repBody))
			}
		}
	}
}

// TestIngestCorruptFramesError covers the targeted corruption cases for
// the append op: inflated counts, unknown kinds, shape mismatches,
// wrong frame kinds, and trailing bytes.
func TestIngestCorruptFramesError(t *testing.T) {
	agg := &IngestRequest{Kind: KindAgg, Subset: 1,
		Agg: &AggIngest{Keys: []int32{0, 1}, Vals: []float64{1, 2}}}
	good := body(t, AppendIngestRequestFrame(nil, agg))

	mut := func(idx int, v byte) []byte {
		cp := append([]byte(nil), good...)
		cp[idx] = v
		return cp
	}
	// Fixed ingest header: version, frame kind, id, kind, subset, trace.
	hdr := 2 + 8 + 1 + 4 + 8
	if _, err := DecodeIngestRequest(mut(1, frameReply)); err == nil || !strings.Contains(err.Error(), "frame kind") {
		t.Fatalf("bad frame kind: %v", err)
	}
	if _, err := DecodeIngestRequest(mut(10, 77)); err == nil || !strings.Contains(err.Error(), "unknown payload kind") {
		t.Fatalf("unknown kind: %v", err)
	}
	if _, err := DecodeIngestRequest(append(append([]byte(nil), good...), 0xcd)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes: %v", err)
	}
	// Inflated key count must fail validation, not allocate.
	cp := append([]byte(nil), good...)
	cp[hdr], cp[hdr+1] = 0xff, 0xff
	if _, err := DecodeIngestRequest(cp); err == nil {
		t.Fatal("inflated agg key count must error")
	}
	// A keys/vals shape mismatch is rejected even when both arrays
	// decode cleanly: drop the last val by patching both the vals count
	// and the frame length.
	cp = append([]byte(nil), good...)
	cp = cp[:len(cp)-8]
	cp[hdr+4+2*4] = 1 // vals count (after keys count + 2 keys)
	if _, err := DecodeIngestRequest(cp); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("shape mismatch: %v", err)
	}

	// CF: inflated per-user rating count.
	cf := &IngestRequest{Kind: KindCF, CF: &CFIngest{Users: [][]Rating{{{Item: 1, Score: 2}}}}}
	cfBody := body(t, AppendIngestRequestFrame(nil, cf))
	cp = append([]byte(nil), cfBody...)
	cp[hdr+4], cp[hdr+5] = 0xff, 0xff
	if _, err := DecodeIngestRequest(cp); err == nil {
		t.Fatal("inflated rating count must error")
	}

	// Search: inflated doc length.
	sr := &IngestRequest{Kind: KindSearch, Search: &SearchIngest{Docs: []string{"alpha"}}}
	srBody := body(t, AppendIngestRequestFrame(nil, sr))
	cp = append([]byte(nil), srBody...)
	cp[hdr+4], cp[hdr+5] = 0xff, 0xff
	if _, err := DecodeIngestRequest(cp); err == nil {
		t.Fatal("inflated doc length must error")
	}
}

// TestIngestVersionSkew asserts a v4 client talking to a v5 server (and
// vice versa) gets the typed *VersionError on ingest frames — both on
// full decode and on the FrameKind demux path — so version skew during
// a rollout degrades to a clean, retryable rejection.
func TestIngestVersionSkew(t *testing.T) {
	req := &IngestRequest{Kind: KindAgg, Agg: &AggIngest{Keys: []int32{3}, Vals: []float64{7}}}
	good := body(t, AppendIngestRequestFrame(nil, req))
	v4 := append([]byte(nil), good...)
	v4[0] = 4
	var ve *VersionError
	if _, err := DecodeIngestRequest(v4); !errors.As(err, &ve) {
		t.Fatalf("want *VersionError, got %v", err)
	}
	if ve.Got != 4 || ve.Want != Version {
		t.Fatalf("VersionError = %+v", ve)
	}
	if _, err := FrameKind(v4); !errors.As(err, &ve) {
		t.Fatalf("FrameKind: want *VersionError, got %v", err)
	}
	rep := &IngestReply{ID: 1, Status: IngestOK, Accepted: 1, Epoch: 9}
	repBody := body(t, AppendIngestReplyFrame(nil, rep))
	future := append([]byte(nil), repBody...)
	future[0] = Version + 1
	if _, err := DecodeIngestReply(future); !errors.As(err, &ve) {
		t.Fatalf("future version: want *VersionError, got %v", err)
	}
}

// TestIngestFrameKindDemux pins the demux contract connections rely on:
// query and ingest frames on the same connection are told apart by
// FrameKind without decoding.
func TestIngestFrameKindDemux(t *testing.T) {
	q := body(t, AppendRequestFrame(nil, &Request{Kind: KindAgg, Agg: &AggRequest{Op: 1, Lo: 0, Hi: 1}}))
	in := body(t, AppendIngestRequestFrame(nil, &IngestRequest{Kind: KindAgg, Agg: &AggIngest{}}))
	rep := body(t, AppendIngestReplyFrame(nil, &IngestReply{ID: 2}))
	for _, c := range []struct {
		body []byte
		want byte
	}{{q, FrameRequest}, {in, FrameIngest}, {rep, FrameIngestReply}} {
		k, err := FrameKind(c.body)
		if err != nil || k != c.want {
			t.Fatalf("FrameKind = %d, %v (want %d)", k, err, c.want)
		}
	}
	// An ingest body handed to the query decoder errors instead of
	// misparsing.
	if _, err := DecodeRequest(in); err == nil {
		t.Fatal("ingest frame decoded as a query request")
	}
}

// FuzzDecodeIngestRequest asserts ingest decoding never panics and that
// whatever decodes re-encodes to the identical body.
func FuzzDecodeIngestRequest(f *testing.F) {
	rng := stats.NewRNG(61)
	for i := 0; i < 12; i++ {
		f.Add(AppendIngestRequestFrame(nil, randIngestRequest(rng))[4:])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeIngestRequest(data)
		if err != nil {
			return
		}
		re := AppendIngestRequestFrame(nil, req)[4:]
		back, err := DecodeIngestRequest(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded ingest request: %v", err)
		}
		if re2 := AppendIngestRequestFrame(nil, back)[4:]; !bytes.Equal(re, re2) {
			t.Fatalf("re-encode not identity:\nfirst  %+v\nsecond %+v", req, back)
		}
	})
}

// FuzzDecodeIngestReply is the reply half of the ingest identity fuzz.
func FuzzDecodeIngestReply(f *testing.F) {
	rng := stats.NewRNG(62)
	for i := 0; i < 12; i++ {
		f.Add(AppendIngestReplyFrame(nil, randIngestReply(rng))[4:])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeIngestReply(data)
		if err != nil {
			return
		}
		re := AppendIngestReplyFrame(nil, rep)[4:]
		back, err := DecodeIngestReply(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded ingest reply: %v", err)
		}
		if re2 := AppendIngestReplyFrame(nil, back)[4:]; !bytes.Equal(re, re2) {
			t.Fatalf("re-encode not identity:\nfirst  %+v\nsecond %+v", rep, back)
		}
	})
}
