// Package wire is the compact length-prefixed binary protocol of the
// networked serving layer (an extension beyond the paper's in-process
// evaluation): sub-operation requests, component sub-replies, and
// composed whole-service replies for all three application workloads
// (CF recommender, web search, approximate aggregation).
//
// Every request carries the SLO class, the frontend-selected ladder
// level, and an absolute deadline, so each hop — aggregator, component
// server, Algorithm 1 inside a handler — can compute its remaining
// budget and abandon work the moment the budget is exhausted, which is
// what makes the paper's partial-execution and degradation techniques
// meaningful across process boundaries.
//
// Frames are little-endian, `uint32 length | version | kind | body`.
// Decoding is strictly bounds-checked with declared counts validated
// against the bytes actually present: corrupt or truncated input
// yields an error, never a panic or an attacker-sized allocation.
// Float64 values round-trip bit-exactly, so a result served over the
// network is bit-identical to the same result composed in process
// (asserted by the netcompare parity check).
package wire
