package wire

import (
	"bytes"
	"testing"

	"accuracytrader/internal/stats"
)

// seedBodies returns valid frame bodies of every frame and payload
// kind, used as the fuzz corpus.
func seedBodies(t interface{ Fatalf(string, ...interface{}) }) [][]byte {
	rng := stats.NewRNG(7)
	strip := func(frame []byte) []byte { return frame[4:] }
	var out [][]byte
	for i := 0; i < 12; i++ {
		out = append(out,
			strip(AppendRequestFrame(nil, randRequest(rng))),
			strip(AppendSubReplyFrame(nil, randSubReply(rng))),
			strip(AppendReplyFrame(nil, randReply(rng))))
	}
	// Deterministic v3/v6 seeds: a traced, tenant-tagged request and a
	// sub-reply carrying costed server-side spans, so the trace, tenant
	// and cost fields are always in the corpus.
	out = append(out,
		strip(AppendRequestFrame(nil, &Request{
			ID: 1, Seq: 2, Kind: KindAgg, Subset: 0, SLO: SLOBounded,
			MinAccuracy: 0.9, Level: 1, Deadline: 1 << 40, Trace: 0xfeedface,
			Tenant: "acme",
			Agg:    &AggRequest{Op: 1, Lo: 0, Hi: 10},
		})),
		strip(AppendSubReplyFrame(nil, &SubReply{
			ID: 1, Subset: 0, Status: StatusOK, Kind: KindAgg, Level: 1,
			SetsProcessed: 3,
			Spans: []Span{
				{Kind: SpanQueue, Start: 1 << 40, Dur: 1_000_000, Cost: Cost{QueueNs: 1_000_000}},
				{Kind: SpanExec, Start: 1<<40 + 1_000_000, Dur: 4_000_000,
					Cost: Cost{CPUNs: 4_000_000, Scanned: 1234, WireBytes: 96}},
			},
			Agg: &AggResult{Sum: []float64{1}, Cnt: []float64{1}, SumVar: []float64{0}, CntVar: []float64{0}},
		})),
		strip(AppendReplyFrame(nil, &Reply{
			ID: 1, Status: ReplyOK, Kind: KindAgg, SLO: SLOBounded,
			MinAccuracy: 0.9, Level: 1, Trace: 0xfeedface,
			SubStatus: []uint8{StatusOK},
			Agg:       &AggResult{Sum: []float64{1}, Cnt: []float64{1}, SumVar: []float64{0}, CntVar: []float64{0}},
		})))
	return out
}

// FuzzDecodeRequest asserts decoding never panics on arbitrary bytes,
// and that anything that does decode re-encodes to a body that decodes
// to the identical message (encode→decode identity).
func FuzzDecodeRequest(f *testing.F) {
	for _, b := range seedBodies(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		re := AppendRequestFrame(nil, req)[4:]
		back, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded request: %v", err)
		}
		// Compare encodings, not structs: encoding is deterministic, and
		// byte equality sidesteps NaN payloads (NaN != NaN under
		// DeepEqual) that arbitrary fuzz bytes legitimately decode to.
		if re2 := AppendRequestFrame(nil, back)[4:]; !bytes.Equal(re, re2) {
			t.Fatalf("re-encode not identity:\nfirst  %+v\nsecond %+v", req, back)
		}
	})
}

// FuzzDecodeSubReply is the sub-reply half of the identity fuzz.
func FuzzDecodeSubReply(f *testing.F) {
	for _, b := range seedBodies(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeSubReply(data)
		if err != nil {
			return
		}
		re := AppendSubReplyFrame(nil, rep)[4:]
		back, err := DecodeSubReply(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded sub-reply: %v", err)
		}
		if re2 := AppendSubReplyFrame(nil, back)[4:]; !bytes.Equal(re, re2) {
			t.Fatalf("re-encode not identity:\nfirst  %+v\nsecond %+v", rep, back)
		}
	})
}

// FuzzDecodeReply is the composed-reply half of the identity fuzz.
func FuzzDecodeReply(f *testing.F) {
	for _, b := range seedBodies(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReply(data)
		if err != nil {
			return
		}
		re := AppendReplyFrame(nil, rep)[4:]
		back, err := DecodeReply(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded reply: %v", err)
		}
		if re2 := AppendReplyFrame(nil, back)[4:]; !bytes.Equal(re, re2) {
			t.Fatalf("re-encode not identity:\nfirst  %+v\nsecond %+v", rep, back)
		}
	})
}
