package wire

import (
	"reflect"
	"testing"

	"accuracytrader/internal/stats"
)

// seedBodies returns valid frame bodies of every frame and payload
// kind, used as the fuzz corpus.
func seedBodies(t interface{ Fatalf(string, ...interface{}) }) [][]byte {
	rng := stats.NewRNG(7)
	strip := func(frame []byte) []byte { return frame[4:] }
	var out [][]byte
	for i := 0; i < 12; i++ {
		out = append(out,
			strip(AppendRequestFrame(nil, randRequest(rng))),
			strip(AppendSubReplyFrame(nil, randSubReply(rng))),
			strip(AppendReplyFrame(nil, randReply(rng))))
	}
	return out
}

// FuzzDecodeRequest asserts decoding never panics on arbitrary bytes,
// and that anything that does decode re-encodes to a body that decodes
// to the identical message (encode→decode identity).
func FuzzDecodeRequest(f *testing.F) {
	for _, b := range seedBodies(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		re := AppendRequestFrame(nil, req)[4:]
		back, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded request: %v", err)
		}
		if !reflect.DeepEqual(req, back) {
			t.Fatalf("re-encode not identity:\nfirst  %+v\nsecond %+v", req, back)
		}
	})
}

// FuzzDecodeSubReply is the sub-reply half of the identity fuzz.
func FuzzDecodeSubReply(f *testing.F) {
	for _, b := range seedBodies(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeSubReply(data)
		if err != nil {
			return
		}
		re := AppendSubReplyFrame(nil, rep)[4:]
		back, err := DecodeSubReply(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded sub-reply: %v", err)
		}
		if !reflect.DeepEqual(rep, back) {
			t.Fatalf("re-encode not identity:\nfirst  %+v\nsecond %+v", rep, back)
		}
	})
}

// FuzzDecodeReply is the composed-reply half of the identity fuzz.
func FuzzDecodeReply(f *testing.F) {
	for _, b := range seedBodies(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReply(data)
		if err != nil {
			return
		}
		re := AppendReplyFrame(nil, rep)[4:]
		back, err := DecodeReply(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded reply: %v", err)
		}
		if !reflect.DeepEqual(rep, back) {
			t.Fatalf("re-encode not identity:\nfirst  %+v\nsecond %+v", rep, back)
		}
	})
}
