package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"accuracytrader/internal/stats"
)

// randRequest draws a random request of any payload kind.
func randRequest(rng *stats.RNG) *Request {
	req := &Request{
		ID:          rng.Uint64(),
		Seq:         rng.Uint64(),
		Subset:      int32(rng.Intn(64)) - 1,
		SLO:         []uint8{SLOExact, SLOBounded, SLOBestEffort, SLONone}[rng.Intn(4)],
		MinAccuracy: rng.Float64(),
		Level:       int16(rng.Intn(6)) - 1,
		Deadline:    int64(rng.Uint64() >> 1),
		Trace:       rng.Uint64() >> uint(rng.Intn(64)), // often small, sometimes 0
		Tenant:      []string{"", "acme", "umbra", "wayne-enterprises"}[rng.Intn(4)],
	}
	switch Kind(rng.Intn(3)) {
	case KindCF:
		req.Kind = KindCF
		cf := &CFRequest{}
		for i := 0; i < rng.Intn(8); i++ {
			cf.Ratings = append(cf.Ratings, Rating{Item: int32(rng.Intn(1000)), Score: rng.Float64() * 5})
		}
		for i := 0; i < rng.Intn(8); i++ {
			cf.Targets = append(cf.Targets, int32(rng.Intn(1000)))
		}
		req.CF = cf
	case KindSearch:
		req.Kind = KindSearch
		words := []string{"alpha", "beta", "gamma", "delta", ""}
		req.Search = &SearchRequest{Query: words[rng.Intn(len(words))], K: int32(rng.Intn(20))}
	default:
		req.Kind = KindAgg
		req.Agg = &AggRequest{Op: uint8(rng.Intn(3)), Lo: rng.Norm(0, 1), Hi: rng.Norm(0, 1) + 5}
	}
	return req
}

func randF64s(rng *stats.RNG, n int) []float64 {
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Norm(0, 1)
	}
	return out
}

func randSubReply(rng *stats.RNG) *SubReply {
	rep := &SubReply{
		ID:            rng.Uint64(),
		Subset:        int32(rng.Intn(64)),
		Status:        uint8(rng.Intn(3)),
		Kind:          Kind(rng.Intn(3)),
		Level:         int16(rng.Intn(6)) - 1,
		SetsProcessed: uint32(rng.Intn(100)),
	}
	if rep.Status == StatusErr {
		rep.Err = "component exploded"
	}
	for i := 0; i < rng.Intn(3); i++ {
		rep.Spans = append(rep.Spans, Span{
			Kind:  uint8(rng.Intn(2)),
			Start: int64(rng.Uint64() >> 1),
			Dur:   int64(rng.Intn(1_000_000_000)),
			Cost: Cost{
				CPUNs:     uint64(rng.Intn(1_000_000)),
				Scanned:   uint64(rng.Intn(100_000)),
				QueueNs:   uint64(rng.Intn(1_000_000)),
				WireBytes: uint64(rng.Intn(1 << 16)),
			},
		})
	}
	if rep.Status == StatusOK {
		n := 1 + rng.Intn(6)
		switch rep.Kind {
		case KindCF:
			rep.CF = &CFResult{Num: randF64s(rng, n), Den: randF64s(rng, n)}
		case KindSearch:
			sr := &SearchResult{}
			for i := 0; i < n; i++ {
				sr.Hits = append(sr.Hits, Hit{Doc: int32(rng.Intn(5000)), Score: rng.Float64()})
			}
			rep.Search = sr
		default:
			rep.Agg = &AggResult{
				Sum: randF64s(rng, n), Cnt: randF64s(rng, n),
				SumVar: randF64s(rng, n), CntVar: randF64s(rng, n),
			}
		}
	}
	return rep
}

func randReply(rng *stats.RNG) *Reply {
	rep := &Reply{
		ID:          rng.Uint64(),
		Status:      uint8(rng.Intn(5)),
		Kind:        Kind(rng.Intn(3)),
		SLO:         []uint8{SLOExact, SLOBounded, SLOBestEffort, SLONone}[rng.Intn(4)],
		MinAccuracy: rng.Float64(),
		Degraded:    rng.Intn(2) == 0,
		Cached:      rng.Intn(2) == 0,
		Level:       int16(rng.Intn(6)) - 1,
		Trace:       rng.Uint64() >> uint(rng.Intn(64)),
	}
	for i := 0; i < rng.Intn(8); i++ {
		rep.SubStatus = append(rep.SubStatus, uint8(rng.Intn(4)))
	}
	if rep.Status == ReplyErr {
		rep.Err = "compose failed"
	}
	if rep.Status == ReplyUnavailable {
		rep.Err = "accuracy floor unreachable"
	}
	if ReplyCarriesPayload(rep.Status) {
		n := 1 + rng.Intn(6)
		switch rep.Kind {
		case KindCF:
			rep.CF = &CFResult{Num: randF64s(rng, n), Den: randF64s(rng, n)}
		case KindSearch:
			sr := &SearchResult{}
			for i := 0; i < n; i++ {
				sr.Hits = append(sr.Hits, Hit{Doc: int32(rng.Intn(5000)), Score: rng.Float64()})
			}
			rep.Search = sr
		default:
			rep.Agg = &AggResult{
				Sum: randF64s(rng, n), Cnt: randF64s(rng, n),
				SumVar: randF64s(rng, n), CntVar: randF64s(rng, n),
			}
		}
	}
	return rep
}

// body strips the length prefix from a framed encoding.
func body(t *testing.T, frame []byte) []byte {
	t.Helper()
	got, err := ReadFrame(bytes.NewReader(frame), nil, 0)
	if err != nil {
		t.Fatalf("ReadFrame on own encoding: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	rng := stats.NewRNG(41)
	for i := 0; i < 500; i++ {
		req := randRequest(rng)
		frame := AppendRequestFrame(nil, req)
		got, err := DecodeRequest(body(t, frame))
		if err != nil {
			t.Fatalf("decode: %v (%+v)", err, req)
		}
		if got.FrameLen != len(frame) {
			t.Fatalf("FrameLen = %d, want %d", got.FrameLen, len(frame))
		}
		got.FrameLen = 0 // receiver-side metadata, not part of the round trip
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", req, got)
		}
	}
}

func TestSubReplyRoundTrip(t *testing.T) {
	rng := stats.NewRNG(42)
	for i := 0; i < 500; i++ {
		rep := randSubReply(rng)
		frame := AppendSubReplyFrame(nil, rep)
		got, err := DecodeSubReply(body(t, frame))
		if err != nil {
			t.Fatalf("decode: %v (%+v)", err, rep)
		}
		if got.FrameLen != len(frame) {
			t.Fatalf("FrameLen = %d, want %d", got.FrameLen, len(frame))
		}
		got.FrameLen = 0 // receiver-side metadata, not part of the round trip
		if !reflect.DeepEqual(rep, got) {
			t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", rep, got)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	rng := stats.NewRNG(43)
	for i := 0; i < 500; i++ {
		rep := randReply(rng)
		got, err := DecodeReply(body(t, AppendReplyFrame(nil, rep)))
		if err != nil {
			t.Fatalf("decode: %v (%+v)", err, rep)
		}
		if !reflect.DeepEqual(rep, got) {
			t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", rep, got)
		}
	}
}

// TestTruncatedFramesError asserts every strict prefix of a valid body
// decodes to a clean error — never a panic, never a silent success.
func TestTruncatedFramesError(t *testing.T) {
	rng := stats.NewRNG(44)
	for i := 0; i < 50; i++ {
		reqBody := body(t, AppendRequestFrame(nil, randRequest(rng)))
		for cut := 0; cut < len(reqBody); cut++ {
			if _, err := DecodeRequest(reqBody[:cut]); err == nil {
				t.Fatalf("request prefix of %d/%d bytes decoded without error", cut, len(reqBody))
			}
		}
		repBody := body(t, AppendSubReplyFrame(nil, randSubReply(rng)))
		for cut := 0; cut < len(repBody); cut++ {
			if _, err := DecodeSubReply(repBody[:cut]); err == nil {
				t.Fatalf("sub-reply prefix of %d/%d bytes decoded without error", cut, len(repBody))
			}
		}
		comBody := body(t, AppendReplyFrame(nil, randReply(rng)))
		for cut := 0; cut < len(comBody); cut++ {
			if _, err := DecodeReply(comBody[:cut]); err == nil {
				t.Fatalf("reply prefix of %d/%d bytes decoded without error", cut, len(comBody))
			}
		}
	}
}

// TestCorruptFramesError covers the targeted corruption cases: wrong
// version, wrong frame kind, unknown payload kind, inflated counts,
// trailing bytes, and an oversized or undersized length prefix.
func TestCorruptFramesError(t *testing.T) {
	req := &Request{Kind: KindAgg, Agg: &AggRequest{Op: 1, Lo: 0, Hi: 10}}
	good := body(t, AppendRequestFrame(nil, req))

	mut := func(idx int, v byte) []byte {
		cp := append([]byte(nil), good...)
		cp[idx] = v
		return cp
	}
	if _, err := DecodeRequest(mut(0, 99)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := DecodeRequest(mut(1, frameReply)); err == nil || !strings.Contains(err.Error(), "frame kind") {
		t.Fatalf("bad frame kind: %v", err)
	}
	if _, err := DecodeRequest(mut(18, 77)); err == nil || !strings.Contains(err.Error(), "unknown payload kind") {
		t.Fatalf("unknown kind: %v", err)
	}
	if _, err := DecodeRequest(append(append([]byte(nil), good...), 0xab)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes: %v", err)
	}

	// A CF request whose declared rating count exceeds the frame must
	// fail the count validation, not attempt the allocation.
	cfReq := &Request{Kind: KindCF, CF: &CFRequest{Targets: []int32{1}}}
	cfBody := body(t, AppendRequestFrame(nil, cfReq))
	// ratings count sits right after the fixed request header
	// (version, frame kind, id, seq, kind, subset, slo, minAccuracy,
	// level, deadline, trace, tenant — empty, so just its u32 length).
	hdr := 2 + 8 + 8 + 1 + 4 + 1 + 8 + 2 + 8 + 8 + 4
	cp := append([]byte(nil), cfBody...)
	cp[hdr] = 0xff
	cp[hdr+1] = 0xff
	if _, err := DecodeRequest(cp); err == nil {
		t.Fatal("inflated count must error")
	}

	// Length prefix outside bounds.
	frame := AppendRequestFrame(nil, req)
	frame[0], frame[1], frame[2], frame[3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadFrame(bytes.NewReader(frame), nil, 1024); err == nil {
		t.Fatal("oversized length prefix must error")
	}
	frame = AppendRequestFrame(nil, req)
	frame[0], frame[1], frame[2], frame[3] = 1, 0, 0, 0
	if _, err := ReadFrame(bytes.NewReader(frame), nil, 0); err == nil {
		t.Fatal("undersized length prefix must error")
	}

	// A frame cut off mid-body is an unexpected EOF.
	frame = AppendRequestFrame(nil, req)
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3]), nil, 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("mid-body EOF: %v", err)
	}
}

// TestVersionMismatchTyped asserts a peer speaking another protocol
// version yields a *VersionError that survives errors.As through
// wrapping — the clean signal a v2 peer gets instead of a parse
// failure.
func TestVersionMismatchTyped(t *testing.T) {
	req := &Request{Kind: KindAgg, Agg: &AggRequest{Op: 1, Lo: 0, Hi: 10}}
	good := body(t, AppendRequestFrame(nil, req))
	v2 := append([]byte(nil), good...)
	v2[0] = 2
	_, err := DecodeRequest(v2)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VersionError, got %v", err)
	}
	if ve.Got != 2 || ve.Want != Version {
		t.Fatalf("VersionError = %+v", ve)
	}
	wrapped := fmt.Errorf("peer 3: decode sub-reply: %w", err)
	if !errors.As(wrapped, &ve) {
		t.Fatal("VersionError lost through wrapping")
	}
	if _, err := FrameKind(v2); !errors.As(err, &ve) {
		t.Fatalf("FrameKind: want *VersionError, got %v", err)
	}
	if !strings.Contains(err.Error(), "version 2") || !strings.Contains(err.Error(), fmt.Sprintf("want %d", Version)) {
		t.Fatalf("message: %q", err.Error())
	}
}

// TestCorruptSpanFields targets the v3 sub-reply span block: inflated
// span counts must fail validation without allocating, and every
// truncation inside the span block must error cleanly.
func TestCorruptSpanFields(t *testing.T) {
	rep := &SubReply{
		ID: 9, Subset: 1, Status: StatusOK, Kind: KindAgg, Level: 2, SetsProcessed: 4,
		Spans: []Span{
			{Kind: SpanQueue, Start: 100, Dur: 50, Cost: Cost{QueueNs: 50}},
			{Kind: SpanExec, Start: 150, Dur: 75, Cost: Cost{CPUNs: 75, Scanned: 1000, WireBytes: 64}},
		},
		Agg: &AggResult{Sum: []float64{1}, Cnt: []float64{2}, SumVar: []float64{0}, CntVar: []float64{0}},
	}
	good := body(t, AppendSubReplyFrame(nil, rep))

	// The span count sits after: version, frame kind, id, subset,
	// status, err (u32 len, empty), kind, level, sets.
	off := 2 + 8 + 4 + 1 + 4 + 1 + 2 + 4
	if got, err := DecodeSubReply(good); err != nil || len(got.Spans) != 2 {
		t.Fatalf("sanity: %v, spans=%d", err, len(got.Spans))
	}
	cp := append([]byte(nil), good...)
	cp[off] = 0xff
	cp[off+1] = 0xff
	if _, err := DecodeSubReply(cp); err == nil || !strings.Contains(err.Error(), "spans") {
		t.Fatalf("inflated span count: %v", err)
	}
	// Truncations through the whole span block.
	for cut := off; cut < off+4+2*49; cut++ {
		if _, err := DecodeSubReply(good[:cut]); err == nil {
			t.Fatalf("span-block prefix of %d bytes decoded without error", cut)
		}
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	req := &Request{Kind: KindAgg, Agg: &AggRequest{Op: 0, Lo: 1, Hi: 2}}
	frame := AppendRequestFrame(nil, req)
	buf := make([]byte, 0, 4096)
	got, err := ReadFrame(bytes.NewReader(frame), buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("ReadFrame allocated although the buffer had capacity")
	}
}

func TestFrameKind(t *testing.T) {
	req := &Request{Kind: KindSearch, Search: &SearchRequest{Query: "q", K: 3}}
	b := body(t, AppendRequestFrame(nil, req))
	k, err := FrameKind(b)
	if err != nil || k != frameRequest {
		t.Fatalf("FrameKind = %d, %v", k, err)
	}
	if _, err := FrameKind([]byte{Version}); err == nil {
		t.Fatal("short header must error")
	}
}
