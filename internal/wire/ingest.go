package wire

import (
	"encoding/binary"
	"fmt"
)

// Ingest statuses (IngestReply.Status).
const (
	IngestOK       = 0
	IngestErr      = 1 // the batch was rejected; Err says why
	IngestRejected = 2 // shed at admission (queue bound, shutdown)
)

// CFIngest appends whole users to a CF shard, each a list of (item,
// score) ratings in any order.
type CFIngest struct {
	Users [][]Rating
}

// SearchIngest appends documents to a search shard.
type SearchIngest struct {
	Docs []string
}

// AggIngest appends fact rows to an aggregation shard: parallel
// (group key, value) columns of equal length.
type AggIngest struct {
	Keys []int32
	Vals []float64
}

// IngestRequest is a v5 append op: a batch of new rows/users/documents
// for one workload. With Subset < 0 it is a client→aggregator request
// routed to the owning component; otherwise it targets one subset
// directly. The batch is atomic — it becomes visible in full at an
// epoch swap, or is rejected in full.
type IngestRequest struct {
	ID     uint64
	Kind   Kind
	Subset int32
	// Trace is the request's 64-bit trace ID (0 = untraced), propagated
	// so ingest spans land in the same trace tree as query spans.
	Trace uint64

	CF     *CFIngest
	Search *SearchIngest
	Agg    *AggIngest
}

// IngestReply acknowledges an append batch: how many items were
// accepted and the epoch at (or after) which they will be visible.
type IngestReply struct {
	ID     uint64
	Subset int32
	Status uint8
	Err    string
	// Accepted is the number of items (rows, users, documents) staged.
	Accepted uint32
	// Epoch is the shard's epoch when the batch was staged; the batch is
	// visible to every snapshot with a strictly greater epoch.
	Epoch uint64
}

// AppendIngestRequestFrame appends the length-prefixed encoding of req.
func AppendIngestRequestFrame(dst []byte, req *IngestRequest) []byte {
	start := len(dst)
	dst = appendU32(dst, 0) // length, patched below
	dst = append(dst, Version, frameIngest)
	dst = appendU64(dst, req.ID)
	dst = append(dst, byte(req.Kind))
	dst = appendU32(dst, uint32(req.Subset))
	dst = appendU64(dst, req.Trace)
	switch req.Kind {
	case KindCF:
		dst = appendU32(dst, uint32(len(req.CF.Users)))
		for _, rs := range req.CF.Users {
			dst = appendU32(dst, uint32(len(rs)))
			for _, rt := range rs {
				dst = appendU32(dst, uint32(rt.Item))
				dst = appendF64(dst, rt.Score)
			}
		}
	case KindSearch:
		dst = appendU32(dst, uint32(len(req.Search.Docs)))
		for _, d := range req.Search.Docs {
			dst = appendStr(dst, d)
		}
	case KindAgg:
		dst = appendI32s(dst, req.Agg.Keys)
		dst = appendF64s(dst, req.Agg.Vals)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// DecodeIngestRequest decodes an ingest-request frame body.
func DecodeIngestRequest(body []byte) (*IngestRequest, error) {
	r := &reader{b: body}
	if err := checkHeader(r, frameIngest, "ingest"); err != nil {
		return nil, err
	}
	req := &IngestRequest{}
	req.ID = r.u64("id")
	req.Kind = Kind(r.u8("kind"))
	req.Subset = int32(r.u32("subset"))
	req.Trace = r.u64("trace")
	switch req.Kind {
	case KindCF:
		ci := &CFIngest{}
		// Each user costs at least its own 4-byte rating count.
		n := r.count(4, "users")
		if r.err == nil && n > 0 {
			ci.Users = make([][]Rating, n)
			for u := range ci.Users {
				m := r.count(12, "ratings")
				if r.err != nil {
					break
				}
				if m > 0 {
					ci.Users[u] = make([]Rating, m)
					for i := range ci.Users[u] {
						ci.Users[u][i].Item = int32(r.u32("rating item"))
						ci.Users[u][i].Score = r.f64("rating score")
					}
				}
			}
		}
		req.CF = ci
	case KindSearch:
		si := &SearchIngest{}
		// Each document costs at least its own 4-byte length.
		n := r.count(4, "docs")
		if r.err == nil && n > 0 {
			si.Docs = make([]string, n)
			for i := range si.Docs {
				si.Docs[i] = r.str("doc")
			}
		}
		req.Search = si
	case KindAgg:
		req.Agg = &AggIngest{Keys: r.i32s("keys"), Vals: r.f64s("vals")}
		if r.err == nil && len(req.Agg.Keys) != len(req.Agg.Vals) {
			return nil, fmt.Errorf("wire: agg ingest shape %d keys, %d vals",
				len(req.Agg.Keys), len(req.Agg.Vals))
		}
	default:
		return nil, fmt.Errorf("wire: unknown payload kind %d", req.Kind)
	}
	if err := r.done("ingest"); err != nil {
		return nil, err
	}
	return req, nil
}

// AppendIngestReplyFrame appends the length-prefixed encoding of rep.
func AppendIngestReplyFrame(dst []byte, rep *IngestReply) []byte {
	start := len(dst)
	dst = appendU32(dst, 0)
	dst = append(dst, Version, frameIngestReply)
	dst = appendU64(dst, rep.ID)
	dst = appendU32(dst, uint32(rep.Subset))
	dst = append(dst, rep.Status)
	dst = appendStr(dst, rep.Err)
	dst = appendU32(dst, rep.Accepted)
	dst = appendU64(dst, rep.Epoch)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// DecodeIngestReply decodes an ingest-reply frame body.
func DecodeIngestReply(body []byte) (*IngestReply, error) {
	r := &reader{b: body}
	if err := checkHeader(r, frameIngestReply, "ingest reply"); err != nil {
		return nil, err
	}
	rep := &IngestReply{}
	rep.ID = r.u64("id")
	rep.Subset = int32(r.u32("subset"))
	rep.Status = r.u8("status")
	rep.Err = r.str("err")
	rep.Accepted = r.u32("accepted")
	rep.Epoch = r.u64("epoch")
	if err := r.done("ingest reply"); err != nil {
		return nil, err
	}
	return rep, nil
}
