package wire

import (
	"slices"
	"strings"
)

// canonicalKeyVersion versions the canonical key format independently
// of the frame protocol: bumping it on a format change invalidates old
// keys instead of silently colliding with them.
const canonicalKeyVersion = 1

// AppendCanonicalKey appends a canonical byte encoding of the request's
// semantic payload — the bytes a result cache should key on. Two
// requests produce identical encodings iff they ask for the same
// answer:
//
//   - per-request metadata (ID, Seq, Subset, SLO class, MinAccuracy,
//     Level, Deadline, Tenant) is excluded — the cache checks accuracy
//     floors against the entry's recorded accuracy, not against key
//     bytes, and identical queries from different tenants share one
//     entry;
//   - search query terms are reduced to a sorted multiset: lowercased
//     alphanumeric runs with per-term counts, so reordered (and
//     arbitrarily re-whitespaced) queries collide while duplicated
//     terms — which boost tf-idf scoring — stay distinct;
//   - CF known ratings are encoded as a sorted multiset (engines sort
//     them anyway, so order is semantically void). CF targets are kept
//     in request order: the reply's Num/Den arrays are positional, so
//     target order is part of the contract — clients that want
//     order-insensitive caching canonicalize with Canonicalize first;
//   - aggregation requests are already canonical (op + range).
//
// The tokenization here is deliberately coarser than the search
// engine's analyzer (no stopword or length filtering — the codec is a
// leaf and must not import it): it can only split cache keys more
// finely than the engine distinguishes queries, never conflate
// semantically different ones.
func AppendCanonicalKey(dst []byte, req *Request) []byte {
	dst = append(dst, canonicalKeyVersion, byte(req.Kind))
	switch req.Kind {
	case KindCF:
		ratings := append([]Rating(nil), req.CF.Ratings...)
		slices.SortFunc(ratings, func(a, b Rating) int {
			if a.Item != b.Item {
				return int(a.Item) - int(b.Item)
			}
			switch {
			case a.Score < b.Score:
				return -1
			case a.Score > b.Score:
				return 1
			}
			return 0
		})
		dst = appendU32(dst, uint32(len(ratings)))
		for _, rt := range ratings {
			dst = appendU32(dst, uint32(rt.Item))
			dst = appendF64(dst, rt.Score)
		}
		dst = appendI32s(dst, req.CF.Targets)
	case KindSearch:
		toks := canonicalTokens(req.Search.Query)
		dst = appendU32(dst, uint32(len(toks)))
		for i := 0; i < len(toks); {
			j := i
			for j < len(toks) && toks[j] == toks[i] {
				j++
			}
			dst = appendStr(dst, toks[i])
			dst = appendU32(dst, uint32(j-i))
			i = j
		}
		dst = appendU32(dst, uint32(req.Search.K))
	case KindAgg:
		dst = append(dst, req.Agg.Op)
		dst = appendF64(dst, req.Agg.Lo)
		dst = appendF64(dst, req.Agg.Hi)
	}
	return dst
}

// canonicalTokens splits text into sorted lowercased alphanumeric runs
// (duplicates preserved — multiplicity matters for tf-idf weighting).
func canonicalTokens(text string) []string {
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			flush()
		}
	}
	flush()
	slices.Sort(toks)
	return toks
}

// Canonicalize returns a copy of req with every order-insensitive
// payload field in canonical order, so that permutations of the same
// request encode — and cache-key — identically:
//
//   - search query terms sorted (duplicates preserved; scoring is
//     order-independent but multiplicity-sensitive);
//   - CF ratings sorted by (item, score);
//   - CF targets sorted and deduplicated — callers must apply this
//     before sending, because the reply's positional Num/Den arrays
//     follow the canonical target order.
//
// Aggregation requests are returned as a plain copy (already
// canonical). The input is never mutated.
func Canonicalize(req *Request) *Request {
	out := *req
	switch req.Kind {
	case KindCF:
		cf := *req.CF
		cf.Ratings = append([]Rating(nil), req.CF.Ratings...)
		slices.SortFunc(cf.Ratings, func(a, b Rating) int {
			if a.Item != b.Item {
				return int(a.Item) - int(b.Item)
			}
			switch {
			case a.Score < b.Score:
				return -1
			case a.Score > b.Score:
				return 1
			}
			return 0
		})
		cf.Targets = append([]int32(nil), req.CF.Targets...)
		slices.Sort(cf.Targets)
		cf.Targets = slices.Compact(cf.Targets)
		if len(cf.Targets) == 0 {
			cf.Targets = nil
		}
		out.CF = &cf
	case KindSearch:
		s := *req.Search
		s.Query = strings.Join(canonicalTokens(req.Search.Query), " ")
		out.Search = &s
	case KindAgg:
		agg := *req.Agg
		out.Agg = &agg
	}
	return &out
}
