package wire

import (
	"bytes"
	"testing"

	"accuracytrader/internal/stats"
)

// permute returns a copy of xs in a random order.
func permute[T any](rng *stats.RNG, xs []T) []T {
	out := append([]T(nil), xs...)
	for i := len(out) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TestCanonicalKeyPermutationInvariant is the satellite round-trip
// check: permuted (and re-whitespaced) inputs must encode to the same
// canonical key bytes.
func TestCanonicalKeyPermutationInvariant(t *testing.T) {
	rng := stats.NewRNG(7)

	// Search: term order and separators are irrelevant.
	base := &Request{Kind: KindSearch, Search: &SearchRequest{Query: "alpha beta gamma beta", K: 10}}
	want := AppendCanonicalKey(nil, base)
	for _, q := range []string{
		"beta gamma alpha beta",
		"beta,beta;GAMMA  alpha",
		"gamma\tbeta alpha beta",
	} {
		got := AppendCanonicalKey(nil, &Request{Kind: KindSearch, Search: &SearchRequest{Query: q, K: 10}})
		if !bytes.Equal(want, got) {
			t.Fatalf("query %q keyed differently from %q", q, base.Search.Query)
		}
	}
	// Multiplicity matters for tf-idf scoring: a duplicated term is a
	// different request.
	dedup := AppendCanonicalKey(nil, &Request{Kind: KindSearch, Search: &SearchRequest{Query: "alpha beta gamma", K: 10}})
	if bytes.Equal(want, dedup) {
		t.Fatal("duplicate query term conflated with its single occurrence")
	}
	// K is part of the answer shape.
	otherK := AppendCanonicalKey(nil, &Request{Kind: KindSearch, Search: &SearchRequest{Query: "alpha beta gamma beta", K: 20}})
	if bytes.Equal(want, otherK) {
		t.Fatal("different K keyed identically")
	}

	// CF: rating order is irrelevant; target order is positional and
	// must be preserved.
	ratings := []Rating{{Item: 5, Score: 4}, {Item: 1, Score: 2}, {Item: 9, Score: 1}, {Item: 5, Score: 4}}
	targets := []int32{7, 3, 11}
	cfBase := &Request{Kind: KindCF, CF: &CFRequest{Ratings: ratings, Targets: targets}}
	cfWant := AppendCanonicalKey(nil, cfBase)
	for i := 0; i < 20; i++ {
		req := &Request{Kind: KindCF, CF: &CFRequest{Ratings: permute(rng, ratings), Targets: targets}}
		if !bytes.Equal(cfWant, AppendCanonicalKey(nil, req)) {
			t.Fatalf("permuted ratings keyed differently: %+v", req.CF.Ratings)
		}
	}
	swapped := &Request{Kind: KindCF, CF: &CFRequest{Ratings: ratings, Targets: []int32{3, 7, 11}}}
	if bytes.Equal(cfWant, AppendCanonicalKey(nil, swapped)) {
		t.Fatal("reordered targets keyed identically (replies are positional)")
	}

	// Aggregation: the payload is already canonical; distinct ranges
	// must key distinctly.
	a1 := AppendCanonicalKey(nil, &Request{Kind: KindAgg, Agg: &AggRequest{Op: 1, Lo: 0, Hi: 10}})
	a2 := AppendCanonicalKey(nil, &Request{Kind: KindAgg, Agg: &AggRequest{Op: 1, Lo: 0, Hi: 11}})
	if bytes.Equal(a1, a2) {
		t.Fatal("distinct agg ranges keyed identically")
	}
}

// TestCanonicalKeyExcludesMetadata asserts the key covers only the
// semantic payload: IDs, SLO class, level and deadline never split it.
func TestCanonicalKeyExcludesMetadata(t *testing.T) {
	mk := func(id, seq uint64, slo uint8, minAcc float64, level int16, deadline int64, subset int32) []byte {
		return AppendCanonicalKey(nil, &Request{
			ID: id, Seq: seq, SLO: slo, MinAccuracy: minAcc, Level: level,
			Deadline: deadline, Subset: subset,
			Kind: KindAgg, Agg: &AggRequest{Op: 2, Lo: 1, Hi: 5},
		})
	}
	want := mk(1, 2, SLOExact, 0, NoLevel, 0, -1)
	if !bytes.Equal(want, mk(99, 7, SLOBounded, 0.9, 3, 12345, 4)) {
		t.Fatal("per-request metadata leaked into the canonical key")
	}
}

// TestCanonicalizeRoundTrip: permuted requests, after Canonicalize,
// must produce byte-identical frame encodings (the full satellite
// round trip: canonicalize -> encode -> same bytes).
func TestCanonicalizeRoundTrip(t *testing.T) {
	rng := stats.NewRNG(11)
	ratings := []Rating{{Item: 4, Score: 5}, {Item: 2, Score: 3}, {Item: 8, Score: 1}}
	targets := []int32{9, 1, 5, 1}
	base := &Request{ID: 1, Kind: KindCF, SLO: SLONone, Level: NoLevel,
		CF: &CFRequest{Ratings: ratings, Targets: targets}}
	want := AppendRequestFrame(nil, Canonicalize(base))
	for i := 0; i < 20; i++ {
		req := &Request{ID: 1, Kind: KindCF, SLO: SLONone, Level: NoLevel,
			CF: &CFRequest{Ratings: permute(rng, ratings), Targets: permute(rng, targets)}}
		got := AppendRequestFrame(nil, Canonicalize(req))
		if !bytes.Equal(want, got) {
			t.Fatalf("canonicalized permutation %d encodes differently", i)
		}
		// The input must never be mutated.
		if req.CF.Ratings[0] == (Rating{}) {
			t.Fatal("Canonicalize mutated its input")
		}
	}

	sBase := &Request{ID: 2, Kind: KindSearch, SLO: SLONone, Level: NoLevel,
		Search: &SearchRequest{Query: "Go tail Latency tail", K: 5}}
	sWant := AppendRequestFrame(nil, Canonicalize(sBase))
	sPerm := &Request{ID: 2, Kind: KindSearch, SLO: SLONone, Level: NoLevel,
		Search: &SearchRequest{Query: "tail latency GO, tail", K: 5}}
	if !bytes.Equal(sWant, AppendRequestFrame(nil, Canonicalize(sPerm))) {
		t.Fatal("canonicalized search permutation encodes differently")
	}
	// Canonical form is a fixed point.
	canon := Canonicalize(sBase)
	if !bytes.Equal(sWant, AppendRequestFrame(nil, Canonicalize(canon))) {
		t.Fatal("Canonicalize is not idempotent")
	}

	// A canonicalized request still decodes cleanly.
	b, err := ReadFrame(bytes.NewReader(want), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.CF.Targets) != 3 { // 1 deduplicated
		t.Fatalf("canonical targets = %v", dec.CF.Targets)
	}
}
