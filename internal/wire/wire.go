package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version stamped into every frame. A peer
// speaking a different version is rejected at decode time with a typed
// *VersionError instead of being misparsed. Version 2 added the
// composed reply's Cached byte; version 3 added the propagated trace ID
// (Request.Trace, Reply.Trace) and server-side spans (SubReply.Spans);
// version 4 added the degraded/unavailable composed-reply statuses
// (ReplyDegraded carries a payload, so the payload-presence rule
// changed); version 5 added the streaming-ingest append op (the
// IngestRequest/IngestReply frame kinds); version 6 added the tenant ID
// on requests (Request.Tenant) and the per-span resource counters
// (Span.Cost), so component-side costs travel back inside replies the
// same way trace spans do.
const Version = 6

// VersionError reports a frame stamped with a different protocol
// version — a v2 (or future) peer on the other end of the connection.
type VersionError struct {
	Got, Want uint8
}

// Error describes the mismatch.
func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: protocol version %d, want %d", e.Got, e.Want)
}

// Frame kinds: what a frame body contains.
const (
	frameRequest     = 1
	frameSubReply    = 2
	frameReply       = 3
	frameIngest      = 4
	frameIngestReply = 5
)

// Exported frame kinds, for demultiplexing connections that carry both
// query and ingest traffic (compare against FrameKind's result).
const (
	FrameRequest     = frameRequest
	FrameSubReply    = frameSubReply
	FrameReply       = frameReply
	FrameIngest      = frameIngest
	FrameIngestReply = frameIngestReply
)

// Kind selects which application payload a request or result carries.
type Kind uint8

// The application payload kinds, one per workload.
const (
	KindCF Kind = iota
	KindSearch
	KindAgg
)

// String returns the workload name.
func (k Kind) String() string {
	switch k {
	case KindCF:
		return "cf"
	case KindSearch:
		return "search"
	default:
		return "agg"
	}
}

// SLO classes on the wire. They mirror frontend.SLOKind with an extra
// sentinel for requests that did not pass through a frontend.
const (
	SLOExact      = 0
	SLOBounded    = 1
	SLOBestEffort = 2
	SLONone       = 0xff
)

// Sub-operation statuses (SubReply.Status and Reply.SubStatus entries).
const (
	StatusOK      = 0
	StatusErr     = 1
	StatusSkipped = 2 // deadline passed before the work ran (or reply arrived)
	StatusBusy    = 3 // shed at an outstanding-window or server queue bound
)

// Reply statuses for the composed reply.
const (
	ReplyOK       = 0
	ReplyRejected = 1 // shed by frontend admission
	ReplyErr      = 2
	// ReplyDegraded is a served answer composed over missing strata:
	// the payload is present, its bounds were widened for the absent
	// components, and the reported accuracy still cleared the request's
	// floor (trivially so for BestEffort).
	ReplyDegraded = 3
	// ReplyUnavailable is the typed rejection of a Bounded request
	// whose discounted accuracy under component failure could no longer
	// clear MinAccuracy (or an Exact request that lost a component):
	// the honest refusal instead of a silently skewed answer.
	ReplyUnavailable = 4
)

// ReplyCarriesPayload reports whether a composed reply with the given
// status encodes a result payload (OK and Degraded do; the rejection
// and error statuses do not).
func ReplyCarriesPayload(status uint8) bool {
	return status == ReplyOK || status == ReplyDegraded
}

// NoLevel is the Level value of a request that carries no ladder level
// (handlers serve their finest synopsis).
const NoLevel = -1

// Rating is one (item, score) pair of a CF request, mirroring
// cf.Rating without importing the application package: the codec stays
// a leaf.
type Rating struct {
	Item  int32
	Score float64
}

// Hit is one (doc, score) pair of a search result.
type Hit struct {
	Doc   int32
	Score float64
}

// CFRequest asks for rating predictions: the active user's known
// ratings and the target items.
type CFRequest struct {
	Ratings []Rating
	Targets []int32
}

// SearchRequest asks for the top-K pages matching a query string.
type SearchRequest struct {
	Query string
	K     int32
}

// AggRequest asks for a filtered per-group aggregate: Op(value) GROUP
// BY key over rows with value in [Lo, Hi). Op values mirror agg.Op.
type AggRequest struct {
	Op     uint8
	Lo, Hi float64
}

// CFResult is a CF partial result: per-target weighted deviation sums
// and weight normalizers. Partials merge by addition.
type CFResult struct {
	Num []float64
	Den []float64
}

// SearchResult is a ranked hit list. Component servers return
// shard-local doc ids; composed replies carry globalized ids.
type SearchResult struct {
	Hits []Hit
}

// AggResult is an aggregation partial result: per-key estimated SUM
// and COUNT with estimator variances. Partials merge by addition, and
// keeping the variances makes the composed reply bounds-aware.
type AggResult struct {
	Sum    []float64
	Cnt    []float64
	SumVar []float64
	CntVar []float64
}

// Request is one sub-operation sent from an aggregator to a component
// server — or, with Subset < 0, a whole-service request sent from a
// client to an aggregator. It carries everything a hop needs to stop
// work when the budget is gone: the SLO class, the ladder level the
// frontend selected, and the absolute deadline.
type Request struct {
	ID uint64
	// Seq correlates a sub-operation with its parent whole-service
	// request: the aggregator stamps each sub-request's Seq with the
	// parent's ID, so component-side logs, traces and interference
	// models can key on the request rather than the sub-operation.
	Seq    uint64
	Kind   Kind
	Subset int32 // data subset to serve; < 0 on client→aggregator requests
	// SLO is the request's class (SLOExact…SLOBestEffort, or SLONone
	// when no frontend is involved); MinAccuracy is the Bounded floor.
	SLO         uint8
	MinAccuracy float64
	// Level is the frontend-selected ladder level (coarse 0 … fine), or
	// NoLevel.
	Level int16
	// Deadline is the absolute request deadline in Unix nanoseconds (0 =
	// none). Every hop computes its remaining budget from it and
	// abandons work once the budget is exhausted.
	Deadline int64
	// Trace is the request's 64-bit trace ID (0 = untraced). The
	// aggregator stamps it onto every sub-request so component servers
	// record server-side spans under the same tree; when it is 0 servers
	// skip span bookkeeping entirely.
	Trace uint64
	// Tenant names the principal the request is billed to ("" = untagged).
	// It rides every hop so per-tenant cost attribution works on the
	// component side too, but it is deliberately NOT part of the
	// canonical cache key: identical queries from different tenants share
	// one cache entry.
	Tenant string
	// FrameLen is receiver-side metadata, not a wire field: DecodeRequest
	// sets it to the decoded frame's total byte length (length prefix
	// included) so servers can attribute inbound wire bytes without
	// re-measuring the frame. Zero on requests built in process.
	FrameLen int

	CF     *CFRequest
	Search *SearchRequest
	Agg    *AggRequest
}

// SubReply is one component server's reply to a sub-operation.
type SubReply struct {
	ID     uint64
	Subset int32
	Status uint8
	Err    string
	Kind   Kind
	// Level is the ladder level actually served (NoLevel when the finest
	// synopsis was used implicitly).
	Level int16
	// SetsProcessed counts Algorithm 1 improvement steps — the accuracy
	// proxy reported back to the aggregator.
	SetsProcessed uint32
	// Spans are the server-side trace spans (queue wait, handler
	// execution) for a traced request, stitched into the aggregator's
	// tree. Empty when the request carried no trace ID.
	Spans []Span
	// FrameLen is receiver-side metadata, not a wire field: DecodeSubReply
	// sets it to the decoded frame's total byte length (length prefix
	// included) so the aggregator can attribute reply wire bytes. Zero on
	// sub-replies built in process.
	FrameLen int

	CF     *CFResult
	Search *SearchResult
	Agg    *AggResult
}

// Reply is the composed whole-service reply an aggregator returns to a
// client: the merged result plus what was actually delivered (effective
// SLO after downgrades, served level, per-subset statuses).
type Reply struct {
	ID          uint64
	Status      uint8
	Err         string
	Kind        Kind
	SLO         uint8
	MinAccuracy float64
	Degraded    bool
	// Cached reports that the reply was served from the front server's
	// accuracy-aware result cache rather than a fresh fan-out; the
	// entry's recorded accuracy cleared this request's floor.
	Cached bool
	Level  int16
	// Trace echoes the request's trace ID (0 = untraced) so clients can
	// correlate the reply with the trace they minted.
	Trace uint64
	// SubStatus holds one Status* byte per subset, in subset order.
	SubStatus []uint8

	CF     *CFResult
	Search *SearchResult
	Agg    *AggResult
}

// Span kinds carried in SubReply.Spans.
const (
	SpanQueue = 0 // time the sub-operation waited in the server queue
	SpanExec  = 1 // time the handler ran
)

// Span is one server-side trace span: what kind of time it was, when
// it started (server wall clock, Unix nanoseconds) and how long it
// lasted. The aggregator converts Start into its trace's time base.
// Since v6 a span also carries its resource cost, so attribution
// travels inside replies the same way timing does.
type Span struct {
	Kind  uint8
	Start int64
	Dur   int64
	Cost  Cost
}

// Cost is one span's resource account: what serving it actually
// consumed. Zero values mean "nothing measured" — a queue span carries
// only QueueNs, an exec span the other three.
type Cost struct {
	// CPUNs is handler execution time in nanoseconds (the CPU the
	// handler held for the span's duration).
	CPUNs uint64
	// Scanned counts data units touched: fact rows, postings, sample
	// units — the workload's natural scan unit.
	Scanned uint64
	// QueueNs is time spent waiting in a server queue, nanoseconds.
	QueueNs uint64
	// WireBytes is the frame bytes on the wire attributed to the span
	// (the component server reports the request frame it decoded; the
	// aggregator adds reply frames on its side).
	WireBytes uint64
}

// spanWireSize is a Span's encoded size, used for count validation.
const spanWireSize = 1 + 8 + 8 + 4*8

// MaxFrame is the default bound on accepted frame sizes; a corrupt
// length prefix fails fast instead of attempting a huge allocation.
const MaxFrame = 8 << 20

// appenders — little-endian throughout.

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendF64s(b []byte, vs []float64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}

func appendI32s(b []byte, vs []int32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, uint32(v))
	}
	return b
}

// reader decodes a frame body with sticky bounds-checked errors: a
// truncated or corrupt frame yields an error, never a panic.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated or corrupt frame (%s at offset %d of %d)", what, r.off, len(r.b))
	}
}

func (r *reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail(what)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u8(what string) uint8 {
	s := r.take(1, what)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *reader) u16(what string) uint16 {
	s := r.take(2, what)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *reader) u32(what string) uint32 {
	s := r.take(4, what)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *reader) u64(what string) uint64 {
	s := r.take(8, what)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *reader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

// count validates a declared element count against the bytes actually
// remaining (elemSize bytes each), so corrupt counts cannot drive huge
// allocations.
func (r *reader) count(elemSize int, what string) int {
	n := int(r.u32(what))
	if r.err != nil {
		return 0
	}
	if n < 0 || (len(r.b)-r.off)/elemSize < n {
		r.fail(what + " count")
		return 0
	}
	return n
}

func (r *reader) str(what string) string {
	n := r.count(1, what)
	return string(r.take(n, what))
}

func (r *reader) f64s(what string) []float64 {
	n := r.count(8, what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64(what)
	}
	return out
}

func (r *reader) i32s(what string) []int32 {
	n := r.count(4, what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.u32(what))
	}
	return out
}

func (r *reader) done(kind string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes after %s", len(r.b)-r.off, kind)
	}
	return nil
}

// AppendRequestFrame appends the length-prefixed encoding of req.
func AppendRequestFrame(dst []byte, req *Request) []byte {
	start := len(dst)
	dst = appendU32(dst, 0) // length, patched below
	dst = append(dst, Version, frameRequest)
	dst = appendU64(dst, req.ID)
	dst = appendU64(dst, req.Seq)
	dst = append(dst, byte(req.Kind))
	dst = appendU32(dst, uint32(req.Subset))
	dst = append(dst, req.SLO)
	dst = appendF64(dst, req.MinAccuracy)
	dst = appendU16(dst, uint16(req.Level))
	dst = appendU64(dst, uint64(req.Deadline))
	dst = appendU64(dst, req.Trace)
	dst = appendStr(dst, req.Tenant)
	switch req.Kind {
	case KindCF:
		dst = appendU32(dst, uint32(len(req.CF.Ratings)))
		for _, rt := range req.CF.Ratings {
			dst = appendU32(dst, uint32(rt.Item))
			dst = appendF64(dst, rt.Score)
		}
		dst = appendI32s(dst, req.CF.Targets)
	case KindSearch:
		dst = appendStr(dst, req.Search.Query)
		dst = appendU32(dst, uint32(req.Search.K))
	case KindAgg:
		dst = append(dst, req.Agg.Op)
		dst = appendF64(dst, req.Agg.Lo)
		dst = appendF64(dst, req.Agg.Hi)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// DecodeRequest decodes a request frame body.
func DecodeRequest(body []byte) (*Request, error) {
	r := &reader{b: body}
	if err := checkHeader(r, frameRequest, "request"); err != nil {
		return nil, err
	}
	req := &Request{}
	req.ID = r.u64("id")
	req.Seq = r.u64("seq")
	req.Kind = Kind(r.u8("kind"))
	req.Subset = int32(r.u32("subset"))
	req.SLO = r.u8("slo")
	req.MinAccuracy = r.f64("minAccuracy")
	req.Level = int16(r.u16("level"))
	req.Deadline = int64(r.u64("deadline"))
	req.Trace = r.u64("trace")
	req.Tenant = r.str("tenant")
	switch req.Kind {
	case KindCF:
		cf := &CFRequest{}
		n := r.count(12, "ratings")
		if r.err == nil && n > 0 {
			cf.Ratings = make([]Rating, n)
			for i := range cf.Ratings {
				cf.Ratings[i].Item = int32(r.u32("rating item"))
				cf.Ratings[i].Score = r.f64("rating score")
			}
		}
		cf.Targets = r.i32s("targets")
		req.CF = cf
	case KindSearch:
		req.Search = &SearchRequest{Query: r.str("query"), K: int32(r.u32("k"))}
	case KindAgg:
		req.Agg = &AggRequest{Op: r.u8("op"), Lo: r.f64("lo"), Hi: r.f64("hi")}
	default:
		return nil, fmt.Errorf("wire: unknown payload kind %d", req.Kind)
	}
	if err := r.done("request"); err != nil {
		return nil, err
	}
	req.FrameLen = 4 + len(body)
	return req, nil
}

// AppendSubReplyFrame appends the length-prefixed encoding of rep.
func AppendSubReplyFrame(dst []byte, rep *SubReply) []byte {
	start := len(dst)
	dst = appendU32(dst, 0)
	dst = append(dst, Version, frameSubReply)
	dst = appendU64(dst, rep.ID)
	dst = appendU32(dst, uint32(rep.Subset))
	dst = append(dst, rep.Status)
	dst = appendStr(dst, rep.Err)
	dst = append(dst, byte(rep.Kind))
	dst = appendU16(dst, uint16(rep.Level))
	dst = appendU32(dst, rep.SetsProcessed)
	dst = appendU32(dst, uint32(len(rep.Spans)))
	for _, sp := range rep.Spans {
		dst = append(dst, sp.Kind)
		dst = appendU64(dst, uint64(sp.Start))
		dst = appendU64(dst, uint64(sp.Dur))
		dst = appendU64(dst, sp.Cost.CPUNs)
		dst = appendU64(dst, sp.Cost.Scanned)
		dst = appendU64(dst, sp.Cost.QueueNs)
		dst = appendU64(dst, sp.Cost.WireBytes)
	}
	if rep.Status == StatusOK {
		dst = appendResultPayload(dst, rep.Kind, rep.CF, rep.Search, rep.Agg)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// DecodeSubReply decodes a sub-reply frame body.
func DecodeSubReply(body []byte) (*SubReply, error) {
	r := &reader{b: body}
	if err := checkHeader(r, frameSubReply, "sub-reply"); err != nil {
		return nil, err
	}
	rep := &SubReply{}
	rep.ID = r.u64("id")
	rep.Subset = int32(r.u32("subset"))
	rep.Status = r.u8("status")
	rep.Err = r.str("err")
	rep.Kind = Kind(r.u8("kind"))
	rep.Level = int16(r.u16("level"))
	rep.SetsProcessed = r.u32("sets")
	if n := r.count(spanWireSize, "spans"); r.err == nil && n > 0 {
		rep.Spans = make([]Span, n)
		for i := range rep.Spans {
			rep.Spans[i].Kind = r.u8("span kind")
			rep.Spans[i].Start = int64(r.u64("span start"))
			rep.Spans[i].Dur = int64(r.u64("span dur"))
			rep.Spans[i].Cost.CPUNs = r.u64("span cpu")
			rep.Spans[i].Cost.Scanned = r.u64("span scanned")
			rep.Spans[i].Cost.QueueNs = r.u64("span queue")
			rep.Spans[i].Cost.WireBytes = r.u64("span wire bytes")
		}
	}
	if rep.Status == StatusOK {
		var err error
		rep.CF, rep.Search, rep.Agg, err = decodeResultPayload(r, rep.Kind)
		if err != nil {
			return nil, err
		}
	}
	if err := r.done("sub-reply"); err != nil {
		return nil, err
	}
	rep.FrameLen = 4 + len(body)
	return rep, nil
}

// AppendReplyFrame appends the length-prefixed encoding of the
// composed reply.
func AppendReplyFrame(dst []byte, rep *Reply) []byte {
	start := len(dst)
	dst = appendU32(dst, 0)
	dst = append(dst, Version, frameReply)
	dst = appendU64(dst, rep.ID)
	dst = append(dst, rep.Status)
	dst = appendStr(dst, rep.Err)
	dst = append(dst, byte(rep.Kind))
	dst = append(dst, rep.SLO)
	dst = appendF64(dst, rep.MinAccuracy)
	degraded := byte(0)
	if rep.Degraded {
		degraded = 1
	}
	dst = append(dst, degraded)
	cached := byte(0)
	if rep.Cached {
		cached = 1
	}
	dst = append(dst, cached)
	dst = appendU16(dst, uint16(rep.Level))
	dst = appendU64(dst, rep.Trace)
	dst = appendU32(dst, uint32(len(rep.SubStatus)))
	dst = append(dst, rep.SubStatus...)
	if ReplyCarriesPayload(rep.Status) {
		dst = appendResultPayload(dst, rep.Kind, rep.CF, rep.Search, rep.Agg)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// DecodeReply decodes a composed-reply frame body.
func DecodeReply(body []byte) (*Reply, error) {
	r := &reader{b: body}
	if err := checkHeader(r, frameReply, "reply"); err != nil {
		return nil, err
	}
	rep := &Reply{}
	rep.ID = r.u64("id")
	rep.Status = r.u8("status")
	rep.Err = r.str("err")
	rep.Kind = Kind(r.u8("kind"))
	rep.SLO = r.u8("slo")
	rep.MinAccuracy = r.f64("minAccuracy")
	rep.Degraded = r.u8("degraded") != 0
	rep.Cached = r.u8("cached") != 0
	rep.Level = int16(r.u16("level"))
	rep.Trace = r.u64("trace")
	if n := r.count(1, "substatus"); r.err == nil && n > 0 {
		rep.SubStatus = append([]uint8(nil), r.take(n, "substatus")...)
	}
	if ReplyCarriesPayload(rep.Status) {
		var err error
		rep.CF, rep.Search, rep.Agg, err = decodeResultPayload(r, rep.Kind)
		if err != nil {
			return nil, err
		}
	}
	if err := r.done("reply"); err != nil {
		return nil, err
	}
	return rep, nil
}

func appendResultPayload(dst []byte, kind Kind, cf *CFResult, search *SearchResult, agg *AggResult) []byte {
	switch kind {
	case KindCF:
		dst = appendF64s(dst, cf.Num)
		dst = appendF64s(dst, cf.Den)
	case KindSearch:
		dst = appendU32(dst, uint32(len(search.Hits)))
		for _, h := range search.Hits {
			dst = appendU32(dst, uint32(h.Doc))
			dst = appendF64(dst, h.Score)
		}
	case KindAgg:
		dst = appendF64s(dst, agg.Sum)
		dst = appendF64s(dst, agg.Cnt)
		dst = appendF64s(dst, agg.SumVar)
		dst = appendF64s(dst, agg.CntVar)
	}
	return dst
}

func decodeResultPayload(r *reader, kind Kind) (*CFResult, *SearchResult, *AggResult, error) {
	switch kind {
	case KindCF:
		return &CFResult{Num: r.f64s("num"), Den: r.f64s("den")}, nil, nil, nil
	case KindSearch:
		sr := &SearchResult{}
		n := r.count(12, "hits")
		if r.err == nil && n > 0 {
			sr.Hits = make([]Hit, n)
			for i := range sr.Hits {
				sr.Hits[i].Doc = int32(r.u32("hit doc"))
				sr.Hits[i].Score = r.f64("hit score")
			}
		}
		return nil, sr, nil, nil
	case KindAgg:
		ar := &AggResult{
			Sum:    r.f64s("sum"),
			Cnt:    r.f64s("cnt"),
			SumVar: r.f64s("sumVar"),
			CntVar: r.f64s("cntVar"),
		}
		return nil, nil, ar, nil
	default:
		return nil, nil, nil, fmt.Errorf("wire: unknown payload kind %d", kind)
	}
}

func checkHeader(r *reader, wantFrame byte, what string) error {
	v := r.u8("version")
	fk := r.u8("frame kind")
	if r.err != nil {
		return r.err
	}
	if v != Version {
		return &VersionError{Got: v, Want: Version}
	}
	if fk != wantFrame {
		return fmt.Errorf("wire: frame kind %d, want %s (%d)", fk, what, wantFrame)
	}
	return nil
}

// FrameKind peeks at a frame body's kind without decoding it.
func FrameKind(body []byte) (byte, error) {
	if len(body) < 2 {
		return 0, fmt.Errorf("wire: frame too short for header")
	}
	if body[0] != Version {
		return 0, &VersionError{Got: body[0], Want: Version}
	}
	return body[1], nil
}

// ReadFrame reads one length-prefixed frame body from r, reusing buf
// when it is large enough. maxFrame bounds the accepted body size
// (<= 0 selects MaxFrame); an oversized or corrupt length prefix is an
// error, never an allocation.
func ReadFrame(r io.Reader, buf []byte, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < 2 || n > maxFrame {
		return buf, fmt.Errorf("wire: frame length %d outside [2, %d]", n, maxFrame)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, nil
}
