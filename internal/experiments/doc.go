// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each experiment is a pure function of a Scale (the
// knobs that shrink the paper's 30-node testbed onto a laptop) returning
// a typed result with a paper-style text rendering.
//
// Scaling approach (DESIGN.md §4): the latency experiments simulate the
// full fan-out width (108 components by default, as in the paper) on the
// discrete-event cluster; the data those components serve is backed by a
// smaller number of distinct shards of real CF/search data, cycled across
// components. Accuracy is computed by replaying the real application
// engines over exactly the sets each simulated component had time to
// process.
package experiments
