package experiments

import (
	"strings"
	"testing"
)

// TestCacheCompareQuick runs the result-cache comparison at quick
// scale and pins the acceptance behaviours from the issue: cache hits
// never serve below a Bounded class's accuracy floor, singleflight
// coalescing collapses duplicate concurrent misses to one backend
// fan-out, and under Zipf skew >= 1.0 the cached configuration beats
// the no-cache baseline on p99.9 (and goodput).
func TestCacheCompareQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop load run: seconds per configuration")
	}
	cc, err := RunCacheCompare(QuickScale())
	if err != nil {
		t.Fatal(err)
	}

	// Singleflight: N concurrent identical misses -> one fan-out, the
	// rest shared.
	if cc.CoalesceComputes != 1 {
		t.Fatalf("%d backend fan-outs for %d concurrent identical requests, want 1",
			cc.CoalesceComputes, cc.CoalesceFanIn)
	}
	if cc.CoalesceShared != int64(cc.CoalesceFanIn-1) {
		t.Fatalf("%d of %d requests shared the computation, want %d",
			cc.CoalesceShared, cc.CoalesceFanIn, cc.CoalesceFanIn-1)
	}

	for _, skew := range ccSkews {
		nocache, cached := cc.Row(skew, false), cc.Row(skew, true)
		if nocache == nil || cached == nil {
			t.Fatalf("missing rows at skew %g", skew)
		}
		for _, r := range []*CacheRow{nocache, cached} {
			if r.Calls < 20 {
				t.Fatalf("skew %g cached=%v measured only %d requests", skew, r.Cached, r.Calls)
			}
		}
		// The hit rule is hard: no Bounded request is ever served a
		// cached answer whose recorded accuracy is below its floor.
		if cached.FloorViolations != 0 {
			t.Fatalf("skew %g: %d cache hits served below a Bounded floor", skew, cached.FloorViolations)
		}
		if nocache.HitPct != 0 {
			t.Fatalf("skew %g: no-cache row reports hits (%f%%)", skew, nocache.HitPct)
		}
		if skew >= 1.0 {
			// The headline: a warm cache pulls the backend below
			// saturation, so the tail collapses and goodput recovers.
			if cached.P999Ms >= nocache.P999Ms {
				t.Fatalf("skew %g: cached p99.9 %.1f ms does not beat no-cache %.1f ms",
					skew, cached.P999Ms, nocache.P999Ms)
			}
			if cached.Goodput <= nocache.Goodput {
				t.Fatalf("skew %g: cached goodput %.1f/s does not beat no-cache %.1f/s",
					skew, cached.Goodput, nocache.Goodput)
			}
			if cached.HitPct < 10 {
				t.Fatalf("skew %g: hit rate %.1f%% too low to mean anything", skew, cached.HitPct)
			}
		}
	}

	// Hit rate must grow with skew — that is the Zipf story.
	if h1, h2 := cc.Row(1.0, true).HitPct, cc.Row(1.4, true).HitPct; h2 <= h1 {
		t.Fatalf("hit rate did not grow with skew: %.1f%% at 1.0 vs %.1f%% at 1.4", h1, h2)
	}

	out := cc.Render()
	for _, want := range []string{"CACHECOMPARE", "coalescing check", "floorViol", "hit%", "nocache"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}
