package experiments

import (
	"strings"
	"testing"
)

// TestAuditCompareQuick runs the audit-plane validation at test scale
// and asserts every contract: zero-cost off/non-sampled paths, healthy
// bound coverage at or above nominal confidence, stale-calibration
// detection within the sample budget, epoch-swap drift safety,
// burn-rate windows matching the naive reference, and tail retention.
func TestAuditCompareQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback serving run")
	}
	sc := QuickScale()
	sc.Shards = 3
	ac, err := RunAuditCompare(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !ac.ZeroAllocOK {
		t.Errorf("zero-cost: disabled %.1f allocs/op, non-sampled %.1f allocs/op, want 0",
			ac.DisabledAllocs, ac.NotSampledAllocs)
	}
	if !ac.CoverageOK {
		t.Errorf("healthy coverage %.3f over %d bounds (audited %d/%d), want >= %.2f",
			ac.HealthyCoverage, ac.HealthyBounds, ac.HealthyAudited, ac.HealthyCalls, auditNominalConfidence)
	}
	if !ac.DetectOK {
		t.Errorf("bias detection: %d violations of %d audits, first at #%d (budget %d), %d pinned",
			ac.BiasViol, ac.BiasAudited, ac.BiasDetectAt, auditDetectK, ac.BiasPinned)
	}
	if !ac.DriftOK {
		t.Errorf("drift phase: queued=%d skipped=%d post=%d err=%q",
			ac.DriftQueued, ac.DriftSkipped, ac.DriftPostAudited, ac.DriftErr)
	}
	if !ac.BurnOK {
		t.Errorf("burn rates: %d mismatches in %d checks", ac.BurnMismatches, ac.BurnChecks)
	}
	if !ac.RetentionOK {
		t.Errorf("retention: anomalous=%d pinned=%d inRing=%d sloDeg=%d",
			ac.RetainAnomalous, ac.RetainPinned, ac.RetainInRing, ac.RetainSLODeg)
	}
	// The stale table must actually be detected as stale: realized far
	// below claimed.
	if ac.BiasClaimed-ac.BiasRealized < auditMismatchGapFloor {
		t.Errorf("bias pass claimed %.3f vs realized %.3f: gap too small to demonstrate staleness",
			ac.BiasClaimed, ac.BiasRealized)
	}
	out := ac.Render()
	for _, want := range []string{"AUDITCOMPARE", "zero-cost", "calibration", "detection", "drift", "burn rates", "retention"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
