package experiments

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/netsvc"
	"accuracytrader/internal/service"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/wire"
)

// The netcompare experiment (networked-serving extension, not a paper
// figure) runs the aggregation workload over real loopback TCP sockets
// — component servers behind a scatter/gather aggregator speaking the
// internal/wire protocol — and over the in-process goroutine runtime,
// under identical open-loop Poisson load, identical modeled scan costs
// and identical per-server interference. It reports goodput,
// p50/p99/p99.9 call latency, hedge and shed rates, and measured
// per-SLO-class delivered accuracy per configuration, plus a wire
// parity check: one request per workload (CF, search, aggregation)
// whose network-composed answer must be bit-identical to the same
// composition done in process.
const (
	// netDeadlineMs is the service deadline (l_spe) of the netcompare
	// runs: tighter than the paper's 100ms because loopback transport
	// replaces a datacenter network, but wide enough that an Exact
	// full scan (fullScanMs) plus queueing fits inside the budget.
	netDeadlineMs = 50.0
	// netStallMs is the co-located interference stall: one unlucky
	// server freezes for this long (the paper's l_spe, dwarfing our
	// deadline), so the gather policy — not the server — decides the
	// request's fate.
	netStallMs = 100.0
	// netStragglerInv is the interference rate: 1 in this many requests
	// stalls its designated server.
	netStragglerInv = 23
	// netRateFrac is the offered rate as a fraction of one server's
	// finest-synopsis saturation rate.
	netRateFrac = 0.28
	// netWindowFrac is the measured window per configuration as a
	// fraction of Scale.SessionSeconds.
	netWindowFrac = 0.25
	// netCallTimeoutMs bounds WaitAll/Hedged calls so a stalled server
	// cannot wedge the load generator.
	netCallTimeoutMs = 400.0
	// netSubBudgetFrac is the component-side l_spe as a fraction of the
	// deadline: sub-operations aim to finish before the gather cut, so
	// PartialGather composes mostly-complete results.
	netSubBudgetFrac = 0.8
	// netIMaxFrac caps improvement at this fraction of ranked strata so
	// typical service time stays well under the budget: that headroom
	// is what lets the P²-triggered hedge's replica still answer.
	netIMaxFrac = 0.4
)

// netStall reports whether the request with sequence id seq suffers an
// interference stall on server (1 in netStragglerInv requests stalls
// exactly one rotating server). Keyed by the parent request and the
// executing server — never the subset — so a hedged replica dispatched
// to another server escapes it, over sockets and in process alike.
func netStall(seq uint64, server, n int) bool {
	return seq%netStragglerInv == 0 && int(seq/netStragglerInv)%n == server
}

// NetRow is one measured configuration.
type NetRow struct {
	Runtime   string // "net" or "inproc"
	Name      string // gather policy / frontend
	Calls     int
	Goodput   float64 // good answers per second
	P50Ms     float64
	P99Ms     float64
	P999Ms    float64
	HedgePct  float64 // hedges per sub-operation
	ShedPct   float64 // frontend-rejected fraction of offered requests
	MeanAcc   float64 // mean delivered accuracy over answered requests
	SkipPct   float64 // skipped/failed sub-operations per gathered sub-op
	MeanSets  float64 // mean Algorithm 1 improvement steps per answered sub-op
	ClassAcc  [3]float64
	classCnt  [3]int
	accCnt    int
	subCnt    int
	skipCnt   int
	setsSum   int
	latencies []float64
}

// NetCompare is the full experiment result.
type NetCompare struct {
	Servers       int
	DeadlineMs    float64
	RatePerSec    float64
	WindowSeconds float64
	UnitCostUs    float64
	// SubBudgetMs is the client-stamped per-request service budget
	// (l_spe) propagated as an absolute deadline through every hop.
	SubBudgetMs float64
	// LevelAccuracy is the measured synopsis-only accuracy per ladder
	// level (coarse to fine) that calibrates the frontend controller.
	LevelAccuracy []float64
	// Parity: network-composed result bit-identical to the in-process
	// composition, one request set per workload.
	ParityCF, ParitySearch, ParityAgg bool
	Rows                              []*NetRow

	// qis is the precomputed request→query schedule. It is drawn
	// randomly so the query mix is independent of the deterministic
	// SLO-class mix (class = r mod 10): per-class accuracies then
	// measure the policy, not a fixed subset of queries.
	qis []int
}

// Row returns the first row matching runtime and name (nil if none).
func (nc *NetCompare) Row(runtime, name string) *NetRow {
	for _, r := range nc.Rows {
		if r.Runtime == runtime && r.Name == name {
			return r
		}
	}
	return nil
}

// record folds one answered request into the row.
func (row *NetRow) record(latMs float64, kind frontend.SLOKind, acc float64, subs []service.SubResult) {
	row.latencies = append(row.latencies, latMs)
	row.ClassAcc[kind] += acc
	row.classCnt[kind]++
	row.MeanAcc += acc
	row.accCnt++
	for _, sr := range subs {
		row.subCnt++
		rep, ok := sr.Value.(*wire.SubReply)
		if sr.Skipped || sr.Err != nil || !ok || rep.Status != wire.StatusOK {
			row.skipCnt++
			continue
		}
		row.setsSum += int(rep.SetsProcessed)
	}
}

// finish converts accumulators into the reported statistics.
func (row *NetRow) finish(windowSec float64, good int) {
	row.Goodput = float64(good) / windowSec
	row.P50Ms = stats.Percentile(row.latencies, 50)
	row.P99Ms = stats.Percentile(row.latencies, 99)
	row.P999Ms = stats.Percentile(row.latencies, 99.9)
	if row.accCnt > 0 {
		row.MeanAcc /= float64(row.accCnt)
	}
	if row.subCnt > 0 {
		row.SkipPct = 100 * float64(row.skipCnt) / float64(row.subCnt)
	}
	if ok := row.subCnt - row.skipCnt; ok > 0 {
		row.MeanSets = float64(row.setsSum) / float64(ok)
	}
	for k := range row.ClassAcc {
		if row.classCnt[k] > 0 {
			row.ClassAcc[k] /= float64(row.classCnt[k])
		}
	}
	row.latencies = nil
}

// netAccuracy scores one answered request: the composed estimates
// against the precomputed exact estimates of its query.
func netAccuracy(subs []service.SubResult, op agg.Op, exact []float64) float64 {
	merged := netsvc.ComposeAgg(subs)
	if len(merged.Sum) == 0 {
		return 0 // every component skipped or failed
	}
	return agg.Accuracy(netsvc.AggResultOf(merged).Estimates(op), exact)
}

// RunNetCompare measures the networked serving layer against the
// in-process runtime on the aggregation workload.
func RunNetCompare(sc Scale) (*NetCompare, error) {
	svc, err := BuildAggService(sc)
	if err != nil {
		return nil, err
	}
	comps := svc.Comps
	n := len(comps)
	unitMs := sc.aggUnitCostMs()
	unitCost := time.Duration(unitMs * float64(time.Millisecond))

	// Query sample with precomputed exact merged estimates.
	nq := sc.AccuracySamples
	if nq > 40 {
		nq = 40
	}
	queries := svc.Data.SampleAggQueries(sc.Seed^0x0e7, nq)
	nKeys := comps[0].T.NumKeys()
	exactEst := make([][]float64, len(queries))
	exact := agg.NewResult(nKeys)
	var scratch agg.Result
	for qi, q := range queries {
		exact = exact.Reset(nKeys)
		for _, c := range comps {
			scratch = agg.ExactResultInto(scratch, c, q)
			exact.Merge(scratch)
		}
		exactEst[qi] = exact.Estimates(q.Op)
	}

	// Calibrate the ladder: measured synopsis-only accuracy per level.
	levels := comps[0].Syn.Levels()
	levelAcc := make([]float64, levels)
	for l := 0; l < levels; l++ {
		levelAcc[l] = agg.MeasureLevelAccuracy(comps, queries, l)
	}

	finestUnits := 0.0
	for _, c := range comps {
		finestUnits += float64(c.Syn.SampleUnits(levels - 1))
	}
	finestUnits /= float64(n)
	satRate := 1000 / (finestUnits * unitMs)
	rate := netRateFrac * satRate
	window := time.Duration(sc.SessionSeconds * netWindowFrac * float64(time.Second))

	nc := &NetCompare{
		Servers:       n,
		DeadlineMs:    netDeadlineMs,
		SubBudgetMs:   netSubBudgetFrac * netDeadlineMs,
		RatePerSec:    rate,
		WindowSeconds: window.Seconds(),
		UnitCostUs:    unitMs * 1000,
		LevelAccuracy: levelAcc,
	}
	qrng := stats.NewRNG(sc.Seed ^ 0x9135)
	nc.qis = make([]int, 8192)
	for i := range nc.qis {
		nc.qis[i] = qrng.Intn(len(queries))
	}
	if err := nc.runParity(sc, svc); err != nil {
		return nil, err
	}

	// The measured handler: real engines plus the modeled scan cost;
	// interference keyed on (parent request, server).
	measuredHandler := func(server int) netsvc.Handler {
		return netsvc.NewAggBackend(comps, netsvc.BackendOptions{
			UnitCost: unitCost,
			IMaxFrac: netIMaxFrac,
			Interfere: func(seq uint64) time.Duration {
				if netStall(seq, server, n) {
					return time.Duration(netStallMs * float64(time.Millisecond))
				}
				return 0
			},
		})
	}

	type netCfg struct {
		name     string
		policy   service.Policy
		deadline time.Duration
		frontend bool
	}
	deadline := time.Duration(netDeadlineMs * float64(time.Millisecond))
	callTimeout := time.Duration(netCallTimeoutMs * float64(time.Millisecond))
	cfgs := []netCfg{
		{"WaitAll", service.WaitAll, callTimeout, false},
		{"PartialGather", service.PartialGather, deadline, false},
		{"Hedged", service.Hedged, callTimeout, false},
		{"Frontend+AT", service.WaitAll, callTimeout, true},
	}

	for _, cfg := range cfgs {
		row, err := nc.runNet(sc, cfg.name, cfg.policy, cfg.deadline, cfg.frontend, measuredHandler, queries, exactEst)
		if err != nil {
			return nil, err
		}
		nc.Rows = append(nc.Rows, row)
	}
	for _, cfg := range cfgs {
		if cfg.frontend {
			continue // the frontend-over-sockets row is the net-only headline
		}
		row := nc.runInproc(sc, cfg.name, cfg.policy, cfg.deadline, comps, unitCost, queries, exactEst)
		nc.Rows = append(nc.Rows, row)
	}
	return nc, nil
}

// runNet measures one gather configuration over loopback sockets.
func (nc *NetCompare) runNet(sc Scale, name string, policy service.Policy, deadline time.Duration, withFrontend bool,
	handler func(server int) netsvc.Handler, queries []agg.Query, exactEst [][]float64) (*NetRow, error) {
	n := nc.Servers
	servers := make([]*netsvc.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		servers[i] = netsvc.NewServer(handler(i), netsvc.ServerOptions{Workers: 1, QueueLen: 512})
		go servers[i].Serve(l)
		addrs[i] = l.Addr().String()
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	agr, err := netsvc.NewAggregator(addrs, netsvc.AggregatorOptions{
		Policy:   policy,
		Deadline: deadline,
		// Warm-start hedging just below the typical finest-synopsis
		// service time; the P² estimator takes over as it converges.
		HedgeFloor:     4 * time.Millisecond,
		MaxOutstanding: 64,
	})
	if err != nil {
		return nil, err
	}
	defer agr.Close()
	if err := agr.WaitReady(5 * time.Second); err != nil {
		return nil, err
	}

	var fe *frontend.Frontend
	if withFrontend {
		ctrl, err := frontend.NewController(frontend.ControllerConfig{
			Levels:             len(nc.LevelAccuracy),
			LevelAccuracy:      nc.LevelAccuracy,
			InflightSaturation: 3 * n,
		})
		if err != nil {
			return nil, err
		}
		fe, err = frontend.New(agr, frontend.Options{
			Replicas: 2,
			Router:   frontend.NewLeastLoaded(),
			Admission: []frontend.AdmissionPolicy{
				frontend.NewMaxInflight(3 * n),
				frontend.NewQueueWatermark(0.35, 0.85),
			},
			Controller: ctrl,
		})
		if err != nil {
			return nil, err
		}
	}

	row := &NetRow{Runtime: "net", Name: name}
	var mu sync.Mutex
	good, rejected := 0, 0
	rng := stats.NewRNG(sc.Seed ^ 0x9e7c)
	fired := netsvc.OpenLoop(rng, nc.RatePerSec, time.Duration(nc.WindowSeconds*float64(time.Second)), func(r int) {
		qi := nc.qis[r%len(nc.qis)]
		q := queries[qi]
		req := &wire.Request{
			ID: uint64(r), Kind: wire.KindAgg, Subset: -1,
			SLO: wire.SLONone, Level: wire.NoLevel,
			Agg: &wire.AggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
		}
		slo := overloadClassMix(r)
		// The request carries its own absolute service budget (l_spe,
		// measured from arrival): queueing anywhere along the path eats
		// it, which is what makes component work self-regulating under
		// load. Exact-class requests under the frontend carry none —
		// their guarantee is paid in latency.
		if !(withFrontend && slo.Kind == frontend.Exact) {
			req.Deadline = time.Now().Add(time.Duration(nc.SubBudgetMs * float64(time.Millisecond))).UnixNano()
		}
		t0 := time.Now()
		var subs []service.SubResult
		var err error
		if fe != nil {
			var res *frontend.Result
			res, err = fe.Call(context.Background(), req, slo)
			if res != nil {
				subs = res.Sub
			}
		} else {
			subs, err = agr.Call(context.Background(), req)
		}
		latMs := float64(time.Since(t0)) / float64(time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if errors.Is(err, frontend.ErrRejected) {
				rejected++
			}
			return
		}
		acc := netAccuracy(subs, q.Op, exactEst[qi])
		row.record(latMs, slo.Kind, acc, subs)
		if latMs <= goodLatencyFactor*nc.DeadlineMs && acc >= goodAccuracyFloor {
			good++
		}
	})
	st := agr.Stats()
	row.Calls = fired
	if st.SubOps > 0 {
		row.HedgePct = 100 * float64(st.Hedges) / float64(st.SubOps)
	}
	if fired > 0 {
		row.ShedPct = 100 * float64(rejected) / float64(fired)
	}
	row.finish(nc.WindowSeconds, good)
	return row, nil
}

// runInproc measures the identical configuration on the in-process
// goroutine runtime: the same backend handlers (with the same modeled
// costs), the same interference rule keyed on the executing component
// via service.ComponentFrom, no sockets or serialization.
func (nc *NetCompare) runInproc(sc Scale, name string, policy service.Policy, deadline time.Duration,
	comps []*agg.Component, unitCost time.Duration, queries []agg.Query, exactEst [][]float64) *NetRow {
	n := nc.Servers
	backend := netsvc.NewAggBackend(comps, netsvc.BackendOptions{UnitCost: unitCost, IMaxFrac: netIMaxFrac})
	handlers := make([]service.Handler, n)
	for i := 0; i < n; i++ {
		subset := i
		handlers[i] = func(ctx context.Context, payload interface{}) (interface{}, error) {
			req := payload.(*wire.Request)
			// Honor the request's propagated absolute budget, exactly as
			// a component server does for queued sub-operations.
			if req.Deadline != 0 {
				dl := time.Unix(0, req.Deadline)
				if !time.Now().Before(dl) {
					return &wire.SubReply{Subset: int32(subset), Kind: req.Kind,
						Status: wire.StatusSkipped, Level: wire.NoLevel}, nil
				}
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, dl)
				defer cancel()
			}
			comp, _ := service.ComponentFrom(ctx)
			if netStall(req.ID, comp, n) {
				time.Sleep(time.Duration(netStallMs * float64(time.Millisecond)))
			}
			sub := *req
			sub.Seq = req.ID
			sub.Subset = int32(subset)
			return backend(ctx, &sub), nil
		}
	}
	cl, err := service.New(handlers, policy, service.Options{
		Deadline:   deadline,
		HedgeFloor: 4 * time.Millisecond,
	})
	if err != nil {
		panic(err) // static config: cannot fail
	}
	defer cl.Close()

	row := &NetRow{Runtime: "inproc", Name: name}
	var mu sync.Mutex
	good := 0
	rng := stats.NewRNG(sc.Seed ^ 0x1a7c)
	fired := netsvc.OpenLoop(rng, nc.RatePerSec, time.Duration(nc.WindowSeconds*float64(time.Second)), func(r int) {
		qi := nc.qis[r%len(nc.qis)]
		q := queries[qi]
		req := &wire.Request{
			ID: uint64(r), Kind: wire.KindAgg, Subset: -1,
			SLO: wire.SLONone, Level: wire.NoLevel,
			Agg: &wire.AggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
		}
		req.Deadline = time.Now().Add(time.Duration(nc.SubBudgetMs * float64(time.Millisecond))).UnixNano()
		t0 := time.Now()
		subs, err := cl.Call(context.Background(), req)
		latMs := float64(time.Since(t0)) / float64(time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			return
		}
		acc := inprocAccuracy(subs, q.Op, exactEst[qi])
		row.record(latMs, overloadClassMix(r).Kind, acc, subs)
		if latMs <= goodLatencyFactor*nc.DeadlineMs && acc >= goodAccuracyFloor {
			good++
		}
	})
	st := cl.Stats()
	row.Calls = fired
	if st.SubOps > 0 {
		row.HedgePct = 100 * float64(st.Hedges) / float64(st.SubOps)
	}
	row.finish(nc.WindowSeconds, good)
	return row
}

// inprocAccuracy scores an in-process request: handler values are the
// same *wire.SubReply the network path carries, so the same composer
// applies.
func inprocAccuracy(subs []service.SubResult, op agg.Op, exact []float64) float64 {
	return netAccuracy(subs, op, exact)
}

// runParity verifies encode→transport→decode→compose fidelity for all
// three workloads: a request answered over loopback sockets must
// compose bit-identically to the same sub-operations executed by
// direct function calls.
func (nc *NetCompare) runParity(sc Scale, aggSvc *AggService) error {
	cfSvc, err := BuildCFService(sc)
	if err != nil {
		return err
	}
	searchSvc, err := BuildSearchService(sc)
	if err != nil {
		return err
	}

	cfReqs := cfSvc.Data.SampleCFRequests(sc.Seed^0x31, 3, 0.2)
	cfTemplates := make([]*wire.Request, len(cfReqs))
	for i, r := range cfReqs {
		ratings := make([]wire.Rating, len(r.Known))
		for j, kr := range r.Known {
			ratings[j] = wire.Rating{Item: kr.Item, Score: kr.Score}
		}
		cfTemplates[i] = &wire.Request{
			Kind: wire.KindCF, Subset: -1, SLO: wire.SLONone, Level: wire.NoLevel,
			CF: &wire.CFRequest{Ratings: ratings, Targets: r.Targets},
		}
	}
	nc.ParityCF, err = parityRun(netsvc.NewCFBackend(cfSvc.Comps, netsvc.BackendOptions{}), sc.Shards, cfTemplates,
		func(subs []service.SubResult) interface{} { return netsvc.ComposeCF(subs) })
	if err != nil {
		return err
	}

	searchQueries := searchSvc.Data.SampleQueries(sc.Seed^0x32, 3)
	searchTemplates := make([]*wire.Request, len(searchQueries))
	for i, q := range searchQueries {
		searchTemplates[i] = &wire.Request{
			Kind: wire.KindSearch, Subset: -1, SLO: wire.SLONone, Level: wire.NoLevel,
			Search: &wire.SearchRequest{Query: q, K: 10},
		}
	}
	nc.ParitySearch, err = parityRun(netsvc.NewSearchBackend(searchSvc.Comps, netsvc.BackendOptions{}), sc.Shards, searchTemplates,
		func(subs []service.SubResult) interface{} { return netsvc.ComposeSearch(subs, 10) })
	if err != nil {
		return err
	}

	aggQueries := aggSvc.Data.SampleAggQueries(sc.Seed^0x33, 3)
	aggTemplates := make([]*wire.Request, len(aggQueries))
	for i, q := range aggQueries {
		aggTemplates[i] = &wire.Request{
			Kind: wire.KindAgg, Subset: -1, SLO: wire.SLONone, Level: wire.NoLevel,
			Agg: &wire.AggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
		}
	}
	nc.ParityAgg, err = parityRun(netsvc.NewAggBackend(aggSvc.Comps, netsvc.BackendOptions{}), sc.Shards, aggTemplates,
		func(subs []service.SubResult) interface{} { return netsvc.ComposeAgg(subs) })
	return err
}

// parityRun compares the network path against direct invocation for
// one workload handler.
func parityRun(h netsvc.Handler, n int, templates []*wire.Request,
	compose func([]service.SubResult) interface{}) (bool, error) {
	servers := make([]*netsvc.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return false, err
		}
		servers[i] = netsvc.NewServer(h, netsvc.ServerOptions{Workers: 2})
		go servers[i].Serve(l)
		addrs[i] = l.Addr().String()
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	agr, err := netsvc.NewAggregator(addrs, netsvc.AggregatorOptions{Policy: service.WaitAll, Deadline: 30 * time.Second})
	if err != nil {
		return false, err
	}
	defer agr.Close()
	for _, tmpl := range templates {
		netSubs, err := agr.Call(context.Background(), tmpl)
		if err != nil {
			return false, err
		}
		localSubs := make([]service.SubResult, n)
		for i := 0; i < n; i++ {
			sub := *tmpl
			sub.Subset = int32(i)
			rep := h(context.Background(), &sub)
			rep.Subset, rep.Kind = sub.Subset, sub.Kind
			localSubs[i] = service.SubResult{Subset: i, Value: rep}
		}
		if !reflect.DeepEqual(compose(netSubs), compose(localSubs)) {
			return false, nil
		}
	}
	return true, nil
}

// Render formats the comparison as a paper-style text table.
func (nc *NetCompare) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NETCOMPARE: networked serving layer (loopback TCP, internal/wire + internal/netsvc) vs in-process runtime\n")
	fmt.Fprintf(&b, "(aggregation workload over %d component servers; deadline %.0f ms; modeled scan cost %.1f us/row;\n",
		nc.Servers, nc.DeadlineMs, nc.UnitCostUs)
	fmt.Fprintf(&b, " interference: 1 in %d requests stalls one rotating server %.0f ms; open-loop %.1f req/s for %.1fs per row;\n",
		netStragglerInv, netStallMs, nc.RatePerSec, nc.WindowSeconds)
	fmt.Fprintf(&b, " goodput = answered <= %.1fx deadline with accuracy >= %.2f; class mix %s)\n\n",
		goodLatencyFactor, goodAccuracyFloor, overloadClassMixLabel)
	ok := func(v bool) string {
		if v {
			return "ok"
		}
		return "MISMATCH"
	}
	fmt.Fprintf(&b, "wire parity (network answer bit-identical to in-process composition): cf=%s search=%s agg=%s\n",
		ok(nc.ParityCF), ok(nc.ParitySearch), ok(nc.ParityAgg))
	fmt.Fprintf(&b, "calibrated ladder accuracy (coarse->fine):")
	for _, a := range nc.LevelAccuracy {
		fmt.Fprintf(&b, " %.3f", a)
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "  %-7s %-14s %6s %10s %8s %8s %8s %7s %6s %6s %5s %8s %9s %10s %10s\n",
		"runtime", "technique", "calls", "goodput/s", "p50 ms", "p99 ms", "p99.9", "hedge%", "shed%", "skip%", "sets", "acc", "accExact", "accBounded", "accBestEff")
	for _, r := range nc.Rows {
		fmt.Fprintf(&b, "  %-7s %-14s %6d %10.1f %8.1f %8.1f %8.1f %7.1f %6.1f %6.1f %5.1f %8.3f %9.3f %10.3f %10.3f\n",
			r.Runtime, r.Name, r.Calls, r.Goodput, r.P50Ms, r.P99Ms, r.P999Ms, r.HedgePct, r.ShedPct, r.SkipPct, r.MeanSets,
			r.MeanAcc, r.ClassAcc[frontend.Exact], r.ClassAcc[frontend.Bounded], r.ClassAcc[frontend.BestEffort])
	}
	b.WriteString("\nReading: the exact techniques pay the interference stall in full (WaitAll p99.9 ~ the stall), while\n")
	b.WriteString("PartialGather cuts at the deadline (accuracy dips when a shard is skipped) and Hedged escapes via the\n")
	b.WriteString("replica. Frontend+AT adds admission, least-loaded 2-replica routing and calibrated degradation: Bounded\n")
	b.WriteString("requests hold their accuracy floor because the controller never serves them below it. The inproc rows\n")
	b.WriteString("are the same handlers without sockets: the gap to the net rows is the transport + serialization cost.\n")
	return b.String()
}
