package experiments

import (
	"strings"
	"testing"
)

// TestTraceCompareQuick runs the tracing validation at test scale and
// asserts all three contracts hold: cross-process span stitching,
// critical-path budget accounting within tolerance, and a
// zero-allocation disabled path.
func TestTraceCompareQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback serving run")
	}
	sc := QuickScale()
	sc.Shards = 3
	tc, err := RunTraceCompare(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !tc.ZeroAllocOK {
		t.Errorf("disabled tracing path allocates %.1f allocs/op, want 0", tc.DisabledAllocs)
	}
	if !tc.StitchOK {
		t.Errorf("stitching: %d of %d fan-out traces complete", tc.Stitched, tc.FanOuts)
	}
	if !tc.CoverageOK {
		t.Errorf("accounting: mean span coverage %.2f outside [%.2f, %.2f]",
			tc.CoverageMean, traceCoverageFloor, traceCoverageCeil)
	}
	if tc.Answered == 0 || tc.FanOuts == 0 {
		t.Fatalf("no answered fan-outs recorded: answered=%d fanouts=%d", tc.Answered, tc.FanOuts)
	}
	out := tc.Render()
	for _, want := range []string{"TRACECOMPARE", "stitching", "accounting", "disabled", "TRACE SUMMARY"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tc.Summary == nil || tc.Summary.Answered == 0 {
		t.Fatal("summary empty")
	}
}
