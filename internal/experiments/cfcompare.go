package experiments

import (
	"fmt"
	"strings"

	"accuracytrader/internal/cf"
	"accuracytrader/internal/cluster"
	"accuracytrader/internal/core"
	"accuracytrader/internal/metrics"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/workload"
)

// CFComparison is the result of the Table 1 / Table 2 experiment: the
// synthetic CF workload at increasing arrival rates, comparing Basic,
// Request reissue and AccuracyTrader on 99.9th-percentile component
// latency, and Partial execution vs AccuracyTrader on accuracy loss.
type CFComparison struct {
	Rates       []float64 // requests/second
	BasicTail   []float64 // ms
	ReissueTail []float64 // ms
	ATTail      []float64 // ms
	PartialLoss []float64 // %
	ATLoss      []float64 // %
	ATSetsMean  []float64 // mean ranked sets processed per sub-operation
}

// RunCFComparison executes one simulated session per arrival rate and
// technique and replays sampled requests for accuracy (paper §4.3,
// "Comparison using the synthetic CF-based recommendation workloads").
func RunCFComparison(svc *CFService, rates []float64) (*CFComparison, error) {
	sc := svc.Scale
	horizon := sc.SessionSeconds * 1000
	out := &CFComparison{Rates: rates}
	for ri, rate := range rates {
		seed := sc.Seed ^ uint64(ri+1)*0x9e37
		arrivals := workload.PoissonArrivals(stats.NewRNG(seed), rate, horizon)
		slow := slowdownFunc(seed, sc.Components, horizon+600000)
		base := cluster.Config{
			Components: sc.Components,
			Arrivals:   arrivals,
			Work:       svc.Work,
			UnitCostMs: sc.cfUnitCostMs(),
			Slowdown:   slow,
			DeadlineMs: sc.DeadlineMs,
		}

		cfgBasic := base
		cfgBasic.Technique = cluster.Basic
		resBasic, err := cluster.Run(cfgBasic)
		if err != nil {
			return nil, err
		}
		cfgRe := base
		cfgRe.Technique = cluster.Reissue
		cfgRe.HedgeFloorMs = 2 * fullScanMs
		resRe, err := cluster.Run(cfgRe)
		if err != nil {
			return nil, err
		}
		cfgAT := base
		cfgAT.Technique = cluster.AccuracyTrader
		resAT, err := cluster.Run(cfgAT)
		if err != nil {
			return nil, err
		}

		out.BasicTail = append(out.BasicTail, stats.Percentile(resBasic.ComponentLatencies(), 99.9))
		out.ReissueTail = append(out.ReissueTail, stats.Percentile(resRe.ComponentLatencies(), 99.9))
		out.ATTail = append(out.ATTail, stats.Percentile(resAT.ComponentLatencies(), 99.9))

		var sets stats.Summary
		for _, ops := range resAT.Ops {
			for _, op := range ops {
				sets.Add(float64(op.SetsProcessed))
			}
		}
		out.ATSetsMean = append(out.ATSetsMean, sets.Mean())

		pl, al := replayCFAccuracy(svc, resBasic, resAT, seed)
		out.PartialLoss = append(out.PartialLoss, pl)
		out.ATLoss = append(out.ATLoss, al)
	}
	return out, nil
}

// replayCFAccuracy replays sampled requests through the real CF engines:
// Partial execution composes the exact partial results of the components
// that met the deadline (from the Basic run, which shares its processing
// behaviour); AccuracyTrader composes each component's Algorithm 1 result
// after the sets the simulator says it had time to process. Accuracy uses
// the first Shards components (the distinct data; see package comment).
func replayCFAccuracy(svc *CFService, resBasic, resAT *cluster.Result, seed uint64) (partialLoss, atLoss float64) {
	sc := svc.Scale
	n := len(resBasic.Arrivals)
	if n == 0 {
		return 0, 0
	}
	samples := sc.AccuracySamples
	if samples > n {
		samples = n
	}
	reqs := svc.Data.SampleCFRequests(seed, samples, 0.2)
	var plSum, alSum stats.Summary
	// All result accumulators and prediction buffers are reused across the
	// sampled requests, and the per-shard Algorithm 1 runs draw engines
	// from the package pool — the replay loop allocates nothing per sample
	// at steady state.
	var exact, partial, at, shard cf.Result
	var preds, trivial []float64
	for i, spec := range reqs {
		ridx := i * n / len(reqs)
		req := cf.NewRequest(spec.Known, spec.Targets)
		activeMean := req.ActiveMean()

		exact = exact.Reset(len(req.Targets))
		partial = partial.Reset(len(req.Targets))
		at = at.Reset(len(req.Targets))
		for s := 0; s < sc.Shards; s++ {
			comp := svc.Comps[s]
			shard = cf.ExactResultInto(shard, comp, req)
			exact.Merge(shard)
			if resBasic.Ops[ridx][s].LatencyMs <= sc.DeadlineMs {
				partial.Merge(shard)
			}
			mergeATShard(at, comp, req, resAT.Ops[ridx][s].SetsProcessed)
		}
		trivial = trivial[:0]
		for range spec.Truth {
			trivial = append(trivial, activeMean)
		}
		baseRMSE := cf.RMSE(trivial, spec.Truth)
		preds = exact.PredictionsInto(preds, activeMean)
		exSkill := metrics.Skill(cf.RMSE(preds, spec.Truth), baseRMSE)
		preds = partial.PredictionsInto(preds, activeMean)
		plSum.Add(metrics.LossPct(exSkill, metrics.Skill(cf.RMSE(preds, spec.Truth), baseRMSE)))
		preds = at.PredictionsInto(preds, activeMean)
		alSum.Add(metrics.LossPct(exSkill, metrics.Skill(cf.RMSE(preds, spec.Truth), baseRMSE)))
	}
	return plSum.Mean(), alSum.Mean()
}

// mergeATShard runs Algorithm 1 on one shard with a fixed set budget via
// a pooled engine and merges its partial result into at.
func mergeATShard(at cf.Result, comp *cf.Component, req cf.Request, k int) {
	e := cf.GetEngine(comp, req)
	core.Run(e, core.BudgetContinue(k), 0)
	at.Merge(e.Result())
	e.Release()
}

// RenderTable1 renders the Table 1 analogue.
func (c *CFComparison) RenderTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE 1. 99.9th percentile component latency (ms), CF recommender workloads\n")
	fmt.Fprintf(&b, "%-22s", "Request arrival rate")
	for _, r := range c.Rates {
		fmt.Fprintf(&b, "%12.0f", r)
	}
	b.WriteString("\n")
	row := func(name string, vals []float64) {
		fmt.Fprintf(&b, "%-22s", name)
		for _, v := range vals {
			fmt.Fprintf(&b, "%12.0f", v)
		}
		b.WriteString("\n")
	}
	row("Basic", c.BasicTail)
	row("Request reissue", c.ReissueTail)
	row("AccuracyTrader", c.ATTail)
	return b.String()
}

// RenderTable2 renders the Table 2 analogue.
func (c *CFComparison) RenderTable2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE 2. Accuracy losses (%%), CF recommender workloads\n")
	fmt.Fprintf(&b, "%-22s", "Request arrival rate")
	for _, r := range c.Rates {
		fmt.Fprintf(&b, "%12.0f", r)
	}
	b.WriteString("\n")
	row := func(name string, vals []float64) {
		fmt.Fprintf(&b, "%-22s", name)
		for _, v := range vals {
			fmt.Fprintf(&b, "%12.2f", v)
		}
		b.WriteString("\n")
	}
	row("Partial execution", c.PartialLoss)
	row("AccuracyTrader", c.ATLoss)
	return b.String()
}
