package experiments

import (
	"fmt"
	"math"
	"strings"

	"accuracytrader/internal/stats"
	"accuracytrader/internal/workload"
)

// HourFigures is the result of Figures 5 and 6: for each studied hour
// (9: increasing, 10: steady, 24: decreasing arrival rates), the
// per-minute arrival rate, per-minute p99.9 component latency of the
// three techniques, and per-minute accuracy losses of the approximate
// techniques.
type HourFigures struct {
	Hours   []int
	Windows []*SearchWindow
	Bins    int
}

// RunHourFigures simulates the paper's hours 9, 10 and 24 of the Sogou-
// like diurnal search workload (Figures 5-6).
func RunHourFigures(svc *SearchService) (*HourFigures, error) {
	sc := svc.Scale
	pattern := workload.SogouLikePattern(sc.SearchPeakRate)
	out := &HourFigures{Hours: []int{9, 10, 24}, Bins: 60}
	windowMs := sc.HourWindowSeconds * 1000
	for hi, hour := range out.Hours {
		seed := sc.Seed ^ uint64(hour)*0x6d2b
		rng := stats.NewRNG(seed)
		arrivals := windowArrivals(rng, pattern, hour, windowMs)
		w, err := RunSearchWindow(svc, arrivals, windowMs, seed^uint64(hi))
		if err != nil {
			return nil, err
		}
		out.Windows = append(out.Windows, w)
	}
	return out, nil
}

// RenderFig5 prints the 12 panels of Figure 5 as per-minute series
// (sub-sampled every 5 minutes for width).
func (f *HourFigures) RenderFig5() string {
	var b strings.Builder
	b.WriteString("FIGURE 5. Per-minute 99.9th percentile component latency (ms), search workloads\n")
	for i, hour := range f.Hours {
		w := f.Windows[i]
		fmt.Fprintf(&b, "\n--- Hour %d ---\n", hour)
		writeSeries(&b, "minute", sampleIdx(f.Bins))
		writeSeries(&b, "arrival rate (req/s)", sample(w.MinuteRate(f.Bins)))
		writeSeries(&b, "Basic p99.9", sample(w.MinuteTail(w.Basic, 99.9, f.Bins)))
		writeSeries(&b, "Reissue p99.9", sample(w.MinuteTail(w.Re, 99.9, f.Bins)))
		writeSeries(&b, "AccuracyTrader p99.9", sample(w.MinuteTail(w.AT, 99.9, f.Bins)))
	}
	return b.String()
}

// RenderFig6 prints Figure 6: per-minute accuracy losses for hours 9, 10
// and 24.
func (f *HourFigures) RenderFig6() string {
	var b strings.Builder
	b.WriteString("FIGURE 6. Per-minute accuracy losses (%), search workloads\n")
	for i, hour := range f.Hours {
		w := f.Windows[i]
		fmt.Fprintf(&b, "\n--- Hour %d ---\n", hour)
		writeSeries(&b, "minute", sampleIdx(f.Bins))
		writeSeries(&b, "Partial execution", sample(w.MinuteLoss("partial", f.Bins)))
		writeSeries(&b, "AccuracyTrader", sample(w.MinuteLoss("at", f.Bins)))
	}
	return b.String()
}

// DayFigures is the result of Figures 7 and 8: hourly mean arrival rates
// and, per hour of the day, the p99.9 component latency of the three
// techniques and the mean accuracy losses of the approximate techniques.
type DayFigures struct {
	HourRate    [24]float64
	BasicTail   [24]float64
	ReissueTail [24]float64
	ATTail      [24]float64
	PartialLoss [24]float64
	ATLoss      [24]float64
}

// RunDayFigures simulates all 24 hours of the diurnal search workload
// (Figures 7-8), one window per hour.
func RunDayFigures(svc *SearchService) (*DayFigures, error) {
	sc := svc.Scale
	pattern := workload.SogouLikePattern(sc.SearchPeakRate)
	out := &DayFigures{}
	windowMs := sc.DayWindowSeconds * 1000
	for hour := 1; hour <= 24; hour++ {
		seed := sc.Seed ^ uint64(hour)*0x8f1d
		rng := stats.NewRNG(seed)
		arrivals := windowArrivals(rng, pattern, hour, windowMs)
		w, err := RunSearchWindow(svc, arrivals, windowMs, seed)
		if err != nil {
			return nil, err
		}
		h := hour - 1
		out.HourRate[h] = pattern.MeanRate(float64(hour-1), float64(hour))
		out.BasicTail[h] = TailOverall(w.Basic, 99.9)
		out.ReissueTail[h] = TailOverall(w.Re, 99.9)
		out.ATTail[h] = TailOverall(w.AT, 99.9)
		out.PartialLoss[h] = w.MeanLoss("partial")
		out.ATLoss[h] = w.MeanLoss("at")
	}
	return out, nil
}

// RenderFig7 prints Figure 7: hourly arrival rates and tail latencies.
func (d *DayFigures) RenderFig7() string {
	var b strings.Builder
	b.WriteString("FIGURE 7. Hourly 99.9th percentile component latency (ms), 24-hour search workloads\n")
	writeSeries(&b, "hour", hourIdx())
	writeSeries(&b, "(a) arrival rate", d.HourRate[:])
	writeSeries(&b, "(b) Basic", d.BasicTail[:])
	writeSeries(&b, "(c) Reissue", d.ReissueTail[:])
	writeSeries(&b, "(d) AccuracyTrader", d.ATTail[:])
	return b.String()
}

// RenderFig8 prints Figure 8: hourly accuracy losses.
func (d *DayFigures) RenderFig8() string {
	var b strings.Builder
	b.WriteString("FIGURE 8. Hourly accuracy losses (%), 24-hour search workloads\n")
	writeSeries(&b, "hour", hourIdx())
	writeSeries(&b, "Partial execution", d.PartialLoss[:])
	writeSeries(&b, "AccuracyTrader", d.ATLoss[:])
	return b.String()
}

func hourIdx() []float64 {
	out := make([]float64, 24)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// sample keeps every 5th minute of a 60-bin series for printable width.
func sample(series []float64) []float64 {
	var out []float64
	for i := 0; i < len(series); i += 5 {
		out = append(out, series[i])
	}
	return out
}

func sampleIdx(bins int) []float64 {
	var out []float64
	for i := 0; i < bins; i += 5 {
		out = append(out, float64(i+1))
	}
	return out
}

func writeSeries(b *strings.Builder, name string, vals []float64) {
	fmt.Fprintf(b, "%-22s", name)
	for _, v := range vals {
		if math.IsNaN(v) {
			fmt.Fprintf(b, "%9s", "-")
		} else if v >= 100 {
			fmt.Fprintf(b, "%9.0f", v)
		} else {
			fmt.Fprintf(b, "%9.2f", v)
		}
	}
	b.WriteString("\n")
}
