package experiments

// ExperimentInfo describes one runnable experiment. The registry is the
// single source of truth for the experiment catalogue: cmd/attrader
// generates its `-exp list` output and dispatch coverage from it, and
// registry_test.go asserts EXPERIMENTS.md documents every entry — so
// the CLI, the docs and the code can no longer drift silently.
type ExperimentInfo struct {
	Name     string // the -exp flag value
	Artifact string // the paper artifact it regenerates, or "extension"
	About    string // one-line description
}

// Registry returns the experiment catalogue in canonical run order
// (the order `-exp all` executes, with aliases adjacent).
func Registry() []ExperimentInfo {
	return []ExperimentInfo{
		{Name: "creation", Artifact: "§3 text", About: "synopsis creation overheads per service"},
		{Name: "fig3", Artifact: "Figure 3", About: "incremental synopsis updating overheads"},
		{Name: "fig4", Artifact: "Figure 4", About: "accuracy vs fraction of ranked sets processed"},
		{Name: "table1", Artifact: "Table 1", About: "CF recommender latency across arrival rates"},
		{Name: "table2", Artifact: "Table 2", About: "CF recommender accuracy across arrival rates"},
		{Name: "fig5", Artifact: "Figure 5", About: "hours 9/10/24 search latency panels"},
		{Name: "fig6", Artifact: "Figure 6", About: "hours 9/10/24 search accuracy panels"},
		{Name: "fig7", Artifact: "Figure 7", About: "24-hour search latency"},
		{Name: "fig8", Artifact: "Figure 8", About: "24-hour search accuracy"},
		{Name: "headline", Artifact: "§4.3 text", About: "headline ratios (tail reduction, accuracy loss)"},
		{Name: "overload", Artifact: "extension", About: "accuracy-aware frontend overload sweep (search-shaped)"},
		{Name: "aggcompare", Artifact: "extension", About: "aggregation workload: ladder accuracy/latency + frontend overload"},
		{Name: "netcompare", Artifact: "extension", About: "networked serving layer over loopback TCP vs the in-process runtime"},
		{Name: "cachecompare", Artifact: "extension", About: "accuracy-aware result cache vs no-cache frontend under Zipf load"},
		{Name: "tracecompare", Artifact: "extension", About: "end-to-end decision tracing: cross-process stitching, budget accounting, zero-cost-off"},
		{Name: "faultcompare", Artifact: "extension", About: "failure-domain hardening: kill/stall/heal sweep with breakers and accuracy-aware degradation"},
		{Name: "ingestcompare", Artifact: "extension", About: "live synopsis updates: epoch-swapped streaming ingestion vs frozen rebuilds, sampling honesty pinned"},
		{Name: "auditcompare", Artifact: "extension", About: "accuracy audit plane: ground-truth replay auditing, SLO burn rates, tail-based trace retention"},
		{Name: "costcompare", Artifact: "extension", About: "cost attribution plane: per-tenant resource accounting, accuracy-vs-cost frontier, anomaly-triggered profiling"},
	}
}

// Names returns the registered experiment names in canonical order.
func Names() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, e := range reg {
		names[i] = e.Name
	}
	return names
}
