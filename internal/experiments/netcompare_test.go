package experiments

import (
	"strings"
	"testing"

	"accuracytrader/internal/frontend"
)

// TestNetCompareQuick runs the full networked-vs-in-process comparison
// at quick scale on loopback sockets and pins the acceptance
// behaviours: wire parity for all three workloads, both tail-tolerant
// gather policies beating WaitAll's p99.9 over real sockets, and the
// frontend holding Bounded{0.90} delivered accuracy at or above its
// floor.
func TestNetCompareQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback load run: seconds per configuration")
	}
	nc, err := RunNetCompare(QuickScale())
	if err != nil {
		t.Fatal(err)
	}

	if !nc.ParityCF || !nc.ParitySearch || !nc.ParityAgg {
		t.Fatalf("wire parity failed: cf=%v search=%v agg=%v", nc.ParityCF, nc.ParitySearch, nc.ParityAgg)
	}

	for _, runtime := range []string{"net", "inproc"} {
		for _, name := range []string{"WaitAll", "PartialGather", "Hedged"} {
			row := nc.Row(runtime, name)
			if row == nil {
				t.Fatalf("missing row %s/%s", runtime, name)
			}
			if row.Calls < 20 {
				t.Fatalf("%s/%s fired only %d requests", runtime, name, row.Calls)
			}
		}
	}

	waitAll := nc.Row("net", "WaitAll")
	partial := nc.Row("net", "PartialGather")
	hedged := nc.Row("net", "Hedged")
	fe := nc.Row("net", "Frontend+AT")
	if fe == nil {
		t.Fatal("missing net Frontend+AT row")
	}

	// The interference stall dwarfs the deadline, so WaitAll's p99.9
	// must carry it while the tail-tolerant policies do not.
	if waitAll.P999Ms < netStallMs {
		t.Fatalf("WaitAll p99.9 = %.1f ms, expected >= the %v ms stall", waitAll.P999Ms, netStallMs)
	}
	if partial.P999Ms >= waitAll.P999Ms {
		t.Fatalf("PartialGather p99.9 %.1f ms does not beat WaitAll %.1f ms", partial.P999Ms, waitAll.P999Ms)
	}
	if hedged.P999Ms >= waitAll.P999Ms {
		t.Fatalf("Hedged p99.9 %.1f ms does not beat WaitAll %.1f ms", hedged.P999Ms, waitAll.P999Ms)
	}
	if hedged.HedgePct <= 0 {
		t.Fatal("Hedged row issued no hedges")
	}

	// Frontend semantics over sockets: Exact-class requests are served
	// exactly (bit-identical merged answers, accuracy 1), and Bounded
	// requests hold their calibrated accuracy floor.
	if fe.ClassAcc[frontend.Exact] != 1 {
		t.Fatalf("frontend Exact-class accuracy = %.4f, want exactly 1", fe.ClassAcc[frontend.Exact])
	}
	if fe.ClassAcc[frontend.Bounded] < 0.90 {
		t.Fatalf("frontend Bounded{0.90} delivered accuracy %.4f below its floor", fe.ClassAcc[frontend.Bounded])
	}

	// The calibrated ladder must be usable: its finest level has to
	// clear the Bounded floor, or the controller could never serve the
	// class at all.
	finest := nc.LevelAccuracy[len(nc.LevelAccuracy)-1]
	if finest < 0.90 {
		t.Fatalf("finest calibrated level accuracy %.4f cannot satisfy Bounded{0.90}", finest)
	}

	out := nc.Render()
	for _, want := range []string{"wire parity", "Frontend+AT", "inproc", "p99.9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}
