package experiments

import (
	"strings"
	"testing"
)

// TestCostCompareQuick runs the cost-plane validation at test scale and
// asserts every contract: the cost-off accounting path allocates
// nothing, folded child costs explain a bounded share of parent wall
// time, per-tenant rows sum to the global totals exactly, the frontier
// join is monotone, and the profiler fires once then cools down.
func TestCostCompareQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback serving run")
	}
	sc := QuickScale()
	sc.Shards = 3
	cc, err := RunCostCompare(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !cc.ZeroAllocOK {
		t.Errorf("zero-cost: cost-off path %.1f allocs/op, want 0", cc.DisabledAllocs)
	}
	if !cc.ConserveOK {
		t.Errorf("conservation: work share %.4f of wall, want within [%g, %.2f]",
			cc.WorkShare, costShareFloor, cc.ShareCeil)
	}
	if !cc.TenantSumOK {
		t.Errorf("attribution: %d/%d rows over %d calls, sums must equal global totals exactly",
			cc.Rows, cc.WantRows, cc.Calls)
	}
	if !cc.FrontierOK {
		t.Errorf("frontier: %d points (+%d dominated) of %d levels, want >= 2 monotone points",
			cc.FrontierPoints, cc.FrontierDominated, cc.Levels)
	}
	if !cc.ProfilerOK {
		t.Errorf("profiler: triggered=%d suppressed=%d refired=%v reason=%q heap=%v",
			cc.ProfTriggered, cc.ProfSuppressed, cc.ProfRefired, cc.ProfReason, cc.ProfHeapOK)
	}
	out := cc.Render()
	for _, want := range []string{"COSTCOMPARE", "zero-cost", "conservation", "attribution", "frontier", "profiler"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
