package experiments

import (
	"fmt"
	"math"
	"strings"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/cluster"
	"accuracytrader/internal/core"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/workload"
)

// The aggcompare experiment (third-workload extension, not a paper
// figure) evaluates the approximate aggregation application on both
// axes the paper trades:
//
//  1. Accuracy vs latency across the synopsis ladder: each ladder
//     level's sampling rate is replayed over real fact-table shards,
//     reporting the measured synopsis-only accuracy (1 − mean relative
//     error vs the exact GROUP-BY answers), the accuracy after
//     Algorithm 1 improves the most uncertain strata, and the modeled
//     light-load service time of the level's scan volume.
//  2. An overload sweep mirroring `-exp overload`, with the simulated
//     components serving the aggregation work model and the frontend's
//     degradation controller calibrated with the *measured* per-level
//     accuracies from step 1 — so Bounded{0.90} requests are held above
//     a floor that means something for this workload.

// aggImproveFrac is the fraction of ranked strata Algorithm 1 improves
// in the level table's "+improve" column.
const aggImproveFrac = 0.25

// AggLevelRow is one ladder level of the accuracy-vs-latency table.
type AggLevelRow struct {
	Level        int
	Rate         float64 // sampling rate
	UnitsPerComp float64 // mean sampled rows per shard
	ModelMs      float64 // modeled light-load service time of that scan
	SynAccuracy  float64 // measured, synopsis only
	ImprovedAcc  float64 // measured, after improving aggImproveFrac of strata
}

// AggCompare is the full experiment result.
type AggCompare struct {
	Queries int
	Shards  int
	Levels  []AggLevelRow
	// LevelAccuracy feeds the overload sweep's degradation controller:
	// the measured SynAccuracy per level, coarse to fine.
	LevelAccuracy []float64
	Overload      *OverloadSweep
}

// RunAggCompare measures the ladder and runs the frontend overload
// sweep over the aggregation workload.
func RunAggCompare(sc Scale, multipliers []float64) (*AggCompare, error) {
	svc, err := BuildAggService(sc)
	if err != nil {
		return nil, err
	}
	queries := svc.Data.SampleAggQueries(sc.Seed^0x8a6, sc.AccuracySamples)
	res := &AggCompare{Queries: len(queries), Shards: sc.Shards}

	levels := svc.Comps[0].Syn.Levels()
	synSum := make([]float64, levels)
	impSum := make([]float64, levels)
	nKeys := svc.Comps[0].T.NumKeys()
	approx := agg.NewResult(nKeys)
	improved := agg.NewResult(nKeys)
	exact := agg.NewResult(nKeys)
	var scratch agg.Result
	var estA, estI, estE []float64
	for _, q := range queries {
		exact = exact.Reset(nKeys)
		for _, c := range svc.Comps {
			scratch = agg.ExactResultInto(scratch, c, q)
			exact.Merge(scratch)
		}
		estE = exact.EstimatesInto(estE, q.Op)
		for l := 0; l < levels; l++ {
			approx = approx.Reset(nKeys)
			improved = improved.Reset(nKeys)
			for _, c := range svc.Comps {
				// Synopsis-only answer (pooled engines, as in the runtime),
				// then Algorithm 1's ranked improvement of the most
				// uncertain strata on the same engine — reusing the
				// correlations instead of re-processing the synopsis.
				e := agg.GetEngine(c, q, l)
				corr := e.ProcessSynopsis()
				approx.Merge(e.Result())
				budget := int(math.Ceil(aggImproveFrac * float64(c.Syn.NumStrata())))
				for _, g := range core.Rank(corr)[:budget] {
					e.ProcessSet(g)
				}
				improved.Merge(e.Result())
				e.Release()
			}
			estA = approx.EstimatesInto(estA, q.Op)
			estI = improved.EstimatesInto(estI, q.Op)
			synSum[l] += agg.Accuracy(estA, estE)
			impSum[l] += agg.Accuracy(estI, estE)
		}
	}
	unit := sc.aggUnitCostMs()
	for l := 0; l < levels; l++ {
		units := 0.0
		for _, c := range svc.Comps {
			units += float64(c.Syn.SampleUnits(l))
		}
		units /= float64(len(svc.Comps))
		synAcc := synSum[l] / float64(len(queries))
		res.Levels = append(res.Levels, AggLevelRow{
			Level:        l,
			Rate:         svc.Comps[0].Syn.Rates()[l],
			UnitsPerComp: units,
			ModelMs:      units * unit,
			SynAccuracy:  synAcc,
			ImprovedAcc:  impSum[l] / float64(len(queries)),
		})
		res.LevelAccuracy = append(res.LevelAccuracy, synAcc)
	}

	sweep, err := runAggOverload(sc, svc, res.LevelAccuracy, multipliers)
	if err != nil {
		return nil, err
	}
	res.Overload = sweep
	return res, nil
}

// runAggOverload is the overload sweep over the aggregation work model:
// Basic and Partial share one exact run; Frontend+AT puts admission,
// 2-replica least-loaded routing and calibrated degradation in front of
// AccuracyTrader components.
func runAggOverload(sc Scale, svc *AggService, levelAcc []float64, multipliers []float64) (*OverloadSweep, error) {
	unit := sc.aggUnitCostMs()
	satRate := 1000 / (svc.Work[0].FullUnits * unit)
	windowMs := sc.SessionSeconds * 1000
	sweep := &OverloadSweep{
		SaturationRate: satRate,
		DeadlineMs:     sc.DeadlineMs,
		WindowSeconds:  sc.SessionSeconds,
	}
	base := cluster.Config{
		Components: sc.Components,
		Work:       svc.Work,
		UnitCostMs: unit,
		DeadlineMs: sc.DeadlineMs,
		// The recommender-style cap: every stratum is eligible.
		IMaxFrac: 1.0,
	}
	for i, m := range multipliers {
		rate := m * satRate
		rng := stats.NewRNG(sc.Seed).Split(uint64(i) + 0xa66)
		arrivals := workload.PoissonArrivals(rng, rate, windowMs)
		if len(arrivals) == 0 {
			return nil, fmt.Errorf("experiments: no arrivals at %gx saturation (%.2f req/s over %.0fs)",
				m, rate, sc.SessionSeconds)
		}
		point := OverloadPoint{Multiplier: m, RatePerSec: rate}

		cfgB := base
		cfgB.Arrivals = arrivals
		cfgB.Technique = cluster.Basic
		resB, err := cluster.Run(cfgB)
		if err != nil {
			return nil, err
		}
		point.Rows = append(point.Rows,
			scoreBasic(resB, sc, sweep.WindowSeconds, overloadClassMix),
			scorePartial(resB, sc, sweep.WindowSeconds, overloadClassMix))

		ctrl, err := frontend.NewController(frontend.ControllerConfig{
			Levels:             len(levelAcc),
			LevelAccuracy:      levelAcc,
			InflightSaturation: 4 * sc.Components,
		})
		if err != nil {
			return nil, err
		}
		cfgF := base
		cfgF.Arrivals = arrivals
		cfgF.Technique = cluster.AccuracyTrader
		cfgF.Frontend = &cluster.FrontendConfig{
			Replicas: 2,
			Router:   frontend.NewLeastLoaded(),
			Admission: []frontend.AdmissionPolicy{
				frontend.NewMaxInflight(4 * sc.Components),
				frontend.NewQueueWatermark(0.35, 0.85),
			},
			Controller: ctrl,
			QueueCap:   32,
			ClassOf:    overloadClassMix,
		}
		resF, err := cluster.Run(cfgF)
		if err != nil {
			return nil, err
		}
		point.Rows = append(point.Rows,
			scoreFrontend(resF, cfgF.Work, levelAcc, sc.DeadlineMs, sweep.WindowSeconds))
		sweep.Points = append(sweep.Points, point)
	}
	return sweep, nil
}

// Render formats the experiment as paper-style text tables.
func (a *AggCompare) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AGGREGATION WORKLOAD (internal/agg): accuracy vs latency across the synopsis ladder\n")
	fmt.Fprintf(&b, "(%d SUM/COUNT/AVG-per-group queries over %d shards; accuracy = 1 - mean relative error vs exact;\n",
		a.Queries, a.Shards)
	fmt.Fprintf(&b, " '+improve' = Algorithm 1 processing the %.0f%% most uncertain strata by CLT error bound)\n\n",
		100*aggImproveFrac)
	fmt.Fprintf(&b, "  %-7s %8s %12s %12s %12s %12s\n",
		"level", "rate", "rows/comp", "model ms", "accuracy", "+improve")
	for _, row := range a.Levels {
		fmt.Fprintf(&b, "  %-7d %8.2f %12.0f %12.2f %12.4f %12.4f\n",
			row.Level, row.Rate, row.UnitsPerComp, row.ModelMs, row.SynAccuracy, row.ImprovedAcc)
	}
	b.WriteString("\nOverload sweep over the aggregation work model (controller calibrated with the measured\nper-level accuracies above):\n\n")
	b.WriteString(a.Overload.Render())
	return b.String()
}
